#include "flow/connection.h"

#include "util/strings.h"

namespace entrace {

const char* to_string(ConnState s) {
  switch (s) {
    case ConnState::kPending:
      return "pending";
    case ConnState::kEstablished:
      return "established";
    case ConnState::kRejected:
      return "rejected";
    case ConnState::kUnanswered:
      return "unanswered";
    case ConnState::kReset:
      return "reset";
    case ConnState::kClosed:
      return "closed";
  }
  return "?";
}

std::string Connection::to_string() const {
  return key.to_string() + " " + entrace::to_string(state) + " dur=" +
         format_double(duration(), 3) + "s orig=" + std::to_string(orig_bytes) +
         "B resp=" + std::to_string(resp_bytes) + "B";
}

}  // namespace entrace
