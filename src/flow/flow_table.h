// The flow table: turns a stream of decoded packets into connection
// summaries, with a TCP state machine, UDP/ICMP flow aggregation, duplicate
// (retransmission) detection, and in-order stream delivery to an observer.
//
// This is our stand-in for the Bro connection engine the paper relied on.
//
// Thread-compatibility: FlowTable holds no static or global state — every
// instance is fully self-contained — so distinct instances may be driven
// from distinct threads concurrently with no synchronization, which is what
// the parallel per-trace analyzer does.  A single instance is not
// thread-safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "flow/connection.h"
#include "flow/flow_map.h"
#include "net/decoder.h"

namespace entrace {

// Hook for application-layer analysis.  on_data delivers in-order transport
// payload: for TCP only new (non-retransmitted, in-sequence) bytes are
// delivered; for UDP each datagram payload is delivered as-is.
// `wire_len` is the payload length on the wire; under snaplen truncation it
// can exceed data.size() (e.g. an 8 KB NFS/UDP datagram captured at 1500),
// letting parsers account message sizes truthfully from headers.
class FlowObserver {
 public:
  virtual ~FlowObserver() = default;
  virtual void on_new_connection(Connection& conn) { (void)conn; }
  virtual void on_data(Connection& conn, Direction dir, double ts,
                       std::span<const std::uint8_t> data, std::uint32_t wire_len) {
    (void)conn;
    (void)dir;
    (void)ts;
    (void)data;
    (void)wire_len;
  }
  virtual void on_close(Connection& conn) { (void)conn; }
};

// Per-packet verdict, consumed by the load analysis (Figure 10).
struct PacketVerdict {
  Connection* conn = nullptr;
  Direction dir = Direction::kOrigToResp;
  bool tcp_retransmission = false;
  bool keepalive_retx = false;
};

struct FlowConfig {
  double udp_flow_timeout = 60.0;  // idle gap that splits a UDP flow
  double icmp_flow_timeout = 60.0;
  // Idle gap after which evict_idle() closes a live TCP connection.  0
  // disables time-driven TCP eviction (the batch default: TCP connections
  // end only via FIN/RST or the end-of-stream drain, exactly as before).
  // UDP/ICMP eviction always uses the flow timeouts above, mirroring the
  // lazy split the next same-tuple packet would have performed.
  double tcp_idle_timeout = 0.0;
};

// Churn counters the table maintains about its own operation — the
// telemetry ground truth for `flow.*` metrics.  Plain data (no obs
// dependency): the analyzer copies these into its per-shard registry, so
// the flow layer stays reusable without the telemetry stack.
struct FlowStats {
  std::uint64_t conns_opened = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t tcp_retransmissions = 0;
  std::uint64_t keepalive_retx = 0;
  // Pure SYN with a different ISN on a live 5-tuple: the old connection is
  // closed and a fresh one starts (TCP port reuse, TIME_WAIT skipped).
  std::uint64_t tcp_tuple_reuse = 0;
  // UDP/ICMP flows split because the idle timeout elapsed.
  std::uint64_t idle_splits = 0;
  // Still-open flows administratively classified by the end-of-stream
  // drain_all() — the flows a stream's end cut mid-conversation.
  std::uint64_t drained = 0;
  // Live flows closed by a time-driven evict_idle() sweep.
  std::uint64_t evicted = 0;
};

// The tuple a packet's flow is keyed on: the 5-tuple, except that ICMP
// flows use port-symmetric pseudo-ports (echo request/reply share the
// identifier; other types key on the type) so both directions canonicalize
// to the same flow.  The batched decode stage precomputes this per packet;
// FlowTable::process computes it on demand for scalar callers.
inline FiveTuple flow_tuple_of(const DecodedPacket& pkt) {
  FiveTuple tuple = pkt.tuple();
  if (pkt.is_icmp()) {
    const bool echo = pkt.icmp_type == IcmpHeader::kEchoRequest ||
                      pkt.icmp_type == IcmpHeader::kEchoReply;
    tuple.src_port = echo ? pkt.icmp_id : pkt.icmp_type;
    tuple.dst_port = tuple.src_port;
  }
  return tuple;
}

class FlowTable {
 public:
  using Config = FlowConfig;

  explicit FlowTable(Config config = Config(), FlowObserver* observer = nullptr);

  // Process one decoded packet.  The returned pointers remain valid until
  // the FlowTable is destroyed (connections live in a stable deque).
  PacketVerdict process(const DecodedPacket& pkt);

  // Hot-path variant with the packed canonical flow key precomputed by the
  // batch decode stage: key_lo/key_hi must equal
  // flow_tuple_of(pkt).canonical().packed_{lo,hi}().  Only meaningful for
  // flow-eligible packets (IPv4, l4_ok, TCP/UDP/ICMP); process(pkt)
  // handles the general case and delegates here.
  PacketVerdict process(const DecodedPacket& pkt, std::uint64_t key_lo, std::uint64_t key_hi);

  // End-of-stream drain: classify and close every still-open flow (counted
  // in stats().drained), emit on_close callbacks, clear the active map.
  // Idempotent; the windowed engine calls it at final drain and the batch
  // path reaches it through flush(), so both account cut-off flows the
  // same way.
  void drain_all();

  // Finalize a batch run — an alias for drain_all(), kept as the
  // historical analyzer entry point.
  void flush() { drain_all(); }

  // Time-driven expiry sweep for endless streams: closes (and unmaps) every
  // live flow idle longer than its protocol's timeout as of stream time
  // `now` (UDP/ICMP: the flow timeouts, matching the lazy split the next
  // same-tuple packet would force; TCP: config.tcp_idle_timeout when > 0).
  // Also unmaps already-closed entries that still hold their key (FIN/RST
  // leaves the tuple mapped so late packets keep attributing), bounding the
  // active map.  Deterministic: walks entries in creation order against
  // stream time, never wall time.  Returns the number of live flows closed
  // (also summed into stats().evicted).
  std::size_t evict_idle(double now);

  // ---- windowed-engine support ---------------------------------------------
  // Indices (into connections()) of every connection touched — created,
  // updated by a packet, or closed — since the last take_dirty() call,
  // ordered by open_seq.  The incremental analyzer snapshots exactly these
  // per window; a batch run never calls it and pays only a flag test per
  // packet.
  std::vector<std::uint32_t> take_dirty();

  // Bounded-memory mode for endless streams: after take_dirty() has
  // captured a window, reclaim_closed() recycles the slots of connections
  // that are closed and already snapshotted, so the deque stops growing
  // once churn is balanced.  Recycling breaks the index == open order
  // identity (open_seq keeps the true order), so batch runs — whose report
  // path walks the deque — must never enable it.
  void enable_reclaim() { reclaim_ = true; }
  std::size_t reclaim_closed();
  std::size_t live_entries() const { return entries_.size() - free_entries_.size(); }

  const std::deque<Connection>& connections() const { return connections_; }
  std::deque<Connection>& connections() { return connections_; }
  std::uint64_t packets_processed() const { return packets_; }
  const FlowStats& stats() const { return stats_; }

 private:
  struct DirState {
    bool have_seq = false;
    std::uint32_t next_seq = 0;      // next expected sequence number
    std::uint32_t max_seq_end = 0;   // highest seq+len seen
  };
  struct Entry {
    std::size_t conn_index;
    DirState orig;
    DirState resp;
    bool closed = false;
    bool dirty = false;  // touched since the last take_dirty()
    bool freed = false;  // slot parked on the reclaim free list
    // The packed canonical flow key, kept so eviction and reclamation can
    // unmap the entry without re-deriving the tuple.
    std::uint64_t key_lo = 0;
    std::uint64_t key_hi = 0;
  };

  Connection& conn_of(Entry& e) { return connections_[e.conn_index]; }
  Entry& find_or_create(const DecodedPacket& pkt, std::uint64_t key_lo, std::uint64_t key_hi,
                        bool& created);
  PacketVerdict process_tcp(Entry& e, const DecodedPacket& pkt, Direction dir);
  void process_udp(Entry& e, const DecodedPacket& pkt, Direction dir);
  void close_entry(Entry& e);
  void mark_dirty(Entry& e) {
    if (!e.dirty) {
      e.dirty = true;
      dirty_.push_back(static_cast<std::uint32_t>(e.conn_index));
    }
  }
  // Unmap the entry's key if this entry still owns it (a split may have
  // re-pointed the key at a successor entry).
  void unmap_if_owner(std::size_t index);

  Config config_;
  FlowObserver* observer_;
  std::deque<Connection> connections_;
  // Entries are created 1:1 with connections (entries_[i].conn_index == i)
  // and erased never — an entry whose key leaves the active map keeps its
  // terminal state here, which gives drain_all() a deterministic
  // creation-order walk (close_entry is idempotent, so closing everything
  // equals closing the live subset).  In reclaim mode a closed, already-
  // snapshotted slot is parked on free_entries_ and reused by the next
  // connection instead of growing the deque.  active_ only maps the packed
  // canonical key of live flows to an index.
  std::vector<Entry> entries_;
  FlowMap active_;
  std::uint64_t packets_ = 0;
  FlowStats stats_;
  std::vector<std::uint32_t> dirty_;
  bool reclaim_ = false;
  std::vector<std::uint32_t> free_entries_;
};

}  // namespace entrace
