// The flow table: turns a stream of decoded packets into connection
// summaries, with a TCP state machine, UDP/ICMP flow aggregation, duplicate
// (retransmission) detection, and in-order stream delivery to an observer.
//
// This is our stand-in for the Bro connection engine the paper relied on.
//
// Thread-compatibility: FlowTable holds no static or global state — every
// instance is fully self-contained — so distinct instances may be driven
// from distinct threads concurrently with no synchronization, which is what
// the parallel per-trace analyzer does.  A single instance is not
// thread-safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "flow/connection.h"
#include "flow/flow_map.h"
#include "net/decoder.h"

namespace entrace {

// Hook for application-layer analysis.  on_data delivers in-order transport
// payload: for TCP only new (non-retransmitted, in-sequence) bytes are
// delivered; for UDP each datagram payload is delivered as-is.
// `wire_len` is the payload length on the wire; under snaplen truncation it
// can exceed data.size() (e.g. an 8 KB NFS/UDP datagram captured at 1500),
// letting parsers account message sizes truthfully from headers.
class FlowObserver {
 public:
  virtual ~FlowObserver() = default;
  virtual void on_new_connection(Connection& conn) { (void)conn; }
  virtual void on_data(Connection& conn, Direction dir, double ts,
                       std::span<const std::uint8_t> data, std::uint32_t wire_len) {
    (void)conn;
    (void)dir;
    (void)ts;
    (void)data;
    (void)wire_len;
  }
  virtual void on_close(Connection& conn) { (void)conn; }
};

// Per-packet verdict, consumed by the load analysis (Figure 10).
struct PacketVerdict {
  Connection* conn = nullptr;
  Direction dir = Direction::kOrigToResp;
  bool tcp_retransmission = false;
  bool keepalive_retx = false;
};

struct FlowConfig {
  double udp_flow_timeout = 60.0;  // idle gap that splits a UDP flow
  double icmp_flow_timeout = 60.0;
};

// Churn counters the table maintains about its own operation — the
// telemetry ground truth for `flow.*` metrics.  Plain data (no obs
// dependency): the analyzer copies these into its per-shard registry, so
// the flow layer stays reusable without the telemetry stack.
struct FlowStats {
  std::uint64_t conns_opened = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t tcp_retransmissions = 0;
  std::uint64_t keepalive_retx = 0;
  // Pure SYN with a different ISN on a live 5-tuple: the old connection is
  // closed and a fresh one starts (TCP port reuse, TIME_WAIT skipped).
  std::uint64_t tcp_tuple_reuse = 0;
  // UDP/ICMP flows split because the idle timeout elapsed.
  std::uint64_t idle_splits = 0;
};

// The tuple a packet's flow is keyed on: the 5-tuple, except that ICMP
// flows use port-symmetric pseudo-ports (echo request/reply share the
// identifier; other types key on the type) so both directions canonicalize
// to the same flow.  The batched decode stage precomputes this per packet;
// FlowTable::process computes it on demand for scalar callers.
inline FiveTuple flow_tuple_of(const DecodedPacket& pkt) {
  FiveTuple tuple = pkt.tuple();
  if (pkt.is_icmp()) {
    const bool echo = pkt.icmp_type == IcmpHeader::kEchoRequest ||
                      pkt.icmp_type == IcmpHeader::kEchoReply;
    tuple.src_port = echo ? pkt.icmp_id : pkt.icmp_type;
    tuple.dst_port = tuple.src_port;
  }
  return tuple;
}

class FlowTable {
 public:
  using Config = FlowConfig;

  explicit FlowTable(Config config = Config(), FlowObserver* observer = nullptr);

  // Process one decoded packet.  The returned pointers remain valid until
  // the FlowTable is destroyed (connections live in a stable deque).
  PacketVerdict process(const DecodedPacket& pkt);

  // Hot-path variant with the packed canonical flow key precomputed by the
  // batch decode stage: key_lo/key_hi must equal
  // flow_tuple_of(pkt).canonical().packed_{lo,hi}().  Only meaningful for
  // flow-eligible packets (IPv4, l4_ok, TCP/UDP/ICMP); process(pkt)
  // handles the general case and delegates here.
  PacketVerdict process(const DecodedPacket& pkt, std::uint64_t key_lo, std::uint64_t key_hi);

  // Finalize: mark dangling TCP connections, emit on_close callbacks.
  void flush();

  const std::deque<Connection>& connections() const { return connections_; }
  std::deque<Connection>& connections() { return connections_; }
  std::uint64_t packets_processed() const { return packets_; }
  const FlowStats& stats() const { return stats_; }

 private:
  struct DirState {
    bool have_seq = false;
    std::uint32_t next_seq = 0;      // next expected sequence number
    std::uint32_t max_seq_end = 0;   // highest seq+len seen
  };
  struct Entry {
    std::size_t conn_index;
    DirState orig;
    DirState resp;
    bool closed = false;
  };

  Connection& conn_of(Entry& e) { return connections_[e.conn_index]; }
  Entry& find_or_create(const DecodedPacket& pkt, std::uint64_t key_lo, std::uint64_t key_hi,
                        bool& created);
  PacketVerdict process_tcp(Entry& e, const DecodedPacket& pkt, Direction dir);
  void process_udp(Entry& e, const DecodedPacket& pkt, Direction dir);
  void close_entry(Entry& e);

  Config config_;
  FlowObserver* observer_;
  std::deque<Connection> connections_;
  // Entries are created 1:1 with connections and never erased — an entry
  // whose key leaves the active map keeps its terminal state here, which
  // gives flush() a deterministic insertion-order walk (close_entry is
  // idempotent, so closing everything equals closing the live subset).
  // active_ only maps the packed canonical key of live flows to an index.
  std::vector<Entry> entries_;
  FlowMap active_;
  std::uint64_t packets_ = 0;
  FlowStats stats_;
};

}  // namespace entrace
