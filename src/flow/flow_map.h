// Open-addressing hash map from a packed canonical 5-tuple to a flow-table
// entry index: the replacement for std::unordered_map on the per-packet
// lookup path.
//
// Layout: linear probing over a power-of-two slot array at <=0.7 load, one
// 24-byte slot per flow (16-byte key + 4-byte index), no per-node heap
// allocation and exactly one cache line touched for most probes.  Deletion
// uses backward shifting instead of tombstones because the analyzer's
// UDP/ICMP idle splits and TCP tuple reuse churn keys heavily within a
// trace, and tombstone build-up would degrade probes over time.
//
// Determinism: the map's iteration order is never observed — FlowTable
// walks its insertion-ordered entry vector for flush/export — so probe
// order and rehash timing cannot affect any analysis result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/five_tuple.h"

namespace entrace {

class FlowMap {
 public:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  FlowMap() { slots_.resize(kInitialCapacity); }

  // Slot handle of the key, or kNoSlot.  Handles are invalidated by
  // insert() (rehash may move slots) and erase_slot().
  std::size_t find_slot(std::uint64_t lo, std::uint64_t hi) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_packed_tuple(lo, hi) & mask;
    while (true) {
      const Slot& s = slots_[i];
      if (s.idx == kEmpty) return kNoSlot;
      if (s.lo == lo && s.hi == hi) return i;
      i = (i + 1) & mask;
    }
  }

  std::uint32_t value_at(std::size_t slot) const { return slots_[slot].idx; }

  // Insert a key known to be absent.
  void insert(std::uint64_t lo, std::uint64_t hi, std::uint32_t idx) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    insert_no_grow(lo, hi, idx);
    ++size_;
  }

  // Backward-shift deletion: scan forward from the vacated slot, moving
  // back any element whose probe path passes through the hole, until an
  // empty slot terminates the cluster.
  void erase_slot(std::size_t hole) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hole;
    while (true) {
      i = (i + 1) & mask;
      const Slot& s = slots_[i];
      if (s.idx == kEmpty) break;
      const std::size_t home = hash_packed_tuple(s.lo, s.hi) & mask;
      // s may move into the hole only if the hole lies on its probe path,
      // i.e. its displacement from home reaches at least back to the hole.
      if (((i - home) & mask) >= ((i - hole) & mask)) {
        slots_[hole] = s;
        hole = i;
      }
    }
    slots_[hole].idx = kEmpty;
    --size_;
  }

  std::size_t size() const { return size_; }

  void clear() {
    for (Slot& s : slots_) s.idx = kEmpty;
    size_ = 0;
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialCapacity = 1024;  // power of two

  struct Slot {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint32_t idx = kEmpty;
  };

  void insert_no_grow(std::uint64_t lo, std::uint64_t hi, std::uint32_t idx) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_packed_tuple(lo, hi) & mask;
    while (slots_[i].idx != kEmpty) i = (i + 1) & mask;
    slots_[i] = Slot{lo, hi, idx};
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.idx != kEmpty) insert_no_grow(s.lo, s.hi, s.idx);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace entrace
