#include "flow/flow_table.h"

#include <algorithm>

namespace entrace {
namespace {

// Signed sequence-number comparison (RFC 1982 style) so the logic survives
// wraparound, although our traces are short enough not to wrap.
inline bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

}  // namespace

FlowTable::FlowTable(Config config, FlowObserver* observer)
    : config_(config), observer_(observer) {}

FlowTable::Entry& FlowTable::find_or_create(const DecodedPacket& pkt, std::uint64_t key_lo,
                                            std::uint64_t key_hi, bool& created) {
  const std::size_t slot = active_.find_slot(key_lo, key_hi);
  if (slot != FlowMap::kNoSlot) {
    Entry& e = entries_[active_.value_at(slot)];
    Connection& conn = conn_of(e);
    const bool syn_only = pkt.is_tcp() && (pkt.tcp_flags & tcpflag::kSyn) &&
                          !(pkt.tcp_flags & tcpflag::kAck);
    const bool idle_expired =
        !pkt.is_tcp() &&
        pkt.ts - conn.last_ts > (pkt.is_udp() ? config_.udp_flow_timeout
                                              : config_.icmp_flow_timeout);
    const bool fresh_syn = syn_only && e.closed;
    // Port reuse: a pure SYN carrying a *different* ISN from the original
    // originator while the old connection is still live means the client
    // skipped TIME_WAIT and reused the 5-tuple.  Treating it as the same
    // connection used to overwrite orig_isn and corrupt the sequence-based
    // byte accounting; instead the old entry closes and a fresh Connection
    // starts.  (A SYN with the *same* ISN stays a retransmission, handled
    // by process_tcp.)
    const bool orig_dir =
        pkt.src == conn.key.src && (pkt.is_icmp() || pkt.src_port == conn.key.src_port);
    const bool reused_tuple = syn_only && !e.closed && orig_dir && conn.saw_syn &&
                              pkt.tcp_seq != conn.orig_isn;
    if (fresh_syn || idle_expired || reused_tuple) {
      if (reused_tuple) ++stats_.tcp_tuple_reuse;
      if (idle_expired) ++stats_.idle_splits;
      close_entry(e);
      active_.erase_slot(slot);
    } else {
      created = false;
      return e;
    }
  }

  created = true;
  Connection conn;
  // Cold path (one execution per connection): recomputing the oriented
  // tuple here keeps the per-packet path on the precomputed packed key.
  conn.key = flow_tuple_of(pkt);  // orientation: first packet's sender is the originator
  conn.start_ts = pkt.ts;
  conn.last_ts = pkt.ts;
  if (pkt.is_icmp()) conn.icmp_type = pkt.icmp_type;
  conn.multicast = pkt.dst.is_multicast() || pkt.dst.is_broadcast();
  conn.open_seq = stats_.conns_opened;
  ++stats_.conns_opened;
  std::size_t index;
  if (reclaim_ && !free_entries_.empty()) {
    index = free_entries_.back();
    free_entries_.pop_back();
    connections_[index] = conn;
    entries_[index] = Entry{index, {}, {}, false};
  } else {
    index = connections_.size();
    connections_.push_back(conn);
    entries_.push_back(Entry{index, {}, {}, false});
  }
  Entry& e = entries_[index];
  e.key_lo = key_lo;
  e.key_hi = key_hi;
  active_.insert(key_lo, key_hi, static_cast<std::uint32_t>(index));
  return e;
}

PacketVerdict FlowTable::process(const DecodedPacket& pkt) {
  if (pkt.l3 == L3Kind::kIpv4 && pkt.l4_ok &&
      (pkt.is_tcp() || pkt.is_udp() || pkt.is_icmp())) {
    const FiveTuple key = flow_tuple_of(pkt).canonical();
    return process(pkt, key.packed_lo(), key.packed_hi());
  }
  ++packets_;
  return PacketVerdict{};
}

PacketVerdict FlowTable::process(const DecodedPacket& pkt, std::uint64_t key_lo,
                                 std::uint64_t key_hi) {
  ++packets_;
  PacketVerdict verdict;
  if (pkt.l3 != L3Kind::kIpv4 || !pkt.l4_ok) return verdict;
  if (!pkt.is_tcp() && !pkt.is_udp() && !pkt.is_icmp()) return verdict;

  bool created = false;
  Entry& e = find_or_create(pkt, key_lo, key_hi, created);
  mark_dirty(e);
  Connection& conn = conn_of(e);
  // ICMP flow keys are port-symmetric; direction is by address there.
  const Direction dir =
      (pkt.src == conn.key.src && (pkt.is_icmp() || pkt.src_port == conn.key.src_port))
          ? Direction::kOrigToResp
          : Direction::kRespToOrig;
  verdict.conn = &conn;
  verdict.dir = dir;

  if (created && observer_) observer_->on_new_connection(conn);

  conn.last_ts = pkt.ts;
  if (dir == Direction::kOrigToResp) {
    ++conn.orig_pkts;
  } else {
    ++conn.resp_pkts;
  }

  if (pkt.is_tcp()) {
    PacketVerdict tcp_verdict = process_tcp(e, pkt, dir);
    tcp_verdict.conn = &conn;
    tcp_verdict.dir = dir;
    if (tcp_verdict.tcp_retransmission) ++stats_.tcp_retransmissions;
    if (tcp_verdict.keepalive_retx) ++stats_.keepalive_retx;
    return tcp_verdict;
  }
  process_udp(e, pkt, dir);
  return verdict;
}

PacketVerdict FlowTable::process_tcp(Entry& e, const DecodedPacket& pkt, Direction dir) {
  PacketVerdict verdict;
  Connection& conn = conn_of(e);
  DirState& ds = dir == Direction::kOrigToResp ? e.orig : e.resp;
  const std::uint8_t flags = pkt.tcp_flags;
  const std::uint32_t seq = pkt.tcp_seq;
  const std::uint32_t payload_len = pkt.payload_wire_len;

  // --- handshake state -------------------------------------------------
  if ((flags & tcpflag::kSyn) && !(flags & tcpflag::kAck)) {
    if (dir == Direction::kOrigToResp) {
      if (conn.saw_syn && seq == conn.orig_isn) {
        // Retransmitted SYN: the connection attempt is not progressing.
        ++conn.retransmissions;
        verdict.tcp_retransmission = true;
      }
      conn.saw_syn = true;
      conn.orig_isn = seq;
      ds.have_seq = true;
      ds.next_seq = seq + 1;
      ds.max_seq_end = seq + 1;
    }
    return verdict;
  }
  if ((flags & tcpflag::kSyn) && (flags & tcpflag::kAck)) {
    if (dir == Direction::kRespToOrig) {
      if (conn.saw_synack && seq == conn.resp_isn) {
        ++conn.retransmissions;
        verdict.tcp_retransmission = true;
      }
      conn.saw_synack = true;
      conn.resp_isn = seq;
      if (conn.state == ConnState::kPending) conn.state = ConnState::kEstablished;
      ds.have_seq = true;
      ds.next_seq = seq + 1;
      ds.max_seq_end = seq + 1;
    }
    return verdict;
  }
  if (flags & tcpflag::kRst) {
    conn.saw_rst = true;
    if (conn.state == ConnState::kPending) {
      // RST answering a SYN from the responder side = rejected.
      conn.state = dir == Direction::kRespToOrig ? ConnState::kRejected
                                                 : ConnState::kUnanswered;
    } else if (conn.successful()) {
      conn.state = ConnState::kReset;
    }
    close_entry(e);
    return verdict;
  }

  // --- data / retransmission tracking ----------------------------------
  if (!ds.have_seq) {
    // Mid-stream pickup (trace started inside the connection).
    ds.have_seq = true;
    ds.next_seq = seq;
    ds.max_seq_end = seq;
    if (conn.state == ConnState::kPending && conn.orig_pkts > 0 && conn.resp_pkts > 0)
      conn.state = ConnState::kEstablished;
  }

  if (payload_len > 0) {
    const std::uint32_t seq_end = seq + payload_len;
    if (seq_leq(seq_end, ds.max_seq_end)) {
      // Entirely old data: a retransmission.
      ++conn.retransmissions;
      verdict.tcp_retransmission = true;
      if (payload_len == 1 && seq + 1 == ds.next_seq) {
        // 1-byte keepalive probe (NCP/SSH style, §6).
        ++conn.keepalive_retx;
        verdict.keepalive_retx = true;
      }
    } else {
      // At least some new data.  Byte accounting is sequence-based (wire
      // truth): a gap left by a capture drop still advances the stream, so
      // the missing bytes are counted exactly once.
      std::uint32_t new_start = seq;
      if (seq_lt(seq, ds.next_seq)) new_start = ds.next_seq;  // partial overlap
      const std::uint64_t new_bytes =
          seq_lt(ds.next_seq, seq_end) ? seq_end - ds.next_seq : 0;
      if (dir == Direction::kOrigToResp) {
        conn.orig_bytes += new_bytes;
      } else {
        conn.resp_bytes += new_bytes;
      }
      if (observer_ && !pkt.payload.empty()) {
        // Map the new byte range into the captured payload span.
        const std::uint32_t skip = new_start - seq;
        if (skip < pkt.payload.size()) {
          auto data = pkt.payload.subspan(skip);
          observer_->on_data(conn, dir, pkt.ts, data,
                             static_cast<std::uint32_t>(data.size()));
        }
      }
      ds.next_seq = seq_end;
      ds.max_seq_end = seq_end;
      if (conn.state == ConnState::kPending && conn.saw_syn && conn.saw_synack)
        conn.state = ConnState::kEstablished;
    }
  }

  if (flags & tcpflag::kFin) {
    ds.next_seq = seq + payload_len + 1;
    ds.max_seq_end = ds.next_seq;
    const bool other_fin = conn.saw_fin;
    conn.saw_fin = true;
    if (other_fin) {
      if (conn.successful() || conn.state == ConnState::kPending)
        conn.state = ConnState::kClosed;
      close_entry(e);
    }
  }
  return verdict;
}

void FlowTable::process_udp(Entry& e, const DecodedPacket& pkt, Direction dir) {
  Connection& conn = conn_of(e);
  const std::uint32_t payload_len = pkt.payload_wire_len;
  if (dir == Direction::kOrigToResp) {
    conn.orig_bytes += payload_len;
  } else {
    conn.resp_bytes += payload_len;
  }
  if (conn.state == ConnState::kPending) conn.state = ConnState::kEstablished;
  if (observer_ && pkt.is_udp() && !pkt.payload.empty())
    observer_->on_data(conn, dir, pkt.ts, pkt.payload, pkt.payload_wire_len);
}

void FlowTable::close_entry(Entry& e) {
  if (e.closed) return;
  e.closed = true;
  mark_dirty(e);
  ++stats_.conns_closed;
  Connection& conn = conn_of(e);
  if (conn.state == ConnState::kPending) {
    if (conn.key.proto == ipproto::kTcp && conn.saw_syn && conn.resp_pkts == 0) {
      conn.state = ConnState::kUnanswered;
    } else if (conn.resp_pkts > 0 || conn.multicast) {
      conn.state = ConnState::kEstablished;
    } else {
      conn.state = ConnState::kUnanswered;
    }
  }
  if (observer_) observer_->on_close(conn);
}

void FlowTable::drain_all() {
  // Creation-order walk: every erase path (fresh SYN, idle split, tuple
  // reuse) closes before unmapping and close_entry is a no-op on closed
  // entries, so this closes exactly the still-live flows — in a
  // deterministic order, unlike iterating the hash map.  Only flows this
  // call closes count as drained: they are the ones the stream's end cut
  // mid-conversation.
  if (!reclaim_) {
    // Without reclamation, slot order is creation order.
    for (Entry& entry : entries_) {
      if (entry.closed) continue;
      ++stats_.drained;
      close_entry(entry);
    }
  } else {
    // Recycled slots break the index == open order identity; sort the
    // still-open flows by open_seq so the drain (and its on_close event
    // order) stays creation-ordered.
    std::vector<std::uint32_t> open;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].closed) open.push_back(static_cast<std::uint32_t>(i));
    }
    std::sort(open.begin(), open.end(), [this](std::uint32_t a, std::uint32_t b) {
      return connections_[a].open_seq < connections_[b].open_seq;
    });
    for (std::uint32_t i : open) {
      ++stats_.drained;
      close_entry(entries_[i]);
    }
  }
  active_.clear();
}

std::size_t FlowTable::evict_idle(double now) {
  std::size_t closed_count = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.freed) continue;
    Connection& conn = conn_of(e);
    double timeout;
    if (conn.key.proto == ipproto::kTcp) {
      if (config_.tcp_idle_timeout <= 0.0) continue;
      timeout = config_.tcp_idle_timeout;
    } else if (conn.key.proto == ipproto::kUdp) {
      timeout = config_.udp_flow_timeout;
    } else {
      timeout = config_.icmp_flow_timeout;
    }
    if (now - conn.last_ts <= timeout) continue;
    if (e.closed) {
      // FIN/RST leaves the tuple mapped so late packets keep attributing to
      // the finished connection; once the idle timeout passes, release the
      // key too — exactly when a live flow would have been split anyway.
      unmap_if_owner(i);
      continue;
    }
    ++stats_.evicted;
    ++closed_count;
    close_entry(e);
    unmap_if_owner(i);
  }
  return closed_count;
}

std::vector<std::uint32_t> FlowTable::take_dirty() {
  std::vector<std::uint32_t> out = std::move(dirty_);
  dirty_.clear();
  std::sort(out.begin(), out.end(), [this](std::uint32_t a, std::uint32_t b) {
    return connections_[a].open_seq < connections_[b].open_seq;
  });
  for (std::uint32_t i : out) entries_[i].dirty = false;
  return out;
}

std::size_t FlowTable::reclaim_closed() {
  if (!reclaim_) return 0;
  std::size_t reclaimed = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.freed || !e.closed || e.dirty) continue;
    unmap_if_owner(i);
    e.freed = true;
    free_entries_.push_back(static_cast<std::uint32_t>(i));
    ++reclaimed;
  }
  return reclaimed;
}

void FlowTable::unmap_if_owner(std::size_t index) {
  Entry& e = entries_[index];
  const std::size_t slot = active_.find_slot(e.key_lo, e.key_hi);
  if (slot != FlowMap::kNoSlot && active_.value_at(slot) == index) active_.erase_slot(slot);
}

}  // namespace entrace
