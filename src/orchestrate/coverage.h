// Coverage manifest: which traces of a dataset a set of shard results
// actually covers, and the partial-result report semantics built on it.
//
// Graceful degradation contract: when a job exhausts its retry budget the
// orchestrated run still completes — the merged report covers the traces
// that succeeded, and the manifest states *exactly* which trace indices
// are missing, so the output can never be mistaken for a full run and a
// later invocation knows precisely what to redo.  entrace_merge
// --allow-partial applies the same semantics to a hand-assembled shard
// set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/format.h"

namespace entrace::orchestrate {

struct CoverageManifest {
  std::string dataset;
  double scale = 0.0;
  std::uint32_t trace_count = 0;       // traces in the full dataset
  std::vector<std::uint32_t> missing;  // ascending missing trace indices

  bool complete() const { return missing.empty(); }
  std::size_t covered() const { return trace_count - missing.size(); }

  // "4-6, 9, 12-21" — the missing indices as compact ranges ("none" when
  // complete).
  std::string missing_ranges() const;

  // The manifest as a report table (dataset, coverage counts, missing
  // ranges).
  std::string render() const;
};

// Build the manifest for a dataset from the sorted-unique list of trace
// indices that are present.  Indices >= meta.trace_count are ignored.
CoverageManifest manifest_for(const snapshot::SnapshotMeta& meta,
                              const std::vector<std::uint32_t>& present);

// The unmissable banner prepended to any report rendered from an
// incomplete shard set.
std::string partial_banner(const CoverageManifest& manifest);

}  // namespace entrace::orchestrate
