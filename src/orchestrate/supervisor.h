// Fault-tolerant shard orchestration: partition a dataset's traces into M
// jobs, dispatch them to N entrace_shard worker subprocesses, and fold the
// .esnap results into a DatasetAnalysis — with real failure handling end
// to end.
//
// Job state machine:
//
//   pending ──launch──> running ──ok──────────────> done
//      ^                   │
//      │                   ├─ crash / timeout-kill / truncated snapshot /
//      │                   │  CRC-validation reject / wrong trace range
//      │                   v
//      └──backoff──── retrying ──budget exhausted──> failed
//
// Every attempt's outcome is classified into the WorkerFault taxonomy
// (fault.h) and counted; retries wait out a seeded-jitter exponential
// backoff (util/retry.h).  A worker's output is never trusted: exit 0
// means nothing until the snapshot decodes, CRC-checks, and covers the
// exact trace range the job asked for (the untrusted-input reader built
// for this trust boundary).  Snapshots are decoded incrementally as
// workers deliver them; the final fold runs in trace-index order, so for
// any fault schedule in which every job eventually succeeds the merged
// report is byte-identical to a direct single-process run.
//
// Graceful degradation: a job that exhausts its attempt budget is marked
// failed and the run *completes* — the result carries a coverage manifest
// naming exactly the missing trace indices, and render_report() brands the
// output PARTIAL instead of letting the whole run die.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "obs/metrics.h"
#include "orchestrate/coverage.h"
#include "orchestrate/fault.h"
#include "synth/dataset_spec.h"
#include "util/retry.h"

namespace entrace::orchestrate {

enum class JobState : std::uint8_t { kPending, kRunning, kRetrying, kDone, kFailed };

const char* to_string(JobState state);

struct OrchestratorConfig {
  std::string dataset = "D0";
  double scale = 0.01;
  // Trace-range partitions.  0 = one job per worker.  Clamped to the trace
  // count (a job always covers at least one trace).
  std::size_t jobs = 0;
  // Concurrent worker subprocesses.
  std::size_t workers = 2;
  // --threads handed to each worker (0 = the worker's auto default).
  std::size_t shard_threads = 1;
  // Per-job attempt budget + backoff schedule.
  util::RetryPolicy retry;
  // Wall-clock deadline per attempt; a worker still running past it is
  // SIGKILLed and the attempt classified kTimeoutKill.
  double attempt_deadline = 120.0;
  // Deterministic fault-injection harness (off by default).
  FaultInjection inject;
  // Path to the entrace_shard binary (required).
  std::string shard_binary;
  // Directory for the per-job .esnap files (required; created if absent).
  std::string work_dir;
  // Keep the per-job .esnap files after the fold (default: delete them).
  bool keep_files = false;
  // nullptr = a real monotonic clock.  Tests inject util::FakeClock.
  util::Clock* clock = nullptr;
  // Orchestration telemetry (timing class: attempts, retries, kills,
  // backoff seconds, faults by kind, jobs by terminal state).  Optional.
  obs::Registry* metrics = nullptr;
  // Per-event progress lines on stderr.
  bool verbose = false;
};

// Terminal record of one job.
struct JobOutcome {
  std::size_t index = 0;
  std::size_t lo = 0, hi = 0;  // trace range [lo, hi)
  JobState state = JobState::kPending;
  int attempts = 0;                 // launches, including the successful one
  std::vector<WorkerFault> faults;  // one entry per failed attempt
};

struct OrchestrateResult {
  // True iff every job reached kDone (the manifest is then empty).
  bool complete = false;
  CoverageManifest manifest;
  std::vector<JobOutcome> jobs;
  WorkerFaultCounts fault_counts;  // across all attempts of all jobs
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  // Folded from every shard that was delivered and validated; covers only
  // the manifest's non-missing traces when the run is partial.
  DatasetAnalysis analysis;
  std::size_t shards_folded = 0;
  DatasetSpec spec;  // report rendering needs the spec the run used
};

// Run the supervision loop to completion.  Throws std::runtime_error only
// for configuration errors (missing worker binary, uncreatable work dir,
// empty dataset); worker failures never throw — they end in the manifest.
OrchestrateResult orchestrate(const OrchestratorConfig& config);

// The run's report: byte-identical to enterprise_report / entrace_merge
// output when complete; prefixed with the PARTIAL banner and the coverage
// manifest when not.
std::string render_report(const OrchestrateResult& result);

}  // namespace entrace::orchestrate
