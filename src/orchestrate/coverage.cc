#include "orchestrate/coverage.h"

#include <algorithm>
#include <cstdio>

#include "util/table.h"

namespace entrace::orchestrate {

std::string CoverageManifest::missing_ranges() const {
  if (missing.empty()) return "none";
  std::string out;
  std::size_t i = 0;
  while (i < missing.size()) {
    std::size_t j = i;
    while (j + 1 < missing.size() && missing[j + 1] == missing[j] + 1) ++j;
    if (!out.empty()) out += ", ";
    out += std::to_string(missing[i]);
    if (j > i) out += "-" + std::to_string(missing[j]);
    i = j + 1;
  }
  return out;
}

std::string CoverageManifest::render() const {
  TextTable t("Coverage manifest");
  t.set_header({"field", "value"});
  char scale_buf[48];
  std::snprintf(scale_buf, sizeof(scale_buf), "%g", scale);
  t.add_row({"dataset", dataset});
  t.add_row({"scale", scale_buf});
  t.add_row({"traces total", std::to_string(trace_count)});
  t.add_row({"traces covered", std::to_string(covered())});
  t.add_row({"traces missing", std::to_string(missing.size())});
  t.add_row({"missing indices", missing_ranges()});
  return t.render();
}

CoverageManifest manifest_for(const snapshot::SnapshotMeta& meta,
                              const std::vector<std::uint32_t>& present) {
  CoverageManifest m;
  m.dataset = meta.dataset;
  m.scale = meta.scale;
  m.trace_count = meta.trace_count;
  std::vector<bool> have(meta.trace_count, false);
  for (const std::uint32_t t : present) {
    if (t < meta.trace_count) have[t] = true;
  }
  for (std::uint32_t t = 0; t < meta.trace_count; ++t) {
    if (!have[t]) m.missing.push_back(t);
  }
  return m;
}

std::string partial_banner(const CoverageManifest& manifest) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "!! PARTIAL RESULTS: %zu of %u traces missing (%s) — every number below "
                "covers only the %zu traces analyzed !!",
                manifest.missing.size(), manifest.trace_count,
                manifest.missing_ranges().c_str(), manifest.covered());
  const std::string text(line);
  const std::string rule(std::min<std::size_t>(text.size(), 78), '!');
  return rule + "\n" + text + "\n" + rule + "\n\n";
}

}  // namespace entrace::orchestrate
