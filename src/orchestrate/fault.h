// Worker-fault taxonomy and the deterministic fault-injection harness for
// the shard orchestration layer.
//
// The supervisor (supervisor.h) classifies every failed worker attempt
// into one WorkerFault, mirroring the per-packet anomaly taxonomy
// (net/anomaly.h) one level up the stack: packets get AnomalyKinds, worker
// attempts get WorkerFaults, and both are counted, merged, and reported
// rather than crashing the run.
//
// FaultInjection makes the supervisor's failure handling testable the same
// way synth/corruptor.h makes the decode path testable: faults are drawn
// from an Rng stream forked per (job, attempt), so a given seed produces
// the exact same fault schedule on every run — and a schedule in which
// every job eventually succeeds must produce a byte-identical merged
// report (the orchestrate test suite's core assertion).
#pragma once

#include <array>
#include <climits>
#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/format.h"

namespace entrace::orchestrate {

// What the supervisor observed about a failed worker attempt.
enum class WorkerFault : std::uint8_t {
  kNone = 0,           // attempt succeeded
  kCrash,              // nonzero exit or died on a signal we did not send
  kTimeoutKill,        // exceeded the attempt deadline; supervisor SIGKILLed it
  kTruncatedSnapshot,  // exit 0 but the snapshot is missing or cut short
  kSnapshotRejected,   // exit 0 but the snapshot failed CRC/structural validation
  kWrongTraceRange,    // snapshot decodes but covers the wrong dataset slice
  // Network fault kinds, observed by the cluster coordinator (cluster/
  // coordinator.h) rather than the process supervisor.  They live in the
  // same taxonomy so retry budgets, per-fault counters, and coverage
  // manifests treat a dead TCP peer exactly like a dead child process.
  kConnectRefused,     // endpoint unreachable: dial failed or timed out
  kDisconnect,         // connection dropped mid-stream before DONE
  kCorruptFrame,       // frame failed CRC/structural validation
  kHeartbeatTimeout,   // worker stopped sending frames past the deadline
  kCount
};

inline constexpr std::size_t kWorkerFaultCount = static_cast<std::size_t>(WorkerFault::kCount);

const char* to_string(WorkerFault fault);

// Per-attempt fault counters, folded into the run summary like
// AnomalyCounts are folded into CaptureQuality.
struct WorkerFaultCounts {
  std::array<std::uint64_t, kWorkerFaultCount> counts{};

  std::uint64_t& operator[](WorkerFault f) { return counts[static_cast<std::size_t>(f)]; }
  std::uint64_t operator[](WorkerFault f) const { return counts[static_cast<std::size_t>(f)]; }
  std::uint64_t total_faults() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 1; i < kWorkerFaultCount; ++i) sum += counts[i];
    return sum;
  }
};

// What the harness injects into an attempt.  kCrashInject / kHangInject are
// delivered to the worker as an entrace_shard --inject-fault flag (the
// worker _exits mid-write / stalls until the deadline); kTruncateInject /
// kCorruptInject are applied by the supervisor to the produced snapshot
// bytes after a clean exit, the same post-hoc byte surgery the wire
// corruptor performs on packets.
enum class InjectedFault : std::uint8_t {
  kNoInject = 0,
  kCrashInject,
  kHangInject,
  kTruncateInject,
  kCorruptInject,
};

const char* to_string(InjectedFault fault);

struct FaultInjection {
  // Independent per-attempt probabilities, evaluated in this order; the
  // first that fires wins (so with every probability 1.0 an attempt crashes).
  double crash = 0.0;
  double hang = 0.0;
  double truncate = 0.0;
  double corrupt = 0.0;
  std::uint64_t seed = 1;
  // Inject only into the first `attempt_limit` attempts of each job.  The
  // default never stops injecting; tests set 1 to mean "first attempt
  // always faults, retry always recovers".
  int attempt_limit = INT32_MAX;

  bool any() const { return crash > 0 || hang > 0 || truncate > 0 || corrupt > 0; }

  // The fault (or none) for attempt `attempt` (1-based) of job `job` —
  // a pure function of (seed, job, attempt).
  InjectedFault draw(std::uint64_t job, int attempt) const;
};

// Parse "crash=0.2,hang=0.1,truncate=0.05,corrupt=0.05" (any subset of the
// four keys, each probability in [0, 1]).  False with *error set on
// unknown keys or out-of-range values; probabilities not named stay 0.
bool parse_inject_spec(const std::string& spec, FaultInjection& out, std::string* error);

// Corrupt snapshot bytes in place for the two supervisor-applied faults.
// Deterministic per (seed, job, attempt); both guarantee the reader
// rejects the result (truncate cuts the file short of its end marker,
// corrupt flips a bit inside the end section's CRC trailer).
void truncate_snapshot_bytes(std::vector<std::uint8_t>& bytes, const FaultInjection& config,
                             std::uint64_t job, int attempt);
void corrupt_snapshot_bytes(std::vector<std::uint8_t>& bytes);

// Map a snapshot decode failure onto the worker-fault taxonomy.
WorkerFault classify_snapshot_error(const snapshot::SnapshotError& error);

}  // namespace entrace::orchestrate
