#include "orchestrate/fault.h"

#include <cstdlib>
#include <vector>

#include "util/rng.h"
#include "util/strings.h"

namespace entrace::orchestrate {

const char* to_string(WorkerFault fault) {
  switch (fault) {
    case WorkerFault::kNone:
      return "none";
    case WorkerFault::kCrash:
      return "crash";
    case WorkerFault::kTimeoutKill:
      return "timeout-kill";
    case WorkerFault::kTruncatedSnapshot:
      return "truncated-snapshot";
    case WorkerFault::kSnapshotRejected:
      return "snapshot-rejected";
    case WorkerFault::kWrongTraceRange:
      return "wrong-trace-range";
    case WorkerFault::kConnectRefused:
      return "connect-refused";
    case WorkerFault::kDisconnect:
      return "disconnect";
    case WorkerFault::kCorruptFrame:
      return "corrupt-frame";
    case WorkerFault::kHeartbeatTimeout:
      return "heartbeat-timeout";
    case WorkerFault::kCount:
      break;
  }
  return "?";
}

const char* to_string(InjectedFault fault) {
  switch (fault) {
    case InjectedFault::kNoInject:
      return "none";
    case InjectedFault::kCrashInject:
      return "crash";
    case InjectedFault::kHangInject:
      return "hang";
    case InjectedFault::kTruncateInject:
      return "truncate";
    case InjectedFault::kCorruptInject:
      return "corrupt";
  }
  return "?";
}

InjectedFault FaultInjection::draw(std::uint64_t job, int attempt) const {
  if (!any() || attempt > attempt_limit) return InjectedFault::kNoInject;
  // One independent stream per (job, attempt), exactly the corruptor's
  // fork-per-trace idiom: the schedule does not depend on dispatch order,
  // worker count, or how many other jobs retried first.
  Rng rng = Rng(seed).fork(job).fork(static_cast<std::uint64_t>(attempt));
  if (rng.bernoulli(crash)) return InjectedFault::kCrashInject;
  if (rng.bernoulli(hang)) return InjectedFault::kHangInject;
  if (rng.bernoulli(truncate)) return InjectedFault::kTruncateInject;
  if (rng.bernoulli(corrupt)) return InjectedFault::kCorruptInject;
  return InjectedFault::kNoInject;
}

bool parse_inject_spec(const std::string& spec, FaultInjection& out, std::string* error) {
  for (const std::string_view part : split(spec, ',')) {
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "--inject entry '" + std::string(part) + "' is not key=probability";
      }
      return false;
    }
    const std::string key(part.substr(0, eq));
    const std::string value(part.substr(eq + 1));
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      if (error != nullptr) {
        *error = "--inject " + key + "=" + value + " is not a probability in [0, 1]";
      }
      return false;
    }
    if (key == "crash") {
      out.crash = p;
    } else if (key == "hang") {
      out.hang = p;
    } else if (key == "truncate") {
      out.truncate = p;
    } else if (key == "corrupt") {
      out.corrupt = p;
    } else {
      if (error != nullptr) {
        *error = "--inject key '" + key + "' unknown (want crash|hang|truncate|corrupt)";
      }
      return false;
    }
  }
  return true;
}

void truncate_snapshot_bytes(std::vector<std::uint8_t>& bytes, const FaultInjection& config,
                             std::uint64_t job, int attempt) {
  if (bytes.size() <= snapshot::kHeaderSize + 1) {
    bytes.clear();
    return;
  }
  // Cut anywhere strictly inside the section stream.  Wherever the cut
  // lands — mid-payload, mid-frame, or exactly on a section boundary (which
  // removes the end marker) — the reader reports a Kind::kTruncated error.
  // Separate stream id (1) from the draw stream so the cut offset is
  // independent of which fault was drawn.
  Rng rng = Rng(config.seed).fork(job).fork(static_cast<std::uint64_t>(attempt)).fork(1);
  const std::uint64_t lo = snapshot::kHeaderSize + 1;
  const std::uint64_t hi = bytes.size() - 1;
  bytes.resize(static_cast<std::size_t>(rng.uniform_int(lo, hi)));
}

void corrupt_snapshot_bytes(std::vector<std::uint8_t>& bytes) {
  // Flip one bit of the file's final byte: the end section's CRC trailer.
  // Every byte of the file is still present, so the reader fails the end
  // section's CRC check — a clean Kind::kMalformed rejection, never
  // mistaken for truncation.
  if (bytes.empty()) return;
  bytes.back() ^= 0x01;
}

WorkerFault classify_snapshot_error(const snapshot::SnapshotError& error) {
  return error.kind() == snapshot::SnapshotError::Kind::kTruncated
             ? WorkerFault::kTruncatedSnapshot
             : WorkerFault::kSnapshotRejected;
}

}  // namespace entrace::orchestrate
