#include "orchestrate/supervisor.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>

#include "core/report.h"
#include "obs/stage_timer.h"
#include "snapshot/reader.h"
#include "synth/model.h"
#include "synth/synth_source.h"
#include "util/subprocess.h"

namespace entrace::orchestrate {

namespace {

// Poll cadence of the supervision loop: long enough to keep the supervisor
// idle-cheap, short enough that deadlines and backoff expiries are hit
// within a few milliseconds.
constexpr double kTickSeconds = 0.002;

struct Job {
  std::size_t index = 0;
  std::size_t lo = 0, hi = 0;
  std::string path;
  JobState state = JobState::kPending;
  int failed_attempts = 0;
  int launches = 0;
  double eligible_at = 0.0;  // clock time a retrying job may relaunch
  std::vector<WorkerFault> faults;
};

struct RunningWorker {
  std::size_t job = 0;  // index into the jobs vector
  util::Subprocess proc;
  double deadline_at = 0.0;
  InjectedFault injected = InjectedFault::kNoInject;
};

// Handles into the orchestration telemetry, registered once (all timing
// class: these describe the run, never the dataset, and must not perturb
// the semantic determinism contract).
struct Metrics {
  obs::Counter* attempts = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* kills = nullptr;
  obs::Gauge* backoff_seconds = nullptr;
  obs::Counter* jobs_done = nullptr;
  obs::Counter* jobs_failed = nullptr;
  std::array<obs::Counter*, kWorkerFaultCount> faults{};

  explicit Metrics(obs::Registry* reg) {
    if (reg == nullptr) return;
    using obs::MetricClass;
    attempts = reg->counter("orchestrate.attempts", MetricClass::kTiming,
                            "worker launches across all jobs");
    retries = reg->counter("orchestrate.retries", MetricClass::kTiming,
                           "relaunches after a classified worker fault");
    kills = reg->counter("orchestrate.kills", MetricClass::kTiming,
                         "workers SIGKILLed at the attempt deadline");
    backoff_seconds = reg->gauge("orchestrate.backoff.seconds", MetricClass::kTiming,
                                 "total backoff delay scheduled before retries");
    jobs_done = reg->counter("orchestrate.jobs.done", MetricClass::kTiming,
                             "jobs that delivered a validated snapshot");
    jobs_failed = reg->counter("orchestrate.jobs.failed", MetricClass::kTiming,
                               "jobs that exhausted their attempt budget");
    for (std::size_t f = 1; f < kWorkerFaultCount; ++f) {
      std::string name = std::string("orchestrate.fault.") + to_string(static_cast<WorkerFault>(f));
      std::replace(name.begin(), name.end(), '-', '_');
      faults[f] = reg->counter(name, MetricClass::kTiming,
                               "attempts that ended in this worker fault");
    }
  }
};

std::string format_scale(double scale) {
  // Shortest round-trippable spelling (the exposition idiom): the worker
  // re-parses this with strtod and its SnapshotMeta must compare equal
  // bit-for-bit.
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", scale);
  if (std::strtod(buf, nullptr) == scale) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", scale);
  return buf;
}

class Supervisor {
 public:
  Supervisor(const OrchestratorConfig& config, util::Clock& clock)
      : config_(config), clock_(clock), metrics_(config.metrics) {}

  OrchestrateResult run() {
    const double start = clock_.now();
    prepare();
    loop();
    OrchestrateResult result = finish();
    if (config_.metrics != nullptr) {
      obs::record_stage(config_.metrics, "orchestrate", clock_.now() - start, jobs_.size());
    }
    return result;
  }

 private:
  void log(const char* fmt, ...) const __attribute__((format(printf, 2, 3))) {
    if (!config_.verbose) return;
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[orchestrate] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
  }

  void prepare() {
    if (config_.shard_binary.empty()) {
      throw std::runtime_error("orchestrate: shard_binary not set");
    }
    std::error_code ec;
    if (!std::filesystem::exists(config_.shard_binary, ec)) {
      throw std::runtime_error("orchestrate: worker binary " + config_.shard_binary +
                               " does not exist");
    }
    if (config_.work_dir.empty()) {
      throw std::runtime_error("orchestrate: work_dir not set");
    }
    std::filesystem::create_directories(config_.work_dir, ec);
    if (ec) {
      throw std::runtime_error("orchestrate: cannot create work dir " + config_.work_dir + ": " +
                               ec.message());
    }

    spec_ = dataset_by_name(config_.dataset, config_.scale);
    const EnterpriseModel model;
    trace_count_ = SyntheticTraceSourceSet(spec_, model).size();
    if (trace_count_ == 0) {
      throw std::runtime_error("orchestrate: dataset " + config_.dataset + " has no traces");
    }
    meta_ = snapshot::SnapshotMeta{spec_.name, config_.scale,
                                   static_cast<std::uint32_t>(trace_count_)};

    const std::size_t workers = std::max<std::size_t>(1, config_.workers);
    std::size_t m = config_.jobs == 0 ? workers : config_.jobs;
    m = std::min(std::max<std::size_t>(1, m), trace_count_);
    jobs_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      Job& job = jobs_[i];
      job.index = i;
      job.lo = trace_count_ * i / m;
      job.hi = trace_count_ * (i + 1) / m;
      job.path = (std::filesystem::path(config_.work_dir) /
                  ("job_" + std::to_string(i) + ".esnap"))
                     .string();
    }
    log("%zu traces of %s in %zu jobs on %zu workers (budget %d attempts/job)",
        trace_count_, spec_.name.c_str(), m, workers, config_.retry.max_attempts);
  }

  // One pass: launch every eligible job (capacity permitting), reap or
  // deadline-kill running workers.  Returns true while work remains.
  bool step() {
    const std::size_t workers = std::max<std::size_t>(1, config_.workers);
    for (Job& job : jobs_) {
      if (running_.size() >= workers) break;
      const bool eligible =
          job.state == JobState::kPending ||
          (job.state == JobState::kRetrying && clock_.now() >= job.eligible_at);
      if (eligible) launch(job);
    }

    bool reaped = false;
    for (std::size_t i = 0; i < running_.size();) {
      RunningWorker& worker = running_[i];
      std::optional<util::ExitStatus> status = worker.proc.poll();
      bool timed_out = false;
      if (!status.has_value() && clock_.now() >= worker.deadline_at) {
        status = worker.proc.kill_and_wait();
        timed_out = true;
        if (metrics_.kills != nullptr) metrics_.kills->add();
      }
      if (status.has_value()) {
        settle(jobs_[worker.job], *status, timed_out, worker.injected);
        running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
        reaped = true;
      } else {
        ++i;
      }
    }
    if (!reaped) idle_wait();
    return !terminal();
  }

  void loop() {
    while (step()) {
    }
  }

  // Nothing finished this pass: sleep one tick, or jump straight to the
  // next backoff expiry when no worker is running (a FakeClock then makes
  // the wait free).
  void idle_wait() {
    if (!running_.empty()) {
      clock_.sleep(kTickSeconds);
      return;
    }
    double next = -1.0;
    for (const Job& job : jobs_) {
      if (job.state == JobState::kRetrying) {
        next = next < 0 ? job.eligible_at : std::min(next, job.eligible_at);
      }
    }
    if (next < 0) return;  // nothing retrying either: loop will terminate
    const double wait = next - clock_.now();
    if (wait > 0) clock_.sleep(wait);
  }

  bool terminal() const {
    return std::all_of(jobs_.begin(), jobs_.end(), [](const Job& job) {
      return job.state == JobState::kDone || job.state == JobState::kFailed;
    });
  }

  void launch(Job& job) {
    ++job.launches;
    if (metrics_.attempts != nullptr) metrics_.attempts->add();
    const InjectedFault injected = config_.inject.draw(job.index, job.launches);

    std::vector<std::string> argv = {config_.shard_binary,
                                     job.path,
                                     spec_.name,
                                     format_scale(config_.scale),
                                     "--traces",
                                     std::to_string(job.lo) + ":" + std::to_string(job.hi),
                                     "--threads",
                                     std::to_string(config_.shard_threads),
                                     "--resume"};
    if (injected == InjectedFault::kCrashInject) {
      argv.push_back("--inject-fault");
      argv.push_back("crash");
    } else if (injected == InjectedFault::kHangInject) {
      argv.push_back("--inject-fault");
      argv.push_back("hang");
    }

    RunningWorker worker;
    worker.job = job.index;
    worker.proc = util::Subprocess::spawn(argv);
    worker.deadline_at = clock_.now() + config_.attempt_deadline;
    worker.injected = injected;
    job.state = JobState::kRunning;
    log("job %zu attempt %d launched (traces [%zu, %zu), pid %d%s%s)", job.index, job.launches,
        job.lo, job.hi, worker.proc.pid(),
        injected == InjectedFault::kNoInject ? "" : ", injecting ",
        injected == InjectedFault::kNoInject ? "" : to_string(injected));
    running_.push_back(std::move(worker));
  }

  // Post-exit byte surgery for the two supervisor-applied injected faults.
  void apply_post_faults(const Job& job, InjectedFault injected) {
    if (injected != InjectedFault::kTruncateInject && injected != InjectedFault::kCorruptInject) {
      return;
    }
    std::ifstream in(job.path, std::ios::binary | std::ios::ate);
    if (!in) return;  // no file: validation will classify it as truncated
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(in.tellg()));
    in.seekg(0);
    if (!bytes.empty() &&
        !in.read(reinterpret_cast<char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()))) {
      return;
    }
    in.close();
    if (injected == InjectedFault::kTruncateInject) {
      truncate_snapshot_bytes(bytes, config_.inject, job.index, job.launches);
    } else {
      corrupt_snapshot_bytes(bytes);
    }
    std::ofstream out(job.path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  // Classify a finished attempt and advance the job's state machine.
  void settle(Job& job, const util::ExitStatus& status, bool timed_out, InjectedFault injected) {
    WorkerFault fault = WorkerFault::kNone;
    std::string detail;
    if (timed_out) {
      fault = WorkerFault::kTimeoutKill;
      detail = "deadline of " + std::to_string(config_.attempt_deadline) + "s exceeded";
    } else if (!status.success()) {
      fault = WorkerFault::kCrash;
      detail = status.exited ? "exit code " + std::to_string(status.exit_code)
                             : "killed by signal " + std::to_string(status.term_signal);
    } else {
      apply_post_faults(job, injected);
      fault = validate(job, detail);
    }

    if (fault == WorkerFault::kNone) {
      job.state = JobState::kDone;
      if (metrics_.jobs_done != nullptr) metrics_.jobs_done->add();
      log("job %zu done after %d attempt%s", job.index, job.launches,
          job.launches == 1 ? "" : "s");
      return;
    }

    ++job.failed_attempts;
    job.faults.push_back(fault);
    fault_counts_[fault] += 1;
    if (metrics_.faults[static_cast<std::size_t>(fault)] != nullptr) {
      metrics_.faults[static_cast<std::size_t>(fault)]->add();
    }
    if (config_.retry.should_retry(job.failed_attempts)) {
      const double backoff = config_.retry.backoff_seconds(job.index, job.failed_attempts);
      job.state = JobState::kRetrying;
      job.eligible_at = clock_.now() + backoff;
      if (metrics_.retries != nullptr) metrics_.retries->add();
      if (metrics_.backoff_seconds != nullptr) metrics_.backoff_seconds->add(backoff);
      log("job %zu attempt %d failed: %s (%s); retrying in %.3fs", job.index, job.launches,
          to_string(fault), detail.c_str(), backoff);
    } else {
      job.state = JobState::kFailed;
      if (metrics_.jobs_failed != nullptr) metrics_.jobs_failed->add();
      log("job %zu FAILED after %d attempts: %s (%s); traces [%zu, %zu) will be missing",
          job.index, job.launches, to_string(fault), detail.c_str(), job.lo, job.hi);
    }
  }

  // Decode + validate a delivered snapshot; on success move its shards
  // into the incremental store.  The worker's exit status already said
  // "ok" — this is where its output earns trust.
  WorkerFault validate(const Job& job, std::string& detail) {
    snapshot::Snapshot snap;
    try {
      snap = snapshot::read_snapshot(job.path);
    } catch (const snapshot::SnapshotError& e) {
      detail = e.what();
      return classify_snapshot_error(e);
    } catch (const std::exception& e) {
      // Cannot open / cannot read: the worker "succeeded" without
      // delivering a file — the byte-level analogue of truncation.
      detail = e.what();
      return WorkerFault::kTruncatedSnapshot;
    }
    const std::string mismatch = describe_range_mismatch(snap, meta_, job.lo, job.hi);
    if (!mismatch.empty()) {
      detail = mismatch;
      return WorkerFault::kWrongTraceRange;
    }
    for (snapshot::SnapshotShard& shard : snap.shards) {
      shards_[shard.trace_index] = std::move(shard.shard);
    }
    return WorkerFault::kNone;
  }

  OrchestrateResult finish() {
    OrchestrateResult result;
    result.spec = spec_;
    result.fault_counts = fault_counts_;
    std::vector<std::uint32_t> present;
    present.reserve(shards_.size());
    for (const auto& [index, shard] : shards_) present.push_back(index);
    result.manifest = manifest_for(meta_, present);
    result.complete = result.manifest.complete();

    for (const Job& job : jobs_) {
      JobOutcome outcome;
      outcome.index = job.index;
      outcome.lo = job.lo;
      outcome.hi = job.hi;
      outcome.state = job.state;
      outcome.attempts = job.launches;
      outcome.faults = job.faults;
      result.attempts += static_cast<std::uint64_t>(job.launches);
      result.retries +=
          static_cast<std::uint64_t>(std::max(0, job.launches - 1));
      result.jobs.push_back(std::move(outcome));
    }

    // The deterministic fold, in trace-index order (std::map iteration) —
    // the exact code path analyze_dataset and entrace_merge share, which is
    // what makes the merged report byte-identical to a direct run.
    const EnterpriseModel model;
    std::vector<TraceShard> shards;
    shards.reserve(shards_.size());
    for (auto& [index, shard] : shards_) shards.push_back(std::move(shard));
    result.shards_folded = shards.size();
    result.analysis =
        fold_shards(spec_.name, std::move(shards), default_config_for_model(model.site()));
    shards_.clear();

    if (!config_.keep_files) {
      std::error_code ec;
      for (const Job& job : jobs_) {
        std::filesystem::remove(job.path, ec);
        std::filesystem::remove(job.path + ".tmp", ec);
      }
    }
    return result;
  }

  const OrchestratorConfig& config_;
  util::Clock& clock_;
  Metrics metrics_;
  DatasetSpec spec_;
  snapshot::SnapshotMeta meta_;
  std::size_t trace_count_ = 0;
  std::vector<Job> jobs_;
  std::vector<RunningWorker> running_;
  std::map<std::uint32_t, TraceShard> shards_;
  WorkerFaultCounts fault_counts_;
};

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kRunning:
      return "running";
    case JobState::kRetrying:
      return "retrying";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

OrchestrateResult orchestrate(const OrchestratorConfig& config) {
  util::SystemClock system_clock;
  util::Clock& clock = config.clock != nullptr ? *config.clock : system_clock;
  return Supervisor(config, clock).run();
}

std::string render_report(const OrchestrateResult& result) {
  std::string out;
  if (!result.complete) {
    out += partial_banner(result.manifest);
    out += result.manifest.render();
    out += "\n";
    if (result.shards_folded == 0) {
      out += "(no traces were analyzed; the report body is omitted)\n";
      return out;
    }
  }
  const report::ReportInput input{&result.spec, &result.analysis};
  const std::vector<report::ReportInput> inputs{input};
  out += report::full_report(inputs);
  return out;
}

}  // namespace entrace::orchestrate
