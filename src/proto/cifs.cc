#include "proto/cifs.h"

#include "net/bytes.h"
#include "proto/netbios.h"

namespace entrace {
namespace {

constexpr std::size_t kSmbHeaderSize = 32;

void encode_smb_header(ByteWriter& w, std::uint8_t cmd, std::uint16_t mid, bool is_response) {
  w.u8(0xFF);
  w.bytes(std::string_view("SMB"));
  w.u8(cmd);
  w.u32le(0);                          // status
  w.u8(is_response ? 0x80 : 0x00);     // flags: reply bit
  w.u16le(0);                          // flags2
  w.u16le(0);                          // pid high
  w.zeros(8);                          // signature
  w.u16le(0);                          // reserved
  w.u16le(1);                          // tid
  w.u16le(100);                        // pid
  w.u16le(1);                          // uid
  w.u16le(mid);
}

}  // namespace

std::vector<std::uint8_t> nbss_frame(std::uint8_t type, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + payload.size());
  ByteWriter w(out);
  w.u8(type);
  w.u8(0);
  w.u16be(static_cast<std::uint16_t>(payload.size()));
  w.bytes(payload);
  return out;
}

std::vector<std::uint8_t> nbss_session_request(const std::string& called,
                                               const std::string& calling) {
  std::vector<std::uint8_t> payload;
  ByteWriter w(payload);
  auto put_name = [&w](const std::string& name) {
    const std::string encoded = nbns_encode_name(name, nbns_suffix::kServer);
    w.u8(32);
    w.bytes(encoded);
    w.u8(0);
  };
  put_name(called);
  put_name(calling);
  return nbss_frame(nbss::kSessionRequest, payload);
}

std::vector<std::uint8_t> nbss_session_response(bool positive) {
  return nbss_frame(positive ? nbss::kPositiveResponse : nbss::kNegativeResponse, {});
}

std::vector<std::uint8_t> smb_message(std::uint8_t cmd, std::uint16_t mid, bool is_response,
                                      std::span<const std::uint8_t> words,
                                      std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> smb;
  smb.reserve(kSmbHeaderSize + 3 + words.size() + bytes.size());
  ByteWriter w(smb);
  encode_smb_header(w, cmd, mid, is_response);
  w.u8(static_cast<std::uint8_t>(words.size() / 2));
  w.bytes(words);
  w.u16le(static_cast<std::uint16_t>(bytes.size()));
  w.bytes(bytes);
  return nbss_frame(nbss::kSessionMessage, smb);
}

std::vector<std::uint8_t> smb_simple(std::uint8_t cmd, std::uint16_t mid, bool is_response,
                                     std::size_t byte_payload) {
  std::vector<std::uint8_t> bytes(byte_payload, 0x41);
  return smb_message(cmd, mid, is_response, {}, bytes);
}

std::vector<std::uint8_t> smb_ntcreate_request(std::uint16_t mid, const std::string& path) {
  std::vector<std::uint8_t> bytes(path.begin(), path.end());
  bytes.push_back(0);
  std::vector<std::uint8_t> words = {0, 0};  // reserved
  return smb_message(smbcmd::kNtCreate, mid, false, words, bytes);
}

std::vector<std::uint8_t> smb_ntcreate_response(std::uint16_t mid, std::uint16_t fid) {
  std::vector<std::uint8_t> words;
  ByteWriter w(words);
  w.u16le(fid);
  return smb_message(smbcmd::kNtCreate, mid, true, words, {});
}

std::vector<std::uint8_t> smb_read_request(std::uint16_t mid, std::uint16_t fid,
                                           std::uint16_t count) {
  std::vector<std::uint8_t> words;
  ByteWriter w(words);
  w.u16le(fid);
  w.u16le(count);
  return smb_message(smbcmd::kReadAndX, mid, false, words, {});
}

std::vector<std::uint8_t> smb_read_response(std::uint16_t mid, std::uint16_t fid,
                                            std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> words;
  ByteWriter w(words);
  w.u16le(fid);
  return smb_message(smbcmd::kReadAndX, mid, true, words, data);
}

std::vector<std::uint8_t> smb_write_request(std::uint16_t mid, std::uint16_t fid,
                                            std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> words;
  ByteWriter w(words);
  w.u16le(fid);
  w.u16le(static_cast<std::uint16_t>(data.size()));
  return smb_message(smbcmd::kWriteAndX, mid, false, words, data);
}

std::vector<std::uint8_t> smb_write_response(std::uint16_t mid, std::uint16_t fid) {
  std::vector<std::uint8_t> words;
  ByteWriter w(words);
  w.u16le(fid);
  return smb_message(smbcmd::kWriteAndX, mid, true, words, {});
}

std::vector<std::uint8_t> smb_trans(std::uint16_t mid, bool is_response,
                                    const std::string& pipe_name, std::size_t data_len) {
  std::vector<std::uint8_t> bytes(pipe_name.begin(), pipe_name.end());
  bytes.push_back(0);
  bytes.insert(bytes.end(), data_len, 0x42);
  return smb_message(smbcmd::kTrans, mid, is_response, {}, bytes);
}

std::optional<DceIface> pipe_iface(const std::string& name) {
  std::string n;
  for (char c : name) n += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (n == "\\netlogon") return DceIface::kNetLogon;
  if (n == "\\lsarpc") return DceIface::kLsaRpc;
  if (n == "\\spoolss") return DceIface::kSpoolss;
  if (n == "\\samr") return DceIface::kSamr;
  if (n == "\\wkssvc") return DceIface::kWkssvc;
  if (n == "\\srvsvc") return DceIface::kOther;
  return std::nullopt;
}

// ---- Parser -----------------------------------------------------------------

CifsParser::CifsParser(AppEvents& events, bool netbios_framing)
    : events_(events), netbios_framing_(netbios_framing) {}

void CifsParser::on_data(Connection& conn, Direction dir, double ts,
                         std::span<const std::uint8_t> data) {
  if (broken_) return;
  StreamBuffer& buf = dir == Direction::kOrigToResp ? client_buf_ : server_buf_;
  buf.append(data);
  if (buf.overflowed()) {
    broken_ = true;
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  parse_stream(conn, dir, ts, buf);
}

void CifsParser::parse_stream(Connection& conn, Direction dir, double ts, StreamBuffer& buf) {
  for (;;) {
    auto avail = buf.data();
    if (avail.size() < 4) return;
    const std::uint8_t type = avail[0];
    const std::uint32_t len = (static_cast<std::uint32_t>(avail[2]) << 8) | avail[3];
    if (avail.size() < 4 + len) return;
    const auto payload = avail.subspan(4, len);

    switch (type) {
      case nbss::kSessionRequest:
        events_.nbss.push_back({&conn, ts, NbssEventType::kRequest});
        break;
      case nbss::kPositiveResponse:
        events_.nbss.push_back({&conn, ts, NbssEventType::kPositiveResponse});
        break;
      case nbss::kNegativeResponse:
        events_.nbss.push_back({&conn, ts, NbssEventType::kNegativeResponse});
        break;
      case nbss::kSessionMessage:
        handle_smb(conn, dir, ts, payload, len + 4);
        break;
      default:
        // Unknown NBSS frame type: the framing is lost, bail on the stream.
        broken_ = true;
        note_anomaly(AnomalyKind::kAppParseError);
        return;
    }
    buf.consume(4 + len);
  }
}

CifsParser::PipeState& CifsParser::pipe_state(std::uint16_t fid) {
  auto it = pipes_.find(fid);
  if (it == pipes_.end()) {
    auto [new_it, _] = pipes_.emplace(fid, PipeState{});
    new_it->second.session =
        std::make_unique<DceRpcSession>(events_.dcerpc, events_.epm, /*over_pipe=*/true);
    return new_it->second;
  }
  return it->second;
}

void CifsParser::handle_smb(Connection& conn, Direction dir, double ts,
                            std::span<const std::uint8_t> smb, std::uint32_t framed_len) {
  ByteReader r(smb);
  if (r.u8() != 0xFF || r.string(3) != "SMB") {
    broken_ = true;
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  const std::uint8_t cmd = r.u8();
  r.u32le();  // status
  r.u8();     // flags
  r.u16le();  // flags2
  r.u16le();  // pid high
  r.skip(8);  // signature
  r.u16le();  // reserved
  r.u16le();  // tid
  r.u16le();  // pid
  r.u16le();  // uid
  const std::uint16_t mid = r.u16le();
  const std::uint8_t word_count = r.u8();
  auto words = r.bytes(static_cast<std::size_t>(word_count) * 2);
  const std::uint16_t byte_count = r.u16le();
  auto bytes = r.bytes(byte_count);
  if (!r.ok()) {
    // SMB message shorter than its own word/byte counts claim.
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }

  auto word_u16 = [&words](std::size_t idx) -> std::uint16_t {
    if (words.size() < (idx + 1) * 2) return 0;
    return static_cast<std::uint16_t>(words[idx * 2]) |
           static_cast<std::uint16_t>(words[idx * 2 + 1]) << 8;
  };

  std::uint16_t fid = 0;
  std::string trans_name;

  switch (cmd) {
    case smbcmd::kNtCreate: {
      if (dir == Direction::kOrigToResp) {
        // Request: path in bytes (nul-terminated).
        std::string path(reinterpret_cast<const char*>(bytes.data()),
                         bytes.empty() ? 0 : bytes.size() - 1);
        pending_creates_[mid] = path;
      } else {
        fid = word_u16(0);
        auto it = pending_creates_.find(mid);
        if (it != pending_creates_.end()) {
          if (auto iface = pipe_iface(it->second)) {
            pipe_fids_[fid] = *iface;
          } else {
            pipe_fids_.erase(fid);
          }
          pending_creates_.erase(it);
        }
      }
      break;
    }
    case smbcmd::kReadAndX:
    case smbcmd::kWriteAndX: {
      fid = word_u16(0);
      // Pipe payloads carry DCE/RPC: client writes requests, reads replies.
      auto pit = pipe_fids_.find(fid);
      if (pit != pipe_fids_.end()) {
        PipeState& ps = pipe_state(fid);
        std::vector<DcePdu> pdus;
        if (cmd == smbcmd::kWriteAndX && dir == Direction::kOrigToResp) {
          ps.to_server.feed(bytes, pdus, anomaly_sink());
        } else if (cmd == smbcmd::kReadAndX && dir == Direction::kRespToOrig) {
          ps.to_client.feed(bytes, pdus, anomaly_sink());
        }
        for (const auto& pdu : pdus) ps.session->handle_pdu(conn, ts, pdu);
      }
      break;
    }
    case smbcmd::kTrans: {
      // Name is the leading nul-terminated string in bytes.
      const auto* p = bytes.data();
      std::size_t n = 0;
      while (n < bytes.size() && p[n] != 0) ++n;
      trans_name.assign(reinterpret_cast<const char*>(p), n);
      break;
    }
    default:
      break;
  }

  CifsCommand evt;
  evt.conn = &conn;
  evt.ts = ts;
  evt.command = cmd;
  evt.category = classify(cmd, fid, trans_name);
  evt.dir = dir;
  evt.msg_bytes = framed_len;
  events_.cifs.push_back(evt);
}

CifsCategory CifsParser::classify(std::uint8_t cmd, std::uint16_t fid,
                                  const std::string& trans_name) {
  switch (cmd) {
    case smbcmd::kNegotiate:
    case smbcmd::kSessionSetup:
    case smbcmd::kLogoff:
    case smbcmd::kTreeConnect:
    case smbcmd::kTreeDisconnect:
    case smbcmd::kNtCreate:
    case smbcmd::kClose:
      // Paper Table 10: "SMB basic" covers negotiation, session setup/
      // teardown, tree connect/disconnect and file/pipe open.
      return CifsCategory::kSmbBasic;
    case smbcmd::kReadAndX:
    case smbcmd::kWriteAndX:
      return pipe_fids_.count(fid) ? CifsCategory::kRpcPipe : CifsCategory::kFileSharing;
    case smbcmd::kTrans: {
      std::string lower;
      for (char c : trans_name)
        lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      if (lower == "\\pipe\\lanman") return CifsCategory::kLanman;
      return CifsCategory::kRpcPipe;
    }
    default:
      return CifsCategory::kOther;
  }
}

}  // namespace entrace
