// DCE/RPC connection-oriented PDUs (§5.2.1, Table 11).
//
// The paper had to build rich analyzers to attribute Windows traffic to
// DCE/RPC functions across two channels: named pipes over CIFS and
// stand-alone TCP endpoints discovered via the Endpoint Mapper.  This
// module provides PDU encode/decode and a stream reassembler used by both
// channels: the CifsParser feeds pipe write/read payloads through
// DceRpcStream, and DceRpcParser handles stand-alone TCP connections.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/ip_address.h"
#include "proto/events.h"
#include "proto/parser.h"
#include "proto/stream_buffer.h"

namespace entrace {

namespace dce_ptype {
inline constexpr std::uint8_t kRequest = 0;
inline constexpr std::uint8_t kResponse = 2;
inline constexpr std::uint8_t kBind = 11;
inline constexpr std::uint8_t kBindAck = 12;
}  // namespace dce_ptype

using DceUuid = std::array<std::uint8_t, 16>;

// Well-known interface UUIDs.
const DceUuid& dce_uuid(DceIface iface);
DceIface dce_iface_from_uuid(const DceUuid& uuid);

struct DcePdu {
  std::uint8_t ptype = dce_ptype::kRequest;
  std::uint32_t call_id = 0;
  std::uint16_t frag_len = 0;
  std::uint16_t opnum = 0;           // valid for requests
  std::optional<DceUuid> bind_uuid;  // valid for binds
  std::vector<std::uint8_t> stub;    // stub data (requests/responses)
};

std::vector<std::uint8_t> encode_dce_bind(std::uint32_t call_id, const DceUuid& iface);
std::vector<std::uint8_t> encode_dce_bind_ack(std::uint32_t call_id);
std::vector<std::uint8_t> encode_dce_request(std::uint32_t call_id, std::uint16_t opnum,
                                             std::size_t stub_len);
std::vector<std::uint8_t> encode_dce_response(std::uint32_t call_id, std::size_t stub_len);
// Request with explicit stub content (used for EPM).
std::vector<std::uint8_t> encode_dce_request_stub(std::uint32_t call_id, std::uint16_t opnum,
                                                  std::span<const std::uint8_t> stub);
std::vector<std::uint8_t> encode_dce_response_stub(std::uint32_t call_id,
                                                   std::span<const std::uint8_t> stub);

// EPM ept_map stub: [iface uuid][ipv4][port].
std::vector<std::uint8_t> encode_epm_map_stub(const DceUuid& iface, Ipv4Address server,
                                              std::uint16_t port);
bool decode_epm_map_stub(std::span<const std::uint8_t> stub, DceUuid& iface, Ipv4Address& server,
                         std::uint16_t& port);

// Decode a single PDU from a complete buffer (frag_len bytes).
std::optional<DcePdu> decode_dce_pdu(std::span<const std::uint8_t> data);

// Reassembles a byte stream into PDUs.
class DceRpcStream {
 public:
  // Feed data; complete PDUs are appended to `out`.  When `anomalies` is
  // non-null, garbage-byte resyncs (once per contiguous run) and buffer
  // overflow (once per stream) are counted as kAppParseError.
  void feed(std::span<const std::uint8_t> data, std::vector<DcePdu>& out,
            AnomalyCounts* anomalies = nullptr);

 private:
  StreamBuffer buf_;
  bool overflow_noted_ = false;
};

// Sink shared by the stand-alone parser and the CIFS pipe path: translates
// PDUs into DceRpcCall / EpmMapping events.
class DceRpcSession {
 public:
  DceRpcSession(std::vector<DceRpcCall>& calls, std::vector<EpmMapping>& mappings,
                bool over_pipe);

  void handle_pdu(Connection& conn, double ts, const DcePdu& pdu);
  DceIface bound_iface() const { return iface_; }

 private:
  std::vector<DceRpcCall>& calls_;
  std::vector<EpmMapping>& mappings_;
  bool over_pipe_;
  DceIface iface_ = DceIface::kOther;
  std::map<std::uint32_t, std::uint16_t> call_opnums_;
};

class DceRpcParser : public AppParser {
 public:
  DceRpcParser(std::vector<DceRpcCall>& calls, std::vector<EpmMapping>& mappings);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;

 private:
  DceRpcStream orig_stream_;
  DceRpcStream resp_stream_;
  DceRpcSession session_;
};

}  // namespace entrace
