// Netware Core Protocol over IP (§5.2.2, Tables 12 & 14, Figures 7-8).
//
// NCP is, as the paper puts it, "a veritable kitchen-sink protocol
// supporting hundreds of message types, but primarily used within the
// enterprise for file-sharing and print service".  We implement the
// NCP-over-IP framing (the 'DmdT' signature) and the request function
// codes needed for the Table 14 breakdown, plus the paper's observed
// reply-size modes (2-byte completion-only replies, 10-byte GetFileSize
// replies, 260-byte ReadFile replies).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "proto/events.h"
#include "proto/parser.h"
#include "proto/stream_buffer.h"

namespace entrace {

namespace ncpfn {
inline constexpr std::uint8_t kRead = 72;
inline constexpr std::uint8_t kWrite = 73;
inline constexpr std::uint8_t kClose = 66;
inline constexpr std::uint8_t kOpen = 76;
inline constexpr std::uint8_t kGetFileSize = 71;
inline constexpr std::uint8_t kFileDirInfo = 87;
inline constexpr std::uint8_t kSearch = 62;
inline constexpr std::uint8_t kNds = 104;
}  // namespace ncpfn

struct NcpMessage {
  bool is_request = true;
  std::uint8_t sequence = 0;
  std::uint8_t function = 0;     // requests
  std::uint8_t completion = 0;   // replies (0 = success)
  std::uint32_t total_len = 0;   // framed length
};

std::vector<std::uint8_t> encode_ncp_request(std::uint8_t sequence, std::uint8_t function,
                                             std::size_t payload_len);
std::vector<std::uint8_t> encode_ncp_reply(std::uint8_t sequence, std::uint8_t completion,
                                           std::size_t payload_len);

NcpFunction ncp_function_enum(std::uint8_t function);

class NcpParser : public AppParser {
 public:
  explicit NcpParser(std::vector<NcpCall>& out);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;
  void on_close(Connection& conn) override;

 private:
  void handle_message(Connection& conn, double ts, const NcpMessage& msg);

  std::vector<NcpCall>& out_;
  bool broken_ = false;  // a stream buffer overflowed; stop parsing
  StreamBuffer orig_buf_;
  StreamBuffer resp_buf_;
  std::map<std::uint8_t, NcpCall> pending_;
};

}  // namespace entrace
