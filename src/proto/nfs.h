// SunRPC / NFSv3 (§5.2.2, Tables 12-13, Figures 7-8).
//
// Implements RPC call/reply encoding (RFC 5531 subset), TCP record marking,
// and a parser that pairs calls with replies by xid.  The paper's NFS
// analysis runs over both UDP and TCP NFS — it found, surprisingly, that
// UDP NFS still dominated in several datasets — so the parser handles both
// framings.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "proto/events.h"
#include "proto/parser.h"
#include "proto/stream_buffer.h"

namespace entrace {

inline constexpr std::uint32_t kNfsProgram = 100003;
inline constexpr std::uint32_t kNfsVersion = 3;

struct RpcMessage {
  std::uint32_t xid = 0;
  bool is_call = true;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  std::uint32_t status = 0;   // NFS status for replies
  std::uint32_t body_len = 0;  // total RPC message length
};

std::vector<std::uint8_t> encode_rpc_call(std::uint32_t xid, std::uint32_t prog,
                                          std::uint32_t vers, std::uint32_t proc,
                                          std::size_t arg_len);
std::vector<std::uint8_t> encode_rpc_reply(std::uint32_t xid, std::uint32_t nfs_status,
                                           std::size_t result_len);
// Wrap an RPC message with TCP record marking (single, final fragment).
std::vector<std::uint8_t> rpc_record_mark(std::span<const std::uint8_t> msg);

std::optional<RpcMessage> decode_rpc(std::span<const std::uint8_t> data);

class NfsParser : public AppParser {
 public:
  // is_tcp selects record-marking reassembly.
  NfsParser(std::vector<NfsCall>& out, bool is_tcp);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;
  // UDP NFS: an 8 KB read reply arrives as one (IP-fragmented) datagram and
  // may be snaplen-truncated; the wire length keeps size accounting honest.
  void on_datagram(Connection& conn, Direction dir, double ts,
                   std::span<const std::uint8_t> data, std::uint32_t wire_len) override;
  void on_close(Connection& conn) override;

 private:
  void handle_message(Connection& conn, double ts, std::span<const std::uint8_t> msg,
                      std::uint32_t wire_len);

  std::vector<NfsCall>& out_;
  bool is_tcp_;
  bool broken_ = false;  // a stream buffer overflowed; stop parsing
  StreamBuffer orig_buf_;
  StreamBuffer resp_buf_;
  std::map<std::uint32_t, NfsCall> pending_;
};

}  // namespace entrace
