// Per-direction stream buffer used by TCP application parsers for message
// framing.
//
// Parsers often know a message body's length from its header and have no
// need to buffer the body; skip() consumes bytes lazily so an 8 MB HTTP
// body costs no memory.  A hard cap bounds memory against pathological
// streams (binary data on a text port, etc.).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace entrace {

class StreamBuffer {
 public:
  explicit StreamBuffer(std::size_t max_buffer = 256 * 1024);

  // Append incoming stream data (after discharging any pending skip).
  void append(std::span<const std::uint8_t> data);

  // Discard n bytes of stream: first from the buffer, the remainder from
  // future appends.
  void skip(std::uint64_t n);

  // Currently buffered contiguous data.
  std::span<const std::uint8_t> data() const { return {buffer_.data(), buffer_.size()}; }
  void consume(std::size_t n);

  std::uint64_t pending_skip() const { return pending_skip_; }
  // True once the buffer cap was hit; the parser should stop trying.
  bool overflowed() const { return overflowed_; }
  std::uint64_t total_seen() const { return total_seen_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::uint64_t pending_skip_ = 0;
  std::uint64_t total_seen_ = 0;
  std::size_t max_buffer_;
  bool overflowed_ = false;
};

}  // namespace entrace
