#include "proto/http.h"

#include <cstdlib>
#include <string>

#include "util/strings.h"

namespace entrace {
namespace httpdetail {

std::string_view find_header(std::string_view block, std::string_view name) {
  std::size_t pos = 0;
  while (pos < block.size()) {
    std::size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view line = block.substr(pos, eol - pos);
    if (line.size() > name.size() + 1 && line[name.size()] == ':' &&
        starts_with_icase(line, name)) {
      return trim(line.substr(name.size() + 1));
    }
    pos = eol + 2;
  }
  return {};
}

}  // namespace httpdetail

namespace {

std::string_view as_view(std::span<const std::uint8_t> data) {
  return {reinterpret_cast<const char*>(data.data()), data.size()};
}

std::uint64_t parse_content_length(std::string_view block) {
  const std::string_view v = httpdetail::find_header(block, "Content-Length");
  if (v.empty()) return 0;
  return std::strtoull(std::string(v).c_str(), nullptr, 10);
}

}  // namespace

HttpParser::HttpParser(std::vector<HttpTransaction>& out) : out_(out) {}

bool HttpParser::extract_header_block(const StreamBuffer& buf, std::string_view& block,
                                      std::size_t& consumed) {
  const std::string_view data = as_view(buf.data());
  const std::size_t end = data.find("\r\n\r\n");
  if (end == std::string_view::npos) return false;
  block = data.substr(0, end);
  consumed = end + 4;
  return true;
}

void HttpParser::on_data(Connection& conn, Direction dir, double ts,
                         std::span<const std::uint8_t> data) {
  if (dir == Direction::kOrigToResp) {
    if (client_broken_) return;
    client_buf_.append(data);
    if (client_buf_.overflowed()) {
      client_broken_ = true;
      note_anomaly(AnomalyKind::kAppParseError);
      return;
    }
    parse_requests(conn, ts);
  } else {
    if (server_broken_) return;
    server_buf_.append(data);
    if (server_buf_.overflowed()) {
      server_broken_ = true;
      note_anomaly(AnomalyKind::kAppParseError);
      return;
    }
    parse_responses(conn, ts);
  }
}

void HttpParser::parse_requests(Connection& conn, double ts) {
  std::string_view block;
  std::size_t consumed;
  while (extract_header_block(client_buf_, block, consumed)) {
    const std::size_t line_end = block.find("\r\n");
    const std::string_view request_line =
        line_end == std::string_view::npos ? block : block.substr(0, line_end);
    const auto parts = split(request_line, ' ');
    if (parts.size() < 3 || !parts[2].starts_with("HTTP/")) {
      // Not HTTP after all; stop parsing this connection.
      client_broken_ = true;
      note_anomaly(AnomalyKind::kAppParseError);
      return;
    }
    HttpTransaction txn;
    txn.conn = &conn;
    txn.req_ts = ts;
    txn.method = std::string(parts[0]);
    txn.uri = std::string(parts[1]);
    txn.host = std::string(httpdetail::find_header(block, "Host"));
    txn.user_agent = std::string(httpdetail::find_header(block, "User-Agent"));
    txn.conditional = !httpdetail::find_header(block, "If-Modified-Since").empty() ||
                      !httpdetail::find_header(block, "If-None-Match").empty();
    const std::uint64_t body = parse_content_length(block);
    client_buf_.consume(consumed);
    if (body > 0) client_buf_.skip(body);
    pending_.push_back(std::move(txn));
  }
}

void HttpParser::parse_responses(Connection& conn, double ts) {
  (void)conn;
  std::string_view block;
  std::size_t consumed;
  while (extract_header_block(server_buf_, block, consumed)) {
    const std::size_t line_end = block.find("\r\n");
    const std::string_view status_line =
        line_end == std::string_view::npos ? block : block.substr(0, line_end);
    if (!status_line.starts_with("HTTP/")) {
      server_broken_ = true;
      note_anomaly(AnomalyKind::kAppParseError);
      return;
    }
    const auto parts = split(status_line, ' ');
    const int status = parts.size() >= 2 ? std::atoi(std::string(parts[1]).c_str()) : 0;
    const std::uint64_t body = parse_content_length(block);
    std::string_view ctype = httpdetail::find_header(block, "Content-Type");
    // Strip parameters ("text/html; charset=...").
    const std::size_t semi = ctype.find(';');
    if (semi != std::string_view::npos) ctype = trim(ctype.substr(0, semi));

    server_buf_.consume(consumed);
    if (body > 0) server_buf_.skip(body);

    if (pending_.empty()) continue;  // response with no observed request
    HttpTransaction txn = std::move(pending_.front());
    pending_.pop_front();
    txn.has_response = true;
    txn.resp_ts = ts;
    txn.status = status;
    txn.content_type = std::string(ctype);
    txn.resp_body_len = body;
    out_.push_back(std::move(txn));
  }
}

void HttpParser::on_close(Connection& conn) {
  (void)conn;
  // Flush unanswered requests.
  for (auto& txn : pending_) out_.push_back(std::move(txn));
  pending_.clear();
}

}  // namespace entrace
