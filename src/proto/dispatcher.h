// ProtocolDispatcher: the glue between the flow table and the application
// parsers.  Identifies each connection (port-based plus dynamic DCE/RPC
// endpoints), instantiates the right parser, feeds it stream data, and
// registers Endpoint Mapper results back into the registry so later
// ephemeral-port connections are classified — mirroring the two-channel
// DCE/RPC analysis of §5.2.1.
#pragma once

#include <memory>
#include <unordered_map>

#include "flow/flow_table.h"
#include "proto/events.h"
#include "proto/parser.h"
#include "proto/registry.h"

namespace entrace {

class ProtocolDispatcher : public FlowObserver {
 public:
  // payload_analysis=false (header-only snaplen datasets D1/D2) identifies
  // connections but runs no payload parsers, as in the paper.
  // `anomalies` (optional) receives kAppParseError counts from the stream
  // parsers; it must outlive the dispatcher.
  ProtocolDispatcher(AppRegistry& registry, AppEvents& events, bool payload_analysis,
                     AnomalyCounts* anomalies = nullptr);

  void on_new_connection(Connection& conn) override;
  void on_data(Connection& conn, Direction dir, double ts, std::span<const std::uint8_t> data,
               std::uint32_t wire_len) override;
  void on_close(Connection& conn) override;

 private:
  std::unique_ptr<AppParser> make_parser(const Connection& conn, AppProtocol app);
  void register_new_epm_mappings();

  AppRegistry& registry_;
  AppEvents& events_;
  bool payload_analysis_;
  AnomalyCounts* anomalies_;
  std::unordered_map<const Connection*, std::unique_ptr<AppParser>> parsers_;
  std::size_t registered_epm_ = 0;
};

}  // namespace entrace
