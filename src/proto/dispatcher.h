// ProtocolDispatcher: the glue between the flow table and the application
// parsers.  Identifies each connection (port-based plus dynamic DCE/RPC
// endpoints), instantiates the right parser, feeds it stream data, and
// registers Endpoint Mapper results back into the registry so later
// ephemeral-port connections are classified — mirroring the two-channel
// DCE/RPC analysis of §5.2.1.
#pragma once

#include <vector>

#include "flow/flow_table.h"
#include "proto/events.h"
#include "proto/parser.h"
#include "proto/registry.h"
#include "util/arena.h"

namespace entrace {

class ProtocolDispatcher : public FlowObserver {
 public:
  // payload_analysis=false (header-only snaplen datasets D1/D2) identifies
  // connections but runs no payload parsers, as in the paper.
  // `anomalies` (optional) receives kAppParseError counts from the stream
  // parsers; it must outlive the dispatcher.
  ProtocolDispatcher(AppRegistry& registry, AppEvents& events, bool payload_analysis,
                     AnomalyCounts* anomalies = nullptr);
  ~ProtocolDispatcher() override;

  void on_new_connection(Connection& conn) override;
  void on_data(Connection& conn, Direction dir, double ts, std::span<const std::uint8_t> data,
               std::uint32_t wire_len) override;
  void on_close(Connection& conn) override;

  // The windowed engine moves the contents of `events_` out at each window
  // rotation (the vectors themselves stay alive, so parser references remain
  // valid).  This resets the EPM registration cursor to match the now-empty
  // event vectors; dynamic endpoints already registered stay registered.
  void on_events_rotated() { registered_epm_ = 0; }

 private:
  AppParser* make_parser(const Connection& conn, AppProtocol app);
  void register_new_epm_mappings();
  template <typename T, typename... Args>
  T* alloc_parser(Args&&... args);

  AppRegistry& registry_;
  AppEvents& events_;
  bool payload_analysis_;
  AnomalyCounts* anomalies_;
  // Parsers are bump-allocated from the per-dispatcher arena and addressed
  // by Connection::parser_slot — no per-connection heap new/delete and no
  // pointer-keyed hash lookup per data packet.  A slot is nulled (and its
  // parser destroyed) at on_close; the destructor sweeps whatever remains.
  // Closed parsers' arena blocks and slot indices are recycled through
  // per-size free lists, so an endless stream's dispatcher footprint is
  // bounded by the peak number of simultaneously open parsed connections.
  Arena arena_;
  std::vector<AppParser*> slots_;
  std::vector<std::uint32_t> slot_sizes_;
  std::vector<std::uint32_t> free_slots_;
  struct FreeList {
    std::uint32_t size;
    std::vector<void*> blocks;
  };
  std::vector<FreeList> free_mem_;
  std::uint32_t pending_size_ = 0;  // rounded size of the parser alloc_parser just made
  std::size_t registered_epm_ = 0;
};

}  // namespace entrace
