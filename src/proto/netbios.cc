#include "proto/netbios.h"

#include "net/bytes.h"

namespace entrace {

std::string nbns_encode_name(const std::string& name, std::uint8_t suffix) {
  std::string padded = name.substr(0, 15);
  for (char& c : padded) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  padded.resize(15, ' ');
  padded.push_back(static_cast<char>(suffix));
  std::string encoded;
  encoded.reserve(32);
  for (char c : padded) {
    const auto b = static_cast<std::uint8_t>(c);
    encoded.push_back(static_cast<char>('A' + (b >> 4)));
    encoded.push_back(static_cast<char>('A' + (b & 0x0F)));
  }
  return encoded;
}

bool nbns_decode_name(const std::string& encoded, std::string& name, std::uint8_t& suffix) {
  if (encoded.size() != 32) return false;
  std::string decoded;
  decoded.reserve(16);
  for (std::size_t i = 0; i < 32; i += 2) {
    const int hi = encoded[i] - 'A';
    const int lo = encoded[i + 1] - 'A';
    if (hi < 0 || hi > 15 || lo < 0 || lo > 15) return false;
    decoded.push_back(static_cast<char>((hi << 4) | lo));
  }
  suffix = static_cast<std::uint8_t>(decoded[15]);
  decoded.resize(15);
  while (!decoded.empty() && decoded.back() == ' ') decoded.pop_back();
  name = decoded;
  return true;
}

std::vector<std::uint8_t> encode_nbns(const NbnsMessage& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u16be(msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000 | 0x0400;  // response + authoritative
  flags |= static_cast<std::uint16_t>((msg.opcode & 0x0F) << 11);
  flags |= static_cast<std::uint16_t>(msg.rcode & 0x0F);
  w.u16be(flags);
  w.u16be(msg.is_response ? 0 : 1);  // qdcount
  w.u16be(msg.is_response ? 1 : 0);  // ancount
  w.u16be(0);
  w.u16be(0);
  const std::string encoded = nbns_encode_name(msg.name, msg.suffix);
  w.u8(32);
  w.bytes(encoded);
  w.u8(0);
  w.u16be(0x0020);  // NB
  w.u16be(1);       // IN
  if (msg.is_response) {
    w.u32be(300);   // TTL
    w.u16be(6);     // rdlength: flags + address
    w.u16be(0);     // nb_flags
    w.u32be(0x0A000001);
  }
  return out;
}

std::optional<NbnsMessage> decode_nbns(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  NbnsMessage msg;
  msg.id = r.u16be();
  const std::uint16_t flags = r.u16be();
  msg.is_response = (flags & 0x8000) != 0;
  msg.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  msg.rcode = flags & 0x0F;
  r.u16be();  // qdcount
  r.u16be();  // ancount
  r.u16be();
  r.u16be();
  const std::uint8_t name_len = r.u8();
  if (!r.ok() || name_len != 32) return std::nullopt;
  const std::string encoded = r.string(32);
  if (r.u8() != 0) return std::nullopt;  // label terminator
  if (!r.ok()) return std::nullopt;
  if (!nbns_decode_name(encoded, msg.name, msg.suffix)) return std::nullopt;
  return msg;
}

NbnsNameType nbns_name_type(std::uint8_t suffix) {
  switch (suffix) {
    case nbns_suffix::kWorkstation:
      return NbnsNameType::kWorkstation;
    case nbns_suffix::kServer:
      return NbnsNameType::kServer;
    case nbns_suffix::kDomainMaster:
    case nbns_suffix::kDomainGroup:
    case nbns_suffix::kBrowser:
      return NbnsNameType::kDomain;
    default:
      return NbnsNameType::kOther;
  }
}

NbnsOpcode nbns_opcode_enum(std::uint8_t opcode) {
  switch (opcode) {
    case nbns_opcode::kQuery:
      return NbnsOpcode::kQuery;
    case nbns_opcode::kRegistration:
      return NbnsOpcode::kRegistration;
    case nbns_opcode::kRelease:
      return NbnsOpcode::kRelease;
    case nbns_opcode::kRefresh:
      return NbnsOpcode::kRefresh;
    default:
      return NbnsOpcode::kStatus;
  }
}

NbnsParser::NbnsParser(std::vector<NbnsTransaction>& out) : out_(out) {}

void NbnsParser::on_data(Connection& conn, Direction dir, double ts,
                         std::span<const std::uint8_t> data) {
  (void)dir;
  auto msg = decode_nbns(data);
  if (!msg) {
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  if (!msg->is_response) {
    NbnsTransaction txn;
    txn.conn = &conn;
    txn.query_ts = ts;
    txn.opcode = nbns_opcode_enum(msg->opcode);
    txn.name_type = nbns_name_type(msg->suffix);
    txn.name = msg->name;
    pending_[msg->id] = std::move(txn);
  } else {
    auto it = pending_.find(msg->id);
    if (it == pending_.end()) return;
    NbnsTransaction txn = std::move(it->second);
    pending_.erase(it);
    txn.has_response = true;
    txn.resp_ts = ts;
    txn.rcode = msg->rcode;
    out_.push_back(std::move(txn));
  }
}

void NbnsParser::on_close(Connection& conn) {
  (void)conn;
  for (auto& [id, txn] : pending_) out_.push_back(std::move(txn));
  pending_.clear();
}

}  // namespace entrace
