// DNS wire format (RFC 1035, no name compression) — encoder used by the
// trace generator, decoder + transaction pairing used by the analysis
// (§5.1.3: request types, return codes, latency).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/events.h"
#include "proto/parser.h"

namespace entrace {

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = 0;
  int rcode = 0;
  std::string qname;
  std::uint16_t qtype = dnstype::kA;
  std::uint16_t ancount = 0;  // encoded as synthetic A records
};

std::vector<std::uint8_t> encode_dns(const DnsMessage& msg);
std::optional<DnsMessage> decode_dns(std::span<const std::uint8_t> data);

// Pairs queries with responses by transaction id within a flow.
class DnsParser : public AppParser {
 public:
  explicit DnsParser(std::vector<DnsTransaction>& out);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;
  void on_close(Connection& conn) override;

 private:
  std::vector<DnsTransaction>& out_;
  std::map<std::uint16_t, DnsTransaction> pending_;
};

}  // namespace entrace
