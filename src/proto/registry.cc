#include "proto/registry.h"

#include "net/headers.h"

namespace entrace {

const char* to_string(AppProtocol p) {
  switch (p) {
    case AppProtocol::kUnknown: return "unknown";
    case AppProtocol::kHttp: return "HTTP";
    case AppProtocol::kHttps: return "HTTPS";
    case AppProtocol::kSmtp: return "SMTP";
    case AppProtocol::kImap4: return "IMAP4";
    case AppProtocol::kImapS: return "IMAP/S";
    case AppProtocol::kPop3: return "POP3";
    case AppProtocol::kPopS: return "POP/S";
    case AppProtocol::kLdap: return "LDAP";
    case AppProtocol::kFtp: return "FTP";
    case AppProtocol::kFtpData: return "FTP-data";
    case AppProtocol::kHpss: return "HPSS";
    case AppProtocol::kSsh: return "SSH";
    case AppProtocol::kTelnet: return "telnet";
    case AppProtocol::kRlogin: return "rlogin";
    case AppProtocol::kX11: return "X11";
    case AppProtocol::kDns: return "DNS";
    case AppProtocol::kNetbiosNs: return "Netbios-NS";
    case AppProtocol::kSrvLoc: return "SrvLoc";
    case AppProtocol::kSunRpcPortmap: return "Portmapper";
    case AppProtocol::kNfs: return "NFS";
    case AppProtocol::kNcp: return "NCP";
    case AppProtocol::kDhcp: return "DHCP";
    case AppProtocol::kIdent: return "ident";
    case AppProtocol::kNtp: return "NTP";
    case AppProtocol::kSnmp: return "SNMP";
    case AppProtocol::kNavPing: return "NAV-ping";
    case AppProtocol::kSap: return "SAP";
    case AppProtocol::kNetInfoLocal: return "NetInfo-local";
    case AppProtocol::kRtsp: return "RTSP";
    case AppProtocol::kIpVideo: return "IPVideo";
    case AppProtocol::kRealStream: return "RealStream";
    case AppProtocol::kCifs: return "CIFS/SMB";
    case AppProtocol::kDceRpc: return "DCE/RPC";
    case AppProtocol::kNetbiosSsn: return "Netbios-SSN";
    case AppProtocol::kNetbiosDgm: return "Netbios-DGM";
    case AppProtocol::kEndpointMapper: return "EPM";
    case AppProtocol::kVeritasCtrl: return "Veritas-ctrl";
    case AppProtocol::kVeritasData: return "Veritas-data";
    case AppProtocol::kDantz: return "Dantz";
    case AppProtocol::kConnectedBackup: return "Connected-backup";
    case AppProtocol::kSteltor: return "Steltor";
    case AppProtocol::kMetaSys: return "MetaSys";
    case AppProtocol::kLpd: return "LPD";
    case AppProtocol::kIpp: return "IPP";
    case AppProtocol::kOracleSql: return "Oracle-SQL";
    case AppProtocol::kMsSql: return "MS-SQL";
  }
  return "?";
}

const char* to_string(AppCategory c) {
  switch (c) {
    case AppCategory::kWeb: return "web";
    case AppCategory::kEmail: return "email";
    case AppCategory::kNetFile: return "net-file";
    case AppCategory::kBackup: return "backup";
    case AppCategory::kBulk: return "bulk";
    case AppCategory::kName: return "name";
    case AppCategory::kInteractive: return "interactive";
    case AppCategory::kWindows: return "windows";
    case AppCategory::kStreaming: return "streaming";
    case AppCategory::kNetMgnt: return "net-mgnt";
    case AppCategory::kMisc: return "misc";
    case AppCategory::kOtherTcp: return "other-tcp";
    case AppCategory::kOtherUdp: return "other-udp";
  }
  return "?";
}

AppCategory category_of(AppProtocol p) {
  switch (p) {
    case AppProtocol::kHttp:
    case AppProtocol::kHttps:
      return AppCategory::kWeb;
    case AppProtocol::kSmtp:
    case AppProtocol::kImap4:
    case AppProtocol::kImapS:
    case AppProtocol::kPop3:
    case AppProtocol::kPopS:
    case AppProtocol::kLdap:
      return AppCategory::kEmail;
    case AppProtocol::kFtp:
    case AppProtocol::kFtpData:
    case AppProtocol::kHpss:
      return AppCategory::kBulk;
    case AppProtocol::kSsh:
    case AppProtocol::kTelnet:
    case AppProtocol::kRlogin:
    case AppProtocol::kX11:
      return AppCategory::kInteractive;
    case AppProtocol::kDns:
    case AppProtocol::kNetbiosNs:
    case AppProtocol::kSrvLoc:
    case AppProtocol::kSunRpcPortmap:
      return AppCategory::kName;
    case AppProtocol::kNfs:
    case AppProtocol::kNcp:
      return AppCategory::kNetFile;
    case AppProtocol::kDhcp:
    case AppProtocol::kIdent:
    case AppProtocol::kNtp:
    case AppProtocol::kSnmp:
    case AppProtocol::kNavPing:
    case AppProtocol::kSap:
    case AppProtocol::kNetInfoLocal:
      return AppCategory::kNetMgnt;
    case AppProtocol::kRtsp:
    case AppProtocol::kIpVideo:
    case AppProtocol::kRealStream:
      return AppCategory::kStreaming;
    case AppProtocol::kCifs:
    case AppProtocol::kDceRpc:
    case AppProtocol::kNetbiosSsn:
    case AppProtocol::kNetbiosDgm:
    case AppProtocol::kEndpointMapper:
      return AppCategory::kWindows;
    case AppProtocol::kVeritasCtrl:
    case AppProtocol::kVeritasData:
    case AppProtocol::kDantz:
    case AppProtocol::kConnectedBackup:
      return AppCategory::kBackup;
    case AppProtocol::kSteltor:
    case AppProtocol::kMetaSys:
    case AppProtocol::kLpd:
    case AppProtocol::kIpp:
    case AppProtocol::kOracleSql:
    case AppProtocol::kMsSql:
      return AppCategory::kMisc;
    case AppProtocol::kUnknown:
      break;
  }
  return AppCategory::kOtherTcp;  // caller refines unknown by transport
}

AppRegistry::AppRegistry() {
  auto tcp = [this](std::uint16_t port, AppProtocol p) { ports_[{ipproto::kTcp, port}] = p; };
  auto udp = [this](std::uint16_t port, AppProtocol p) { ports_[{ipproto::kUdp, port}] = p; };

  tcp(ports::kHttp, AppProtocol::kHttp);
  tcp(ports::kHttpAlt, AppProtocol::kHttp);
  tcp(ports::kHttps, AppProtocol::kHttps);
  tcp(ports::kSmtp, AppProtocol::kSmtp);
  tcp(ports::kImap4, AppProtocol::kImap4);
  tcp(ports::kImapS, AppProtocol::kImapS);
  tcp(ports::kPop3, AppProtocol::kPop3);
  tcp(ports::kPopS, AppProtocol::kPopS);
  tcp(ports::kLdap, AppProtocol::kLdap);
  udp(ports::kLdap, AppProtocol::kLdap);
  tcp(ports::kFtp, AppProtocol::kFtp);
  tcp(ports::kFtpData, AppProtocol::kFtpData);
  tcp(ports::kHpss, AppProtocol::kHpss);
  tcp(ports::kSsh, AppProtocol::kSsh);
  tcp(ports::kTelnet, AppProtocol::kTelnet);
  tcp(ports::kRlogin, AppProtocol::kRlogin);
  tcp(ports::kX11, AppProtocol::kX11);
  tcp(ports::kDns, AppProtocol::kDns);
  udp(ports::kDns, AppProtocol::kDns);
  udp(ports::kNetbiosNs, AppProtocol::kNetbiosNs);
  udp(ports::kNetbiosDgm, AppProtocol::kNetbiosDgm);
  tcp(ports::kNetbiosSsn, AppProtocol::kNetbiosSsn);
  tcp(ports::kSrvLoc, AppProtocol::kSrvLoc);
  udp(ports::kSrvLoc, AppProtocol::kSrvLoc);
  tcp(ports::kPortmap, AppProtocol::kSunRpcPortmap);
  udp(ports::kPortmap, AppProtocol::kSunRpcPortmap);
  tcp(ports::kNfs, AppProtocol::kNfs);
  udp(ports::kNfs, AppProtocol::kNfs);
  tcp(ports::kNcp, AppProtocol::kNcp);
  udp(ports::kDhcpServer, AppProtocol::kDhcp);
  udp(ports::kDhcpClient, AppProtocol::kDhcp);
  tcp(ports::kIdent, AppProtocol::kIdent);
  udp(ports::kNtp, AppProtocol::kNtp);
  udp(ports::kSnmp, AppProtocol::kSnmp);
  udp(ports::kNavPing, AppProtocol::kNavPing);
  udp(ports::kSap, AppProtocol::kSap);
  udp(ports::kNetInfoLocal, AppProtocol::kNetInfoLocal);
  tcp(ports::kNetInfoLocal, AppProtocol::kNetInfoLocal);
  tcp(ports::kRtsp, AppProtocol::kRtsp);
  udp(ports::kIpVideo, AppProtocol::kIpVideo);
  tcp(ports::kRealStream, AppProtocol::kRealStream);
  udp(ports::kRealStream, AppProtocol::kRealStream);
  tcp(ports::kCifs, AppProtocol::kCifs);
  tcp(ports::kEpm, AppProtocol::kEndpointMapper);
  udp(ports::kEpm, AppProtocol::kEndpointMapper);
  tcp(ports::kVeritasCtrl, AppProtocol::kVeritasCtrl);
  tcp(ports::kVeritasData, AppProtocol::kVeritasData);
  tcp(ports::kDantz, AppProtocol::kDantz);
  udp(ports::kDantz, AppProtocol::kDantz);
  tcp(ports::kConnected, AppProtocol::kConnectedBackup);
  tcp(ports::kSteltor, AppProtocol::kSteltor);
  tcp(ports::kMetaSys, AppProtocol::kMetaSys);
  udp(ports::kMetaSys, AppProtocol::kMetaSys);
  tcp(ports::kLpd, AppProtocol::kLpd);
  tcp(ports::kIpp, AppProtocol::kIpp);
  tcp(ports::kOracleSql, AppProtocol::kOracleSql);
  tcp(ports::kMsSql, AppProtocol::kMsSql);
  udp(ports::kMsSql, AppProtocol::kMsSql);
}

AppProtocol AppRegistry::lookup(std::uint8_t proto, std::uint16_t port) const {
  auto it = ports_.find({proto, port});
  return it == ports_.end() ? AppProtocol::kUnknown : it->second;
}

AppProtocol AppRegistry::identify(const Connection& conn) const {
  const std::uint8_t proto = conn.key.proto;
  if (proto != ipproto::kTcp && proto != ipproto::kUdp) return AppProtocol::kUnknown;
  AppProtocol p = lookup(proto, conn.key.dst_port);
  if (p != AppProtocol::kUnknown) return p;
  p = lookup(proto, conn.key.src_port);
  if (p != AppProtocol::kUnknown) return p;
  if (proto == ipproto::kTcp) {
    if (is_dcerpc_endpoint(conn.key.dst, conn.key.dst_port) ||
        is_dcerpc_endpoint(conn.key.src, conn.key.src_port))
      return AppProtocol::kDceRpc;
  }
  return AppProtocol::kUnknown;
}

void AppRegistry::register_dcerpc_endpoint(Ipv4Address server, std::uint16_t port) {
  dcerpc_endpoints_[{server.value(), port}] = true;
}

bool AppRegistry::is_dcerpc_endpoint(Ipv4Address server, std::uint16_t port) const {
  return dcerpc_endpoints_.count({server.value(), port}) > 0;
}

void AppRegistry::merge_dynamic_endpoints(const AppRegistry& other) {
  dcerpc_endpoints_.insert(other.dcerpc_endpoints_.begin(), other.dcerpc_endpoints_.end());
}

}  // namespace entrace
