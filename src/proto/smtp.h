// Light SMTP command parsing.  The paper analyzes email mostly at the
// transport layer (payloads are often encrypted); we parse the SMTP command
// stream where visible, both to validate the email traffic model and to
// classify connections.
#pragma once

#include <vector>

#include "proto/events.h"
#include "proto/parser.h"
#include "proto/stream_buffer.h"

namespace entrace {

class SmtpParser : public AppParser {
 public:
  explicit SmtpParser(std::vector<SmtpCommand>& out);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;

 private:
  std::vector<SmtpCommand>& out_;
  StreamBuffer client_buf_;
  bool in_data_ = false;  // between DATA and the dot terminator
  bool broken_ = false;   // command buffer overflowed; stop parsing
};

}  // namespace entrace
