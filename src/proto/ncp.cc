#include "proto/ncp.h"

#include "net/bytes.h"

namespace entrace {
namespace {

constexpr std::uint32_t kNcpSignature = 0x446D6454;  // 'DmdT'
constexpr std::size_t kFrameHeader = 8;              // signature + length
constexpr std::size_t kNcpHeader = 8;                // type..function/completion

std::vector<std::uint8_t> encode_frame(std::uint16_t type, std::uint8_t sequence,
                                       std::uint8_t code, std::size_t payload_len) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeader + kNcpHeader + payload_len);
  ByteWriter w(out);
  w.u32be(kNcpSignature);
  w.u32be(static_cast<std::uint32_t>(kFrameHeader + kNcpHeader + payload_len));
  w.u16be(type);
  w.u8(sequence);
  w.u8(1);     // connection number (low)
  w.u8(0);     // task
  w.u8(0);     // connection (high) / reserved
  w.u8(code);  // function (request) or completion code (reply)
  w.u8(0);     // subfunction / connection status
  for (std::size_t i = 0; i < payload_len; ++i) out.push_back(static_cast<std::uint8_t>(i));
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_ncp_request(std::uint8_t sequence, std::uint8_t function,
                                             std::size_t payload_len) {
  return encode_frame(0x2222, sequence, function, payload_len);
}

std::vector<std::uint8_t> encode_ncp_reply(std::uint8_t sequence, std::uint8_t completion,
                                           std::size_t payload_len) {
  return encode_frame(0x3333, sequence, completion, payload_len);
}

NcpFunction ncp_function_enum(std::uint8_t function) {
  switch (function) {
    case ncpfn::kRead:
      return NcpFunction::kRead;
    case ncpfn::kWrite:
      return NcpFunction::kWrite;
    case ncpfn::kFileDirInfo:
      return NcpFunction::kFileDirInfo;
    case ncpfn::kOpen:
    case ncpfn::kClose:
      return NcpFunction::kFileOpenClose;
    case ncpfn::kGetFileSize:
      return NcpFunction::kFileSize;
    case ncpfn::kSearch:
      return NcpFunction::kFileSearch;
    case ncpfn::kNds:
      return NcpFunction::kDirectoryService;
    default:
      return NcpFunction::kOther;
  }
}

NcpParser::NcpParser(std::vector<NcpCall>& out) : out_(out) {}

void NcpParser::on_data(Connection& conn, Direction dir, double ts,
                        std::span<const std::uint8_t> data) {
  StreamBuffer& buf = dir == Direction::kOrigToResp ? orig_buf_ : resp_buf_;
  if (broken_) return;
  buf.append(data);
  if (buf.overflowed()) {
    broken_ = true;
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  bool resynced = false;  // count a contiguous resync run once, not per byte
  for (;;) {
    auto avail = buf.data();
    if (avail.size() < kFrameHeader + kNcpHeader) break;
    ByteReader r(avail);
    const std::uint32_t sig = r.u32be();
    const std::uint32_t total = r.u32be();
    if (sig != kNcpSignature || total < kFrameHeader + kNcpHeader || total > 1 << 20) {
      resynced = true;
      buf.consume(1);  // resync
      continue;
    }
    if (avail.size() < total) break;
    NcpMessage msg;
    const std::uint16_t type = r.u16be();
    msg.is_request = type == 0x2222;
    msg.sequence = r.u8();
    r.u8();  // connection low
    r.u8();  // task
    r.u8();  // reserved
    const std::uint8_t code = r.u8();
    if (msg.is_request) {
      msg.function = code;
    } else {
      msg.completion = code;
    }
    msg.total_len = total;
    handle_message(conn, ts, msg);
    buf.consume(total);
  }
  if (resynced) note_anomaly(AnomalyKind::kAppParseError);
}

void NcpParser::handle_message(Connection& conn, double ts, const NcpMessage& msg) {
  if (msg.is_request) {
    NcpCall call;
    call.conn = &conn;
    call.req_ts = ts;
    call.function = ncp_function_enum(msg.function);
    call.req_bytes = msg.total_len;
    pending_[msg.sequence] = call;
  } else {
    auto it = pending_.find(msg.sequence);
    if (it == pending_.end()) return;
    NcpCall call = it->second;
    pending_.erase(it);
    call.has_reply = true;
    call.resp_ts = ts;
    call.completion_code = msg.completion;
    call.resp_bytes = msg.total_len;
    out_.push_back(call);
  }
}

void NcpParser::on_close(Connection& conn) {
  (void)conn;
  for (auto& [seq, call] : pending_) out_.push_back(call);
  pending_.clear();
}

}  // namespace entrace
