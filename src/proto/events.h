// Typed application-layer events emitted by the protocol parsers and
// consumed by the analysis modules.  One AppEvents instance accumulates all
// events of a dataset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/connection.h"
#include "net/ip_address.h"

namespace entrace {

// ---- HTTP (§5.1.1) ---------------------------------------------------------
struct HttpTransaction {
  const Connection* conn = nullptr;
  double req_ts = 0.0;
  double resp_ts = 0.0;
  std::string method;
  std::string uri;
  std::string host;
  std::string user_agent;
  bool conditional = false;  // carried an If-Modified-Since / If-None-Match
  bool has_response = false;
  int status = 0;
  std::string content_type;     // media type only, e.g. "image/gif"
  std::uint64_t resp_body_len = 0;
};

// ---- Email -----------------------------------------------------------------
struct SmtpCommand {
  const Connection* conn = nullptr;
  double ts = 0.0;
  std::string verb;  // HELO, MAIL, RCPT, DATA, QUIT ...
};

// ---- DNS / Netbios-NS (§5.1.3) ----------------------------------------------
namespace dnstype {
inline constexpr std::uint16_t kA = 1;
inline constexpr std::uint16_t kPtr = 12;
inline constexpr std::uint16_t kMx = 15;
inline constexpr std::uint16_t kAaaa = 28;
}  // namespace dnstype

namespace dnsrcode {
inline constexpr int kNoError = 0;
inline constexpr int kNxDomain = 3;
}  // namespace dnsrcode

struct DnsTransaction {
  const Connection* conn = nullptr;
  double query_ts = 0.0;
  double resp_ts = 0.0;
  std::uint16_t qtype = 0;
  std::string qname;
  bool has_response = false;
  int rcode = -1;
  double latency() const { return resp_ts - query_ts; }
};

enum class NbnsOpcode : std::uint8_t { kQuery, kRegistration, kRelease, kRefresh, kStatus };
enum class NbnsNameType : std::uint8_t { kWorkstation, kServer, kDomain, kOther };

struct NbnsTransaction {
  const Connection* conn = nullptr;
  double query_ts = 0.0;
  double resp_ts = 0.0;
  NbnsOpcode opcode = NbnsOpcode::kQuery;
  NbnsNameType name_type = NbnsNameType::kWorkstation;
  std::string name;
  bool has_response = false;
  int rcode = -1;  // 0 = positive, 3 = name error (NXDOMAIN analogue)
};

// ---- Windows services (§5.2.1) -----------------------------------------------
enum class NbssEventType : std::uint8_t { kRequest, kPositiveResponse, kNegativeResponse };

struct NbssEvent {
  const Connection* conn = nullptr;
  double ts = 0.0;
  NbssEventType type = NbssEventType::kRequest;
};

// CIFS command categories of Table 10.
enum class CifsCategory : std::uint8_t {
  kSmbBasic,
  kRpcPipe,
  kFileSharing,
  kLanman,
  kOther,
};
const char* to_string(CifsCategory c);

struct CifsCommand {
  const Connection* conn = nullptr;
  double ts = 0.0;
  std::uint8_t command = 0;
  CifsCategory category = CifsCategory::kOther;
  Direction dir = Direction::kOrigToResp;
  std::uint32_t msg_bytes = 0;  // whole SMB message incl. data payload
};

// DCE/RPC interfaces the paper's Table 11 breaks out.
enum class DceIface : std::uint8_t { kNetLogon, kLsaRpc, kSpoolss, kEpm, kSamr, kWkssvc, kOther };
const char* to_string(DceIface i);

struct DceRpcCall {
  const Connection* conn = nullptr;
  double ts = 0.0;
  DceIface iface = DceIface::kOther;
  std::uint16_t opnum = 0;
  bool over_pipe = false;  // named pipe vs stand-alone TCP
  bool is_request = true;
  std::uint32_t bytes = 0;  // PDU size
};

// Spoolss opnums we distinguish ("WritePrinter" vs other).
namespace spoolss_op {
inline constexpr std::uint16_t kWritePrinter = 19;
inline constexpr std::uint16_t kStartDocPrinter = 17;
inline constexpr std::uint16_t kEndDocPrinter = 23;
inline constexpr std::uint16_t kOpenPrinter = 1;
}  // namespace spoolss_op

struct EpmMapping {
  const Connection* conn = nullptr;
  double ts = 0.0;
  Ipv4Address server;
  std::uint16_t port = 0;
  DceIface iface = DceIface::kOther;
};

// ---- NFS / NCP (§5.2.2) -------------------------------------------------------
// NFSv3 procedure numbers (RFC 1813).
namespace nfsproc {
inline constexpr std::uint32_t kGetAttr = 1;
inline constexpr std::uint32_t kLookup = 3;
inline constexpr std::uint32_t kAccess = 4;
inline constexpr std::uint32_t kRead = 6;
inline constexpr std::uint32_t kWrite = 7;
}  // namespace nfsproc

struct NfsCall {
  const Connection* conn = nullptr;
  double req_ts = 0.0;
  double resp_ts = 0.0;
  std::uint32_t proc = 0;
  bool has_reply = false;
  std::uint32_t status = 0;  // 0 = NFS3_OK
  std::uint32_t req_bytes = 0;   // RPC message size (headers excluded)
  std::uint32_t resp_bytes = 0;
};

// NCP request categories (Table 14 rows).
enum class NcpFunction : std::uint8_t {
  kRead,
  kWrite,
  kFileDirInfo,
  kFileOpenClose,
  kFileSize,
  kFileSearch,
  kDirectoryService,
  kOther,
};
const char* to_string(NcpFunction f);

struct NcpCall {
  const Connection* conn = nullptr;
  double req_ts = 0.0;
  double resp_ts = 0.0;
  NcpFunction function = NcpFunction::kOther;
  bool has_reply = false;
  std::uint8_t completion_code = 0;  // 0 = success
  std::uint32_t req_bytes = 0;
  std::uint32_t resp_bytes = 0;
};

// ---- Collector ----------------------------------------------------------------
struct AppEvents {
  std::vector<HttpTransaction> http;
  std::vector<SmtpCommand> smtp;
  std::vector<DnsTransaction> dns;
  std::vector<NbnsTransaction> nbns;
  std::vector<NbssEvent> nbss;
  std::vector<CifsCommand> cifs;
  std::vector<DceRpcCall> dcerpc;
  std::vector<EpmMapping> epm;
  std::vector<NfsCall> nfs;
  std::vector<NcpCall> ncp;

  std::size_t total() const {
    return http.size() + smtp.size() + dns.size() + nbns.size() + nbss.size() + cifs.size() +
           dcerpc.size() + epm.size() + nfs.size() + ncp.size();
  }

  // Append another shard's events (moved from).  Folding per-trace shards
  // in trace-index order reproduces the event order of a serial pass.
  void merge(AppEvents&& other);
};

// Rewrite every event's connection pointer through `fn` (old pointer in,
// new pointer out).  The windowed engine uses this twice: once at rotation
// to point a window's events at the window's own connection copies, and
// once at reconstruction to point them at the reassembled per-trace table.
template <typename Fn>
void remap_event_connections(AppEvents& ev, Fn&& fn) {
  auto apply = [&](auto& vec) {
    for (auto& e : vec) e.conn = fn(e.conn);
  };
  apply(ev.http);
  apply(ev.smtp);
  apply(ev.dns);
  apply(ev.nbns);
  apply(ev.nbss);
  apply(ev.cifs);
  apply(ev.dcerpc);
  apply(ev.epm);
  apply(ev.nfs);
  apply(ev.ncp);
}

}  // namespace entrace
