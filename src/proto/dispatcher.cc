#include "proto/dispatcher.h"

#include "net/headers.h"
#include "proto/cifs.h"
#include "proto/dcerpc.h"
#include "proto/dns.h"
#include "proto/http.h"
#include "proto/ncp.h"
#include "proto/netbios.h"
#include "proto/nfs.h"
#include "proto/smtp.h"

namespace entrace {

ProtocolDispatcher::ProtocolDispatcher(AppRegistry& registry, AppEvents& events,
                                       bool payload_analysis, AnomalyCounts* anomalies)
    : registry_(registry),
      events_(events),
      payload_analysis_(payload_analysis),
      anomalies_(anomalies) {}

ProtocolDispatcher::~ProtocolDispatcher() {
  // Destroy parsers the flow table never closed (none, after a normal
  // flush, since flush closes every entry).  The arena frees the memory.
  for (AppParser* p : slots_) {
    if (p != nullptr) p->~AppParser();
  }
}

void ProtocolDispatcher::on_new_connection(Connection& conn) {
  const AppProtocol app = registry_.identify(conn);
  conn.app_id = static_cast<std::uint16_t>(app);
  conn.parser_slot = Connection::kNoParser;
  if (!payload_analysis_) return;
  if (AppParser* parser = make_parser(conn, app)) {
    parser->set_anomaly_sink(anomalies_);
    conn.parser_slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(parser);
  }
}

AppParser* ProtocolDispatcher::make_parser(const Connection& conn, AppProtocol app) {
  switch (app) {
    case AppProtocol::kHttp:
      return arena_.make<HttpParser>(events_.http);
    case AppProtocol::kSmtp:
      return arena_.make<SmtpParser>(events_.smtp);
    case AppProtocol::kDns:
      if (conn.key.proto == ipproto::kUdp) return arena_.make<DnsParser>(events_.dns);
      return nullptr;
    case AppProtocol::kNetbiosNs:
      return arena_.make<NbnsParser>(events_.nbns);
    case AppProtocol::kNetbiosSsn:
      return arena_.make<CifsParser>(events_, /*netbios_framing=*/true);
    case AppProtocol::kCifs:
      return arena_.make<CifsParser>(events_, /*netbios_framing=*/false);
    case AppProtocol::kEndpointMapper:
    case AppProtocol::kDceRpc:
      if (conn.key.proto == ipproto::kTcp)
        return arena_.make<DceRpcParser>(events_.dcerpc, events_.epm);
      return nullptr;
    case AppProtocol::kNfs:
      return arena_.make<NfsParser>(events_.nfs, conn.key.proto == ipproto::kTcp);
    case AppProtocol::kNcp:
      if (conn.key.proto == ipproto::kTcp) return arena_.make<NcpParser>(events_.ncp);
      return nullptr;
    default:
      return nullptr;
  }
}

void ProtocolDispatcher::on_data(Connection& conn, Direction dir, double ts,
                                 std::span<const std::uint8_t> data, std::uint32_t wire_len) {
  if (conn.parser_slot == Connection::kNoParser) return;
  AppParser* parser = slots_[conn.parser_slot];
  if (conn.key.proto == ipproto::kUdp) {
    parser->on_datagram(conn, dir, ts, data, wire_len);
  } else {
    parser->on_data(conn, dir, ts, data);
  }
  register_new_epm_mappings();
}

void ProtocolDispatcher::register_new_epm_mappings() {
  while (registered_epm_ < events_.epm.size()) {
    const EpmMapping& m = events_.epm[registered_epm_++];
    registry_.register_dcerpc_endpoint(m.server, m.port);
  }
}

void ProtocolDispatcher::on_close(Connection& conn) {
  if (conn.parser_slot == Connection::kNoParser) return;
  AppParser*& slot = slots_[conn.parser_slot];
  slot->on_close(conn);
  // Run the destructor now so stream buffers are released mid-trace, as
  // the old map erase did; the arena block itself lives until teardown.
  slot->~AppParser();
  slot = nullptr;
  conn.parser_slot = Connection::kNoParser;
}

}  // namespace entrace
