#include "proto/dispatcher.h"

#include "net/headers.h"
#include "proto/cifs.h"
#include "proto/dcerpc.h"
#include "proto/dns.h"
#include "proto/http.h"
#include "proto/ncp.h"
#include "proto/netbios.h"
#include "proto/nfs.h"
#include "proto/smtp.h"

namespace entrace {

ProtocolDispatcher::ProtocolDispatcher(AppRegistry& registry, AppEvents& events,
                                       bool payload_analysis, AnomalyCounts* anomalies)
    : registry_(registry),
      events_(events),
      payload_analysis_(payload_analysis),
      anomalies_(anomalies) {}

void ProtocolDispatcher::on_new_connection(Connection& conn) {
  const AppProtocol app = registry_.identify(conn);
  conn.app_id = static_cast<std::uint16_t>(app);
  if (!payload_analysis_) return;
  if (auto parser = make_parser(conn, app)) {
    parser->set_anomaly_sink(anomalies_);
    parsers_[&conn] = std::move(parser);
  }
}

std::unique_ptr<AppParser> ProtocolDispatcher::make_parser(const Connection& conn,
                                                           AppProtocol app) {
  switch (app) {
    case AppProtocol::kHttp:
      return std::make_unique<HttpParser>(events_.http);
    case AppProtocol::kSmtp:
      return std::make_unique<SmtpParser>(events_.smtp);
    case AppProtocol::kDns:
      if (conn.key.proto == ipproto::kUdp) return std::make_unique<DnsParser>(events_.dns);
      return nullptr;
    case AppProtocol::kNetbiosNs:
      return std::make_unique<NbnsParser>(events_.nbns);
    case AppProtocol::kNetbiosSsn:
      return std::make_unique<CifsParser>(events_, /*netbios_framing=*/true);
    case AppProtocol::kCifs:
      return std::make_unique<CifsParser>(events_, /*netbios_framing=*/false);
    case AppProtocol::kEndpointMapper:
    case AppProtocol::kDceRpc:
      if (conn.key.proto == ipproto::kTcp)
        return std::make_unique<DceRpcParser>(events_.dcerpc, events_.epm);
      return nullptr;
    case AppProtocol::kNfs:
      return std::make_unique<NfsParser>(events_.nfs, conn.key.proto == ipproto::kTcp);
    case AppProtocol::kNcp:
      if (conn.key.proto == ipproto::kTcp) return std::make_unique<NcpParser>(events_.ncp);
      return nullptr;
    default:
      return nullptr;
  }
}

void ProtocolDispatcher::on_data(Connection& conn, Direction dir, double ts,
                                 std::span<const std::uint8_t> data, std::uint32_t wire_len) {
  auto it = parsers_.find(&conn);
  if (it == parsers_.end()) return;
  if (conn.key.proto == ipproto::kUdp) {
    it->second->on_datagram(conn, dir, ts, data, wire_len);
  } else {
    it->second->on_data(conn, dir, ts, data);
  }
  register_new_epm_mappings();
}

void ProtocolDispatcher::register_new_epm_mappings() {
  while (registered_epm_ < events_.epm.size()) {
    const EpmMapping& m = events_.epm[registered_epm_++];
    registry_.register_dcerpc_endpoint(m.server, m.port);
  }
}

void ProtocolDispatcher::on_close(Connection& conn) {
  auto it = parsers_.find(&conn);
  if (it == parsers_.end()) return;
  it->second->on_close(conn);
  parsers_.erase(it);
}

}  // namespace entrace
