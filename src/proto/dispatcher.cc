#include "proto/dispatcher.h"

#include "net/headers.h"
#include "proto/cifs.h"
#include "proto/dcerpc.h"
#include "proto/dns.h"
#include "proto/http.h"
#include "proto/ncp.h"
#include "proto/netbios.h"
#include "proto/nfs.h"
#include "proto/smtp.h"

namespace entrace {

ProtocolDispatcher::ProtocolDispatcher(AppRegistry& registry, AppEvents& events,
                                       bool payload_analysis, AnomalyCounts* anomalies)
    : registry_(registry),
      events_(events),
      payload_analysis_(payload_analysis),
      anomalies_(anomalies) {}

ProtocolDispatcher::~ProtocolDispatcher() {
  // Destroy parsers the flow table never closed (none, after a normal
  // flush, since flush closes every entry).  The arena frees the memory.
  for (AppParser* p : slots_) {
    if (p != nullptr) p->~AppParser();
  }
}

void ProtocolDispatcher::on_new_connection(Connection& conn) {
  const AppProtocol app = registry_.identify(conn);
  conn.app_id = static_cast<std::uint16_t>(app);
  conn.parser_slot = Connection::kNoParser;
  if (!payload_analysis_) return;
  if (AppParser* parser = make_parser(conn, app)) {
    parser->set_anomaly_sink(anomalies_);
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = parser;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(parser);
      slot_sizes_.push_back(0);
    }
    slot_sizes_[slot] = pending_size_;
    conn.parser_slot = slot;
  }
}

// All parsers align within max_align_t, so blocks are interchangeable
// between same-sized types; keying the free lists on the rounded size alone
// is enough.
template <typename T, typename... Args>
T* ProtocolDispatcher::alloc_parser(Args&&... args) {
  static_assert(alignof(T) <= alignof(std::max_align_t));
  const std::uint32_t size = static_cast<std::uint32_t>(
      (sizeof(T) + alignof(std::max_align_t) - 1) & ~(alignof(std::max_align_t) - 1));
  pending_size_ = size;
  for (FreeList& fl : free_mem_) {
    if (fl.size == size && !fl.blocks.empty()) {
      void* p = fl.blocks.back();
      fl.blocks.pop_back();
      return new (p) T(std::forward<Args>(args)...);
    }
  }
  void* p = arena_.allocate(size, alignof(std::max_align_t));
  return new (p) T(std::forward<Args>(args)...);
}

AppParser* ProtocolDispatcher::make_parser(const Connection& conn, AppProtocol app) {
  switch (app) {
    case AppProtocol::kHttp:
      return alloc_parser<HttpParser>(events_.http);
    case AppProtocol::kSmtp:
      return alloc_parser<SmtpParser>(events_.smtp);
    case AppProtocol::kDns:
      if (conn.key.proto == ipproto::kUdp) return alloc_parser<DnsParser>(events_.dns);
      return nullptr;
    case AppProtocol::kNetbiosNs:
      return alloc_parser<NbnsParser>(events_.nbns);
    case AppProtocol::kNetbiosSsn:
      return alloc_parser<CifsParser>(events_, /*netbios_framing=*/true);
    case AppProtocol::kCifs:
      return alloc_parser<CifsParser>(events_, /*netbios_framing=*/false);
    case AppProtocol::kEndpointMapper:
    case AppProtocol::kDceRpc:
      if (conn.key.proto == ipproto::kTcp)
        return alloc_parser<DceRpcParser>(events_.dcerpc, events_.epm);
      return nullptr;
    case AppProtocol::kNfs:
      return alloc_parser<NfsParser>(events_.nfs, conn.key.proto == ipproto::kTcp);
    case AppProtocol::kNcp:
      if (conn.key.proto == ipproto::kTcp) return alloc_parser<NcpParser>(events_.ncp);
      return nullptr;
    default:
      return nullptr;
  }
}

void ProtocolDispatcher::on_data(Connection& conn, Direction dir, double ts,
                                 std::span<const std::uint8_t> data, std::uint32_t wire_len) {
  if (conn.parser_slot == Connection::kNoParser) return;
  AppParser* parser = slots_[conn.parser_slot];
  if (conn.key.proto == ipproto::kUdp) {
    parser->on_datagram(conn, dir, ts, data, wire_len);
  } else {
    parser->on_data(conn, dir, ts, data);
  }
  register_new_epm_mappings();
}

void ProtocolDispatcher::register_new_epm_mappings() {
  while (registered_epm_ < events_.epm.size()) {
    const EpmMapping& m = events_.epm[registered_epm_++];
    registry_.register_dcerpc_endpoint(m.server, m.port);
  }
}

void ProtocolDispatcher::on_close(Connection& conn) {
  if (conn.parser_slot == Connection::kNoParser) return;
  AppParser*& slot = slots_[conn.parser_slot];
  slot->on_close(conn);
  // Run the destructor now so stream buffers are released mid-trace, as
  // the old map erase did, then recycle the block and the slot index for
  // the next parser of the same size.
  void* block = static_cast<void*>(slot);
  const std::uint32_t size = slot_sizes_[conn.parser_slot];
  slot->~AppParser();
  slot = nullptr;
  free_slots_.push_back(conn.parser_slot);
  conn.parser_slot = Connection::kNoParser;
  for (FreeList& fl : free_mem_) {
    if (fl.size == size) {
      fl.blocks.push_back(block);
      return;
    }
  }
  free_mem_.push_back(FreeList{size, {block}});
}

}  // namespace entrace
