// Application protocol identification and the category grouping of the
// paper's Table 4.
//
// Identification is primarily port-based (as in the paper's Bro policy),
// with one dynamic element: DCE/RPC services on ephemeral ports are
// identified by watching Endpoint Mapper traffic (§5.2.1), which the
// dispatcher registers here at parse time.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "flow/connection.h"

namespace entrace {

enum class AppProtocol : std::uint16_t {
  kUnknown = 0,
  // web
  kHttp,
  kHttps,
  // email
  kSmtp,
  kImap4,
  kImapS,
  kPop3,
  kPopS,
  kLdap,
  // bulk
  kFtp,
  kFtpData,
  kHpss,
  // interactive
  kSsh,
  kTelnet,
  kRlogin,
  kX11,
  // name
  kDns,
  kNetbiosNs,
  kSrvLoc,
  kSunRpcPortmap,
  // net-file
  kNfs,
  kNcp,
  // net-mgnt
  kDhcp,
  kIdent,
  kNtp,
  kSnmp,
  kNavPing,
  kSap,
  kNetInfoLocal,
  // streaming
  kRtsp,
  kIpVideo,
  kRealStream,
  // windows
  kCifs,
  kDceRpc,
  kNetbiosSsn,
  kNetbiosDgm,
  kEndpointMapper,
  // backup
  kVeritasCtrl,
  kVeritasData,
  kDantz,
  kConnectedBackup,
  // misc
  kSteltor,
  kMetaSys,
  kLpd,
  kIpp,
  kOracleSql,
  kMsSql,
};

// Paper Table 4 categories (plus the two catch-alls of Figure 1).
enum class AppCategory : std::uint8_t {
  kWeb,
  kEmail,
  kNetFile,
  kBackup,
  kBulk,
  kName,
  kInteractive,
  kWindows,
  kStreaming,
  kNetMgnt,
  kMisc,
  kOtherTcp,
  kOtherUdp,
};

inline constexpr std::size_t kNumCategories = 13;

const char* to_string(AppProtocol p);
const char* to_string(AppCategory c);
AppCategory category_of(AppProtocol p);

// Well-known port constants used by both the generator and the registry.
namespace ports {
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kHttpAlt = 8080;
inline constexpr std::uint16_t kHttps = 443;
inline constexpr std::uint16_t kSmtp = 25;
inline constexpr std::uint16_t kImap4 = 143;
inline constexpr std::uint16_t kImapS = 993;
inline constexpr std::uint16_t kPop3 = 110;
inline constexpr std::uint16_t kPopS = 995;
inline constexpr std::uint16_t kLdap = 389;
inline constexpr std::uint16_t kFtp = 21;
inline constexpr std::uint16_t kFtpData = 20;
inline constexpr std::uint16_t kHpss = 1217;
inline constexpr std::uint16_t kSsh = 22;
inline constexpr std::uint16_t kTelnet = 23;
inline constexpr std::uint16_t kRlogin = 513;
inline constexpr std::uint16_t kX11 = 6000;
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kNetbiosNs = 137;
inline constexpr std::uint16_t kNetbiosDgm = 138;
inline constexpr std::uint16_t kNetbiosSsn = 139;
inline constexpr std::uint16_t kSrvLoc = 427;
inline constexpr std::uint16_t kPortmap = 111;
inline constexpr std::uint16_t kNfs = 2049;
inline constexpr std::uint16_t kNcp = 524;
inline constexpr std::uint16_t kDhcpServer = 67;
inline constexpr std::uint16_t kDhcpClient = 68;
inline constexpr std::uint16_t kIdent = 113;
inline constexpr std::uint16_t kNtp = 123;
inline constexpr std::uint16_t kSnmp = 161;
inline constexpr std::uint16_t kNavPing = 38293;
inline constexpr std::uint16_t kSap = 9875;
inline constexpr std::uint16_t kNetInfoLocal = 1033;
inline constexpr std::uint16_t kRtsp = 554;
inline constexpr std::uint16_t kIpVideo = 5004;
inline constexpr std::uint16_t kRealStream = 7070;
inline constexpr std::uint16_t kCifs = 445;
inline constexpr std::uint16_t kEpm = 135;
inline constexpr std::uint16_t kVeritasCtrl = 13720;
inline constexpr std::uint16_t kVeritasData = 13724;
inline constexpr std::uint16_t kDantz = 497;
inline constexpr std::uint16_t kConnected = 16384;
inline constexpr std::uint16_t kSteltor = 4032;
inline constexpr std::uint16_t kMetaSys = 11001;
inline constexpr std::uint16_t kLpd = 515;
inline constexpr std::uint16_t kIpp = 631;
inline constexpr std::uint16_t kOracleSql = 1521;
inline constexpr std::uint16_t kMsSql = 1433;
}  // namespace ports

class AppRegistry {
 public:
  AppRegistry();

  // Identify a connection by its (proto, port) pair, preferring the
  // responder port, falling back to the originator port, then to any
  // dynamically registered DCE/RPC endpoint.
  AppProtocol identify(const Connection& conn) const;

  // Register a dynamically mapped DCE/RPC endpoint learned from Endpoint
  // Mapper traffic.
  void register_dcerpc_endpoint(Ipv4Address server, std::uint16_t port);
  bool is_dcerpc_endpoint(Ipv4Address server, std::uint16_t port) const;
  std::size_t dynamic_endpoint_count() const { return dcerpc_endpoints_.size(); }

  // Fold the dynamic endpoints learned by another (per-trace) registry into
  // this one.  The static port table is identical in every registry.
  void merge_dynamic_endpoints(const AppRegistry& other);

  // Snapshot support (src/snapshot): the dynamic endpoints in deterministic
  // (map) order; a registry rebuilt by register_dcerpc_endpoint over these
  // entries is equivalent.
  const std::map<std::pair<std::uint32_t, std::uint16_t>, bool>& dynamic_endpoints() const {
    return dcerpc_endpoints_;
  }

 private:
  AppProtocol lookup(std::uint8_t proto, std::uint16_t port) const;

  std::map<std::pair<std::uint8_t, std::uint16_t>, AppProtocol> ports_;
  std::map<std::pair<std::uint32_t, std::uint16_t>, bool> dcerpc_endpoints_;
};

}  // namespace entrace
