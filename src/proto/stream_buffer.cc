#include "proto/stream_buffer.h"

#include <algorithm>

namespace entrace {

StreamBuffer::StreamBuffer(std::size_t max_buffer) : max_buffer_(max_buffer) {}

void StreamBuffer::append(std::span<const std::uint8_t> data) {
  total_seen_ += data.size();
  if (pending_skip_ > 0) {
    const std::uint64_t eat = std::min<std::uint64_t>(pending_skip_, data.size());
    pending_skip_ -= eat;
    data = data.subspan(static_cast<std::size_t>(eat));
  }
  if (data.empty() || overflowed_) return;
  if (buffer_.size() + data.size() > max_buffer_) {
    overflowed_ = true;
    return;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void StreamBuffer::skip(std::uint64_t n) {
  const std::uint64_t from_buffer = std::min<std::uint64_t>(n, buffer_.size());
  consume(static_cast<std::size_t>(from_buffer));
  pending_skip_ += n - from_buffer;
}

void StreamBuffer::consume(std::size_t n) {
  n = std::min(n, buffer_.size());
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(n));
}

}  // namespace entrace
