#include "proto/nfs.h"

#include <algorithm>
#include <cstring>

#include "net/bytes.h"

namespace entrace {
namespace {

// The opaque arg/result stubs are pure functions of byte index, so they are
// prefixes of a fixed sequence; a shared table turns the per-call fill into
// a memcpy.  64 KiB covers the generator's sizes; larger requests fall back
// to the loop.
constexpr std::size_t kStubTable = 64 * 1024;

const std::uint8_t* stub_table(std::uint8_t step) {
  static const std::vector<std::uint8_t> t3 = [] {
    std::vector<std::uint8_t> t(kStubTable);
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<std::uint8_t>(i * 3);
    return t;
  }();
  static const std::vector<std::uint8_t> t7 = [] {
    std::vector<std::uint8_t> t(kStubTable);
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<std::uint8_t>(i * 7);
    return t;
  }();
  return step == 3 ? t3.data() : t7.data();
}

void append_stub(std::vector<std::uint8_t>& out, std::size_t len, std::uint8_t step) {
  const std::size_t base = out.size();
  out.resize(base + len);
  if (len <= kStubTable) {
    std::memcpy(out.data() + base, stub_table(step), len);
    return;
  }
  for (std::size_t i = 0; i < len; ++i) out[base + i] = static_cast<std::uint8_t>(i * step);
}

}  // namespace

std::vector<std::uint8_t> encode_rpc_call(std::uint32_t xid, std::uint32_t prog,
                                          std::uint32_t vers, std::uint32_t proc,
                                          std::size_t arg_len) {
  std::vector<std::uint8_t> out;
  out.reserve(40 + arg_len);
  ByteWriter w(out);
  w.u32be(xid);
  w.u32be(0);  // CALL
  w.u32be(2);  // RPC version
  w.u32be(prog);
  w.u32be(vers);
  w.u32be(proc);
  w.u32be(0);  // cred flavor AUTH_NONE
  w.u32be(0);  // cred length
  w.u32be(0);  // verf flavor
  w.u32be(0);  // verf length
  append_stub(out, arg_len, 7);
  return out;
}

std::vector<std::uint8_t> encode_rpc_reply(std::uint32_t xid, std::uint32_t nfs_status,
                                           std::size_t result_len) {
  std::vector<std::uint8_t> out;
  out.reserve(28 + result_len);
  ByteWriter w(out);
  w.u32be(xid);
  w.u32be(1);  // REPLY
  w.u32be(0);  // MSG_ACCEPTED
  w.u32be(0);  // verf flavor
  w.u32be(0);  // verf length
  w.u32be(0);  // accept_stat SUCCESS
  w.u32be(nfs_status);
  append_stub(out, result_len, 3);
  return out;
}

std::vector<std::uint8_t> rpc_record_mark(std::span<const std::uint8_t> msg) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + msg.size());
  ByteWriter w(out);
  w.u32be(0x80000000u | static_cast<std::uint32_t>(msg.size()));
  w.bytes(msg);
  return out;
}

std::optional<RpcMessage> decode_rpc(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  RpcMessage msg;
  msg.body_len = static_cast<std::uint32_t>(data.size());
  msg.xid = r.u32be();
  const std::uint32_t mtype = r.u32be();
  if (!r.ok()) return std::nullopt;
  if (mtype == 0) {
    msg.is_call = true;
    const std::uint32_t rpcvers = r.u32be();
    msg.prog = r.u32be();
    msg.vers = r.u32be();
    msg.proc = r.u32be();
    const std::uint32_t cred_flavor = r.u32be();
    const std::uint32_t cred_len = r.u32be();
    (void)cred_flavor;
    r.skip(cred_len);
    r.u32be();  // verf flavor
    const std::uint32_t verf_len = r.u32be();
    r.skip(verf_len);
    if (!r.ok() || rpcvers != 2) return std::nullopt;
  } else if (mtype == 1) {
    msg.is_call = false;
    const std::uint32_t reply_stat = r.u32be();
    r.u32be();  // verf flavor
    const std::uint32_t verf_len = r.u32be();
    r.skip(verf_len);
    const std::uint32_t accept_stat = r.u32be();
    msg.status = r.u32be();
    if (!r.ok() || reply_stat != 0 || accept_stat != 0) return std::nullopt;
  } else {
    return std::nullopt;
  }
  return msg;
}

NfsParser::NfsParser(std::vector<NfsCall>& out, bool is_tcp) : out_(out), is_tcp_(is_tcp) {}

void NfsParser::on_datagram(Connection& conn, Direction dir, double ts,
                            std::span<const std::uint8_t> data, std::uint32_t wire_len) {
  if (!is_tcp_) {
    handle_message(conn, ts, data, wire_len);
    return;
  }
  on_data(conn, dir, ts, data);
}

void NfsParser::on_data(Connection& conn, Direction dir, double ts,
                        std::span<const std::uint8_t> data) {
  if (!is_tcp_) {
    handle_message(conn, ts, data, static_cast<std::uint32_t>(data.size()));
    return;
  }
  StreamBuffer& buf = dir == Direction::kOrigToResp ? orig_buf_ : resp_buf_;
  if (broken_) return;
  buf.append(data);
  if (buf.overflowed()) {
    broken_ = true;
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  bool resynced = false;  // count a contiguous resync run once, not per byte
  for (;;) {
    auto avail = buf.data();
    if (avail.size() < 4) break;
    const std::uint32_t mark = (static_cast<std::uint32_t>(avail[0]) << 24) |
                               (static_cast<std::uint32_t>(avail[1]) << 16) |
                               (static_cast<std::uint32_t>(avail[2]) << 8) | avail[3];
    const std::uint32_t len = mark & 0x7FFFFFFF;
    if (len > 1 << 20) {  // implausible: resync
      resynced = true;
      buf.consume(1);
      continue;
    }
    if (avail.size() < 4 + len) break;
    handle_message(conn, ts, avail.subspan(4, len), len);
    buf.consume(4 + len);
  }
  if (resynced) note_anomaly(AnomalyKind::kAppParseError);
}

void NfsParser::handle_message(Connection& conn, double ts, std::span<const std::uint8_t> msg,
                               std::uint32_t wire_len) {
  auto rpc = decode_rpc(msg);
  if (!rpc) {
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  const std::uint32_t size = std::max(wire_len, rpc->body_len);
  if (rpc->is_call) {
    if (rpc->prog != kNfsProgram) return;
    NfsCall call;
    call.conn = &conn;
    call.req_ts = ts;
    call.proc = rpc->proc;
    call.req_bytes = size;
    pending_[rpc->xid] = call;
  } else {
    auto it = pending_.find(rpc->xid);
    if (it == pending_.end()) return;
    NfsCall call = it->second;
    pending_.erase(it);
    call.has_reply = true;
    call.resp_ts = ts;
    call.status = rpc->status;
    call.resp_bytes = size;
    out_.push_back(call);
  }
}

void NfsParser::on_close(Connection& conn) {
  (void)conn;
  for (auto& [xid, call] : pending_) out_.push_back(call);
  pending_.clear();
}

}  // namespace entrace
