// Netbios Name Service (RFC 1002) over UDP 137 — §5.1.3.
//
// Implements first-level name encoding, the query/registration/release/
// refresh opcodes, the suffix byte that distinguishes workstation / server /
// domain names, and positive/negative (NXDOMAIN-analogue) responses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/events.h"
#include "proto/parser.h"

namespace entrace {

// RFC 1002 opcode values.
namespace nbns_opcode {
inline constexpr std::uint8_t kQuery = 0;
inline constexpr std::uint8_t kRegistration = 5;
inline constexpr std::uint8_t kRelease = 6;
inline constexpr std::uint8_t kWack = 7;
inline constexpr std::uint8_t kRefresh = 8;
}  // namespace nbns_opcode

// Name suffix bytes (16th byte of the NetBIOS name).
namespace nbns_suffix {
inline constexpr std::uint8_t kWorkstation = 0x00;
inline constexpr std::uint8_t kServer = 0x20;
inline constexpr std::uint8_t kDomainMaster = 0x1B;
inline constexpr std::uint8_t kDomainGroup = 0x1C;
inline constexpr std::uint8_t kBrowser = 0x1E;
}  // namespace nbns_suffix

struct NbnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = nbns_opcode::kQuery;
  int rcode = 0;  // 0 positive, 3 name error
  std::string name;  // up to 15 chars
  std::uint8_t suffix = nbns_suffix::kWorkstation;
};

// RFC 1001 §14.1 first-level encoding: 16 bytes -> 32 nibble characters.
std::string nbns_encode_name(const std::string& name, std::uint8_t suffix);
bool nbns_decode_name(const std::string& encoded, std::string& name, std::uint8_t& suffix);

std::vector<std::uint8_t> encode_nbns(const NbnsMessage& msg);
std::optional<NbnsMessage> decode_nbns(std::span<const std::uint8_t> data);

NbnsNameType nbns_name_type(std::uint8_t suffix);
NbnsOpcode nbns_opcode_enum(std::uint8_t opcode);

class NbnsParser : public AppParser {
 public:
  explicit NbnsParser(std::vector<NbnsTransaction>& out);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;
  void on_close(Connection& conn) override;

 private:
  std::vector<NbnsTransaction>& out_;
  std::map<std::uint16_t, NbnsTransaction> pending_;
};

}  // namespace entrace
