#include "proto/events.h"

#include <iterator>

namespace entrace {

const char* to_string(CifsCategory c) {
  switch (c) {
    case CifsCategory::kSmbBasic: return "SMB Basic";
    case CifsCategory::kRpcPipe: return "RPC Pipes";
    case CifsCategory::kFileSharing: return "Windows File Sharing";
    case CifsCategory::kLanman: return "LANMAN";
    case CifsCategory::kOther: return "Other";
  }
  return "?";
}

const char* to_string(DceIface i) {
  switch (i) {
    case DceIface::kNetLogon: return "NetLogon";
    case DceIface::kLsaRpc: return "LsaRPC";
    case DceIface::kSpoolss: return "Spoolss";
    case DceIface::kEpm: return "EPM";
    case DceIface::kSamr: return "Samr";
    case DceIface::kWkssvc: return "Wkssvc";
    case DceIface::kOther: return "Other";
  }
  return "?";
}

void AppEvents::merge(AppEvents&& other) {
  const auto append = [](auto& dst, auto& src) {
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
    src.clear();
  };
  append(http, other.http);
  append(smtp, other.smtp);
  append(dns, other.dns);
  append(nbns, other.nbns);
  append(nbss, other.nbss);
  append(cifs, other.cifs);
  append(dcerpc, other.dcerpc);
  append(epm, other.epm);
  append(nfs, other.nfs);
  append(ncp, other.ncp);
}

const char* to_string(NcpFunction f) {
  switch (f) {
    case NcpFunction::kRead: return "Read";
    case NcpFunction::kWrite: return "Write";
    case NcpFunction::kFileDirInfo: return "FileDirInfo";
    case NcpFunction::kFileOpenClose: return "File Open/Close";
    case NcpFunction::kFileSize: return "File Size";
    case NcpFunction::kFileSearch: return "File Search";
    case NcpFunction::kDirectoryService: return "Directory Service";
    case NcpFunction::kOther: return "Other";
  }
  return "?";
}

}  // namespace entrace
