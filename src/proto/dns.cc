#include "proto/dns.h"

#include "net/bytes.h"

namespace entrace {
namespace {

void encode_qname(ByteWriter& w, const std::string& name) {
  std::size_t start = 0;
  while (start <= name.size()) {
    std::size_t dot = name.find('.', start);
    if (dot == std::string::npos) dot = name.size();
    const std::size_t len = dot - start;
    if (len == 0) break;
    w.u8(static_cast<std::uint8_t>(len > 63 ? 63 : len));
    w.bytes(std::string_view(name).substr(start, len > 63 ? 63 : len));
    start = dot + 1;
  }
  w.u8(0);
}

bool decode_qname(ByteReader& r, std::string& out) {
  out.clear();
  for (;;) {
    const std::uint8_t len = r.u8();
    if (!r.ok()) return false;
    if (len == 0) return true;
    if ((len & 0xC0) != 0) {  // compression pointer: consume 2nd byte, stop
      r.u8();
      return true;
    }
    if (!out.empty()) out += '.';
    out += r.string(len);
    if (!r.ok()) return false;
    if (out.size() > 512) return false;
  }
}

}  // namespace

std::vector<std::uint8_t> encode_dns(const DnsMessage& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u16be(msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((msg.opcode & 0x0F) << 11);
  if (msg.is_response) flags |= 0x0100;  // RD copied
  flags |= static_cast<std::uint16_t>(msg.rcode & 0x0F);
  w.u16be(flags);
  w.u16be(1);  // qdcount
  w.u16be(msg.is_response ? msg.ancount : 0);
  w.u16be(0);  // nscount
  w.u16be(0);  // arcount
  encode_qname(w, msg.qname);
  w.u16be(msg.qtype);
  w.u16be(1);  // class IN
  if (msg.is_response) {
    for (std::uint16_t i = 0; i < msg.ancount; ++i) {
      encode_qname(w, msg.qname);
      w.u16be(msg.qtype);
      w.u16be(1);
      w.u32be(300);  // TTL
      if (msg.qtype == dnstype::kAaaa) {
        w.u16be(16);
        for (int j = 0; j < 4; ++j) w.u32be(0x20010db8 + i);
      } else if (msg.qtype == dnstype::kPtr || msg.qtype == dnstype::kMx) {
        // PTR: name; MX: pref + name.
        std::vector<std::uint8_t> rdata;
        ByteWriter rw(rdata);
        if (msg.qtype == dnstype::kMx) rw.u16be(10);
        encode_qname(rw, "host" + std::to_string(i) + ".example.org");
        w.u16be(static_cast<std::uint16_t>(rdata.size()));
        w.bytes(rdata);
      } else {
        w.u16be(4);
        w.u32be(0x0A000000 + i);
      }
    }
  }
  return out;
}

std::optional<DnsMessage> decode_dns(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  DnsMessage msg;
  msg.id = r.u16be();
  const std::uint16_t flags = r.u16be();
  msg.is_response = (flags & 0x8000) != 0;
  msg.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0F);
  msg.rcode = flags & 0x0F;
  const std::uint16_t qdcount = r.u16be();
  msg.ancount = r.u16be();
  r.u16be();  // nscount
  r.u16be();  // arcount
  if (!r.ok() || qdcount < 1) return std::nullopt;
  if (!decode_qname(r, msg.qname)) return std::nullopt;
  msg.qtype = r.u16be();
  r.u16be();  // class
  if (!r.ok()) return std::nullopt;
  return msg;
}

DnsParser::DnsParser(std::vector<DnsTransaction>& out) : out_(out) {}

void DnsParser::on_data(Connection& conn, Direction dir, double ts,
                        std::span<const std::uint8_t> data) {
  // TCP DNS has a 2-byte length prefix; we only model/parse UDP DNS, which
  // dominates the traces.
  (void)dir;
  auto msg = decode_dns(data);
  if (!msg) {
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  if (!msg->is_response) {
    DnsTransaction txn;
    txn.conn = &conn;
    txn.query_ts = ts;
    txn.qtype = msg->qtype;
    txn.qname = msg->qname;
    pending_[msg->id] = std::move(txn);
  } else {
    auto it = pending_.find(msg->id);
    if (it == pending_.end()) return;
    DnsTransaction txn = std::move(it->second);
    pending_.erase(it);
    txn.has_response = true;
    txn.resp_ts = ts;
    txn.rcode = msg->rcode;
    out_.push_back(std::move(txn));
  }
}

void DnsParser::on_close(Connection& conn) {
  (void)conn;
  for (auto& [id, txn] : pending_) out_.push_back(std::move(txn));
  pending_.clear();
}

}  // namespace entrace
