// HTTP/1.x request/response parsing (§5.1.1).
//
// Extracts the fields the paper's web analysis needs: method, URI, Host,
// User-Agent (automated-client identification), conditional-GET headers,
// response status, Content-Type and body length.  Handles pipelined
// transactions by pairing requests and responses FIFO.
#pragma once

#include <deque>
#include <string_view>
#include <vector>

#include "proto/events.h"
#include "proto/parser.h"
#include "proto/stream_buffer.h"

namespace entrace {

class HttpParser : public AppParser {
 public:
  explicit HttpParser(std::vector<HttpTransaction>& out);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;
  void on_close(Connection& conn) override;

 private:
  void parse_requests(Connection& conn, double ts);
  void parse_responses(Connection& conn, double ts);
  // Returns the header block (up to but excluding the blank line) if a
  // complete one is buffered, and its total size including the terminator.
  static bool extract_header_block(const StreamBuffer& buf, std::string_view& block,
                                   std::size_t& consumed);

  std::vector<HttpTransaction>& out_;
  StreamBuffer client_buf_;
  StreamBuffer server_buf_;
  // Requests awaiting their response, FIFO.
  std::deque<HttpTransaction> pending_;
  bool client_broken_ = false;
  bool server_broken_ = false;
};

// Header-block helpers shared with tests and the SMTP parser.
namespace httpdetail {
// Case-insensitive header lookup within a CRLF-separated block; returns the
// trimmed value or empty if absent.
std::string_view find_header(std::string_view block, std::string_view name);
}  // namespace httpdetail

}  // namespace entrace
