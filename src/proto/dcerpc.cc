#include "proto/dcerpc.h"

#include "net/bytes.h"

namespace entrace {
namespace {

constexpr std::size_t kPduHeaderSize = 16;
constexpr std::size_t kRequestExtra = 8;  // alloc_hint + context_id + opnum

// Real interface UUIDs (first bytes shown in registry order).
constexpr DceUuid kNetLogonUuid = {0x78, 0x56, 0x34, 0x12, 0x34, 0x12, 0xcd, 0xab,
                                   0xef, 0x00, 0x01, 0x23, 0x45, 0x67, 0xcf, 0xfb};
constexpr DceUuid kLsaRpcUuid = {0x78, 0x57, 0x34, 0x12, 0x34, 0x12, 0xcd, 0xab,
                                 0xef, 0x00, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab};
constexpr DceUuid kSpoolssUuid = {0x78, 0x56, 0x34, 0x12, 0x34, 0x12, 0xcd, 0xab,
                                  0xef, 0x00, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab};
constexpr DceUuid kEpmUuid = {0x08, 0x83, 0xaf, 0xe1, 0x1f, 0x5d, 0xc9, 0x11,
                              0x91, 0xa4, 0x08, 0x00, 0x2b, 0x14, 0xa0, 0xfa};
constexpr DceUuid kSamrUuid = {0x78, 0x57, 0x34, 0x12, 0x34, 0x12, 0xcd, 0xab,
                               0xef, 0x00, 0x01, 0x23, 0x45, 0x67, 0x89, 0xac};
constexpr DceUuid kWkssvcUuid = {0x98, 0xd0, 0xff, 0x6b, 0x12, 0xa1, 0x10, 0x36,
                                 0x98, 0x33, 0x46, 0xc3, 0xf8, 0x7e, 0x34, 0x5a};
constexpr DceUuid kOtherUuid = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x00,
                                0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01};

void encode_pdu_header(ByteWriter& w, std::uint8_t ptype, std::uint16_t frag_len,
                       std::uint32_t call_id) {
  w.u8(5);  // version
  w.u8(0);  // minor
  w.u8(ptype);
  w.u8(0x03);        // first+last fragment
  w.u32le(0x10);     // data representation: little-endian
  w.u16le(frag_len);
  w.u16le(0);        // auth length
  w.u32le(call_id);
}

}  // namespace

const DceUuid& dce_uuid(DceIface iface) {
  switch (iface) {
    case DceIface::kNetLogon:
      return kNetLogonUuid;
    case DceIface::kLsaRpc:
      return kLsaRpcUuid;
    case DceIface::kSpoolss:
      return kSpoolssUuid;
    case DceIface::kEpm:
      return kEpmUuid;
    case DceIface::kSamr:
      return kSamrUuid;
    case DceIface::kWkssvc:
      return kWkssvcUuid;
    case DceIface::kOther:
      break;
  }
  return kOtherUuid;
}

DceIface dce_iface_from_uuid(const DceUuid& uuid) {
  if (uuid == kNetLogonUuid) return DceIface::kNetLogon;
  if (uuid == kLsaRpcUuid) return DceIface::kLsaRpc;
  if (uuid == kSpoolssUuid) return DceIface::kSpoolss;
  if (uuid == kEpmUuid) return DceIface::kEpm;
  if (uuid == kSamrUuid) return DceIface::kSamr;
  if (uuid == kWkssvcUuid) return DceIface::kWkssvc;
  return DceIface::kOther;
}

std::vector<std::uint8_t> encode_dce_bind(std::uint32_t call_id, const DceUuid& iface) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  // header + max_xmit/max_recv/assoc_group + 1 context item
  const std::uint16_t frag_len = kPduHeaderSize + 8 + 4 + 4 + 16 + 4 + 16 + 4;
  encode_pdu_header(w, dce_ptype::kBind, frag_len, call_id);
  w.u16le(4280);  // max xmit frag
  w.u16le(4280);  // max recv frag
  w.u32le(0);     // assoc group
  w.u8(1);        // num context items
  w.zeros(3);
  w.u16le(0);  // context id
  w.u8(1);     // num transfer syntaxes
  w.u8(0);
  w.bytes(std::span<const std::uint8_t>(iface.data(), iface.size()));
  w.u32le(1);  // interface version
  // NDR transfer syntax uuid (abbreviated as zeros) + version
  w.zeros(16);
  w.u32le(2);
  return out;
}

std::vector<std::uint8_t> encode_dce_bind_ack(std::uint32_t call_id) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  const std::uint16_t frag_len = kPduHeaderSize + 12;
  encode_pdu_header(w, dce_ptype::kBindAck, frag_len, call_id);
  w.u16le(4280);
  w.u16le(4280);
  w.u32le(0x12345);  // assoc group
  w.u32le(0);        // secondary address len + pad (simplified)
  return out;
}

std::vector<std::uint8_t> encode_dce_request(std::uint32_t call_id, std::uint16_t opnum,
                                             std::size_t stub_len) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  const auto frag_len =
      static_cast<std::uint16_t>(kPduHeaderSize + kRequestExtra + stub_len);
  encode_pdu_header(w, dce_ptype::kRequest, frag_len, call_id);
  w.u32le(static_cast<std::uint32_t>(stub_len));  // alloc hint
  w.u16le(0);                                     // context id
  w.u16le(opnum);
  // Stub data: opaque filler.
  const std::size_t base = out.size();
  out.resize(base + stub_len);
  for (std::size_t i = 0; i < stub_len; ++i) out[base + i] = static_cast<std::uint8_t>(i);
  return out;
}

std::vector<std::uint8_t> encode_dce_request_stub(std::uint32_t call_id, std::uint16_t opnum,
                                                  std::span<const std::uint8_t> stub) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  const auto frag_len =
      static_cast<std::uint16_t>(kPduHeaderSize + kRequestExtra + stub.size());
  encode_pdu_header(w, dce_ptype::kRequest, frag_len, call_id);
  w.u32le(static_cast<std::uint32_t>(stub.size()));
  w.u16le(0);
  w.u16le(opnum);
  w.bytes(stub);
  return out;
}

std::vector<std::uint8_t> encode_dce_response(std::uint32_t call_id, std::size_t stub_len) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  const auto frag_len =
      static_cast<std::uint16_t>(kPduHeaderSize + kRequestExtra + stub_len);
  encode_pdu_header(w, dce_ptype::kResponse, frag_len, call_id);
  w.u32le(static_cast<std::uint32_t>(stub_len));
  w.u16le(0);  // context id
  w.u16le(0);  // cancel count + pad
  for (std::size_t i = 0; i < stub_len; ++i) out.push_back(static_cast<std::uint8_t>(i));
  return out;
}

std::vector<std::uint8_t> encode_dce_response_stub(std::uint32_t call_id,
                                                   std::span<const std::uint8_t> stub) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  const auto frag_len =
      static_cast<std::uint16_t>(kPduHeaderSize + kRequestExtra + stub.size());
  encode_pdu_header(w, dce_ptype::kResponse, frag_len, call_id);
  w.u32le(static_cast<std::uint32_t>(stub.size()));
  w.u16le(0);
  w.u16le(0);
  w.bytes(stub);
  return out;
}

std::vector<std::uint8_t> encode_epm_map_stub(const DceUuid& iface, Ipv4Address server,
                                              std::uint16_t port) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.bytes(std::span<const std::uint8_t>(iface.data(), iface.size()));
  w.u32be(server.value());
  w.u16be(port);
  return out;
}

bool decode_epm_map_stub(std::span<const std::uint8_t> stub, DceUuid& iface, Ipv4Address& server,
                         std::uint16_t& port) {
  if (stub.size() < 22) return false;
  ByteReader r(stub);
  auto u = r.bytes(16);
  std::copy(u.begin(), u.end(), iface.begin());
  server = Ipv4Address(r.u32be());
  port = r.u16be();
  return r.ok();
}

std::optional<DcePdu> decode_dce_pdu(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::uint8_t version = r.u8();
  r.u8();  // minor
  DcePdu pdu;
  pdu.ptype = r.u8();
  r.u8();      // flags
  r.u32le();   // drep
  pdu.frag_len = r.u16le();
  r.u16le();   // auth len
  pdu.call_id = r.u32le();
  if (!r.ok() || version != 5) return std::nullopt;

  switch (pdu.ptype) {
    case dce_ptype::kRequest: {
      r.u32le();  // alloc hint
      r.u16le();  // context id
      pdu.opnum = r.u16le();
      auto stub = r.rest();
      pdu.stub.assign(stub.begin(), stub.end());
      break;
    }
    case dce_ptype::kResponse: {
      r.u32le();
      r.u16le();
      r.u16le();
      auto stub = r.rest();
      pdu.stub.assign(stub.begin(), stub.end());
      break;
    }
    case dce_ptype::kBind: {
      r.u16le();  // max xmit
      r.u16le();  // max recv
      r.u32le();  // assoc group
      r.u8();     // num ctx
      r.skip(3);
      r.u16le();  // ctx id
      r.u8();     // num transfer syntaxes
      r.u8();
      auto u = r.bytes(16);
      if (!r.ok()) return std::nullopt;
      DceUuid uuid;
      std::copy(u.begin(), u.end(), uuid.begin());
      pdu.bind_uuid = uuid;
      break;
    }
    default:
      break;
  }
  if (!r.ok()) return std::nullopt;
  return pdu;
}

void DceRpcStream::feed(std::span<const std::uint8_t> data, std::vector<DcePdu>& out,
                        AnomalyCounts* anomalies) {
  buf_.append(data);
  if (buf_.overflowed()) {
    if (anomalies && !overflow_noted_) anomalies->add(AnomalyKind::kAppParseError);
    overflow_noted_ = true;
    return;
  }
  bool resynced = false;  // count a contiguous resync run once, not per byte
  for (;;) {
    auto avail = buf_.data();
    if (avail.size() < kPduHeaderSize) break;
    // Resync on garbage: a PDU must start with version 5 and a known ptype.
    if (avail[0] != 5 || avail[2] > 13) {
      resynced = true;
      buf_.consume(1);
      continue;
    }
    // frag_len lives at offset 8 (little-endian).
    const std::uint16_t frag_len = static_cast<std::uint16_t>(avail[8]) |
                                   static_cast<std::uint16_t>(avail[9]) << 8;
    if (frag_len < kPduHeaderSize) {  // malformed: resync by dropping a byte
      resynced = true;
      buf_.consume(1);
      continue;
    }
    if (avail.size() < frag_len) break;
    if (auto pdu = decode_dce_pdu(avail.first(frag_len))) {
      out.push_back(std::move(*pdu));
    } else {
      resynced = true;  // header looked sane but the PDU body was malformed
    }
    buf_.consume(frag_len);
  }
  if (resynced && anomalies) anomalies->add(AnomalyKind::kAppParseError);
}

DceRpcSession::DceRpcSession(std::vector<DceRpcCall>& calls, std::vector<EpmMapping>& mappings,
                             bool over_pipe)
    : calls_(calls), mappings_(mappings), over_pipe_(over_pipe) {}

void DceRpcSession::handle_pdu(Connection& conn, double ts, const DcePdu& pdu) {
  switch (pdu.ptype) {
    case dce_ptype::kBind:
      if (pdu.bind_uuid) iface_ = dce_iface_from_uuid(*pdu.bind_uuid);
      break;
    case dce_ptype::kRequest: {
      call_opnums_[pdu.call_id] = pdu.opnum;
      DceRpcCall call;
      call.conn = &conn;
      call.ts = ts;
      call.iface = iface_;
      call.opnum = pdu.opnum;
      call.over_pipe = over_pipe_;
      call.is_request = true;
      call.bytes = pdu.frag_len;
      calls_.push_back(call);
      break;
    }
    case dce_ptype::kResponse: {
      DceRpcCall call;
      call.conn = &conn;
      call.ts = ts;
      call.iface = iface_;
      auto it = call_opnums_.find(pdu.call_id);
      call.opnum = it != call_opnums_.end() ? it->second : 0;
      if (it != call_opnums_.end()) call_opnums_.erase(it);
      call.over_pipe = over_pipe_;
      call.is_request = false;
      call.bytes = pdu.frag_len;
      calls_.push_back(call);
      if (iface_ == DceIface::kEpm) {
        DceUuid uuid;
        Ipv4Address server;
        std::uint16_t port;
        if (decode_epm_map_stub(pdu.stub, uuid, server, port)) {
          EpmMapping m;
          m.conn = &conn;
          m.ts = ts;
          m.server = server;
          m.port = port;
          m.iface = dce_iface_from_uuid(uuid);
          mappings_.push_back(m);
        }
      }
      break;
    }
    default:
      break;
  }
}

DceRpcParser::DceRpcParser(std::vector<DceRpcCall>& calls, std::vector<EpmMapping>& mappings)
    : session_(calls, mappings, /*over_pipe=*/false) {}

void DceRpcParser::on_data(Connection& conn, Direction dir, double ts,
                           std::span<const std::uint8_t> data) {
  std::vector<DcePdu> pdus;
  (dir == Direction::kOrigToResp ? orig_stream_ : resp_stream_).feed(data, pdus, anomaly_sink());
  for (const auto& pdu : pdus) session_.handle_pdu(conn, ts, pdu);
}

}  // namespace entrace
