// Base interface for per-connection application parsers, driven by the
// dispatcher with in-order stream data from the flow table.
#pragma once

#include <cstdint>
#include <span>

#include "flow/connection.h"

namespace entrace {

class AppParser {
 public:
  virtual ~AppParser() = default;
  virtual void on_data(Connection& conn, Direction dir, double ts,
                       std::span<const std::uint8_t> data) = 0;
  // UDP datagrams additionally carry the wire length, which can exceed the
  // captured length under snaplen truncation.  Default: ignore the hint.
  virtual void on_datagram(Connection& conn, Direction dir, double ts,
                           std::span<const std::uint8_t> data, std::uint32_t wire_len) {
    (void)wire_len;
    on_data(conn, dir, ts, data);
  }
  virtual void on_close(Connection& conn) { (void)conn; }
};

}  // namespace entrace
