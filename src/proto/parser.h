// Base interface for per-connection application parsers, driven by the
// dispatcher with in-order stream data from the flow table.
#pragma once

#include <cstdint>
#include <span>

#include "flow/connection.h"
#include "net/anomaly.h"

namespace entrace {

class AppParser {
 public:
  virtual ~AppParser() = default;

  // Where parse anomalies (bails, resyncs on garbage bytes) are counted.
  // The dispatcher installs the per-shard sink right after construction;
  // parsers without a sink simply don't count.
  void set_anomaly_sink(AnomalyCounts* sink) { anomaly_sink_ = sink; }
  virtual void on_data(Connection& conn, Direction dir, double ts,
                       std::span<const std::uint8_t> data) = 0;
  // UDP datagrams additionally carry the wire length, which can exceed the
  // captured length under snaplen truncation.  Default: ignore the hint.
  virtual void on_datagram(Connection& conn, Direction dir, double ts,
                           std::span<const std::uint8_t> data, std::uint32_t wire_len) {
    (void)wire_len;
    on_data(conn, dir, ts, data);
  }
  virtual void on_close(Connection& conn) { (void)conn; }

 protected:
  void note_anomaly(AnomalyKind kind) {
    if (anomaly_sink_) anomaly_sink_->add(kind);
  }
  AnomalyCounts* anomaly_sink() const { return anomaly_sink_; }

 private:
  AnomalyCounts* anomaly_sink_ = nullptr;
};

}  // namespace entrace
