#include "proto/smtp.h"

#include <string>

#include "util/strings.h"

namespace entrace {

SmtpParser::SmtpParser(std::vector<SmtpCommand>& out) : out_(out) {}

void SmtpParser::on_data(Connection& conn, Direction dir, double ts,
                         std::span<const std::uint8_t> data) {
  if (dir != Direction::kOrigToResp) return;  // only command stream
  if (broken_) return;
  client_buf_.append(data);
  if (client_buf_.overflowed()) {
    broken_ = true;
    note_anomaly(AnomalyKind::kAppParseError);
    return;
  }
  for (;;) {
    const std::string_view buf(reinterpret_cast<const char*>(client_buf_.data().data()),
                               client_buf_.data().size());
    const std::size_t eol = buf.find("\r\n");
    if (eol == std::string_view::npos) {
      // Inside a message body, don't accumulate unbounded text.
      if (in_data_ && buf.size() > 4096) client_buf_.consume(buf.size() - 4);
      return;
    }
    const std::string line(trim(buf.substr(0, eol)));
    client_buf_.consume(eol + 2);
    if (in_data_) {
      if (line == ".") in_data_ = false;
      continue;
    }
    const std::size_t sp = line.find(' ');
    std::string verb = to_lower(sp == std::string::npos ? line : line.substr(0, sp));
    if (verb.empty()) continue;
    for (char& c : verb) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (verb == "DATA") in_data_ = true;
    out_.push_back({&conn, ts, std::move(verb)});
  }
}

}  // namespace entrace
