// CIFS/SMB parsing and encoding (§5.2.1, Tables 9-11).
//
// We implement a documented subset of SMB1: NBSS framing (shared by TCP 139
// and 445 — the paper found hosts use the two ports interchangeably), the
// command set needed to reproduce Table 10's categories, FID tracking to
// distinguish Windows File Sharing from DCE/RPC named pipes, and LANMAN
// transactions.  Pipe payloads are handed to DceRpcStream/DceRpcSession so
// pipe-borne RPC shows up in the Table 11 function breakdown.
//
// Message layout (subset, little-endian SMB conventions):
//   NBSS:  type u8 | flags u8 | length u16be
//   SMB:   0xFF 'S' 'M' 'B' | cmd u8 | status u32le | flags u8 | flags2
//          u16le | pid_high u16le | signature[8] | reserved u16le | tid
//          u16le | pid u16le | uid u16le | mid u16le
//   body:  word_count u8 | words[2*wc] | byte_count u16le | bytes
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "proto/dcerpc.h"
#include "proto/events.h"
#include "proto/parser.h"
#include "proto/stream_buffer.h"

namespace entrace {

namespace smbcmd {
inline constexpr std::uint8_t kClose = 0x04;
inline constexpr std::uint8_t kTrans = 0x25;
inline constexpr std::uint8_t kEcho = 0x2B;
inline constexpr std::uint8_t kReadAndX = 0x2E;
inline constexpr std::uint8_t kWriteAndX = 0x2F;
inline constexpr std::uint8_t kTreeDisconnect = 0x71;
inline constexpr std::uint8_t kNegotiate = 0x72;
inline constexpr std::uint8_t kSessionSetup = 0x73;
inline constexpr std::uint8_t kLogoff = 0x74;
inline constexpr std::uint8_t kTreeConnect = 0x75;
inline constexpr std::uint8_t kNtCreate = 0xA2;
}  // namespace smbcmd

namespace nbss {
inline constexpr std::uint8_t kSessionMessage = 0x00;
inline constexpr std::uint8_t kSessionRequest = 0x81;
inline constexpr std::uint8_t kPositiveResponse = 0x82;
inline constexpr std::uint8_t kNegativeResponse = 0x83;
}  // namespace nbss

// ---- Encoders (used by the trace generator) --------------------------------

std::vector<std::uint8_t> nbss_frame(std::uint8_t type, std::span<const std::uint8_t> payload);
std::vector<std::uint8_t> nbss_session_request(const std::string& called,
                                               const std::string& calling);
std::vector<std::uint8_t> nbss_session_response(bool positive);

// Full NBSS-framed SMB message.
std::vector<std::uint8_t> smb_message(std::uint8_t cmd, std::uint16_t mid, bool is_response,
                                      std::span<const std::uint8_t> words,
                                      std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> smb_simple(std::uint8_t cmd, std::uint16_t mid, bool is_response,
                                     std::size_t byte_payload = 0);
std::vector<std::uint8_t> smb_ntcreate_request(std::uint16_t mid, const std::string& path);
std::vector<std::uint8_t> smb_ntcreate_response(std::uint16_t mid, std::uint16_t fid);
std::vector<std::uint8_t> smb_read_request(std::uint16_t mid, std::uint16_t fid,
                                           std::uint16_t count);
std::vector<std::uint8_t> smb_read_response(std::uint16_t mid, std::uint16_t fid,
                                            std::span<const std::uint8_t> data);
std::vector<std::uint8_t> smb_write_request(std::uint16_t mid, std::uint16_t fid,
                                            std::span<const std::uint8_t> data);
std::vector<std::uint8_t> smb_write_response(std::uint16_t mid, std::uint16_t fid);
std::vector<std::uint8_t> smb_trans(std::uint16_t mid, bool is_response,
                                    const std::string& pipe_name, std::size_t data_len);

// Known DCE/RPC pipe names.
std::optional<DceIface> pipe_iface(const std::string& name);

// ---- Parser -----------------------------------------------------------------

class CifsParser : public AppParser {
 public:
  // netbios_framing: true for TCP 139 (session request handshake precedes
  // SMB), false for TCP 445 (direct).  Both use NBSS record framing.
  CifsParser(AppEvents& events, bool netbios_framing);

  void on_data(Connection& conn, Direction dir, double ts,
               std::span<const std::uint8_t> data) override;

 private:
  struct PipeState {
    DceRpcStream to_server;
    DceRpcStream to_client;
    std::unique_ptr<DceRpcSession> session;
  };

  void parse_stream(Connection& conn, Direction dir, double ts, StreamBuffer& buf);
  void handle_smb(Connection& conn, Direction dir, double ts,
                  std::span<const std::uint8_t> smb, std::uint32_t framed_len);
  CifsCategory classify(std::uint8_t cmd, std::uint16_t fid, const std::string& trans_name);
  PipeState& pipe_state(std::uint16_t fid);

  AppEvents& events_;
  bool netbios_framing_;
  StreamBuffer client_buf_;
  StreamBuffer server_buf_;
  // mid -> path for in-flight NT Create requests.
  std::map<std::uint16_t, std::string> pending_creates_;
  // fid -> pipe interface (files are absent from the map).
  std::map<std::uint16_t, DceIface> pipe_fids_;
  std::map<std::uint16_t, PipeState> pipes_;
  bool broken_ = false;
};

}  // namespace entrace
