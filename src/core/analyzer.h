// EnterpriseAnalyzer: the end-to-end pipeline of the paper.
//
//   packet traces -> decode -> scanner identification & removal (§3)
//     -> connection summaries (flow table)  -> application parsing
//     -> per-section analyses (§3-§6)
//
// analyze_dataset() consumes one dataset (one of D0-D4) and produces a
// DatasetAnalysis holding connection summaries, application events, load
// statistics and everything the report/benches need.  The primary input is
// a TraceSourceSet — a factory of streaming per-trace PacketSources (pcap
// file, in-memory trace, or incremental synthetic generator), so analysis
// memory is bounded by per-trace buffers plus result state, never by the
// dataset's packet count.  A thin TraceSet overload adapts materialized
// traces through MemoryTraceSource for existing callers.
//
// The datasets are sets of independently captured per-subnet traces, so
// the pipeline shards at trace granularity: each thread-pool job opens its
// own source and runs the whole decode -> tallies -> scanner-observation
// -> flow -> application chain as one fused pass (a single decode per
// packet) with private state, and the shards fold on the caller's thread
// in trace-index order — results are bit-identical for every thread count
// and for every source kind that yields the same packet stream.  Scanner
// *identification* needs the global cross-trace view, so the
// scanner-removal filter runs after the fold.  Dynamic DCE/RPC endpoints
// learned from Endpoint Mapper traffic apply within the trace that
// observed them (EPM mappings and the ephemeral-port connections they
// describe share a subnet trace).
#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/breakdown.h"
#include "analysis/load.h"
#include "analysis/scanner.h"
#include "analysis/site.h"
#include "flow/flow_table.h"
#include "net/anomaly.h"
#include "obs/metrics.h"
#include "pcap/packet_source.h"
#include "pcap/trace.h"
#include "proto/dispatcher.h"
#include "proto/events.h"
#include "proto/registry.h"

namespace entrace {

struct AnalyzerConfig {
  SiteConfig site;
  FlowConfig flow;
  ScannerDetector::Config scanner;
  bool remove_scanners = true;
  // Override the per-trace snaplen-based payload-analysis decision.
  std::optional<bool> payload_analysis;
  // Worker threads for the per-trace analysis jobs.  0 = auto: honour
  // ENTRACE_THREADS, else hardware_concurrency.  Results are bit-identical
  // for every thread count (shards fold in trace-index order).
  std::size_t threads = 0;
  // Runtime telemetry (src/obs): per-layer metrics and per-stage timing
  // scopes recorded into TraceShard::metrics / DatasetAnalysis::metrics.
  // Off disables all collection (no registry lookups, no histogram on the
  // hot loop) — the toggle the bench overhead study flips.
  bool collect_metrics = true;
  // Packets pulled, decoded, tallied and flow-processed per batch.  Results
  // are byte-identical for every value: the stage loops only regroup work
  // that is order-independent across stages (tallies are additive, flow
  // processing preserves packet order).  <= 1 selects the scalar
  // packet-at-a-time loop, kept as the equivalence reference.
  std::size_t batch_size = 256;
};

// IP packets tallied by transport protocol number.  A flat 256-entry array
// instead of a std::map: the increment sits in the per-packet hot loop and
// must not pay red-black-tree costs.  as_map() keeps the old map-like view
// for report code.
class IpProtoCounts {
 public:
  std::uint64_t& operator[](std::uint8_t proto) { return counts_[proto]; }
  std::uint64_t operator[](std::uint8_t proto) const { return counts_[proto]; }

  void merge(const IpProtoCounts& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  }

  // Nonzero entries ordered by protocol number (the old std::map interface).
  std::map<std::uint8_t, std::uint64_t> as_map() const {
    std::map<std::uint8_t, std::uint64_t> out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] != 0) out.emplace(static_cast<std::uint8_t>(i), counts_[i]);
    }
    return out;
  }

 private:
  std::array<std::uint64_t, 256> counts_{};
};

class DatasetAnalysis {
 public:
  std::string name;
  SiteConfig site;
  std::vector<int> monitored_subnets;

  // ---- packet-level tallies (Tables 1-2) ----------------------------------
  // Accounting rule: every headline tally — total_packets, total_wire_bytes,
  // l3, ip_proto_packets, the host sets and the load series — counts only
  // packets that survived decode and checksum verification, i.e. exactly
  // quality.packets_ok.  Packets dropped for undecodable or demonstrably
  // corrupt headers are accounted solely in `quality`
  // (packets_seen == packets_ok + packets_dropped), so the invariant
  //   total_packets == quality.packets_ok == l3.total
  // holds for every dataset and every source kind (asserted by the
  // corruption and streaming test suites).
  std::uint64_t total_packets = 0;
  std::uint64_t total_wire_bytes = 0;
  NetworkLayerBreakdown l3;
  // IP packets by transport protocol number (rare transports of §3).
  IpProtoCounts ip_proto_packets;
  std::set<std::uint32_t> monitored_hosts;  // hosts in monitored subnets
  std::set<std::uint32_t> lbnl_hosts;
  std::set<std::uint32_t> remote_hosts;

  // ---- capture quality -------------------------------------------------------
  // Every packet of every trace is accounted for here:
  //   packets_seen == packets_ok + packets_dropped.
  // Dropped packets (empty/Ethernet-truncated captures, checksum failures)
  // are excluded from the tallies above and from flow/application analysis;
  // anomalies classifies both the drops and the informational flags
  // (snaplen clipping, partial L3/L4 decodes, parser bails).
  CaptureQuality quality;

  // ---- connections -----------------------------------------------------------
  // Flow state (owns the Connection objects everything else points into).
  std::vector<std::unique_ptr<FlowTable>> tables;
  std::vector<const Connection*> all_connections;
  std::vector<const Connection*> connections;  // scanner traffic removed
  std::set<Ipv4Address> scanners;
  std::uint64_t scanner_conns_removed = 0;
  double scanner_removed_fraction() const {
    return all_connections.empty()
               ? 0.0
               : static_cast<double>(scanner_conns_removed) /
                     static_cast<double>(all_connections.size());
  }

  // ---- application events -----------------------------------------------------
  AppEvents events;
  AppRegistry registry;

  // ---- load (§6) -----------------------------------------------------------------
  std::vector<TraceLoadRaw> load_raw;

  // ---- runtime telemetry -----------------------------------------------------
  // Folded from the per-shard registries plus fold/post-fold recordings.
  // Semantic-class metrics are deterministic (same dataset => same values
  // at any thread count or shard partition); timing-class metrics describe
  // this particular run.  Render with report::telemetry (semantic table)
  // or obs::render_json / obs::render_prometheus (--metrics-out).
  obs::Registry metrics;

  bool is_monitored_host(Ipv4Address a) const {
    return monitored_hosts.count(a.value()) > 0;
  }
  std::uint64_t payload_bytes() const;
};

// Everything one per-trace job produces.  Shards are private to their job
// and folded into the DatasetAnalysis on the caller's thread in trace-index
// order, so results are identical for every thread count.  A shard is also
// the unit of the snapshot subsystem (src/snapshot): every member either
// merges associatively or is per-trace state carried through the fold, so
// shards computed by different processes — or decoded from .esnap files —
// fold to the same DatasetAnalysis as a single-process run.
struct TraceShard {
  TraceShard() = default;
  explicit TraceShard(const ScannerDetector::Config& scanner_config)
      : detector(scanner_config) {}

  int subnet_id = -1;
  std::uint64_t total_packets = 0;
  std::uint64_t total_wire_bytes = 0;
  NetworkLayerBreakdown l3;
  IpProtoCounts ip_proto_packets;
  std::set<std::uint32_t> monitored_hosts;
  std::set<std::uint32_t> lbnl_hosts;
  std::set<std::uint32_t> remote_hosts;
  ScannerDetector detector;
  AppRegistry registry;
  AppEvents events;
  std::unique_ptr<FlowTable> table;
  TraceLoadRaw load;
  CaptureQuality quality;
  // Per-trace telemetry (empty when AnalyzerConfig::collect_metrics is
  // off).  Semantic-class entries travel through snapshots; timing stays
  // process-local.
  obs::Registry metrics;
};

// One fused streaming pass over a trace source: pull -> decode -> tallies
// -> scanner observation -> flow table -> protocol dispatch, with a single
// decode_packet call per packet.  Fills `shard` (which must be fresh).
void analyze_trace(PacketSource& source, const AnalyzerConfig& config, TraceShard& shard);

// Analyze traces [begin, end) of the set — one shard per trace, in trace-
// index order, computed in parallel per config.threads.  This is the
// sharding half of analyze_dataset, exposed so a shard process can analyze
// its slice of a dataset and snapshot the result (tools/entrace_shard).
// When `process_metrics` is non-null (and collect_metrics on), thread-pool
// scheduling telemetry (`pool.*`, timing class) is recorded into it.
std::vector<TraceShard> analyze_trace_shards(const TraceSourceSet& sources,
                                             const AnalyzerConfig& config,
                                             std::size_t begin, std::size_t end,
                                             obs::Registry* process_metrics = nullptr);

// Deterministic fold: consumes one shard per trace of the dataset, in
// trace-index order, and produces the final DatasetAnalysis (global scanner
// identification and removal run post-fold).  Whether the shards came from
// this process's analyze_trace_shards or were decoded from snapshot files,
// the result is bit-identical.
DatasetAnalysis fold_shards(std::string dataset_name, std::vector<TraceShard>&& shards,
                            const AnalyzerConfig& config);

// Streaming entry point: each per-trace job opens its own PacketSource
// from the set, so whole traces are never materialized by the analyzer.
DatasetAnalysis analyze_dataset(const TraceSourceSet& sources, const AnalyzerConfig& config);

// Materialized adapter: analyzes an in-memory TraceSet through
// MemoryTraceSource, bit-identical to the streaming path.
DatasetAnalysis analyze_dataset(const TraceSet& traces, const AnalyzerConfig& config);

// Convenience: the AnalyzerConfig matching the synthetic EnterpriseModel.
AnalyzerConfig default_config_for_model(const SiteConfig& site);

}  // namespace entrace
