#include "core/report.h"

#include <array>
#include <set>

#include "analysis/backup_analysis.h"
#include "analysis/breakdown.h"
#include "analysis/email_analysis.h"
#include "analysis/http_analysis.h"
#include "analysis/load.h"
#include "analysis/locality.h"
#include "analysis/name_analysis.h"
#include "analysis/netfile_analysis.h"
#include "analysis/windows_analysis.h"
#include "net/headers.h"
#include "obs/exposition.h"
#include "util/cdf_plot.h"
#include "util/strings.h"
#include "util/table.h"

namespace entrace::report {
namespace {

std::string pct(double f) { return format_pct(f); }

bool has_payload(const ReportInput& in) {
  return in.spec == nullptr || in.spec->payload_analysis();
}

std::vector<std::string> names_row(Inputs in, const std::string& head) {
  std::vector<std::string> row{head};
  for (const auto& i : in) row.push_back(i.analysis->name);
  return row;
}

}  // namespace

std::string table1_datasets(Inputs in) {
  TextTable t("Table 1: Dataset characteristics (synthetic reproduction, scaled)");
  t.set_header(names_row(in, ""));
  auto row = [&t, &in](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& i : in) r.push_back(getter(i));
    t.add_row(std::move(r));
  };
  row("Duration", [](const ReportInput& i) {
    if (!i.spec) return std::string("?");
    const double d = i.spec->trace_duration;
    return d >= 3600 ? format_double(d / 3600, 0) + " hr" : format_double(d / 60, 0) + " min";
  });
  row("Per Tap", [](const ReportInput& i) {
    return i.spec ? std::to_string(i.spec->traces_per_subnet) : "?";
  });
  row("# Subnets", [](const ReportInput& i) {
    return i.spec ? std::to_string(i.spec->num_subnets) : "?";
  });
  row("# Packets", [](const ReportInput& i) { return format_count(i.analysis->total_packets); });
  row("Snaplen", [](const ReportInput& i) {
    return i.spec ? std::to_string(i.spec->snaplen) : "?";
  });
  row("Mon. Hosts", [](const ReportInput& i) {
    return std::to_string(i.analysis->monitored_hosts.size());
  });
  row("LBNL Hosts", [](const ReportInput& i) {
    return std::to_string(i.analysis->lbnl_hosts.size());
  });
  row("Remote Hosts", [](const ReportInput& i) {
    return std::to_string(i.analysis->remote_hosts.size());
  });
  return t.render();
}

std::string capture_quality(Inputs in) {
  TextTable t("Capture quality: per-dataset packet accounting "
              "(seen == decoded + dropped) and anomaly kinds");
  t.set_header(names_row(in, ""));
  auto row = [&t, &in](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& i : in) r.push_back(getter(i.analysis->quality));
    t.add_row(std::move(r));
  };
  row("Seen", [](const CaptureQuality& q) { return format_count(q.packets_seen); });
  row("Decoded", [](const CaptureQuality& q) { return format_count(q.packets_ok); });
  row("Dropped", [](const CaptureQuality& q) { return format_count(q.packets_dropped); });
  t.add_rule();
  // One row per anomaly kind that is non-zero in at least one dataset.
  for (std::size_t k = 0; k < kAnomalyKindCount; ++k) {
    const AnomalyKind kind = static_cast<AnomalyKind>(k);
    bool any = false;
    for (const auto& i : in) any = any || i.analysis->quality.anomalies[kind] != 0;
    if (!any) continue;
    std::vector<std::string> r{to_string(kind)};
    for (const auto& i : in) r.push_back(format_count(i.analysis->quality.anomalies[kind]));
    t.add_row(std::move(r));
  }
  return t.render();
}

std::string table2_network_layer(Inputs in) {
  TextTable t("Table 2: Network-layer protocol mix (IP as % of all packets; "
              "ARP/IPX/Other as % of non-IP)");
  t.set_header(names_row(in, ""));
  auto row = [&t, &in](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& i : in) r.push_back(getter(i.analysis->l3));
    t.add_row(std::move(r));
  };
  row("IP", [](const NetworkLayerBreakdown& b) { return pct(b.ip_fraction()); });
  row("!IP", [](const NetworkLayerBreakdown& b) { return pct(b.non_ip_fraction()); });
  t.add_rule();
  row("ARP", [](const NetworkLayerBreakdown& b) { return pct(b.arp_of_non_ip()); });
  row("IPX", [](const NetworkLayerBreakdown& b) { return pct(b.ipx_of_non_ip()); });
  row("Other", [](const NetworkLayerBreakdown& b) { return pct(b.other_of_non_ip()); });
  return t.render();
}

std::string table3_transport(Inputs in) {
  TextTable t("Table 3: Transport breakdown (scanner traffic removed)");
  t.set_header(names_row(in, ""));
  std::vector<TransportBreakdown> tb;
  tb.reserve(in.size());
  for (const auto& i : in) tb.push_back(TransportBreakdown::compute(i.analysis->connections));

  auto row = [&t, &tb](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& b : tb) r.push_back(getter(b));
    t.add_row(std::move(r));
  };
  row("Bytes", [](const TransportBreakdown& b) { return format_bytes(b.bytes); });
  row("TCP", [](const TransportBreakdown& b) { return pct(b.byte_fraction(ipproto::kTcp)); });
  row("UDP", [](const TransportBreakdown& b) { return pct(b.byte_fraction(ipproto::kUdp)); });
  row("ICMP", [](const TransportBreakdown& b) { return pct(b.byte_fraction(ipproto::kIcmp)); });
  t.add_rule();
  row("Conns", [](const TransportBreakdown& b) { return format_count(b.conns); });
  row("TCP", [](const TransportBreakdown& b) { return pct(b.conn_fraction(ipproto::kTcp)); });
  row("UDP", [](const TransportBreakdown& b) { return pct(b.conn_fraction(ipproto::kUdp)); });
  row("ICMP", [](const TransportBreakdown& b) { return pct(b.conn_fraction(ipproto::kIcmp)); });
  t.add_rule();
  {
    std::vector<std::string> r{"Scanner conns removed"};
    for (const auto& i : in) r.push_back(pct(i.analysis->scanner_removed_fraction()));
    t.add_row(std::move(r));
  }
  return t.render();
}

std::string figure1_app_breakdown(Inputs in) {
  static constexpr std::array<AppCategory, 13> kOrder = {
      AppCategory::kWeb,       AppCategory::kEmail,   AppCategory::kNetFile,
      AppCategory::kBackup,    AppCategory::kBulk,    AppCategory::kName,
      AppCategory::kInteractive, AppCategory::kWindows, AppCategory::kStreaming,
      AppCategory::kNetMgnt,   AppCategory::kMisc,    AppCategory::kOtherTcp,
      AppCategory::kOtherUdp};

  std::vector<AppCategoryBreakdown> breakdowns;
  breakdowns.reserve(in.size());
  for (const auto& i : in) {
    breakdowns.push_back(
        AppCategoryBreakdown::compute(i.analysis->connections, i.analysis->site));
  }

  std::string out;
  {
    TextTable t("Figure 1(a): % of unicast payload bytes by category (ent+wan = total; "
                "wan part in parentheses)");
    t.set_header(names_row(in, "category"));
    for (AppCategory c : kOrder) {
      std::vector<std::string> row{to_string(c)};
      for (const auto& b : breakdowns) {
        const double ent = b.byte_fraction(c, false);
        const double wan = b.byte_fraction(c, true);
        row.push_back(pct(ent + wan) + " (" + pct(wan) + ")");
      }
      t.add_row(std::move(row));
    }
    out += t.render();
  }
  {
    TextTable t("Figure 1(b): % of unicast connections by category");
    t.set_header(names_row(in, "category"));
    for (AppCategory c : kOrder) {
      std::vector<std::string> row{to_string(c)};
      for (const auto& b : breakdowns) {
        const double ent = b.conn_fraction(c, false);
        const double wan = b.conn_fraction(c, true);
        row.push_back(pct(ent + wan) + " (" + pct(wan) + ")");
      }
      t.add_row(std::move(row));
    }
    out += t.render();
  }
  {
    TextTable t("Figure 1 callout: multicast (as % of ALL payload bytes / connections)");
    t.set_header(names_row(in, "category"));
    for (AppCategory c : {AppCategory::kStreaming, AppCategory::kName, AppCategory::kNetMgnt}) {
      std::vector<std::string> row{to_string(c)};
      for (const auto& b : breakdowns) {
        row.push_back(pct(b.multicast_byte_fraction(c)) + " / " +
                      pct(b.multicast_conn_fraction(c)));
      }
      t.add_row(std::move(row));
    }
    out += t.render();
  }
  return out;
}

std::string origins_summary(Inputs in) {
  TextTable t("Section 4: flow origins (fractions of all flows)");
  t.set_header(names_row(in, ""));
  std::vector<OriginBreakdown> ob;
  for (const auto& i : in)
    ob.push_back(OriginBreakdown::compute(i.analysis->connections, i.analysis->site));
  auto row = [&t, &ob](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& b : ob) r.push_back(getter(b));
    t.add_row(std::move(r));
  };
  row("ent -> ent", [](const OriginBreakdown& b) { return pct(b.fraction(b.ent_to_ent)); });
  row("ent -> wan", [](const OriginBreakdown& b) { return pct(b.fraction(b.ent_to_wan)); });
  row("wan -> ent", [](const OriginBreakdown& b) { return pct(b.fraction(b.wan_to_ent)); });
  row("mcast ent-src",
      [](const OriginBreakdown& b) { return pct(b.fraction(b.multicast_ent_src)); });
  row("mcast wan-src",
      [](const OriginBreakdown& b) { return pct(b.fraction(b.multicast_wan_src)); });
  return t.render();
}

std::string figure2_fan(const ReportInput& in) {
  const DatasetAnalysis& a = *in.analysis;
  FanResult fan = compute_fan(a.connections, a.site,
                              [&a](Ipv4Address h) { return a.is_monitored_host(h); });
  std::string out;
  CdfPlot fin("Figure 2(a): Fan-in (" + a.name + ")", "peers", true);
  fin.add_series("enterprise", fan.fan_in_ent);
  fin.add_series("wan", fan.fan_in_wan);
  out += fin.render();
  CdfPlot fout("Figure 2(b): Fan-out (" + a.name + ")", "peers", true);
  fout.add_series("enterprise", fan.fan_out_ent);
  fout.add_series("wan", fan.fan_out_wan);
  out += fout.render();
  out += "hosts with only-internal fan-in: " + pct(fan.only_internal_fan_in) +
         " (paper: one-third to one-half)\n";
  out += "hosts with only-internal fan-out: " + pct(fan.only_internal_fan_out) +
         " (paper: more than half)\n";
  return out;
}

namespace {

std::vector<HttpAnalysis> http_for(Inputs in) {
  std::vector<HttpAnalysis> v;
  for (const auto& i : in) {
    v.push_back(HttpAnalysis::compute(i.analysis->events.http, i.analysis->connections,
                                      i.analysis->site));
  }
  return v;
}

}  // namespace

std::string table6_http_automation(Inputs in) {
  TextTable t("Table 6: Automated clients' share of internal HTTP traffic (requests / bytes)");
  t.set_header(names_row(in, ""));
  auto https = http_for(in);
  {
    std::vector<std::string> r{"Total (reqs/bytes)"};
    for (const auto& h : https)
      r.push_back(std::to_string(h.internal_requests) + " / " + format_bytes(h.internal_bytes));
    t.add_row(std::move(r));
  }
  for (HttpClientKind k : {HttpClientKind::kScan1, HttpClientKind::kGoogle1,
                           HttpClientKind::kGoogle2, HttpClientKind::kIfolder}) {
    std::vector<std::string> r{to_string(k)};
    for (const auto& h : https) {
      auto it = h.automated.find(k);
      const std::uint64_t reqs = it != h.automated.end() ? it->second.requests : 0;
      const std::uint64_t bytes = it != h.automated.end() ? it->second.bytes : 0;
      const double rf = h.internal_requests
                            ? static_cast<double>(reqs) / static_cast<double>(h.internal_requests)
                            : 0;
      const double bf = h.internal_bytes
                            ? static_cast<double>(bytes) / static_cast<double>(h.internal_bytes)
                            : 0;
      r.push_back(pct(rf) + " / " + pct(bf));
    }
    t.add_row(std::move(r));
  }
  {
    std::vector<std::string> r{"All automated"};
    for (const auto& h : https)
      r.push_back(pct(h.automated_request_fraction()) + " / " + pct(h.automated_byte_fraction()));
    t.add_row(std::move(r));
  }
  return t.render();
}

std::string http_findings(Inputs in) {
  TextTable t("HTTP findings (§5.1.1): success rates and conditional GETs");
  t.set_header(names_row(in, ""));
  auto https = http_for(in);
  auto row = [&t, &https](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& h : https) r.push_back(getter(h));
    t.add_row(std::move(r));
  };
  row("ent conn success (host pairs)",
      [](const HttpAnalysis& h) { return pct(h.ent_success.success_rate()); });
  row("wan conn success (host pairs)",
      [](const HttpAnalysis& h) { return pct(h.wan_success.success_rate()); });
  row("cond. GETs, ent (reqs)", [](const HttpAnalysis& h) {
    return h.ent_requests ? pct(static_cast<double>(h.ent_conditional) /
                                static_cast<double>(h.ent_requests))
                          : std::string("-");
  });
  row("cond. GETs, wan (reqs)", [](const HttpAnalysis& h) {
    return h.wan_requests ? pct(static_cast<double>(h.wan_conditional) /
                                static_cast<double>(h.wan_requests))
                          : std::string("-");
  });
  row("cond. GET bytes, ent", [](const HttpAnalysis& h) {
    return h.ent_bytes ? pct(static_cast<double>(h.ent_conditional_bytes) /
                             static_cast<double>(h.ent_bytes))
                       : std::string("-");
  });
  row("cond. GET bytes, wan", [](const HttpAnalysis& h) {
    return h.wan_bytes ? pct(static_cast<double>(h.wan_conditional_bytes) /
                             static_cast<double>(h.wan_bytes))
                       : std::string("-");
  });
  row("request success (2xx/304)", [](const HttpAnalysis& h) {
    const std::uint64_t reqs = h.ent_requests + h.wan_requests;
    return reqs ? pct(static_cast<double>(h.request_successes) / static_cast<double>(reqs))
                : std::string("-");
  });
  return t.render();
}

std::string figure3_http_fanout(Inputs in) {
  std::string out;
  auto https = http_for(in);
  CdfPlot plot("Figure 3: HTTP fan-out (servers per client)", "peers per source", true);
  for (std::size_t i = 0; i < in.size(); ++i) {
    plot.add_series("ent:" + in[i].analysis->name, https[i].fanout.ent);
    plot.add_series("wan:" + in[i].analysis->name, https[i].fanout.wan);
  }
  out += plot.render();
  return out;
}

std::string table7_http_content_types(Inputs in) {
  TextTable t("Table 7: HTTP content types (requests% / bytes%)");
  std::vector<std::string> header{"type"};
  for (const auto& i : in) {
    header.push_back(i.analysis->name + "/ent");
    header.push_back(i.analysis->name + "/wan");
  }
  t.set_header(std::move(header));
  auto https = http_for(in);
  for (const std::string type : {"text", "image", "application", "other"}) {
    std::vector<std::string> row{type};
    for (const auto& h : https) {
      row.push_back(pct(h.content_ent.count_fraction(type)) + " / " +
                    pct(h.content_ent.bytes_fraction(type)));
      row.push_back(pct(h.content_wan.count_fraction(type)) + " / " +
                    pct(h.content_wan.bytes_fraction(type)));
    }
    t.add_row(std::move(row));
  }
  return t.render();
}

std::string figure4_http_reply_sizes(Inputs in) {
  auto https = http_for(in);
  CdfPlot plot("Figure 4: HTTP reply size (bytes, when present)", "bytes", true);
  for (std::size_t i = 0; i < in.size(); ++i) {
    plot.add_series("ent:" + in[i].analysis->name, https[i].reply_size_ent);
    plot.add_series("wan:" + in[i].analysis->name, https[i].reply_size_wan);
  }
  return plot.render();
}

namespace {

std::vector<EmailAnalysis> email_for(Inputs in) {
  std::vector<EmailAnalysis> v;
  for (const auto& i : in)
    v.push_back(EmailAnalysis::compute(i.analysis->connections, i.analysis->site));
  return v;
}

}  // namespace

std::string table8_email_sizes(Inputs in) {
  TextTable t("Table 8: Email traffic size (payload bytes)");
  t.set_header(names_row(in, ""));
  auto emails = email_for(in);
  auto row = [&t, &emails](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& e : emails) r.push_back(format_bytes(getter(e)));
    t.add_row(std::move(r));
  };
  row("SMTP", [](const EmailAnalysis& e) { return e.smtp_bytes; });
  row("SIMAP", [](const EmailAnalysis& e) { return e.imaps_bytes; });
  row("IMAP4", [](const EmailAnalysis& e) { return e.imap4_bytes; });
  row("Other", [](const EmailAnalysis& e) { return e.other_bytes; });
  return t.render();
}

std::string figure5_email_durations(Inputs in) {
  auto emails = email_for(in);
  std::string out;
  {
    CdfPlot plot("Figure 5(a): SMTP connection durations (s)", "seconds", true);
    for (std::size_t i = 0; i < in.size(); ++i) {
      plot.add_series("ent:" + in[i].analysis->name, emails[i].smtp_dur_ent);
      plot.add_series("wan:" + in[i].analysis->name, emails[i].smtp_dur_wan);
    }
    out += plot.render();
  }
  {
    CdfPlot plot("Figure 5(b): IMAP/S connection durations (s)", "seconds", true);
    for (std::size_t i = 0; i < in.size(); ++i) {
      plot.add_series("ent:" + in[i].analysis->name, emails[i].imaps_dur_ent);
      plot.add_series("wan:" + in[i].analysis->name, emails[i].imaps_dur_wan);
    }
    out += plot.render();
  }
  {
    TextTable t("Email success rates (host pairs)");
    t.set_header(names_row(in, ""));
    auto row = [&t, &emails](const std::string& label, auto getter) {
      std::vector<std::string> r{label};
      for (const auto& e : emails) r.push_back(getter(e));
      t.add_row(std::move(r));
    };
    row("SMTP ent", [](const EmailAnalysis& e) { return pct(e.smtp_ent.success_rate()); });
    row("SMTP wan", [](const EmailAnalysis& e) { return pct(e.smtp_wan.success_rate()); });
    row("IMAP/S", [](const EmailAnalysis& e) { return pct(e.imaps_all.success_rate()); });
    out += t.render();
  }
  return out;
}

std::string figure6_email_sizes(Inputs in) {
  auto emails = email_for(in);
  std::string out;
  {
    CdfPlot plot("Figure 6(a): SMTP flow size from client (bytes)", "bytes", true);
    for (std::size_t i = 0; i < in.size(); ++i) {
      plot.add_series("ent:" + in[i].analysis->name, emails[i].smtp_size_ent);
      plot.add_series("wan:" + in[i].analysis->name, emails[i].smtp_size_wan);
    }
    out += plot.render();
  }
  {
    CdfPlot plot("Figure 6(b): IMAP/S flow size from server (bytes)", "bytes", true);
    for (std::size_t i = 0; i < in.size(); ++i) {
      plot.add_series("ent:" + in[i].analysis->name, emails[i].imaps_size_ent);
      plot.add_series("wan:" + in[i].analysis->name, emails[i].imaps_size_wan);
    }
    out += plot.render();
  }
  return out;
}

std::string name_service_findings(Inputs in) {
  TextTable t("Name services (§5.1.3)");
  t.set_header(names_row(in, ""));
  std::vector<NameAnalysis> names;
  for (const auto& i : in) {
    names.push_back(
        NameAnalysis::compute(i.analysis->events.dns, i.analysis->events.nbns, i.analysis->site));
  }
  auto row = [&t, &names](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& n : names) r.push_back(getter(n));
    t.add_row(std::move(r));
  };
  row("DNS median latency ent (ms)", [](const NameAnalysis& n) {
    return n.dns_latency_ent.empty() ? std::string("-")
                                     : format_double(n.dns_latency_ent.median() * 1000, 2);
  });
  row("DNS median latency wan (ms)", [](const NameAnalysis& n) {
    return n.dns_latency_wan.empty() ? std::string("-")
                                     : format_double(n.dns_latency_wan.median() * 1000, 2);
  });
  auto frac = [](std::uint64_t n, std::uint64_t d) {
    return d == 0 ? std::string("-") : pct(static_cast<double>(n) / static_cast<double>(d));
  };
  row("A requests", [&frac](const NameAnalysis& n) { return frac(n.dns_a, n.dns_requests); });
  row("AAAA requests",
      [&frac](const NameAnalysis& n) { return frac(n.dns_aaaa, n.dns_requests); });
  row("PTR requests",
      [&frac](const NameAnalysis& n) { return frac(n.dns_ptr, n.dns_requests); });
  row("MX requests", [&frac](const NameAnalysis& n) { return frac(n.dns_mx, n.dns_requests); });
  row("DNS NOERROR",
      [&frac](const NameAnalysis& n) { return frac(n.dns_noerror, n.dns_responses); });
  row("DNS NXDOMAIN",
      [&frac](const NameAnalysis& n) { return frac(n.dns_nxdomain, n.dns_responses); });
  row("DNS top-2 client share",
      [](const NameAnalysis& n) { return pct(n.dns_top2_client_share); });
  t.add_rule();
  row("NBNS queries",
      [&frac](const NameAnalysis& n) { return frac(n.nbns_queries, n.nbns_requests); });
  row("NBNS refresh",
      [&frac](const NameAnalysis& n) { return frac(n.nbns_refresh, n.nbns_requests); });
  row("NBNS wkst+server names", [&frac](const NameAnalysis& n) {
    return frac(n.nbns_type_workstation_server, n.nbns_requests);
  });
  row("NBNS domain/browser names",
      [&frac](const NameAnalysis& n) { return frac(n.nbns_type_domain, n.nbns_requests); });
  row("NBNS failure rate (distinct ops)",
      [](const NameAnalysis& n) { return pct(n.nbns_failure_rate()); });
  row("NBNS top-10 client share",
      [](const NameAnalysis& n) { return pct(n.nbns_top10_client_share); });
  return t.render();
}

namespace {

std::vector<WindowsAnalysis> windows_for(Inputs in) {
  std::vector<WindowsAnalysis> v;
  for (const auto& i : in) {
    v.push_back(
        WindowsAnalysis::compute(i.analysis->events, i.analysis->connections, i.analysis->site));
  }
  return v;
}

}  // namespace

std::string table9_windows_success(Inputs in) {
  TextTable t("Table 9: Windows connection outcomes by host pairs (internal traffic)");
  t.set_header(names_row(in, ""));
  auto ws = windows_for(in);
  auto row = [&t, &ws](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& w : ws) r.push_back(getter(w));
    t.add_row(std::move(r));
  };
  auto outcome = [](const HostPairOutcomes& o) {
    return std::to_string(o.pairs) + " pairs: " + format_pct(o.success_rate()) + " ok, " +
           format_pct(o.rejected_rate()) + " rej, " + format_pct(o.unanswered_rate()) + " unans";
  };
  row("Netbios/SSN (139)",
      [&outcome](const WindowsAnalysis& w) { return outcome(w.nbss_conns); });
  row("CIFS (445)", [&outcome](const WindowsAnalysis& w) { return outcome(w.cifs_conns); });
  row("Endpoint Mapper (135)",
      [&outcome](const WindowsAnalysis& w) { return outcome(w.epm_conns); });
  row("NBSS handshake ok",
      [](const WindowsAnalysis& w) { return format_pct(w.nbss_handshake_rate()); });
  return t.render();
}

std::string table10_cifs_commands(Inputs in) {
  TextTable t("Table 10: CIFS command breakdown (requests% / bytes%)");
  t.set_header(names_row(in, ""));
  auto ws = windows_for(in);
  {
    std::vector<std::string> r{"Total (reqs/bytes)"};
    for (const auto& w : ws)
      r.push_back(std::to_string(w.cifs_total_requests) + " / " +
                  format_bytes(w.cifs_total_bytes));
    t.add_row(std::move(r));
  }
  for (std::size_t c = 0; c < 5; ++c) {
    std::vector<std::string> r{to_string(static_cast<CifsCategory>(c))};
    for (const auto& w : ws) {
      const auto& cell = w.cifs_categories[c];
      const double rf = w.cifs_total_requests ? static_cast<double>(cell.requests) /
                                                    static_cast<double>(w.cifs_total_requests)
                                              : 0;
      const double bf = w.cifs_total_bytes ? static_cast<double>(cell.bytes) /
                                                 static_cast<double>(w.cifs_total_bytes)
                                           : 0;
      r.push_back(pct(rf) + " / " + pct(bf));
    }
    t.add_row(std::move(r));
  }
  return t.render();
}

std::string table11_dcerpc_functions(Inputs in) {
  TextTable t("Table 11: DCE/RPC function breakdown (requests% / bytes%)");
  t.set_header(names_row(in, ""));
  auto ws = windows_for(in);
  {
    std::vector<std::string> r{"Total (reqs/bytes)"};
    for (const auto& w : ws)
      r.push_back(std::to_string(w.rpc_total_requests) + " / " +
                  format_bytes(w.rpc_total_bytes));
    t.add_row(std::move(r));
  }
  auto row = [&t, &ws](const std::string& label, auto member) {
    std::vector<std::string> r{label};
    for (const auto& w : ws) {
      const WindowsAnalysis::RpcRow& cell = w.*member;
      const double rf = w.rpc_total_requests ? static_cast<double>(cell.requests) /
                                                   static_cast<double>(w.rpc_total_requests)
                                             : 0;
      const double bf = w.rpc_total_bytes ? static_cast<double>(cell.bytes) /
                                                static_cast<double>(w.rpc_total_bytes)
                                          : 0;
      r.push_back(pct(rf) + " / " + pct(bf));
    }
    t.add_row(std::move(r));
  };
  row("NetLogon", &WindowsAnalysis::rpc_netlogon);
  row("LsaRPC", &WindowsAnalysis::rpc_lsarpc);
  row("Spoolss/WritePrinter", &WindowsAnalysis::rpc_spoolss_write);
  row("Spoolss/other", &WindowsAnalysis::rpc_spoolss_other);
  row("Other", &WindowsAnalysis::rpc_other);
  {
    std::vector<std::string> r{"over pipes / standalone"};
    for (const auto& w : ws)
      r.push_back(std::to_string(w.rpc_over_pipe) + " / " + std::to_string(w.rpc_standalone));
    t.add_row(std::move(r));
  }
  return t.render();
}

namespace {

std::vector<NetFileAnalysis> netfile_for(Inputs in) {
  std::vector<NetFileAnalysis> v;
  for (const auto& i : in) {
    v.push_back(
        NetFileAnalysis::compute(i.analysis->events, i.analysis->connections, i.analysis->site));
  }
  return v;
}

}  // namespace

std::string table12_netfile_sizes(Inputs in) {
  TextTable t("Table 12: NFS/NCP connections and bytes");
  t.set_header(names_row(in, ""));
  auto nf = netfile_for(in);
  auto row = [&t, &nf](const std::string& label, auto getter) {
    std::vector<std::string> r{label};
    for (const auto& n : nf) r.push_back(getter(n));
    t.add_row(std::move(r));
  };
  row("NFS conns", [](const NetFileAnalysis& n) { return std::to_string(n.nfs_conns); });
  row("NFS bytes", [](const NetFileAnalysis& n) { return format_bytes(n.nfs_bytes); });
  row("NCP conns", [](const NetFileAnalysis& n) { return std::to_string(n.ncp_conns); });
  row("NCP bytes", [](const NetFileAnalysis& n) { return format_bytes(n.ncp_bytes); });
  t.add_rule();
  row("NFS top-3 pair byte share",
      [](const NetFileAnalysis& n) { return pct(n.nfs_top3_pair_byte_share); });
  row("NCP top-3 pair byte share",
      [](const NetFileAnalysis& n) { return pct(n.ncp_top3_pair_byte_share); });
  row("NCP keepalive-only conns",
      [](const NetFileAnalysis& n) { return pct(n.ncp_keepalive_only_fraction()); });
  row("NFS UDP byte share", [](const NetFileAnalysis& n) {
    const std::uint64_t total = n.nfs_udp_bytes + n.nfs_tcp_bytes;
    return total ? pct(static_cast<double>(n.nfs_udp_bytes) / static_cast<double>(total))
                 : std::string("-");
  });
  row("NFS UDP/TCP pairs", [](const NetFileAnalysis& n) {
    return std::to_string(n.nfs_udp_pairs) + " / " + std::to_string(n.nfs_tcp_pairs);
  });
  return t.render();
}

namespace {

std::string req_data_cell(const NetFileAnalysis::Row& row, std::uint64_t total_reqs,
                          std::uint64_t total_data) {
  const double rf =
      total_reqs ? static_cast<double>(row.requests) / static_cast<double>(total_reqs) : 0;
  const double bf =
      total_data ? static_cast<double>(row.bytes) / static_cast<double>(total_data) : 0;
  return format_pct(rf) + " / " + format_pct(bf);
}

}  // namespace

std::string table13_nfs_requests(Inputs in) {
  TextTable t("Table 13: NFS request breakdown (requests% / data%)");
  t.set_header(names_row(in, ""));
  auto nf = netfile_for(in);
  {
    std::vector<std::string> r{"Total (reqs/data)"};
    for (const auto& n : nf)
      r.push_back(std::to_string(n.nfs_total_requests) + " / " + format_bytes(n.nfs_total_data));
    t.add_row(std::move(r));
  }
  auto row = [&t, &nf](const std::string& label, auto member) {
    std::vector<std::string> r{label};
    for (const auto& n : nf)
      r.push_back(req_data_cell(n.*member, n.nfs_total_requests, n.nfs_total_data));
    t.add_row(std::move(r));
  };
  row("Read", &NetFileAnalysis::nfs_read);
  row("Write", &NetFileAnalysis::nfs_write);
  row("GetAttr", &NetFileAnalysis::nfs_getattr);
  row("LookUp", &NetFileAnalysis::nfs_lookup);
  row("Access", &NetFileAnalysis::nfs_access);
  row("Other", &NetFileAnalysis::nfs_other);
  {
    std::vector<std::string> r{"request success"};
    for (const auto& n : nf)
      r.push_back(n.nfs_replies ? pct(static_cast<double>(n.nfs_ok) /
                                      static_cast<double>(n.nfs_replies))
                                : std::string("-"));
    t.add_row(std::move(r));
  }
  return t.render();
}

std::string table14_ncp_requests(Inputs in) {
  TextTable t("Table 14: NCP request breakdown (requests% / data%)");
  t.set_header(names_row(in, ""));
  auto nf = netfile_for(in);
  {
    std::vector<std::string> r{"Total (reqs/data)"};
    for (const auto& n : nf)
      r.push_back(std::to_string(n.ncp_total_requests) + " / " + format_bytes(n.ncp_total_data));
    t.add_row(std::move(r));
  }
  for (std::size_t f = 0; f < 8; ++f) {
    std::vector<std::string> r{to_string(static_cast<NcpFunction>(f))};
    for (const auto& n : nf)
      r.push_back(req_data_cell(n.ncp_rows[f], n.ncp_total_requests, n.ncp_total_data));
    t.add_row(std::move(r));
  }
  {
    std::vector<std::string> r{"request success"};
    for (const auto& n : nf)
      r.push_back(n.ncp_replies ? pct(static_cast<double>(n.ncp_ok) /
                                      static_cast<double>(n.ncp_replies))
                                : std::string("-"));
    t.add_row(std::move(r));
  }
  return t.render();
}

std::string figure7_requests_per_pair(Inputs in) {
  auto nf = netfile_for(in);
  std::string out;
  {
    CdfPlot plot("Figure 7(a): NFS requests per host pair", "requests", true);
    for (std::size_t i = 0; i < in.size(); ++i)
      plot.add_series("ent:" + in[i].analysis->name, nf[i].nfs_reqs_per_pair);
    out += plot.render();
  }
  {
    CdfPlot plot("Figure 7(b): NCP requests per host pair", "requests", true);
    for (std::size_t i = 0; i < in.size(); ++i)
      plot.add_series("ent:" + in[i].analysis->name, nf[i].ncp_reqs_per_pair);
    out += plot.render();
  }
  return out;
}

std::string figure8_netfile_message_sizes(Inputs in) {
  auto nf = netfile_for(in);
  std::string out;
  {
    CdfPlot plot("Figure 8(a): NFS request sizes (bytes)", "bytes", true);
    for (std::size_t i = 0; i < in.size(); ++i)
      plot.add_series(in[i].analysis->name, nf[i].nfs_req_sizes);
    out += plot.render();
  }
  {
    CdfPlot plot("Figure 8(b): NFS reply sizes (bytes)", "bytes", true);
    for (std::size_t i = 0; i < in.size(); ++i)
      plot.add_series(in[i].analysis->name, nf[i].nfs_reply_sizes);
    out += plot.render();
  }
  {
    CdfPlot plot("Figure 8(c): NCP request sizes (bytes)", "bytes", true);
    for (std::size_t i = 0; i < in.size(); ++i)
      plot.add_series(in[i].analysis->name, nf[i].ncp_req_sizes);
    out += plot.render();
  }
  {
    CdfPlot plot("Figure 8(d): NCP reply sizes (bytes)", "bytes", true);
    for (std::size_t i = 0; i < in.size(); ++i)
      plot.add_series(in[i].analysis->name, nf[i].ncp_reply_sizes);
    out += plot.render();
  }
  return out;
}

std::string table15_backup(Inputs in) {
  TextTable t("Table 15: Backup applications (aggregated across datasets)");
  t.set_header({"", "Connections", "Bytes", "c->s share", "bidir conns (>1MB both ways)"});
  // Aggregate across all inputs, as the paper's Table 15 does.
  BackupAnalysis agg;
  for (const auto& i : in) {
    BackupAnalysis b = BackupAnalysis::compute(i.analysis->connections, i.analysis->site);
    auto merge = [](BackupAnalysis::AppRow& into, const BackupAnalysis::AppRow& from) {
      into.conns += from.conns;
      into.bytes += from.bytes;
      into.client_to_server_bytes += from.client_to_server_bytes;
      into.server_to_client_bytes += from.server_to_client_bytes;
      into.bidirectional_conns += from.bidirectional_conns;
    };
    merge(agg.veritas_ctrl, b.veritas_ctrl);
    merge(agg.veritas_data, b.veritas_data);
    merge(agg.dantz, b.dantz);
    merge(agg.connected, b.connected);
  }
  auto row = [&t](const std::string& label, const BackupAnalysis::AppRow& r) {
    t.add_row({label, std::to_string(r.conns), format_bytes(r.bytes), pct(r.c2s_fraction()),
               std::to_string(r.bidirectional_conns)});
  };
  row("VERITAS-BACKUP-CTRL", agg.veritas_ctrl);
  row("VERITAS-BACKUP-DATA", agg.veritas_data);
  row("DANTZ", agg.dantz);
  row("CONNECTED-BACKUP", agg.connected);
  return t.render();
}

std::string figure9_utilization(const ReportInput& in) {
  LoadAnalysis load = LoadAnalysis::compute(in.analysis->load_raw);
  std::string out;
  {
    CdfPlot plot("Figure 9(a): peak utilization per trace, " + in.analysis->name + " (Mbps)",
                 "Mbps", true);
    plot.add_series("1 second", load.peak_1s);
    plot.add_series("10 seconds", load.peak_10s);
    plot.add_series("60 seconds", load.peak_60s);
    out += plot.render();
  }
  {
    CdfPlot plot("Figure 9(b): 1-second utilization statistics per trace (Mbps)", "Mbps", true);
    plot.add_series("Minimum", load.min_1s);
    plot.add_series("Maximum", load.max_1s);
    plot.add_series("Average", load.avg_1s);
    plot.add_series("25th perc.", load.p25_1s);
    plot.add_series("Median", load.median_1s);
    plot.add_series("75th perc.", load.p75_1s);
    out += plot.render();
  }
  return out;
}

std::string figure10_retransmissions(Inputs in) {
  std::string out;
  TextTable t("Figure 10: TCP retransmission rates across traces (keepalives excluded)");
  t.set_header({"dataset", "traces", "ent median", "ent p90", "ent max", "wan median",
                "wan p90", "wan max", "ent traces >1%", "keepalive retx excluded"});
  for (const auto& i : in) {
    LoadAnalysis load = LoadAnalysis::compute(i.analysis->load_raw);
    std::uint64_t over_1pct = 0;
    for (double r : load.retx_ent_by_trace)
      if (r > 0.01) ++over_1pct;
    t.add_row({i.analysis->name, std::to_string(i.analysis->load_raw.size()),
               pct(load.retx_ent.median()), pct(load.retx_ent.quantile(0.9)),
               pct(load.retx_ent.max()), pct(load.retx_wan.median()),
               pct(load.retx_wan.quantile(0.9)), pct(load.retx_wan.max()),
               std::to_string(over_1pct), std::to_string(load.keepalives_excluded)});
  }
  out += t.render();
  return out;
}

std::string telemetry(Inputs in) {
  std::string out;
  for (const auto& i : in) {
    if (i.analysis->metrics.empty()) continue;
    if (!out.empty()) out += "\n";
    out += obs::render_table(i.analysis->metrics,
                             "Pipeline telemetry (semantic metrics): " + i.analysis->name,
                             /*include_timing=*/false);
  }
  return out;
}

std::string full_report(Inputs in) {
  std::vector<ReportInput> payload;
  for (const auto& i : in)
    if (has_payload(i)) payload.push_back(i);
  const Inputs pay(payload);

  std::string out;
  out += table1_datasets(in);
  out += "\n" + capture_quality(in);
  out += "\n" + table2_network_layer(in);
  out += "\n" + table3_transport(in);
  out += "\n" + figure1_app_breakdown(in);
  out += "\n" + origins_summary(in);
  for (const auto& i : in) out += "\n" + figure2_fan(i);
  out += "\n" + table6_http_automation(pay);
  out += "\n" + http_findings(pay);
  out += "\n" + figure3_http_fanout(pay);
  out += "\n" + table7_http_content_types(pay);
  out += "\n" + figure4_http_reply_sizes(pay);
  out += "\n" + table8_email_sizes(in);
  out += "\n" + figure5_email_durations(in);
  out += "\n" + figure6_email_sizes(in);
  out += "\n" + name_service_findings(pay);
  out += "\n" + table9_windows_success(pay);
  out += "\n" + table10_cifs_commands(pay);
  out += "\n" + table11_dcerpc_functions(pay);
  out += "\n" + table12_netfile_sizes(in);
  out += "\n" + table13_nfs_requests(pay);
  out += "\n" + table14_ncp_requests(pay);
  out += "\n" + figure7_requests_per_pair(pay);
  out += "\n" + figure8_netfile_message_sizes(pay);
  out += "\n" + table15_backup(in);
  for (const auto& i : in) out += "\n" + figure9_utilization(i);
  out += "\n" + figure10_retransmissions(in);
  const std::string tele = telemetry(in);
  if (!tele.empty()) out += "\n" + tele;
  return out;
}

}  // namespace entrace::report
