#include "core/incremental.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "net/decoder.h"
#include "obs/stage_timer.h"

namespace entrace {

void record_trace_metrics(const TraceTotals& totals, obs::Registry& reg) {
  using obs::MetricClass;

  const SourceStats& src = totals.source;
  reg.counter("source.packets", MetricClass::kSemantic, "packets pulled from trace sources")
      ->add(src.packets);
  reg.counter("source.captured_bytes", MetricClass::kSemantic, "captured bytes after snaplen")
      ->add(src.captured_bytes);
  reg.counter("source.wire_bytes", MetricClass::kSemantic, "original on-the-wire bytes")
      ->add(src.wire_bytes);

  const CaptureQuality& q = totals.quality;
  reg.counter("decode.packets_seen", MetricClass::kSemantic, "packets entering decode")
      ->add(q.packets_seen);
  reg.counter("decode.packets_ok", MetricClass::kSemantic, "packets surviving decode+checksums")
      ->add(q.packets_ok);
  reg.counter("decode.packets_dropped", MetricClass::kSemantic, "packets excluded from analysis")
      ->add(q.packets_dropped);
  for (const auto& [kind, n] : q.anomalies.as_map()) {
    reg.counter("decode.anomaly." + kind, MetricClass::kSemantic, "anomaly occurrences")->add(n);
  }

  const FlowStats& f = totals.flow;
  reg.counter("flow.packets", MetricClass::kSemantic, "packets processed by the flow table")
      ->add(totals.flow_packets);
  reg.counter("flow.conns_opened", MetricClass::kSemantic, "connections opened")
      ->add(f.conns_opened);
  reg.counter("flow.conns_closed", MetricClass::kSemantic, "connections closed")
      ->add(f.conns_closed);
  reg.counter("flow.tcp_retransmissions", MetricClass::kSemantic, "TCP retransmitted segments")
      ->add(f.tcp_retransmissions);
  reg.counter("flow.keepalive_retx", MetricClass::kSemantic, "1-byte keepalive retransmissions")
      ->add(f.keepalive_retx);
  reg.counter("flow.tcp_tuple_reuse", MetricClass::kSemantic,
              "live 5-tuples reused by a new-ISN SYN")
      ->add(f.tcp_tuple_reuse);
  reg.counter("flow.idle_splits", MetricClass::kSemantic, "UDP/ICMP flows split on idle timeout")
      ->add(f.idle_splits);
  reg.counter("flow.drained", MetricClass::kSemantic,
              "still-open flows classified by the end-of-stream drain")
      ->add(f.drained);
  reg.counter("flow.evicted", MetricClass::kSemantic, "live flows closed by evict_idle sweeps")
      ->add(f.evicted);

  static constexpr const char* kEventNames[10] = {
      "app.events.http", "app.events.smtp", "app.events.dns",    "app.events.nbns",
      "app.events.nbss", "app.events.cifs", "app.events.dcerpc", "app.events.epm",
      "app.events.nfs",  "app.events.ncp"};
  static constexpr const char* kEventHelp[10] = {
      "HTTP transactions", "SMTP commands", "DNS transactions", "NBNS transactions",
      "NBSS events",       "CIFS commands", "DCE/RPC calls",    "EPM mappings",
      "NFS calls",         "NCP calls"};
  for (std::size_t i = 0; i < 10; ++i) {
    reg.counter(kEventNames[i], MetricClass::kSemantic, kEventHelp[i])->add(totals.events[i]);
  }
  reg.counter("app.events.total", MetricClass::kSemantic, "application events, all protocols")
      ->add(totals.events_total);
}

namespace {

std::array<std::uint64_t, 10> event_sizes(const AppEvents& ev) {
  return {ev.http.size(), ev.smtp.size(),   ev.dns.size(), ev.nbns.size(), ev.nbss.size(),
          ev.cifs.size(), ev.dcerpc.size(), ev.epm.size(), ev.nfs.size(),  ev.ncp.size()};
}

}  // namespace

// ---- TraceStream ------------------------------------------------------------

TraceStream::TraceStream(const TraceMeta& meta, const AnalyzerConfig& config)
    : config_(config),
      meta_(meta),
      collect_(config.collect_metrics),
      dispatcher_(registry_, events_, config.payload_analysis.value_or(meta.snaplen >= 200),
                  &quality_.anomalies),
      table_(std::make_unique<FlowTable>(config.flow, &dispatcher_)),
      detector_(config.scanner) {
  load_.trace_name = meta_.name;
  reset_window_metrics();
}

TraceStream::~TraceStream() = default;

void TraceStream::reset_window_metrics() {
  metrics_ = obs::Registry();
  pkt_bytes_ = collect_ ? metrics_.histogram("source.packet_bytes", obs::MetricClass::kSemantic,
                                             {64, 128, 256, 512, 1024, 1514, 4096, 16384},
                                             "wire length of analyzed packets")
                        : nullptr;
}

void TraceStream::tally_one(const DecodedPacket& d) {
  // Headline tallies count analyzed packets only (see the accounting
  // rule in analyzer.h): total_packets == packets_ok == l3.total.
  ++quality_.packets_ok;
  ++win_packets_;
  win_wire_bytes_ += d.wire_len;
  if (pkt_bytes_ != nullptr) pkt_bytes_->observe(static_cast<double>(d.wire_len));
  l3_.add(d.l3);
  load_.add_packet(d.ts, d.wire_len);
  if (d.l3 != L3Kind::kIpv4) return;
  ++ip_proto_[d.ip_proto];
  if (!pair_cache_.test_and_set(d.src.value(), d.dst.value())) {
    detector_.observe(d.src, d.dst);
  }
  for (const Ipv4Address addr : {d.src, d.dst}) {
    if (addr.is_multicast() || addr.is_broadcast()) continue;
    if (host_cache_.test_and_set(addr.value())) continue;
    if (config_.site.is_internal(addr)) {
      lbnl_hosts_.insert(addr.value());
      if (config_.site.subnet_of(addr) == meta_.subnet_id) {
        monitored_hosts_.insert(addr.value());
      }
    } else {
      remote_hosts_.insert(addr.value());
    }
  }
}

void TraceStream::flow_one(const DecodedPacket& d, std::uint64_t key_lo, std::uint64_t key_hi,
                           bool keyed) {
  if (d.l3 != L3Kind::kIpv4) return;
  const PacketVerdict verdict = keyed ? table_->process(d, key_lo, key_hi) : table_->process(d);
  if (verdict.conn != nullptr && d.is_tcp()) {
    const bool wan = !config_.site.is_internal(verdict.conn->key.src) ||
                     !config_.site.is_internal(verdict.conn->key.dst);
    if (verdict.keepalive_retx) {
      // §6 excludes 1-byte keepalive retransmissions from the loss proxy.
      ++load_.keepalive_excluded;
    } else {
      auto& pkts = wan ? load_.wan_tcp_pkts : load_.ent_tcp_pkts;
      auto& retx = wan ? load_.wan_retx : load_.ent_retx;
      ++pkts;
      if (verdict.tcp_retransmission) ++retx;
    }
  }
}

void TraceStream::feed_packet(const RawPacket& pkt) {
  ++totals_.source.packets;
  totals_.source.captured_bytes += pkt.data.size();
  totals_.source.wire_bytes += pkt.wire_len;
  if (pkt.ts > last_ts_) last_ts_ = pkt.ts;
  ++quality_.packets_seen;
  const auto decoded = decode_packet(pkt, &quality_.anomalies);
  if (!decoded || decoded->checksum_bad()) {
    // Either nothing to attribute (not even an Ethernet header) or the
    // header bytes are demonstrably corrupt: addresses/ports can't be
    // trusted, so the packet is excluded from all traffic accounting
    // (Bro's checksum handling on the paper's traces behaves the same).
    ++quality_.packets_dropped;
    return;
  }
  tally_one(*decoded);
  flow_one(*decoded, 0, 0, false);
}

void TraceStream::feed(const PacketView* views, std::size_t n) {
  if (n == 0) return;
  if (decoded_.size() < n) {
    decoded_.resize(n);
    key_lo_.resize(n);
    key_hi_.resize(n);
    ok_.resize(n);
    keyed_.resize(n);
  }
  using clock = std::chrono::steady_clock;
  const bool timed = collect_;
  auto last = timed ? clock::now() : clock::time_point{};
  auto lap = [&](double& acc) {
    if (!timed) return;
    const auto now = clock::now();
    acc += std::chrono::duration<double>(now - last).count();
    last = now;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const PacketView& v = views[i];
    ++totals_.source.packets;
    totals_.source.captured_bytes += v.data.size();
    totals_.source.wire_bytes += v.wire_len;
    ++quality_.packets_seen;
    const bool good =
        decode_packet_into(v.data, v.ts, v.wire_len, decoded_[i], &quality_.anomalies) &&
        !decoded_[i].checksum_bad();
    ok_[i] = good ? 1 : 0;
    keyed_[i] = 0;
    if (!good) {
      ++quality_.packets_dropped;
      continue;
    }
    const DecodedPacket& d = decoded_[i];
    if (d.l3 == L3Kind::kIpv4 && d.l4_ok && (d.is_tcp() || d.is_udp() || d.is_icmp())) {
      const FiveTuple key = flow_tuple_of(d).canonical();
      key_lo_[i] = key.packed_lo();
      key_hi_[i] = key.packed_hi();
      keyed_[i] = 1;
    }
  }
  if (views[n - 1].ts > last_ts_) last_ts_ = views[n - 1].ts;
  used_batch_ = true;
  lap(decode_s_);
  for (std::size_t i = 0; i < n; ++i) {
    if (ok_[i]) tally_one(decoded_[i]);
  }
  lap(tally_s_);
  for (std::size_t i = 0; i < n; ++i) {
    if (ok_[i]) flow_one(decoded_[i], key_lo_[i], key_hi_[i], keyed_[i] != 0);
  }
  lap(flow_s_);
}

void TraceStream::accumulate_window_totals() {
  totals_.quality.merge(quality_);
  const std::array<std::uint64_t, 10> sizes = event_sizes(events_);
  for (std::size_t i = 0; i < sizes.size(); ++i) totals_.events[i] += sizes[i];
  totals_.events_total += events_.total();
}

TraceShard TraceStream::rotate() {
  accumulate_window_totals();

  TraceShard shard(config_.scanner);
  shard.subnet_id = meta_.subnet_id;
  shard.total_packets = win_packets_;
  shard.total_wire_bytes = win_wire_bytes_;
  win_packets_ = 0;
  win_wire_bytes_ = 0;
  shard.l3 = l3_;
  l3_ = NetworkLayerBreakdown{};
  shard.ip_proto_packets = ip_proto_;
  ip_proto_ = IpProtoCounts{};
  shard.monitored_hosts = std::move(monitored_hosts_);
  monitored_hosts_.clear();
  shard.lbnl_hosts = std::move(lbnl_hosts_);
  lbnl_hosts_.clear();
  shard.remote_hosts = std::move(remote_hosts_);
  remote_hosts_.clear();
  shard.detector = std::move(detector_);
  detector_ = ScannerDetector(config_.scanner);
  // Full dynamic-endpoint export each window: merge_dynamic_endpoints is an
  // idempotent map union, so re-exporting already-known endpoints is exact.
  shard.registry = registry_;
  shard.quality = quality_;
  quality_ = CaptureQuality{};  // contents reset; address stable for the dispatcher
  shard.load = std::move(load_);
  load_ = TraceLoadRaw{};
  load_.trace_name = meta_.name;
  shard.load.trace_name = meta_.name;
  shard.metrics = std::move(metrics_);
  reset_window_metrics();

  // Connections touched this window, copied in open_seq order.  Copies get
  // parser_slot cleared: it is transient dispatcher state that must not
  // leak into snapshots.
  const std::vector<std::uint32_t> dirty = table_->take_dirty();
  shard.table = std::make_unique<FlowTable>(config_.flow);
  std::deque<Connection>& out_conns = shard.table->connections();
  std::unordered_map<const Connection*, const Connection*> remap;
  remap.reserve(dirty.size());
  const std::deque<Connection>& live = table_->connections();
  for (std::uint32_t i : dirty) {
    out_conns.push_back(live[i]);
    out_conns.back().parser_slot = Connection::kNoParser;
    remap.emplace(&live[i], &out_conns.back());
  }

  // Events emitted this window necessarily reference connections touched
  // this window (a parser only fires on on_data/on_close), so the remap is
  // total; a miss means the dirty-tracking invariant broke — fail loudly.
  AppEvents win_events;
  win_events.http = std::move(events_.http);
  win_events.smtp = std::move(events_.smtp);
  win_events.dns = std::move(events_.dns);
  win_events.nbns = std::move(events_.nbns);
  win_events.nbss = std::move(events_.nbss);
  win_events.cifs = std::move(events_.cifs);
  win_events.dcerpc = std::move(events_.dcerpc);
  win_events.epm = std::move(events_.epm);
  win_events.nfs = std::move(events_.nfs);
  win_events.ncp = std::move(events_.ncp);
  events_ = AppEvents{};  // vectors stay the same members; ensure they are empty+valid
  remap_event_connections(win_events, [&](const Connection* c) {
    const auto it = remap.find(c);
    if (it == remap.end())
      throw std::logic_error("window event references a connection not touched this window");
    return it->second;
  });
  shard.events = std::move(win_events);
  dispatcher_.on_events_rotated();
  return shard;
}

TraceShard TraceStream::finish_window(const AnomalyCounts* source_anomalies) {
  table_->drain_all();
  const FlowStats& fs = table_->stats();
  // TCP 5-tuple reuse is a capture-accounting fact (informational flag on
  // ok packets), recorded whether or not telemetry is on.  The cumulative
  // count lands in the final window's delta, exactly like the batch path
  // records it once at end of stream.
  if (fs.tcp_tuple_reuse != 0) {
    quality_.anomalies.add(AnomalyKind::kTcpTupleReuse, fs.tcp_tuple_reuse);
  }
  if (source_anomalies != nullptr) quality_.anomalies.merge(*source_anomalies);
  TraceShard shard = rotate();
  totals_.flow = fs;
  totals_.flow_packets = table_->packets_processed();
  if (collect_) {
    record_trace_metrics(totals_, shard.metrics);
    record_stage_timing(shard.metrics, 0.0, 0);
  }
  return shard;
}

void TraceStream::finish_batch(PacketSource& source, TraceShard& shard, double source_seconds,
                               std::uint64_t source_batches) {
  table_->drain_all();
  const FlowStats fs = table_->stats();
  if (fs.tcp_tuple_reuse != 0) {
    quality_.anomalies.add(AnomalyKind::kTcpTupleReuse, fs.tcp_tuple_reuse);
  }
  // Source-layer anomalies (pcap record damage, salvaged truncations) are
  // complete once the stream is drained; fold them into the shard so the
  // dataset's anomaly accounting covers the file layer too.
  quality_.anomalies.merge(source.anomalies());

  shard.subnet_id = meta_.subnet_id;
  shard.total_packets = win_packets_;
  shard.total_wire_bytes = win_wire_bytes_;
  shard.l3 = l3_;
  shard.ip_proto_packets = ip_proto_;
  shard.monitored_hosts = std::move(monitored_hosts_);
  shard.lbnl_hosts = std::move(lbnl_hosts_);
  shard.remote_hosts = std::move(remote_hosts_);
  shard.detector = std::move(detector_);
  shard.registry = std::move(registry_);
  shard.events = std::move(events_);
  shard.quality = quality_;
  shard.load = std::move(load_);
  shard.metrics = std::move(metrics_);
  shard.table = std::move(table_);

  if (collect_) {
    TraceTotals t;
    t.source = source.stats();
    t.quality = shard.quality;
    t.flow = fs;
    t.flow_packets = shard.table->packets_processed();
    t.events = event_sizes(shard.events);
    t.events_total = shard.events.total();
    record_trace_metrics(t, shard.metrics);
    record_stage_timing(shard.metrics, source_seconds, source_batches);
  }
  // Dispatcher can be dropped; events and registry outlive it.
}

void TraceStream::record_stage_timing(obs::Registry& reg, double source_seconds,
                                      std::uint64_t source_batches) const {
  if (!used_batch_) return;
  const CaptureQuality& q = totals_.quality.packets_seen != 0 ? totals_.quality : quality_;
  if (source_batches != 0) obs::record_stage(&reg, "batch.source", source_seconds, source_batches);
  obs::record_stage(&reg, "batch.decode", decode_s_, q.packets_seen);
  obs::record_stage(&reg, "batch.tally", tally_s_, q.packets_ok);
  obs::record_stage(&reg, "batch.flow", flow_s_, q.packets_ok);
}

// ---- IncrementalAnalyzer ----------------------------------------------------

IncrementalAnalyzer::IncrementalAnalyzer(std::vector<TraceMeta> metas,
                                         const AnalyzerConfig& config,
                                         const IncrementalOptions& options)
    : config_(config),
      options_(options),
      pool_(std::min(config.threads != 0 ? config.threads : ThreadPool::env_thread_count(),
                     std::max<std::size_t>(metas.size(), 1))) {
  streams_.reserve(metas.size());
  for (const TraceMeta& m : metas) {
    auto stream = std::make_unique<TraceStream>(m, config_);
    if (options_.reclaim) stream->enable_reclaim();
    streams_.push_back(std::move(stream));
  }
  buffers_.resize(streams_.size());
}

IncrementalAnalyzer::~IncrementalAnalyzer() = default;

void IncrementalAnalyzer::feed(const PacketView* views, std::size_t n) {
  if (n == 0 || finished_) return;
  for (auto& b : buffers_) b.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const PacketView& v = views[i];
    const std::size_t s = v.source < streams_.size() ? v.source : 0;
    buffers_[s].push_back(v);
    if (v.ts > max_ts_) max_ts_ = v.ts;
  }
  if (!saw_packets_) {
    saw_packets_ = true;
    const double w = options_.window_seconds;
    window_start_ = std::floor(views[0].ts / w) * w;
    window_end_ = window_start_ + w;
  }
  dispatch_buffers();
}

void IncrementalAnalyzer::dispatch_buffers() {
  pool_.for_each_index(streams_.size(), [&](std::size_t i) {
    if (!buffers_[i].empty()) streams_[i]->feed(buffers_[i].data(), buffers_[i].size());
  });
}

WindowShard IncrementalAnalyzer::rotate() {
  WindowShard win;
  win.index = next_window_index_++;
  win.start_ts = window_start_;
  win.end_ts = window_end_;
  win.shards.resize(streams_.size());
  const double boundary = window_end_;
  pool_.for_each_index(streams_.size(), [&](std::size_t i) {
    if (options_.evict) streams_[i]->evict_idle(boundary);
    win.shards[i] = streams_[i]->rotate();
    if (options_.reclaim) streams_[i]->reclaim();
  });
  window_start_ = window_end_;
  window_end_ += options_.window_seconds;
  return win;
}

WindowShard IncrementalAnalyzer::finish(const MergedPacketStream* merged) {
  finished_ = true;
  WindowShard win;
  win.index = next_window_index_++;
  win.start_ts = window_start_;
  win.end_ts = max_ts_;
  win.shards.resize(streams_.size());
  pool_.for_each_index(streams_.size(), [&](std::size_t i) {
    const AnomalyCounts* anoms = nullptr;
    if (merged != nullptr && i < merged->source_count()) {
      anoms = &merged->source(i).anomalies();
    }
    win.shards[i] = streams_[i]->finish_window(anoms);
  });
  return win;
}

std::size_t IncrementalAnalyzer::live_entries() const {
  std::size_t total = 0;
  for (const auto& s : streams_) total += s->live_entries();
  return total;
}

std::uint64_t IncrementalAnalyzer::drained_total() const {
  std::uint64_t total = 0;
  for (const auto& s : streams_) total += s->flow_stats().drained;
  return total;
}

std::uint64_t IncrementalAnalyzer::evicted_total() const {
  std::uint64_t total = 0;
  for (const auto& s : streams_) total += s->flow_stats().evicted;
  return total;
}

}  // namespace entrace
