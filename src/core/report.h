// Rendering of every table and figure of the paper from DatasetAnalysis
// results.  Each function returns printable text; the bench binaries pair
// these with the paper's published values (see EXPERIMENTS.md).
#pragma once

#include <span>
#include <string>

#include "core/analyzer.h"
#include "synth/dataset_spec.h"

namespace entrace::report {

struct ReportInput {
  const DatasetSpec* spec = nullptr;  // may be null for external traces
  const DatasetAnalysis* analysis = nullptr;
};

using Inputs = std::span<const ReportInput>;

std::string table1_datasets(Inputs in);
// Measurement-artifact accounting per dataset: packets seen / decoded /
// dropped, plus the non-zero anomaly kinds (truncation, checksum failures,
// parse errors).  Not a paper table — real captures need it (§2 discusses
// the LBNL traces' own artifacts) and the fault-injection tests assert it.
std::string capture_quality(Inputs in);
std::string table2_network_layer(Inputs in);
std::string table3_transport(Inputs in);        // includes scanner-removal row
std::string figure1_app_breakdown(Inputs in);   // bytes + connections, ent/wan
std::string origins_summary(Inputs in);         // §4 flow origin classes
std::string figure2_fan(const ReportInput& in);
std::string table6_http_automation(Inputs in);
std::string http_findings(Inputs in);           // success rates, conditional GETs
std::string figure3_http_fanout(Inputs in);
std::string table7_http_content_types(Inputs in);
std::string figure4_http_reply_sizes(Inputs in);
std::string table8_email_sizes(Inputs in);
std::string figure5_email_durations(Inputs in);
std::string figure6_email_sizes(Inputs in);
std::string name_service_findings(Inputs in);   // §5.1.3
std::string table9_windows_success(Inputs in);
std::string table10_cifs_commands(Inputs in);
std::string table11_dcerpc_functions(Inputs in);
std::string table12_netfile_sizes(Inputs in);
std::string table13_nfs_requests(Inputs in);
std::string table14_ncp_requests(Inputs in);
std::string figure7_requests_per_pair(Inputs in);
std::string figure8_netfile_message_sizes(Inputs in);
std::string table15_backup(Inputs in);
std::string figure9_utilization(const ReportInput& in);
std::string figure10_retransmissions(Inputs in);
// Runtime telemetry: the pipeline's own semantic metrics per dataset
// (source/decode/flow/app/scanner counters).  Semantic-class only, so the
// table — like every other report section — is byte-identical across
// thread counts and shard partitions; timing metrics are exposed solely
// via --metrics-out (obs::render_json / render_prometheus).
std::string telemetry(Inputs in);

// Everything above, in paper order.
std::string full_report(Inputs in);

}  // namespace entrace::report
