// Windowed incremental analysis — the continuous-operation core.
//
// The batch pipeline (core/analyzer.h) analyzes a trace as one shot:
// open source, fused pass, fold.  This header refactors that pass into a
// resumable per-trace engine, TraceStream, that consumes packet batches
// continuously and can be harvested at any window boundary, plus a
// multi-trace front end, IncrementalAnalyzer, that demuxes a merged
// time-ordered stream (MergedPacketStream's view.source attribution) into
// per-trace streams and rotates completed windows.
//
// The contract that makes the daemon trustworthy: a windowed run's rotated
// window shards, merged back per trace (snapshot/window.h) and folded,
// produce a DatasetAnalysis byte-identical to the one-shot batch run over
// the same packets — at any thread count and any window length.  Each
// window shard is an ordinary TraceShard whose accumulators are
// window-fresh deltas:
//
//   - additive tallies (packet/byte counts, L3/proto breakdowns, interval
//     series, capture quality) sum across windows exactly (every summed
//     double is integer-valued);
//   - host sets and scanner first-contact observations union/merge
//     idempotently in window order, reproducing the serial observation
//     order;
//   - connections are carried as copies of exactly the connections touched
//     this window (FlowTable::take_dirty), ordered and keyed by
//     Connection::open_seq so cross-window upsert (last writer wins)
//     reassembles the exact batch connection order;
//   - application events reference the window's own connection copies, so
//     every window shard is self-contained for the unmodified snapshot
//     writer (format v3).
//
// Trace-total metrics (source.*, decode.*, flow.*, app.events.*) are
// recorded once, into the final window, from cumulative counters the
// stream maintains — folding all windows therefore yields the batch
// registry.
//
// analyze_trace() in core/analyzer.cc is now a thin wrapper: one
// TraceStream fed to exhaustion and finished in place (finish_batch moves
// state out without the windowed copy step), so batch and windowed runs
// share one engine and cannot drift.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/analyzer.h"
#include "pcap/packet_source.h"
#include "util/thread_pool.h"

namespace entrace {

namespace detail {

// Direct-mapped filter in front of the per-shard host std::sets.  Which set
// an address lands in is a pure function of the address (site config and
// subnet id are fixed per trace) and the sets dedup anyway, so suppressing
// repeats of recently seen addresses cannot change any result — it only
// skips the rb-tree walk that otherwise runs twice per IPv4 packet.
// Persisting the cache across window rotations is equally harmless: a
// suppressed repeat lands in some earlier window's set, and the sets union
// at fold.  Sentinel 0xFFFFFFFF is the broadcast address, which is filtered
// out before the cache is consulted.
class HostSeenCache {
 public:
  HostSeenCache() { slots_.fill(0xFFFFFFFFu); }

  // Returns true if addr was already in the cache (safe to skip).
  bool test_and_set(std::uint32_t addr) {
    std::uint32_t& slot = slots_[(addr * 0x9E3779B1u) >> (32 - kBits)];
    if (slot == addr) return true;
    slot = addr;
    return false;
  }

 private:
  static constexpr unsigned kBits = 10;
  std::array<std::uint32_t, 1u << kBits> slots_;
};

// Same idea for ScannerDetector::observe, which is idempotent per
// (src, dst) pair — a repeat insert into the per-source seen-set changes
// nothing — so suppressing recently seen pairs cannot alter the verdict
// (ScannerDetector::merge drops already-seen destinations the same way).
// Packet streams are bursty per connection, so a small direct-mapped cache
// absorbs most of the per-packet hash-map lookups.  A separate valid flag
// (not a sentinel key) keeps even degenerate pairs like broadcast->broadcast
// exact under fuzzed traces.
class PairSeenCache {
 public:
  PairSeenCache() { valid_.fill(0); }

  bool test_and_set(std::uint32_t src, std::uint32_t dst) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
    const std::size_t i =
        static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> (64 - kBits));
    if (valid_[i] != 0 && keys_[i] == key) return true;
    keys_[i] = key;
    valid_[i] = 1;
    return false;
  }

 private:
  static constexpr unsigned kBits = 12;
  std::array<std::uint64_t, 1u << kBits> keys_;
  std::array<std::uint8_t, 1u << kBits> valid_;
};

}  // namespace detail

// Cumulative per-trace totals for the end-of-stream metrics recording,
// maintained by TraceStream across rotations (the per-window shard
// registries carry only the per-packet histogram; the scalar trace totals
// are recorded once, into the final window).
struct TraceTotals {
  SourceStats source;
  CaptureQuality quality;
  FlowStats flow;
  std::uint64_t flow_packets = 0;
  // http, smtp, dns, nbns, nbss, cifs, dcerpc, epm, nfs, ncp
  std::array<std::uint64_t, 10> events{};
  std::uint64_t events_total = 0;
};

// Record the source.* / decode.* / flow.* / app.events.* semantic counters
// into `reg` — shared by the batch finish (totals == the single shard's own
// numbers) and the windowed finish (totals accumulated across windows).
void record_trace_metrics(const TraceTotals& totals, obs::Registry& reg);

// One trace's resumable analysis state: everything analyze_trace used to
// hold in locals, owned across feed() calls so the stream can be cut at
// window boundaries.  Single-threaded, like a per-trace analyzer job.
class TraceStream {
 public:
  TraceStream(const TraceMeta& meta, const AnalyzerConfig& config);
  ~TraceStream();
  TraceStream(const TraceStream&) = delete;
  TraceStream& operator=(const TraceStream&) = delete;

  // Batched hot path: decode -> tally -> flow staged loops over the views
  // (which must stay valid for the duration of the call only).
  void feed(const PacketView* views, std::size_t n);

  // Scalar reference path — one decode_packet per packet, kept verbatim
  // from the original analyze_trace as the equivalence oracle.
  void feed_packet(const RawPacket& pkt);

  // ---- windowed operation ---------------------------------------------------
  // Harvest the current window as a self-contained TraceShard delta and
  // start a fresh window.  See the header comment for why the deltas fold
  // back byte-identically.
  TraceShard rotate();

  // Time-driven flow expiry / slot recycling for endless streams (soak
  // mode; both change post-close attribution, so exact-equality runs leave
  // them off).  reclaim() must run after rotate() so every connection's
  // final state has been snapshotted.
  std::size_t evict_idle(double now) { return table_->evict_idle(now); }
  void enable_reclaim() { table_->enable_reclaim(); }
  std::size_t reclaim() { return table_->reclaim_closed(); }

  // End of stream, windowed: drain still-open flows (flow.drained), fold in
  // end-of-stream anomalies, harvest the final window, and record the
  // cumulative trace totals into it.  `source_anomalies` carries the
  // originating sub-source's file-layer anomalies when the caller can
  // attribute them (null otherwise).
  TraceShard finish_window(const AnomalyCounts* source_anomalies);

  // End of stream, batch: drain and move all state into `shard` without the
  // windowed copy step — byte-identical to the historical analyze_trace.
  // `source_seconds`/`source_batches` are the caller-timed ingest stage.
  void finish_batch(PacketSource& source, TraceShard& shard, double source_seconds,
                    std::uint64_t source_batches);

  double last_ts() const { return last_ts_; }
  std::uint64_t packets_seen() const { return totals_.quality.packets_seen + quality_.packets_seen; }
  std::size_t live_entries() const { return table_->live_entries(); }
  const FlowStats& flow_stats() const { return table_->stats(); }

 private:
  void tally_one(const DecodedPacket& d);
  void flow_one(const DecodedPacket& d, std::uint64_t key_lo, std::uint64_t key_hi, bool keyed);
  void reset_window_metrics();
  void accumulate_window_totals();
  void record_stage_timing(obs::Registry& reg, double source_seconds,
                           std::uint64_t source_batches) const;

  AnalyzerConfig config_;
  TraceMeta meta_;
  bool collect_;

  // Persistent across windows.  Declaration order matters: the dispatcher
  // holds references into registry_/events_/quality_.
  AppRegistry registry_;
  AppEvents events_;       // current window's events (vectors stable, contents move out)
  CaptureQuality quality_; // current window's delta (dispatcher points at .anomalies)
  ProtocolDispatcher dispatcher_;
  std::unique_ptr<FlowTable> table_;
  detail::HostSeenCache host_cache_;
  detail::PairSeenCache pair_cache_;
  TraceTotals totals_;     // cumulative (excludes the current window until rotate)
  double last_ts_ = 0.0;

  // Window-fresh accumulators.
  std::uint64_t win_packets_ = 0;
  std::uint64_t win_wire_bytes_ = 0;
  NetworkLayerBreakdown l3_;
  IpProtoCounts ip_proto_;
  std::set<std::uint32_t> monitored_hosts_;
  std::set<std::uint32_t> lbnl_hosts_;
  std::set<std::uint32_t> remote_hosts_;
  ScannerDetector detector_;
  TraceLoadRaw load_;
  obs::Registry metrics_;
  obs::Histogram* pkt_bytes_ = nullptr;

  // Batch-stage scratch, reused across feed() calls.
  std::vector<DecodedPacket> decoded_;
  std::vector<std::uint64_t> key_lo_, key_hi_;
  std::vector<std::uint8_t> ok_, keyed_;

  // Stage timing (timing class; recorded at finish).
  double decode_s_ = 0.0, tally_s_ = 0.0, flow_s_ = 0.0;
  bool used_batch_ = false;  // any feed() ran => record batch.* stages
};

// One completed window across every trace of the stream set.
struct WindowShard {
  std::uint64_t index = 0;
  double start_ts = 0.0;
  double end_ts = 0.0;
  std::vector<TraceShard> shards;  // one per trace, trace-index order
};

struct IncrementalOptions {
  double window_seconds = 60.0;
  // Time-driven flow eviction at each rotation (evict_idle at the window
  // boundary) and slot recycling after harvest.  Both bound daemon memory;
  // both are off for exact-equality replays.
  bool evict = false;
  bool reclaim = false;
};

// Multi-trace windowed engine: demuxes merged batches by view.source into
// one TraceStream per trace (dispatched on a thread pool, deterministic
// because each trace's packets stay in order and shards assemble by trace
// index) and harvests WindowShards at rotation.
class IncrementalAnalyzer {
 public:
  IncrementalAnalyzer(std::vector<TraceMeta> metas, const AnalyzerConfig& config,
                      const IncrementalOptions& options);
  ~IncrementalAnalyzer();

  // Feed one merged batch (views die at the caller's next next_batch).
  void feed(const PacketView* views, std::size_t n);

  // Stream time: the latest timestamp fed so far.
  double max_ts() const { return max_ts_; }
  // First boundary not yet rotated past; valid once a packet has been fed.
  double window_end() const { return window_end_; }
  bool saw_packets() const { return saw_packets_; }
  // True when the stream has moved past the current window's end boundary.
  bool window_complete() const { return saw_packets_ && max_ts_ >= window_end_; }

  // Harvest the current window from every trace and advance the boundary.
  WindowShard rotate();

  // Drain every stream and harvest the final (partial) window.  `merged`
  // lets per-trace source anomalies reach the right shard; may be null.
  WindowShard finish(const MergedPacketStream* merged);

  std::size_t trace_count() const { return streams_.size(); }
  std::uint64_t windows_rotated() const { return next_window_index_; }
  // Bounded-memory observability: live flow-table entries across traces.
  std::size_t live_entries() const;
  std::uint64_t drained_total() const;
  std::uint64_t evicted_total() const;

 private:
  void dispatch_buffers();

  AnalyzerConfig config_;
  IncrementalOptions options_;
  std::vector<std::unique_ptr<TraceStream>> streams_;
  std::vector<std::vector<PacketView>> buffers_;  // per-trace demux, reused
  ThreadPool pool_;
  double max_ts_ = 0.0;
  double window_start_ = 0.0;
  double window_end_ = 0.0;
  bool saw_packets_ = false;
  std::uint64_t next_window_index_ = 0;
  bool finished_ = false;
};

}  // namespace entrace
