#include "core/analyzer.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "net/decoder.h"
#include "obs/stage_timer.h"
#include "util/thread_pool.h"

namespace entrace {

namespace {

// End-of-trace semantic telemetry: copies the layer-local stat structs
// (SourceStats, CaptureQuality, FlowStats, AppEvents sizes) into the
// shard's registry.  Runs once per trace after the stream is drained —
// nothing here touches the per-packet hot loop.
void record_trace_metrics(const PacketSource& source, TraceShard& shard) {
  using obs::MetricClass;
  obs::Registry& reg = shard.metrics;

  const SourceStats& src = source.stats();
  reg.counter("source.packets", MetricClass::kSemantic, "packets pulled from trace sources")
      ->add(src.packets);
  reg.counter("source.captured_bytes", MetricClass::kSemantic, "captured bytes after snaplen")
      ->add(src.captured_bytes);
  reg.counter("source.wire_bytes", MetricClass::kSemantic, "original on-the-wire bytes")
      ->add(src.wire_bytes);

  const CaptureQuality& q = shard.quality;
  reg.counter("decode.packets_seen", MetricClass::kSemantic, "packets entering decode")
      ->add(q.packets_seen);
  reg.counter("decode.packets_ok", MetricClass::kSemantic, "packets surviving decode+checksums")
      ->add(q.packets_ok);
  reg.counter("decode.packets_dropped", MetricClass::kSemantic, "packets excluded from analysis")
      ->add(q.packets_dropped);
  for (const auto& [kind, n] : q.anomalies.as_map()) {
    reg.counter("decode.anomaly." + kind, MetricClass::kSemantic, "anomaly occurrences")->add(n);
  }

  const FlowStats& f = shard.table->stats();
  reg.counter("flow.packets", MetricClass::kSemantic, "packets processed by the flow table")
      ->add(shard.table->packets_processed());
  reg.counter("flow.conns_opened", MetricClass::kSemantic, "connections opened")
      ->add(f.conns_opened);
  reg.counter("flow.conns_closed", MetricClass::kSemantic, "connections closed")
      ->add(f.conns_closed);
  reg.counter("flow.tcp_retransmissions", MetricClass::kSemantic, "TCP retransmitted segments")
      ->add(f.tcp_retransmissions);
  reg.counter("flow.keepalive_retx", MetricClass::kSemantic, "1-byte keepalive retransmissions")
      ->add(f.keepalive_retx);
  reg.counter("flow.tcp_tuple_reuse", MetricClass::kSemantic,
              "live 5-tuples reused by a new-ISN SYN")
      ->add(f.tcp_tuple_reuse);
  reg.counter("flow.idle_splits", MetricClass::kSemantic, "UDP/ICMP flows split on idle timeout")
      ->add(f.idle_splits);

  const AppEvents& ev = shard.events;
  reg.counter("app.events.http", MetricClass::kSemantic, "HTTP transactions")->add(ev.http.size());
  reg.counter("app.events.smtp", MetricClass::kSemantic, "SMTP commands")->add(ev.smtp.size());
  reg.counter("app.events.dns", MetricClass::kSemantic, "DNS transactions")->add(ev.dns.size());
  reg.counter("app.events.nbns", MetricClass::kSemantic, "NBNS transactions")->add(ev.nbns.size());
  reg.counter("app.events.nbss", MetricClass::kSemantic, "NBSS events")->add(ev.nbss.size());
  reg.counter("app.events.cifs", MetricClass::kSemantic, "CIFS commands")->add(ev.cifs.size());
  reg.counter("app.events.dcerpc", MetricClass::kSemantic, "DCE/RPC calls")->add(ev.dcerpc.size());
  reg.counter("app.events.epm", MetricClass::kSemantic, "EPM mappings")->add(ev.epm.size());
  reg.counter("app.events.nfs", MetricClass::kSemantic, "NFS calls")->add(ev.nfs.size());
  reg.counter("app.events.ncp", MetricClass::kSemantic, "NCP calls")->add(ev.ncp.size());
  reg.counter("app.events.total", MetricClass::kSemantic, "application events, all protocols")
      ->add(ev.total());
}

// Thread-pool scheduling telemetry (timing class: queue depth and task
// latency depend on the thread count and the OS scheduler).
void record_pool_metrics(const ThreadPool& pool, obs::Registry& reg) {
  using obs::MetricClass;
  const ThreadPool::Stats ps = pool.stats();
  reg.gauge("pool.threads", MetricClass::kTiming, "worker threads executing trace jobs")
      ->set(static_cast<double>(pool.thread_count()));
  reg.counter("pool.tasks", MetricClass::kTiming, "trace jobs completed")->add(ps.tasks);
  reg.gauge("pool.max_queue_depth", MetricClass::kTiming, "high-water mark of queued jobs")
      ->set(static_cast<double>(ps.max_queue_depth));
  reg.gauge("pool.busy_seconds", MetricClass::kTiming, "summed job execution wall-clock")
      ->add(ps.busy_seconds);
  reg.gauge("pool.max_task_seconds", MetricClass::kTiming, "slowest single trace job")
      ->set(ps.max_task_seconds);
}

// Direct-mapped filter in front of the per-shard host std::sets.  Which set
// an address lands in is a pure function of the address (site config and
// subnet id are fixed per trace) and the sets dedup anyway, so suppressing
// repeats of recently seen addresses cannot change any result — it only
// skips the rb-tree walk that otherwise runs twice per IPv4 packet.
// Sentinel 0xFFFFFFFF is the broadcast address, which is filtered out
// before the cache is consulted.
class HostSeenCache {
 public:
  HostSeenCache() { slots_.fill(0xFFFFFFFFu); }

  // Returns true if addr was already in the cache (safe to skip).
  bool test_and_set(std::uint32_t addr) {
    std::uint32_t& slot = slots_[(addr * 0x9E3779B1u) >> (32 - kBits)];
    if (slot == addr) return true;
    slot = addr;
    return false;
  }

 private:
  static constexpr unsigned kBits = 10;
  std::array<std::uint32_t, 1u << kBits> slots_;
};

// Same idea for ScannerDetector::observe, which is idempotent per
// (src, dst) pair — a repeat insert into the per-source seen-set changes
// nothing — so suppressing recently seen pairs cannot alter the verdict.
// Packet streams are bursty per connection, so a small direct-mapped cache
// absorbs most of the per-packet hash-map lookups.  A separate valid flag
// (not a sentinel key) keeps even degenerate pairs like broadcast->broadcast
// exact under fuzzed traces.
class PairSeenCache {
 public:
  PairSeenCache() { valid_.fill(0); }

  bool test_and_set(std::uint32_t src, std::uint32_t dst) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | dst;
    const std::size_t i =
        static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> (64 - kBits));
    if (valid_[i] != 0 && keys_[i] == key) return true;
    keys_[i] = key;
    valid_[i] = 1;
    return false;
  }

 private:
  static constexpr unsigned kBits = 12;
  std::array<std::uint64_t, 1u << kBits> keys_;
  std::array<std::uint8_t, 1u << kBits> valid_;
};

}  // namespace

std::uint64_t DatasetAnalysis::payload_bytes() const {
  std::uint64_t total = 0;
  for (const Connection* c : connections) total += c->total_bytes();
  return total;
}

AnalyzerConfig default_config_for_model(const SiteConfig& site) {
  AnalyzerConfig config;
  config.site = site;
  return config;
}

// One fused streaming pass over a trace source: pull -> decode -> tallies
// -> scanner observation -> flow table -> protocol dispatch, with a single
// decode_packet call per packet and only the source's own buffer (one
// packet for files, one slice for synthetic regeneration, zero copies for
// in-memory traces) between disk and results.
void analyze_trace(PacketSource& source, const AnalyzerConfig& config, TraceShard& shard) {
  const TraceMeta& meta = source.meta();
  shard.subnet_id = meta.subnet_id;
  const bool payload = config.payload_analysis.value_or(meta.snaplen >= 200);
  ProtocolDispatcher dispatcher(shard.registry, shard.events, payload,
                                &shard.quality.anomalies);
  shard.table = std::make_unique<FlowTable>(config.flow, &dispatcher);
  shard.load.trace_name = meta.name;

  obs::Registry* reg = config.collect_metrics ? &shard.metrics : nullptr;
  obs::StageScope stage(reg, "trace");
  // The only metric touched inside the per-packet loop: one lower_bound
  // over 8 bounds plus two adds.  Registered once, incremented via the raw
  // handle; null when collection is off.
  obs::Histogram* pkt_bytes =
      reg == nullptr
          ? nullptr
          : reg->histogram("source.packet_bytes", obs::MetricClass::kSemantic,
                           {64, 128, 256, 512, 1024, 1514, 4096, 16384},
                           "wire length of analyzed packets");

  HostSeenCache host_cache;
  PairSeenCache pair_cache;

  // Per-packet work after decode, shared between the scalar reference loop
  // and the batched stage loops.  tally_one covers the accounting that is
  // additive and flow-independent; flow_one drives the flow table and the
  // retransmission load proxy.  The batch path runs tally over a whole
  // batch before flow touches it — legal because neither stage reads the
  // other's state, and flow_one preserves packet order within the batch.
  auto tally_one = [&](const DecodedPacket& d) {
    // Headline tallies count analyzed packets only (see the accounting
    // rule in analyzer.h): total_packets == packets_ok == l3.total.
    ++shard.quality.packets_ok;
    ++shard.total_packets;
    shard.total_wire_bytes += d.wire_len;
    if (pkt_bytes != nullptr) pkt_bytes->observe(static_cast<double>(d.wire_len));
    shard.l3.add(d.l3);
    shard.load.add_packet(d.ts, d.wire_len);
    if (d.l3 != L3Kind::kIpv4) return;
    ++shard.ip_proto_packets[d.ip_proto];
    if (!pair_cache.test_and_set(d.src.value(), d.dst.value())) {
      shard.detector.observe(d.src, d.dst);
    }
    for (const Ipv4Address addr : {d.src, d.dst}) {
      if (addr.is_multicast() || addr.is_broadcast()) continue;
      if (host_cache.test_and_set(addr.value())) continue;
      if (config.site.is_internal(addr)) {
        shard.lbnl_hosts.insert(addr.value());
        if (config.site.subnet_of(addr) == meta.subnet_id) {
          shard.monitored_hosts.insert(addr.value());
        }
      } else {
        shard.remote_hosts.insert(addr.value());
      }
    }
  };
  auto flow_one = [&](const DecodedPacket& d, std::uint64_t key_lo, std::uint64_t key_hi,
                      bool keyed) {
    if (d.l3 != L3Kind::kIpv4) return;
    const PacketVerdict verdict =
        keyed ? shard.table->process(d, key_lo, key_hi) : shard.table->process(d);
    if (verdict.conn != nullptr && d.is_tcp()) {
      const bool wan = !config.site.is_internal(verdict.conn->key.src) ||
                       !config.site.is_internal(verdict.conn->key.dst);
      if (verdict.keepalive_retx) {
        // §6 excludes 1-byte keepalive retransmissions from the loss proxy.
        ++shard.load.keepalive_excluded;
      } else {
        auto& pkts = wan ? shard.load.wan_tcp_pkts : shard.load.ent_tcp_pkts;
        auto& retx = wan ? shard.load.wan_retx : shard.load.ent_retx;
        ++pkts;
        if (verdict.tcp_retransmission) ++retx;
      }
    }
  };

  if (config.batch_size <= 1) {
    // Scalar reference loop: one virtual pull and one decode per packet.
    // Kept verbatim as the equivalence oracle for the batched path.
    while (const RawPacket* pulled = source.next()) {
      ++shard.quality.packets_seen;
      const auto decoded = decode_packet(*pulled, &shard.quality.anomalies);
      if (!decoded || decoded->checksum_bad()) {
        // Either nothing to attribute (not even an Ethernet header) or the
        // header bytes are demonstrably corrupt: addresses/ports can't be
        // trusted, so the packet is excluded from all traffic accounting
        // (Bro's checksum handling on the paper's traces behaves the same).
        ++shard.quality.packets_dropped;
        continue;
      }
      tally_one(*decoded);
      flow_one(*decoded, 0, 0, false);
    }
  } else {
    // Batched pipeline: one virtual next_batch call amortized over up to
    // batch_size packets, then staged loops (decode -> tally -> flow) over
    // parallel per-batch arrays.  The decode stage precomputes each
    // flow-eligible packet's packed canonical key so the flow stage probes
    // the open-addressing table without re-deriving tuples.  Views stay
    // valid until the next next_batch call, so payload spans inside
    // DecodedPacket are safe for the whole batch.
    const std::size_t batch = config.batch_size;
    std::vector<PacketView> views(batch);
    std::vector<DecodedPacket> decoded(batch);
    std::vector<std::uint64_t> key_lo(batch), key_hi(batch);
    std::vector<std::uint8_t> ok(batch), keyed(batch);
    using clock = std::chrono::steady_clock;
    const bool timed = reg != nullptr;
    double source_s = 0.0, decode_s = 0.0, tally_s = 0.0, flow_s = 0.0;
    std::uint64_t batches = 0;
    auto lap = [last = clock::time_point{}, timed](double& acc) mutable {
      if (!timed) return;
      const auto now = clock::now();
      if (last != clock::time_point{}) acc += std::chrono::duration<double>(now - last).count();
      last = now;
    };
    double warm = 0.0;  // first lap() only arms the timer
    for (;;) {
      lap(warm);
      const std::size_t got = source.next_batch(views.data(), batch);
      lap(source_s);
      if (got == 0) break;
      ++batches;
      for (std::size_t i = 0; i < got; ++i) {
        ++shard.quality.packets_seen;
        const bool good =
            decode_packet_into(views[i].data, views[i].ts, views[i].wire_len, decoded[i],
                               &shard.quality.anomalies) &&
            !decoded[i].checksum_bad();
        ok[i] = good ? 1 : 0;
        keyed[i] = 0;
        if (!good) {
          ++shard.quality.packets_dropped;
          continue;
        }
        const DecodedPacket& d = decoded[i];
        if (d.l3 == L3Kind::kIpv4 && d.l4_ok && (d.is_tcp() || d.is_udp() || d.is_icmp())) {
          const FiveTuple key = flow_tuple_of(d).canonical();
          key_lo[i] = key.packed_lo();
          key_hi[i] = key.packed_hi();
          keyed[i] = 1;
        }
      }
      lap(decode_s);
      for (std::size_t i = 0; i < got; ++i) {
        if (ok[i]) tally_one(decoded[i]);
      }
      lap(tally_s);
      for (std::size_t i = 0; i < got; ++i) {
        if (ok[i]) flow_one(decoded[i], key_lo[i], key_hi[i], keyed[i] != 0);
      }
      lap(flow_s);
    }
    if (timed) {
      obs::record_stage(reg, "batch.source", source_s, batches);
      obs::record_stage(reg, "batch.decode", decode_s, shard.quality.packets_seen);
      obs::record_stage(reg, "batch.tally", tally_s, shard.quality.packets_ok);
      obs::record_stage(reg, "batch.flow", flow_s, shard.quality.packets_ok);
    }
  }
  shard.table->flush();
  // TCP 5-tuple reuse is a capture-accounting fact (informational flag on
  // ok packets), recorded whether or not telemetry is on.
  if (shard.table->stats().tcp_tuple_reuse != 0) {
    shard.quality.anomalies.add(AnomalyKind::kTcpTupleReuse,
                                shard.table->stats().tcp_tuple_reuse);
  }
  // Source-layer anomalies (pcap record damage, salvaged truncations) are
  // complete once the stream is drained; fold them into the shard so the
  // dataset's anomaly accounting covers the file layer too.
  shard.quality.anomalies.merge(source.anomalies());
  if (reg != nullptr) {
    stage.add_items(shard.quality.packets_seen);
    record_trace_metrics(source, shard);
  }
  // Dispatcher can be dropped; events and registry outlive it.
}

std::vector<TraceShard> analyze_trace_shards(const TraceSourceSet& sources,
                                             const AnalyzerConfig& config,
                                             std::size_t begin, std::size_t end,
                                             obs::Registry* process_metrics) {
  // Each job opens its own source, so streams never share state across
  // threads and a trace's packets live only inside its job.
  end = std::min(end, sources.size());
  const std::size_t n = end > begin ? end - begin : 0;
  std::vector<TraceShard> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards.emplace_back(config.scanner);

  const std::size_t threads =
      config.threads != 0 ? config.threads : ThreadPool::env_thread_count();
  ThreadPool pool(std::min(threads, n > 0 ? n : std::size_t{1}));
  pool.for_each_index(n, [&](std::size_t i) {
    const std::unique_ptr<PacketSource> source = sources.open(begin + i);
    analyze_trace(*source, config, shards[i]);
  });
  if (config.collect_metrics && process_metrics != nullptr) {
    record_pool_metrics(pool, *process_metrics);
  }
  return shards;
}

DatasetAnalysis fold_shards(std::string dataset_name, std::vector<TraceShard>&& shards,
                            const AnalyzerConfig& config) {
  DatasetAnalysis out;
  out.name = std::move(dataset_name);
  out.site = config.site;

  const auto fold_start = std::chrono::steady_clock::now();

  // ---- deterministic fold, in trace-index order ----------------------------
  ScannerDetector detector(config.scanner);
  for (Ipv4Address known : config.site.known_scanners) detector.add_known_scanner(known);

  for (TraceShard& shard : shards) {
    if (shard.subnet_id >= 0) out.monitored_subnets.push_back(shard.subnet_id);
    out.total_packets += shard.total_packets;
    out.total_wire_bytes += shard.total_wire_bytes;
    out.l3.merge(shard.l3);
    out.ip_proto_packets.merge(shard.ip_proto_packets);
    detector.merge(shard.detector);
    out.monitored_hosts.insert(shard.monitored_hosts.begin(), shard.monitored_hosts.end());
    out.lbnl_hosts.insert(shard.lbnl_hosts.begin(), shard.lbnl_hosts.end());
    out.remote_hosts.insert(shard.remote_hosts.begin(), shard.remote_hosts.end());
    out.registry.merge_dynamic_endpoints(shard.registry);
    out.events.merge(std::move(shard.events));
    out.quality.merge(shard.quality);
    out.load_raw.push_back(std::move(shard.load));
    out.tables.push_back(std::move(shard.table));
    out.metrics.merge(shard.metrics);
  }
  // Scanner identification is global: only the merged detector has seen a
  // source's contacts across all traces, so the removal filter runs here,
  // post-merge, exactly as in the serial two-pass pipeline.
  out.scanners = detector.scanners();

  // ---- assemble connection lists, remove scanner traffic ---------------------
  for (const auto& table : out.tables) {
    for (const Connection& conn : table->connections()) {
      out.all_connections.push_back(&conn);
      const bool from_scanner = config.remove_scanners && out.scanners.count(conn.key.src) > 0;
      if (from_scanner) {
        ++out.scanner_conns_removed;
      } else {
        out.connections.push_back(&conn);
      }
    }
  }
  // Post-fold semantic facts: only the global view knows these, and they
  // are identical for any shard partition (the fold runs exactly once).
  if (config.collect_metrics) {
    using obs::MetricClass;
    out.metrics.counter("scanner.sources_identified", MetricClass::kSemantic,
                        "scanner source addresses identified post-fold")
        ->add(out.scanners.size());
    out.metrics.counter("scanner.connections_removed", MetricClass::kSemantic,
                        "connections removed as scanner traffic")
        ->add(out.scanner_conns_removed);
    out.metrics.counter("fold.connections_total", MetricClass::kSemantic,
                        "connections across all traces before scanner removal")
        ->add(out.all_connections.size());
    out.metrics.counter("fold.shards", MetricClass::kSemantic, "trace shards folded")
        ->add(shards.size());
    obs::record_stage(
        &out.metrics, "fold",
        std::chrono::duration<double>(std::chrono::steady_clock::now() - fold_start).count(),
        out.load_raw.size());
  }
  return out;
}

DatasetAnalysis analyze_dataset(const TraceSourceSet& sources, const AnalyzerConfig& config) {
  obs::Registry process_metrics;
  std::vector<TraceShard> shards =
      analyze_trace_shards(sources, config, 0, sources.size(),
                           config.collect_metrics ? &process_metrics : nullptr);
  DatasetAnalysis out = fold_shards(sources.dataset_name(), std::move(shards), config);
  out.metrics.merge(process_metrics);
  return out;
}

DatasetAnalysis analyze_dataset(const TraceSet& traces, const AnalyzerConfig& config) {
  return analyze_dataset(MemoryTraceSourceSet(traces), config);
}

}  // namespace entrace
