#include "core/analyzer.h"

#include <algorithm>
#include <chrono>

#include "core/incremental.h"
#include "obs/stage_timer.h"
#include "util/thread_pool.h"

namespace entrace {

namespace {

// Thread-pool scheduling telemetry (timing class: queue depth and task
// latency depend on the thread count and the OS scheduler).
void record_pool_metrics(const ThreadPool& pool, obs::Registry& reg) {
  using obs::MetricClass;
  const ThreadPool::Stats ps = pool.stats();
  reg.gauge("pool.threads", MetricClass::kTiming, "worker threads executing trace jobs")
      ->set(static_cast<double>(pool.thread_count()));
  reg.counter("pool.tasks", MetricClass::kTiming, "trace jobs completed")->add(ps.tasks);
  reg.gauge("pool.max_queue_depth", MetricClass::kTiming, "high-water mark of queued jobs")
      ->set(static_cast<double>(ps.max_queue_depth));
  reg.gauge("pool.busy_seconds", MetricClass::kTiming, "summed job execution wall-clock")
      ->add(ps.busy_seconds);
  reg.gauge("pool.max_task_seconds", MetricClass::kTiming, "slowest single trace job")
      ->set(ps.max_task_seconds);
}

}  // namespace

std::uint64_t DatasetAnalysis::payload_bytes() const {
  std::uint64_t total = 0;
  for (const Connection* c : connections) total += c->total_bytes();
  return total;
}

AnalyzerConfig default_config_for_model(const SiteConfig& site) {
  AnalyzerConfig config;
  config.site = site;
  return config;
}

// One fused streaming pass over a trace source: pull -> decode -> tallies
// -> scanner observation -> flow table -> protocol dispatch, with a single
// decode_packet call per packet and only the source's own buffer (one
// packet for files, one slice for synthetic regeneration, zero copies for
// in-memory traces) between disk and results.
void analyze_trace(PacketSource& source, const AnalyzerConfig& config, TraceShard& shard) {
  // The engine itself lives in core/incremental.h: one TraceStream fed to
  // exhaustion is exactly the historical fused pass, and finish_batch moves
  // its state into the shard without the windowed copy step — so the batch
  // and windowed pipelines share one implementation and cannot drift.
  TraceStream stream(source.meta(), config);

  obs::Registry* reg = config.collect_metrics ? &shard.metrics : nullptr;
  obs::StageScope stage(reg, "trace");

  double source_s = 0.0;
  std::uint64_t batches = 0;
  if (config.batch_size <= 1) {
    // Scalar reference loop: one virtual pull and one decode per packet,
    // kept as the equivalence oracle for the batched path.
    while (const RawPacket* pulled = source.next()) stream.feed_packet(*pulled);
  } else {
    // Batched pipeline: one virtual next_batch call amortized over up to
    // batch_size packets; the stream runs the staged decode -> tally ->
    // flow loops over the views, which stay valid until the next call.
    const std::size_t batch = config.batch_size;
    std::vector<PacketView> views(batch);
    using clock = std::chrono::steady_clock;
    const bool timed = reg != nullptr;
    for (;;) {
      const auto t0 = timed ? clock::now() : clock::time_point{};
      const std::size_t got = source.next_batch(views.data(), batch);
      if (timed) source_s += std::chrono::duration<double>(clock::now() - t0).count();
      if (got == 0) break;
      ++batches;
      stream.feed(views.data(), got);
    }
  }
  stream.finish_batch(source, shard, source_s, batches);
  if (reg != nullptr) stage.add_items(shard.quality.packets_seen);
  // stage (stage.trace) records into shard.metrics on scope exit, after
  // finish_batch has moved the stream's registry in — same final order as
  // the historical single-function pass.
}

std::vector<TraceShard> analyze_trace_shards(const TraceSourceSet& sources,
                                             const AnalyzerConfig& config,
                                             std::size_t begin, std::size_t end,
                                             obs::Registry* process_metrics) {
  // Each job opens its own source, so streams never share state across
  // threads and a trace's packets live only inside its job.
  end = std::min(end, sources.size());
  const std::size_t n = end > begin ? end - begin : 0;
  std::vector<TraceShard> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards.emplace_back(config.scanner);

  const std::size_t threads =
      config.threads != 0 ? config.threads : ThreadPool::env_thread_count();
  ThreadPool pool(std::min(threads, n > 0 ? n : std::size_t{1}));
  pool.for_each_index(n, [&](std::size_t i) {
    const std::unique_ptr<PacketSource> source = sources.open(begin + i);
    analyze_trace(*source, config, shards[i]);
  });
  if (config.collect_metrics && process_metrics != nullptr) {
    record_pool_metrics(pool, *process_metrics);
  }
  return shards;
}

DatasetAnalysis fold_shards(std::string dataset_name, std::vector<TraceShard>&& shards,
                            const AnalyzerConfig& config) {
  DatasetAnalysis out;
  out.name = std::move(dataset_name);
  out.site = config.site;

  const auto fold_start = std::chrono::steady_clock::now();

  // ---- deterministic fold, in trace-index order ----------------------------
  ScannerDetector detector(config.scanner);
  for (Ipv4Address known : config.site.known_scanners) detector.add_known_scanner(known);

  for (TraceShard& shard : shards) {
    if (shard.subnet_id >= 0) out.monitored_subnets.push_back(shard.subnet_id);
    out.total_packets += shard.total_packets;
    out.total_wire_bytes += shard.total_wire_bytes;
    out.l3.merge(shard.l3);
    out.ip_proto_packets.merge(shard.ip_proto_packets);
    detector.merge(shard.detector);
    out.monitored_hosts.insert(shard.monitored_hosts.begin(), shard.monitored_hosts.end());
    out.lbnl_hosts.insert(shard.lbnl_hosts.begin(), shard.lbnl_hosts.end());
    out.remote_hosts.insert(shard.remote_hosts.begin(), shard.remote_hosts.end());
    out.registry.merge_dynamic_endpoints(shard.registry);
    out.events.merge(std::move(shard.events));
    out.quality.merge(shard.quality);
    out.load_raw.push_back(std::move(shard.load));
    out.tables.push_back(std::move(shard.table));
    out.metrics.merge(shard.metrics);
  }
  // Scanner identification is global: only the merged detector has seen a
  // source's contacts across all traces, so the removal filter runs here,
  // post-merge, exactly as in the serial two-pass pipeline.
  out.scanners = detector.scanners();

  // ---- assemble connection lists, remove scanner traffic ---------------------
  for (const auto& table : out.tables) {
    for (const Connection& conn : table->connections()) {
      out.all_connections.push_back(&conn);
      const bool from_scanner = config.remove_scanners && out.scanners.count(conn.key.src) > 0;
      if (from_scanner) {
        ++out.scanner_conns_removed;
      } else {
        out.connections.push_back(&conn);
      }
    }
  }
  // Post-fold semantic facts: only the global view knows these, and they
  // are identical for any shard partition (the fold runs exactly once).
  if (config.collect_metrics) {
    using obs::MetricClass;
    out.metrics.counter("scanner.sources_identified", MetricClass::kSemantic,
                        "scanner source addresses identified post-fold")
        ->add(out.scanners.size());
    out.metrics.counter("scanner.connections_removed", MetricClass::kSemantic,
                        "connections removed as scanner traffic")
        ->add(out.scanner_conns_removed);
    out.metrics.counter("fold.connections_total", MetricClass::kSemantic,
                        "connections across all traces before scanner removal")
        ->add(out.all_connections.size());
    out.metrics.counter("fold.shards", MetricClass::kSemantic, "trace shards folded")
        ->add(shards.size());
    obs::record_stage(
        &out.metrics, "fold",
        std::chrono::duration<double>(std::chrono::steady_clock::now() - fold_start).count(),
        out.load_raw.size());
  }
  return out;
}

DatasetAnalysis analyze_dataset(const TraceSourceSet& sources, const AnalyzerConfig& config) {
  obs::Registry process_metrics;
  std::vector<TraceShard> shards =
      analyze_trace_shards(sources, config, 0, sources.size(),
                           config.collect_metrics ? &process_metrics : nullptr);
  DatasetAnalysis out = fold_shards(sources.dataset_name(), std::move(shards), config);
  out.metrics.merge(process_metrics);
  return out;
}

DatasetAnalysis analyze_dataset(const TraceSet& traces, const AnalyzerConfig& config) {
  return analyze_dataset(MemoryTraceSourceSet(traces), config);
}

}  // namespace entrace
