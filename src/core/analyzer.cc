#include "core/analyzer.h"

#include <algorithm>

#include "net/decoder.h"
#include "util/thread_pool.h"

namespace entrace {

std::uint64_t DatasetAnalysis::payload_bytes() const {
  std::uint64_t total = 0;
  for (const Connection* c : connections) total += c->total_bytes();
  return total;
}

AnalyzerConfig default_config_for_model(const SiteConfig& site) {
  AnalyzerConfig config;
  config.site = site;
  return config;
}

// One fused streaming pass over a trace source: pull -> decode -> tallies
// -> scanner observation -> flow table -> protocol dispatch, with a single
// decode_packet call per packet and only the source's own buffer (one
// packet for files, one slice for synthetic regeneration, zero copies for
// in-memory traces) between disk and results.
void analyze_trace(PacketSource& source, const AnalyzerConfig& config, TraceShard& shard) {
  const TraceMeta& meta = source.meta();
  shard.subnet_id = meta.subnet_id;
  const bool payload = config.payload_analysis.value_or(meta.snaplen >= 200);
  ProtocolDispatcher dispatcher(shard.registry, shard.events, payload,
                                &shard.quality.anomalies);
  shard.table = std::make_unique<FlowTable>(config.flow, &dispatcher);
  shard.load.trace_name = meta.name;

  while (const RawPacket* pulled = source.next()) {
    const RawPacket& pkt = *pulled;
    ++shard.quality.packets_seen;
    const auto decoded = decode_packet(pkt, &shard.quality.anomalies);
    if (!decoded) {
      // Not even the Ethernet header was captured; nothing to attribute.
      ++shard.quality.packets_dropped;
      continue;
    }
    if (decoded->checksum_bad()) {
      // Header bytes are demonstrably corrupt: addresses/ports can't be
      // trusted, so the packet is excluded from all traffic accounting
      // (Bro's checksum handling on the paper's traces behaves the same).
      ++shard.quality.packets_dropped;
      continue;
    }
    // Headline tallies count analyzed packets only (see the accounting
    // rule in analyzer.h): total_packets == packets_ok == l3.total.
    ++shard.quality.packets_ok;
    ++shard.total_packets;
    shard.total_wire_bytes += pkt.wire_len;
    shard.l3.add(decoded->l3);
    shard.load.add_packet(pkt.ts, pkt.wire_len);
    if (decoded->l3 != L3Kind::kIpv4) continue;
    ++shard.ip_proto_packets[decoded->ip_proto];
    shard.detector.observe(decoded->src, decoded->dst);
    for (const Ipv4Address addr : {decoded->src, decoded->dst}) {
      if (addr.is_multicast() || addr.is_broadcast()) continue;
      if (config.site.is_internal(addr)) {
        shard.lbnl_hosts.insert(addr.value());
        if (config.site.subnet_of(addr) == meta.subnet_id) {
          shard.monitored_hosts.insert(addr.value());
        }
      } else {
        shard.remote_hosts.insert(addr.value());
      }
    }
    const PacketVerdict verdict = shard.table->process(*decoded);
    if (verdict.conn != nullptr && decoded->is_tcp()) {
      const bool wan = !config.site.is_internal(verdict.conn->key.src) ||
                       !config.site.is_internal(verdict.conn->key.dst);
      if (verdict.keepalive_retx) {
        // §6 excludes 1-byte keepalive retransmissions from the loss proxy.
        ++shard.load.keepalive_excluded;
      } else {
        auto& pkts = wan ? shard.load.wan_tcp_pkts : shard.load.ent_tcp_pkts;
        auto& retx = wan ? shard.load.wan_retx : shard.load.ent_retx;
        ++pkts;
        if (verdict.tcp_retransmission) ++retx;
      }
    }
  }
  shard.table->flush();
  // Source-layer anomalies (pcap record damage, salvaged truncations) are
  // complete once the stream is drained; fold them into the shard so the
  // dataset's anomaly accounting covers the file layer too.
  shard.quality.anomalies.merge(source.anomalies());
  // Dispatcher can be dropped; events and registry outlive it.
}

std::vector<TraceShard> analyze_trace_shards(const TraceSourceSet& sources,
                                             const AnalyzerConfig& config,
                                             std::size_t begin, std::size_t end) {
  // Each job opens its own source, so streams never share state across
  // threads and a trace's packets live only inside its job.
  end = std::min(end, sources.size());
  const std::size_t n = end > begin ? end - begin : 0;
  std::vector<TraceShard> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards.emplace_back(config.scanner);

  const std::size_t threads =
      config.threads != 0 ? config.threads : ThreadPool::env_thread_count();
  ThreadPool pool(std::min(threads, n > 0 ? n : std::size_t{1}));
  pool.for_each_index(n, [&](std::size_t i) {
    const std::unique_ptr<PacketSource> source = sources.open(begin + i);
    analyze_trace(*source, config, shards[i]);
  });
  return shards;
}

DatasetAnalysis fold_shards(std::string dataset_name, std::vector<TraceShard>&& shards,
                            const AnalyzerConfig& config) {
  DatasetAnalysis out;
  out.name = std::move(dataset_name);
  out.site = config.site;

  // ---- deterministic fold, in trace-index order ----------------------------
  ScannerDetector detector(config.scanner);
  for (Ipv4Address known : config.site.known_scanners) detector.add_known_scanner(known);

  for (TraceShard& shard : shards) {
    if (shard.subnet_id >= 0) out.monitored_subnets.push_back(shard.subnet_id);
    out.total_packets += shard.total_packets;
    out.total_wire_bytes += shard.total_wire_bytes;
    out.l3.merge(shard.l3);
    out.ip_proto_packets.merge(shard.ip_proto_packets);
    detector.merge(shard.detector);
    out.monitored_hosts.insert(shard.monitored_hosts.begin(), shard.monitored_hosts.end());
    out.lbnl_hosts.insert(shard.lbnl_hosts.begin(), shard.lbnl_hosts.end());
    out.remote_hosts.insert(shard.remote_hosts.begin(), shard.remote_hosts.end());
    out.registry.merge_dynamic_endpoints(shard.registry);
    out.events.merge(std::move(shard.events));
    out.quality.merge(shard.quality);
    out.load_raw.push_back(std::move(shard.load));
    out.tables.push_back(std::move(shard.table));
  }
  // Scanner identification is global: only the merged detector has seen a
  // source's contacts across all traces, so the removal filter runs here,
  // post-merge, exactly as in the serial two-pass pipeline.
  out.scanners = detector.scanners();

  // ---- assemble connection lists, remove scanner traffic ---------------------
  for (const auto& table : out.tables) {
    for (const Connection& conn : table->connections()) {
      out.all_connections.push_back(&conn);
      const bool from_scanner = config.remove_scanners && out.scanners.count(conn.key.src) > 0;
      if (from_scanner) {
        ++out.scanner_conns_removed;
      } else {
        out.connections.push_back(&conn);
      }
    }
  }
  return out;
}

DatasetAnalysis analyze_dataset(const TraceSourceSet& sources, const AnalyzerConfig& config) {
  return fold_shards(sources.dataset_name(),
                     analyze_trace_shards(sources, config, 0, sources.size()), config);
}

DatasetAnalysis analyze_dataset(const TraceSet& traces, const AnalyzerConfig& config) {
  return analyze_dataset(MemoryTraceSourceSet(traces), config);
}

}  // namespace entrace
