#include "core/analyzer.h"

#include <algorithm>

#include "net/decoder.h"
#include "util/thread_pool.h"

namespace entrace {

std::uint64_t DatasetAnalysis::payload_bytes() const {
  std::uint64_t total = 0;
  for (const Connection* c : connections) total += c->total_bytes();
  return total;
}

AnalyzerConfig default_config_for_model(const SiteConfig& site) {
  AnalyzerConfig config;
  config.site = site;
  return config;
}

namespace {

// Everything one per-trace job produces.  Shards are private to their job
// and folded into the DatasetAnalysis on the caller's thread in
// trace-index order, so results are identical for every thread count.
struct TraceShard {
  explicit TraceShard(const ScannerDetector::Config& scanner_config)
      : detector(scanner_config) {}

  int subnet_id = -1;
  std::uint64_t total_packets = 0;
  std::uint64_t total_wire_bytes = 0;
  NetworkLayerBreakdown l3;
  IpProtoCounts ip_proto_packets;
  std::set<std::uint32_t> monitored_hosts;
  std::set<std::uint32_t> lbnl_hosts;
  std::set<std::uint32_t> remote_hosts;
  ScannerDetector detector;
  AppRegistry registry;
  AppEvents events;
  std::unique_ptr<FlowTable> table;
  TraceLoadRaw load;
  CaptureQuality quality;
};

// One fused streaming pass over a trace source: pull -> decode -> tallies
// -> scanner observation -> flow table -> protocol dispatch, with a single
// decode_packet call per packet and only the source's own buffer (one
// packet for files, one slice for synthetic regeneration, zero copies for
// in-memory traces) between disk and results.
void analyze_trace(PacketSource& source, const AnalyzerConfig& config, TraceShard& shard) {
  const TraceMeta& meta = source.meta();
  shard.subnet_id = meta.subnet_id;
  const bool payload = config.payload_analysis.value_or(meta.snaplen >= 200);
  ProtocolDispatcher dispatcher(shard.registry, shard.events, payload,
                                &shard.quality.anomalies);
  shard.table = std::make_unique<FlowTable>(config.flow, &dispatcher);
  shard.load.trace_name = meta.name;

  while (const RawPacket* pulled = source.next()) {
    const RawPacket& pkt = *pulled;
    ++shard.quality.packets_seen;
    const auto decoded = decode_packet(pkt, &shard.quality.anomalies);
    if (!decoded) {
      // Not even the Ethernet header was captured; nothing to attribute.
      ++shard.quality.packets_dropped;
      continue;
    }
    if (decoded->checksum_bad()) {
      // Header bytes are demonstrably corrupt: addresses/ports can't be
      // trusted, so the packet is excluded from all traffic accounting
      // (Bro's checksum handling on the paper's traces behaves the same).
      ++shard.quality.packets_dropped;
      continue;
    }
    // Headline tallies count analyzed packets only (see the accounting
    // rule in analyzer.h): total_packets == packets_ok == l3.total.
    ++shard.quality.packets_ok;
    ++shard.total_packets;
    shard.total_wire_bytes += pkt.wire_len;
    shard.l3.add(decoded->l3);
    shard.load.add_packet(pkt.ts, pkt.wire_len);
    if (decoded->l3 != L3Kind::kIpv4) continue;
    ++shard.ip_proto_packets[decoded->ip_proto];
    shard.detector.observe(decoded->src, decoded->dst);
    for (const Ipv4Address addr : {decoded->src, decoded->dst}) {
      if (addr.is_multicast() || addr.is_broadcast()) continue;
      if (config.site.is_internal(addr)) {
        shard.lbnl_hosts.insert(addr.value());
        if (config.site.subnet_of(addr) == meta.subnet_id) {
          shard.monitored_hosts.insert(addr.value());
        }
      } else {
        shard.remote_hosts.insert(addr.value());
      }
    }
    const PacketVerdict verdict = shard.table->process(*decoded);
    if (verdict.conn != nullptr && decoded->is_tcp()) {
      const bool wan = !config.site.is_internal(verdict.conn->key.src) ||
                       !config.site.is_internal(verdict.conn->key.dst);
      if (verdict.keepalive_retx) {
        // §6 excludes 1-byte keepalive retransmissions from the loss proxy.
        ++shard.load.keepalive_excluded;
      } else {
        auto& pkts = wan ? shard.load.wan_tcp_pkts : shard.load.ent_tcp_pkts;
        auto& retx = wan ? shard.load.wan_retx : shard.load.ent_retx;
        ++pkts;
        if (verdict.tcp_retransmission) ++retx;
      }
    }
  }
  shard.table->flush();
  // Source-layer anomalies (pcap record damage, salvaged truncations) are
  // complete once the stream is drained; fold them into the shard so the
  // dataset's anomaly accounting covers the file layer too.
  shard.quality.anomalies.merge(source.anomalies());
  // Dispatcher can be dropped; events and registry outlive it.
}

}  // namespace

DatasetAnalysis analyze_dataset(const TraceSourceSet& sources, const AnalyzerConfig& config) {
  DatasetAnalysis out;
  out.name = sources.dataset_name();
  out.site = config.site;

  // ---- per-trace jobs: fused decode/tally/scanner/flow/app pass ------------
  // Each job opens its own source, so streams never share state across
  // threads and a trace's packets live only inside its job.
  const std::size_t n = sources.size();
  std::vector<TraceShard> shards;
  shards.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards.emplace_back(config.scanner);

  const std::size_t threads =
      config.threads != 0 ? config.threads : ThreadPool::env_thread_count();
  ThreadPool pool(std::min(threads, n > 0 ? n : std::size_t{1}));
  pool.for_each_index(n, [&](std::size_t i) {
    const std::unique_ptr<PacketSource> source = sources.open(i);
    analyze_trace(*source, config, shards[i]);
  });

  // ---- deterministic fold, in trace-index order ----------------------------
  ScannerDetector detector(config.scanner);
  for (Ipv4Address known : config.site.known_scanners) detector.add_known_scanner(known);

  for (TraceShard& shard : shards) {
    if (shard.subnet_id >= 0) out.monitored_subnets.push_back(shard.subnet_id);
    out.total_packets += shard.total_packets;
    out.total_wire_bytes += shard.total_wire_bytes;
    out.l3.merge(shard.l3);
    out.ip_proto_packets.merge(shard.ip_proto_packets);
    detector.merge(shard.detector);
    out.monitored_hosts.insert(shard.monitored_hosts.begin(), shard.monitored_hosts.end());
    out.lbnl_hosts.insert(shard.lbnl_hosts.begin(), shard.lbnl_hosts.end());
    out.remote_hosts.insert(shard.remote_hosts.begin(), shard.remote_hosts.end());
    out.registry.merge_dynamic_endpoints(shard.registry);
    out.events.merge(std::move(shard.events));
    out.quality.merge(shard.quality);
    out.load_raw.push_back(std::move(shard.load));
    out.tables.push_back(std::move(shard.table));
  }
  // Scanner identification is global: only the merged detector has seen a
  // source's contacts across all traces, so the removal filter runs here,
  // post-merge, exactly as in the serial two-pass pipeline.
  out.scanners = detector.scanners();

  // ---- assemble connection lists, remove scanner traffic ---------------------
  for (const auto& table : out.tables) {
    for (const Connection& conn : table->connections()) {
      out.all_connections.push_back(&conn);
      const bool from_scanner = config.remove_scanners && out.scanners.count(conn.key.src) > 0;
      if (from_scanner) {
        ++out.scanner_conns_removed;
      } else {
        out.connections.push_back(&conn);
      }
    }
  }
  return out;
}

DatasetAnalysis analyze_dataset(const TraceSet& traces, const AnalyzerConfig& config) {
  return analyze_dataset(MemoryTraceSourceSet(traces), config);
}

}  // namespace entrace
