#include "core/analyzer.h"

#include "net/decoder.h"

namespace entrace {

std::uint64_t DatasetAnalysis::payload_bytes() const {
  std::uint64_t total = 0;
  for (const Connection* c : connections) total += c->total_bytes();
  return total;
}

AnalyzerConfig default_config_for_model(const SiteConfig& site) {
  AnalyzerConfig config;
  config.site = site;
  return config;
}

DatasetAnalysis analyze_dataset(const TraceSet& traces, const AnalyzerConfig& config) {
  DatasetAnalysis out;
  out.name = traces.dataset_name;
  out.site = config.site;

  // ---- pass 1: packet tallies + scanner identification ---------------------
  ScannerDetector detector(config.scanner);
  for (Ipv4Address known : config.site.known_scanners) detector.add_known_scanner(known);

  for (const Trace& trace : traces.traces) {
    if (trace.subnet_id >= 0) out.monitored_subnets.push_back(trace.subnet_id);
    for (const RawPacket& pkt : trace.packets) {
      ++out.total_packets;
      out.total_wire_bytes += pkt.wire_len;
      auto decoded = decode_packet(pkt);
      if (!decoded) continue;
      out.l3.add(decoded->l3);
      if (decoded->l3 != L3Kind::kIpv4) continue;
      ++out.ip_proto_packets[decoded->ip_proto];
      detector.observe(decoded->src, decoded->dst);
      for (const Ipv4Address addr : {decoded->src, decoded->dst}) {
        if (addr.is_multicast() || addr.is_broadcast()) continue;
        if (config.site.is_internal(addr)) {
          out.lbnl_hosts.insert(addr.value());
          if (config.site.subnet_of(addr) == trace.subnet_id) {
            out.monitored_hosts.insert(addr.value());
          }
        } else {
          out.remote_hosts.insert(addr.value());
        }
      }
    }
  }
  out.scanners = detector.scanners();

  // ---- pass 2: flows, application parsing, load ------------------------------
  for (const Trace& trace : traces.traces) {
    const bool payload =
        config.payload_analysis.value_or(trace.snaplen >= 200);
    auto dispatcher =
        std::make_unique<ProtocolDispatcher>(out.registry, out.events, payload);
    auto table = std::make_unique<FlowTable>(config.flow, dispatcher.get());

    TraceLoadRaw load;
    load.trace_name = trace.name;
    for (const RawPacket& pkt : trace.packets) {
      auto decoded = decode_packet(pkt);
      if (!decoded) continue;
      load.add_packet(pkt.ts, pkt.wire_len);
      if (decoded->l3 != L3Kind::kIpv4) continue;
      const PacketVerdict verdict = table->process(*decoded);
      if (verdict.conn != nullptr && decoded->is_tcp()) {
        const bool wan = !config.site.is_internal(verdict.conn->key.src) ||
                         !config.site.is_internal(verdict.conn->key.dst);
        if (verdict.keepalive_retx) {
          // §6 excludes 1-byte keepalive retransmissions from the loss proxy.
          ++load.keepalive_excluded;
        } else {
          auto& pkts = wan ? load.wan_tcp_pkts : load.ent_tcp_pkts;
          auto& retx = wan ? load.wan_retx : load.ent_retx;
          ++pkts;
          if (verdict.tcp_retransmission) ++retx;
        }
      }
    }
    table->flush();
    out.load_raw.push_back(std::move(load));
    out.tables.push_back(std::move(table));
    // Dispatcher can be dropped; events and registry outlive it.
  }

  // ---- assemble connection lists, remove scanner traffic ---------------------
  for (const auto& table : out.tables) {
    for (const Connection& conn : table->connections()) {
      out.all_connections.push_back(&conn);
      const bool from_scanner = config.remove_scanners && out.scanners.count(conn.key.src) > 0;
      if (from_scanner) {
        ++out.scanner_conns_removed;
      } else {
        out.connections.push_back(&conn);
      }
    }
  }
  return out;
}

}  // namespace entrace
