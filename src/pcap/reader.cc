#include "pcap/reader.h"

#include <array>
#include <stdexcept>

#include "pcap/format.h"

namespace entrace {

PcapReader::PcapReader(const std::string& path) : file_(std::fopen(path.c_str(), "rb")) {
  if (!file_) throw std::runtime_error("PcapReader: cannot open " + path);
  std::array<std::uint8_t, pcapfmt::kGlobalHeaderSize> hdr;
  if (std::fread(hdr.data(), 1, hdr.size(), file_.get()) != hdr.size())
    throw std::runtime_error("PcapReader: short global header in " + path);
  // Magic read little-endian first.
  const std::uint32_t magic_le = static_cast<std::uint32_t>(hdr[0]) |
                                 static_cast<std::uint32_t>(hdr[1]) << 8 |
                                 static_cast<std::uint32_t>(hdr[2]) << 16 |
                                 static_cast<std::uint32_t>(hdr[3]) << 24;
  if (magic_le == pcapfmt::kMagicUsec) {
    swapped_ = false;
  } else if (magic_le == pcapfmt::kMagicUsecSwap) {
    swapped_ = true;
  } else {
    throw std::runtime_error("PcapReader: bad magic in " + path);
  }
  snaplen_ = read_u32(hdr.data() + 16);
  link_type_ = read_u32(hdr.data() + 20);
}

PcapReader::~PcapReader() = default;

std::uint32_t PcapReader::read_u32(const std::uint8_t* p) const {
  if (!swapped_) {
    return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
  }
  return static_cast<std::uint32_t>(p[3]) | static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[1]) << 16 | static_cast<std::uint32_t>(p[0]) << 24;
}

std::optional<RawPacket> PcapReader::next() {
  std::array<std::uint8_t, pcapfmt::kRecordHeaderSize> rec;
  if (std::fread(rec.data(), 1, rec.size(), file_.get()) != rec.size()) return std::nullopt;
  const std::uint32_t sec = read_u32(rec.data());
  const std::uint32_t usec = read_u32(rec.data() + 4);
  const std::uint32_t caplen = read_u32(rec.data() + 8);
  const std::uint32_t wirelen = read_u32(rec.data() + 12);
  // Guard against absurd record lengths from corrupt files.
  if (caplen > 256 * 1024) return std::nullopt;

  RawPacket pkt;
  pkt.ts = static_cast<double>(sec) + static_cast<double>(usec) * 1e-6;
  pkt.wire_len = wirelen;
  pkt.data.resize(caplen);
  if (std::fread(pkt.data.data(), 1, caplen, file_.get()) != caplen) return std::nullopt;
  return pkt;
}

}  // namespace entrace
