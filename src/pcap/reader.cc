#include "pcap/reader.h"

#include <array>
#include <cstdio>
#include <stdexcept>

#include "pcap/format.h"

namespace entrace {
namespace {

// Sanity cap on caplen: no sane Ethernet capture has records this large, so
// a bigger value means the record header itself is garbage and the stream
// position can no longer be trusted.
constexpr std::uint32_t kMaxCapLen = 256 * 1024;

std::string hex32(std::uint32_t v) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "0x%08X", v);
  return buf;
}

}  // namespace

PcapReader::PcapReader(const std::string& path) {
  const std::string err = init(path);
  if (!err.empty()) throw std::runtime_error(err);
}

PcapReader::~PcapReader() = default;

std::unique_ptr<PcapReader> PcapReader::open(const std::string& path, std::string* error) {
  std::unique_ptr<PcapReader> reader(new PcapReader());
  reader->recover_ = true;
  const std::string err = reader->init(path);
  if (!err.empty()) {
    if (error) *error = err;
    return nullptr;
  }
  return reader;
}

std::string PcapReader::init(const std::string& path) {
  file_.reset(std::fopen(path.c_str(), "rb"));
  if (!file_) return "PcapReader: cannot open " + path;
  std::array<std::uint8_t, pcapfmt::kGlobalHeaderSize> hdr;
  const std::size_t got = std::fread(hdr.data(), 1, hdr.size(), file_.get());
  if (got == 0) return "PcapReader: " + path + " is empty (no pcap global header)";
  if (got < hdr.size()) {
    return "PcapReader: short global header in " + path + " (got " + std::to_string(got) +
           " of " + std::to_string(hdr.size()) + " bytes)";
  }
  // Magic read little-endian first.
  const std::uint32_t magic_le = static_cast<std::uint32_t>(hdr[0]) |
                                 static_cast<std::uint32_t>(hdr[1]) << 8 |
                                 static_cast<std::uint32_t>(hdr[2]) << 16 |
                                 static_cast<std::uint32_t>(hdr[3]) << 24;
  if (magic_le == pcapfmt::kMagicUsec) {
    swapped_ = false;
  } else if (magic_le == pcapfmt::kMagicUsecSwap) {
    swapped_ = true;
  } else {
    return "PcapReader: bad magic " + hex32(magic_le) + " at offset 0 in " + path +
           " (expected " + hex32(pcapfmt::kMagicUsec) + " or " + hex32(pcapfmt::kMagicUsecSwap) +
           ")";
  }
  snaplen_ = read_u32(hdr.data() + 16);
  link_type_ = read_u32(hdr.data() + 20);
  offset_ = hdr.size();
  return "";
}

std::uint32_t PcapReader::read_u32(const std::uint8_t* p) const {
  if (!swapped_) {
    return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
  }
  return static_cast<std::uint32_t>(p[3]) | static_cast<std::uint32_t>(p[2]) << 8 |
         static_cast<std::uint32_t>(p[1]) << 16 | static_cast<std::uint32_t>(p[0]) << 24;
}

std::optional<RawPacket> PcapReader::next() {
  if (!file_) return std::nullopt;
  std::array<std::uint8_t, pcapfmt::kRecordHeaderSize> rec;
  const std::size_t hdr_got = std::fread(rec.data(), 1, rec.size(), file_.get());
  offset_ += hdr_got;
  if (hdr_got < rec.size()) {
    // A clean EOF lands exactly on a record boundary; leftover bytes mean
    // the file was cut mid-header.
    if (hdr_got > 0) anomalies_.add(AnomalyKind::kPcapShortRecordHeader);
    return std::nullopt;
  }
  const std::uint32_t sec = read_u32(rec.data());
  const std::uint32_t usec = read_u32(rec.data() + 4);
  const std::uint32_t caplen = read_u32(rec.data() + 8);
  const std::uint32_t wirelen = read_u32(rec.data() + 12);
  // Guard against absurd record lengths from corrupt files.  The stream
  // position cannot be trusted past this point, so reading stops here.
  if (caplen > kMaxCapLen) {
    anomalies_.add(AnomalyKind::kPcapOversizedRecord);
    return std::nullopt;
  }

  RawPacket pkt;
  pkt.ts = static_cast<double>(sec) + static_cast<double>(usec) * 1e-6;
  pkt.wire_len = wirelen;
  pkt.data.resize(caplen);
  const std::size_t body_got = std::fread(pkt.data.data(), 1, caplen, file_.get());
  offset_ += body_got;
  if (body_got < caplen) {
    anomalies_.add(AnomalyKind::kPcapTruncatedRecord);
    if (!recover_ || body_got == 0) return std::nullopt;
    // Salvage the partial capture; downstream sees it as extra truncation.
    pkt.data.resize(body_got);
  }
  return pkt;
}

}  // namespace entrace
