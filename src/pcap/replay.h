// Paced trace replay: deliver an existing PacketSource's stream on the
// capture's own timeline, scaled by a speedup factor.
//
// The daemon's continuous mode replays finite traces as if they were live
// interfaces: a batch whose last packet is T seconds into the capture is
// released (speedup x) at T/x wall seconds after the first packet.  Pacing
// sits entirely in front of the inner source — packet contents, order,
// per-view source attribution and the inner source's stats/anomalies are
// untouched, so an analysis of a paced stream is byte-identical to the
// unpaced one.  Time comes from util::Clock: production runs use
// SystemClock; tests use FakeClock, which makes pacing instant while still
// exercising the schedule arithmetic (tests/daemon_test.cc asserts the
// virtual timeline a replay would sleep through).
#pragma once

#include "pcap/packet_source.h"
#include "util/clock.h"

namespace entrace {

class PacedReplaySource final : public PacketSource {
 public:
  // `speedup` > 0 scales capture time to wall time (100 = replay one hour
  // of capture in 36 s); <= 0 disables pacing (pass-through).  `inner` and
  // `clock` must outlive this source.
  PacedReplaySource(PacketSource& inner, util::Clock& clock, double speedup)
      : inner_(&inner), clock_(&clock), speedup_(speedup) {}

  const TraceMeta& meta() const override { return inner_->meta(); }
  const AnomalyCounts& anomalies() const override { return inner_->anomalies(); }

  // Wall seconds spent sleeping to hold the schedule (observability).
  double slept_seconds() const { return slept_; }

 protected:
  const RawPacket* pull() override {
    const RawPacket* pkt = inner_->next();
    if (pkt != nullptr) pace_to(pkt->ts);
    return pkt;
  }

  std::size_t pull_batch(PacketView* out, std::size_t n) override {
    const std::size_t got = inner_->next_batch(out, n);
    if (got != 0) pace_to(out[got - 1].ts);
    return got;
  }

 private:
  // Block until the wall clock reaches the batch tail's scheduled release
  // time.  The first packet anchors the schedule (capture ts base_ts_ ==
  // wall start_wall_); a replay that falls behind never tries to catch up
  // by bursting faster than the inner source delivers.
  void pace_to(double ts) {
    if (speedup_ <= 0.0) return;
    if (!started_) {
      started_ = true;
      base_ts_ = ts;
      start_wall_ = clock_->now();
      return;
    }
    const double due = start_wall_ + (ts - base_ts_) / speedup_;
    const double wait = due - clock_->now();
    if (wait > 0.0) {
      clock_->sleep(wait);
      slept_ += wait;
    }
  }

  PacketSource* inner_;
  util::Clock* clock_;
  double speedup_;
  bool started_ = false;
  double base_ts_ = 0.0;
  double start_wall_ = 0.0;
  double slept_ = 0.0;
};

}  // namespace entrace
