#include "pcap/packet_source.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "pcap/reader.h"

namespace entrace {

PacketSource::~PacketSource() = default;
TraceSourceSet::~TraceSourceSet() = default;

// ---- MemoryTraceSource ------------------------------------------------------

MemoryTraceSource::MemoryTraceSource(const Trace& trace) : trace_(&trace) {
  meta_.name = trace.name;
  meta_.subnet_id = trace.subnet_id;
  meta_.snaplen = trace.snaplen;
  meta_.start_ts = trace.start_ts;
  meta_.duration = trace.duration;
}

std::unique_ptr<PacketSource> MemoryTraceSourceSet::open(std::size_t index) const {
  return std::make_unique<MemoryTraceSource>(traces_->traces.at(index));
}

// ---- PcapFileSource ---------------------------------------------------------

PcapFileSource::PcapFileSource(const std::string& path, std::string name, int subnet_id) {
  std::string error;
  reader_ = PcapReader::open(path, &error);
  if (reader_ == nullptr) throw std::runtime_error(error);
  meta_.name = name.empty() ? path : std::move(name);
  meta_.subnet_id = subnet_id;
  meta_.snaplen = reader_->snaplen();
}

PcapFileSource::~PcapFileSource() = default;

const RawPacket* PcapFileSource::pull() {
  auto pkt = reader_->next();
  if (!pkt) return nullptr;
  if (pkt->data.size() > meta_.snaplen) pkt->data.resize(meta_.snaplen);
  current_ = std::move(*pkt);
  return &current_;
}

std::size_t PcapFileSource::pull_batch(PacketView* out, std::size_t n) {
  batch_.clear();
  batch_.reserve(n);
  while (batch_.size() < n) {
    auto pkt = reader_->next();
    if (!pkt) break;
    if (pkt->data.size() > meta_.snaplen) pkt->data.resize(meta_.snaplen);
    batch_.push_back(std::move(*pkt));
  }
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    out[i] = PacketView{batch_[i].ts, batch_[i].wire_len, batch_[i].data};
  }
  return batch_.size();
}

const AnomalyCounts& PcapFileSource::anomalies() const { return reader_->anomalies(); }

std::unique_ptr<PacketSource> PcapFileSourceSet::open(std::size_t index) const {
  const PcapTraceSpec& spec = files_.at(index);
  return std::make_unique<PcapFileSource>(spec.path, spec.name, spec.subnet_id);
}

// ---- MergedPacketStream -----------------------------------------------------

MergedPacketStream::MergedPacketStream(std::vector<std::unique_ptr<PacketSource>> sources)
    : sources_(std::move(sources)) {
  meta_.name = "merged";
  meta_.subnet_id = -1;
  meta_.snaplen = 0;
  double start = 0.0, end = 0.0;
  bool have_window = false;
  for (const auto& src : sources_) {
    const TraceMeta& m = src->meta();
    meta_.snaplen = std::max(meta_.snaplen, m.snaplen);
    if (m.duration > 0.0) {
      if (!have_window || m.start_ts < start) start = m.start_ts;
      if (!have_window || m.start_ts + m.duration > end) end = m.start_ts + m.duration;
      have_window = true;
    }
  }
  if (have_window) {
    meta_.start_ts = start;
    meta_.duration = end - start;
  }
  // Priming is lazy (first pull/pull_batch): the old eager heap prime
  // consumed one packet per sub-source through the scalar path, which a
  // batch consumer's buffers would then never see.
}

const AnomalyCounts& MergedPacketStream::anomalies() const {
  merged_anomalies_ = AnomalyCounts{};
  for (const auto& src : sources_) merged_anomalies_.merge(src->anomalies());
  return merged_anomalies_;
}

const RawPacket* MergedPacketStream::pull() {
  if (mode_ == Mode::kNone) {
    mode_ = Mode::kScalar;
    heap_.reserve(sources_.size());
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (const RawPacket* pkt = sources_[i]->next()) heap_.push_back({pkt, i});
    }
    std::make_heap(heap_.begin(), heap_.end(), later);
  }
  if (pending_ != SIZE_MAX) {
    // The previously returned packet is dead now; its source can advance.
    if (const RawPacket* pkt = sources_[pending_]->next()) {
      heap_.push_back({pkt, pending_});
      std::push_heap(heap_.begin(), heap_.end(), later);
    }
    pending_ = SIZE_MAX;
  }
  if (heap_.empty()) return nullptr;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Head head = heap_.back();
  heap_.pop_back();
  pending_ = head.index;
  return head.pkt;
}

std::size_t MergedPacketStream::pull_batch(PacketView* out, std::size_t n) {
  constexpr std::size_t kHeadBatch = 64;
  if (mode_ == Mode::kNone) {
    mode_ = Mode::kBatch;
    bufs_.resize(sources_.size());
  }
  // Refill exhausted buffers only on entry: the caller is done with the
  // previous batch's views by contract, so they may die now.
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    SourceBuf& b = bufs_[i];
    if (b.eof || b.pos < b.views.size()) continue;
    b.views.resize(kHeadBatch);
    const std::size_t got = sources_[i]->next_batch(b.views.data(), kHeadBatch);
    b.views.resize(got);
    b.pos = 0;
    if (got == 0) b.eof = true;
    // Stamp attribution once per refill; consumers demux on view.source.
    for (PacketView& v : b.views) v.source = static_cast<std::uint32_t>(i);
  }
  std::size_t k = 0;
  while (k < n) {
    // Global minimum over buffer heads by (ts, source index) — the same
    // order the heap in next() produces.  Source counts are small (one
    // per trace), so a linear scan beats heap maintenance here.
    std::size_t best = SIZE_MAX;
    for (std::size_t i = 0; i < bufs_.size(); ++i) {
      const SourceBuf& b = bufs_[i];
      if (b.pos >= b.views.size()) continue;
      if (best == SIZE_MAX || b.views[b.pos].ts < bufs_[best].views[bufs_[best].pos].ts) {
        best = i;
      }
    }
    if (best == SIZE_MAX) break;  // every buffer empty: drained or refill needed
    SourceBuf& b = bufs_[best];
    out[k++] = b.views[b.pos++];
    if (b.pos >= b.views.size() && !b.eof) break;  // short batch; refill next call
  }
  return k;
}

MergedPacketStream merged_stream(const TraceSet& traces) {
  std::vector<std::unique_ptr<PacketSource>> sources;
  sources.reserve(traces.traces.size());
  for (const Trace& t : traces.traces) sources.push_back(std::make_unique<MemoryTraceSource>(t));
  return MergedPacketStream(std::move(sources));
}

}  // namespace entrace
