#include "pcap/packet_source.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "pcap/reader.h"

namespace entrace {

PacketSource::~PacketSource() = default;
TraceSourceSet::~TraceSourceSet() = default;

// ---- MemoryTraceSource ------------------------------------------------------

MemoryTraceSource::MemoryTraceSource(const Trace& trace) : trace_(&trace) {
  meta_.name = trace.name;
  meta_.subnet_id = trace.subnet_id;
  meta_.snaplen = trace.snaplen;
  meta_.start_ts = trace.start_ts;
  meta_.duration = trace.duration;
}

std::unique_ptr<PacketSource> MemoryTraceSourceSet::open(std::size_t index) const {
  return std::make_unique<MemoryTraceSource>(traces_->traces.at(index));
}

// ---- PcapFileSource ---------------------------------------------------------

PcapFileSource::PcapFileSource(const std::string& path, std::string name, int subnet_id) {
  std::string error;
  reader_ = PcapReader::open(path, &error);
  if (reader_ == nullptr) throw std::runtime_error(error);
  meta_.name = name.empty() ? path : std::move(name);
  meta_.subnet_id = subnet_id;
  meta_.snaplen = reader_->snaplen();
}

PcapFileSource::~PcapFileSource() = default;

const RawPacket* PcapFileSource::pull() {
  auto pkt = reader_->next();
  if (!pkt) return nullptr;
  if (pkt->data.size() > meta_.snaplen) pkt->data.resize(meta_.snaplen);
  current_ = std::move(*pkt);
  return &current_;
}

const AnomalyCounts& PcapFileSource::anomalies() const { return reader_->anomalies(); }

std::unique_ptr<PacketSource> PcapFileSourceSet::open(std::size_t index) const {
  const PcapTraceSpec& spec = files_.at(index);
  return std::make_unique<PcapFileSource>(spec.path, spec.name, spec.subnet_id);
}

// ---- MergedPacketStream -----------------------------------------------------

MergedPacketStream::MergedPacketStream(std::vector<std::unique_ptr<PacketSource>> sources)
    : sources_(std::move(sources)) {
  heap_.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (const RawPacket* pkt = sources_[i]->next()) heap_.push_back({pkt, i});
  }
  std::make_heap(heap_.begin(), heap_.end(), later);
}

const RawPacket* MergedPacketStream::next() {
  if (pending_ != SIZE_MAX) {
    // The previously returned packet is dead now; its source can advance.
    if (const RawPacket* pkt = sources_[pending_]->next()) {
      heap_.push_back({pkt, pending_});
      std::push_heap(heap_.begin(), heap_.end(), later);
    }
    pending_ = SIZE_MAX;
  }
  if (heap_.empty()) return nullptr;
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Head head = heap_.back();
  heap_.pop_back();
  pending_ = head.index;
  return head.pkt;
}

MergedPacketStream merged_stream(const TraceSet& traces) {
  std::vector<std::unique_ptr<PacketSource>> sources;
  sources.reserve(traces.traces.size());
  for (const Trace& t : traces.traces) sources.push_back(std::make_unique<MemoryTraceSource>(t));
  return MergedPacketStream(std::move(sources));
}

}  // namespace entrace
