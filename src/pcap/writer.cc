#include "pcap/writer.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "net/bytes.h"
#include "pcap/format.h"

namespace entrace {
namespace {

void put_u32le(std::vector<std::uint8_t>& v, std::uint32_t x) {
  ByteWriter w(v);
  w.u32le(x);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : file_(std::fopen(path.c_str(), "wb")), snaplen_(snaplen) {
  if (!file_) throw std::runtime_error("PcapWriter: cannot open " + path);
  std::vector<std::uint8_t> hdr;
  hdr.reserve(pcapfmt::kGlobalHeaderSize);
  put_u32le(hdr, pcapfmt::kMagicUsec);
  ByteWriter w(hdr);
  w.u16le(pcapfmt::kVersionMajor);
  w.u16le(pcapfmt::kVersionMinor);
  w.u32le(0);  // thiszone
  w.u32le(0);  // sigfigs
  w.u32le(snaplen_);
  w.u32le(pcapfmt::kLinkTypeEthernet);
  if (std::fwrite(hdr.data(), 1, hdr.size(), file_.get()) != hdr.size())
    throw std::runtime_error("PcapWriter: header write failed");
}

PcapWriter::~PcapWriter() = default;

void PcapWriter::write(const RawPacket& pkt) {
  const std::uint32_t caplen =
      std::min<std::uint32_t>(static_cast<std::uint32_t>(pkt.data.size()), snaplen_);
  const double ts = pkt.ts < 0 ? 0.0 : pkt.ts;
  const auto sec = static_cast<std::uint32_t>(ts);
  const auto usec = static_cast<std::uint32_t>(std::lround((ts - sec) * 1e6)) % 1000000;

  std::vector<std::uint8_t> rec;
  rec.reserve(pcapfmt::kRecordHeaderSize + caplen);
  ByteWriter w(rec);
  w.u32le(sec);
  w.u32le(usec);
  w.u32le(caplen);
  w.u32le(pkt.wire_len);
  w.bytes(std::span<const std::uint8_t>(pkt.data.data(), caplen));
  if (std::fwrite(rec.data(), 1, rec.size(), file_.get()) != rec.size())
    throw std::runtime_error("PcapWriter: record write failed");
  ++packets_;
}

void PcapWriter::flush() { std::fflush(file_.get()); }

}  // namespace entrace
