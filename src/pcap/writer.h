// pcap capture-file writer with snaplen enforcement.
//
// The generator writes each monitored subnet's traffic through a Writer
// configured with the dataset's snaplen (68 for D1/D2, 1500 for the rest),
// so downstream analysis sees exactly the truncation the paper saw.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "net/packet.h"

namespace entrace {

class PcapWriter {
 public:
  // Creates/truncates the file and writes the global header.
  // Throws std::runtime_error if the file cannot be opened.
  PcapWriter(const std::string& path, std::uint32_t snaplen);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  // Writes a record; data beyond the snaplen is truncated.
  void write(const RawPacket& pkt);

  std::uint64_t packets_written() const { return packets_; }
  std::uint32_t snaplen() const { return snaplen_; }

  void flush();

 private:
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::uint32_t snaplen_;
  std::uint64_t packets_ = 0;
};

}  // namespace entrace
