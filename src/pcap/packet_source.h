// Pull-based packet sources: the streaming ingest layer of the pipeline.
//
// The paper's datasets are 17-65M packets each; materializing a whole
// TraceSet before analysis caps dataset size by RAM instead of disk/CPU.
// A PacketSource yields one RawPacket at a time plus the trace metadata
// the analyzer needs up front (name, subnet, snaplen, capture window) and
// the source-layer anomalies accumulated while reading, so the analyzer
// can run the fused single-decode pass without ever holding a trace in
// memory.  Three implementations exist:
//
//   - MemoryTraceSource    adapts an in-memory Trace (zero-copy; keeps
//                          every existing TraceSet caller working),
//   - PcapFileSource       streams straight off disk through PcapReader's
//                          recoverable mode, applying snaplen and record-
//                          level anomaly accounting inline,
//   - SyntheticTraceSource (src/synth/synth_source.h) regenerates the
//                          trace in bounded time slices.
//
// A TraceSourceSet is the per-dataset factory: analyze_dataset's thread-
// pool jobs each open() their own source, so per-trace streams never share
// state and results stay bit-identical for every thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/anomaly.h"
#include "net/packet.h"
#include "pcap/trace.h"

namespace entrace {

// Zero-copy view of one captured packet — the unit of batched ingest.
// `data` aliases storage owned by the source and stays valid only until
// the next next_batch()/next() call on that source.
struct PacketView {
  double ts = 0.0;
  std::uint32_t wire_len = 0;
  std::span<const std::uint8_t> data;
  // Originating sub-source for multi-trace streams: MergedPacketStream sets
  // it to the merged source's index so a consumer (the incremental
  // analyzer's per-trace demux) can attribute each packet without a side
  // channel.  Single-trace sources leave it 0.
  std::uint32_t source = 0;
};

// Trace-level metadata a source knows before the first packet is pulled.
// File-backed sources that cannot know the capture window up front leave
// start_ts/duration at 0.
struct TraceMeta {
  std::string name;
  int subnet_id = -1;
  std::uint32_t snaplen = 1500;
  double start_ts = 0.0;
  double duration = 0.0;
};

// Ingest volume a source has delivered so far — the telemetry ground truth
// for `source.*` metrics.  Maintained by PacketSource::next() itself so
// every implementation (memory, pcap file, synthetic) self-counts without
// duplicated bookkeeping.
struct SourceStats {
  std::uint64_t packets = 0;
  std::uint64_t captured_bytes = 0;  // sum of data.size() after snaplen clip
  std::uint64_t wire_bytes = 0;      // sum of original on-the-wire lengths
};

class PacketSource {
 public:
  virtual ~PacketSource();

  virtual const TraceMeta& meta() const = 0;

  // Next packet, or nullptr at end of stream.  The pointee is owned by the
  // source and stays valid only until the next call to next().
  // Non-virtual template method: counts the packet into stats(), then
  // returns pull()'s pointer unchanged.
  const RawPacket* next() {
    const RawPacket* pkt = pull();
    if (pkt != nullptr) {
      ++stats_.packets;
      stats_.captured_bytes += pkt->data.size();
      stats_.wire_bytes += pkt->wire_len;
    }
    return pkt;
  }

  // Batched ingest: fill up to n views, returning the count (0 = end of
  // stream).  Views stay valid until the next next_batch()/next() call on
  // this source.  Sources may return short batches at internal buffer
  // boundaries (slice refills, merged-stream head exhaustion) — a short
  // batch is NOT end-of-stream; only 0 is.  This is the primary hot-path
  // API: one virtual dispatch and one stats update per batch instead of
  // per packet.
  std::size_t next_batch(PacketView* out, std::size_t n) {
    const std::size_t got = pull_batch(out, n);
    std::uint64_t captured = 0, wire = 0;
    for (std::size_t i = 0; i < got; ++i) {
      captured += out[i].data.size();
      wire += out[i].wire_len;
    }
    stats_.packets += got;
    stats_.captured_bytes += captured;
    stats_.wire_bytes += wire;
    return got;
  }

  // Volume delivered so far; complete once next() has returned nullptr.
  const SourceStats& stats() const { return stats_; }

  // Source-layer anomalies (pcap record damage, salvaged truncations)
  // accumulated so far; complete once next() has returned nullptr.
  virtual const AnomalyCounts& anomalies() const = 0;

 protected:
  // Implementation hook with the same ownership contract as next().
  virtual const RawPacket* pull() = 0;

  // Batch hook.  The default adapter loops pull(), copying each packet
  // into an owned buffer because pull()'s pointee dies on the next pull()
  // — subclasses that own stable storage override this with a real
  // (copy-free) batch fill.
  virtual std::size_t pull_batch(PacketView* out, std::size_t n) {
    fallback_batch_.clear();
    fallback_batch_.reserve(n);
    while (fallback_batch_.size() < n) {
      const RawPacket* pkt = pull();
      if (pkt == nullptr) break;
      fallback_batch_.push_back(*pkt);
    }
    for (std::size_t i = 0; i < fallback_batch_.size(); ++i) {
      const RawPacket& p = fallback_batch_[i];
      out[i] = PacketView{p.ts, p.wire_len, p.data};
    }
    return fallback_batch_.size();
  }

 private:
  SourceStats stats_;
  std::vector<RawPacket> fallback_batch_;
};

// Factory of per-trace sources for one dataset.  open() may be called
// concurrently from different threads for different indices (each
// analyze_dataset job opens its own trace), so implementations must not
// mutate shared state in open().
class TraceSourceSet {
 public:
  virtual ~TraceSourceSet();

  virtual const std::string& dataset_name() const = 0;
  virtual std::size_t size() const = 0;
  virtual std::unique_ptr<PacketSource> open(std::size_t index) const = 0;
};

// ---- in-memory adapters -----------------------------------------------------

// Streams an existing Trace without copying packets; the Trace must outlive
// the source.
class MemoryTraceSource final : public PacketSource {
 public:
  explicit MemoryTraceSource(const Trace& trace);

  const TraceMeta& meta() const override { return meta_; }
  const AnomalyCounts& anomalies() const override { return trace_->file_anomalies; }

 protected:
  const RawPacket* pull() override {
    return pos_ < trace_->packets.size() ? &trace_->packets[pos_++] : nullptr;
  }

  // Real batch fill: views alias the Trace's own packet storage.
  std::size_t pull_batch(PacketView* out, std::size_t n) override {
    const std::vector<RawPacket>& pkts = trace_->packets;
    std::size_t i = 0;
    for (; i < n && pos_ < pkts.size(); ++i, ++pos_) {
      const RawPacket& p = pkts[pos_];
      out[i] = PacketView{p.ts, p.wire_len, p.data};
    }
    return i;
  }

 private:
  const Trace* trace_;
  TraceMeta meta_;
  std::size_t pos_ = 0;
};

// Adapts a materialized TraceSet; the TraceSet must outlive the set and
// every source opened from it.
class MemoryTraceSourceSet final : public TraceSourceSet {
 public:
  explicit MemoryTraceSourceSet(const TraceSet& traces) : traces_(&traces) {}

  const std::string& dataset_name() const override { return traces_->dataset_name; }
  std::size_t size() const override { return traces_->traces.size(); }
  std::unique_ptr<PacketSource> open(std::size_t index) const override;

 private:
  const TraceSet* traces_;
};

// ---- pcap files -------------------------------------------------------------

// Streams a capture file through PcapReader's recoverable mode: corrupt
// trailing records are salvaged/skipped and counted in anomalies(), and
// captured bytes beyond the file's declared snaplen are clipped inline.
// Throws std::runtime_error when the file cannot be opened or its global
// header is malformed (same message as PcapReader).
class PcapFileSource final : public PacketSource {
 public:
  explicit PcapFileSource(const std::string& path, std::string name = "",
                          int subnet_id = -1);
  ~PcapFileSource() override;

  const TraceMeta& meta() const override { return meta_; }
  const AnomalyCounts& anomalies() const override;

 protected:
  const RawPacket* pull() override;
  // Reads up to n records into an owned per-batch buffer (one read loop,
  // no per-packet virtual dispatch from the analyzer side).
  std::size_t pull_batch(PacketView* out, std::size_t n) override;

 private:
  std::unique_ptr<class PcapReader> reader_;
  TraceMeta meta_;
  RawPacket current_;
  std::vector<RawPacket> batch_;
};

// One file of a pcap-backed dataset.
struct PcapTraceSpec {
  std::string path;
  std::string name;     // defaults to path when empty
  int subnet_id = -1;
};

class PcapFileSourceSet final : public TraceSourceSet {
 public:
  PcapFileSourceSet(std::string dataset_name, std::vector<PcapTraceSpec> files)
      : dataset_name_(std::move(dataset_name)), files_(std::move(files)) {}

  const std::string& dataset_name() const override { return dataset_name_; }
  std::size_t size() const override { return files_.size(); }
  std::unique_ptr<PacketSource> open(std::size_t index) const override;

 private:
  std::string dataset_name_;
  std::vector<PcapTraceSpec> files_;
};

// ---- k-way timestamp merge --------------------------------------------------

// Streams the union of several PacketSources in global timestamp order
// (ties broken by source index, matching the old TraceSet::merged()
// stable sort) while holding only one buffered batch per source in memory.
// Precondition: each source yields nondecreasing timestamps, which holds
// for generated traces (sorted at emission) and normal captures.
//
// A PacketSource itself, so it composes with any source consumer — the
// paced replay wrapper (pcap/replay.h) and the daemon's ingest loop run on
// the same next_batch() contract as single-trace analysis.  pull_batch is
// the real k-way merge at batch granularity (no per-packet virtual call);
// each view's `source` field carries the originating sub-source index so a
// demuxing consumer can attribute packets per trace.  The scalar pull()
// path returns RawPackets, which carry no attribution — multi-trace
// consumers must use next_batch().  Do not mix next() and next_batch() on
// the same stream.
class MergedPacketStream final : public PacketSource {
 public:
  explicit MergedPacketStream(std::vector<std::unique_ptr<PacketSource>> sources);

  // Synthesized metadata: name "merged", snaplen = max over sub-sources,
  // start_ts = min, duration spanning all sub-source windows.
  const TraceMeta& meta() const override { return meta_; }

  // Aggregated source-layer anomalies across every sub-source (recomputed
  // per call; complete once the stream is drained).
  const AnomalyCounts& anomalies() const override;

  // Sub-source access for per-trace accounting (stats / anomalies of one
  // constituent trace).
  std::size_t source_count() const { return sources_.size(); }
  const PacketSource& source(std::size_t i) const { return *sources_[i]; }

 protected:
  // Next packet in merged order, or nullptr when every source is drained.
  // The pointee stays valid until the next call.
  const RawPacket* pull() override;

  // Batched merge: each source keeps a buffered batch of heads, and the
  // merge pops the global (ts, source index) minimum into `out`.  When a
  // source's buffer runs dry mid-batch the call returns short (refilling
  // would invalidate views already handed out); 0 means fully drained.
  // Yields the exact packet sequence pull() yields.
  std::size_t pull_batch(PacketView* out, std::size_t n) override;

 private:
  struct Head {
    const RawPacket* pkt;
    std::size_t index;  // source index; the tie-break for equal timestamps
  };
  static bool later(const Head& a, const Head& b) {
    return a.pkt->ts > b.pkt->ts || (a.pkt->ts == b.pkt->ts && a.index > b.index);
  }

  std::vector<std::unique_ptr<PacketSource>> sources_;
  std::vector<Head> heap_;          // min-heap on (ts, source index)
  std::size_t pending_ = SIZE_MAX;  // source to advance on the next call

  // next_batch() state: one buffered batch of views per source.
  struct SourceBuf {
    std::vector<PacketView> views;
    std::size_t pos = 0;
    bool eof = false;
  };
  std::vector<SourceBuf> bufs_;
  // The first pull decides which merge engine owns the sub-sources (the
  // heap of scalar heads or the per-source view buffers); priming happens
  // lazily there so neither mode consumes packets the other would miss.
  enum class Mode : std::uint8_t { kNone, kScalar, kBatch };
  Mode mode_ = Mode::kNone;

  TraceMeta meta_;
  mutable AnomalyCounts merged_anomalies_;
};

// Convenience: a merged stream over the traces of an in-memory TraceSet
// (each trace wrapped in a MemoryTraceSource; the set must outlive it).
MergedPacketStream merged_stream(const TraceSet& traces);

}  // namespace entrace
