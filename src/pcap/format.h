// Constants of the classic libpcap capture-file format (the format the
// LBNL traces were distributed in).  We implement the format directly —
// no libpcap dependency — supporting both byte orders on read and
// microsecond timestamps.
#pragma once

#include <cstdint>

namespace entrace::pcapfmt {

inline constexpr std::uint32_t kMagicUsec = 0xA1B2C3D4;     // native order
inline constexpr std::uint32_t kMagicUsecSwap = 0xD4C3B2A1;  // swapped order
inline constexpr std::uint16_t kVersionMajor = 2;
inline constexpr std::uint16_t kVersionMinor = 4;
inline constexpr std::uint32_t kLinkTypeEthernet = 1;

inline constexpr std::size_t kGlobalHeaderSize = 24;
inline constexpr std::size_t kRecordHeaderSize = 16;

}  // namespace entrace::pcapfmt
