// Traces and trace sets.
//
// The paper's datasets are collections of per-subnet traces: the tracing
// host rotated through the 18-22 subnets attached to each router, capturing
// each for 10 minutes (D0) or an hour (D1-D4), once or twice per tap.
// A Trace models one such capture (one subnet, one capture window); a
// TraceSet is a whole dataset (D0..D4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/anomaly.h"
#include "net/packet.h"

namespace entrace {

struct Trace {
  std::string name;        // e.g. "D3-subnet07"
  int subnet_id = -1;      // index of the monitored subnet
  std::uint32_t snaplen = 1500;
  double start_ts = 0.0;   // capture window start (trace epoch seconds)
  double duration = 0.0;   // capture window length
  std::vector<RawPacket> packets;
  // pcap-record-layer anomalies observed while loading this trace from a
  // file (empty for generated traces).
  AnomalyCounts file_anomalies;

  std::uint64_t total_wire_bytes() const;
  // Apply snaplen truncation in place (models the capture filter; the
  // generator emits full frames and the tap snaps them).
  void apply_snaplen();

  // Round-trip through the pcap file format.
  void save(const std::string& path) const;
  static Trace load(const std::string& path, const std::string& name = "", int subnet_id = -1);

  // Non-throwing load in the reader's recoverable mode: corrupt trailing
  // records are salvaged/skipped and counted in file_anomalies.  Returns
  // nullopt and fills *error when the file itself cannot be opened or has a
  // malformed global header.
  static std::optional<Trace> try_load(const std::string& path, const std::string& name = "",
                                       int subnet_id = -1, std::string* error = nullptr);
};

struct TraceSet {
  std::string dataset_name;  // "D0".."D4"
  std::vector<Trace> traces;

  std::uint64_t total_packets() const;
  std::uint64_t total_wire_bytes() const;

  // The paper's per-dataset aggregate view (all traces merged into
  // timestamp order) is a streaming k-way merge now: see merged_stream()
  // in pcap/packet_source.h.
};

}  // namespace entrace
