#include "pcap/trace.h"

#include <utility>

#include "pcap/reader.h"
#include "pcap/writer.h"

namespace entrace {

std::uint64_t Trace::total_wire_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : packets) total += p.wire_len;
  return total;
}

void Trace::apply_snaplen() {
  for (auto& p : packets) {
    if (p.data.size() > snaplen) p.data.resize(snaplen);
  }
}

void Trace::save(const std::string& path) const {
  PcapWriter writer(path, snaplen);
  for (const auto& p : packets) writer.write(p);
}

namespace {

Trace drain_reader(PcapReader& reader, const std::string& path, const std::string& name,
                   int subnet_id) {
  Trace t;
  t.name = name.empty() ? path : name;
  t.subnet_id = subnet_id;
  t.snaplen = reader.snaplen();
  while (auto pkt = reader.next()) t.packets.push_back(std::move(*pkt));
  t.file_anomalies = reader.anomalies();
  if (!t.packets.empty()) {
    t.start_ts = t.packets.front().ts;
    t.duration = t.packets.back().ts - t.packets.front().ts;
  }
  return t;
}

}  // namespace

Trace Trace::load(const std::string& path, const std::string& name, int subnet_id) {
  PcapReader reader(path);
  return drain_reader(reader, path, name, subnet_id);
}

std::optional<Trace> Trace::try_load(const std::string& path, const std::string& name,
                                     int subnet_id, std::string* error) {
  auto reader = PcapReader::open(path, error);
  if (!reader) return std::nullopt;
  return drain_reader(*reader, path, name, subnet_id);
}

std::uint64_t TraceSet::total_packets() const {
  std::uint64_t total = 0;
  for (const auto& t : traces) total += t.packets.size();
  return total;
}

std::uint64_t TraceSet::total_wire_bytes() const {
  std::uint64_t total = 0;
  for (const auto& t : traces) total += t.total_wire_bytes();
  return total;
}

}  // namespace entrace
