// pcap capture-file reader; handles both byte orders.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "net/packet.h"

namespace entrace {

class PcapReader {
 public:
  // Throws std::runtime_error on open failure or bad magic.
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  // Next packet, or nullopt at end of file.  Truncated trailing records
  // are treated as EOF (as tcpdump does).
  std::optional<RawPacket> next();

  std::uint32_t snaplen() const { return snaplen_; }
  std::uint32_t link_type() const { return link_type_; }

 private:
  std::uint32_t read_u32(const std::uint8_t* p) const;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  bool swapped_ = false;
  std::uint32_t snaplen_ = 0;
  std::uint32_t link_type_ = 0;
};

}  // namespace entrace
