// pcap capture-file reader; handles both byte orders.
//
// Two error-handling modes:
//  - The throwing constructor (legacy): std::runtime_error on open failure
//    or a malformed global header; truncated trailing records are dropped
//    and treated as EOF (as tcpdump does).
//  - PcapReader::open(): returns nullptr + a descriptive error instead of
//    throwing, and next() runs in recoverable mode — a record whose body is
//    cut off by EOF is salvaged (the partial bytes are returned as a
//    snap-style truncated capture) and counted in anomalies().
// In both modes every corrupt-record condition is classified into
// anomalies() so callers can account for what the file actually contained.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "net/anomaly.h"
#include "net/packet.h"

namespace entrace {

class PcapReader {
 public:
  // Throws std::runtime_error on open failure or a bad global header.
  // Error messages name the file, the byte offset, and (for bad magic) the
  // observed magic value.
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  // Non-throwing factory: returns nullptr and fills *error on failure.
  // The returned reader salvages partially captured trailing records
  // instead of dropping them.
  static std::unique_ptr<PcapReader> open(const std::string& path, std::string* error);

  // Next packet, or nullopt at end of file.  Corrupt-record conditions
  // (short record header, truncated body, absurd caplen) are counted in
  // anomalies(); see the class comment for per-mode recovery behavior.
  std::optional<RawPacket> next();

  std::uint32_t snaplen() const { return snaplen_; }
  std::uint32_t link_type() const { return link_type_; }

  // File-level anomalies observed so far (pcap record layer only).
  const AnomalyCounts& anomalies() const { return anomalies_; }

 private:
  PcapReader() = default;  // used by open()

  // Opens and validates the global header; returns an error message or "".
  std::string init(const std::string& path);
  std::uint32_t read_u32(const std::uint8_t* p) const;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> file_;
  bool swapped_ = false;
  bool recover_ = false;
  std::uint32_t snaplen_ = 0;
  std::uint32_t link_type_ = 0;
  std::uint64_t offset_ = 0;  // file offset of the next unread byte
  AnomalyCounts anomalies_;
};

}  // namespace entrace
