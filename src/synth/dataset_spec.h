// DatasetSpec: everything that distinguishes the five paper datasets
// (D0-D4) — capture parameters (Table 1) and per-application traffic
// intensities calibrated against the paper's published tables.
//
// Intensity knobs are expressed at *paper magnitude* — expected counts per
// monitored-subnet trace at the paper's traffic volume — and are multiplied
// by `scale` at generation time.  Fractions (failure rates, request mixes)
// are scale-free.  Message/object sizes are NOT scaled (so size CDFs match
// the paper); volume scales through session counts.  See DESIGN.md §6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace entrace {

struct WebKnobs {
  double browse_sessions = 900;   // user browsing sessions per trace
  double wan_server_ratio = 0.72; // fraction of browse sessions to WAN servers
  double cond_get_ent = 0.40;     // conditional-GET fraction, internal
  double cond_get_wan = 0.16;     // conditional-GET fraction, WAN
  double reject_rate_ent = 0.15;  // internal connection failure (server RST)
  double reject_rate_wan = 0.02;
  // Automated clients run at absolute magnitude (their own schedule),
  // like the site scanners — calibrated against Table 6 at default scale.
  double scanner_sessions = 0.4;  // HTTP scanner sweeps (Table 6 "scan1")
  double google_sessions = 0.3;   // crawler sessions (google1/google2)
  double google1_share = 0.5;     // share of crawler work by Googlebot/1.x
  double ifolder_sessions = 0.15;
  double https_sessions = 350;
  double https_retry_pairs = 0.25;  // pairs exhibiting ~800 short SSL conns
  double inbound_sessions = 1200;   // WAN clients on the public web servers
};

struct EmailKnobs {
  double smtp_client_sessions = 60;   // per-trace client-side SMTP
  double server_subnet_boost = 110.0;  // multiplier when mail subnet monitored
  double smtp_wan_frac = 0.5;         // server-side SMTP crossing the border
  double smtp_wan_fail = 0.15;        // WAN failure rate at the busy MXs
  double imap_sessions = 80;
  double imap_wan_frac = 0.2;
  double pop_ldap_sessions = 25;
};

struct NameKnobs {
  double dns_client_queries = 4500;  // per-trace queries from local clients
  double dns_server_boost = 25.0;    // when a main DNS server is monitored
  double smtp_lookup_queries = 14000;  // queries by SMTP servers (top clients)
  double frac_a = 0.58, frac_aaaa = 0.21, frac_ptr = 0.14, frac_mx = 0.05;
  double nxdomain_rate = 0.16;
  double nbns_requests = 4500;
  double nbns_query_frac = 0.83, nbns_refresh_frac = 0.135;
  double nbns_fail_rate = 0.43;   // stale-name failures on distinct queries
  double srvloc_sessions = 1300;  // multicast SrvLoc (drives fan-out tail)
};

struct WindowsKnobs {
  double cifs_sessions = 120;       // client sessions (139/445 parallel dial)
  double cifs_only_139_frac = 0.6;  // file servers listening only on 139
  double nbss_negative_frac = 0.05;  // NBSS handshake refusals
  double unanswered_frac = 0.12;
  double epm_sessions = 40;
  // DCE/RPC request mix: netlogon/lsarpc/spoolss-write/spoolss-other/other.
  double w_netlogon = 0.05, w_lsarpc = 0.03, w_spoolss_write = 0.55,
         w_spoolss_other = 0.25, w_other = 0.12;
  double auth_server_boost = 20.0;   // when the auth server's subnet is on
  double print_server_boost = 12.0;  // when the print server's subnet is on
  double file_share_frac = 0.35;     // CIFS sessions doing file I/O
  double lanman_frac = 0.08;
  double dgm_broadcasts = 120;
};

struct NetFileKnobs {
  double nfs_pairs = 4;              // active NFS host pairs per trace
  double nfs_requests_mean = 5000;   // requests per pair (heavy tail above)
  double nfs_udp_frac = 0.6;         // fraction of pairs using UDP
  // request mix: read/write/getattr/lookup/access
  double nfs_read = 0.60, nfs_write = 0.12, nfs_getattr = 0.18, nfs_lookup = 0.07,
         nfs_access = 0.02;
  double nfs_fail_rate = 0.10;
  double ncp_sessions = 100;
  double ncp_keepalive_only_frac = 0.6;
  double ncp_requests_mean = 330;    // per active session (unscaled)
  double ncp_read = 0.42, ncp_write = 0.05, ncp_fdinfo = 0.25, ncp_openclose = 0.08,
         ncp_size = 0.07, ncp_search = 0.10, ncp_nds = 0.015;
  double ncp_fail_rate = 0.05;
  double ncp_reject_rate = 0.06;
};

struct BackupKnobs {
  double veritas_ctrl_conns = 10;
  double veritas_data_conns = 2.75;
  double veritas_data_mb = 19;     // mean per data connection (heavy tail)
  double dantz_conns = 8;
  double dantz_mb = 11;
  double dantz_bidir_frac = 0.4;
  double connected_conns = 0.9;
  double connected_mb = 2.0;
  double lossy_trace_frac = 0.05;  // traces where backup crosses a lossy path
};

struct OtherKnobs {
  double ssh_sessions = 90;
  double ssh_bulk_frac = 0.2;  // scp-style transfers inside SSH
  double telnet_sessions = 10;
  double ftp_sessions = 12;
  double ftp_mb = 9;
  double hpss_sessions = 3;
  double hpss_mb = 45;
  double rtsp_sessions = 15;
  double realstream_sessions = 12;
  double mcast_video_sessions = 2;
  double mcast_video_mb = 28;      // multicast streaming is 5-10% of bytes
  double ntp_hosts = 250;
  double dhcp_events = 60;
  double snmp_polls = 200;
  double sap_announcers = 1300;    // SAP multicast (5-10% of connections)
  double nav_pings = 150;
  double print_jobs = 35;          // LPD/IPP
  double sql_sessions = 30;
  double misc_tcp_sessions = 350;  // Steltor/MetaSys etc.
  double other_udp_flows = 3600;
  double other_tcp_flows = 250;
  double icmp_echo_pairs = 1100;
  // Absolute: Internet background radiation — external sources probing
  // internal hosts in random order (evading the §3 ordered-sweep
  // heuristic), the main contributor to the wan->ent flow class of §4.
  double background_radiation = 60;
  double inbound_ssh = 3;  // absolute: off-site staff logging in
};

struct BackgroundKnobs {
  double arp_per_trace = 2300;
  double ipx_per_trace = 28000;  // broadcast IPX dominates non-IP
  double other_l3_per_trace = 6500;
  double igmp_flows = 20;
  double rare_ip_protos = 60;    // ESP/GRE/PIM/224 packets
};

// Scanner intensities are absolute (not multiplied by scale): the site's
// scanners sweep on their own schedule.
struct ScannerKnobs {
  double internal_sweeps = 0.5;   // per trace (2 site scanners rotate)
  int sweep_targets = 120;
  double external_icmp_scans = 0.8;
  int external_targets = 70;
  double scan_tcp_frac = 0.45;    // internal scanner mixes TCP SYN probes
};

struct DatasetSpec {
  std::string name = "D0";
  int num_subnets = 22;
  int traces_per_subnet = 1;
  double trace_duration = 600.0;
  std::uint32_t snaplen = 1500;
  std::uint64_t seed = 0xD0;
  double scale = 0.02;
  bool imap_secure = true;  // false for D0 (pre-policy-change IMAP4)
  // Subnet ids (into EnterpriseModel) monitored by this dataset.
  std::vector<int> monitored_subnets;

  WebKnobs web;
  EmailKnobs email;
  NameKnobs names;
  WindowsKnobs windows;
  NetFileKnobs netfile;
  BackupKnobs backup;
  OtherKnobs other;
  BackgroundKnobs background;
  ScannerKnobs scanner;

  bool payload_analysis() const { return snaplen >= 200; }
};

// The five paper datasets, calibrated to Table 1 and the §3-§6 results.
// `scale` multiplies traffic volume; 1.0 would approximate the paper's
// packet counts (tens of millions per dataset) — the default targets a
// laptop-friendly ~1/50 of that.
DatasetSpec dataset_d0(double scale = 0.02);
DatasetSpec dataset_d1(double scale = 0.02);
DatasetSpec dataset_d2(double scale = 0.02);
DatasetSpec dataset_d3(double scale = 0.02);
DatasetSpec dataset_d4(double scale = 0.02);
std::vector<DatasetSpec> all_datasets(double scale = 0.02);
DatasetSpec dataset_by_name(const std::string& name, double scale = 0.02);

}  // namespace entrace
