// The remaining application categories of Table 4: interactive (SSH with
// keepalives and occasional bulk copies, telnet/rlogin/X11), bulk (FTP,
// HPSS), streaming (RTSP/RealStream unicast plus the multicast video that
// exceeds unicast streaming volume), net-mgnt (DHCP/NTP/SNMP/NAV/SAP/
// ident), misc (printing, SQL, Steltor, MetaSys) and the other-tcp /
// other-udp catch-alls.
#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {
namespace {

std::uint64_t mb(double v) { return static_cast<std::uint64_t>(v * 1024 * 1024); }

void interactive(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const OtherKnobs& k = ctx.spec().other;
  for (double t : ctx.arrivals(k.ssh_sessions)) {
    const HostRef client = ctx.local_host();
    const bool wan = rng.bernoulli(0.35);
    const HostRef server = wan ? ctx.external() : ctx.other_internal();
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kSsh, t,
                       wan ? ctx.wan_tcp() : ctx.lan_tcp());
    tcp.connect();
    tcp.client_message(filler_span(22));   // banner
    tcp.server_message(filler_span(22));
    tcp.client_message(filler_span(640));  // kex
    tcp.server_message(filler_span(760));
    if (rng.bernoulli(k.ssh_bulk_frac)) {
      // scp: interactive login used to copy files (§3's observation that
      // "interactive" includes bulk transfer via SSH).
      tcp.client_transfer(mb(rng.pareto(1.3, 0.5, 40.0)));
    } else {
      const int keystrokes = 20 + static_cast<int>(rng.exponential(150.0));
      for (int i = 0; i < keystrokes && tcp.now() < ctx.t1(); ++i) {
        tcp.client_message(filler_span(36));  // one encrypted keystroke
        tcp.server_message(filler_span(36 + rng.uniform_int(0, 120)));
        tcp.advance(rng.exponential(0.8));
      }
      if (rng.bernoulli(0.3)) tcp.keepalives(3, 30.0);  // SSH keepalives (§6)
    }
    tcp.close();
  }
  // Off-site staff logging in from home (inbound interactive).
  for (double t : ctx.arrivals_abs(k.inbound_ssh)) {
    const HostRef client = ctx.external();
    const HostRef server = ctx.local_host();
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kSsh, t,
                       ctx.wan_tcp());
    tcp.connect();
    tcp.client_message(filler_span(22));
    tcp.server_message(filler_span(22));
    tcp.client_message(filler_span(640));
    tcp.server_message(filler_span(760));
    const int keystrokes = 20 + static_cast<int>(rng.exponential(80.0));
    for (int i = 0; i < keystrokes && tcp.now() < ctx.t1(); ++i) {
      tcp.client_message(filler_span(36));
      tcp.server_message(filler_span(36 + rng.uniform_int(0, 200)));
      tcp.advance(rng.exponential(1.0));
    }
    tcp.close();
  }
  for (double t : ctx.arrivals(k.telnet_sessions)) {
    const HostRef client = ctx.local_host();
    const std::uint16_t port = rng.bernoulli(0.5)   ? ports::kTelnet
                               : rng.bernoulli(0.5) ? ports::kRlogin
                                                    : ports::kX11;
    TcpFlowBuilder tcp(ctx.sink(), rng, client, ctx.other_internal(), ctx.ephemeral_port(),
                       port, t, ctx.lan_tcp());
    tcp.connect();
    const int lines = 10 + static_cast<int>(rng.exponential(60.0));
    for (int i = 0; i < lines && tcp.now() < ctx.t1(); ++i) {
      tcp.client_message(filler_span(1 + rng.uniform_int(0, 20)));
      tcp.server_message(filler_span(10 + rng.uniform_int(0, 400)));
      tcp.advance(rng.exponential(1.0));
    }
    tcp.close();
  }
}

void bulk(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const OtherKnobs& k = ctx.spec().other;
  for (double t : ctx.arrivals(k.ftp_sessions)) {
    const HostRef client = ctx.local_host();
    const bool wan = rng.bernoulli(0.5);
    const HostRef server = wan ? ctx.external() : ctx.model().ftp_server();
    if (!wan && ctx.model().subnet_of(server.ip) == ctx.subnet()) continue;
    // Control connection.
    TcpFlowBuilder ctrl(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kFtp, t,
                        wan ? ctx.wan_tcp() : ctx.lan_tcp());
    ctrl.connect();
    for (int i = 0; i < 6; ++i) {
      ctrl.client_message(filler_span(12 + rng.uniform_int(0, 30)));
      ctrl.server_message(filler_span(40 + rng.uniform_int(0, 60)));
      ctrl.advance(rng.exponential(0.5));
    }
    // Data connection from server port 20.
    TcpFlowBuilder data(ctx.sink(), rng, server, client, ports::kFtpData,
                        ctx.ephemeral_port(), ctrl.now(), wan ? ctx.wan_tcp() : ctx.lan_tcp());
    data.connect();
    data.client_transfer(mb(k.ftp_mb * rng.pareto(1.2, 0.1, 20.0)));
    data.close();
    ctrl.close();
  }
  for (double t : ctx.arrivals(k.hpss_sessions)) {
    const HostRef client = ctx.local_host();
    const HostRef server = ctx.model().hpss_server();
    if (ctx.model().subnet_of(server.ip) == ctx.subnet()) continue;
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kHpss, t,
                       ctx.lan_tcp());
    tcp.connect();
    if (rng.bernoulli(0.5)) {
      tcp.server_transfer(mb(k.hpss_mb * rng.pareto(1.2, 0.2, 12.0)));
    } else {
      tcp.client_transfer(mb(k.hpss_mb * rng.pareto(1.2, 0.2, 12.0)));
    }
    tcp.close();
  }
}

void streaming(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const OtherKnobs& k = ctx.spec().other;
  for (double t : ctx.arrivals(k.rtsp_sessions + k.realstream_sessions)) {
    const HostRef client = ctx.local_host();
    const bool rtsp = rng.bernoulli(k.rtsp_sessions / (k.rtsp_sessions + k.realstream_sessions));
    const bool wan = rng.bernoulli(0.4);
    const HostRef server = wan ? ctx.external() : ctx.other_internal();
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(),
                       rtsp ? ports::kRtsp : ports::kRealStream, t,
                       wan ? ctx.wan_tcp() : ctx.lan_tcp());
    tcp.connect();
    tcp.client_message(filler_span(180));
    tcp.server_transfer(mb(rng.pareto(1.4, 0.2, 6.0)));
    tcp.close();
  }
  // Multicast video: few flows, more bytes than unicast streaming (§3).
  // About one stream per trace (absolute), with the per-stream volume
  // scaled — keeps the 5-10% byte share smooth across datasets instead of
  // all-or-nothing lumps at small scales.
  // Externally sourced multicast (MBone-style sessions): 4-7% of flows in
  // the paper's origin breakdown come from off-site multicast sources.
  for (double t : ctx.arrivals_abs(0.9)) {
    const HostRef src = ctx.external();
    const Ipv4Address group = EnterpriseModel::multicast_group(
        static_cast<std::uint32_t>(16 + ctx.rng().next_u64() % 8));
    double ts = t;
    const int pkts = 30 + static_cast<int>(ctx.rng().exponential(200.0));
    for (int i = 0; i < pkts && ts < ctx.t1(); ++i) {
      send_udp_multicast(ctx.sink(), src, group, ports::kSap, ports::kSap, ts,
                         200 + ctx.rng().uniform_int(0, 600));
      ts += ctx.rng().exponential(3.0);
    }
  }

  const double mcast_streams = std::min(1.5, k.mcast_video_sessions);
  for (double t : ctx.arrivals_abs(mcast_streams)) {
    const HostRef src = ctx.local_host();
    const Ipv4Address group = EnterpriseModel::multicast_group(ctx.rng().next_u64() % 16);
    // Total expected multicast volume per trace = sessions * mb * scale,
    // spread over ~mcast_streams streams.
    std::uint64_t remaining =
        mb(k.mcast_video_sessions * k.mcast_video_mb * ctx.spec().scale / mcast_streams *
           ctx.rng().uniform(0.5, 1.5));
    double ts = t;
    while (remaining > 0 && ts < ctx.t1()) {
      const std::size_t pkt = 1344;
      send_udp_multicast(ctx.sink(), src, group, ports::kIpVideo, ports::kIpVideo, ts, pkt);
      remaining -= std::min<std::uint64_t>(remaining, pkt);
      ts += 0.0009 + rng.exponential(0.0002);  // ~10 Mbps stream
    }
  }
}

void net_mgnt(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const OtherKnobs& k = ctx.spec().other;
  const EnterpriseModel& m = ctx.model();
  const HostRef ntp_server = EnterpriseModel::ref(m.subnet(16).host(5));
  for (double t : ctx.arrivals(k.ntp_hosts)) {
    const HostRef client = ctx.local_host();
    if (m.subnet_of(ntp_server.ip) == ctx.subnet()) continue;
    const std::uint16_t sport = ctx.ephemeral_port();
    send_udp(ctx.sink(), client, ntp_server, sport, ports::kNtp, t, filler_span(48));
    send_udp(ctx.sink(), ntp_server, client, ports::kNtp, sport, t + 0.0008,
             filler_span(48));
  }
  for (double t : ctx.arrivals(k.dhcp_events)) {
    const HostRef client = ctx.local_host();
    const HostRef server = EnterpriseModel::ref(m.subnet(16).host(6));
    send_udp(ctx.sink(), client, server, ports::kDhcpClient, ports::kDhcpServer, t,
             filler_span(300));
    send_udp(ctx.sink(), server, client, ports::kDhcpServer, ports::kDhcpClient, t + 0.002,
             filler_span(300));
  }
  const HostRef snmp_mgr = EnterpriseModel::ref(m.subnet(16).host(7));
  for (double t : ctx.arrivals(k.snmp_polls)) {
    const HostRef agent = ctx.local_host();
    const std::uint16_t sport = ctx.ephemeral_port();
    send_udp(ctx.sink(), snmp_mgr, agent, sport, ports::kSnmp, t, filler_span(80));
    send_udp(ctx.sink(), agent, snmp_mgr, ports::kSnmp, sport, t + 0.001,
             filler_span(140 + rng.uniform_int(0, 400)));
  }
  for (double t : ctx.arrivals(k.nav_pings)) {
    const HostRef client = ctx.local_host();
    const HostRef server = EnterpriseModel::ref(m.subnet(16).host(8));
    const std::uint16_t sport = ctx.ephemeral_port();
    send_udp(ctx.sink(), client, server, sport, ports::kNavPing, t, filler_span(60));
    send_udp(ctx.sink(), server, client, ports::kNavPing, sport, t + 0.001,
             filler_span(60));
  }
  // SAP session announcements: periodic multicast, very stable volume
  // ("a majority of the connections come from periodic probes and
  // announcements", §3).
  for (double t : ctx.arrivals(k.sap_announcers)) {
    send_udp_multicast(ctx.sink(), ctx.local_host(), Ipv4Address(224, 2, 127, 254),
                       ports::kSap, ports::kSap, t, 240 + rng.uniform_int(0, 200));
  }
  // ident lookups toward monitored hosts.
  for (double t : ctx.arrivals(k.snmp_polls / 4)) {
    const HostRef server = ctx.local_host();
    TcpFlowBuilder tcp(ctx.sink(), rng, ctx.other_internal(), server, ctx.ephemeral_port(),
                       ports::kIdent, t, ctx.lan_tcp());
    if (rng.bernoulli(0.4)) {
      tcp.connect_rejected();
    } else {
      tcp.connect();
      tcp.client_message(filler_span(12));
      tcp.server_message(filler_span(40));
      tcp.close();
    }
  }
}

void misc(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const OtherKnobs& k = ctx.spec().other;
  const EnterpriseModel& m = ctx.model();
  for (double t : ctx.arrivals(k.print_jobs)) {
    const HostRef client = ctx.local_host();
    const HostRef server = m.print_server();
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(),
                       rng.bernoulli(0.5) ? ports::kLpd : ports::kIpp, t, ctx.lan_tcp());
    tcp.connect();
    tcp.client_transfer(static_cast<std::uint64_t>(rng.lognormal(11.0, 1.2)));
    tcp.server_message(filler_span(20));
    tcp.close();
  }
  for (double t : ctx.arrivals(k.sql_sessions)) {
    const HostRef client = ctx.local_host();
    const HostRef server = m.sql_server(static_cast<int>(rng.uniform_int(0, 1)));
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(),
                       rng.bernoulli(0.5) ? ports::kOracleSql : ports::kMsSql, t,
                       ctx.lan_tcp());
    tcp.connect();
    const int queries = 2 + static_cast<int>(rng.exponential(15.0));
    for (int i = 0; i < queries && tcp.now() < ctx.t1(); ++i) {
      tcp.client_message(filler_span(90 + rng.uniform_int(0, 400)));
      tcp.server_message(filler_span(200 + rng.uniform_int(0, 8000)));
      tcp.advance(rng.exponential(0.5));
    }
    tcp.close();
  }
  for (double t : ctx.arrivals(k.misc_tcp_sessions)) {
    const HostRef client = ctx.local_host();
    const HostRef server = ctx.other_internal();
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(),
                       rng.bernoulli(0.5) ? ports::kSteltor : ports::kMetaSys, t,
                       ctx.lan_tcp());
    tcp.connect();
    tcp.client_message(filler_span(60 + rng.uniform_int(0, 200)));
    tcp.server_message(filler_span(80 + rng.uniform_int(0, 600)));
    tcp.close();
  }
  // Catch-alls: ephemeral/unregistered ports.
  for (double t : ctx.arrivals(k.other_udp_flows)) {
    const HostRef a = ctx.local_host();
    const bool wan = rng.bernoulli(0.15);
    const HostRef b = wan ? ctx.external() : ctx.other_internal();
    const std::uint16_t sport = ctx.ephemeral_port();
    const std::uint16_t dport = static_cast<std::uint16_t>(10000 + rng.uniform_int(0, 20000));
    const int pkts = 1 + static_cast<int>(rng.exponential(2.0));
    double ts = t;
    for (int i = 0; i < pkts && ts < ctx.t1(); ++i) {
      send_udp(ctx.sink(), a, b, sport, dport, ts, filler_span(40 + rng.uniform_int(0, 400)));
      if (rng.bernoulli(0.5))
        send_udp(ctx.sink(), b, a, dport, sport, ts + 0.001,
                 filler_span(40 + rng.uniform_int(0, 400)));
      ts += rng.exponential(2.0);
    }
  }
  for (double t : ctx.arrivals(k.other_tcp_flows)) {
    const HostRef a = ctx.local_host();
    const bool wan = rng.bernoulli(0.3);
    const HostRef b = wan ? ctx.external() : ctx.other_internal();
    TcpFlowBuilder tcp(ctx.sink(), rng, a, b, ctx.ephemeral_port(),
                       static_cast<std::uint16_t>(20000 + rng.uniform_int(0, 20000)), t,
                       wan ? ctx.wan_tcp() : ctx.lan_tcp());
    if (rng.bernoulli(0.2)) {
      tcp.connect_unanswered(1);
      continue;
    }
    tcp.connect();
    tcp.client_message(filler_span(100 + rng.uniform_int(0, 1000)));
    tcp.server_message(filler_span(100 + rng.uniform_int(0, 5000)));
    tcp.close();
  }
  // ICMP echo (monitoring, diagnostics).
  for (double t : ctx.arrivals(k.icmp_echo_pairs)) {
    const HostRef a = ctx.local_host();
    const bool wan = rng.bernoulli(0.2);
    const HostRef b = wan ? ctx.external() : ctx.other_internal();
    const std::uint16_t id = static_cast<std::uint16_t>(rng.next_u64());
    const int probes = 1 + static_cast<int>(rng.exponential(3.0));
    double ts = t;
    for (int i = 0; i < probes && ts < ctx.t1(); ++i) {
      send_icmp_echo(ctx.sink(), a, b, false, id, static_cast<std::uint16_t>(i), ts);
      send_icmp_echo(ctx.sink(), b, a, true, id, static_cast<std::uint16_t>(i),
                     ts + (wan ? 0.03 : 0.0006));
      ts += 1.0;
    }
  }
}

}  // namespace

void gen_other(GenContext& ctx) {
  interactive(ctx);
  bulk(ctx);
  streaming(ctx);
  net_mgnt(ctx);
  misc(ctx);
}

}  // namespace entrace
