// Web traffic (§5.1.1): user browsing, the three automated-client
// activities of Table 6 (an HTTP scanner, internal Google crawler
// appliances, Novell iFolder), and HTTPS — including the curious
// many-short-connections SSL host pairs the paper observed.
#include <string>

#include "proto/registry.h"
#include "synth/apps.h"
#include "util/strings.h"

namespace entrace {
namespace {

std::vector<std::uint8_t> http_request(const std::string& method, const std::string& uri,
                                       const std::string& host, const std::string& ua,
                                       bool conditional, std::size_t body_len) {
  std::string msg = method + " " + uri + " HTTP/1.1\r\n";
  msg += "Host: " + host + "\r\n";
  msg += "User-Agent: " + ua + "\r\n";
  if (conditional) msg += "If-Modified-Since: Mon, 03 Jan 2005 10:00:00 GMT\r\n";
  if (body_len > 0) msg += "Content-Length: " + std::to_string(body_len) + "\r\n";
  msg += "Accept: */*\r\n\r\n";
  std::vector<std::uint8_t> out(msg.begin(), msg.end());
  const auto body = filler_span(body_len);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> http_response(int status, const std::string& reason,
                                        const std::string& ctype, std::size_t body_len) {
  std::string msg = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  msg += "Server: Apache/1.3.33 (Unix)\r\n";
  if (!ctype.empty()) msg += "Content-Type: " + ctype + "\r\n";
  msg += "Content-Length: " + std::to_string(body_len) + "\r\n\r\n";
  std::vector<std::uint8_t> out(msg.begin(), msg.end());
  const auto body = filler_span(body_len);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

struct ObjectProfile {
  std::string ctype;
  std::size_t size;
};

// Content type and size mix tuned to Table 7 / Figure 4: images dominate
// request counts, application bytes dominate volume.
ObjectProfile sample_object(Rng& rng) {
  switch (rng.weighted({0.22, 0.70, 0.05, 0.03})) {
    case 0:
      return {"text/html", static_cast<std::size_t>(rng.lognormal(8.0, 1.2))};
    case 1:
      return {rng.bernoulli(0.6) ? "image/gif" : "image/jpeg",
              static_cast<std::size_t>(rng.lognormal(7.5, 1.3))};
    case 2: {
      const char* sub = nullptr;
      switch (rng.weighted({0.4, 0.25, 0.2, 0.15})) {
        case 0: sub = "application/javascript"; break;
        case 1: sub = "application/octet-stream"; break;
        case 2: sub = "application/zip"; break;
        default: sub = "application/pdf"; break;
      }
      return {sub, static_cast<std::size_t>(rng.pareto(1.15, 3000, 4.0e7))};
    }
    default:
      return {rng.bernoulli(0.5) ? "audio/mpeg" : "video/mpeg",
              static_cast<std::size_t>(rng.pareto(1.3, 20000, 1.0e7))};
  }
}

void browse_session(GenContext& ctx, double start, const HostRef& client, const HostRef& server,
                    bool wan, const std::string& ua) {
  const WebKnobs& web = ctx.spec().web;
  Rng& rng = ctx.rng();
  TcpOptions opt = wan ? ctx.wan_tcp() : ctx.lan_tcp();
  TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kHttp, start,
                     opt);

  // Connection failures: internal HTTP fails notably more often than WAN
  // (72-92% vs 95-99% success), mostly via server RSTs.
  const double reject = wan ? web.reject_rate_wan : web.reject_rate_ent;
  if (rng.bernoulli(reject)) {
    if (rng.bernoulli(0.8)) {
      tcp.connect_rejected();
    } else {
      tcp.connect_unanswered(2);
    }
    return;
  }
  tcp.connect();

  // Half of web sessions fetch a single object; 10-20% fetch 10+.
  std::size_t objects = 1;
  if (rng.bernoulli(0.5)) {
    objects = 1 + static_cast<std::size_t>(rng.pareto(1.0, 1.0, 40.0));
  }
  const std::string host = wan ? "www" + std::to_string(rng.uniform_int(1, 999)) + ".example.com"
                               : "intranet.lbl.example";
  const double cond_p = wan ? ctx.spec().web.cond_get_wan : ctx.spec().web.cond_get_ent;
  for (std::size_t i = 0; i < objects && tcp.now() < ctx.t1(); ++i) {
    const bool conditional = rng.bernoulli(cond_p);
    const std::string uri = "/site/page" + std::to_string(rng.uniform_int(0, 5000)) +
                            (i == 0 ? ".html" : ".obj");
    tcp.client_message(http_request("GET", uri, host, ua, conditional, 0));
    tcp.advance(opt.rtt / 2);
    if (conditional && rng.bernoulli(0.93)) {
      tcp.server_message(http_response(304, "Not Modified", "", 0));
    } else if (rng.bernoulli(0.02)) {
      tcp.server_message(http_response(404, "Not Found", "text/html", 300));
    } else {
      const ObjectProfile obj = sample_object(rng);
      tcp.server_message(http_response(200, "OK", obj.ctype, obj.size));
    }
    tcp.advance(rng.exponential(1.5));  // user think time between objects
  }
  tcp.close();
}

void scanner_session(GenContext& ctx, double start) {
  // A web vulnerability scanner: many servers probed in random order
  // (so the §3 address-order heuristic does not fire), mostly 404 replies,
  // near-zero bytes (Table 6: scan1 is up to 45% of requests, ~1% of bytes).
  Rng& rng = ctx.rng();
  const HostRef scanner = EnterpriseModel::ref(ctx.model().subnet(13).host(2));
  const int probes = static_cast<int>(rng.uniform(12, 30));
  double t = start;
  for (int i = 0; i < probes && t < ctx.t1(); ++i) {
    // Target a host in the monitored subnet so the tap sees it.
    const HostRef target = ctx.model().host(ctx.subnet(), static_cast<std::uint32_t>(
                                                              rng.uniform_int(0, 150)));
    TcpFlowBuilder tcp(ctx.sink(), rng, scanner, target, ctx.ephemeral_port(), ports::kHttp, t,
                       ctx.lan_tcp());
    if (rng.bernoulli(0.35)) {
      tcp.connect_rejected();
    } else {
      tcp.connect();
      tcp.client_message(http_request("GET", "/cgi-bin/test" + std::to_string(i), "victim",
                                      "SiteScanner/1.0", false, 0));
      tcp.advance(0.001);
      tcp.server_message(http_response(404, "Not Found", "text/html", 180));
      tcp.close();
    }
    t += rng.exponential(0.3);
  }
}

void inbound_web_session(GenContext& ctx, double start) {
  // WAN clients fetching from the site's public web servers.
  Rng& rng = ctx.rng();
  const HostRef client = ctx.external();
  const HostRef server = EnterpriseModel::ref(ctx.model().subnet(ctx.subnet()).host(5));
  browse_session(ctx, start, client, server, true, "Mozilla/4.0 (compatible; Visitor)");
}

void crawler_session(GenContext& ctx, double start, bool v1) {
  // Internal Google search-appliance crawl: huge fan-out across internal
  // servers and the dominant share of internal HTTP bytes (Table 6).
  Rng& rng = ctx.rng();
  const HostRef bot = EnterpriseModel::ref(ctx.model().subnet(14).host(v1 ? 2 : 3));
  const std::string ua = v1 ? "Googlebot/1.0 (gsa)" : "Googlebot/2.1 (gsa)";
  // Crawl a server in the monitored subnet.
  const HostRef server = EnterpriseModel::ref(ctx.model().subnet(ctx.subnet()).host(5));
  TcpFlowBuilder tcp(ctx.sink(), rng, bot, server, ctx.ephemeral_port(), ports::kHttp, start,
                     ctx.lan_tcp());
  tcp.connect();
  const int pages = static_cast<int>(rng.uniform(15, 50));
  for (int i = 0; i < pages && tcp.now() < ctx.t1(); ++i) {
    tcp.client_message(
        http_request("GET", "/doc/item" + std::to_string(i), "crawl-target", ua, false, 0));
    tcp.advance(0.002);
    // Crawlers pull everything, including the large application objects.
    const std::size_t size = static_cast<std::size_t>(rng.pareto(1.1, 5000, 8.0e6));
    tcp.server_message(http_response(200, "OK",
                                     rng.bernoulli(0.7) ? "text/html" : "application/pdf",
                                     size));
    tcp.advance(rng.exponential(0.05));
  }
  tcp.close();
}

void ifolder_session(GenContext& ctx, double start) {
  // Novell iFolder sync over HTTP: POST-heavy, replies uniformly 32,780
  // bytes (the paper's exact observation).
  Rng& rng = ctx.rng();
  const HostRef client = ctx.local_host();
  const HostRef server = EnterpriseModel::ref(ctx.model().subnet(14).host(4));
  if (ctx.model().subnet_of(client.ip) == ctx.model().subnet_of(server.ip)) return;
  TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kHttp, start,
                     ctx.lan_tcp());
  tcp.connect();
  const int ops = static_cast<int>(rng.uniform(3, 12));
  for (int i = 0; i < ops && tcp.now() < ctx.t1(); ++i) {
    const bool post = rng.bernoulli(0.6);
    tcp.client_message(http_request(post ? "POST" : "GET", "/ifolder/sync", "ifolder",
                                    "Novell iFolder/2.0", false,
                                    post ? 1200 + rng.uniform_int(0, 4000) : 0));
    tcp.advance(0.001);
    tcp.server_message(http_response(200, "OK", "application/octet-stream", 32780));
    tcp.advance(rng.exponential(2.0));
  }
  tcp.close();
}

void https_sessions(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const WebKnobs& web = ctx.spec().web;
  for (double t : ctx.arrivals(web.https_sessions)) {
    const HostRef client = ctx.local_host();
    const bool wan = rng.bernoulli(0.5);
    const HostRef server = wan ? ctx.external() : ctx.other_internal();
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kHttps, t,
                       wan ? ctx.wan_tcp() : ctx.lan_tcp());
    tcp.connect();
    // TLS handshake + a pair of application records.
    tcp.client_message(filler_span(180));
    tcp.server_message(filler_span(1500 + rng.uniform_int(0, 2500)));
    tcp.client_message(filler_span(350 + rng.uniform_int(0, 600)));
    tcp.server_message(filler_span(600 + rng.uniform_int(0, 20000)));
    tcp.close();
  }
  // The strange pairs: hundreds of short SSL connections between one host
  // pair within the hour (795 in D4's example).
  if (rng.bernoulli(web.https_retry_pairs)) {
    const HostRef client = ctx.local_host();
    const HostRef server = ctx.other_internal();
    const int conns = static_cast<int>(rng.uniform(300, 900) * ctx.spec().scale * 20);
    double t = ctx.t0() + rng.uniform(0, 60);
    for (int i = 0; i < conns && t < ctx.t1(); ++i) {
      TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kHttps,
                         t, ctx.lan_tcp());
      tcp.connect();
      tcp.client_message(filler_span(180));
      tcp.server_message(filler_span(1400));
      tcp.client_message(filler_span(120));
      tcp.server_message(filler_span(130));
      tcp.close();
      t += rng.exponential(4.0);
    }
  }
}

}  // namespace

void gen_web(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const WebKnobs& web = ctx.spec().web;

  // Browsing is concentrated on the subnet's active users: Figure 3's
  // fan-out comes from individual clients visiting many servers, so the
  // session count per active client must survive scaling.
  const auto sessions = ctx.arrivals(web.browse_sessions);
  const std::size_t active_clients =
      std::max<std::size_t>(2, sessions.size() / 10);
  std::vector<HostRef> clients;
  clients.reserve(active_clients);
  for (std::size_t i = 0; i < active_clients; ++i) clients.push_back(ctx.local_host());

  for (double t : sessions) {
    const HostRef client = clients[rng.zipf(clients.size(), 0.8)];
    const bool wan = rng.bernoulli(web.wan_server_ratio);
    HostRef server;
    if (wan) {
      // Zipf-popular external server pool: repeat visits to popular sites,
      // long tail of one-off servers.
      server = ctx.model().external_host(1000 + rng.zipf(4000, 0.9));
    } else {
      server = ctx.model().internal_web_server(static_cast<std::uint32_t>(rng.zipf(30, 1.1)));
      if (ctx.model().subnet_of(server.ip) == ctx.subnet()) server = ctx.model().web_proxy();
    }
    browse_session(ctx, t, client, server, wan, "Mozilla/4.0 (compatible; EnterpriseUser)");
  }

  // Automated clients and inbound visitors run at absolute magnitude.
  for (double t : ctx.arrivals_abs(web.scanner_sessions)) scanner_session(ctx, t);
  for (double t : ctx.arrivals_abs(web.google_sessions)) {
    crawler_session(ctx, t, rng.bernoulli(web.google1_share));
  }
  for (double t : ctx.arrivals_abs(web.ifolder_sessions)) ifolder_session(ctx, t);
  for (double t : ctx.arrivals(web.inbound_sessions)) inbound_web_session(ctx, t);
  https_sessions(ctx);
}

}  // namespace entrace
