// Scanning traffic (§3): the site's two proactive vulnerability scanners
// sweeping address ranges in order (caught by the paper's heuristic /
// known-scanner list), and external ICMP scanners whose ordered probing
// survives the border filtering.  Scanner traffic is 4-18% of connections
// before filtering.
#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {

void gen_scanner(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const ScannerKnobs& k = ctx.spec().scanner;
  const EnterpriseModel& m = ctx.model();

  // ---- internal vulnerability scanners: ascending sweep ---------------------
  // Sweeps run at absolute magnitude: the site's scanners probe on their
  // own schedule regardless of how much user traffic we scale in, keeping
  // the removed-connection share in the paper's 4-18% band.
  for (double t : ctx.arrivals_abs(k.internal_sweeps)) {
    const HostRef scanner = m.internal_scanner(static_cast<int>(rng.uniform_int(0, 1)));
    double ts = t;
    for (int i = 0; i < k.sweep_targets && ts < ctx.t1(); ++i) {
      // Ascending through the monitored subnet's address space.
      const HostRef target = EnterpriseModel::ref(ctx.model().subnet(ctx.subnet()).host(
          static_cast<std::uint32_t>(4 + i)));
      if (rng.bernoulli(k.scan_tcp_frac)) {
        const std::uint16_t port =
            rng.bernoulli(0.5) ? ports::kHttp : (rng.bernoulli(0.5) ? ports::kSsh : 21);
        TcpFlowBuilder probe(ctx.sink(), rng, scanner, target, ctx.ephemeral_port(), port, ts,
                             ctx.lan_tcp());
        if (rng.bernoulli(0.3)) {
          probe.connect();
          probe.abort_rst();
        } else if (rng.bernoulli(0.6)) {
          probe.connect_rejected();
        } else {
          probe.connect_unanswered(0);
        }
      } else {
        send_icmp_echo(ctx.sink(), scanner, target, false,
                       static_cast<std::uint16_t>(rng.next_u64()),
                       static_cast<std::uint16_t>(i), ts);
        if (rng.bernoulli(0.5)) {
          send_icmp_echo(ctx.sink(), target, scanner, true, 0,
                         static_cast<std::uint16_t>(i), ts + 0.0005);
        }
      }
      ts += rng.exponential(0.25);
    }
  }

  // ---- Internet background radiation ---------------------------------------
  // Worm-era probing from external sources in RANDOM target order: the §3
  // heuristic does not (and should not) catch these, so they remain in the
  // analyzed traffic and populate the wan->ent origin class and external
  // fan-in of §4.
  for (double t : ctx.arrivals_abs(ctx.spec().other.background_radiation)) {
    const HostRef source = ctx.external();
    const HostRef target = ctx.model().host(
        ctx.subnet(), static_cast<std::uint32_t>(rng.uniform_int(0, 199)));
    const double r = rng.uniform();
    if (r < 0.25) {
      send_icmp_echo(ctx.sink(), source, target, false,
                     static_cast<std::uint16_t>(rng.next_u64()), 0, t);
    } else {
      // Worm-era targets: Windows services and SQL, not the web (inbound
      // web scans are filtered at the border, §3).
      const std::uint16_t port = rng.bernoulli(0.5)   ? ports::kCifs
                                 : rng.bernoulli(0.5) ? ports::kEpm
                                                      : ports::kMsSql;
      TcpFlowBuilder probe(ctx.sink(), rng, source, target, ctx.ephemeral_port(), port, t,
                           ctx.wan_tcp());
      if (rng.bernoulli(0.6)) {
        probe.connect_unanswered(1);
      } else {
        probe.connect_rejected();
      }
    }
  }

  // ---- external ICMP scanners: descending sweep across the subnet ----------
  for (double t : ctx.arrivals_abs(k.external_icmp_scans)) {
    const HostRef scanner = ctx.external();
    double ts = t;
    for (int i = 0; i < k.external_targets && ts < ctx.t1(); ++i) {
      const HostRef target = EnterpriseModel::ref(ctx.model().subnet(ctx.subnet()).host(
          static_cast<std::uint32_t>(250 - i)));
      send_icmp_echo(ctx.sink(), scanner, target, false,
                     static_cast<std::uint16_t>(rng.next_u64()),
                     static_cast<std::uint16_t>(i), ts);
      ts += rng.exponential(0.4);
    }
  }
}

}  // namespace entrace
