// Email traffic (§5.1.2): SMTP command dialogues with RTT- and
// processing-dominated durations (Figure 5), heavy-tailed message sizes
// (Figure 6), the IMAP4 -> IMAP/S policy transition between D0 and D1
// (Table 8), and long-lived internal IMAP sessions with ~10-minute polls.
#include <string>

#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {
namespace {

std::vector<std::uint8_t> line(const std::string& s) {
  std::string msg = s + "\r\n";
  return {msg.begin(), msg.end()};
}

void smtp_session(GenContext& ctx, double start, const HostRef& client, const HostRef& server,
                  bool wan, bool rejected, bool allow_huge = true) {
  Rng& rng = ctx.rng();
  TcpOptions opt = wan ? ctx.wan_tcp() : ctx.lan_tcp();
  TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kSmtp, start,
                     opt);
  if (rejected) {
    if (rng.bernoulli(0.6)) {
      tcp.connect_rejected();
    } else {
      tcp.connect_unanswered(2);
    }
    return;
  }
  tcp.connect();
  // Per-command server processing delay: the dominant term for internal
  // connections (median 0.2-0.4 s); WAN adds ~RTT per exchange on top.
  auto step = [&] { tcp.advance(rng.exponential(0.045)); };
  tcp.server_message(line("220 smtp.lbl.example ESMTP"));
  step();
  tcp.client_message(line("HELO client.lbl.example"));
  tcp.server_message(line("250 smtp.lbl.example"));
  step();
  tcp.client_message(line("MAIL FROM:<user@lbl.example>"));
  tcp.server_message(line("250 2.1.0 Ok"));
  step();
  tcp.client_message(line("RCPT TO:<peer@example.org>"));
  tcp.server_message(line("250 2.1.5 Ok"));
  step();
  tcp.client_message(line("DATA"));
  tcp.server_message(line("354 End data with <CR><LF>.<CR><LF>"));
  // Message body: log-normal core with a Pareto upper tail (attachments).
  std::size_t body = static_cast<std::size_t>(rng.lognormal(9.2, 1.2));
  if (allow_huge && rng.bernoulli(0.06))
    body = static_cast<std::size_t>(rng.pareto(1.1, 2e5, 3e8));
  tcp.client_transfer(body);
  tcp.client_message(line("."));
  step();
  tcp.server_message(line("250 2.0.0 Ok: queued"));
  step();
  tcp.client_message(line("QUIT"));
  tcp.server_message(line("221 2.0.0 Bye"));
  tcp.close();
}

void imap_session(GenContext& ctx, double start, const HostRef& client, const HostRef& server,
                  bool wan) {
  Rng& rng = ctx.rng();
  const bool secure = ctx.spec().imap_secure;
  const std::uint16_t port = secure ? ports::kImapS : ports::kImap4;
  TcpOptions opt = wan ? ctx.wan_tcp() : ctx.lan_tcp();
  TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), port, start, opt);
  tcp.connect();
  // Opaque (TLS) login exchange, then the initial mailbox sync — the bulk
  // of a session's volume (Figure 6b's server->client dominance).
  tcp.client_message(filler_span(240));
  tcp.server_message(filler_span(800));
  tcp.client_message(filler_span(120));
  {
    std::size_t sync = static_cast<std::size_t>(rng.lognormal(10.5, 1.4));
    if (rng.bernoulli(0.05)) sync = static_cast<std::size_t>(rng.pareto(1.1, 1e5, 2e8));
    tcp.server_transfer(sync);
  }

  // Internal sessions persist and poll every ~10 minutes (duration up to
  // ~50 min); WAN sessions are 1-2 orders of magnitude shorter.
  const double max_dur = wan ? rng.pareto(1.2, 0.5, 120.0) : rng.uniform(30.0, 3000.0);
  const double end = std::min(ctx.t1(), start + max_dur);
  double poll_interval = wan ? rng.uniform(2.0, 30.0) : 600.0;
  while (tcp.now() + poll_interval < end) {
    tcp.advance(poll_interval);
    tcp.client_message(filler_span(80 + rng.uniform_int(0, 120)));
    std::size_t mail = static_cast<std::size_t>(rng.lognormal(8.5, 1.6));
    if (rng.bernoulli(0.03)) mail = static_cast<std::size_t>(rng.pareto(1.1, 1e5, 2e8));
    tcp.server_transfer(mail);
  }
  tcp.close();
}

}  // namespace

void gen_email(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const EmailKnobs& em = ctx.spec().email;
  const EnterpriseModel& m = ctx.model();

  const int smtp_subnet = m.subnet_of(m.smtp_server(0).ip);
  const bool mail_monitored = ctx.monitoring(smtp_subnet);

  // ---- SMTP ----------------------------------------------------------------
  // Client-side: local hosts submitting mail to the enterprise MX.
  for (double t : ctx.arrivals(em.smtp_client_sessions)) {
    const HostRef client = ctx.local_host();
    const HostRef server = m.smtp_server(static_cast<int>(rng.uniform_int(0, 1)));
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;  // intra-subnet: invisible
    // Desktop submissions rarely carry the giant attachments; those enter
    // via the MX volume (keeps D3/D4's small SMTP totals from being
    // dominated by a single tail draw).
    smtp_session(ctx, t, client, server, false, rng.bernoulli(0.03), /*allow_huge=*/false);
  }
  // Departmental servers delivering straight to external MTAs (the small
  // WAN SMTP population seen even when the MX subnets are unmonitored).
  for (double t : ctx.arrivals(em.smtp_client_sessions * 0.25)) {
    smtp_session(ctx, t, ctx.local_host(), ctx.external(), true,
                 rng.bernoulli(em.smtp_wan_fail / 3), /*allow_huge=*/false);
  }
  if (mail_monitored) {
    // Server-side: the whole site and the WAN converge on these MXs.
    for (double t : ctx.arrivals(em.smtp_client_sessions * em.server_subnet_boost)) {
      const HostRef server = m.smtp_server(static_cast<int>(rng.uniform_int(0, 1)));
      const bool wan = rng.bernoulli(em.smtp_wan_frac);
      const HostRef client = wan ? ctx.external() : ctx.other_internal();
      // Busy-server effect: WAN attempts to the loaded MXs fail more often
      // (the paper: 71-93% success in D0-2 vs 99-100% in D3-4).
      const double fail = wan ? 0.15 : 0.03;
      smtp_session(ctx, t, client, server, wan, rng.bernoulli(fail));
      if (ctx.sink().window_end() < t) break;
    }
    // Outbound relay: MX delivering to external MTAs.
    for (double t : ctx.arrivals(em.smtp_client_sessions * em.server_subnet_boost * 0.4)) {
      smtp_session(ctx, t, m.smtp_server(0), ctx.external(), true, rng.bernoulli(0.05));
    }
  }

  // ---- IMAP(/S) ---------------------------------------------------------------
  const int imap_subnet = m.subnet_of(m.imap_server().ip);
  for (double t : ctx.arrivals(em.imap_sessions)) {
    const HostRef client = ctx.local_host();
    if (imap_subnet == ctx.subnet()) continue;
    imap_session(ctx, t, client, m.imap_server(), false);
  }
  if (ctx.monitoring(imap_subnet)) {
    for (double t : ctx.arrivals(em.imap_sessions * em.server_subnet_boost * 0.6)) {
      const bool wan = rng.bernoulli(em.imap_wan_frac);
      const HostRef client = wan ? ctx.external() : ctx.other_internal();
      imap_session(ctx, t, client, m.imap_server(), wan);
    }
  }

  // ---- POP3 / POP/S / LDAP (the "Other" row of Table 8) --------------------
  for (double t : ctx.arrivals(em.pop_ldap_sessions)) {
    const HostRef client = ctx.local_host();
    const HostRef server = m.smtp_server(1);
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;
    const std::uint16_t port =
        rng.bernoulli(0.5) ? ports::kLdap : (rng.bernoulli(0.5) ? ports::kPop3 : ports::kPopS);
    TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), port, t,
                       ctx.lan_tcp());
    tcp.connect();
    tcp.client_message(filler_span(90));
    tcp.server_message(filler_span(400 + rng.uniform_int(0, 30000)));
    tcp.close();
  }
}

}  // namespace entrace
