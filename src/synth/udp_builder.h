// UDP / ICMP emission helpers for the trace generator.
#pragma once

#include <cstdint>
#include <span>

#include "synth/model.h"
#include "synth/sink.h"

namespace entrace {

void send_udp(PacketSink& sink, const HostRef& from, const HostRef& to, std::uint16_t sport,
              std::uint16_t dport, double ts, std::span<const std::uint8_t> payload);

// Multicast datagram (group address, multicast MAC).
void send_udp_multicast(PacketSink& sink, const HostRef& from, Ipv4Address group,
                        std::uint16_t sport, std::uint16_t dport, double ts,
                        std::size_t payload_len);

void send_icmp_echo(PacketSink& sink, const HostRef& from, const HostRef& to, bool reply,
                    std::uint16_t id, std::uint16_t seq, double ts,
                    std::size_t payload_len = 56);

void send_icmp_unreachable(PacketSink& sink, const HostRef& from, const HostRef& to, double ts);

}  // namespace entrace
