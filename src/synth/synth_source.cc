#include "synth/synth_source.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace entrace {

SyntheticTraceSource::SyntheticTraceSource(const DatasetSpec& spec,
                                           const EnterpriseModel& model, TracePlan plan,
                                           SyntheticSourceOptions options)
    : spec_(spec),
      model_(model),
      plan_(std::move(plan)),
      slices_(std::max(1, options.slices)) {
  // A window too short to cut meaningfully degenerates to one slice.
  if (plan_.duration <= 0.0) slices_ = 1;
  meta_.name = plan_.name;
  meta_.subnet_id = plan_.subnet;
  meta_.snaplen = plan_.snaplen;
  meta_.start_ts = plan_.start_ts;
  meta_.duration = plan_.duration;
}

bool SyntheticTraceSource::fill_next_slice() {
  const double slice_len = plan_.duration / static_cast<double>(slices_);
  const double window_end = plan_.start_ts + plan_.duration;
  while (next_slice_ < slices_) {
    const int k = next_slice_++;
    // Slice 0 also catches any stray pre-window emission (the materialized
    // path keeps those at the sorted front); the last slice is open-ended
    // with the over-window tail clipped below, mirroring generate_trace.
    const double lo = k == 0 ? -std::numeric_limits<double>::infinity()
                             : plan_.start_ts + static_cast<double>(k) * slice_len;
    const double hi = k + 1 == slices_
                          ? std::numeric_limits<double>::infinity()
                          : plan_.start_ts + static_cast<double>(k + 1) * slice_len;
    buffer_.clear();
    pos_ = 0;
    PacketSink sink(buffer_, plan_.start_ts, plan_.duration, plan_.snaplen);
    sink.restrict_to(lo, hi);
    emit_trace(spec_, model_, plan_, sink);
    std::stable_sort(buffer_.begin(), buffer_.end(),
                     [](const RawPacket& a, const RawPacket& b) { return a.ts < b.ts; });
    while (!buffer_.empty() && buffer_.back().ts > window_end) buffer_.pop_back();
    if (!buffer_.empty()) return true;
  }
  buffer_.clear();
  pos_ = 0;
  return false;
}

const RawPacket* SyntheticTraceSource::pull() {
  if (pos_ >= buffer_.size() && !fill_next_slice()) return nullptr;
  return &buffer_[pos_++];
}

SyntheticTraceSourceSet::SyntheticTraceSourceSet(DatasetSpec spec,
                                                 const EnterpriseModel& model,
                                                 SyntheticSourceOptions options)
    : spec_(std::move(spec)), model_(model), options_(options), plans_(plan_dataset(spec_)) {}

std::unique_ptr<PacketSource> SyntheticTraceSourceSet::open(std::size_t index) const {
  return std::make_unique<SyntheticTraceSource>(spec_, model_, plans_.at(index), options_);
}

}  // namespace entrace
