#include "synth/synth_source.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace entrace {

SyntheticTraceSource::SyntheticTraceSource(const DatasetSpec& spec,
                                           const EnterpriseModel& model, TracePlan plan,
                                           SyntheticSourceOptions options)
    : spec_(spec),
      model_(model),
      plan_(std::move(plan)),
      slices_(std::max(1, options.slices)),
      double_buffer_(options.double_buffer) {
  // A window too short to cut meaningfully degenerates to one slice.
  if (plan_.duration <= 0.0) slices_ = 1;
  // With a single slice there is nothing to run ahead of.
  if (slices_ == 1) double_buffer_ = false;
  meta_.name = plan_.name;
  meta_.subnet_id = plan_.subnet;
  meta_.snaplen = plan_.snaplen;
  meta_.start_ts = plan_.start_ts;
  meta_.duration = plan_.duration;
}

SyntheticTraceSource::~SyntheticTraceSource() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    back_ready_ = false;  // unblock a producer waiting for the swap
  }
  cv_.notify_all();
  if (producer_.joinable()) producer_.join();
}

bool SyntheticTraceSource::generate_slice_into(std::vector<RawPacket>& out) {
  const double slice_len = plan_.duration / static_cast<double>(slices_);
  const double window_end = plan_.start_ts + plan_.duration;
  while (next_slice_ < slices_) {
    const int k = next_slice_++;
    // Slice 0 also catches any stray pre-window emission (the materialized
    // path keeps those at the sorted front); the last slice is open-ended
    // with the over-window tail clipped below, mirroring generate_trace.
    const double lo = k == 0 ? -std::numeric_limits<double>::infinity()
                             : plan_.start_ts + static_cast<double>(k) * slice_len;
    const double hi = k + 1 == slices_
                          ? std::numeric_limits<double>::infinity()
                          : plan_.start_ts + static_cast<double>(k + 1) * slice_len;
    out.clear();
    PacketSink sink(out, plan_.start_ts, plan_.duration, plan_.snaplen);
    sink.restrict_to(lo, hi);
    emit_trace(spec_, model_, plan_, sink);
    std::stable_sort(out.begin(), out.end(),
                     [](const RawPacket& a, const RawPacket& b) { return a.ts < b.ts; });
    while (!out.empty() && out.back().ts > window_end) out.pop_back();
    if (!out.empty()) return true;
  }
  out.clear();
  return false;
}

bool SyntheticTraceSource::fill_next_slice() {
  if (double_buffer_) return swap_in_next_slice();
  pos_ = 0;
  return generate_slice_into(buffer_);
}

void SyntheticTraceSource::producer_loop() {
  std::vector<RawPacket> local;
  for (;;) {
    const bool have = generate_slice_into(local);
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return stop_ || !back_ready_; });
    if (stop_) return;
    back_ = std::move(local);
    back_ready_ = true;
    cv_.notify_all();
    if (!have) return;  // the empty ready buffer is the EOF marker
    local = {};
  }
}

bool SyntheticTraceSource::swap_in_next_slice() {
  if (exhausted_) return false;
  if (!producer_started_) {
    producer_started_ = true;
    producer_ = std::thread([this] { producer_loop(); });
  }
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return back_ready_; });
  buffer_ = std::move(back_);
  back_ready_ = false;
  pos_ = 0;
  cv_.notify_all();
  if (buffer_.empty()) {
    exhausted_ = true;
    return false;
  }
  return true;
}

const RawPacket* SyntheticTraceSource::pull() {
  if (pos_ >= buffer_.size() && !fill_next_slice()) return nullptr;
  return &buffer_[pos_++];
}

std::size_t SyntheticTraceSource::pull_batch(PacketView* out, std::size_t n) {
  if (pos_ >= buffer_.size() && !fill_next_slice()) return 0;
  const std::size_t take = std::min(n, buffer_.size() - pos_);
  for (std::size_t i = 0; i < take; ++i) {
    const RawPacket& p = buffer_[pos_ + i];
    out[i] = PacketView{p.ts, p.wire_len, p.data};
  }
  pos_ += take;
  return take;
}

SyntheticTraceSourceSet::SyntheticTraceSourceSet(DatasetSpec spec,
                                                 const EnterpriseModel& model,
                                                 SyntheticSourceOptions options)
    : spec_(std::move(spec)), model_(model), options_(options), plans_(plan_dataset(spec_)) {}

std::unique_ptr<PacketSource> SyntheticTraceSourceSet::open(std::size_t index) const {
  return std::make_unique<SyntheticTraceSource>(spec_, model_, plans_.at(index), options_);
}

}  // namespace entrace
