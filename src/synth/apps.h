// Application traffic generators.  Each gen_* fills one monitored-subnet
// trace with the sessions of its application family, drawing endpoints so
// that at least one side lives in the monitored subnet (the tap sees only
// traffic entering/leaving the subnet, §2).
#pragma once

#include <vector>

#include "synth/dataset_spec.h"
#include "synth/model.h"
#include "synth/sink.h"
#include "synth/tcp_builder.h"
#include "synth/udp_builder.h"
#include "util/rng.h"

namespace entrace {

class GenContext {
 public:
  GenContext(PacketSink& sink, Rng& rng, const EnterpriseModel& model, const DatasetSpec& spec,
             int subnet, double t0, double t1)
      : sink_(sink), rng_(rng), model_(model), spec_(spec), subnet_(subnet), t0_(t0), t1_(t1) {}

  PacketSink& sink() { return sink_; }
  Rng& rng() { return rng_; }
  const EnterpriseModel& model() const { return model_; }
  const DatasetSpec& spec() const { return spec_; }
  int subnet() const { return subnet_; }
  double t0() const { return t0_; }
  double t1() const { return t1_; }
  double duration() const { return t1_ - t0_; }

  // True if `s` is the monitored subnet.
  bool monitoring(int s) const { return s == subnet_; }
  // True if host is visible from this tap (in the monitored subnet).
  bool local(const HostRef& h) const { return model_.subnet_of(h.ip) == subnet_; }

  // ---- endpoint selection ---------------------------------------------------
  HostRef local_host() { return model_.host(subnet_, pick_host_index()); }
  // Internal host in a different subnet.
  HostRef other_internal();
  HostRef external();

  // ---- arrivals ---------------------------------------------------------------
  // Session start times: Poisson-ish count of expected*scale, uniform in
  // the window (leaving headroom so sessions can complete).
  std::vector<double> arrivals(double expected_at_scale1, double headroom = 0.05);
  // Arrivals at paper magnitude, NOT multiplied by scale — for entities
  // whose *count* the paper reports absolutely (e.g. NCP connections,
  // Table 12) while their per-entity volume scales instead.
  std::vector<double> arrivals_abs(double expected, double headroom = 0.05);
  // Count only.
  std::size_t scaled_count(double expected_at_scale1);

  std::uint16_t ephemeral_port() {
    return static_cast<std::uint16_t>(1024 + rng_.uniform_int(0, 60000));
  }

  TcpOptions lan_tcp() const;
  TcpOptions wan_tcp() const;

 private:
  std::uint32_t pick_host_index();

  PacketSink& sink_;
  Rng& rng_;
  const EnterpriseModel& model_;
  const DatasetSpec& spec_;
  int subnet_;
  double t0_, t1_;
};

void gen_web(GenContext& ctx);
void gen_email(GenContext& ctx);
void gen_name(GenContext& ctx);
void gen_windows(GenContext& ctx);
void gen_netfile(GenContext& ctx);
void gen_backup(GenContext& ctx);
void gen_other(GenContext& ctx);       // interactive/streaming/net-mgnt/misc/bulk
void gen_background(GenContext& ctx);  // ARP/IPX/other-L3/rare IP protocols
void gen_scanner(GenContext& ctx);

}  // namespace entrace
