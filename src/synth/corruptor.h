// Wire-level fault injector: takes a clean synthetic trace and
// deterministically (seeded Rng) injects the measurement artifacts real
// captures exhibit — truncated captures and snaplen clipping, flipped bytes
// in L2/L3/L4 headers and application payloads, bad IP/TCP/UDP checksums,
// garbage IP/TCP options, duplicated and reordered segments, mid-stream
// loss, and zero-length / port-0 packets.
//
// The injector is the test harness for the anomaly taxonomy (net/anomaly.h):
// corruption_test.cc drives every synthetic application's traffic through
// corrupted traces and asserts the pipeline never crashes, accounts for
// every packet, and degrades gracefully.
//
// Corruption is a pure function of (clean trace bytes, config): each trace
// is corrupted with an Rng forked from config.seed by trace index, so a
// corrupted TraceSet is bit-identical regardless of how many threads later
// analyze it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "pcap/trace.h"
#include "util/rng.h"

namespace entrace {

enum class FaultKind : std::uint8_t {
  kTruncateCapture,   // clip captured bytes at a random offset (wire_len kept)
  kZeroCapture,       // capture reduced to zero bytes
  kFlipL2,            // flip a byte in the Ethernet header [0, 14)
  kFlipL3,            // flip a byte in the IP header [14, 34)
  kFlipL4,            // flip a byte in the transport header [34, 54)
  kFlipPayload,       // flip a byte in the application payload [54, ...)
  kBadIpChecksum,     // corrupt the IPv4 header checksum field only
  kBadL4Checksum,     // corrupt the TCP/UDP checksum field only
  kGarbageIpOptions,  // raise the IHL nibble so bogus "options" appear
  kGarbageTcpOptions, // rewrite the TCP data-offset nibble
  kDuplicate,         // emit the segment twice back to back
  kReorder,           // swap the segment with its predecessor
  kDrop,              // remove the segment (mid-stream loss)
  kPortZero,          // rewrite src or dst port to 0 (checksum re-fixed)
  kCount
};

inline constexpr std::size_t kFaultKindCount = static_cast<std::size_t>(FaultKind::kCount);

const char* to_string(FaultKind kind);

struct CorruptionConfig {
  std::uint64_t seed = 1;
  // Per-packet probability of injecting one fault.
  double rate = 0.01;
  // Relative weights of the fault kinds, indexed by FaultKind.  Zero a kind
  // to disable it.  Defaults to uniform.
  std::array<double, kFaultKindCount> weights = [] {
    std::array<double, kFaultKindCount> w;
    w.fill(1.0);
    return w;
  }();
};

// Tally of faults actually applied (a selected fault can fall back to a
// byte flip when the packet is too short for it; the tally records what was
// done, not what was drawn).
struct CorruptionSummary {
  std::array<std::uint64_t, kFaultKindCount> applied{};

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto c : applied) sum += c;
    return sum;
  }
  void merge(const CorruptionSummary& other) {
    for (std::size_t i = 0; i < kFaultKindCount; ++i) applied[i] += other.applied[i];
  }
  std::map<std::string, std::uint64_t> as_map() const;
};

// Corrupt one trace in place with the given Rng stream.
CorruptionSummary corrupt_trace(Trace& trace, const CorruptionConfig& config, Rng rng);

// Corrupt every trace of a dataset in place; trace i uses the Rng stream
// forked from config.seed by i, so the result does not depend on traversal
// or analysis threading.
CorruptionSummary corrupt_dataset(TraceSet& traces, const CorruptionConfig& config);

}  // namespace entrace
