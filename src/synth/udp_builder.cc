#include "synth/udp_builder.h"

#include "net/encoder.h"

namespace entrace {

void send_udp(PacketSink& sink, const HostRef& from, const HostRef& to, std::uint16_t sport,
              std::uint16_t dport, double ts, std::span<const std::uint8_t> payload) {
  if (!sink.accepts(ts)) return;  // skip construction; no RNG below
  FrameEndpoints ep{from.mac, to.mac, from.ip, to.ip};
  sink.emit(ts, make_udp_frame(ep, sport, dport, payload));
}

void send_udp_multicast(PacketSink& sink, const HostRef& from, Ipv4Address group,
                        std::uint16_t sport, std::uint16_t dport, double ts,
                        std::size_t payload_len) {
  if (!sink.accepts(ts)) return;  // skip construction; no RNG below
  // 01:00:5e + low 23 bits of the group address.
  const std::uint32_t g = group.value();
  MacAddress mcast_mac({0x01, 0x00, 0x5E, static_cast<std::uint8_t>((g >> 16) & 0x7F),
                        static_cast<std::uint8_t>(g >> 8), static_cast<std::uint8_t>(g)});
  FrameEndpoints ep{from.mac, mcast_mac, from.ip, group};
  sink.emit(ts, make_udp_frame(ep, sport, dport, filler_span(payload_len)));
}

void send_icmp_echo(PacketSink& sink, const HostRef& from, const HostRef& to, bool reply,
                    std::uint16_t id, std::uint16_t seq, double ts, std::size_t payload_len) {
  if (!sink.accepts(ts)) return;  // skip construction; no RNG below
  FrameEndpoints ep{from.mac, to.mac, from.ip, to.ip};
  sink.emit(ts, make_icmp_frame(ep, reply ? IcmpHeader::kEchoReply : IcmpHeader::kEchoRequest,
                                0, id, seq, payload_len));
}

void send_icmp_unreachable(PacketSink& sink, const HostRef& from, const HostRef& to, double ts) {
  if (!sink.accepts(ts)) return;  // skip construction; no RNG below
  FrameEndpoints ep{from.mac, to.mac, from.ip, to.ip};
  sink.emit(ts, make_icmp_frame(ep, IcmpHeader::kDestUnreachable, 1, 0, 0, 28));
}

}  // namespace entrace
