// Link-layer background (Table 2): ARP request/reply chatter, broadcast
// IPX (SAP/RIP advertising from the Netware environment), other non-IP
// ethertypes, and the rare IP transports the paper lists (IGMP, ESP, GRE,
// PIM, protocol 224).
#include "net/encoder.h"
#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {

void gen_background(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const BackgroundKnobs& k = ctx.spec().background;
  const EnterpriseModel& m = ctx.model();

  // ---- ARP ------------------------------------------------------------------
  for (double t : ctx.arrivals(k.arp_per_trace)) {
    const HostRef asker = ctx.local_host();
    const HostRef target = m.host(ctx.subnet(), static_cast<std::uint32_t>(
                                                    rng.uniform_int(0, 199)));
    // RNG draws stay unconditional; only frame construction is gated on the
    // sink's slice window (see PacketSink::accepts).
    if (ctx.sink().accepts(t)) {
      ctx.sink().emit(t, make_arp_frame(asker.mac, ArpHeader::kRequest, asker.ip, target.ip));
    }
    if (rng.bernoulli(0.7) && ctx.sink().accepts(t + 0.0004)) {
      ctx.sink().emit(t + 0.0004,
                      make_arp_frame(target.mac, ArpHeader::kReply, target.ip, asker.ip));
    }
  }

  // ---- IPX broadcasts ----------------------------------------------------------
  for (double t : ctx.arrivals(k.ipx_per_trace)) {
    const HostRef src = ctx.local_host();
    // SAP advertising (socket 0x0452) and RIP (0x0453) broadcasts.
    const bool sap = rng.bernoulli(0.7);
    const int len = 64 + rng.uniform_int(0, 400);
    if (!ctx.sink().accepts(t)) continue;
    ctx.sink().emit(t, make_ipx_frame(src.mac, MacAddress::broadcast(), 4,
                                      sap ? 0x0452 : 0x0453, sap ? 0x0452 : 0x0453, len));
  }

  // ---- other non-IP ethertypes (AppleTalk, DECnet remnants) -----------------
  for (double t : ctx.arrivals(k.other_l3_per_trace)) {
    const HostRef src = ctx.local_host();
    const bool appletalk = rng.bernoulli(0.6);
    const int len = 46 + rng.uniform_int(0, 200);
    if (!ctx.sink().accepts(t)) continue;
    std::vector<std::uint8_t> frame;
    ByteWriter w(frame);
    EthernetHeader eth{MacAddress::broadcast(), src.mac,
                       appletalk ? ethertype::kAppleTalk : ethertype::kDecnet};
    eth.encode(w);
    w.bytes(filler_span(static_cast<std::size_t>(len)));
    ctx.sink().emit(t, std::move(frame));
  }

  // ---- rare IP transports ---------------------------------------------------------
  for (double t : ctx.arrivals(k.igmp_flows)) {
    const HostRef src = ctx.local_host();
    if (!ctx.sink().accepts(t)) continue;
    FrameEndpoints ep{src.mac, MacAddress::broadcast(), src.ip, Ipv4Address(224, 0, 0, 1)};
    ctx.sink().emit(t, make_ip_frame(ep, ipproto::kIgmp, 8));
  }
  for (double t : ctx.arrivals(k.rare_ip_protos)) {
    const HostRef src = ctx.local_host();
    const HostRef dst = ctx.other_internal();
    std::uint8_t proto;
    switch (rng.weighted({0.3, 0.3, 0.2, 0.2})) {
      case 0: proto = ipproto::kEsp; break;
      case 1: proto = ipproto::kGre; break;
      case 2: proto = ipproto::kPim; break;
      default: proto = ipproto::kProto224; break;
    }
    const int len = 80 + rng.uniform_int(0, 800);
    if (!ctx.sink().accepts(t)) continue;
    FrameEndpoints ep{src.mac, dst.mac, src.ip, dst.ip};
    ctx.sink().emit(t, make_ip_frame(ep, proto, len));
  }
}

}  // namespace entrace
