// Network file systems (§5.2.2): NFS over both UDP and TCP with the
// paper's per-dataset request mixes and dual-mode message sizes, "heavy
// hitter" host pairs, sub-10ms request spacing, burst structure, and NCP
// with its keepalive-only connections and modal reply sizes.
#include <algorithm>

#include "proto/ncp.h"
#include "proto/nfs.h"
#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {
namespace {

std::uint32_t sample_nfs_proc(Rng& rng, const NetFileKnobs& k) {
  switch (rng.weighted({k.nfs_read, k.nfs_write, k.nfs_getattr, k.nfs_lookup, k.nfs_access,
                        0.02})) {
    case 0:
      return nfsproc::kRead;
    case 1:
      return nfsproc::kWrite;
    case 2:
      return nfsproc::kGetAttr;
    case 3:
      return nfsproc::kLookup;
    case 4:
      return nfsproc::kAccess;
    default:
      return 17;  // READDIRPLUS
  }
}

struct NfsSizes {
  std::size_t arg;
  std::size_t result;
};

NfsSizes nfs_sizes(Rng& rng, std::uint32_t proc, bool failed) {
  // Dual-mode distribution (Figure 8): ~100 bytes for everything except
  // write requests and read replies, which sit at the 8 KB transfer size.
  switch (proc) {
    case nfsproc::kRead:
      return {64 + rng.uniform_int(0, 32), failed ? 24 : 8192};
    case nfsproc::kWrite:
      return {8192, failed ? 24u : 96u + static_cast<std::size_t>(rng.uniform_int(0, 32))};
    case nfsproc::kLookup:
      return {80 + rng.uniform_int(0, 60), failed ? 24u : 200u};
    default:
      return {60 + rng.uniform_int(0, 60),
              failed ? 24u : 100u + static_cast<std::size_t>(rng.uniform_int(0, 120))};
  }
}

// One NFS host pair's activity: bursts of back-to-back requests separated
// by idle gaps long enough to split UDP flows (multiple "connections" per
// pair, as in Table 12 vs Figure 7's pair counts).
void nfs_pair(GenContext& ctx, const HostRef& client, const HostRef& server, bool use_udp,
              double total_requests) {
  Rng& rng = ctx.rng();
  const NetFileKnobs& k = ctx.spec().netfile;
  // Bursts are spread across the capture window with idle gaps just past
  // the UDP flow timeout, so one pair yields several flows (Table 12's
  // conns vs Figure 7's pair counts).  Short windows (D0) fit fewer bursts.
  const int max_bursts = std::max(2, static_cast<int>(ctx.duration() / 90.0));
  const int bursts = std::min(max_bursts, 6 + static_cast<int>(rng.uniform(0, 20)));
  const double gap_mean = std::max(65.0, ctx.duration() / (bursts + 1.0));
  std::uint32_t xid = static_cast<std::uint32_t>(rng.next_u64());
  const std::uint16_t client_port = static_cast<std::uint16_t>(700 + rng.uniform_int(0, 300));

  double t = ctx.t0() + rng.uniform(0, gap_mean);
  for (int b = 0; b < bursts && t < ctx.t1(); ++b) {
    const auto burst_requests =
        static_cast<std::size_t>(std::max(1.0, total_requests / bursts * rng.uniform(0.4, 1.6)));
    if (use_udp) {
      for (std::size_t i = 0; i < burst_requests && t < ctx.t1(); ++i) {
        const std::uint32_t proc = sample_nfs_proc(rng, k);
        const bool failed = proc == nfsproc::kLookup ? rng.bernoulli(k.nfs_fail_rate * 4)
                                                     : rng.bernoulli(k.nfs_fail_rate / 4);
        const NfsSizes sz = nfs_sizes(rng, proc, failed);
        send_udp(ctx.sink(), client, server, client_port, ports::kNfs, t,
                 encode_rpc_call(++xid, kNfsProgram, kNfsVersion, proc, sz.arg));
        const double service = 0.0002 + rng.exponential(0.0006);
        send_udp(ctx.sink(), server, client, ports::kNfs, client_port, t + service,
                 encode_rpc_reply(xid, failed ? 2 : 0, sz.result));
        t += service + rng.exponential(0.004);  // <10ms between requests
      }
    } else {
      TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kNfs, t,
                         ctx.lan_tcp());
      tcp.connect();
      for (std::size_t i = 0; i < burst_requests && tcp.now() < ctx.t1(); ++i) {
        const std::uint32_t proc = sample_nfs_proc(rng, k);
        const bool failed = proc == nfsproc::kLookup ? rng.bernoulli(k.nfs_fail_rate * 4)
                                                     : rng.bernoulli(k.nfs_fail_rate / 4);
        const NfsSizes sz = nfs_sizes(rng, proc, failed);
        tcp.client_message(
            rpc_record_mark(encode_rpc_call(++xid, kNfsProgram, kNfsVersion, proc, sz.arg)));
        tcp.server_message(rpc_record_mark(encode_rpc_reply(xid, failed ? 2 : 0, sz.result)));
        tcp.advance(rng.exponential(0.004));
      }
      tcp.close();
      t = tcp.now();
    }
    t += 65.0 + rng.exponential(gap_mean - 60.0);  // idle gap splits UDP flows
  }
}

NcpFunction to_enum(std::uint8_t fn) { return ncp_function_enum(fn); }

std::uint8_t sample_ncp_function(Rng& rng, const NetFileKnobs& k) {
  switch (rng.weighted({k.ncp_read, k.ncp_write, k.ncp_fdinfo, k.ncp_openclose, k.ncp_size,
                        k.ncp_search, k.ncp_nds, 0.02})) {
    case 0:
      return ncpfn::kRead;
    case 1:
      return ncpfn::kWrite;
    case 2:
      return ncpfn::kFileDirInfo;
    case 3:
      return rng.bernoulli(0.5) ? ncpfn::kOpen : ncpfn::kClose;
    case 4:
      return ncpfn::kGetFileSize;
    case 5:
      return ncpfn::kSearch;
    case 6:
      return ncpfn::kNds;
    default:
      return 20;  // get server time (misc)
  }
}

void ncp_session(GenContext& ctx, double start, const HostRef& client, const HostRef& server) {
  Rng& rng = ctx.rng();
  const NetFileKnobs& k = ctx.spec().netfile;
  TcpFlowBuilder tcp(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kNcp, start,
                     ctx.lan_tcp());
  if (rng.bernoulli(k.ncp_reject_rate)) {
    tcp.connect_rejected();
    return;
  }
  tcp.connect();

  if (rng.bernoulli(k.ncp_keepalive_only_frac)) {
    // The paper: 40-80% of NCP connections consist only of periodic
    // 1-byte keepalive retransmissions.
    const int probes =
        static_cast<int>(std::min(60.0, (ctx.t1() - start) / 45.0 * rng.uniform(0.5, 1.0)));
    tcp.keepalives(std::max(1, probes), 45.0);
    return;  // left open; trace ends around it
  }

  std::uint8_t seq = 0;
  const auto requests = static_cast<std::size_t>(
      std::max(2.0, rng.exponential(k.ncp_requests_mean)));
  for (std::size_t i = 0; i < requests && tcp.now() < ctx.t1(); ++i) {
    const std::uint8_t fn = sample_ncp_function(rng, k);
    const NcpFunction kind = to_enum(fn);
    // Request payloads: 14-byte read/control requests; writes carry data.
    std::size_t req_payload = 14;
    if (kind == NcpFunction::kWrite) req_payload = 4096 + rng.uniform_int(0, 4096);
    if (kind == NcpFunction::kFileSearch || kind == NcpFunction::kFileDirInfo)
      req_payload = 30 + rng.uniform_int(0, 40);
    tcp.client_message(encode_ncp_request(seq, fn, req_payload));

    const bool failed = kind == NcpFunction::kFileDirInfo
                            ? rng.bernoulli(k.ncp_fail_rate * 3)
                            : rng.bernoulli(k.ncp_fail_rate / 3);
    // Reply payloads reproduce the paper's modes: 2-byte completion-only,
    // 10-byte GetFileSize, 260-byte short reads, 8 KB data reads.
    std::size_t resp_payload = 2;
    if (!failed) {
      switch (kind) {
        case NcpFunction::kRead:
          resp_payload = rng.bernoulli(0.35) ? 260 : 4096 + rng.uniform_int(0, 4096);
          break;
        case NcpFunction::kFileSize:
          resp_payload = 10;
          break;
        case NcpFunction::kFileDirInfo:
          resp_payload = 60 + rng.uniform_int(0, 120);
          break;
        case NcpFunction::kFileSearch:
          resp_payload = 40 + rng.uniform_int(0, 200);
          break;
        case NcpFunction::kDirectoryService:
          resp_payload = 100 + rng.uniform_int(0, 500);
          break;
        default:
          resp_payload = 2;
          break;
      }
    }
    tcp.server_message(encode_ncp_reply(seq, failed ? 0x9C : 0, resp_payload));
    ++seq;
    tcp.advance(rng.exponential(0.005));
  }
  tcp.close();
}

}  // namespace

void gen_netfile(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const NetFileKnobs& k = ctx.spec().netfile;
  const EnterpriseModel& m = ctx.model();

  // ---- NFS -------------------------------------------------------------------
  // Pair counts stay at paper magnitude (Figure 7's N); request volume per
  // pair is what scales.  Heavy-tailed per-pair volume makes the top-3
  // pairs dominate the bytes, as in §5.2.2.
  const auto pair_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(k.nfs_pairs * rng.uniform(0.6, 1.4)));
  for (std::size_t p = 0; p < pair_count; ++p) {
    HostRef client = ctx.local_host();
    HostRef server = m.nfs_server(static_cast<int>(rng.uniform_int(0, 2)));
    if (m.subnet_of(server.ip) == ctx.subnet()) {
      // Server-side view: a remote client mounts the local server.
      client = ctx.other_internal();
    }
    double reqs = ctx.spec().scale * k.nfs_requests_mean * rng.pareto(0.7, 0.05, 80.0);
    // Occasionally one pair is a giant (a nightly dump over NFS): these
    // few pairs carry the lion's share of the dataset's NFS bytes
    // (§5.2.2: the top-3 pairs account for 89-94%).
    if (rng.bernoulli(0.12)) reqs *= 40.0;
    nfs_pair(ctx, client, server, rng.bernoulli(k.nfs_udp_frac), reqs);
  }

  // ---- NCP -------------------------------------------------------------------
  // Session counts scale with the rest of the traffic so Table 3's
  // connection mix stays honest; Table 12's absolute connection counts are
  // therefore scaled (noted in the bench output).
  for (double t : ctx.arrivals(k.ncp_sessions)) {
    const HostRef client = ctx.local_host();
    HostRef server = m.ncp_server(static_cast<int>(rng.uniform_int(0, 1)));
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;
    ncp_session(ctx, t, client, server);
  }
  for (int i = 0; i < 2; ++i) {
    if (!ctx.monitoring(m.subnet_of(m.ncp_server(i).ip))) continue;
    for (double t : ctx.arrivals(k.ncp_sessions * 3.0)) {
      ncp_session(ctx, t, ctx.other_internal(), m.ncp_server(i));
    }
  }
}

}  // namespace entrace
