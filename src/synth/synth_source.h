// SyntheticTraceSource: the generator's per-trace emission as an
// incremental, bounded-memory producer.
//
// The application generators are deterministic (all randomness comes from
// RNGs seeded by the TracePlan), so a trace can be regenerated at will.
// The source exploits that to trade CPU for memory: the capture window is
// cut into `slices` equal time slices, and for each slice the generators
// are re-run with the PacketSink restricted to that slice's [lo, hi)
// timestamp range.  Only one slice is ever buffered, so peak memory is
// ~1/slices of the trace at slices x generation CPU.  Concatenating the
// per-slice stably-sorted buffers reproduces the materialized trace's
// stable_sort-by-timestamp order bit for bit: slice assignment is
// monotonic in ts and packets with equal ts share a slice, so emission
// order is preserved exactly where the stable sort preserves it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pcap/packet_source.h"
#include "synth/dataset_spec.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace entrace {

struct SyntheticSourceOptions {
  // Regeneration slices per trace; 1 buffers the whole trace (the cheapest
  // CPU-wise, equivalent to materializing one trace at a time).
  int slices = 8;
};

class SyntheticTraceSource final : public PacketSource {
 public:
  // The model must outlive the source; the spec is copied.
  SyntheticTraceSource(const DatasetSpec& spec, const EnterpriseModel& model, TracePlan plan,
                       SyntheticSourceOptions options = {});

  const TraceMeta& meta() const override { return meta_; }
  const AnomalyCounts& anomalies() const override { return no_anomalies_; }

 protected:
  const RawPacket* pull() override;

 private:
  // Regenerates the next non-empty slice into buffer_; false when done.
  bool fill_next_slice();

  DatasetSpec spec_;
  const EnterpriseModel& model_;
  TracePlan plan_;
  int slices_;
  int next_slice_ = 0;
  std::vector<RawPacket> buffer_;
  std::size_t pos_ = 0;
  TraceMeta meta_;
  AnomalyCounts no_anomalies_;  // generated packets carry no file-layer damage
};

// Factory over a whole dataset: one SyntheticTraceSource per planned trace,
// in tap-rotation order (matching generate_dataset).  The model must
// outlive the set and every source opened from it.
class SyntheticTraceSourceSet final : public TraceSourceSet {
 public:
  SyntheticTraceSourceSet(DatasetSpec spec, const EnterpriseModel& model,
                          SyntheticSourceOptions options = {});

  const std::string& dataset_name() const override { return spec_.name; }
  std::size_t size() const override { return plans_.size(); }
  std::unique_ptr<PacketSource> open(std::size_t index) const override;

 private:
  DatasetSpec spec_;
  const EnterpriseModel& model_;
  SyntheticSourceOptions options_;
  std::vector<TracePlan> plans_;
};

}  // namespace entrace
