// SyntheticTraceSource: the generator's per-trace emission as an
// incremental, bounded-memory producer.
//
// The application generators are deterministic (all randomness comes from
// RNGs seeded by the TracePlan), so a trace can be regenerated at will.
// The source exploits that to trade CPU for memory: the capture window is
// cut into `slices` equal time slices, and for each slice the generators
// are re-run with the PacketSink restricted to that slice's [lo, hi)
// timestamp range.  Only one slice is ever buffered, so peak memory is
// ~1/slices of the trace at slices x generation CPU.  Concatenating the
// per-slice stably-sorted buffers reproduces the materialized trace's
// stable_sort-by-timestamp order bit for bit: slice assignment is
// monotonic in ts and packets with equal ts share a slice, so emission
// order is preserved exactly where the stable sort preserves it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pcap/packet_source.h"
#include "synth/dataset_spec.h"
#include "synth/generator.h"
#include "synth/model.h"

namespace entrace {

struct SyntheticSourceOptions {
  // Regeneration slices per trace; 1 buffers the whole trace (the cheapest
  // CPU-wise, equivalent to materializing one trace at a time).
  int slices = 8;
  // Generate slice k+1 on a producer thread while the analyzer consumes
  // slice k.  Bit-identical output either way (slices swap in order); costs
  // one extra buffered slice of memory while the producer runs ahead.
  bool double_buffer = true;
};

class SyntheticTraceSource final : public PacketSource {
 public:
  // The model must outlive the source; the spec is copied.
  SyntheticTraceSource(const DatasetSpec& spec, const EnterpriseModel& model, TracePlan plan,
                       SyntheticSourceOptions options = {});
  ~SyntheticTraceSource() override;

  const TraceMeta& meta() const override { return meta_; }
  const AnomalyCounts& anomalies() const override { return no_anomalies_; }

 protected:
  const RawPacket* pull() override;
  // Serves views straight from the current slice buffer; short batches at
  // slice boundaries (the refill happens on the next call, never while
  // handed-out views are live).
  std::size_t pull_batch(PacketView* out, std::size_t n) override;

 private:
  // Regenerates the next non-empty slice into `out` (advancing
  // next_slice_); false when the trace is exhausted.  Runs on the caller's
  // thread (sync mode) or the producer thread (double-buffer mode) — never
  // both: next_slice_ has exactly one owner per mode.
  bool generate_slice_into(std::vector<RawPacket>& out);
  // Makes buffer_ hold the next non-empty slice; false when done.
  bool fill_next_slice();
  // Double-buffer path: wait for the producer's back buffer and swap it in.
  bool swap_in_next_slice();
  void producer_loop();

  DatasetSpec spec_;
  const EnterpriseModel& model_;
  TracePlan plan_;
  int slices_;
  bool double_buffer_;
  int next_slice_ = 0;
  std::vector<RawPacket> buffer_;
  std::size_t pos_ = 0;
  bool exhausted_ = false;  // consumer saw the producer's EOF marker
  TraceMeta meta_;
  AnomalyCounts no_anomalies_;  // generated packets carry no file-layer damage

  // ---- producer state (double_buffer mode) ----------------------------------
  // Protocol: the producer fills back_ and sets back_ready_; the consumer
  // swaps it out and clears the flag.  An empty ready back_ is the EOF
  // marker.  The thread starts lazily on the first refill so sources that
  // are opened but never read stay thread-free (and construction stays
  // fork-safe for the bench's fork()-based studies).
  std::vector<RawPacket> back_;
  bool back_ready_ = false;
  bool stop_ = false;
  bool producer_started_ = false;
  std::thread producer_;
  std::mutex mu_;
  std::condition_variable cv_;
};

// Factory over a whole dataset: one SyntheticTraceSource per planned trace,
// in tap-rotation order (matching generate_dataset).  The model must
// outlive the set and every source opened from it.
class SyntheticTraceSourceSet final : public TraceSourceSet {
 public:
  SyntheticTraceSourceSet(DatasetSpec spec, const EnterpriseModel& model,
                          SyntheticSourceOptions options = {});

  const std::string& dataset_name() const override { return spec_.name; }
  std::size_t size() const override { return plans_.size(); }
  std::unique_ptr<PacketSource> open(std::size_t index) const override;

 private:
  DatasetSpec spec_;
  const EnterpriseModel& model_;
  SyntheticSourceOptions options_;
  std::vector<TracePlan> plans_;
};

}  // namespace entrace
