#include "synth/corruptor.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "net/encoder.h"

namespace entrace {
namespace {

constexpr std::size_t kEthSize = 14;
constexpr std::size_t kIpEnd = kEthSize + 20;   // minimal IPv4 header end
constexpr std::size_t kL4End = kIpEnd + 20;     // TCP header end (UDP is shorter)

// XOR a byte with a guaranteed-nonzero mask so the fault always changes it.
void flip_byte(std::vector<std::uint8_t>& data, std::size_t at, Rng& rng) {
  data[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
}

// Is this a full Ethernet+IPv4 frame we can locate header fields in?
bool is_ipv4_frame(const std::vector<std::uint8_t>& data) {
  return data.size() >= kIpEnd && data[12] == 0x08 && data[13] == 0x00 &&
         (data[kEthSize] >> 4) == 4;
}

std::size_t ip_header_len(const std::vector<std::uint8_t>& data) {
  return static_cast<std::size_t>(data[kEthSize] & 0x0F) * 4;
}

// Apply one fault to the packet at `i` of `out`.  Returns the fault actually
// applied: faults that need structure the packet lacks (e.g. kBadL4Checksum
// on a non-IP frame) degrade to a plain byte flip so a drawn fault never
// becomes a silent no-op.
FaultKind apply_fault(std::vector<RawPacket>& out, std::size_t i, FaultKind kind, Rng& rng) {
  RawPacket& pkt = out[i];
  std::vector<std::uint8_t>& data = pkt.data;

  // Degrade structure-dependent faults on packets that lack the structure.
  const bool ipv4 = is_ipv4_frame(data);
  switch (kind) {
    case FaultKind::kBadIpChecksum:
    case FaultKind::kGarbageIpOptions:
      if (!ipv4) kind = FaultKind::kFlipL2;
      break;
    case FaultKind::kBadL4Checksum:
    case FaultKind::kGarbageTcpOptions:
    case FaultKind::kPortZero: {
      const bool has_l4 =
          ipv4 && data.size() >= kEthSize + ip_header_len(data) + 8 &&
          (data[kEthSize + 9] == 6 || data[kEthSize + 9] == 17);
      if (!has_l4) kind = FaultKind::kFlipL3;
      break;
    }
    default:
      break;
  }
  if (data.empty()) {
    switch (kind) {
      case FaultKind::kDuplicate:
      case FaultKind::kReorder:
      case FaultKind::kDrop:
      case FaultKind::kZeroCapture:
        break;  // still meaningful on an empty capture
      default:
        kind = FaultKind::kZeroCapture;
        break;
    }
  }

  switch (kind) {
    case FaultKind::kTruncateCapture:
      // Keep wire_len: models snaplen clipping / a truncated pcap record.
      data.resize(rng.uniform_int(0, data.size() - 1));
      break;
    case FaultKind::kZeroCapture:
      data.clear();
      break;
    case FaultKind::kFlipL2:
      flip_byte(data, rng.uniform_int(0, std::min(data.size(), kEthSize) - 1), rng);
      break;
    case FaultKind::kFlipL3:
      if (data.size() <= kEthSize) return apply_fault(out, i, FaultKind::kFlipL2, rng);
      flip_byte(data, rng.uniform_int(kEthSize, std::min(data.size(), kIpEnd) - 1), rng);
      break;
    case FaultKind::kFlipL4:
      if (data.size() <= kIpEnd) return apply_fault(out, i, FaultKind::kFlipL3, rng);
      flip_byte(data, rng.uniform_int(kIpEnd, std::min(data.size(), kL4End) - 1), rng);
      break;
    case FaultKind::kFlipPayload:
      if (data.size() <= kL4End) return apply_fault(out, i, FaultKind::kFlipL4, rng);
      flip_byte(data, rng.uniform_int(kL4End, data.size() - 1), rng);
      break;
    case FaultKind::kBadIpChecksum:
      // The IPv4 header checksum lives at offset 10-11 of the IP header.
      flip_byte(data, kEthSize + 10 + rng.uniform_int(0, 1), rng);
      break;
    case FaultKind::kBadL4Checksum: {
      const std::size_t l4 = kEthSize + ip_header_len(data);
      const std::size_t off = data[kEthSize + 9] == 6 ? l4 + 16 : l4 + 6;
      if (off + 1 >= data.size()) return apply_fault(out, i, FaultKind::kFlipL4, rng);
      flip_byte(data, off + rng.uniform_int(0, 1), rng);
      break;
    }
    case FaultKind::kGarbageIpOptions:
      // Raise the IHL nibble: the header claims options that are really the
      // first transport bytes, so the checksum fails or the header runs past
      // the capture.
      data[kEthSize] = static_cast<std::uint8_t>(
          0x40 | static_cast<std::uint8_t>(rng.uniform_int(6, 15)));
      break;
    case FaultKind::kGarbageTcpOptions: {
      // Rewrite the data-offset nibble: < 5 is malformed outright, > 5
      // claims option bytes that are really payload.
      const std::size_t l4 = kEthSize + ip_header_len(data);
      if (data[kEthSize + 9] != 6 || l4 + 13 > data.size()) {
        return apply_fault(out, i, FaultKind::kFlipL4, rng);
      }
      std::uint64_t nib = rng.uniform_int(0, 14);
      if (nib >= 5) ++nib;  // skip the correct value for a bare header
      data[l4 + 12] = static_cast<std::uint8_t>(
          (nib << 4) | (data[l4 + 12] & 0x0F));
      break;
    }
    case FaultKind::kDuplicate:
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(i) + 1, out[i]);
      break;
    case FaultKind::kReorder:
      if (i == 0) return apply_fault(out, i, FaultKind::kDuplicate, rng);
      std::swap(out[i - 1], out[i]);
      std::swap(out[i - 1].ts, out[i].ts);  // keep timestamps monotonic
      break;
    case FaultKind::kDrop:
      out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    case FaultKind::kPortZero: {
      const std::size_t l4 = kEthSize + ip_header_len(data);
      const std::size_t off = l4 + (rng.bernoulli(0.5) ? 0 : 2);
      if (off + 1 >= data.size()) return apply_fault(out, i, FaultKind::kFlipL4, rng);
      data[off] = 0;
      data[off + 1] = 0;
      // Re-fix the transport checksum: the anomaly is the reserved port
      // itself, not a checksum artifact of rewriting it.
      fix_l4_checksum(data);
      break;
    }
    case FaultKind::kCount:
      break;
  }
  return kind;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncateCapture: return "truncate-capture";
    case FaultKind::kZeroCapture: return "zero-capture";
    case FaultKind::kFlipL2: return "flip-l2";
    case FaultKind::kFlipL3: return "flip-l3";
    case FaultKind::kFlipL4: return "flip-l4";
    case FaultKind::kFlipPayload: return "flip-payload";
    case FaultKind::kBadIpChecksum: return "bad-ip-checksum";
    case FaultKind::kBadL4Checksum: return "bad-l4-checksum";
    case FaultKind::kGarbageIpOptions: return "garbage-ip-options";
    case FaultKind::kGarbageTcpOptions: return "garbage-tcp-options";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kPortZero: return "port-zero";
    case FaultKind::kCount: break;
  }
  return "unknown";
}

std::map<std::string, std::uint64_t> CorruptionSummary::as_map() const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t i = 0; i < kFaultKindCount; ++i) {
    if (applied[i] != 0) out.emplace(to_string(static_cast<FaultKind>(i)), applied[i]);
  }
  return out;
}

CorruptionSummary corrupt_trace(Trace& trace, const CorruptionConfig& config, Rng rng) {
  CorruptionSummary summary;
  std::vector<RawPacket> out = std::move(trace.packets);
  // Walk by index: kDuplicate/kDrop change the vector size.  A duplicated
  // packet is skipped (the copy is not corrupted again); after a drop the
  // next packet shifts into the current slot.
  for (std::size_t i = 0; i < out.size();) {
    if (!rng.bernoulli(config.rate)) {
      ++i;
      continue;
    }
    const auto drawn = static_cast<FaultKind>(
        rng.weighted(std::span<const double>(config.weights.data(), config.weights.size())));
    const FaultKind applied = apply_fault(out, i, drawn, rng);
    ++summary.applied[static_cast<std::size_t>(applied)];
    switch (applied) {
      case FaultKind::kDrop:
        break;  // next packet moved into slot i
      case FaultKind::kDuplicate:
        i += 2;
        break;
      default:
        ++i;
        break;
    }
  }
  trace.packets = std::move(out);
  return summary;
}

CorruptionSummary corrupt_dataset(TraceSet& traces, const CorruptionConfig& config) {
  CorruptionSummary summary;
  Rng base(config.seed);
  for (std::size_t i = 0; i < traces.traces.size(); ++i) {
    summary.merge(corrupt_trace(traces.traces[i], config, base.fork(i)));
  }
  return summary;
}

}  // namespace entrace
