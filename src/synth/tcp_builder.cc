#include "synth/tcp_builder.h"

#include <algorithm>

namespace entrace {

TcpFlowBuilder::TcpFlowBuilder(PacketSink& sink, Rng& rng, const HostRef& client,
                               const HostRef& server, std::uint16_t src_port,
                               std::uint16_t dst_port, double start, TcpOptions options)
    : sink_(sink),
      rng_(rng),
      client_(client),
      server_(server),
      src_port_(src_port),
      dst_port_(dst_port),
      opt_(options),
      now_(start),
      client_seq_(static_cast<std::uint32_t>(rng.next_u64())),
      server_seq_(static_cast<std::uint32_t>(rng.next_u64())) {}

void TcpFlowBuilder::send_segment(bool from_client, std::uint8_t flags,
                                  std::span<const std::uint8_t> payload) {
  FrameEndpoints ep;
  std::uint32_t seq, ack;
  std::uint16_t sport, dport;
  std::uint8_t ttl;
  if (from_client) {
    ep = {client_.mac, server_.mac, client_.ip, server_.ip};
    sport = src_port_;
    dport = dst_port_;
    seq = client_seq_;
    ack = client_acked_;
    ttl = opt_.client_ttl;
  } else {
    ep = {server_.mac, client_.mac, server_.ip, client_.ip};
    sport = dst_port_;
    dport = src_port_;
    seq = server_seq_;
    ack = server_acked_;
    ttl = opt_.server_ttl;
  }
  // Construction is the expensive part (alloc + encode + checksums); skip
  // it when a restricted sink would drop the frame.  No RNG is drawn past
  // this point, so slice regeneration stays deterministic.
  if (!sink_.accepts(now_)) return;
  sink_.emit(now_, make_tcp_frame(ep, sport, dport, seq, ack, flags, payload, ttl));
}

void TcpFlowBuilder::ack_from(bool from_client) {
  now_ += opt_.rtt / 2;
  send_segment(from_client, tcpflag::kAck, {});
}

void TcpFlowBuilder::connect() {
  send_segment(true, tcpflag::kSyn, {});
  client_seq_ += 1;
  now_ += opt_.rtt / 2;
  server_acked_ = client_seq_;
  send_segment(false, tcpflag::kSyn | tcpflag::kAck, {});
  server_seq_ += 1;
  now_ += opt_.rtt / 2;
  client_acked_ = server_seq_;
  send_segment(true, tcpflag::kAck, {});
  connected_ = true;
}

void TcpFlowBuilder::connect_rejected() {
  send_segment(true, tcpflag::kSyn, {});
  client_seq_ += 1;
  now_ += opt_.rtt / 2;
  server_acked_ = client_seq_;
  send_segment(false, tcpflag::kRst | tcpflag::kAck, {});
  closed_ = true;
}

void TcpFlowBuilder::connect_unanswered(int retries) {
  double backoff = 3.0;
  send_segment(true, tcpflag::kSyn, {});
  for (int i = 0; i < retries; ++i) {
    if (now_ + backoff >= sink_.window_end()) break;
    now_ += backoff;
    send_segment(true, tcpflag::kSyn, {});
    backoff *= 2;
  }
  closed_ = true;
}

void TcpFlowBuilder::maybe_retransmit(bool from_client, std::uint32_t seq,
                                      std::span<const std::uint8_t> payload) {
  if (opt_.loss_rate <= 0.0 || !rng_.bernoulli(opt_.loss_rate)) return;
  // Emit a duplicate of the segment a retransmission-timeout later; the
  // analyzer sees old data and counts a retransmission.
  const double saved = now_;
  now_ += std::max(opt_.rtt * 2, 0.005);
  std::uint32_t* seq_ptr = from_client ? &client_seq_ : &server_seq_;
  const std::uint32_t cur = *seq_ptr;
  *seq_ptr = seq;
  send_segment(from_client, tcpflag::kAck | tcpflag::kPsh, payload);
  *seq_ptr = cur;
  now_ = std::max(saved, now_ - opt_.rtt);  // keep time roughly monotone
}

void TcpFlowBuilder::send_data(bool from_client, std::span<const std::uint8_t> payload) {
  std::size_t off = 0;
  std::size_t segs_since_ack = 0;
  while (off < payload.size()) {
    const std::size_t n = std::min(opt_.mss, payload.size() - off);
    const auto segment = payload.subspan(off, n);
    const std::uint32_t seq_before = from_client ? client_seq_ : server_seq_;
    send_segment(from_client, tcpflag::kAck | (n < opt_.mss ? tcpflag::kPsh : 0), segment);
    if (from_client) {
      client_seq_ += static_cast<std::uint32_t>(n);
      server_acked_ = client_seq_;
      client_sent_ += n;
    } else {
      server_seq_ += static_cast<std::uint32_t>(n);
      client_acked_ = server_seq_;
      server_sent_ += n;
    }
    maybe_retransmit(from_client, seq_before, segment);
    now_ += static_cast<double>(n) * 8.0 / opt_.rate_bps;
    off += n;
    // Delayed ACK roughly every other segment.
    if (++segs_since_ack >= 2) {
      ack_from(!from_client);
      segs_since_ack = 0;
    }
  }
  if (!payload.empty()) ack_from(!from_client);
  // Remember the final client byte for keepalive probes.
  if (from_client && !payload.empty()) {
    last_client_payload_tail_.assign(payload.end() - 1, payload.end());
  }
}

void TcpFlowBuilder::client_message(std::span<const std::uint8_t> payload) {
  send_data(true, payload);
}

void TcpFlowBuilder::server_message(std::span<const std::uint8_t> payload) {
  send_data(false, payload);
}

void TcpFlowBuilder::client_transfer(std::uint64_t bytes) {
  // Emit in bounded chunks to avoid one huge allocation.
  static constexpr std::uint64_t kChunk = 64 * 1024;
  while (bytes > 0) {
    const std::uint64_t n = std::min(bytes, kChunk);
    send_data(true, filler_span(static_cast<std::size_t>(n)));
    bytes -= n;
    if (now_ >= sink_.window_end()) return;
  }
}

void TcpFlowBuilder::server_transfer(std::uint64_t bytes) {
  static constexpr std::uint64_t kChunk = 64 * 1024;
  while (bytes > 0) {
    const std::uint64_t n = std::min(bytes, kChunk);
    send_data(false, filler_span(static_cast<std::size_t>(n)));
    bytes -= n;
    if (now_ >= sink_.window_end()) return;
  }
}

void TcpFlowBuilder::keepalives(int n, double interval) {
  if (last_client_payload_tail_.empty()) {
    // Send one real byte first so there is something to probe with.
    const std::uint8_t b = '?';
    send_data(true, std::span<const std::uint8_t>(&b, 1));
  }
  for (int i = 0; i < n; ++i) {
    now_ += interval;
    if (now_ >= sink_.window_end()) return;
    client_seq_ -= 1;  // probe re-sends the last byte
    send_segment(true, tcpflag::kAck,
                 std::span<const std::uint8_t>(last_client_payload_tail_));
    client_seq_ += 1;
    ack_from(false);
  }
}

void TcpFlowBuilder::close() {
  if (closed_) return;
  send_segment(true, tcpflag::kFin | tcpflag::kAck, {});
  client_seq_ += 1;
  now_ += opt_.rtt / 2;
  server_acked_ = client_seq_;
  send_segment(false, tcpflag::kFin | tcpflag::kAck, {});
  server_seq_ += 1;
  now_ += opt_.rtt / 2;
  client_acked_ = server_seq_;
  send_segment(true, tcpflag::kAck, {});
  closed_ = true;
}

void TcpFlowBuilder::abort_rst() {
  if (closed_) return;
  send_segment(true, tcpflag::kRst | tcpflag::kAck, {});
  closed_ = true;
}

}  // namespace entrace
