#include "synth/model.h"

namespace entrace {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

EnterpriseModel::EnterpriseModel() {
  site_.enterprise_block = Subnet(Ipv4Address(128, 3, 0, 0), 16);
  for (int s = 0; s < kMaxSubnets; ++s) site_.subnets.push_back(subnet(s));
  site_.known_scanners = {internal_scanner(0).ip, internal_scanner(1).ip};
}

Subnet EnterpriseModel::subnet(int s) const {
  return Subnet(Ipv4Address(128, 3, static_cast<std::uint8_t>(s + 1), 0), 24);
}

HostRef EnterpriseModel::ref(Ipv4Address ip) {
  return {ip, MacAddress::from_host_id(ip.value())};
}

HostRef EnterpriseModel::host(int subnet_id, std::uint32_t index) const {
  // Host addresses start at .10; .1 is the router, low addresses reserved
  // for servers.
  return ref(subnet(subnet_id).host(10 + (index % kHostsPerSubnet)));
}

HostRef EnterpriseModel::external_host(std::uint64_t id) const {
  // Deterministic pseudo-random public addresses, avoiding 128.3/16,
  // multicast and reserved space.
  const std::uint64_t h = mix64(id);
  std::uint8_t a = static_cast<std::uint8_t>(16 + (h % 180));
  if (a == 128) a = 130;
  if (a == 127) a = 126;
  return ref(Ipv4Address(a, static_cast<std::uint8_t>(h >> 8),
                         static_cast<std::uint8_t>(h >> 16),
                         static_cast<std::uint8_t>(1 + ((h >> 24) % 253))));
}

// Server slots use host part .2-.9 in their subnet.
HostRef EnterpriseModel::smtp_server(int i) const { return ref(subnet(2).host(2 + (i % 2))); }
HostRef EnterpriseModel::imap_server() const { return ref(subnet(2).host(4)); }
HostRef EnterpriseModel::dns_server(int i) const {
  return i == 0 ? ref(subnet(16).host(2)) : ref(subnet(17).host(2));
}
HostRef EnterpriseModel::nbns_server(int i) const {
  return i == 0 ? ref(subnet(5).host(3)) : ref(subnet(16).host(3));
}
HostRef EnterpriseModel::auth_server() const { return ref(subnet(1).host(2)); }
HostRef EnterpriseModel::print_server() const { return ref(subnet(15).host(2)); }
HostRef EnterpriseModel::nfs_server(int i) const {
  switch (i % 3) {
    case 0:
      return ref(subnet(4).host(2));
    case 1:
      return ref(subnet(6).host(2));
    default:
      return ref(subnet(16).host(4));
  }
}
HostRef EnterpriseModel::ncp_server(int i) const {
  return i == 0 ? ref(subnet(3).host(2)) : ref(subnet(5).host(2));
}
HostRef EnterpriseModel::web_proxy() const { return ref(subnet(7).host(2)); }
HostRef EnterpriseModel::internal_web_server(std::uint32_t i) const {
  return ref(subnet(static_cast<int>(i * 7) % kMaxSubnets).host(5));
}
HostRef EnterpriseModel::veritas_server() const { return ref(subnet(8).host(2)); }
HostRef EnterpriseModel::dantz_server() const { return ref(subnet(9).host(2)); }
HostRef EnterpriseModel::ftp_server() const { return ref(subnet(10).host(2)); }
HostRef EnterpriseModel::hpss_server() const { return ref(subnet(10).host(3)); }
HostRef EnterpriseModel::sql_server(int i) const { return ref(subnet(11).host(2 + (i % 2))); }
HostRef EnterpriseModel::file_smb_server(std::uint32_t i) const {
  return ref(subnet(static_cast<int>(1 + i * 3) % kMaxSubnets).host(6));
}
HostRef EnterpriseModel::internal_scanner(int i) const {
  return ref(subnet(12).host(2 + (i % 2)));
}

Ipv4Address EnterpriseModel::multicast_group(std::uint32_t i) {
  return Ipv4Address(239, 192, static_cast<std::uint8_t>(i >> 8),
                     static_cast<std::uint8_t>(i));
}

}  // namespace entrace
