#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "synth/apps.h"

namespace entrace {

// ---- GenContext -------------------------------------------------------------

HostRef GenContext::other_internal() {
  int s = subnet_;
  while (s == subnet_) {
    s = static_cast<int>(rng_.uniform_int(0, static_cast<std::uint64_t>(
                                                 EnterpriseModel::kMaxSubnets - 1)));
  }
  return model_.host(s, pick_host_index());
}

HostRef GenContext::external() {
  // Zipf-ish popularity across a large pool.
  return model_.external_host(rng_.zipf(20000, 0.7));
}

std::uint32_t GenContext::pick_host_index() {
  // Mildly skewed host activity: a few busy hosts per subnet, a long tail
  // of quiet ones.
  return static_cast<std::uint32_t>(rng_.zipf(EnterpriseModel::kHostsPerSubnet, 0.45));
}

std::vector<double> GenContext::arrivals(double expected_at_scale1, double headroom) {
  return arrivals_abs(expected_at_scale1 * spec_.scale, headroom);
}

std::vector<double> GenContext::arrivals_abs(double expected, double headroom) {
  const auto whole = static_cast<std::size_t>(expected);
  std::size_t n = whole + (rng_.bernoulli(expected - static_cast<double>(whole)) ? 1 : 0);
  std::vector<double> times;
  times.reserve(n);
  const double span = duration() * (1.0 - headroom);
  for (std::size_t i = 0; i < n; ++i) times.push_back(t0_ + rng_.uniform() * span);
  std::sort(times.begin(), times.end());
  return times;
}

std::size_t GenContext::scaled_count(double expected_at_scale1) {
  const double expected = expected_at_scale1 * spec_.scale;
  const auto whole = static_cast<std::size_t>(expected);
  return whole + (rng_.bernoulli(expected - static_cast<double>(whole)) ? 1 : 0);
}

TcpOptions GenContext::lan_tcp() const {
  TcpOptions opt;
  opt.rtt = 0.0004;
  opt.rate_bps = 90e6;
  opt.loss_rate = 0.0008;  // <1% internal retransmission rates (Figure 10)
  return opt;
}

TcpOptions GenContext::wan_tcp() const {
  TcpOptions opt;
  opt.rtt = 0.025 + 0.05 * (spec_.seed % 3);  // stable per-dataset WAN RTT band
  opt.rate_bps = 6e6;
  opt.loss_rate = 0.004;  // WAN retransmission rates exceed internal ones
  return opt;
}

// ---- dataset generation ---------------------------------------------------------

TracePlan plan_trace(const DatasetSpec& spec, int subnet, int rep, int trace_index) {
  TracePlan plan;
  plan.name = spec.name + "-s" + (subnet < 10 ? "0" : "") + std::to_string(subnet) +
              (spec.traces_per_subnet > 1 ? "-r" + std::to_string(rep) : "");
  plan.subnet = subnet;
  plan.rep = rep;
  plan.trace_index = trace_index;
  // Successive windows model the tap rotation through the subnets.
  plan.start_ts = static_cast<double>(trace_index) * (spec.trace_duration + 30.0);
  plan.duration = spec.trace_duration;
  plan.snaplen = spec.snaplen;
  return plan;
}

std::vector<TracePlan> plan_dataset(const DatasetSpec& spec) {
  std::vector<TracePlan> plans;
  int trace_index = 0;
  for (int rep = 0; rep < spec.traces_per_subnet; ++rep) {
    for (int subnet : spec.monitored_subnets) {
      plans.push_back(plan_trace(spec, subnet, rep, trace_index));
      ++trace_index;
    }
  }
  return plans;
}

void emit_trace(const DatasetSpec& spec, const EnterpriseModel& model, const TracePlan& plan,
                PacketSink& sink) {
  Rng root(spec.seed * 0x1000193 + static_cast<std::uint64_t>(plan.trace_index) * 0x9E37 + 17);
  Rng rng = root.fork(static_cast<std::uint64_t>(plan.subnet) * 131 +
                      static_cast<std::uint64_t>(plan.rep));
  GenContext ctx(sink, rng, model, spec, plan.subnet, plan.start_ts,
                 plan.start_ts + plan.duration);

  gen_web(ctx);
  gen_email(ctx);
  gen_name(ctx);
  gen_windows(ctx);
  gen_netfile(ctx);
  gen_backup(ctx);
  gen_other(ctx);
  gen_background(ctx);
  gen_scanner(ctx);
}

Trace generate_trace(const DatasetSpec& spec, const EnterpriseModel& model,
                     const TracePlan& plan) {
  Trace trace;
  trace.name = plan.name;
  trace.subnet_id = plan.subnet;
  trace.snaplen = plan.snaplen;
  trace.start_ts = plan.start_ts;
  trace.duration = plan.duration;

  PacketSink sink(trace);
  emit_trace(spec, model, plan, sink);

  std::stable_sort(trace.packets.begin(), trace.packets.end(),
                   [](const RawPacket& a, const RawPacket& b) { return a.ts < b.ts; });
  // Drop anything an app emitted past the capture window (the tap moved on).
  while (!trace.packets.empty() && trace.packets.back().ts > trace.start_ts + trace.duration) {
    trace.packets.pop_back();
  }
  return trace;
}

TraceSet generate_dataset(const DatasetSpec& spec, const EnterpriseModel& model) {
  TraceSet set;
  set.dataset_name = spec.name;
  for (const TracePlan& plan : plan_dataset(spec)) {
    set.traces.push_back(generate_trace(spec, model, plan));
  }
  return set;
}

std::vector<std::string> generate_dataset_to_pcap(const DatasetSpec& spec,
                                                  const EnterpriseModel& model,
                                                  const std::string& dir) {
  std::vector<std::string> paths;
  for (const TracePlan& plan : plan_dataset(spec)) {
    const Trace trace = generate_trace(spec, model, plan);
    const std::string path = dir + "/" + trace.name + ".pcap";
    trace.save(path);
    paths.push_back(path);
  }
  return paths;
}

}  // namespace entrace
