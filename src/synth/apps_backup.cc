// Backup traffic (§5.2.3, Table 15): Veritas with separate control and
// strictly one-way data connections, Dantz with bidirectional data inside
// one connection, Connected backing up to an external service — plus the
// lossy-path Veritas trace behind Figure 10's 5% retransmission outlier.
#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {
namespace {

std::uint64_t mb(double v) { return static_cast<std::uint64_t>(v * 1024 * 1024); }

}  // namespace

void gen_backup(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const BackupKnobs& k = ctx.spec().backup;
  const EnterpriseModel& m = ctx.model();
  const bool lossy_trace = rng.bernoulli(k.lossy_trace_frac);

  // ---- Veritas: control connections (tiny, chatty) -------------------------
  for (double t : ctx.arrivals(k.veritas_ctrl_conns)) {
    const HostRef client = ctx.local_host();
    if (m.subnet_of(m.veritas_server().ip) == ctx.subnet()) continue;
    TcpFlowBuilder tcp(ctx.sink(), rng, client, m.veritas_server(), ctx.ephemeral_port(),
                       ports::kVeritasCtrl, t, ctx.lan_tcp());
    tcp.connect();
    for (int i = 0; i < 4; ++i) {
      tcp.client_message(filler_span(48 + rng.uniform_int(0, 80)));
      tcp.server_message(filler_span(32 + rng.uniform_int(0, 60)));
      tcp.advance(rng.exponential(2.0));
    }
    tcp.close();
  }

  // ---- Veritas: data connections (huge, strictly client -> server) ---------
  // A lossy trace always carries its Veritas transfer — the Figure 10
  // outlier is a single backup connection crossing a flaky path.
  auto veritas_arrivals = ctx.arrivals(k.veritas_data_conns);
  if (lossy_trace && veritas_arrivals.empty()) {
    veritas_arrivals.push_back(ctx.t0() + ctx.duration() * 0.1);
  }
  for (double t : veritas_arrivals) {
    const HostRef client = ctx.local_host();
    if (m.subnet_of(m.veritas_server().ip) == ctx.subnet()) continue;
    TcpOptions opt = ctx.lan_tcp();
    if (lossy_trace) opt.loss_rate = 0.05;  // flaky NIC / congested segment
    TcpFlowBuilder tcp(ctx.sink(), rng, client, m.veritas_server(), ctx.ephemeral_port(),
                       ports::kVeritasData, t, opt);
    tcp.connect();
    const std::uint64_t bytes = mb(k.veritas_data_mb * rng.pareto(1.3, 0.15, 12.0));
    tcp.client_transfer(bytes);
    tcp.close();
  }

  // ---- Dantz: single connection, bidirectional data ---------------------------
  for (double t : ctx.arrivals(k.dantz_conns)) {
    const HostRef client = ctx.local_host();
    if (m.subnet_of(m.dantz_server().ip) == ctx.subnet()) continue;
    TcpFlowBuilder tcp(ctx.sink(), rng, client, m.dantz_server(), ctx.ephemeral_port(),
                       ports::kDantz, t, ctx.lan_tcp());
    tcp.connect();
    // Control exchange inside the data connection.
    tcp.client_message(filler_span(220));
    tcp.server_message(filler_span(180));
    const std::uint64_t c2s = mb(k.dantz_mb * rng.pareto(1.3, 0.1, 10.0));
    tcp.client_transfer(c2s);
    if (rng.bernoulli(k.dantz_bidir_frac)) {
      // Fingerprint/validation exchange: tens of MB server -> client,
      // within the same connection.
      tcp.server_transfer(mb(k.dantz_mb * rng.uniform(0.3, 1.2)));
    } else {
      tcp.server_transfer(mb(0.02));
    }
    tcp.close();
  }

  // ---- Connected: backup to an external provider ------------------------------
  for (double t : ctx.arrivals(k.connected_conns)) {
    const HostRef client = ctx.local_host();
    TcpFlowBuilder tcp(ctx.sink(), rng, client, ctx.external(), ctx.ephemeral_port(),
                       ports::kConnected, t, ctx.wan_tcp());
    tcp.connect();
    tcp.client_transfer(mb(k.connected_mb * rng.pareto(1.4, 0.2, 8.0)));
    tcp.server_transfer(mb(0.01));
    tcp.close();
  }
}

}  // namespace entrace
