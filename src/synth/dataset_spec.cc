#include "synth/dataset_spec.h"

#include <stdexcept>

namespace entrace {
namespace {

// D0-D2 monitor all 22 subnets of both routers, including the subnets
// holding the mail servers (2), auth server (1), and an NCP server (3).
std::vector<int> all_22() {
  std::vector<int> v;
  for (int i = 0; i < 22; ++i) v.push_back(i);
  return v;
}

// D3-D4 monitor 18 subnets that exclude the mail/auth/NCP-heavy low
// subnets but include the print server (15) and main DNS servers (16, 17).
std::vector<int> high_18() {
  std::vector<int> v;
  for (int i = 4; i < 22; ++i) v.push_back(i);
  return v;
}

}  // namespace

DatasetSpec dataset_d0(double scale) {
  DatasetSpec d;
  d.name = "D0";
  d.num_subnets = 22;
  d.traces_per_subnet = 1;
  d.trace_duration = 600.0;  // 10-minute traces
  d.snaplen = 1500;
  d.seed = 0xD0;
  d.scale = scale;
  d.imap_secure = false;  // IMAP4 in the clear, pre-policy change
  d.monitored_subnets = all_22();

  // 10-minute windows: client-driven counts are roughly a quarter of the
  // hour-long datasets' per-trace values (D0's packet rate is the highest).
  d.web.browse_sessions = 420;
  d.web.google_sessions = 0.4;   // google bots dominate D0 internal bytes
  d.web.google1_share = 0.5;
  d.web.scanner_sessions = 0.3;
  d.web.ifolder_sessions = 0.1;
  d.web.https_sessions = 110;
  d.web.inbound_sessions = 450;
  d.other.background_radiation = 25;  // 10-minute windows
  d.email.smtp_client_sessions = 18;
  d.email.imap_sessions = 26;
  d.email.smtp_wan_fail = 0.18;
  d.names.dns_client_queries = 1300;
  d.names.smtp_lookup_queries = 4500;
  d.names.nbns_requests = 1300;
  d.names.srvloc_sessions = 380;
  // DCE/RPC: user authentication dominates (NetLogon 42%, LsaRPC 26%),
  // no WritePrinter at all (Table 11).
  d.windows.cifs_sessions = 45;
  d.windows.epm_sessions = 12;
  d.windows.w_netlogon = 0.42;
  d.windows.w_lsarpc = 0.26;
  d.windows.w_spoolss_write = 0.0;
  d.windows.w_spoolss_other = 0.24;
  d.windows.w_other = 0.08;
  d.windows.dgm_broadcasts = 35;
  // NFS read-heavy (Table 13: 70% reads, 64% of bytes), NCP more conns
  // than any other dataset (Table 12: 2590 vs 1067 NFS).
  d.netfile.nfs_pairs = 5;
  d.netfile.nfs_requests_mean = 6300;
  d.netfile.nfs_udp_frac = 0.66;
  d.netfile.nfs_read = 0.70;
  d.netfile.nfs_write = 0.15;
  d.netfile.nfs_getattr = 0.09;
  d.netfile.nfs_lookup = 0.04;
  d.netfile.nfs_access = 0.005;
  d.netfile.ncp_sessions = 118;
  d.netfile.ncp_requests_mean = 340;
  d.netfile.ncp_read = 0.42;
  d.netfile.ncp_write = 0.01;
  d.netfile.ncp_fdinfo = 0.27;
  d.netfile.ncp_openclose = 0.09;
  d.netfile.ncp_size = 0.09;
  d.netfile.ncp_search = 0.09;
  d.netfile.ncp_nds = 0.02;
  // Backup: D0 carries a sizable share of the aggregate Table 15 volume.
  d.backup.veritas_ctrl_conns = 12;
  d.backup.veritas_data_conns = 3.2;
  d.backup.veritas_data_mb = 24;
  d.backup.dantz_conns = 10;
  d.backup.dantz_mb = 13;
  d.backup.connected_conns = 1.0;
  d.other.ssh_sessions = 40;
  d.other.ftp_sessions = 8;
  d.other.ftp_mb = 14;
  d.other.hpss_sessions = 2;
  d.other.hpss_mb = 55;
  d.other.mcast_video_sessions = 1.5;
  d.other.mcast_video_mb = 22;
  d.other.other_udp_flows = 1400;
  d.other.other_tcp_flows = 90;
  d.other.icmp_echo_pairs = 380;
  d.other.sap_announcers = 380;
  d.other.ntp_hosts = 90;
  d.other.snmp_polls = 70;
  d.other.nav_pings = 60;
  d.other.misc_tcp_sessions = 130;
  d.other.print_jobs = 15;
  d.other.sql_sessions = 12;
  d.background.ipx_per_trace = 6400;   // IPX is 80% of non-IP in D0
  d.background.arp_per_trace = 800;
  d.background.other_l3_per_trace = 800;
  d.scanner.internal_sweeps = 0.4;   // 10-minute windows
  d.scanner.external_icmp_scans = 0.5;
  return d;
}

DatasetSpec dataset_d1(double scale) {
  DatasetSpec d;
  d.name = "D1";
  d.num_subnets = 22;
  d.traces_per_subnet = 2;  // two 1-hour traces per tap
  d.trace_duration = 3600.0;
  d.snaplen = 68;  // header-only
  d.seed = 0xD1;
  d.scale = scale;
  d.monitored_subnets = all_22();

  // TCP carries 95% of bytes in D1: a heavy backup/bulk hour.
  d.netfile.nfs_pairs = 4;
  d.netfile.nfs_requests_mean = 6000;
  d.netfile.nfs_udp_frac = 0.16;
  d.netfile.ncp_sessions = 100;
  d.netfile.ncp_requests_mean = 330;
  d.backup.veritas_data_conns = 3.5;
  d.backup.veritas_data_mb = 28;
  d.backup.dantz_conns = 9;
  d.backup.dantz_mb = 16;
  d.other.mcast_video_mb = 32;
  d.background.ipx_per_trace = 34000;
  d.background.arp_per_trace = 2700;
  d.background.other_l3_per_trace = 7600;
  return d;
}

DatasetSpec dataset_d2(double scale) {
  DatasetSpec d = dataset_d1(scale);
  d.name = "D2";
  d.traces_per_subnet = 1;
  d.seed = 0xD2;
  // Smaller hour: fewer backup bytes, UDP byte share 10%.
  d.netfile.nfs_udp_frac = 0.31;
  d.netfile.nfs_requests_mean = 5200;
  d.backup.veritas_data_conns = 2.2;
  d.backup.veritas_data_mb = 18;
  d.backup.dantz_conns = 7;
  d.backup.dantz_mb = 12;
  d.background.ipx_per_trace = 14000;
  d.background.arp_per_trace = 1100;
  d.background.other_l3_per_trace = 6300;
  return d;
}

DatasetSpec dataset_d3(double scale) {
  DatasetSpec d;
  d.name = "D3";
  d.num_subnets = 18;
  d.traces_per_subnet = 1;
  d.trace_duration = 3600.0;
  d.snaplen = 1500;
  d.seed = 0xD3;
  d.scale = scale;
  d.monitored_subnets = high_18();

  d.web.browse_sessions = 1000;
  d.web.scanner_sessions = 0.9;  // scan1 is 45% of D3 internal requests
  d.web.google_sessions = 0.15;
  d.web.google1_share = 0.0;     // google2 only (Table 6)
  d.web.ifolder_sessions = 0.02;
  d.email.smtp_client_sessions = 45;  // mail subnets not monitored
  d.email.imap_sessions = 55;
  d.email.smtp_wan_fail = 0.01;  // D3-4 WAN SMTP succeeds 99-100%
  d.names.dns_client_queries = 5200;
  d.names.dns_server_boost = 30.0;  // main DNS servers monitored
  d.names.smtp_lookup_queries = 0;
  d.names.nbns_requests = 5200;
  d.names.srvloc_sessions = 1100;
  // Printing dominates DCE/RPC (Table 11: Spoolss 63%, WritePrinter 29%).
  d.windows.w_netlogon = 0.05;
  d.windows.w_lsarpc = 0.05;
  d.windows.w_spoolss_write = 0.29;
  d.windows.w_spoolss_other = 0.34;
  d.windows.w_other = 0.27;
  d.windows.print_server_boost = 14.0;
  // NFS attribute-heavy (Table 13: getattr 53%, read 25% / 92% of bytes).
  d.netfile.nfs_pairs = 3;
  d.netfile.nfs_requests_mean = 5600;
  d.netfile.nfs_udp_frac = 0.94;
  d.netfile.nfs_read = 0.25;
  d.netfile.nfs_write = 0.01;
  d.netfile.nfs_getattr = 0.53;
  d.netfile.nfs_lookup = 0.16;
  d.netfile.nfs_access = 0.04;
  // NCP light (both NCP servers' subnets mostly unmonitored in D3-4).
  d.netfile.ncp_sessions = 35;
  d.netfile.ncp_requests_mean = 350;
  d.netfile.ncp_write = 0.21;
  d.netfile.ncp_fdinfo = 0.16;
  d.netfile.ncp_search = 0.07;
  d.backup.veritas_data_conns = 1.4;
  d.backup.veritas_data_mb = 14;
  d.backup.dantz_conns = 4;
  d.backup.dantz_mb = 9;
  d.other.mcast_video_mb = 18;
  d.background.ipx_per_trace = 7000;   // ARP 27% of non-IP in D3
  d.background.arp_per_trace = 3300;
  d.background.other_l3_per_trace = 2000;
  return d;
}

DatasetSpec dataset_d4(double scale) {
  DatasetSpec d = dataset_d3(scale);
  d.name = "D4";
  d.seed = 0xD4;
  d.web.scanner_sessions = 0.45;
  d.web.google_sessions = 0.12;
  d.web.ifolder_sessions = 0.35;  // iFolder is 10% of D4 internal requests
  // WritePrinter 81% of requests, 96% of bytes.
  d.windows.w_netlogon = 0.005;
  d.windows.w_lsarpc = 0.006;
  d.windows.w_spoolss_write = 0.81;
  d.windows.w_spoolss_other = 0.10;
  d.windows.w_other = 0.08;
  // NFS write-heavy (19% of requests, 83% of bytes), UDP only 7%.
  d.netfile.nfs_requests_mean = 8500;
  d.netfile.nfs_udp_frac = 0.07;
  d.netfile.nfs_read = 0.01;
  d.netfile.nfs_write = 0.19;
  d.netfile.nfs_getattr = 0.50;
  d.netfile.nfs_lookup = 0.23;
  d.netfile.nfs_access = 0.05;
  d.netfile.ncp_sessions = 45;
  d.netfile.ncp_write = 0.02;
  d.netfile.ncp_fdinfo = 0.26;
  d.netfile.ncp_search = 0.16;
  d.backup.veritas_data_conns = 1.8;
  d.backup.veritas_data_mb = 17;
  d.backup.lossy_trace_frac = 0.08;  // the 5%-retransmission Veritas trace
  d.background.ipx_per_trace = 2900;  // "Other" dominates D4 non-IP
  d.background.arp_per_trace = 1500;
  d.background.other_l3_per_trace = 4800;
  return d;
}

std::vector<DatasetSpec> all_datasets(double scale) {
  return {dataset_d0(scale), dataset_d1(scale), dataset_d2(scale), dataset_d3(scale),
          dataset_d4(scale)};
}

DatasetSpec dataset_by_name(const std::string& name, double scale) {
  if (name == "D0") return dataset_d0(scale);
  if (name == "D1") return dataset_d1(scale);
  if (name == "D2") return dataset_d2(scale);
  if (name == "D3") return dataset_d3(scale);
  if (name == "D4") return dataset_d4(scale);
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace entrace
