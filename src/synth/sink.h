// PacketSink: where generated frames land.  Applies the trace's snaplen at
// emit time (modeling the capture apparatus) while recording the true wire
// length, exactly like a pcap capture with -s.
//
// The sink can be backed by a Trace (materialized generation) or a bare
// packet vector with an explicit capture window (streaming slice
// regeneration, see SyntheticTraceSource).  restrict_to() narrows emission
// to a [lo, hi) timestamp slice: generators run deterministically, so
// re-running them with successive slices reproduces the full trace with
// only one slice buffered at a time.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "pcap/trace.h"

namespace entrace {

class PacketSink {
 public:
  explicit PacketSink(Trace& trace)
      : out_(trace.packets),
        start_(trace.start_ts),
        duration_(trace.duration),
        snaplen_(trace.snaplen) {}

  PacketSink(std::vector<RawPacket>& out, double start_ts, double duration,
             std::uint32_t snaplen)
      : out_(out), start_(start_ts), duration_(duration), snaplen_(snaplen) {}

  // Keep only packets with ts in [lo, hi); everything else is discarded at
  // emit time.  Default: keep everything.
  void restrict_to(double lo, double hi) {
    lo_ = lo;
    hi_ = hi;
  }

  // True when a packet at `ts` would be kept.  Generators use this to skip
  // frame *construction* (allocation, header encode, checksum) for packets
  // a restricted slice will discard anyway — the big cost of slice
  // regeneration.  Callers must make all RNG draws before consulting it so
  // the deterministic draw sequence is independent of the slice window.
  bool accepts(double ts) const { return ts >= lo_ && ts < hi_; }

  void emit(double ts, std::vector<std::uint8_t> frame) {
    if (!accepts(ts)) return;
    RawPacket pkt;
    pkt.ts = ts;
    pkt.wire_len = static_cast<std::uint32_t>(frame.size());
    if (frame.size() > snaplen_) frame.resize(snaplen_);
    pkt.data = std::move(frame);
    out_.push_back(std::move(pkt));
  }

  // Capture window; sessions must not emit beyond it.
  double window_end() const { return start_ + duration_; }
  double window_start() const { return start_; }
  std::uint32_t snaplen() const { return snaplen_; }

 private:
  std::vector<RawPacket>& out_;
  double start_;
  double duration_;
  std::uint32_t snaplen_;
  double lo_ = -std::numeric_limits<double>::infinity();
  double hi_ = std::numeric_limits<double>::infinity();
};

}  // namespace entrace
