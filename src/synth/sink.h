// PacketSink: where generated frames land.  Applies the trace's snaplen at
// emit time (modeling the capture apparatus) while recording the true wire
// length, exactly like a pcap capture with -s.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "pcap/trace.h"

namespace entrace {

class PacketSink {
 public:
  explicit PacketSink(Trace& trace) : trace_(trace) {}

  void emit(double ts, std::vector<std::uint8_t> frame) {
    RawPacket pkt;
    pkt.ts = ts;
    pkt.wire_len = static_cast<std::uint32_t>(frame.size());
    if (frame.size() > trace_.snaplen) frame.resize(trace_.snaplen);
    pkt.data = std::move(frame);
    trace_.packets.push_back(std::move(pkt));
  }

  // Capture window; sessions must not emit beyond it.
  double window_end() const { return trace_.start_ts + trace_.duration; }
  double window_start() const { return trace_.start_ts; }
  std::uint32_t snaplen() const { return trace_.snaplen; }

 private:
  Trace& trace_;
};

}  // namespace entrace
