// TcpFlowBuilder: emits complete, well-formed TCP conversations (handshake,
// segmentation, delayed ACKs, FIN/RST teardown, loss-induced
// retransmissions, and NCP/SSH-style 1-byte keepalive probes) as Ethernet
// frames into a PacketSink.
//
// Every application generator expresses its dialogue through this builder,
// which keeps the transport-level artifacts the analysis measures —
// durations ~ RTT, packet counts, retransmission rates — consistent across
// applications.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/encoder.h"
#include "synth/model.h"
#include "synth/sink.h"
#include "util/rng.h"

namespace entrace {

struct TcpOptions {
  double rtt = 0.0005;      // enterprise LAN default; WAN sessions use ~30ms+
  double rate_bps = 100e6;  // serialization pacing for bulk data
  double loss_rate = 0.0;   // per-data-segment retransmission probability
  // Chosen so a full segment's frame (14 Ethernet + 20 IP + 20 TCP + MSS)
  // is exactly 1500 bytes: the datasets captured with snaplen 1500 would
  // otherwise silently lose 14 payload bytes of every full-MTU frame and
  // desynchronize payload parsing.
  std::size_t mss = 1446;
  std::uint8_t client_ttl = 64;
  std::uint8_t server_ttl = 64;
};

class TcpFlowBuilder {
 public:
  TcpFlowBuilder(PacketSink& sink, Rng& rng, const HostRef& client, const HostRef& server,
                 std::uint16_t src_port, std::uint16_t dst_port, double start,
                 TcpOptions options = {});

  // ---- connection establishment variants ------------------------------------
  void connect();                        // full 3-way handshake
  void connect_rejected();               // SYN answered by RST
  void connect_unanswered(int retries);  // SYNs into the void

  // ---- data ----------------------------------------------------------------
  // Send an exact application message in one direction (segmented at MSS,
  // ACKed by the peer).
  void client_message(std::span<const std::uint8_t> payload);
  void server_message(std::span<const std::uint8_t> payload);
  // Bulk filler transfer of the given size.
  void client_transfer(std::uint64_t bytes);
  void server_transfer(std::uint64_t bytes);

  // Idle time (think time, poll interval).
  void advance(double dt) { now_ += dt; }

  // n 1-byte keepalive probes (retransmissions of the last client byte),
  // spaced `interval` apart, each ACKed.
  void keepalives(int n, double interval);

  // ---- teardown ---------------------------------------------------------------
  void close();       // FIN exchange
  void abort_rst();   // RST from client
  void abandon() {}   // connection left dangling (common for UDP-era apps)

  double now() const { return now_; }
  bool connected() const { return connected_; }
  std::uint64_t client_bytes_sent() const { return client_sent_; }
  std::uint64_t server_bytes_sent() const { return server_sent_; }

 private:
  void send_segment(bool from_client, std::uint8_t flags,
                    std::span<const std::uint8_t> payload);
  void send_data(bool from_client, std::span<const std::uint8_t> payload);
  void maybe_retransmit(bool from_client, std::uint32_t seq,
                        std::span<const std::uint8_t> payload);
  void ack_from(bool from_client);

  PacketSink& sink_;
  Rng& rng_;
  HostRef client_;
  HostRef server_;
  std::uint16_t src_port_;
  std::uint16_t dst_port_;
  TcpOptions opt_;
  double now_;
  bool connected_ = false;
  bool closed_ = false;
  std::uint32_t client_seq_;  // next seq to send
  std::uint32_t server_seq_;
  std::uint32_t client_acked_ = 0;  // highest seq seen from peer + 1
  std::uint32_t server_acked_ = 0;
  std::uint64_t client_sent_ = 0;
  std::uint64_t server_sent_ = 0;
  std::vector<std::uint8_t> last_client_payload_tail_;
};

}  // namespace entrace
