// Name services (§5.1.3): DNS with the paper's request-type and
// return-code mixes and on/off-site latency split; Netbios-NS with its
// striking ~40-50% stale-name failure rate; multicast SrvLoc with its
// peer-to-peer fan-out pattern.
#include <string>

#include "proto/dns.h"
#include "proto/netbios.h"
#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {
namespace {

std::uint16_t sample_qtype(Rng& rng, const NameKnobs& k) {
  switch (rng.weighted({k.frac_a, k.frac_aaaa, k.frac_ptr, k.frac_mx,
                        1.0 - k.frac_a - k.frac_aaaa - k.frac_ptr - k.frac_mx})) {
    case 0:
      return dnstype::kA;
    case 1:
      return dnstype::kAaaa;
    case 2:
      return dnstype::kPtr;
    case 3:
      return dnstype::kMx;
    default:
      return 16;  // TXT
  }
}

std::string random_qname(Rng& rng, bool broken) {
  const std::uint64_t n = rng.uniform_int(0, broken ? 800 : 4000);
  return (broken ? "stale" : "host") + std::to_string(n) +
         (rng.bernoulli(0.5) ? ".lbl.example" : ".example.org");
}

// One DNS query/response exchange on a fresh ephemeral port (one UDP flow
// per lookup, as resolvers of the era behaved under per-query sockets).
void dns_lookup(GenContext& ctx, double t, const HostRef& client, const HostRef& server,
                double latency, std::uint16_t qtype, bool fails) {
  Rng& rng = ctx.rng();
  DnsMessage q;
  q.id = static_cast<std::uint16_t>(rng.next_u64());
  q.qname = random_qname(rng, fails);
  q.qtype = qtype;
  const std::uint16_t sport = ctx.ephemeral_port();
  send_udp(ctx.sink(), client, server, sport, ports::kDns, t, encode_dns(q));
  DnsMessage r = q;
  r.is_response = true;
  r.rcode = fails ? dnsrcode::kNxDomain : dnsrcode::kNoError;
  r.ancount = fails ? 0 : static_cast<std::uint16_t>(1 + rng.uniform_int(0, 2));
  send_udp(ctx.sink(), server, client, ports::kDns, sport, t + latency, encode_dns(r));

  // Hosts configured to resolve A and AAAA in parallel (the paper's
  // explanation for the surprisingly high AAAA share).
  if (qtype == dnstype::kA && rng.bernoulli(0.3)) {
    DnsMessage q6 = q;
    q6.id = static_cast<std::uint16_t>(rng.next_u64());
    q6.qtype = dnstype::kAaaa;
    const std::uint16_t sport6 = ctx.ephemeral_port();
    send_udp(ctx.sink(), client, server, sport6, ports::kDns, t + 0.0002, encode_dns(q6));
    DnsMessage r6 = q6;
    r6.is_response = true;
    r6.rcode = r.rcode;
    r6.ancount = fails ? 0 : 1;
    send_udp(ctx.sink(), server, client, ports::kDns, sport6, t + 0.0002 + latency,
             encode_dns(r6));
  }
}

void gen_dns(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const NameKnobs& k = ctx.spec().names;
  const EnterpriseModel& m = ctx.model();

  auto ent_latency = [&rng] { return 0.0003 + rng.exponential(0.0002); };
  auto wan_latency = [&rng] { return 0.008 + rng.exponential(0.015); };

  // Local clients resolving via the site's DNS servers.
  for (double t : ctx.arrivals(k.dns_client_queries)) {
    const HostRef client = ctx.local_host();
    const HostRef server = m.dns_server(static_cast<int>(rng.uniform_int(0, 1)));
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;  // handled server-side
    dns_lookup(ctx, t, client, server, ent_latency(), sample_qtype(rng, k),
               rng.bernoulli(k.nxdomain_rate));
  }

  // SMTP servers are the top DNS clients (lookups for incoming mail);
  // visible when their subnet is monitored.
  if (ctx.monitoring(m.subnet_of(m.smtp_server(0).ip))) {
    for (double t : ctx.arrivals(k.smtp_lookup_queries)) {
      const HostRef client = m.smtp_server(static_cast<int>(rng.uniform_int(0, 1)));
      const HostRef server = m.dns_server(0);
      const std::uint16_t qtype = rng.bernoulli(0.4) ? dnstype::kMx
                                  : rng.bernoulli(0.5) ? dnstype::kPtr
                                                       : dnstype::kA;
      dns_lookup(ctx, t, client, server, ent_latency(), qtype,
                 rng.bernoulli(k.nxdomain_rate));
    }
  }

  // Server-side view when a main DNS server's subnet is monitored: queries
  // from everywhere, plus the resolver's own WAN lookups.
  for (int i = 0; i < 2; ++i) {
    const HostRef server = m.dns_server(i);
    if (!ctx.monitoring(m.subnet_of(server.ip))) continue;
    for (double t : ctx.arrivals(k.dns_client_queries * k.dns_server_boost / 10.0)) {
      dns_lookup(ctx, t, ctx.other_internal(), server, ent_latency(), sample_qtype(rng, k),
                 rng.bernoulli(k.nxdomain_rate));
    }
    // Recursive lookups to off-site authorities (WAN latency ~20 ms).
    for (double t : ctx.arrivals(k.dns_client_queries * k.dns_server_boost / 14.0)) {
      dns_lookup(ctx, t, server, ctx.external(), wan_latency(), sample_qtype(rng, k),
                 rng.bernoulli(k.nxdomain_rate));
    }
  }
}

void gen_nbns(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const NameKnobs& k = ctx.spec().names;
  const EnterpriseModel& m = ctx.model();

  // Name pool: a name is persistently stale (fails) by hash — failures are
  // a property of the name going out of date, not of any one client.
  auto name_for = [&rng, &k](bool& fails) {
    fails = rng.bernoulli(k.nbns_fail_rate);
    const std::uint64_t n = rng.uniform_int(0, fails ? 600 : 1500);
    return (fails ? "OLDHOST" : "HOST") + std::to_string(n);
  };

  auto one_request = [&](double t, const HostRef& client) {
    const HostRef server = m.nbns_server(rng.bernoulli(0.95) ? 0 : 1);
    if (m.subnet_of(server.ip) == m.subnet_of(client.ip)) return;
    NbnsMessage msg;
    msg.id = static_cast<std::uint16_t>(rng.next_u64());
    const double r = rng.uniform();
    if (r < k.nbns_query_frac) {
      msg.opcode = nbns_opcode::kQuery;
    } else if (r < k.nbns_query_frac + k.nbns_refresh_frac) {
      msg.opcode = nbns_opcode::kRefresh;
    } else {
      msg.opcode = rng.bernoulli(0.6) ? nbns_opcode::kRegistration : nbns_opcode::kRelease;
    }
    bool fails = false;
    msg.name = name_for(fails);
    // Name-type mix: 63-71% workstation/server, 22-32% domain/browser.
    switch (rng.weighted({0.45, 0.22, 0.27, 0.06})) {
      case 0: msg.suffix = nbns_suffix::kWorkstation; break;
      case 1: msg.suffix = nbns_suffix::kServer; break;
      case 2:
        msg.suffix = rng.bernoulli(0.5) ? nbns_suffix::kDomainGroup : nbns_suffix::kBrowser;
        break;
      default: msg.suffix = 0x03; break;  // messenger
    }
    const std::uint16_t sport = ctx.ephemeral_port();
    send_udp(ctx.sink(), client, server, sport, ports::kNetbiosNs, t, encode_nbns(msg));
    NbnsMessage resp = msg;
    resp.is_response = true;
    resp.rcode = (msg.opcode == nbns_opcode::kQuery && fails) ? 3 : 0;
    send_udp(ctx.sink(), server, client, ports::kNetbiosNs, sport, t + 0.0006,
             encode_nbns(resp));
  };

  // Requests spread across many clients (top-10 < 40% of requests).
  for (double t : ctx.arrivals(k.nbns_requests)) one_request(t, ctx.local_host());
  // Server-side view.
  for (int i = 0; i < 2; ++i) {
    if (!ctx.monitoring(m.subnet_of(m.nbns_server(i).ip))) continue;
    for (double t : ctx.arrivals(k.nbns_requests * 6)) one_request(t, ctx.other_internal());
  }
}

void gen_srvloc(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const NameKnobs& k = ctx.spec().names;
  // Multicast service-location announcements/queries from local hosts,
  // plus the unicast peer-to-peer pattern that produces the fan-out tail
  // (§4: "the tail of the internal fan-out ... is largely due to the
  // peer-to-peer communication pattern of SrvLoc traffic").
  for (double t : ctx.arrivals(k.srvloc_sessions)) {
    const HostRef src = ctx.local_host();
    send_udp_multicast(ctx.sink(), src, Ipv4Address(239, 255, 255, 253), ports::kSrvLoc,
                       ports::kSrvLoc, t, 120 + rng.uniform_int(0, 240));
  }
  if (rng.bernoulli(0.4)) {
    // One SrvLoc-chatty host unicasts to scores of internal peers.
    const HostRef src = ctx.local_host();
    const int peers = static_cast<int>(rng.uniform(80, 220));
    double t = ctx.t0() + rng.uniform(0, ctx.duration() * 0.5);
    for (int i = 0; i < peers && t < ctx.t1(); ++i) {
      const HostRef peer = ctx.other_internal();
      send_udp(ctx.sink(), src, peer, ports::kSrvLoc, ports::kSrvLoc, t,
               filler_span(140));
      t += rng.exponential(ctx.duration() / (2.0 * peers));
    }
  }
}

}  // namespace

void gen_name(GenContext& ctx) {
  gen_dns(ctx);
  gen_nbns(ctx);
  gen_srvloc(ctx);
}

}  // namespace entrace
