// The modeled enterprise: subnets, hosts, server placement, and the
// external (WAN) host pool.
//
// The model mirrors the paper's site: two central routers with 18-22
// subnets, a few thousand internal hosts, enterprise-wide servers whose
// subnet placement drives the vantage-point effects the paper repeatedly
// notes (e.g. D0-D2 monitored the mail-server subnet, D3-D4 the print
// server's).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/site.h"
#include "net/ip_address.h"
#include "net/mac_address.h"

namespace entrace {

struct HostRef {
  Ipv4Address ip;
  MacAddress mac;
};

class EnterpriseModel {
 public:
  static constexpr int kMaxSubnets = 22;
  static constexpr std::uint32_t kHostsPerSubnet = 200;

  EnterpriseModel();

  // ---- address helpers -----------------------------------------------------
  // Enterprise block 128.3.0.0/16; subnet s occupies 128.3.(s+1).0/24.
  Subnet subnet(int s) const;
  HostRef host(int subnet_id, std::uint32_t index) const;  // index < kHostsPerSubnet
  HostRef external_host(std::uint64_t id) const;           // deterministic WAN pool
  static HostRef ref(Ipv4Address ip);
  bool is_internal(Ipv4Address a) const { return site_.is_internal(a); }
  int subnet_of(Ipv4Address a) const { return site_.subnet_of(a); }

  // ---- servers ----------------------------------------------------------------
  // Placement (subnet, host index) chosen so datasets monitoring low
  // subnets see the mail/auth servers, high subnets the print/DNS servers.
  HostRef smtp_server(int i = 0) const;   // 2 enterprise MX, subnet 2
  HostRef imap_server() const;            // subnet 2
  HostRef dns_server(int i = 0) const;    // 2 servers, subnets 16, 17
  HostRef nbns_server(int i = 0) const;   // 2 servers, subnets 5, 16
  HostRef auth_server() const;            // domain controller, subnet 1
  HostRef print_server() const;           // subnet 15
  HostRef nfs_server(int i = 0) const;    // 3 servers, subnets 4, 6, 16
  HostRef ncp_server(int i = 0) const;    // 2 servers, subnets 3, 5
  HostRef web_proxy() const;              // subnet 7
  HostRef internal_web_server(std::uint32_t i) const;  // spread across subnets
  HostRef veritas_server() const;         // subnet 8
  HostRef dantz_server() const;           // subnet 9
  HostRef ftp_server() const;             // subnet 10
  HostRef hpss_server() const;            // subnet 10
  HostRef sql_server(int i = 0) const;    // subnet 11
  HostRef file_smb_server(std::uint32_t i) const;  // CIFS file servers

  // Internal vulnerability scanners (the paper's 2 known scanners).
  HostRef internal_scanner(int i) const;  // subnet 12

  // Multicast groups.
  static Ipv4Address multicast_group(std::uint32_t i);

  // SiteConfig for the analysis side (includes known scanners).
  const SiteConfig& site() const { return site_; }

 private:
  SiteConfig site_;
};

}  // namespace entrace
