// Windows services (§5.2.1): the parallel 139/445 dialing behaviour that
// depresses CIFS connection success (Table 9), NBSS handshakes, SMB
// dialogues whose command mix reproduces Table 10, DCE/RPC over named
// pipes and over Endpoint-Mapper-discovered TCP ports (Table 11), and
// Netbios-DGM broadcast chatter.
#include <string>

#include "proto/cifs.h"
#include "proto/dcerpc.h"
#include "proto/registry.h"
#include "synth/apps.h"

namespace entrace {
namespace {

enum class SmbActivity { kRpcPipe, kFileShare, kLanman };

DceIface sample_iface(Rng& rng, const WindowsKnobs& k) {
  switch (rng.weighted({k.w_netlogon, k.w_lsarpc, k.w_spoolss_write + k.w_spoolss_other,
                        k.w_other})) {
    case 0:
      return DceIface::kNetLogon;
    case 1:
      return DceIface::kLsaRpc;
    case 2:
      return DceIface::kSpoolss;
    default:
      return rng.bernoulli(0.5) ? DceIface::kSamr : DceIface::kWkssvc;
  }
}

const char* pipe_name_for(DceIface iface) {
  switch (iface) {
    case DceIface::kNetLogon:
      return "\\netlogon";
    case DceIface::kLsaRpc:
      return "\\lsarpc";
    case DceIface::kSpoolss:
      return "\\spoolss";
    case DceIface::kSamr:
      return "\\samr";
    case DceIface::kWkssvc:
      return "\\wkssvc";
    default:
      return "\\srvsvc";
  }
}

// Run DCE/RPC calls over an SMB named pipe: bind, then request/response
// pairs carried in WriteAndX / ReadAndX.
void rpc_over_pipe(GenContext& ctx, TcpFlowBuilder& tcp, std::uint16_t& mid, std::uint16_t fid,
                   DceIface iface) {
  Rng& rng = ctx.rng();
  const WindowsKnobs& k = ctx.spec().windows;
  std::uint32_t call_id = 1;

  tcp.client_message(smb_write_request(mid, fid, encode_dce_bind(call_id, dce_uuid(iface))));
  tcp.server_message(smb_write_response(mid, fid));
  ++mid;
  tcp.client_message(smb_read_request(mid, fid, 4280));
  tcp.server_message(smb_read_response(mid, fid, encode_dce_bind_ack(call_id)));
  ++mid;
  ++call_id;

  int requests = 0;
  if (iface == DceIface::kSpoolss) {
    // A print job: open, a burst of WritePrinter calls pushing the job
    // data, then end-doc.  WritePrinter stubs carry the page data.
    const double write_share =
        k.w_spoolss_write + k.w_spoolss_other > 0
            ? k.w_spoolss_write / (k.w_spoolss_write + k.w_spoolss_other)
            : 0.0;
    // Print jobs push page data in long WritePrinter bursts.
    requests = 10 + static_cast<int>(rng.pareto(1.0, 12.0, 900.0));
    for (int i = 0; i < requests && tcp.now() < ctx.t1(); ++i) {
      const bool write = rng.bernoulli(write_share);
      const std::uint16_t opnum =
          write ? spoolss_op::kWritePrinter
                : (i == 0 ? spoolss_op::kOpenPrinter
                          : (rng.bernoulli(0.5) ? spoolss_op::kStartDocPrinter
                                                : spoolss_op::kEndDocPrinter));
      const std::size_t stub = write ? 2800 + rng.uniform_int(0, 1400)
                                     : 64 + rng.uniform_int(0, 256);
      tcp.client_message(smb_write_request(mid, fid, encode_dce_request(call_id, opnum, stub)));
      tcp.server_message(smb_write_response(mid, fid));
      ++mid;
      tcp.client_message(smb_read_request(mid, fid, 4280));
      tcp.server_message(smb_read_response(mid, fid, encode_dce_response(call_id, 32)));
      ++mid;
      ++call_id;
      tcp.advance(rng.exponential(0.01));
    }
  } else {
    // Authentication / directory traffic: small request/response pairs.
    requests = 2 + static_cast<int>(rng.exponential(5.0));
    for (int i = 0; i < requests && tcp.now() < ctx.t1(); ++i) {
      const std::uint16_t opnum = static_cast<std::uint16_t>(rng.uniform_int(0, 45));
      tcp.client_message(
          smb_write_request(mid, fid, encode_dce_request(call_id, opnum,
                                                         100 + rng.uniform_int(0, 400))));
      tcp.server_message(smb_write_response(mid, fid));
      ++mid;
      tcp.client_message(smb_read_request(mid, fid, 4280));
      tcp.server_message(
          smb_read_response(mid, fid, encode_dce_response(call_id, 80 + rng.uniform_int(0, 700))));
      ++mid;
      ++call_id;
      tcp.advance(rng.exponential(0.05));
    }
  }
}

void smb_dialogue(GenContext& ctx, TcpFlowBuilder& tcp, DceIface iface) {
  Rng& rng = ctx.rng();
  const WindowsKnobs& k = ctx.spec().windows;
  std::uint16_t mid = 1;

  tcp.client_message(smb_simple(smbcmd::kNegotiate, mid, false, 60));
  tcp.server_message(smb_simple(smbcmd::kNegotiate, mid, true, 90));
  ++mid;
  tcp.client_message(smb_simple(smbcmd::kSessionSetup, mid, false, 140));
  tcp.server_message(smb_simple(smbcmd::kSessionSetup, mid, true, 60));
  ++mid;
  tcp.client_message(smb_simple(smbcmd::kTreeConnect, mid, false, 48));
  tcp.server_message(smb_simple(smbcmd::kTreeConnect, mid, true, 24));
  ++mid;

  SmbActivity activity = SmbActivity::kRpcPipe;
  const double r = rng.uniform();
  if (r < k.file_share_frac) {
    activity = SmbActivity::kFileShare;
  } else if (r < k.file_share_frac + k.lanman_frac) {
    activity = SmbActivity::kLanman;
  }

  switch (activity) {
    case SmbActivity::kRpcPipe: {
      const std::uint16_t fid = static_cast<std::uint16_t>(rng.uniform_int(0x100, 0xFFF0));
      tcp.client_message(smb_ntcreate_request(mid, pipe_name_for(iface)));
      tcp.server_message(smb_ntcreate_response(mid, fid));
      ++mid;
      rpc_over_pipe(ctx, tcp, mid, fid, iface);
      tcp.client_message(smb_simple(smbcmd::kClose, mid, false, 0));
      tcp.server_message(smb_simple(smbcmd::kClose, mid, true, 0));
      ++mid;
      break;
    }
    case SmbActivity::kFileShare: {
      const std::uint16_t fid = static_cast<std::uint16_t>(rng.uniform_int(0x100, 0xFFF0));
      tcp.client_message(
          smb_ntcreate_request(mid, "\\docs\\report" + std::to_string(rng.uniform_int(0, 500)) +
                                        ".doc"));
      tcp.server_message(smb_ntcreate_response(mid, fid));
      ++mid;
      const bool writing = rng.bernoulli(0.35);
      const int ops = 2 + static_cast<int>(rng.pareto(1.2, 2.0, 40.0));
      for (int i = 0; i < ops && tcp.now() < ctx.t1(); ++i) {
        const std::size_t chunk = 2048 + rng.uniform_int(0, 8192);
        if (writing) {
          tcp.client_message(smb_write_request(mid, fid, filler_span(chunk)));
          tcp.server_message(smb_write_response(mid, fid));
        } else {
          tcp.client_message(smb_read_request(mid, fid, static_cast<std::uint16_t>(chunk)));
          tcp.server_message(smb_read_response(mid, fid, filler_span(chunk)));
        }
        ++mid;
        tcp.advance(rng.exponential(0.01));
      }
      tcp.client_message(smb_simple(smbcmd::kClose, mid, false, 0));
      tcp.server_message(smb_simple(smbcmd::kClose, mid, true, 0));
      ++mid;
      break;
    }
    case SmbActivity::kLanman: {
      const int ops = 1 + static_cast<int>(rng.exponential(2.0));
      for (int i = 0; i < ops; ++i) {
        tcp.client_message(smb_trans(mid, false, "\\PIPE\\LANMAN", 60));
        tcp.server_message(smb_trans(mid, true, "\\PIPE\\LANMAN", 800 + rng.uniform_int(0, 3000)));
        ++mid;
        tcp.advance(rng.exponential(0.2));
      }
      break;
    }
  }
  tcp.client_message(smb_simple(smbcmd::kTreeDisconnect, mid, false, 0));
  tcp.server_message(smb_simple(smbcmd::kTreeDisconnect, mid, true, 0));
  tcp.close();
}

// A client dials the server on 139 and 445 in parallel and uses whichever
// port answers — the paper's explanation for the low CIFS success rate.
void cifs_pair_session(GenContext& ctx, double t, const HostRef& client, const HostRef& server,
                       DceIface iface) {
  Rng& rng = ctx.rng();
  const WindowsKnobs& k = ctx.spec().windows;
  const bool server_down = rng.bernoulli(k.unanswered_frac);
  // Whether this server listens only on 139 is a stable property of the
  // server, derived from a hash of its address.  The big service boxes
  // (print server, domain controller) listen on both ports; the property
  // afflicts the general file-server population.
  const bool exempt = server.ip == ctx.model().print_server().ip ||
                      server.ip == ctx.model().auth_server().ip;
  const std::uint32_t server_hash = (server.ip.value() * 2654435761u) >> 16;
  const bool only_139 = !exempt && (server_hash % 1000) < k.cifs_only_139_frac * 1000;

  TcpFlowBuilder c445(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kCifs, t,
                      ctx.lan_tcp());
  TcpFlowBuilder c139(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kNetbiosSsn,
                      t + 0.0002, ctx.lan_tcp());
  if (server_down) {
    c445.connect_unanswered(2);
    c139.connect_unanswered(2);
    return;
  }

  if (only_139) {
    c445.connect_rejected();
    c139.connect();
    c139.client_message(nbss_session_request("FILESRV", "CLIENT"));
    if (rng.bernoulli(k.nbss_negative_frac)) {
      c139.server_message(nbss_session_response(false));
      c139.close();
      return;
    }
    c139.server_message(nbss_session_response(true));
    smb_dialogue(ctx, c139, iface);
  } else {
    // 445 answers; the 139 connection performs its handshake and is let go.
    c445.connect();
    c139.connect();
    c139.client_message(nbss_session_request("FILESRV", "CLIENT"));
    c139.server_message(nbss_session_response(rng.bernoulli(1.0 - k.nbss_negative_frac)));
    c139.close();
    smb_dialogue(ctx, c445, iface);
  }
}

// Endpoint Mapper lookup followed by DCE/RPC on the mapped ephemeral port.
void epm_session(GenContext& ctx, double t, const HostRef& client, const HostRef& server,
                 DceIface iface) {
  Rng& rng = ctx.rng();
  const WindowsKnobs& k = ctx.spec().windows;
  const std::uint16_t mapped_port = static_cast<std::uint16_t>(rng.uniform_int(1025, 5000));

  TcpFlowBuilder epm(ctx.sink(), rng, client, server, ctx.ephemeral_port(), ports::kEpm, t,
                     ctx.lan_tcp());
  epm.connect();
  epm.client_message(encode_dce_bind(1, dce_uuid(DceIface::kEpm)));
  epm.server_message(encode_dce_bind_ack(1));
  const auto stub = encode_epm_map_stub(dce_uuid(iface), server.ip, mapped_port);
  epm.client_message(encode_dce_request_stub(2, 3 /*ept_map*/, stub));
  epm.server_message(encode_dce_response_stub(2, stub));
  epm.close();

  TcpFlowBuilder rpc(ctx.sink(), rng, client, server, ctx.ephemeral_port(), mapped_port,
                     epm.now() + 0.002, ctx.lan_tcp());
  rpc.connect();
  rpc.client_message(encode_dce_bind(1, dce_uuid(iface)));
  rpc.server_message(encode_dce_bind_ack(1));
  const int calls = 1 + static_cast<int>(rng.exponential(6.0));
  std::uint32_t call_id = 2;
  const double write_share = k.w_spoolss_write + k.w_spoolss_other > 0
                                 ? k.w_spoolss_write / (k.w_spoolss_write + k.w_spoolss_other)
                                 : 0.0;
  for (int i = 0; i < calls && rpc.now() < ctx.t1(); ++i) {
    // Stand-alone endpoints run the same function mix as the pipes.
    std::uint16_t opnum;
    std::size_t stub = 120 + rng.uniform_int(0, 500);
    if (iface == DceIface::kSpoolss && rng.bernoulli(write_share)) {
      opnum = spoolss_op::kWritePrinter;
      stub = 2800 + rng.uniform_int(0, 1400);
    } else if (iface == DceIface::kSpoolss) {
      opnum = rng.bernoulli(0.5) ? spoolss_op::kStartDocPrinter : spoolss_op::kOpenPrinter;
    } else {
      opnum = static_cast<std::uint16_t>(rng.uniform_int(0, 30));
    }
    rpc.client_message(encode_dce_request(call_id, opnum, stub));
    rpc.server_message(encode_dce_response(call_id, 90 + rng.uniform_int(0, 900)));
    ++call_id;
    rpc.advance(rng.exponential(0.1));
  }
  rpc.close();
}

}  // namespace

void gen_windows(GenContext& ctx) {
  Rng& rng = ctx.rng();
  const WindowsKnobs& k = ctx.spec().windows;
  const EnterpriseModel& m = ctx.model();

  auto server_for = [&](DceIface iface) {
    switch (iface) {
      case DceIface::kNetLogon:
      case DceIface::kLsaRpc:
        return m.auth_server();
      case DceIface::kSpoolss:
        // Half the print queues live on the central print server, the rest
        // on departmental file servers.
        if (rng.bernoulli(0.5)) return m.print_server();
        [[fallthrough]];
      default:
        return m.file_smb_server(static_cast<std::uint32_t>(rng.uniform_int(0, 11)));
    }
  };

  for (double t : ctx.arrivals(k.cifs_sessions)) {
    const HostRef client = ctx.local_host();
    const DceIface iface = sample_iface(rng, k);
    HostRef server = server_for(iface);
    if (m.subnet_of(server.ip) == ctx.subnet())
      server = m.file_smb_server(static_cast<std::uint32_t>(rng.uniform_int(0, 5)));
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;
    cifs_pair_session(ctx, t, client, server, iface);
  }

  // Server-side boosts: monitoring the authentication or print server's
  // subnet multiplies the visible load (the D0 vs D3-4 contrast of
  // Table 11).
  if (ctx.monitoring(m.subnet_of(m.auth_server().ip))) {
    for (double t : ctx.arrivals(k.cifs_sessions * k.auth_server_boost / 4.0)) {
      cifs_pair_session(ctx, t, ctx.other_internal(), m.auth_server(),
                        rng.bernoulli(0.6) ? DceIface::kNetLogon : DceIface::kLsaRpc);
    }
  }
  if (ctx.monitoring(m.subnet_of(m.print_server().ip))) {
    for (double t : ctx.arrivals(k.cifs_sessions * k.print_server_boost / 4.0)) {
      cifs_pair_session(ctx, t, ctx.other_internal(), m.print_server(), DceIface::kSpoolss);
    }
  }

  for (double t : ctx.arrivals(k.epm_sessions)) {
    const HostRef client = ctx.local_host();
    const DceIface iface = sample_iface(rng, k);
    HostRef server = server_for(iface);
    if (m.subnet_of(server.ip) == ctx.subnet()) continue;
    epm_session(ctx, t, client, server, iface);
  }

  // Netbios-DGM browser-election broadcast chatter.
  for (double t : ctx.arrivals(k.dgm_broadcasts)) {
    const HostRef src = ctx.local_host();
    send_udp_multicast(ctx.sink(), src, Ipv4Address(0xFFFFFFFFu), ports::kNetbiosDgm,
                       ports::kNetbiosDgm, t, 180 + rng.uniform_int(0, 300));
  }
}

}  // namespace entrace
