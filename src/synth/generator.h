// Dataset generation: runs every application generator for each monitored
// subnet trace and assembles a TraceSet, reproducing the paper's piecemeal
// tracing methodology (one subnet at a time, per-dataset snaplen).
#pragma once

#include "pcap/trace.h"
#include "synth/dataset_spec.h"
#include "synth/model.h"

namespace entrace {

TraceSet generate_dataset(const DatasetSpec& spec, const EnterpriseModel& model);

// Generate and write per-trace pcap files under `dir` (created by caller);
// returns the paths written.
std::vector<std::string> generate_dataset_to_pcap(const DatasetSpec& spec,
                                                  const EnterpriseModel& model,
                                                  const std::string& dir);

}  // namespace entrace
