// Dataset generation: runs every application generator for each monitored
// subnet trace, reproducing the paper's piecemeal tracing methodology (one
// subnet at a time, per-dataset snaplen).
//
// Generation is planned and emitted in two layers so both the materialized
// and the streaming paths share one deterministic core:
//   - plan_dataset() lays out the per-trace capture windows and RNG
//     identities (TracePlan) without generating a single packet;
//   - emit_trace() runs the application generators for one plan into a
//     PacketSink (unsorted emission order, deterministic per plan).
// generate_dataset() materializes every trace; SyntheticTraceSource
// (synth_source.h) re-runs emit_trace() per time slice so a trace never
// exists fully in RAM.
#pragma once

#include "pcap/trace.h"
#include "synth/dataset_spec.h"
#include "synth/model.h"
#include "synth/sink.h"

namespace entrace {

// Everything needed to (re)produce one trace's emission deterministically.
struct TracePlan {
  std::string name;        // e.g. "D3-s07"
  int subnet = 0;
  int rep = 0;
  int trace_index = 0;     // position in the dataset's tap rotation
  double start_ts = 0.0;
  double duration = 0.0;
  std::uint32_t snaplen = 1500;
};

TracePlan plan_trace(const DatasetSpec& spec, int subnet, int rep, int trace_index);
// Plans for every trace of the dataset, in tap-rotation order (the order
// generate_dataset emits them).
std::vector<TracePlan> plan_dataset(const DatasetSpec& spec);

// Runs every application generator for the planned trace into `sink`.
// Packets arrive in emission order (NOT timestamp order); deterministic
// for a given (spec, plan).
void emit_trace(const DatasetSpec& spec, const EnterpriseModel& model, const TracePlan& plan,
                PacketSink& sink);

// Materialize one planned trace: emit, timestamp-sort, clip to the window.
Trace generate_trace(const DatasetSpec& spec, const EnterpriseModel& model,
                     const TracePlan& plan);

TraceSet generate_dataset(const DatasetSpec& spec, const EnterpriseModel& model);

// Generate and write per-trace pcap files under `dir` (created by caller);
// returns the paths written.  Streams each trace to its file holding at
// most one trace in memory at a time.
std::vector<std::string> generate_dataset_to_pcap(const DatasetSpec& spec,
                                                  const EnterpriseModel& model,
                                                  const std::string& dir);

}  // namespace entrace
