// Scanner identification — the paper's §3 heuristic.
//
// "We first identify sources contacting more than 50 distinct hosts.  We
// then determine whether at least 45 of the distinct addresses probed were
// in ascending or descending order."  Sources flagged by the heuristic,
// plus the site's known internal scanners, are removed prior to the
// traffic-breakdown analyses.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ip_address.h"

namespace entrace {

class ScannerDetector {
 public:
  struct Config {
    std::size_t distinct_host_threshold = 50;
    std::size_t ordered_run_threshold = 45;
  };

  ScannerDetector() : ScannerDetector(Config()) {}
  explicit ScannerDetector(Config config);

  // Feed one observed (source, destination) packet pair, in trace order.
  void observe(Ipv4Address src, Ipv4Address dst);

  void add_known_scanner(Ipv4Address addr);

  // Fold another detector's observations into this one.  Merging per-trace
  // detectors in trace-index order reproduces the exact per-source
  // first-contact order of a serial pass over the same traces: for each
  // source, `other`'s first contacts are appended except for destinations
  // this detector already saw.  The two detectors must share a Config.
  void merge(const ScannerDetector& other);

  // Evaluate the heuristic over everything observed so far.
  std::set<Ipv4Address> scanners() const;

  bool is_scanner(Ipv4Address addr) const;  // evaluates lazily, cached

  // ---- snapshot support (src/snapshot) --------------------------------------
  // Everything merge() consumes, in a deterministic layout: one entry per
  // source, ascending by source address; `order` is the capped first-contact
  // sequence and `extra_seen` the distinct destinations beyond the cap,
  // ascending.  A detector rebuilt by import_observations() merges exactly
  // like the one that was exported.
  struct SourceObservations {
    std::uint32_t source = 0;
    std::vector<std::uint32_t> order;
    std::vector<std::uint32_t> extra_seen;
  };
  std::vector<SourceObservations> export_observations() const;
  // Rebuild per-source state from an export.  The detector must be fresh
  // (no prior observations for the imported sources).
  void import_observations(const std::vector<SourceObservations>& observations);
  const std::set<Ipv4Address>& known_scanners() const { return known_; }

 private:
  struct SourceState {
    std::unordered_set<std::uint32_t> seen;
    // Distinct destinations in first-contact order.
    std::vector<std::uint32_t> order;
  };

  static bool is_ordered_probe(const SourceState& s, const Config& config);

  Config config_;
  std::unordered_map<std::uint32_t, SourceState> sources_;
  std::set<Ipv4Address> known_;
  mutable bool cache_valid_ = false;
  mutable std::set<Ipv4Address> cache_;
};

}  // namespace entrace
