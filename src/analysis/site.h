// Site configuration: what counts as "enterprise" vs "WAN", and the
// per-subnet layout used for monitored-subnet bookkeeping.  The locality
// analyses of §4 and the per-application enterprise/WAN splits of §5 all
// classify addresses through this.
#pragma once

#include <vector>

#include "net/ip_address.h"

namespace entrace {

struct SiteConfig {
  // Covers every internal address (the enterprise's address block).
  Subnet enterprise_block;
  // Individual subnets attached to the monitored routers (index = subnet id).
  std::vector<Subnet> subnets;
  // Known internal scanners (the paper removes 2 of them by configuration).
  std::vector<Ipv4Address> known_scanners;

  bool is_internal(Ipv4Address a) const { return enterprise_block.contains(a); }

  // Subnet id containing the address, or -1.
  int subnet_of(Ipv4Address a) const {
    for (std::size_t i = 0; i < subnets.size(); ++i) {
      if (subnets[i].contains(a)) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace entrace
