// Backup application analysis (§5.2.3, Table 15): Veritas (separate
// control/data connections, one-way client->server data), Dantz (control
// and data in one connection, significant bidirectionality), and the
// external "Connected" backup service.
#pragma once

#include <span>

#include "analysis/site.h"
#include "flow/connection.h"
#include "util/stats.h"

namespace entrace {

struct BackupAnalysis {
  struct AppRow {
    std::uint64_t conns = 0;
    std::uint64_t bytes = 0;
    std::uint64_t client_to_server_bytes = 0;
    std::uint64_t server_to_client_bytes = 0;
    // Connections with more than 1 MB in each direction.
    std::uint64_t bidirectional_conns = 0;

    double c2s_fraction() const {
      return bytes == 0 ? 0.0
                        : static_cast<double>(client_to_server_bytes) /
                              static_cast<double>(bytes);
    }
  };

  AppRow veritas_ctrl;
  AppRow veritas_data;
  AppRow dantz;
  AppRow connected;

  static BackupAnalysis compute(std::span<const Connection* const> conns,
                                const SiteConfig& site);
};

}  // namespace entrace
