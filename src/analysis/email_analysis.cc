#include "analysis/email_analysis.h"

#include <vector>

#include "proto/registry.h"

namespace entrace {

EmailAnalysis EmailAnalysis::compute(std::span<const Connection* const> conns,
                                     const SiteConfig& site) {
  EmailAnalysis out;
  std::vector<const Connection*> smtp, imaps;

  for (const Connection* c : conns) {
    const auto app = static_cast<AppProtocol>(c->app_id);
    const bool wan = !site.is_internal(c->key.src) || !site.is_internal(c->key.dst);
    switch (app) {
      case AppProtocol::kSmtp:
        out.smtp_bytes += c->total_bytes();
        smtp.push_back(c);
        if (c->successful() && c->duration() > 0) {
          (wan ? out.smtp_dur_wan : out.smtp_dur_ent).add(c->duration());
          (wan ? out.smtp_size_wan : out.smtp_size_ent)
              .add(static_cast<double>(c->orig_bytes));
        }
        break;
      case AppProtocol::kImapS:
        out.imaps_bytes += c->total_bytes();
        imaps.push_back(c);
        if (c->successful() && c->duration() > 0) {
          (wan ? out.imaps_dur_wan : out.imaps_dur_ent).add(c->duration());
          (wan ? out.imaps_size_wan : out.imaps_size_ent)
              .add(static_cast<double>(c->resp_bytes));
        }
        break;
      case AppProtocol::kImap4:
        out.imap4_bytes += c->total_bytes();
        break;
      case AppProtocol::kPop3:
      case AppProtocol::kPopS:
      case AppProtocol::kLdap:
        out.other_bytes += c->total_bytes();
        break;
      default:
        break;
    }
  }

  auto is_wan = [&site](const Connection& c) {
    return !site.is_internal(c.key.src) || !site.is_internal(c.key.dst);
  };
  out.smtp_ent =
      HostPairOutcomes::compute(smtp, [&](const Connection& c) { return !is_wan(c); });
  out.smtp_wan =
      HostPairOutcomes::compute(smtp, [&](const Connection& c) { return is_wan(c); });
  out.imaps_all = HostPairOutcomes::compute(imaps, [](const Connection&) { return true; });
  return out;
}

}  // namespace entrace
