#include "analysis/windows_analysis.h"

#include <map>
#include <vector>

#include "proto/registry.h"

namespace entrace {

WindowsAnalysis WindowsAnalysis::compute(const AppEvents& events,
                                         std::span<const Connection* const> conns,
                                         const SiteConfig& site) {
  WindowsAnalysis out;

  // Table 9: internal traffic only (inbound Windows traffic is blocked at
  // the border in the paper's site, and ours models the same policy).
  auto internal_app = [&site](const Connection& c, AppProtocol app) {
    return static_cast<AppProtocol>(c.app_id) == app && site.is_internal(c.key.src) &&
           site.is_internal(c.key.dst);
  };
  out.nbss_conns = HostPairOutcomes::compute(conns, [&](const Connection& c) {
    return internal_app(c, AppProtocol::kNetbiosSsn);
  });
  out.cifs_conns = HostPairOutcomes::compute(
      conns, [&](const Connection& c) { return internal_app(c, AppProtocol::kCifs); });
  out.epm_conns = HostPairOutcomes::compute(conns, [&](const Connection& c) {
    return internal_app(c, AppProtocol::kEndpointMapper);
  });

  // NBSS handshake outcomes by host pair.
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> handshake;  // 1 ok, -1 neg
  for (const auto& evt : events.nbss) {
    if (evt.conn == nullptr) continue;
    auto key = std::make_pair(evt.conn->key.src.value(), evt.conn->key.dst.value());
    if (evt.type == NbssEventType::kPositiveResponse) {
      handshake[key] = 1;
    } else if (evt.type == NbssEventType::kNegativeResponse) {
      auto it = handshake.find(key);
      if (it == handshake.end() || it->second != 1) handshake[key] = -1;
    } else {
      handshake.try_emplace(key, 0);
    }
  }
  for (const auto& [pair, verdict] : handshake) {
    ++out.nbss_handshake_pairs;
    if (verdict == 1) ++out.nbss_handshake_ok;
  }

  // Table 10.
  for (const auto& cmd : events.cifs) {
    const auto idx = static_cast<std::size_t>(cmd.category);
    if (cmd.dir == Direction::kOrigToResp) {
      ++out.cifs_categories[idx].requests;
      ++out.cifs_total_requests;
    }
    out.cifs_categories[idx].bytes += cmd.msg_bytes;
    out.cifs_total_bytes += cmd.msg_bytes;
  }

  // Table 11.
  auto row_for = [&out](DceIface iface, std::uint16_t opnum) -> RpcRow& {
    switch (iface) {
      case DceIface::kNetLogon:
        return out.rpc_netlogon;
      case DceIface::kLsaRpc:
        return out.rpc_lsarpc;
      case DceIface::kSpoolss:
        return opnum == spoolss_op::kWritePrinter ? out.rpc_spoolss_write
                                                  : out.rpc_spoolss_other;
      default:
        return out.rpc_other;
    }
  };
  for (const auto& call : events.dcerpc) {
    RpcRow& row = row_for(call.iface, call.opnum);
    if (call.is_request) {
      ++row.requests;
      ++out.rpc_total_requests;
      if (call.over_pipe) {
        ++out.rpc_over_pipe;
      } else {
        ++out.rpc_standalone;
      }
    }
    row.bytes += call.bytes;
    out.rpc_total_bytes += call.bytes;
  }
  return out;
}

}  // namespace entrace
