#include "analysis/http_analysis.h"

#include <array>
#include <map>
#include <set>

#include "net/headers.h"
#include "proto/registry.h"
#include "util/strings.h"

namespace entrace {

const char* to_string(HttpClientKind k) {
  switch (k) {
    case HttpClientKind::kNormal: return "normal";
    case HttpClientKind::kScan1: return "scan1";
    case HttpClientKind::kGoogle1: return "google1";
    case HttpClientKind::kGoogle2: return "google2";
    case HttpClientKind::kIfolder: return "ifolder";
  }
  return "?";
}

HttpClientKind classify_http_client(const HttpTransaction& txn) {
  const std::string ua = to_lower(txn.user_agent);
  if (ua.find("scanner") != std::string::npos) return HttpClientKind::kScan1;
  if (ua.find("googlebot/1") != std::string::npos) return HttpClientKind::kGoogle1;
  if (ua.find("googlebot/2") != std::string::npos) return HttpClientKind::kGoogle2;
  if (ua.find("ifolder") != std::string::npos) return HttpClientKind::kIfolder;
  return HttpClientKind::kNormal;
}

namespace {

std::string coarse_content_type(const std::string& content_type) {
  const std::size_t slash = content_type.find('/');
  const std::string major = to_lower(slash == std::string::npos ? content_type
                                                                : content_type.substr(0, slash));
  if (major == "text" || major == "image" || major == "application") return major;
  return "other";
}

bool conn_is_wan(const Connection& c, const SiteConfig& site) {
  return !site.is_internal(c.key.src) || !site.is_internal(c.key.dst);
}

}  // namespace

double HttpAnalysis::automated_request_fraction() const {
  if (internal_requests == 0) return 0.0;
  std::uint64_t n = 0;
  for (const auto& [k, row] : automated) n += row.requests;
  return static_cast<double>(n) / static_cast<double>(internal_requests);
}

double HttpAnalysis::automated_byte_fraction() const {
  if (internal_bytes == 0) return 0.0;
  std::uint64_t n = 0;
  for (const auto& [k, row] : automated) n += row.bytes;
  return static_cast<double>(n) / static_cast<double>(internal_bytes);
}

HttpAnalysis HttpAnalysis::compute(std::span<const HttpTransaction> txns,
                                   std::span<const Connection* const> conns,
                                   const SiteConfig& site) {
  HttpAnalysis out;

  for (const auto& txn : txns) {
    if (txn.conn == nullptr) continue;
    const bool wan = conn_is_wan(*txn.conn, site);
    const HttpClientKind kind = classify_http_client(txn);
    const std::uint64_t body = txn.has_response ? txn.resp_body_len : 0;

    // Table 6 covers internal HTTP traffic.
    if (!wan) {
      ++out.internal_requests;
      out.internal_bytes += body;
      if (kind != HttpClientKind::kNormal) {
        auto& row = out.automated[kind];
        ++row.requests;
        row.bytes += body;
      }
    }

    if (kind != HttpClientKind::kNormal) continue;  // excluded from the rest

    // Conditional GET accounting.
    if (wan) {
      ++out.wan_requests;
      out.wan_bytes += body;
      if (txn.conditional) {
        ++out.wan_conditional;
        out.wan_conditional_bytes += body;
      }
    } else {
      ++out.ent_requests;
      out.ent_bytes += body;
      if (txn.conditional) {
        ++out.ent_conditional;
        out.ent_conditional_bytes += body;
      }
    }
    if (txn.has_response && ((txn.status >= 200 && txn.status < 300) || txn.status == 304))
      ++out.request_successes;

    // Table 7 + Figure 4 use successful GET replies with a body.
    if (txn.has_response && (txn.status == 200 || txn.status == 206)) {
      const std::string coarse = coarse_content_type(txn.content_type);
      auto& counter = wan ? out.content_wan : out.content_ent;
      counter.add(coarse, 1, body);
      if (body > 0) {
        (wan ? out.reply_size_wan : out.reply_size_ent).add(static_cast<double>(body));
      }
    }
  }

  // Success rates from connection summaries.
  std::vector<const Connection*> http_conns;
  for (const Connection* c : conns) {
    const auto app = static_cast<AppProtocol>(c->app_id);
    if (app == AppProtocol::kHttp) http_conns.push_back(c);
  }
  out.ent_success = HostPairOutcomes::compute(
      http_conns, [&site](const Connection& c) { return !conn_is_wan(c, site); });
  out.wan_success = HostPairOutcomes::compute(
      http_conns, [&site](const Connection& c) { return conn_is_wan(c, site); });

  // Figure 3 fan-out is computed from transactions with the automated
  // clients excluded (scanners and crawlers have pathological fan-out and
  // the paper removes them before this analysis).
  std::map<std::uint32_t, std::array<std::set<std::uint32_t>, 2>> servers_by_client;
  for (const auto& txn : txns) {
    if (txn.conn == nullptr) continue;
    if (classify_http_client(txn) != HttpClientKind::kNormal) continue;
    const bool server_wan = !site.is_internal(txn.conn->key.dst);
    servers_by_client[txn.conn->key.src.value()][server_wan ? 1 : 0].insert(
        txn.conn->key.dst.value());
  }
  for (const auto& [client, servers] : servers_by_client) {
    if (!servers[0].empty()) out.fanout.ent.add(static_cast<double>(servers[0].size()));
    if (!servers[1].empty()) out.fanout.wan.add(static_cast<double>(servers[1].size()));
  }
  return out;
}

}  // namespace entrace
