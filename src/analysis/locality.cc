#include "analysis/locality.h"

#include <map>
#include <set>

namespace entrace {

OriginBreakdown OriginBreakdown::compute(std::span<const Connection* const> conns,
                                         const SiteConfig& site) {
  OriginBreakdown out;
  for (const Connection* c : conns) {
    ++out.total;
    const bool src_internal = site.is_internal(c->key.src);
    if (c->multicast) {
      if (src_internal) {
        ++out.multicast_ent_src;
      } else {
        ++out.multicast_wan_src;
      }
      continue;
    }
    const bool dst_internal = site.is_internal(c->key.dst);
    if (src_internal && dst_internal) {
      ++out.ent_to_ent;
    } else if (src_internal) {
      ++out.ent_to_wan;
    } else {
      ++out.wan_to_ent;
    }
  }
  return out;
}

FanResult compute_fan(std::span<const Connection* const> conns, const SiteConfig& site,
                      const std::function<bool(Ipv4Address)>& is_monitored) {
  // peer sets: [host][0=ent,1=wan]
  std::map<std::uint32_t, std::array<std::set<std::uint32_t>, 2>> fan_in;
  std::map<std::uint32_t, std::array<std::set<std::uint32_t>, 2>> fan_out;

  for (const Connection* c : conns) {
    if (c->multicast) continue;
    const Ipv4Address orig = c->key.src;
    const Ipv4Address resp = c->key.dst;
    if (is_monitored(orig)) {
      const bool peer_wan = !site.is_internal(resp);
      fan_out[orig.value()][peer_wan ? 1 : 0].insert(resp.value());
    }
    if (is_monitored(resp)) {
      const bool peer_wan = !site.is_internal(orig);
      fan_in[resp.value()][peer_wan ? 1 : 0].insert(orig.value());
    }
  }

  FanResult out;
  std::size_t in_only_internal = 0;
  for (const auto& [host, peers] : fan_in) {
    if (!peers[0].empty()) out.fan_in_ent.add(static_cast<double>(peers[0].size()));
    if (!peers[1].empty()) out.fan_in_wan.add(static_cast<double>(peers[1].size()));
    if (!peers[0].empty() && peers[1].empty()) ++in_only_internal;
  }
  std::size_t out_only_internal = 0;
  for (const auto& [host, peers] : fan_out) {
    if (!peers[0].empty()) out.fan_out_ent.add(static_cast<double>(peers[0].size()));
    if (!peers[1].empty()) out.fan_out_wan.add(static_cast<double>(peers[1].size()));
    if (!peers[0].empty() && peers[1].empty()) ++out_only_internal;
  }
  if (!fan_in.empty())
    out.only_internal_fan_in = static_cast<double>(in_only_internal) /
                               static_cast<double>(fan_in.size());
  if (!fan_out.empty())
    out.only_internal_fan_out = static_cast<double>(out_only_internal) /
                                static_cast<double>(fan_out.size());
  return out;
}

FanOutPair compute_app_fanout(std::span<const Connection* const> conns, const SiteConfig& site,
                              const std::function<bool(const Connection&)>& select) {
  std::map<std::uint32_t, std::array<std::set<std::uint32_t>, 2>> peers_by_client;
  for (const Connection* c : conns) {
    if (!select(*c)) continue;
    const bool server_wan = !site.is_internal(c->key.dst);
    peers_by_client[c->key.src.value()][server_wan ? 1 : 0].insert(c->key.dst.value());
  }
  FanOutPair out;
  for (const auto& [client, peers] : peers_by_client) {
    if (!peers[0].empty()) out.ent.add(static_cast<double>(peers[0].size()));
    if (!peers[1].empty()) out.wan.add(static_cast<double>(peers[1].size()));
  }
  return out;
}

}  // namespace entrace
