#include "analysis/load.h"

#include <algorithm>

namespace entrace {
namespace {

constexpr double kMbps = 1e6;

double peak_mbps(const IntervalSeries& series) {
  double best = 0.0;
  for (double bits : series.values()) best = std::max(best, bits / series.bin_width());
  return best / kMbps;
}

}  // namespace

LoadAnalysis LoadAnalysis::compute(const std::vector<TraceLoadRaw>& traces,
                                   std::uint64_t min_packets) {
  LoadAnalysis out;
  for (const auto& t : traces) {
    out.trace_names.push_back(t.trace_name);
    out.keepalives_excluded += t.keepalive_excluded;
    if (!t.bits_1s.empty()) {
      out.peak_1s.add(peak_mbps(t.bits_1s));
      out.peak_10s.add(peak_mbps(t.bits_10s));
      out.peak_60s.add(peak_mbps(t.bits_60s));

      EmpiricalCdf one_sec;
      for (double bits : t.bits_1s.values()) one_sec.add(bits / kMbps);
      out.min_1s.add(one_sec.min());
      out.max_1s.add(one_sec.max());
      out.avg_1s.add(one_sec.mean());
      out.p25_1s.add(one_sec.quantile(0.25));
      out.median_1s.add(one_sec.median());
      out.p75_1s.add(one_sec.quantile(0.75));
    }
    if (t.ent_tcp_pkts >= min_packets) {
      const double rate =
          static_cast<double>(t.ent_retx) / static_cast<double>(t.ent_tcp_pkts);
      out.retx_ent.add(rate);
      out.retx_ent_by_trace.push_back(rate);
    } else {
      out.retx_ent_by_trace.push_back(-1.0);
    }
    if (t.wan_tcp_pkts >= min_packets) {
      const double rate =
          static_cast<double>(t.wan_retx) / static_cast<double>(t.wan_tcp_pkts);
      out.retx_wan.add(rate);
      out.retx_wan_by_trace.push_back(rate);
    } else {
      out.retx_wan_by_trace.push_back(-1.0);
    }
  }
  return out;
}

}  // namespace entrace
