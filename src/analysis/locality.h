// Origins and locality (§4): flow origin classes and fan-in / fan-out.
#pragma once

#include <functional>
#include <span>

#include "analysis/site.h"
#include "flow/connection.h"
#include "util/stats.h"

namespace entrace {

// §4: "71-79% of flows across the five datasets [are] within the
// enterprise; 2-3% originate within... communicating across the WAN;
// 6-11% originate outside; 5-10% multicast sourced internally; 4-7%
// multicast sourced externally."
struct OriginBreakdown {
  std::uint64_t total = 0;
  std::uint64_t ent_to_ent = 0;
  std::uint64_t ent_to_wan = 0;
  std::uint64_t wan_to_ent = 0;
  std::uint64_t multicast_ent_src = 0;
  std::uint64_t multicast_wan_src = 0;

  static OriginBreakdown compute(std::span<const Connection* const> conns,
                                 const SiteConfig& site);

  double fraction(std::uint64_t n) const {
    return total == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(total);
  }
};

// Figure 2: distributions of the number of peers each monitored host
// originates conversations to (fan-out) and receives conversations from
// (fan-in), split by peer locality.
struct FanResult {
  EmpiricalCdf fan_in_ent;
  EmpiricalCdf fan_in_wan;
  EmpiricalCdf fan_out_ent;
  EmpiricalCdf fan_out_wan;
  // Hosts whose peers are exclusively internal (the paper: one-third to
  // one-half of hosts have only internal fan-in; more than half only
  // internal fan-out).
  double only_internal_fan_in = 0.0;
  double only_internal_fan_out = 0.0;
};

FanResult compute_fan(std::span<const Connection* const> conns, const SiteConfig& site,
                      const std::function<bool(Ipv4Address)>& is_monitored);

// Generic per-source peer-count CDF (used for Figure 3's HTTP fan-out and
// reusable for any application).
struct FanOutPair {
  EmpiricalCdf ent;  // peers per source, enterprise servers
  EmpiricalCdf wan;  // peers per source, WAN servers
};

FanOutPair compute_app_fanout(std::span<const Connection* const> conns, const SiteConfig& site,
                              const std::function<bool(const Connection&)>& select);

}  // namespace entrace
