#include "analysis/backup_analysis.h"

#include "proto/registry.h"

namespace entrace {

BackupAnalysis BackupAnalysis::compute(std::span<const Connection* const> conns,
                                       const SiteConfig& site) {
  (void)site;
  BackupAnalysis out;
  for (const Connection* c : conns) {
    AppRow* row = nullptr;
    switch (static_cast<AppProtocol>(c->app_id)) {
      case AppProtocol::kVeritasCtrl:
        row = &out.veritas_ctrl;
        break;
      case AppProtocol::kVeritasData:
        row = &out.veritas_data;
        break;
      case AppProtocol::kDantz:
        row = &out.dantz;
        break;
      case AppProtocol::kConnectedBackup:
        row = &out.connected;
        break;
      default:
        continue;
    }
    ++row->conns;
    row->bytes += c->total_bytes();
    row->client_to_server_bytes += c->orig_bytes;
    row->server_to_client_bytes += c->resp_bytes;
    constexpr std::uint64_t kMega = 1024 * 1024;
    if (c->orig_bytes > kMega && c->resp_bytes > kMega) ++row->bidirectional_conns;
  }
  return out;
}

}  // namespace entrace
