#include "analysis/breakdown.h"

#include "net/headers.h"

namespace entrace {

void NetworkLayerBreakdown::add(L3Kind kind) {
  ++total;
  switch (kind) {
    case L3Kind::kIpv4:
      ++ip;
      break;
    case L3Kind::kArp:
      ++arp;
      break;
    case L3Kind::kIpx:
      ++ipx;
      break;
    case L3Kind::kOther:
      ++other;
      break;
  }
}

void NetworkLayerBreakdown::merge(const NetworkLayerBreakdown& o) {
  total += o.total;
  ip += o.ip;
  arp += o.arp;
  ipx += o.ipx;
  other += o.other;
}

TransportBreakdown TransportBreakdown::compute(std::span<const Connection* const> connections) {
  TransportBreakdown out;
  for (const Connection* c : connections) {
    ++out.conns;
    out.bytes += c->total_bytes();
    switch (c->key.proto) {
      case ipproto::kTcp:
        ++out.tcp_conns;
        out.tcp_bytes += c->total_bytes();
        break;
      case ipproto::kUdp:
        ++out.udp_conns;
        out.udp_bytes += c->total_bytes();
        break;
      case ipproto::kIcmp:
        ++out.icmp_conns;
        out.icmp_bytes += c->total_bytes();
        break;
      default:
        break;
    }
  }
  return out;
}

double TransportBreakdown::conn_fraction(std::uint8_t proto) const {
  if (conns == 0) return 0.0;
  const std::uint64_t n = proto == ipproto::kTcp   ? tcp_conns
                          : proto == ipproto::kUdp ? udp_conns
                                                   : icmp_conns;
  return static_cast<double>(n) / static_cast<double>(conns);
}

double TransportBreakdown::byte_fraction(std::uint8_t proto) const {
  if (bytes == 0) return 0.0;
  const std::uint64_t n = proto == ipproto::kTcp   ? tcp_bytes
                          : proto == ipproto::kUdp ? udp_bytes
                                                   : icmp_bytes;
  return static_cast<double>(n) / static_cast<double>(bytes);
}

AppCategory AppCategoryBreakdown::category_for(const Connection& conn) {
  const auto app = static_cast<AppProtocol>(conn.app_id);
  if (app != AppProtocol::kUnknown) return category_of(app);
  return conn.key.proto == ipproto::kUdp ? AppCategory::kOtherUdp : AppCategory::kOtherTcp;
}

AppCategoryBreakdown AppCategoryBreakdown::compute(std::span<const Connection* const> conns,
                                                   const SiteConfig& site) {
  AppCategoryBreakdown out;
  for (const Connection* c : conns) {
    if (c->key.proto != ipproto::kTcp && c->key.proto != ipproto::kUdp) continue;
    const auto cat = static_cast<std::size_t>(category_for(*c));
    const std::uint64_t bytes = c->total_bytes();
    const std::uint64_t pkts = c->total_pkts();
    out.total_bytes_all += bytes;
    out.total_conns_all += 1;
    if (c->multicast) {
      Cell& cell = out.multicast[cat];
      ++cell.conns;
      cell.bytes += bytes;
      cell.pkts += pkts;
      continue;
    }
    const bool wan = !site.is_internal(c->key.src) || !site.is_internal(c->key.dst);
    Cell& cell = out.unicast[cat][wan ? 1 : 0];
    ++cell.conns;
    cell.bytes += bytes;
    cell.pkts += pkts;
    ++out.total_unicast_conns;
    out.total_unicast_bytes += bytes;
    out.total_unicast_pkts += pkts;
  }
  return out;
}

double AppCategoryBreakdown::byte_fraction(AppCategory c, bool wan) const {
  if (total_unicast_bytes == 0) return 0.0;
  return static_cast<double>(unicast[static_cast<std::size_t>(c)][wan ? 1 : 0].bytes) /
         static_cast<double>(total_unicast_bytes);
}

double AppCategoryBreakdown::conn_fraction(AppCategory c, bool wan) const {
  if (total_unicast_conns == 0) return 0.0;
  return static_cast<double>(unicast[static_cast<std::size_t>(c)][wan ? 1 : 0].conns) /
         static_cast<double>(total_unicast_conns);
}

double AppCategoryBreakdown::multicast_byte_fraction(AppCategory c) const {
  if (total_bytes_all == 0) return 0.0;
  return static_cast<double>(multicast[static_cast<std::size_t>(c)].bytes) /
         static_cast<double>(total_bytes_all);
}

double AppCategoryBreakdown::multicast_conn_fraction(AppCategory c) const {
  if (total_conns_all == 0) return 0.0;
  return static_cast<double>(multicast[static_cast<std::size_t>(c)].conns) /
         static_cast<double>(total_conns_all);
}

}  // namespace entrace
