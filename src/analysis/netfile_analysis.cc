#include "analysis/netfile_analysis.h"

#include <algorithm>
#include <map>
#include <vector>

#include "net/headers.h"
#include "proto/registry.h"

namespace entrace {
namespace {

double top3_share(const std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>& pairs,
                  std::uint64_t total) {
  if (total == 0 || pairs.empty()) return 0.0;
  std::vector<std::uint64_t> v;
  v.reserve(pairs.size());
  for (const auto& [key, bytes] : pairs) v.push_back(bytes);
  std::sort(v.rbegin(), v.rend());
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < v.size() && i < 3; ++i) top += v[i];
  return static_cast<double>(top) / static_cast<double>(total);
}

}  // namespace

NetFileAnalysis NetFileAnalysis::compute(const AppEvents& events,
                                         std::span<const Connection* const> conns,
                                         const SiteConfig& site) {
  (void)site;
  NetFileAnalysis out;

  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> nfs_pair_bytes,
      ncp_pair_bytes;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> nfs_pair_reqs,
      ncp_pair_reqs;
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> nfs_pair_udp, nfs_pair_tcp;

  for (const Connection* c : conns) {
    const auto app = static_cast<AppProtocol>(c->app_id);
    const auto pair = std::make_pair(std::min(c->key.src.value(), c->key.dst.value()),
                                     std::max(c->key.src.value(), c->key.dst.value()));
    if (app == AppProtocol::kNfs) {
      ++out.nfs_conns;
      out.nfs_bytes += c->total_bytes();
      nfs_pair_bytes[pair] += c->total_bytes();
      if (c->key.proto == ipproto::kUdp) {
        out.nfs_udp_bytes += c->total_bytes();
        nfs_pair_udp[pair] = true;
      } else {
        out.nfs_tcp_bytes += c->total_bytes();
        nfs_pair_tcp[pair] = true;
      }
    } else if (app == AppProtocol::kNcp) {
      ++out.ncp_conns;
      out.ncp_bytes += c->total_bytes();
      ncp_pair_bytes[pair] += c->total_bytes();
      // Keepalive-only: carried (keepalive) retransmissions but delivered
      // at most a hair of fresh payload.
      if (c->keepalive_retx > 0 && c->orig_bytes + c->resp_bytes <= 2) {
        ++out.ncp_keepalive_only_conns;
      }
    }
  }
  out.nfs_top3_pair_byte_share = top3_share(nfs_pair_bytes, out.nfs_bytes);
  out.ncp_top3_pair_byte_share = top3_share(ncp_pair_bytes, out.ncp_bytes);
  out.nfs_udp_pairs = nfs_pair_udp.size();
  out.nfs_tcp_pairs = nfs_pair_tcp.size();

  // ---- NFS request breakdown ------------------------------------------------
  for (const auto& call : events.nfs) {
    Row* row = nullptr;
    switch (call.proc) {
      case nfsproc::kRead:
        row = &out.nfs_read;
        break;
      case nfsproc::kWrite:
        row = &out.nfs_write;
        break;
      case nfsproc::kGetAttr:
        row = &out.nfs_getattr;
        break;
      case nfsproc::kLookup:
        row = &out.nfs_lookup;
        break;
      case nfsproc::kAccess:
        row = &out.nfs_access;
        break;
      default:
        row = &out.nfs_other;
        break;
    }
    const std::uint64_t data = call.req_bytes + call.resp_bytes;
    ++row->requests;
    row->bytes += data;
    ++out.nfs_total_requests;
    out.nfs_total_data += data;
    out.nfs_req_sizes.add(call.req_bytes);
    if (call.has_reply) {
      out.nfs_reply_sizes.add(call.resp_bytes);
      ++out.nfs_replies;
      if (call.status == 0) ++out.nfs_ok;
    }
    if (call.conn != nullptr) {
      const auto pair =
          std::make_pair(std::min(call.conn->key.src.value(), call.conn->key.dst.value()),
                         std::max(call.conn->key.src.value(), call.conn->key.dst.value()));
      ++nfs_pair_reqs[pair];
    }
  }

  // ---- NCP request breakdown --------------------------------------------------
  for (const auto& call : events.ncp) {
    Row& row = out.ncp_rows[static_cast<std::size_t>(call.function)];
    const std::uint64_t data = call.req_bytes + call.resp_bytes;
    ++row.requests;
    row.bytes += data;
    ++out.ncp_total_requests;
    out.ncp_total_data += data;
    out.ncp_req_sizes.add(call.req_bytes);
    if (call.has_reply) {
      out.ncp_reply_sizes.add(call.resp_bytes);
      ++out.ncp_replies;
      if (call.completion_code == 0) ++out.ncp_ok;
    }
    if (call.conn != nullptr) {
      const auto pair =
          std::make_pair(std::min(call.conn->key.src.value(), call.conn->key.dst.value()),
                         std::max(call.conn->key.src.value(), call.conn->key.dst.value()));
      ++ncp_pair_reqs[pair];
    }
  }

  for (const auto& [pair, n] : nfs_pair_reqs) out.nfs_reqs_per_pair.add(static_cast<double>(n));
  for (const auto& [pair, n] : ncp_pair_reqs) out.ncp_reqs_per_pair.add(static_cast<double>(n));
  return out;
}

}  // namespace entrace
