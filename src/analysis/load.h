// Network load analysis (§6) — Figure 9 utilization distributions and
// Figure 10 TCP retransmission rates.
//
// The core pipeline fills one TraceLoadRaw per trace (utilization interval
// series at three timescales plus retransmission tallies split by
// locality); LoadAnalysis turns those into the paper's distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace entrace {

struct TraceLoadRaw {
  std::string trace_name;
  IntervalSeries bits_1s{1.0};
  IntervalSeries bits_10s{10.0};
  IntervalSeries bits_60s{60.0};

  // TCP data packets (potential retransmissions), keepalives excluded.
  std::uint64_t ent_tcp_pkts = 0;
  std::uint64_t ent_retx = 0;
  std::uint64_t wan_tcp_pkts = 0;
  std::uint64_t wan_retx = 0;
  std::uint64_t keepalive_excluded = 0;

  void add_packet(double ts, std::uint32_t wire_len) {
    const double bits = 8.0 * wire_len;
    bits_1s.add(ts, bits);
    bits_10s.add(ts, bits);
    bits_60s.add(ts, bits);
  }

  // Fold another shard of the same trace (sub-trace parallelism); the
  // utilization bins sum and the retransmission tallies add.
  void merge(const TraceLoadRaw& other) {
    bits_1s.merge(other.bits_1s);
    bits_10s.merge(other.bits_10s);
    bits_60s.merge(other.bits_60s);
    ent_tcp_pkts += other.ent_tcp_pkts;
    ent_retx += other.ent_retx;
    wan_tcp_pkts += other.wan_tcp_pkts;
    wan_retx += other.wan_retx;
    keepalive_excluded += other.keepalive_excluded;
  }
};

struct LoadAnalysis {
  // Figure 9(a): peak utilization per trace (Mbps), three timescales.
  EmpiricalCdf peak_1s, peak_10s, peak_60s;
  // Figure 9(b): per-trace summary statistics over 1-second intervals.
  EmpiricalCdf min_1s, max_1s, avg_1s, p25_1s, median_1s, p75_1s;
  // Figure 10: per-trace retransmission rates (fraction of packets).
  EmpiricalCdf retx_ent, retx_wan;
  std::vector<double> retx_ent_by_trace, retx_wan_by_trace;
  std::vector<std::string> trace_names;
  std::uint64_t keepalives_excluded = 0;

  // min_packets: traces with fewer TCP packets in a locality class are
  // skipped for Figure 10 (the paper requires at least 1000 packets).
  static LoadAnalysis compute(const std::vector<TraceLoadRaw>& traces,
                              std::uint64_t min_packets = 1000);
};

}  // namespace entrace
