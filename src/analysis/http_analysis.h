// HTTP analysis (§5.1.1) — Tables 6-7, Figures 3-4, plus success-rate and
// conditional-GET findings.
#pragma once

#include <map>
#include <span>
#include <string>

#include "analysis/host_pair.h"
#include "analysis/locality.h"
#include "analysis/site.h"
#include "proto/events.h"
#include "util/stats.h"

namespace entrace {

enum class HttpClientKind : std::uint8_t { kNormal, kScan1, kGoogle1, kGoogle2, kIfolder };
const char* to_string(HttpClientKind k);

HttpClientKind classify_http_client(const HttpTransaction& txn);

struct HttpAnalysis {
  // ---- Table 6: automated clients (internal HTTP traffic only) ----------
  struct AutoRow {
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
  };
  std::map<HttpClientKind, AutoRow> automated;
  std::uint64_t internal_requests = 0;
  std::uint64_t internal_bytes = 0;
  double automated_request_fraction() const;
  double automated_byte_fraction() const;

  // ---- Connection success rates (host pairs) -----------------------------
  HostPairOutcomes ent_success;
  HostPairOutcomes wan_success;

  // ---- Conditional GETs ---------------------------------------------------
  // (automated clients excluded, as in the paper)
  std::uint64_t ent_requests = 0, ent_conditional = 0;
  std::uint64_t wan_requests = 0, wan_conditional = 0;
  std::uint64_t ent_bytes = 0, ent_conditional_bytes = 0;
  std::uint64_t wan_bytes = 0, wan_conditional_bytes = 0;
  std::uint64_t request_successes = 0;  // 2xx or 304 outcomes

  // ---- Table 7: content types (coarse type of successful GETs) ----------
  BreakdownCounter content_ent;  // key = "text"/"image"/"application"/"other"
  BreakdownCounter content_wan;

  // ---- Figure 4: reply body sizes ----------------------------------------
  EmpiricalCdf reply_size_ent;
  EmpiricalCdf reply_size_wan;

  // ---- Figure 3: fan-out ---------------------------------------------------
  FanOutPair fanout;

  static HttpAnalysis compute(std::span<const HttpTransaction> txns,
                              std::span<const Connection* const> conns, const SiteConfig& site);
};

}  // namespace entrace
