// Network file system analysis (§5.2.2) — Tables 12-14, Figures 7-8.
#pragma once

#include <array>
#include <span>

#include "analysis/site.h"
#include "proto/events.h"
#include "util/stats.h"

namespace entrace {

struct NetFileAnalysis {
  // ---- Table 12: aggregate sizes -------------------------------------------
  std::uint64_t nfs_conns = 0, nfs_bytes = 0;
  std::uint64_t ncp_conns = 0, ncp_bytes = 0;

  // Heavy hitters: share of bytes carried by the top-3 host pairs.
  double nfs_top3_pair_byte_share = 0.0;
  double ncp_top3_pair_byte_share = 0.0;

  // NCP keepalive-only connections (paper: 40-80% of NCP connections carry
  // only 1-byte keepalive retransmissions).
  std::uint64_t ncp_keepalive_only_conns = 0;
  double ncp_keepalive_only_fraction() const {
    return ncp_conns == 0 ? 0.0
                          : static_cast<double>(ncp_keepalive_only_conns) /
                                static_cast<double>(ncp_conns);
  }

  // NFS UDP vs TCP (paper: 90% of host pairs use UDP; byte share varies
  // enormously across datasets).
  std::uint64_t nfs_udp_bytes = 0, nfs_tcp_bytes = 0;
  std::uint64_t nfs_udp_pairs = 0, nfs_tcp_pairs = 0;

  // ---- Table 13: NFS request breakdown -------------------------------------
  struct Row {
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;  // request + reply bytes
  };
  Row nfs_read, nfs_write, nfs_getattr, nfs_lookup, nfs_access, nfs_other;
  std::uint64_t nfs_total_requests = 0;
  std::uint64_t nfs_total_data = 0;

  // NFS request success (status == NFS3_OK).
  std::uint64_t nfs_replies = 0, nfs_ok = 0;

  // ---- Table 14: NCP request breakdown --------------------------------------
  std::array<Row, 8> ncp_rows{};  // indexed by NcpFunction
  std::uint64_t ncp_total_requests = 0;
  std::uint64_t ncp_total_data = 0;
  std::uint64_t ncp_replies = 0, ncp_ok = 0;

  // ---- Figure 7: requests per host pair --------------------------------------
  EmpiricalCdf nfs_reqs_per_pair;
  EmpiricalCdf ncp_reqs_per_pair;

  // ---- Figure 8: request/reply sizes ------------------------------------------
  EmpiricalCdf nfs_req_sizes, nfs_reply_sizes;
  EmpiricalCdf ncp_req_sizes, ncp_reply_sizes;

  static NetFileAnalysis compute(const AppEvents& events,
                                 std::span<const Connection* const> conns,
                                 const SiteConfig& site);
};

}  // namespace entrace
