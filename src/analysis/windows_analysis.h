// Windows services analysis (§5.2.1) — Tables 9, 10, 11.
#pragma once

#include <array>
#include <span>

#include "analysis/host_pair.h"
#include "analysis/site.h"
#include "proto/events.h"
#include "util/stats.h"

namespace entrace {

struct WindowsAnalysis {
  // ---- Table 9: connection success by host pairs (internal traffic) ------
  HostPairOutcomes nbss_conns;   // Netbios/SSN (139/tcp)
  HostPairOutcomes cifs_conns;   // CIFS (445/tcp)
  HostPairOutcomes epm_conns;    // Endpoint Mapper (135/tcp)

  // Netbios/SSN application-level handshake success (by host pairs).
  std::uint64_t nbss_handshake_pairs = 0;
  std::uint64_t nbss_handshake_ok = 0;
  double nbss_handshake_rate() const {
    return nbss_handshake_pairs == 0 ? 0.0
                                     : static_cast<double>(nbss_handshake_ok) /
                                           static_cast<double>(nbss_handshake_pairs);
  }

  // ---- Table 10: CIFS command breakdown ----------------------------------
  struct CategoryCell {
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;  // all message bytes in that category
  };
  std::array<CategoryCell, 5> cifs_categories{};  // indexed by CifsCategory
  std::uint64_t cifs_total_requests = 0;
  std::uint64_t cifs_total_bytes = 0;

  // ---- Table 11: DCE/RPC function breakdown -------------------------------
  // Rows: NetLogon, LsaRPC, Spoolss/WritePrinter, Spoolss/other, Other.
  struct RpcRow {
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
  };
  RpcRow rpc_netlogon, rpc_lsarpc, rpc_spoolss_write, rpc_spoolss_other, rpc_other;
  std::uint64_t rpc_total_requests = 0;
  std::uint64_t rpc_total_bytes = 0;
  // Channel split: pipes vs stand-alone endpoints.
  std::uint64_t rpc_over_pipe = 0;
  std::uint64_t rpc_standalone = 0;

  static WindowsAnalysis compute(const AppEvents& events,
                                 std::span<const Connection* const> conns,
                                 const SiteConfig& site);
};

}  // namespace entrace
