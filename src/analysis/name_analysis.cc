#include "analysis/name_analysis.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace entrace {

NameAnalysis NameAnalysis::compute(std::span<const DnsTransaction> dns,
                                   std::span<const NbnsTransaction> nbns,
                                   const SiteConfig& site) {
  NameAnalysis out;

  std::map<std::uint32_t, std::uint64_t> dns_clients;
  for (const auto& txn : dns) {
    ++out.dns_requests;
    if (txn.conn != nullptr) ++dns_clients[txn.conn->key.src.value()];
    switch (txn.qtype) {
      case dnstype::kA:
        ++out.dns_a;
        break;
      case dnstype::kAaaa:
        ++out.dns_aaaa;
        break;
      case dnstype::kPtr:
        ++out.dns_ptr;
        break;
      case dnstype::kMx:
        ++out.dns_mx;
        break;
      default:
        ++out.dns_other_type;
        break;
    }
    if (txn.has_response) {
      ++out.dns_responses;
      if (txn.rcode == dnsrcode::kNoError) {
        ++out.dns_noerror;
      } else if (txn.rcode == dnsrcode::kNxDomain) {
        ++out.dns_nxdomain;
      } else {
        ++out.dns_other_rcode;
      }
      if (txn.conn != nullptr && txn.latency() >= 0) {
        // The server is the responder of the flow.
        const bool wan = !site.is_internal(txn.conn->key.dst);
        (wan ? out.dns_latency_wan : out.dns_latency_ent).add(txn.latency());
      }
    }
  }
  if (out.dns_requests > 0 && !dns_clients.empty()) {
    std::vector<std::uint64_t> counts;
    counts.reserve(dns_clients.size());
    for (const auto& [client, n] : dns_clients) counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top2 = counts[0] + (counts.size() > 1 ? counts[1] : 0);
    out.dns_top2_client_share = static_cast<double>(top2) /
                                static_cast<double>(out.dns_requests);
  }

  // ---- Netbios-NS --------------------------------------------------------
  std::map<std::uint32_t, std::uint64_t> nbns_clients;
  // Distinct op = (client, name); an op failed if it ever yielded rcode 3
  // and never a positive answer.
  std::map<std::pair<std::uint32_t, std::string>, int> ops;  // 1 ok, -1 fail
  for (const auto& txn : nbns) {
    ++out.nbns_requests;
    if (txn.conn != nullptr) ++nbns_clients[txn.conn->key.src.value()];
    switch (txn.opcode) {
      case NbnsOpcode::kQuery:
        ++out.nbns_queries;
        break;
      case NbnsOpcode::kRefresh:
        ++out.nbns_refresh;
        break;
      case NbnsOpcode::kRegistration:
        ++out.nbns_register;
        break;
      case NbnsOpcode::kRelease:
        ++out.nbns_release;
        break;
      default:
        ++out.nbns_other_op;
        break;
    }
    switch (txn.name_type) {
      case NbnsNameType::kWorkstation:
      case NbnsNameType::kServer:
        ++out.nbns_type_workstation_server;
        break;
      case NbnsNameType::kDomain:
        ++out.nbns_type_domain;
        break;
      default:
        ++out.nbns_type_other;
        break;
    }
    if (txn.opcode == NbnsOpcode::kQuery && txn.has_response && txn.conn != nullptr) {
      auto& verdict = ops[{txn.conn->key.src.value(), txn.name}];
      if (txn.rcode == 0) {
        verdict = 1;
      } else if (verdict == 0) {
        verdict = -1;
      }
    }
  }
  for (const auto& [op, verdict] : ops) {
    ++out.nbns_distinct_ops;
    if (verdict < 0) ++out.nbns_failed_ops;
  }
  if (out.nbns_requests > 0 && !nbns_clients.empty()) {
    std::vector<std::uint64_t> counts;
    counts.reserve(nbns_clients.size());
    for (const auto& [client, n] : nbns_clients) counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top10 = 0;
    for (std::size_t i = 0; i < counts.size() && i < 10; ++i) top10 += counts[i];
    out.nbns_top10_client_share = static_cast<double>(top10) /
                                  static_cast<double>(out.nbns_requests);
  }
  return out;
}

}  // namespace entrace
