// Host-pair success-rate accounting (§5).
//
// "counting the number of failed connections/requests ... can be misleading
// if the client is automated and endlessly retries ... Therefore, we
// instead determine the number of distinct operations between distinct
// host-pairs when quantifying success and failure."  This helper groups
// connections by (orig, resp) pair and classifies each pair by its dominant
// outcome.
#pragma once

#include <cstdint>
#include <map>
#include <span>

#include "flow/connection.h"

namespace entrace {

struct HostPairOutcomes {
  std::uint64_t pairs = 0;
  std::uint64_t successful = 0;
  std::uint64_t rejected = 0;
  std::uint64_t unanswered = 0;

  double success_rate() const {
    return pairs == 0 ? 0.0 : static_cast<double>(successful) / static_cast<double>(pairs);
  }
  double rejected_rate() const {
    return pairs == 0 ? 0.0 : static_cast<double>(rejected) / static_cast<double>(pairs);
  }
  double unanswered_rate() const {
    return pairs == 0 ? 0.0 : static_cast<double>(unanswered) / static_cast<double>(pairs);
  }

  template <typename Pred>
  static HostPairOutcomes compute(std::span<const Connection* const> conns, Pred select) {
    struct Tally {
      std::uint64_t ok = 0, rej = 0, unans = 0;
    };
    std::map<std::pair<std::uint32_t, std::uint32_t>, Tally> pairs;
    for (const Connection* c : conns) {
      if (!select(*c)) continue;
      auto& t = pairs[{c->key.src.value(), c->key.dst.value()}];
      if (c->successful()) {
        ++t.ok;
      } else if (c->state == ConnState::kRejected) {
        ++t.rej;
      } else {
        ++t.unans;
      }
    }
    HostPairOutcomes out;
    for (const auto& [key, t] : pairs) {
      ++out.pairs;
      // Dominant outcome; ties resolve toward success (a pair that ever
      // succeeds is working).
      if (t.ok >= t.rej && t.ok >= t.unans && t.ok > 0) {
        ++out.successful;
      } else if (t.rej >= t.unans) {
        ++out.rejected;
      } else {
        ++out.unanswered;
      }
    }
    return out;
  }
};

}  // namespace entrace
