// Email analysis (§5.1.2) — Table 8, Figures 5-6, success rates.
//
// As in the paper, the analysis is transport-level (IMAP/S and much SMTP
// payload is encrypted): byte volumes per protocol, connection durations,
// flow sizes in the dominant transfer direction, and host-pair success.
#pragma once

#include <span>

#include "analysis/host_pair.h"
#include "analysis/site.h"
#include "flow/connection.h"
#include "util/stats.h"

namespace entrace {

struct EmailAnalysis {
  // ---- Table 8: bytes by protocol -----------------------------------------
  std::uint64_t smtp_bytes = 0;
  std::uint64_t imaps_bytes = 0;
  std::uint64_t imap4_bytes = 0;
  std::uint64_t other_bytes = 0;  // POP3, POP/S, LDAP

  // ---- Figure 5: connection durations -------------------------------------
  EmpiricalCdf smtp_dur_ent, smtp_dur_wan;
  EmpiricalCdf imaps_dur_ent, imaps_dur_wan;

  // ---- Figure 6: flow sizes ------------------------------------------------
  // SMTP measured client->server, IMAP/S measured server->client.
  EmpiricalCdf smtp_size_ent, smtp_size_wan;
  EmpiricalCdf imaps_size_ent, imaps_size_wan;

  // ---- Success rates (host pairs) ------------------------------------------
  HostPairOutcomes smtp_ent, smtp_wan;
  HostPairOutcomes imaps_all;

  static EmailAnalysis compute(std::span<const Connection* const> conns,
                               const SiteConfig& site);
};

}  // namespace entrace
