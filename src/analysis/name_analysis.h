// Name service analysis (§5.1.3): DNS and Netbios-NS latency, client
// concentration, request types, name types, and return codes.
#pragma once

#include <span>

#include "analysis/site.h"
#include "proto/events.h"
#include "util/stats.h"

namespace entrace {

struct NameAnalysis {
  // ---- DNS -----------------------------------------------------------------
  EmpiricalCdf dns_latency_ent;  // seconds
  EmpiricalCdf dns_latency_wan;
  // Request type fractions over all DNS queries.
  std::uint64_t dns_requests = 0;
  std::uint64_t dns_a = 0, dns_aaaa = 0, dns_ptr = 0, dns_mx = 0, dns_other_type = 0;
  // Return codes.
  std::uint64_t dns_responses = 0, dns_noerror = 0, dns_nxdomain = 0, dns_other_rcode = 0;
  // Fraction of requests issued by the top-2 clients (the paper: two main
  // SMTP servers lead).
  double dns_top2_client_share = 0.0;

  // ---- Netbios-NS -------------------------------------------------------------
  std::uint64_t nbns_requests = 0;
  std::uint64_t nbns_queries = 0, nbns_refresh = 0, nbns_register = 0, nbns_release = 0,
                nbns_other_op = 0;
  std::uint64_t nbns_type_workstation_server = 0, nbns_type_domain = 0, nbns_type_other = 0;
  // Failure rate over distinct (client, name) operations — the paper's
  // host-pair style counting.
  std::uint64_t nbns_distinct_ops = 0;
  std::uint64_t nbns_failed_ops = 0;
  double nbns_top10_client_share = 0.0;

  double nbns_failure_rate() const {
    return nbns_distinct_ops == 0
               ? 0.0
               : static_cast<double>(nbns_failed_ops) / static_cast<double>(nbns_distinct_ops);
  }

  static NameAnalysis compute(std::span<const DnsTransaction> dns,
                              std::span<const NbnsTransaction> nbns, const SiteConfig& site);
};

}  // namespace entrace
