#include "analysis/scanner.h"

#include <algorithm>

namespace entrace {

ScannerDetector::ScannerDetector(Config config) : config_(config) {}

void ScannerDetector::observe(Ipv4Address src, Ipv4Address dst) {
  auto& state = sources_[src.value()];
  if (state.seen.insert(dst.value()).second) {
    // Cap memory per source: beyond a few thousand distinct targets the
    // verdict cannot change.
    if (state.order.size() < 4096) state.order.push_back(dst.value());
    cache_valid_ = false;
  }
}

void ScannerDetector::add_known_scanner(Ipv4Address addr) {
  known_.insert(addr);
  cache_valid_ = false;
}

void ScannerDetector::merge(const ScannerDetector& other) {
  for (const auto& [src, theirs] : other.sources_) {
    auto& mine = sources_[src];
    for (const std::uint32_t dst : theirs.order) {
      if (mine.seen.insert(dst).second && mine.order.size() < 4096) {
        mine.order.push_back(dst);
      }
    }
    // Destinations past the other detector's order cap still count toward
    // the distinct-host threshold.
    for (const std::uint32_t dst : theirs.seen) mine.seen.insert(dst);
  }
  known_.insert(other.known_.begin(), other.known_.end());
  cache_valid_ = false;
}

std::vector<ScannerDetector::SourceObservations> ScannerDetector::export_observations() const {
  std::vector<SourceObservations> out;
  out.reserve(sources_.size());
  for (const auto& [src, state] : sources_) {
    SourceObservations obs;
    obs.source = src;
    obs.order = state.order;
    const std::unordered_set<std::uint32_t> in_order(state.order.begin(), state.order.end());
    for (const std::uint32_t dst : state.seen) {
      if (in_order.count(dst) == 0) obs.extra_seen.push_back(dst);
    }
    std::sort(obs.extra_seen.begin(), obs.extra_seen.end());
    out.push_back(std::move(obs));
  }
  std::sort(out.begin(), out.end(),
            [](const SourceObservations& a, const SourceObservations& b) {
              return a.source < b.source;
            });
  return out;
}

void ScannerDetector::import_observations(const std::vector<SourceObservations>& observations) {
  for (const SourceObservations& obs : observations) {
    SourceState& state = sources_[obs.source];
    state.order = obs.order;
    state.seen.reserve(obs.order.size() + obs.extra_seen.size());
    state.seen.insert(obs.order.begin(), obs.order.end());
    state.seen.insert(obs.extra_seen.begin(), obs.extra_seen.end());
  }
  cache_valid_ = false;
}

bool ScannerDetector::is_ordered_probe(const SourceState& s, const Config& config) {
  if (s.seen.size() <= config.distinct_host_threshold) return false;
  // Count the longest run of consecutive first-contacts moving in one
  // direction through the address space.
  std::size_t best = 1, asc = 1, desc = 1;
  for (std::size_t i = 1; i < s.order.size(); ++i) {
    if (s.order[i] > s.order[i - 1]) {
      ++asc;
      desc = 1;
    } else if (s.order[i] < s.order[i - 1]) {
      ++desc;
      asc = 1;
    } else {
      asc = desc = 1;
    }
    best = std::max({best, asc, desc});
  }
  return best >= config.ordered_run_threshold;
}

std::set<Ipv4Address> ScannerDetector::scanners() const {
  if (!cache_valid_) {
    cache_ = known_;
    for (const auto& [src, state] : sources_) {
      if (is_ordered_probe(state, config_)) cache_.insert(Ipv4Address(src));
    }
    cache_valid_ = true;
  }
  return cache_;
}

bool ScannerDetector::is_scanner(Ipv4Address addr) const {
  if (!cache_valid_) scanners();
  return cache_.count(addr) > 0;
}

}  // namespace entrace
