// Broad traffic breakdowns — Table 2 (network layer), Table 3 (transport),
// Figure 1 (application categories, enterprise vs WAN).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "analysis/site.h"
#include "flow/connection.h"
#include "net/decoder.h"
#include "proto/registry.h"
#include "util/stats.h"

namespace entrace {

// Table 2: fraction of packets by network-layer protocol.
struct NetworkLayerBreakdown {
  std::uint64_t total = 0;
  std::uint64_t ip = 0;
  std::uint64_t arp = 0;
  std::uint64_t ipx = 0;
  std::uint64_t other = 0;

  void add(L3Kind kind);
  void merge(const NetworkLayerBreakdown& other);

  double ip_fraction() const { return frac(ip); }
  // The paper reports ARP/IPX/other as fractions of the *non-IP* packets.
  double non_ip_fraction() const { return frac(total - ip); }
  double arp_of_non_ip() const { return non_ip_frac(arp); }
  double ipx_of_non_ip() const { return non_ip_frac(ipx); }
  double other_of_non_ip() const { return non_ip_frac(other); }

 private:
  double frac(std::uint64_t n) const {
    return total == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(total);
  }
  double non_ip_frac(std::uint64_t n) const {
    const std::uint64_t non_ip = total - ip;
    return non_ip == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(non_ip);
  }
};

// Table 3: payload bytes and connection counts by transport protocol.
struct TransportBreakdown {
  std::uint64_t conns = 0;
  std::uint64_t tcp_conns = 0;
  std::uint64_t udp_conns = 0;
  std::uint64_t icmp_conns = 0;
  std::uint64_t bytes = 0;
  std::uint64_t tcp_bytes = 0;
  std::uint64_t udp_bytes = 0;
  std::uint64_t icmp_bytes = 0;

  static TransportBreakdown compute(std::span<const Connection* const> conns);

  double conn_fraction(std::uint8_t proto) const;
  double byte_fraction(std::uint8_t proto) const;
};

// Figure 1: per-category payload bytes / connections / packets, split into
// enterprise-internal and WAN-crossing, with multicast tracked separately
// (the paper reports multicast streaming/name/net-mgnt callouts).
struct AppCategoryBreakdown {
  struct Cell {
    std::uint64_t conns = 0;
    std::uint64_t bytes = 0;
    std::uint64_t pkts = 0;
  };
  // [category][0=enterprise,1=wan]
  std::array<std::array<Cell, 2>, kNumCategories> unicast{};
  std::array<Cell, kNumCategories> multicast{};
  std::uint64_t total_unicast_conns = 0;
  std::uint64_t total_unicast_bytes = 0;
  std::uint64_t total_unicast_pkts = 0;
  std::uint64_t total_bytes_all = 0;  // unicast + multicast
  std::uint64_t total_conns_all = 0;

  static AppCategoryBreakdown compute(std::span<const Connection* const> conns,
                                      const SiteConfig& site);

  static AppCategory category_for(const Connection& conn);

  double byte_fraction(AppCategory c, bool wan) const;
  double conn_fraction(AppCategory c, bool wan) const;
  double multicast_byte_fraction(AppCategory c) const;
  double multicast_conn_fraction(AppCategory c) const;
};

}  // namespace entrace
