// SnapshotWriter: encode analyzed per-trace shards into a .esnap file.
//
// A shard process analyzes a contiguous range of a dataset's traces
// (analyze_trace_shards) and hands each TraceShard to add_shard() with its
// global trace index.  close() writes the end marker — a file without one
// (a killed shard process) is rejected by the reader, which is exactly the
// checkpoint semantics entrace_shard's --resume relies on: only complete
// snapshot files count as done work.
//
// Emission is crash-safe: all bytes go to `<path>.tmp`, and close()
// atomically renames it onto `path` after the end marker is flushed.  A
// worker killed at any point therefore leaves either nothing at the
// destination name or a complete, validated snapshot — never a
// destination-named partial that --resume or a supervisor must re-inspect
// (the .tmp may survive a hard kill; it is overwritten by the next
// attempt).  The reader's missing-end-marker rejection stays as the second
// line of defense for files that arrive by other routes.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

#include "core/analyzer.h"
#include "snapshot/format.h"

namespace entrace::snapshot {

class SnapshotWriter {
 public:
  // Opens the file and writes magic + version + the dataset-meta section.
  // Throws std::runtime_error when the file cannot be created.
  SnapshotWriter(const std::string& path, const SnapshotMeta& meta);

  // Stream-sink mode: encode the same byte stream into `sink` (e.g. an
  // ostringstream) instead of a file.  close() writes the end marker and
  // flushes; there is no tmp/rename because there is no destination path —
  // the cluster worker streams these bytes over TCP, where the DONE
  // message's whole-stream CRC plays the commit-point role the atomic
  // rename plays on disk.  `sink` must outlive the writer.
  SnapshotWriter(std::ostream& sink, const SnapshotMeta& meta);

  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Encode one trace shard (all nine per-trace sections).  Shards must be
  // added in ascending trace-index order (the reader enforces the same, so
  // violations fail fast at write time instead of at merge time).
  void add_shard(std::uint32_t trace_index, const TraceShard& shard);

  // Write the end section, flush, and atomically rename the .tmp onto the
  // destination path.  Until then nothing exists at the destination; a
  // .tmp without an end section is (by design) an invalid,
  // resumable-from-scratch partial.
  void close();

  std::uint64_t bytes_written() const { return offset_; }

 private:
  void write_header(const SnapshotMeta& meta);
  void write_section(SectionType type, const ByteWriter& payload);

  std::string path_;      // empty in stream-sink mode
  std::string tmp_path_;  // empty in stream-sink mode
  std::ofstream out_;     // unopened in stream-sink mode
  std::ostream* sink_ = nullptr;  // &out_ in file mode, the caller's stream otherwise
  std::uint64_t offset_ = 0;
  std::int64_t last_index_ = -1;
  bool closed_ = false;
};

}  // namespace entrace::snapshot
