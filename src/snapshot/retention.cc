#include "snapshot/retention.h"

#include <cstdio>

#include <fstream>
#include <sstream>

namespace entrace::snapshot {

std::string to_json_line(const WindowSummary& s) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"window\":" << s.index << ",\"start_ts\":" << s.start_ts
      << ",\"end_ts\":" << s.end_ts << ",\"packets\":" << s.packets
      << ",\"wire_bytes\":" << s.wire_bytes << ",\"connections\":" << s.connections
      << ",\"app_events\":" << s.app_events << ",\"snapshot_bytes\":" << s.snapshot_bytes << "}";
  return out.str();
}

RetentionManager::RetentionManager(std::string dir, std::size_t keep_full)
    : dir_(std::move(dir)), summary_path_(dir_ + "/summary.jsonl"), keep_full_(keep_full) {}

std::size_t RetentionManager::add_window(const WindowSummary& summary,
                                         const std::string& esnap_path) {
  tier0_.push_back(Tier0Entry{summary, esnap_path});
  std::size_t aged = 0;
  while (tier0_.size() > keep_full_) {
    const Tier0Entry& old = tier0_.front();
    {
      // Append-only: one complete JSON line per aged window.  A crash mid-
      // append tears at most the final line, which readers skip.
      std::ofstream out(summary_path_, std::ios::app);
      out << to_json_line(old.summary) << "\n";
    }
    std::remove(old.path.c_str());
    tier0_.pop_front();
    ++summarized_;
    ++aged;
  }
  return aged;
}

}  // namespace entrace::snapshot
