#include "snapshot/retention.h"

#include <cstdio>
#include <cstring>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace entrace::snapshot {

namespace {

namespace fs = std::filesystem;

// "window-00000042.esnap" -> 42.
bool parse_window_file(const std::string& name, std::uint64_t& index) {
  unsigned long long v = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "window-%8llu.esnap%n", &v, &consumed) != 1) return false;
  if (static_cast<std::size_t>(consumed) != name.size()) return false;
  index = v;
  return true;
}

// "sketch1-00000000-00000007.esnap" -> tier 1, [0, 7].
bool parse_sketch_file(const std::string& name, int& tier, std::uint64_t& first,
                       std::uint64_t& last) {
  int t = 0;
  unsigned long long a = 0, b = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "sketch%d-%8llu-%8llu.esnap%n", &t, &a, &b, &consumed) != 3) {
    return false;
  }
  if (static_cast<std::size_t>(consumed) != name.size()) return false;
  if ((t != 1 && t != 2) || a > b) return false;
  tier = t;
  first = a;
  last = b;
  return true;
}

std::uint64_t file_size_or_zero(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t n = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

// Extract the "window":N field of a summary line; nullopt on a torn or
// foreign line (both are skipped — the file is append-only and a crash may
// tear the final line).
std::optional<std::uint64_t> summary_line_index(const std::string& line) {
  static constexpr char kKey[] = "\"window\":";
  const std::size_t at = line.find(kKey);
  if (at == std::string::npos) return std::nullopt;
  const char* s = line.c_str() + at + sizeof(kKey) - 1;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::string to_json_line(const WindowSummary& s) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"window\":" << s.index << ",\"start_ts\":" << s.start_ts
      << ",\"end_ts\":" << s.end_ts << ",\"packets\":" << s.packets
      << ",\"wire_bytes\":" << s.wire_bytes << ",\"connections\":" << s.connections
      << ",\"app_events\":" << s.app_events << ",\"snapshot_bytes\":" << s.snapshot_bytes << "}";
  return out.str();
}

WindowSummary summarize_window(const WindowShard& win) {
  WindowSummary s;
  s.index = win.index;
  s.start_ts = win.start_ts;
  s.end_ts = win.end_ts;
  for (const TraceShard& shard : win.shards) {
    s.packets += shard.total_packets;
    s.wire_bytes += shard.total_wire_bytes;
    if (shard.table != nullptr) s.connections += shard.table->connections().size();
    s.app_events += shard.events.total();
  }
  return s;
}

std::string sketch_file_name(int tier, std::uint64_t first_window, std::uint64_t last_window) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "sketch%d-%08llu-%08llu.esnap", tier,
                static_cast<unsigned long long>(first_window),
                static_cast<unsigned long long>(last_window));
  return buf;
}

RetentionManager::RetentionManager(std::string dir, std::size_t keep_full)
    : dir_(std::move(dir)), summary_path_(dir_ + "/summary.jsonl"), keep_full_(keep_full) {}

RetentionManager::RetentionManager(std::string dir, const RetentionOptions& opts,
                                   const AnalyzerConfig& config, const SnapshotMeta& meta)
    : dir_(std::move(dir)),
      summary_path_(dir_ + "/summary.jsonl"),
      keep_full_(opts.keep_full),
      sketch_every_(opts.sketch_every),
      config_(config),
      meta_(meta) {
  if (sketch_every_ < 2) {
    throw std::invalid_argument("RetentionOptions::sketch_every must be >= 2");
  }
  recover_scan();
}

AgeResult RetentionManager::add_window(const WindowSummary& summary,
                                       const std::string& esnap_path) {
  AgeResult r;
  // A restarted run re-using an index path replaces the recovered entry —
  // the file on disk was just overwritten, so the old accounting is stale.
  for (auto it = tier0_.begin(); it != tier0_.end(); ++it) {
    if (it->path == esnap_path) {
      bytes_ -= it->summary.snapshot_bytes;
      tier0_.erase(it);
      break;
    }
  }
  tier0_.push_back(Tier0Entry{summary, esnap_path});
  bytes_ += summary.snapshot_bytes;
  age_down(r);
  return r;
}

void RetentionManager::age_down(AgeResult& r) {
  while (tier0_.size() > keep_full_) {
    Tier0Entry old = std::move(tier0_.front());
    tier0_.pop_front();
    // Headline tier first: one complete JSON line per aged window.  A crash
    // mid-append tears at most the final line, which readers skip.
    if (!append_summary(old.summary)) note_io_error(r);
    ++summarized_;
    ++r.aged;
    if (sketch_every_ >= 2) {
      // The window keeps its .esnap until the sketch covering it has been
      // renamed into place (crash safety: no window is ever only-in-flight).
      pending_.push_back(FileEntry{old.summary.index, old.summary.index, old.path,
                                   old.summary.snapshot_bytes});
    } else {
      if (std::remove(old.path.c_str()) != 0) note_io_error(r);
      bytes_ -= old.summary.snapshot_bytes;
    }
  }
  if (sketch_every_ < 2) return;
  while (pending_.size() >= sketch_every_) {
    if (!fold_into(pending_, sketch_every_, 1, tier1_, r)) break;
  }
  while (tier1_.size() >= sketch_every_) {
    if (!fold_into(tier1_, sketch_every_, 2, tier2_, r)) break;
  }
  // Tier-2 compaction: fold the whole tier into one sketch so it never
  // exceeds sketch_every files no matter how long the run.
  while (tier2_.size() >= sketch_every_) {
    if (!fold_into(tier2_, tier2_.size(), 2, tier2_, r)) break;
  }
}

bool RetentionManager::append_summary(const WindowSummary& s) {
  std::ofstream out(summary_path_, std::ios::app);
  if (!out) return false;
  const std::string line = to_json_line(s) + "\n";
  out << line;
  out.flush();
  if (!out) return false;
  bytes_ += line.size();
  return true;
}

bool RetentionManager::fold_into(std::deque<FileEntry>& src, std::size_t count, int out_tier,
                                 std::deque<FileEntry>& dst, AgeResult& r) {
  std::vector<WindowShard> windows;
  windows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    try {
      WindowShard w = read_window_snapshot(src[i].path);
      w.index = src[i].first;
      windows.push_back(std::move(w));
    } catch (const std::exception&) {
      // A damaged input would wedge the tier forever if we kept retrying
      // it: drop the entry (its headline line survives in summary.jsonl)
      // and let the next aging pass fold the survivors.
      note_io_error(r);
      std::remove(src[i].path.c_str());
      bytes_ -= src[i].bytes;
      src.erase(src.begin() + static_cast<std::ptrdiff_t>(i));
      return false;
    }
  }

  WindowShard merged;
  merged.index = src.front().first;
  merged.start_ts = windows.front().start_ts;
  merged.end_ts = windows.back().end_ts;
  merged.shards = merge_window_shards(std::move(windows), config_);

  FileEntry out;
  out.first = src.front().first;
  out.last = src[count - 1].last;
  out.path = dir_ + "/" + sketch_file_name(out_tier, out.first, out.last);
  try {
    // Crash-safe tmp+rename inside the writer: the sketch either exists
    // complete or not at all, and the inputs are deleted only afterwards.
    out.bytes = write_window_snapshot(out.path, meta_, merged);
  } catch (const std::exception&) {
    note_io_error(r);  // inputs intact; retried on the next aging pass
    return false;
  }
  ++r.folds;
  ++folds_;
  bytes_ += out.bytes;
  for (std::size_t i = 0; i < count; ++i) {
    if (std::remove(src.front().path.c_str()) != 0) note_io_error(r);
    bytes_ -= src.front().bytes;
    src.pop_front();
  }
  dst.push_back(std::move(out));
  return true;
}

void RetentionManager::note_io_error(AgeResult& r) {
  ++r.io_errors;
  ++io_errors_;
}

void RetentionManager::recover_scan() {
  // Headline tier: count recovered summary lines and find the highest
  // summarized window index — windows at or below it already aged out of
  // tier 0 before the crash, so they re-enter as pending, not tier-0
  // (re-summarizing them would duplicate their lines).
  std::optional<std::uint64_t> max_summarized;
  {
    std::ifstream in(summary_path_);
    std::string line;
    while (std::getline(in, line)) {
      const std::optional<std::uint64_t> idx = summary_line_index(line);
      if (!idx.has_value()) continue;  // torn final line or foreign content
      ++summarized_;
      if (!max_summarized.has_value() || *idx > *max_summarized) max_summarized = *idx;
    }
  }
  bytes_ += file_size_or_zero(summary_path_);

  struct WindowCandidate {
    std::uint64_t index = 0;
    std::string path;
    std::uint64_t bytes = 0;
    WindowSummary summary;
  };
  std::vector<WindowCandidate> windows;
  std::vector<FileEntry> tier1, tier2;

  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::string path = entry.path().string();
    std::uint64_t index = 0, first = 0, last = 0;
    int tier = 0;
    if (parse_window_file(name, index)) {
      // Validate by decoding (torn checkpoints from a crash are rejected);
      // the decoded shards also rebuild the headline summary the entry
      // needs when it eventually ages (timestamps are not in the format and
      // recover as zero — headline counts stay exact).
      try {
        WindowShard w = read_window_snapshot(path);
        w.index = index;
        WindowCandidate c;
        c.index = index;
        c.path = path;
        c.bytes = file_size_or_zero(path);
        c.summary = summarize_window(w);
        c.summary.snapshot_bytes = c.bytes;
        windows.push_back(std::move(c));
      } catch (const std::exception&) {
        ++recovery_rejected_;
        std::remove(path.c_str());
      }
    } else if (parse_sketch_file(name, tier, first, last)) {
      try {
        read_window_snapshot(path);  // torn sketch rejected, run continues
        FileEntry e{first, last, path, file_size_or_zero(path)};
        (tier == 1 ? tier1 : tier2).push_back(std::move(e));
      } catch (const std::exception&) {
        ++recovery_rejected_;
        std::remove(path.c_str());
      }
    }
  }

  const auto by_first = [](const FileEntry& a, const FileEntry& b) { return a.first < b.first; };
  std::sort(tier1.begin(), tier1.end(), by_first);
  std::sort(tier2.begin(), tier2.end(), by_first);
  std::sort(windows.begin(), windows.end(),
            [](const WindowCandidate& a, const WindowCandidate& b) { return a.index < b.index; });

  // Drop range duplicates: a crash between a sketch's rename and its input
  // deletes leaves both on disk, and folding the inputs again would double-
  // count their windows.  Higher tiers win (they are the rename that
  // committed the fold).
  const auto covered_by = [](const std::vector<FileEntry>& tier, std::uint64_t first,
                             std::uint64_t last) {
    for (const FileEntry& e : tier) {
      if (e.first <= first && last <= e.last) return true;
    }
    return false;
  };
  std::vector<FileEntry> tier1_kept;
  for (FileEntry& e : tier1) {
    if (covered_by(tier2, e.first, e.last)) {
      ++recovery_rejected_;
      std::remove(e.path.c_str());
    } else {
      tier1_kept.push_back(std::move(e));
    }
  }
  for (WindowCandidate& c : windows) {
    if (covered_by(tier2, c.index, c.index) || covered_by(tier1_kept, c.index, c.index)) {
      ++recovery_rejected_;
      std::remove(c.path.c_str());
      continue;
    }
    if (max_summarized.has_value() && c.index <= *max_summarized) {
      pending_.push_back(FileEntry{c.index, c.index, c.path, c.bytes});
    } else {
      tier0_.push_back(Tier0Entry{c.summary, c.path});
    }
    bytes_ += c.bytes;
  }
  for (FileEntry& e : tier1_kept) {
    bytes_ += e.bytes;
    tier1_.push_back(std::move(e));
  }
  for (FileEntry& e : tier2) {
    bytes_ += e.bytes;
    tier2_.push_back(std::move(e));
  }

  // Restore the tier invariants (tier0 <= keep_full, fewer than K entries
  // waiting at each fold point); a recovered backlog folds right here.
  AgeResult scrap;
  age_down(scrap);
}

std::vector<std::string> RetentionManager::tier0_paths() const {
  std::vector<std::string> paths;
  paths.reserve(tier0_.size());
  for (const Tier0Entry& e : tier0_) paths.push_back(e.path);
  return paths;
}

std::vector<std::string> RetentionManager::report_paths() const {
  std::vector<std::string> paths;
  paths.reserve(tier2_.size() + tier1_.size() + pending_.size() + tier0_.size());
  for (const FileEntry& e : tier2_) paths.push_back(e.path);
  for (const FileEntry& e : tier1_) paths.push_back(e.path);
  for (const FileEntry& e : pending_) paths.push_back(e.path);
  for (const Tier0Entry& e : tier0_) paths.push_back(e.path);
  return paths;
}

std::uint64_t RetentionManager::next_window_index() const {
  std::uint64_t next = 0;
  const auto bump = [&next](std::uint64_t last) { next = std::max(next, last + 1); };
  for (const FileEntry& e : tier2_) bump(e.last);
  for (const FileEntry& e : tier1_) bump(e.last);
  for (const FileEntry& e : pending_) bump(e.last);
  for (const Tier0Entry& e : tier0_) bump(e.summary.index);
  return next;
}

}  // namespace entrace::snapshot
