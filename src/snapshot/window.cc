#include "snapshot/window.h"

#include <cstdio>
#include <stdexcept>
#include <unordered_map>

#include "core/report.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"

namespace entrace::snapshot {

std::string window_file_name(std::uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "window-%08llu.esnap",
                static_cast<unsigned long long>(index));
  return buf;
}

std::uint64_t write_window_snapshot(const std::string& path, const SnapshotMeta& meta,
                                    const WindowShard& window) {
  SnapshotWriter writer(path, meta);
  for (std::size_t i = 0; i < window.shards.size(); ++i) {
    writer.add_shard(static_cast<std::uint32_t>(i), window.shards[i]);
  }
  writer.close();
  return writer.bytes_written();
}

WindowShard read_window_snapshot(const std::string& path) {
  Snapshot snap = read_snapshot(path);
  WindowShard win;
  win.shards.reserve(snap.shards.size());
  for (SnapshotShard& s : snap.shards) win.shards.push_back(std::move(s.shard));
  return win;
}

std::vector<TraceShard> merge_window_shards(std::vector<WindowShard>&& windows,
                                            const AnalyzerConfig& config) {
  std::size_t traces = 0;
  for (const WindowShard& w : windows) traces = std::max(traces, w.shards.size());

  std::vector<TraceShard> out;
  out.reserve(traces);
  for (std::size_t t = 0; t < traces; ++t) out.emplace_back(config.scanner);

  for (std::size_t t = 0; t < traces; ++t) {
    TraceShard& dst = out[t];
    dst.table = std::make_unique<FlowTable>(config.flow);
    std::deque<Connection>& conns = dst.table->connections();
    // open_seq -> reassembled deque index.  Windows partition time and
    // open_seq is assigned in creation order, so first appearances arrive
    // already in open_seq order: the deque reassembles in exact batch order
    // without a final sort.
    std::unordered_map<std::uint64_t, std::size_t> by_seq;
    bool first = true;

    for (WindowShard& w : windows) {
      if (t >= w.shards.size()) continue;
      TraceShard& ws = w.shards[t];
      if (first) {
        dst.subnet_id = ws.subnet_id;
        dst.load.trace_name = ws.load.trace_name;
        first = false;
      }
      dst.total_packets += ws.total_packets;
      dst.total_wire_bytes += ws.total_wire_bytes;
      dst.l3.merge(ws.l3);
      dst.ip_proto_packets.merge(ws.ip_proto_packets);
      dst.monitored_hosts.insert(ws.monitored_hosts.begin(), ws.monitored_hosts.end());
      dst.lbnl_hosts.insert(ws.lbnl_hosts.begin(), ws.lbnl_hosts.end());
      dst.remote_hosts.insert(ws.remote_hosts.begin(), ws.remote_hosts.end());
      dst.detector.merge(ws.detector);
      dst.registry.merge_dynamic_endpoints(ws.registry);
      dst.quality.merge(ws.quality);
      dst.load.merge(ws.load);
      dst.metrics.merge(ws.metrics);

      // Upsert this window's connection deltas: a delta is the connection's
      // cumulative state as of the window end, so the latest window's copy
      // wins wholesale.
      std::unordered_map<const Connection*, const Connection*> remap;
      if (ws.table != nullptr) {
        remap.reserve(ws.table->connections().size());
        for (const Connection& c : ws.table->connections()) {
          const auto [it, fresh] = by_seq.try_emplace(c.open_seq, conns.size());
          if (fresh) {
            conns.push_back(c);
          } else {
            conns[it->second] = c;
          }
          remap.emplace(&c, &conns[it->second]);
        }
      }
      remap_event_connections(ws.events, [&](const Connection* c) {
        const auto it = remap.find(c);
        if (it == remap.end()) {
          throw std::logic_error(
              "window event references a connection absent from its window's delta");
        }
        return it->second;
      });
      dst.events.merge(std::move(ws.events));
    }
  }
  return out;
}

std::string render_windowed_report(const std::vector<std::string>& window_paths,
                                   const DatasetSpec& spec, const AnalyzerConfig& config) {
  std::vector<WindowShard> windows;
  windows.reserve(window_paths.size());
  for (std::size_t i = 0; i < window_paths.size(); ++i) {
    WindowShard win = read_window_snapshot(window_paths[i]);
    win.index = i;  // window order is the caller's path order
    windows.push_back(std::move(win));
  }
  DatasetAnalysis analysis =
      fold_shards(spec.name, merge_window_shards(std::move(windows), config), config);
  const report::ReportInput input{&spec, &analysis};
  return report::full_report({&input, 1});
}

}  // namespace entrace::snapshot
