// The .esnap wire format: framing, versioning, and the byte-level
// encode/decode primitives shared by writer and reader.
//
// A snapshot file persists the per-trace analysis shards (core/analyzer.h
// TraceShard) of a subset of a dataset's traces, so that shard processes on
// different machines can analyze disjoint trace ranges and a merge process
// can fold the snapshots into a DatasetAnalysis bit-identical to a
// single-process run.  Layout:
//
//   file    := magic[8] version:u32 section* end-section
//   section := type:u32 length:u64 payload[length] crc32:u32
//
// All integers are little-endian regardless of host byte order; doubles
// travel as the little-endian bytes of their IEEE-754 bit pattern.  The
// CRC-32 (IEEE/zlib polynomial) covers the payload bytes only, so every
// section is independently verifiable.  Section types form a registry
// (SectionType below); per-trace sections carry their global trace index as
// the first payload field and appear in the fixed order kTraceHeader ..
// kCaptureQuality, one run per trace.
//
// Decode treats files as untrusted input: bad magic, unsupported versions,
// truncation (at the file, section, or field level), CRC mismatches and
// unknown section types are all rejected with a SnapshotError naming the
// absolute byte offset — never undefined behavior.  A version bump is
// required for any change to section layout; readers reject versions they
// do not know (no silent forward parsing).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace entrace::snapshot {

inline constexpr std::size_t kMagicSize = 8;
inline constexpr char kMagic[kMagicSize] = {'E', 'N', 'T', 'R', 'S', 'N', 'A', 'P'};
// v2: kTraceMetrics section added to the per-trace run, and the anomaly
// taxonomy gained kTcpTupleReuse (the kCaptureQuality section embeds the
// kind count, so v1 readers reject v2 files at the version check first).
// v3: each encoded connection carries open_seq (u64, per-trace open order),
// the reassembly key the windowed incremental engine uses to merge
// per-window connection deltas back into exact batch deque order.
inline constexpr std::uint32_t kFormatVersion = 3;
// magic + version: where the first section begins.
inline constexpr std::size_t kHeaderSize = kMagicSize + 4;
// type + length preceding each payload, and the trailing crc.
inline constexpr std::size_t kSectionHeaderSize = 4 + 8;
inline constexpr std::size_t kSectionTrailerSize = 4;

// The section registry.  Dataset-level sections first, then the per-trace
// run (fixed order, one run per trace shard), then the end marker.
enum class SectionType : std::uint32_t {
  kDatasetMeta = 0x01,  // dataset name, scale, total trace count

  kTraceHeader = 0x10,      // trace index, subnet id, headline tallies, L3
  kIpProtoCounts = 0x11,    // 256 per-protocol packet counters
  kHostSets = 0x12,         // monitored / lbnl / remote host sets
  kScannerState = 0x13,     // per-source first-contact observations
  kDynamicEndpoints = 0x14, // DCE/RPC endpoints learned from EPM traffic
  kConnections = 0x15,      // flow-table connection summaries
  kAppEvents = 0x16,        // application events (conns by index)
  kTraceLoad = 0x17,        // §6 utilization series + retransmission tallies
  kCaptureQuality = 0x18,   // packet accounting + anomaly counters
  kTraceMetrics = 0x19,     // semantic-class telemetry (obs::Registry), v2+

  kEnd = 0x7F,  // zero-length terminator; absence means truncation
};

// Stable name for error messages and tests.
const char* to_string(SectionType type);

// CRC-32 (IEEE 802.3 polynomial, reflected — the zlib crc32) over bytes.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

// Decode failure; `offset` is the absolute file offset the failure was
// detected at, and what() always names it.  `kind` separates the two ways
// a snapshot can be bad — cut short (a worker died mid-write; the bytes
// that exist may be fine) versus malformed (framing/CRC/enum damage in
// bytes that are all present) — because a supervisor retries and accounts
// for them as different worker faults (src/orchestrate).
class SnapshotError : public std::runtime_error {
 public:
  enum class Kind : std::uint8_t {
    kMalformed,  // structural damage: bad magic/version/CRC/enums/framing
    kTruncated,  // the file ends before the declared content does
  };

  SnapshotError(std::size_t offset, const std::string& message, Kind kind = Kind::kMalformed)
      : std::runtime_error("snapshot error at byte offset " + std::to_string(offset) + ": " +
                           message),
        offset_(offset),
        kind_(kind) {}

  std::size_t offset() const { return offset_; }
  Kind kind() const { return kind_; }

 private:
  std::size_t offset_;
  Kind kind_;
};

// ---- little-endian encode ---------------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append(v, 2); }
  void u32(std::uint32_t v) { append(v, 4); }
  void u64(std::uint64_t v) { append(v, 8); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  void append(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> bytes_;
};

// ---- little-endian decode ---------------------------------------------------

// Reads a section payload; `base_offset` is the payload's absolute file
// offset so every underflow error names the exact byte it happened at.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> bytes, std::size_t base_offset)
      : bytes_(bytes), base_(base_offset) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n, "string body");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }
  std::size_t offset() const { return base_ + pos_; }

  // Every payload must be consumed exactly; trailing bytes mean the
  // section layout and the format version disagree.
  void expect_end(const char* section_name) {
    if (pos_ != bytes_.size()) {
      throw SnapshotError(offset(), std::string(section_name) + " section has " +
                                        std::to_string(remaining()) +
                                        " undecoded trailing bytes");
    }
  }

 private:
  std::uint64_t take(int n) {
    need(static_cast<std::size_t>(n), "field");
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }
  void need(std::size_t n, const char* what) {
    if (bytes_.size() - pos_ < n) {
      throw SnapshotError(offset(), std::string("section payload truncated: need ") +
                                        std::to_string(n) + " more bytes for " + what +
                                        ", payload has " + std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t base_;
  std::size_t pos_ = 0;
};

// Dataset-level metadata: enough for entrace_merge to rebuild the
// DatasetSpec (report headers need it) and to check shard compatibility.
struct SnapshotMeta {
  std::string dataset;           // "D0".."D4" (dataset_by_name key)
  double scale = 0.0;            // generation scale, bit-exact
  std::uint32_t trace_count = 0; // traces in the FULL dataset, not this file

  friend bool operator==(const SnapshotMeta&, const SnapshotMeta&) = default;
};

}  // namespace entrace::snapshot
