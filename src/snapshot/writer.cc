#include "snapshot/writer.h"

#include <cstdio>
#include <stdexcept>
#include <unordered_map>

namespace entrace::snapshot {

namespace {

// Map every connection of the shard's flow table to its deque index, so
// events can reference connections positionally across the process gap.
using ConnIndex = std::unordered_map<const Connection*, std::uint32_t>;
inline constexpr std::uint32_t kNoConn = 0xFFFFFFFFu;

ConnIndex index_connections(const FlowTable* table) {
  ConnIndex index;
  if (table == nullptr) return index;
  std::uint32_t i = 0;
  for (const Connection& conn : table->connections()) index.emplace(&conn, i++);
  return index;
}

std::uint32_t conn_ref(const ConnIndex& index, const Connection* conn) {
  if (conn == nullptr) return kNoConn;
  const auto it = index.find(conn);
  if (it == index.end()) {
    // An event pointing outside its own trace's flow table cannot be
    // snapshotted positionally; the per-trace pipeline never produces one.
    throw std::runtime_error(
        "snapshot writer: application event references a connection outside its trace shard");
  }
  return it->second;
}

void encode_connection(ByteWriter& w, const Connection& c) {
  w.u32(c.key.src.value());
  w.u32(c.key.dst.value());
  w.u16(c.key.src_port);
  w.u16(c.key.dst_port);
  w.u8(c.key.proto);
  w.f64(c.start_ts);
  w.f64(c.last_ts);
  w.u64(c.orig_pkts);
  w.u64(c.resp_pkts);
  w.u64(c.orig_bytes);
  w.u64(c.resp_bytes);
  w.u8(static_cast<std::uint8_t>(c.state));
  w.u8(c.saw_syn ? 1 : 0);
  w.u8(c.saw_synack ? 1 : 0);
  w.u8(c.saw_fin ? 1 : 0);
  w.u8(c.saw_rst ? 1 : 0);
  w.u32(c.orig_isn);
  w.u32(c.resp_isn);
  w.u32(c.retransmissions);
  w.u32(c.keepalive_retx);
  w.u8(c.icmp_type);
  w.u16(c.app_id);
  w.u8(c.multicast ? 1 : 0);
  w.u64(c.open_seq);  // v3: per-trace open order (windowed reassembly key)
}

void encode_series(ByteWriter& w, const IntervalSeries& s) {
  w.f64(s.bin_width());
  w.u64(s.bins().size());
  for (const auto& [bin, value] : s.bins()) {
    w.i64(bin);
    w.f64(value);
  }
}

void encode_events(ByteWriter& w, const AppEvents& ev, const ConnIndex& conns) {
  w.u64(ev.http.size());
  for (const HttpTransaction& e : ev.http) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.req_ts);
    w.f64(e.resp_ts);
    w.str(e.method);
    w.str(e.uri);
    w.str(e.host);
    w.str(e.user_agent);
    w.u8(e.conditional ? 1 : 0);
    w.u8(e.has_response ? 1 : 0);
    w.i32(e.status);
    w.str(e.content_type);
    w.u64(e.resp_body_len);
  }
  w.u64(ev.smtp.size());
  for (const SmtpCommand& e : ev.smtp) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.ts);
    w.str(e.verb);
  }
  w.u64(ev.dns.size());
  for (const DnsTransaction& e : ev.dns) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.query_ts);
    w.f64(e.resp_ts);
    w.u16(e.qtype);
    w.str(e.qname);
    w.u8(e.has_response ? 1 : 0);
    w.i32(e.rcode);
  }
  w.u64(ev.nbns.size());
  for (const NbnsTransaction& e : ev.nbns) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.query_ts);
    w.f64(e.resp_ts);
    w.u8(static_cast<std::uint8_t>(e.opcode));
    w.u8(static_cast<std::uint8_t>(e.name_type));
    w.str(e.name);
    w.u8(e.has_response ? 1 : 0);
    w.i32(e.rcode);
  }
  w.u64(ev.nbss.size());
  for (const NbssEvent& e : ev.nbss) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.ts);
    w.u8(static_cast<std::uint8_t>(e.type));
  }
  w.u64(ev.cifs.size());
  for (const CifsCommand& e : ev.cifs) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.ts);
    w.u8(e.command);
    w.u8(static_cast<std::uint8_t>(e.category));
    w.u8(static_cast<std::uint8_t>(e.dir));
    w.u32(e.msg_bytes);
  }
  w.u64(ev.dcerpc.size());
  for (const DceRpcCall& e : ev.dcerpc) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.ts);
    w.u8(static_cast<std::uint8_t>(e.iface));
    w.u16(e.opnum);
    w.u8(e.over_pipe ? 1 : 0);
    w.u8(e.is_request ? 1 : 0);
    w.u32(e.bytes);
  }
  w.u64(ev.epm.size());
  for (const EpmMapping& e : ev.epm) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.ts);
    w.u32(e.server.value());
    w.u16(e.port);
    w.u8(static_cast<std::uint8_t>(e.iface));
  }
  w.u64(ev.nfs.size());
  for (const NfsCall& e : ev.nfs) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.req_ts);
    w.f64(e.resp_ts);
    w.u32(e.proc);
    w.u8(e.has_reply ? 1 : 0);
    w.u32(e.status);
    w.u32(e.req_bytes);
    w.u32(e.resp_bytes);
  }
  w.u64(ev.ncp.size());
  for (const NcpCall& e : ev.ncp) {
    w.u32(conn_ref(conns, e.conn));
    w.f64(e.req_ts);
    w.f64(e.resp_ts);
    w.u8(static_cast<std::uint8_t>(e.function));
    w.u8(e.has_reply ? 1 : 0);
    w.u8(e.completion_code);
    w.u32(e.req_bytes);
    w.u32(e.resp_bytes);
  }
}

void encode_host_set(ByteWriter& w, const std::set<std::uint32_t>& hosts) {
  w.u64(hosts.size());
  for (const std::uint32_t h : hosts) w.u32(h);
}

}  // namespace

SnapshotWriter::SnapshotWriter(const std::string& path, const SnapshotMeta& meta)
    : path_(path),
      tmp_path_(path + ".tmp"),
      out_(tmp_path_, std::ios::binary | std::ios::trunc),
      sink_(&out_) {
  if (!out_) throw std::runtime_error("snapshot writer: cannot create " + tmp_path_);
  write_header(meta);
}

SnapshotWriter::SnapshotWriter(std::ostream& sink, const SnapshotMeta& meta) : sink_(&sink) {
  write_header(meta);
}

SnapshotWriter::~SnapshotWriter() {
  // Abandoned without close() (exception unwind): nothing was ever renamed
  // onto the destination, so just drop the partial .tmp.  A hard-killed
  // process skips this too, which is fine — the .tmp is not the
  // destination name and the next attempt truncates it.  Stream-sink mode
  // has nothing to clean up; the caller owns the (now end-marker-less,
  // reader-rejected) bytes.
  if (!closed_ && !tmp_path_.empty()) {
    out_.close();
    std::remove(tmp_path_.c_str());
  }
}

void SnapshotWriter::write_header(const SnapshotMeta& meta) {
  sink_->write(kMagic, kMagicSize);
  ByteWriter version;
  version.u32(kFormatVersion);
  sink_->write(reinterpret_cast<const char*>(version.bytes().data()),
               static_cast<std::streamsize>(version.bytes().size()));
  offset_ = kHeaderSize;

  ByteWriter w;
  w.str(meta.dataset);
  w.f64(meta.scale);
  w.u32(meta.trace_count);
  write_section(SectionType::kDatasetMeta, w);
}

void SnapshotWriter::write_section(SectionType type, const ByteWriter& payload) {
  const std::vector<std::uint8_t>& bytes = payload.bytes();
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(type));
  frame.u64(bytes.size());
  sink_->write(reinterpret_cast<const char*>(frame.bytes().data()),
               static_cast<std::streamsize>(frame.bytes().size()));
  sink_->write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
  ByteWriter trailer;
  trailer.u32(crc32(bytes));
  sink_->write(reinterpret_cast<const char*>(trailer.bytes().data()),
               static_cast<std::streamsize>(trailer.bytes().size()));
  if (!*sink_) throw std::runtime_error("snapshot writer: write failed on " + path_);
  offset_ += kSectionHeaderSize + bytes.size() + kSectionTrailerSize;
}

void SnapshotWriter::add_shard(std::uint32_t trace_index, const TraceShard& shard) {
  if (static_cast<std::int64_t>(trace_index) <= last_index_) {
    throw std::runtime_error("snapshot writer: trace index " + std::to_string(trace_index) +
                             " not ascending (previous " + std::to_string(last_index_) + ")");
  }
  last_index_ = static_cast<std::int64_t>(trace_index);
  {
    ByteWriter w;
    w.u32(trace_index);
    w.i32(shard.subnet_id);
    w.u64(shard.total_packets);
    w.u64(shard.total_wire_bytes);
    w.u64(shard.l3.total);
    w.u64(shard.l3.ip);
    w.u64(shard.l3.arp);
    w.u64(shard.l3.ipx);
    w.u64(shard.l3.other);
    write_section(SectionType::kTraceHeader, w);
  }
  {
    ByteWriter w;
    w.u32(trace_index);
    for (int p = 0; p < 256; ++p) w.u64(shard.ip_proto_packets[static_cast<std::uint8_t>(p)]);
    write_section(SectionType::kIpProtoCounts, w);
  }
  {
    ByteWriter w;
    w.u32(trace_index);
    encode_host_set(w, shard.monitored_hosts);
    encode_host_set(w, shard.lbnl_hosts);
    encode_host_set(w, shard.remote_hosts);
    write_section(SectionType::kHostSets, w);
  }
  {
    ByteWriter w;
    w.u32(trace_index);
    const auto observations = shard.detector.export_observations();
    w.u64(observations.size());
    for (const auto& obs : observations) {
      w.u32(obs.source);
      w.u32(static_cast<std::uint32_t>(obs.order.size()));
      for (const std::uint32_t dst : obs.order) w.u32(dst);
      w.u32(static_cast<std::uint32_t>(obs.extra_seen.size()));
      for (const std::uint32_t dst : obs.extra_seen) w.u32(dst);
    }
    const auto& known = shard.detector.known_scanners();
    w.u32(static_cast<std::uint32_t>(known.size()));
    for (const Ipv4Address addr : known) w.u32(addr.value());
    write_section(SectionType::kScannerState, w);
  }
  {
    ByteWriter w;
    w.u32(trace_index);
    const auto& endpoints = shard.registry.dynamic_endpoints();
    w.u64(endpoints.size());
    for (const auto& [key, enabled] : endpoints) {
      w.u32(key.first);
      w.u16(key.second);
      w.u8(enabled ? 1 : 0);
    }
    write_section(SectionType::kDynamicEndpoints, w);
  }
  const ConnIndex conns = index_connections(shard.table.get());
  {
    ByteWriter w;
    w.u32(trace_index);
    const std::uint64_t n = shard.table != nullptr ? shard.table->connections().size() : 0;
    w.u64(n);
    if (shard.table != nullptr) {
      for (const Connection& c : shard.table->connections()) encode_connection(w, c);
    }
    write_section(SectionType::kConnections, w);
  }
  {
    ByteWriter w;
    w.u32(trace_index);
    encode_events(w, shard.events, conns);
    write_section(SectionType::kAppEvents, w);
  }
  {
    ByteWriter w;
    w.u32(trace_index);
    w.str(shard.load.trace_name);
    encode_series(w, shard.load.bits_1s);
    encode_series(w, shard.load.bits_10s);
    encode_series(w, shard.load.bits_60s);
    w.u64(shard.load.ent_tcp_pkts);
    w.u64(shard.load.ent_retx);
    w.u64(shard.load.wan_tcp_pkts);
    w.u64(shard.load.wan_retx);
    w.u64(shard.load.keepalive_excluded);
    write_section(SectionType::kTraceLoad, w);
  }
  {
    ByteWriter w;
    w.u32(trace_index);
    w.u64(shard.quality.packets_seen);
    w.u64(shard.quality.packets_ok);
    w.u64(shard.quality.packets_dropped);
    w.u32(static_cast<std::uint32_t>(kAnomalyKindCount));
    for (std::size_t k = 0; k < kAnomalyKindCount; ++k) {
      w.u64(shard.quality.anomalies[static_cast<AnomalyKind>(k)]);
    }
    write_section(SectionType::kCaptureQuality, w);
  }
  {
    // Semantic-class telemetry only: timing metrics describe the shard
    // *process*, not the dataset, and must not survive the process gap (or
    // merged runs would stop being bit-identical to direct runs).
    ByteWriter w;
    w.u32(trace_index);
    std::vector<const obs::Metric*> semantic;
    for (const obs::Metric* m : shard.metrics.metrics()) {
      if (m->cls == obs::MetricClass::kSemantic) semantic.push_back(m);
    }
    w.u32(static_cast<std::uint32_t>(semantic.size()));
    for (const obs::Metric* m : semantic) {
      w.str(m->name);
      w.str(m->help);
      w.u8(static_cast<std::uint8_t>(m->kind));
      switch (m->kind) {
        case obs::MetricKind::kCounter:
          w.u64(m->counter.value());
          break;
        case obs::MetricKind::kGauge:
          w.f64(m->gauge.value());
          break;
        case obs::MetricKind::kHistogram: {
          const obs::Histogram& h = *m->histogram;
          w.u32(static_cast<std::uint32_t>(h.bounds().size()));
          for (const double b : h.bounds()) w.f64(b);
          for (const std::uint64_t c : h.buckets()) w.u64(c);
          w.u64(h.count());
          w.f64(h.sum());
          break;
        }
      }
    }
    write_section(SectionType::kTraceMetrics, w);
  }
}

void SnapshotWriter::close() {
  if (closed_) return;
  write_section(SectionType::kEnd, ByteWriter());
  sink_->flush();
  if (!*sink_) throw std::runtime_error("snapshot writer: flush failed on " + tmp_path_);
  if (tmp_path_.empty()) {
    closed_ = true;
    return;
  }
  out_.close();
  // The rename is the commit point: only a byte-complete snapshot (end
  // marker flushed) ever appears under the destination name.
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("snapshot writer: cannot rename " + tmp_path_ + " to " + path_);
  }
  closed_ = true;
}

}  // namespace entrace::snapshot
