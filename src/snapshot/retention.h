// Window checkpoint retention: tiered downsampling for endless operation.
//
// A daemon that checkpoints every rotated window would fill the disk at a
// rate proportional to traffic; keeping only the last K windows would lose
// all history.  The middle ground is the tiering scheme time-series engines
// use (full-resolution recent pages, downsampled older ones) — applied to
// window snapshots, with the twist that our "downsample" is the
// deterministic shard fold itself (snapshot/window.h), so aged data keeps
// its *sketches* (IntervalSeries bins, CDF samples, anomaly and capture-
// quality detail, connection state keyed by open_seq) instead of collapsing
// to headline counts:
//
//   tier 0: the most recent `keep_full` windows stay as complete .esnap
//           files (full per-window resolution, one file per window);
//   tier 1: windows aged out of tier 0 are folded K at a time
//           (K = `sketch_every`, via merge_window_shards) into one *sketch*
//           .esnap covering K windows — an ordinary snapshot file, readable
//           by the same hardened reader;
//   tier 2: when K tier-1 sketches accumulate they fold into one coarser
//           sketch covering K*K windows; when K tier-2 sketches accumulate
//           they compact into a single sketch, so the tier never exceeds K
//           files no matter how long the run;
//   headline: every window aged out of tier 0 also appends one JSON line to
//           `summary.jsonl` — the final, cheapest tier, append-only and
//           crash-tolerant (a torn final line is ignorable).
//
// Because sketches reuse the deterministic shard-fold contract, folding
// report_paths() — tier-2 sketches, then tier-1 sketches, then aged-but-
// unfolded windows, then tier-0 — reproduces the one-shot batch report
// byte-identically (tests/retention_test.cc pins it at 1 and 4 threads).
// Disk is bounded at every tier: keep_full + (K-1) window files, at most
// K sketch files per sketch tier, plus one summary line per window ever
// rotated.
//
// Crash safety: sketch files are written tmp+rename by the snapshot writer,
// and a window's .esnap is deleted only after the sketch covering it has
// been renamed into place.  The tiered constructor scans its directory and
// recovers: torn or unreadable sketches are rejected (deleted) and the run
// continues; files whose window range is already covered by a higher tier
// (a crash landed between the sketch rename and the input deletes) are
// dropped so no window is ever folded twice.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "snapshot/window.h"

namespace entrace::snapshot {

// Headline record: what survives in summary.jsonl after a window ages out
// of tier 0.
struct WindowSummary {
  std::uint64_t index = 0;
  double start_ts = 0.0;
  double end_ts = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t connections = 0;  // connection deltas carried by the window
  std::uint64_t app_events = 0;
  std::uint64_t snapshot_bytes = 0;  // size of the aged .esnap
};

std::string to_json_line(const WindowSummary& s);

// Headline tallies of a window delta (index/start/end copied from `win`;
// snapshot_bytes left for the caller, who knows the encoded size).  Shared
// by the daemon's checkpoint path and the recovery scan.
WindowSummary summarize_window(const WindowShard& win);

// Canonical sketch file name: "sketch1-00000000-00000007.esnap" covers
// windows [first, last] at tier 1.  Sketches are ordinary .esnap files; the
// name carries the tier and the covered window range, which is how the
// recovery scan reconstructs tier state.
std::string sketch_file_name(int tier, std::uint64_t first_window, std::uint64_t last_window);

struct RetentionOptions {
  std::size_t keep_full = 4;     // tier-0 window count (0 = age immediately)
  std::size_t sketch_every = 8;  // K: windows per tier-1 fold, sketches per
                                 // tier-2 fold/compaction; must be >= 2
};

// What one add_window() call did.  io_errors is the per-call count; the
// manager also keeps a cumulative io_errors() for the metrics exposition.
struct AgeResult {
  std::size_t aged = 0;       // windows that left tier 0 this call
  std::size_t folds = 0;      // sketch fold operations performed
  std::size_t io_errors = 0;  // failed appends/removes/sketch folds
  bool ok() const { return io_errors == 0; }
};

class RetentionManager {
 public:
  // Summary-only tiering (the pre-sketch scheme): aged windows are reduced
  // to their summary.jsonl line and the .esnap is deleted.  Starts from a
  // fresh state (no directory scan).  `dir` is the checkpoint directory;
  // `keep_full` the tier-0 window count (0 = summarize immediately — with
  // no sketch tier this keeps *no* readable history, so a daemon using
  // keep_full 0 must enable sketching).
  RetentionManager(std::string dir, std::size_t keep_full);

  // Full tiered downsampling.  `config` parameterizes the sketch folds
  // (its flow/scanner settings must match the analyzer that produced the
  // windows, or folded connection tables would diverge); `meta` stamps the
  // sketch .esnap files.  Scans `dir` and recovers prior state: readable
  // window/sketch files re-enter their tiers, torn files are rejected, and
  // range duplicates from a crash mid-fold are dropped.  Throws
  // std::invalid_argument when opts.sketch_every < 2.
  RetentionManager(std::string dir, const RetentionOptions& opts, const AnalyzerConfig& config,
                   const SnapshotMeta& meta);

  // Register a freshly checkpointed window, then age anything beyond
  // keep_full through the tiers.  I/O failures (a full disk, an unwritable
  // summary file) are surfaced in the result and in io_errors() instead of
  // being swallowed; the manager keeps running degraded.
  AgeResult add_window(const WindowSummary& summary, const std::string& esnap_path);

  std::size_t tier0_count() const { return tier0_.size(); }

  // Paths of the retained tier-0 checkpoints, oldest first.
  std::vector<std::string> tier0_paths() const;

  // All retained .esnap files in window-chronological order: tier-2
  // sketches, tier-1 sketches, aged-but-unfolded windows, then tier-0.
  // Feeding this list to render_windowed_report folds the *entire* retained
  // history — the daemon's /report — not just the newest keep_full windows.
  std::vector<std::string> report_paths() const;

  // Windows aged to the headline tier (== summary.jsonl lines this manager
  // has written or recovered).
  std::uint64_t summarized_count() const { return summarized_; }
  // Aged windows whose .esnap still awaits a tier-1 fold.
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t tier1_sketch_count() const { return tier1_.size(); }
  std::size_t tier2_sketch_count() const { return tier2_.size(); }
  std::uint64_t sketch_folds() const { return folds_; }
  // Tracked bytes across every tier (window files, sketches, summary
  // lines) — the `retention.bytes` gauge.
  std::uint64_t bytes_retained() const { return bytes_; }
  // Cumulative I/O failures (summary appends, file removes, sketch folds).
  std::uint64_t io_errors() const { return io_errors_; }
  // Files the recovery scan rejected: torn/unreadable, or range duplicates
  // left by a crash mid-fold.
  std::uint64_t recovery_rejected() const { return recovery_rejected_; }

  // 1 + the highest window index known to any tier (0 on a fresh
  // directory).  A restarted daemon offsets its new window indices by this
  // so recovered history and new windows share one monotonic sequence.
  std::uint64_t next_window_index() const;

  const std::string& summary_path() const { return summary_path_; }

 private:
  struct Tier0Entry {
    WindowSummary summary;
    std::string path;
  };
  // An aged window or a sketch: the half-inclusive window range [first,
  // last] it covers, its path, and its on-disk size.
  struct FileEntry {
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    std::string path;
    std::uint64_t bytes = 0;
  };

  void age_down(AgeResult& r);
  bool append_summary(const WindowSummary& s);
  // Fold the first `count` entries of `src` into one sketch file of
  // `out_tier`, append it to `dst`, delete the inputs.  Returns false (with
  // io_errors counted) when an input is unreadable (the bad entry is
  // dropped so it cannot wedge the tier) or the output cannot be written
  // (inputs kept; retried on the next aging pass).
  bool fold_into(std::deque<FileEntry>& src, std::size_t count, int out_tier,
                 std::deque<FileEntry>& dst, AgeResult& r);
  void note_io_error(AgeResult& r);
  void recover_scan();

  std::string dir_;
  std::string summary_path_;
  std::size_t keep_full_;
  std::size_t sketch_every_ = 0;  // < 2 = sketch tiers disabled
  AnalyzerConfig config_;
  SnapshotMeta meta_;

  std::deque<Tier0Entry> tier0_;
  std::deque<FileEntry> pending_;  // aged, awaiting a tier-1 fold
  std::deque<FileEntry> tier1_;
  std::deque<FileEntry> tier2_;
  std::uint64_t summarized_ = 0;
  std::uint64_t folds_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t io_errors_ = 0;
  std::uint64_t recovery_rejected_ = 0;
};

}  // namespace entrace::snapshot
