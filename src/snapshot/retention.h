// Window checkpoint retention: tiered aging for endless operation.
//
// A daemon that checkpoints every rotated window would fill the disk at a
// rate proportional to traffic; keeping only the last K windows would lose
// all history.  The middle ground — the tiering scheme time-series engines
// use (full-resolution recent pages, downsampled older ones) — applied to
// window snapshots:
//
//   tier 0: the most recent `keep_full` windows stay as complete .esnap
//           files (full per-connection / per-event resolution, usable for
//           exact reconstruction via snapshot/window.h);
//   tier 1: older windows are downsampled to a one-line JSON summary
//           (headline tallies only) appended to `summary.jsonl`, and the
//           .esnap file is deleted.
//
// Aging is driven by add_window() at each checkpoint, so disk usage is
// bounded by keep_full full windows plus one summary line per window ever
// rotated — flat-RSS, flat-disk steady state (the soak test's invariant).
// The summary file is append-only and crash-tolerant: a torn final line is
// ignorable, and every complete line is self-contained JSON.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace entrace::snapshot {

// Tier-1 record: what survives after a window ages out of full resolution.
struct WindowSummary {
  std::uint64_t index = 0;
  double start_ts = 0.0;
  double end_ts = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t connections = 0;  // connection deltas carried by the window
  std::uint64_t app_events = 0;
  std::uint64_t snapshot_bytes = 0;  // size of the aged .esnap
};

std::string to_json_line(const WindowSummary& s);

class RetentionManager {
 public:
  // `dir` is the checkpoint directory (summaries land in dir/summary.jsonl);
  // `keep_full` is the tier-0 window count (0 = summarize immediately).
  RetentionManager(std::string dir, std::size_t keep_full);

  // Register a freshly checkpointed window, then age anything beyond
  // keep_full: append its summary line and delete its .esnap.  Returns the
  // number of windows aged to tier 1 by this call.
  std::size_t add_window(const WindowSummary& summary, const std::string& esnap_path);

  std::size_t tier0_count() const { return tier0_.size(); }

  // Paths of the retained full-resolution checkpoints, oldest first — the
  // window order render_windowed_report expects.
  std::vector<std::string> tier0_paths() const {
    std::vector<std::string> paths;
    paths.reserve(tier0_.size());
    for (const Tier0Entry& e : tier0_) paths.push_back(e.path);
    return paths;
  }

  std::uint64_t tier1_count() const { return summarized_; }
  const std::string& summary_path() const { return summary_path_; }

 private:
  struct Tier0Entry {
    WindowSummary summary;
    std::string path;
  };

  std::string dir_;
  std::string summary_path_;
  std::size_t keep_full_;
  std::deque<Tier0Entry> tier0_;
  std::uint64_t summarized_ = 0;
};

}  // namespace entrace::snapshot
