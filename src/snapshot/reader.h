// Snapshot decode: reconstruct per-trace TraceShards from a .esnap file.
//
// Snapshot files are untrusted input, exactly like capture files (PR 2's
// decode-path hardening): the reader validates magic, format version,
// section framing, and per-section CRCs before interpreting a byte, and
// every structural field read is bounds-checked.  Any damage — truncation
// at file/section/field level, a flipped bit, an unknown section, a future
// format version — raises SnapshotError naming the absolute byte offset.
// A file whose end marker is missing was written by a process that died
// mid-shard; rejecting it is what lets a restarted run trust the snapshot
// files that do decode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "snapshot/format.h"

namespace entrace::snapshot {

struct SnapshotShard {
  std::uint32_t trace_index = 0;
  TraceShard shard;
};

struct Snapshot {
  SnapshotMeta meta;
  std::vector<SnapshotShard> shards;  // in file order (ascending trace index)
};

// Decode a whole snapshot file.  Throws SnapshotError on any malformed
// input and std::runtime_error when the file cannot be opened.
Snapshot read_snapshot(const std::string& path);

// Decode from an in-memory image (the file layer of read_snapshot; exposed
// for the fault-injection tests, mirroring PcapReader's corrupted-header
// coverage).
Snapshot decode_snapshot(std::span<const std::uint8_t> bytes);

// Does `snap` hold exactly traces [lo, hi) of the dataset described by
// `expected`?  Returns the empty string when it does, else a one-line
// description of the first mismatch (different dataset/scale/trace-count
// metadata, wrong shard count, wrong first/last index, or a gap in the
// index sequence).  A snapshot that merely *decodes* is not enough to skip
// work or to accept a worker's result: entrace_shard --resume and the
// orchestration supervisor both require the file to cover the exact
// requested slice, and this is the single definition of "covers".
std::string describe_range_mismatch(const Snapshot& snap, const SnapshotMeta& expected,
                                    std::size_t lo, std::size_t hi);

}  // namespace entrace::snapshot
