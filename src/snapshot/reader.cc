#include "snapshot/reader.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

namespace entrace::snapshot {

namespace {

inline constexpr std::uint32_t kNoConn = 0xFFFFFFFFu;

std::string hex_bytes(std::span<const std::uint8_t> bytes) {
  std::string out;
  char buf[4];
  for (const std::uint8_t b : bytes) {
    std::snprintf(buf, sizeof(buf), "%02x", b);
    out += buf;
  }
  return out;
}

Connection decode_connection(ByteReader& r) {
  Connection c;
  c.key.src = Ipv4Address(r.u32());
  c.key.dst = Ipv4Address(r.u32());
  c.key.src_port = r.u16();
  c.key.dst_port = r.u16();
  c.key.proto = r.u8();
  c.start_ts = r.f64();
  c.last_ts = r.f64();
  c.orig_pkts = r.u64();
  c.resp_pkts = r.u64();
  c.orig_bytes = r.u64();
  c.resp_bytes = r.u64();
  const std::uint8_t state = r.u8();
  if (state > static_cast<std::uint8_t>(ConnState::kClosed)) {
    throw SnapshotError(r.offset() - 1,
                        "connection state " + std::to_string(state) + " out of range");
  }
  c.state = static_cast<ConnState>(state);
  c.saw_syn = r.u8() != 0;
  c.saw_synack = r.u8() != 0;
  c.saw_fin = r.u8() != 0;
  c.saw_rst = r.u8() != 0;
  c.orig_isn = r.u32();
  c.resp_isn = r.u32();
  c.retransmissions = r.u32();
  c.keepalive_retx = r.u32();
  c.icmp_type = r.u8();
  c.app_id = r.u16();
  c.multicast = r.u8() != 0;
  c.open_seq = r.u64();  // v3
  return c;
}

void decode_series(ByteReader& r, IntervalSeries& series) {
  const double width = r.f64();
  if (width != series.bin_width()) {
    throw SnapshotError(r.offset() - 8, "interval-series bin width " + std::to_string(width) +
                                            " does not match the expected " +
                                            std::to_string(series.bin_width()));
  }
  const std::uint64_t n = r.u64();
  std::map<std::int64_t, double> bins;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::int64_t bin = r.i64();
    const double value = r.f64();
    if (!bins.emplace(bin, value).second) {
      throw SnapshotError(r.offset(), "duplicate interval-series bin " + std::to_string(bin));
    }
  }
  series.restore_bins(std::move(bins));
}

// Resolve a positional connection reference into the restored flow table.
const Connection* resolve_conn(ByteReader& r, const FlowTable& table) {
  const std::uint32_t ref = r.u32();
  if (ref == kNoConn) return nullptr;
  if (ref >= table.connections().size()) {
    throw SnapshotError(r.offset() - 4, "event references connection " + std::to_string(ref) +
                                            " of " + std::to_string(table.connections().size()));
  }
  return &table.connections()[ref];
}

void decode_events(ByteReader& r, AppEvents& ev, const FlowTable& table) {
  std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    HttpTransaction e;
    e.conn = resolve_conn(r, table);
    e.req_ts = r.f64();
    e.resp_ts = r.f64();
    e.method = r.str();
    e.uri = r.str();
    e.host = r.str();
    e.user_agent = r.str();
    e.conditional = r.u8() != 0;
    e.has_response = r.u8() != 0;
    e.status = r.i32();
    e.content_type = r.str();
    e.resp_body_len = r.u64();
    ev.http.push_back(std::move(e));
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    SmtpCommand e;
    e.conn = resolve_conn(r, table);
    e.ts = r.f64();
    e.verb = r.str();
    ev.smtp.push_back(std::move(e));
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    DnsTransaction e;
    e.conn = resolve_conn(r, table);
    e.query_ts = r.f64();
    e.resp_ts = r.f64();
    e.qtype = r.u16();
    e.qname = r.str();
    e.has_response = r.u8() != 0;
    e.rcode = r.i32();
    ev.dns.push_back(std::move(e));
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    NbnsTransaction e;
    e.conn = resolve_conn(r, table);
    e.query_ts = r.f64();
    e.resp_ts = r.f64();
    e.opcode = static_cast<NbnsOpcode>(r.u8());
    e.name_type = static_cast<NbnsNameType>(r.u8());
    e.name = r.str();
    e.has_response = r.u8() != 0;
    e.rcode = r.i32();
    ev.nbns.push_back(std::move(e));
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    NbssEvent e;
    e.conn = resolve_conn(r, table);
    e.ts = r.f64();
    e.type = static_cast<NbssEventType>(r.u8());
    ev.nbss.push_back(e);
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    CifsCommand e;
    e.conn = resolve_conn(r, table);
    e.ts = r.f64();
    e.command = r.u8();
    e.category = static_cast<CifsCategory>(r.u8());
    e.dir = static_cast<Direction>(r.u8());
    e.msg_bytes = r.u32();
    ev.cifs.push_back(e);
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    DceRpcCall e;
    e.conn = resolve_conn(r, table);
    e.ts = r.f64();
    e.iface = static_cast<DceIface>(r.u8());
    e.opnum = r.u16();
    e.over_pipe = r.u8() != 0;
    e.is_request = r.u8() != 0;
    e.bytes = r.u32();
    ev.dcerpc.push_back(e);
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    EpmMapping e;
    e.conn = resolve_conn(r, table);
    e.ts = r.f64();
    e.server = Ipv4Address(r.u32());
    e.port = r.u16();
    e.iface = static_cast<DceIface>(r.u8());
    ev.epm.push_back(e);
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    NfsCall e;
    e.conn = resolve_conn(r, table);
    e.req_ts = r.f64();
    e.resp_ts = r.f64();
    e.proc = r.u32();
    e.has_reply = r.u8() != 0;
    e.status = r.u32();
    e.req_bytes = r.u32();
    e.resp_bytes = r.u32();
    ev.nfs.push_back(e);
  }
  n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    NcpCall e;
    e.conn = resolve_conn(r, table);
    e.req_ts = r.f64();
    e.resp_ts = r.f64();
    e.function = static_cast<NcpFunction>(r.u8());
    e.has_reply = r.u8() != 0;
    e.completion_code = r.u8();
    e.req_bytes = r.u32();
    e.resp_bytes = r.u32();
    ev.ncp.push_back(e);
  }
}

void decode_host_set(ByteReader& r, std::set<std::uint32_t>& hosts) {
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) hosts.insert(hosts.end(), r.u32());
}

// The per-trace section run, in the order the writer emits it.
constexpr SectionType kShardRun[] = {
    SectionType::kTraceHeader,   SectionType::kIpProtoCounts, SectionType::kHostSets,
    SectionType::kScannerState,  SectionType::kDynamicEndpoints,
    SectionType::kConnections,   SectionType::kAppEvents,     SectionType::kTraceLoad,
    SectionType::kCaptureQuality, SectionType::kTraceMetrics};
constexpr std::size_t kShardRunLen = sizeof(kShardRun) / sizeof(kShardRun[0]);

struct Decoder {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  Snapshot out;
  bool saw_meta = false;
  // Position within kShardRun; 0 means "between shards".
  std::size_t run_pos = 0;

  void check_header() {
    if (bytes.size() < kHeaderSize) {
      throw SnapshotError(bytes.size(),
                          "file too short for the " + std::to_string(kHeaderSize) +
                              "-byte header",
                          SnapshotError::Kind::kTruncated);
    }
    if (std::memcmp(bytes.data(), kMagic, kMagicSize) != 0) {
      throw SnapshotError(0, "bad magic " + hex_bytes(bytes.subspan(0, kMagicSize)) +
                                 " (expected " +
                                 hex_bytes({reinterpret_cast<const std::uint8_t*>(kMagic),
                                            kMagicSize}) +
                                 ")");
    }
    ByteReader r(bytes.subspan(kMagicSize, 4), kMagicSize);
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion) {
      throw SnapshotError(kMagicSize, "format version " + std::to_string(version) +
                                          " unsupported (this reader knows version " +
                                          std::to_string(kFormatVersion) + ")");
    }
    pos = kHeaderSize;
  }

  // Reads one framed section, verifies its CRC, returns (type, payload).
  std::pair<SectionType, std::span<const std::uint8_t>> next_section() {
    if (bytes.size() - pos < kSectionHeaderSize) {
      throw SnapshotError(pos,
                          "file truncated inside a section header (" +
                              std::to_string(bytes.size() - pos) + " of " +
                              std::to_string(kSectionHeaderSize) + " bytes present)",
                          SnapshotError::Kind::kTruncated);
    }
    ByteReader header(bytes.subspan(pos, kSectionHeaderSize), pos);
    const std::uint32_t raw_type = header.u32();
    const std::uint64_t length = header.u64();
    const std::size_t payload_at = pos + kSectionHeaderSize;
    if (length > bytes.size() - payload_at ||
        kSectionTrailerSize > bytes.size() - payload_at - length) {
      throw SnapshotError(payload_at,
                          "file truncated inside the " + std::string(to_string(
                              static_cast<SectionType>(raw_type))) +
                              " section: payload of " + std::to_string(length) +
                              "+4 bytes declared, " + std::to_string(bytes.size() - payload_at) +
                              " bytes remain",
                          SnapshotError::Kind::kTruncated);
    }
    const std::span<const std::uint8_t> payload = bytes.subspan(payload_at, length);
    ByteReader trailer(bytes.subspan(payload_at + length, kSectionTrailerSize),
                       payload_at + length);
    const std::uint32_t stored = trailer.u32();
    const std::uint32_t computed = crc32(payload);
    if (stored != computed) {
      char msg[128];
      std::snprintf(msg, sizeof(msg), "CRC mismatch in the %s section (stored 0x%08x, computed 0x%08x)",
                    to_string(static_cast<SectionType>(raw_type)), stored, computed);
      throw SnapshotError(payload_at + length, msg);
    }
    pos = payload_at + length + kSectionTrailerSize;
    return {static_cast<SectionType>(raw_type), payload};
  }

  void run() {
    check_header();
    while (true) {
      const std::size_t section_at = pos;
      const auto [type, payload] = next_section();
      ByteReader r(payload, section_at + kSectionHeaderSize);
      if (type == SectionType::kEnd) {
        if (!saw_meta) throw SnapshotError(section_at, "end section before dataset-meta");
        if (run_pos != 0) {
          throw SnapshotError(section_at, "end section in the middle of a trace shard (next "
                                          "expected: " +
                                              std::string(to_string(kShardRun[run_pos])) + ")");
        }
        r.expect_end("end");
        if (pos != bytes.size()) {
          throw SnapshotError(pos, std::to_string(bytes.size() - pos) +
                                       " trailing bytes after the end section");
        }
        return;
      }
      if (!saw_meta) {
        if (type != SectionType::kDatasetMeta) {
          throw SnapshotError(section_at, "first section is " + std::string(to_string(type)) +
                                              ", expected dataset-meta");
        }
        out.meta.dataset = r.str();
        out.meta.scale = r.f64();
        out.meta.trace_count = r.u32();
        r.expect_end("dataset-meta");
        saw_meta = true;
        continue;
      }
      if (type != kShardRun[run_pos]) {
        throw SnapshotError(section_at, "unexpected section " + std::string(to_string(type)) +
                                            " (expected " +
                                            std::string(to_string(kShardRun[run_pos])) + ")");
      }
      decode_shard_section(type, r);
      run_pos = (run_pos + 1) % kShardRunLen;
    }
  }

  SnapshotShard& current() { return out.shards.back(); }

  void decode_shard_section(SectionType type, ByteReader& r) {
    const std::uint32_t index = r.u32();
    if (type == SectionType::kTraceHeader) {
      if (!out.shards.empty() && index <= out.shards.back().trace_index) {
        throw SnapshotError(r.offset() - 4,
                            "trace index " + std::to_string(index) + " not ascending (previous " +
                                std::to_string(out.shards.back().trace_index) + ")");
      }
      out.shards.emplace_back();
      current().trace_index = index;
    } else if (index != current().trace_index) {
      throw SnapshotError(r.offset() - 4, std::string(to_string(type)) + " section for trace " +
                                              std::to_string(index) + " inside the run of trace " +
                                              std::to_string(current().trace_index));
    }
    TraceShard& shard = current().shard;
    switch (type) {
      case SectionType::kTraceHeader: {
        shard.subnet_id = r.i32();
        shard.total_packets = r.u64();
        shard.total_wire_bytes = r.u64();
        shard.l3.total = r.u64();
        shard.l3.ip = r.u64();
        shard.l3.arp = r.u64();
        shard.l3.ipx = r.u64();
        shard.l3.other = r.u64();
        break;
      }
      case SectionType::kIpProtoCounts: {
        for (int p = 0; p < 256; ++p) shard.ip_proto_packets[static_cast<std::uint8_t>(p)] = r.u64();
        break;
      }
      case SectionType::kHostSets: {
        decode_host_set(r, shard.monitored_hosts);
        decode_host_set(r, shard.lbnl_hosts);
        decode_host_set(r, shard.remote_hosts);
        break;
      }
      case SectionType::kScannerState: {
        const std::uint64_t n = r.u64();
        std::vector<ScannerDetector::SourceObservations> observations;
        observations.reserve(n < 4096 ? static_cast<std::size_t>(n) : 4096);
        for (std::uint64_t i = 0; i < n; ++i) {
          ScannerDetector::SourceObservations obs;
          obs.source = r.u32();
          const std::uint32_t order_len = r.u32();
          obs.order.reserve(order_len < 4096 ? order_len : 4096);
          for (std::uint32_t j = 0; j < order_len; ++j) obs.order.push_back(r.u32());
          const std::uint32_t extra_len = r.u32();
          for (std::uint32_t j = 0; j < extra_len; ++j) obs.extra_seen.push_back(r.u32());
          observations.push_back(std::move(obs));
        }
        shard.detector.import_observations(observations);
        const std::uint32_t known = r.u32();
        for (std::uint32_t i = 0; i < known; ++i) {
          shard.detector.add_known_scanner(Ipv4Address(r.u32()));
        }
        break;
      }
      case SectionType::kDynamicEndpoints: {
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
          const Ipv4Address server(r.u32());
          const std::uint16_t port = r.u16();
          const bool enabled = r.u8() != 0;
          if (enabled) shard.registry.register_dcerpc_endpoint(server, port);
        }
        break;
      }
      case SectionType::kConnections: {
        shard.table = std::make_unique<FlowTable>();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
          shard.table->connections().push_back(decode_connection(r));
        }
        break;
      }
      case SectionType::kAppEvents: {
        if (shard.table == nullptr) {
          throw SnapshotError(r.offset(), "app-events section before connections");
        }
        decode_events(r, shard.events, *shard.table);
        break;
      }
      case SectionType::kTraceLoad: {
        shard.load.trace_name = r.str();
        decode_series(r, shard.load.bits_1s);
        decode_series(r, shard.load.bits_10s);
        decode_series(r, shard.load.bits_60s);
        shard.load.ent_tcp_pkts = r.u64();
        shard.load.ent_retx = r.u64();
        shard.load.wan_tcp_pkts = r.u64();
        shard.load.wan_retx = r.u64();
        shard.load.keepalive_excluded = r.u64();
        break;
      }
      case SectionType::kCaptureQuality: {
        shard.quality.packets_seen = r.u64();
        shard.quality.packets_ok = r.u64();
        shard.quality.packets_dropped = r.u64();
        const std::uint32_t kinds = r.u32();
        if (kinds != kAnomalyKindCount) {
          throw SnapshotError(r.offset() - 4,
                              "anomaly taxonomy has " + std::to_string(kinds) +
                                  " kinds, this build knows " + std::to_string(kAnomalyKindCount) +
                                  " (format version bump required)");
        }
        for (std::size_t k = 0; k < kAnomalyKindCount; ++k) {
          shard.quality.anomalies[static_cast<AnomalyKind>(k)] = r.u64();
        }
        break;
      }
      case SectionType::kTraceMetrics: {
        const std::uint32_t count = r.u32();
        for (std::uint32_t i = 0; i < count; ++i) {
          const std::string name = r.str();
          if (name.empty()) throw SnapshotError(r.offset(), "metric with empty name");
          if (shard.metrics.find(name) != nullptr) {
            throw SnapshotError(r.offset(), "duplicate metric '" + name + "'");
          }
          const std::string help = r.str();
          const std::uint8_t kind = r.u8();
          if (kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram)) {
            throw SnapshotError(r.offset() - 1,
                                "metric kind " + std::to_string(kind) + " out of range");
          }
          // Snapshots carry semantic metrics only (the writer filters), so
          // everything registers as kSemantic.
          switch (static_cast<obs::MetricKind>(kind)) {
            case obs::MetricKind::kCounter:
              shard.metrics.counter(name, obs::MetricClass::kSemantic, help)->add(r.u64());
              break;
            case obs::MetricKind::kGauge:
              shard.metrics.gauge(name, obs::MetricClass::kSemantic, help)->set(r.f64());
              break;
            case obs::MetricKind::kHistogram: {
              const std::uint32_t n_bounds = r.u32();
              // A histogram payload needs 8 bytes per bound plus the
              // buckets/count/sum that follow; an absurd declared size is
              // rejected before any allocation is attempted.
              if (static_cast<std::uint64_t>(n_bounds) * 16 > r.remaining()) {
                throw SnapshotError(r.offset() - 4, "histogram declares " +
                                                        std::to_string(n_bounds) +
                                                        " bounds but the payload is smaller");
              }
              std::vector<double> bounds;
              bounds.reserve(n_bounds);
              for (std::uint32_t b = 0; b < n_bounds; ++b) bounds.push_back(r.f64());
              if (!std::is_sorted(bounds.begin(), bounds.end())) {
                throw SnapshotError(r.offset(), "histogram bounds not ascending");
              }
              std::vector<std::uint64_t> buckets;
              buckets.reserve(n_bounds + 1);
              std::uint64_t bucket_total = 0;
              for (std::uint32_t b = 0; b < n_bounds + 1; ++b) {
                buckets.push_back(r.u64());
                bucket_total += buckets.back();
              }
              const std::uint64_t total = r.u64();
              const double sum = r.f64();
              if (total != bucket_total) {
                throw SnapshotError(r.offset(), "histogram count " + std::to_string(total) +
                                                    " != bucket total " +
                                                    std::to_string(bucket_total));
              }
              obs::Histogram* h =
                  shard.metrics.histogram(name, obs::MetricClass::kSemantic, bounds, help);
              obs::Histogram restored(std::move(bounds));
              restored.restore(std::move(buckets), total, sum);
              h->merge(restored);
              break;
            }
          }
        }
        break;
      }
      case SectionType::kDatasetMeta:
      case SectionType::kEnd:
        break;  // handled by run(); unreachable here
    }
    r.expect_end(to_string(type));
  }
};

}  // namespace

Snapshot decode_snapshot(std::span<const std::uint8_t> bytes) {
  Decoder decoder;
  decoder.bytes = bytes;
  decoder.run();
  return std::move(decoder.out);
}

std::string describe_range_mismatch(const Snapshot& snap, const SnapshotMeta& expected,
                                    std::size_t lo, std::size_t hi) {
  if (!(snap.meta == expected)) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "snapshot is %s scale %.17g with %u traces, expected %s scale %.17g with %u",
                  snap.meta.dataset.c_str(), snap.meta.scale, snap.meta.trace_count,
                  expected.dataset.c_str(), expected.scale, expected.trace_count);
    return buf;
  }
  if (snap.shards.size() != hi - lo) {
    return "snapshot holds " + std::to_string(snap.shards.size()) + " shards, expected " +
           std::to_string(hi - lo) + " for traces [" + std::to_string(lo) + ", " +
           std::to_string(hi) + ")";
  }
  // The decoder enforces strictly ascending indices, but this helper is the
  // trust boundary for skipping or accepting work — verify contiguity
  // independently instead of assuming the decode path did.
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    const std::uint32_t want = static_cast<std::uint32_t>(lo + i);
    if (snap.shards[i].trace_index != want) {
      return "shard " + std::to_string(i) + " is trace " +
             std::to_string(snap.shards[i].trace_index) + ", expected trace " +
             std::to_string(want) + " of [" + std::to_string(lo) + ", " + std::to_string(hi) +
             ")";
    }
  }
  return std::string();
}

Snapshot read_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("snapshot reader: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw std::runtime_error("snapshot reader: cannot read " + path);
  }
  return decode_snapshot(bytes);
}

}  // namespace entrace::snapshot
