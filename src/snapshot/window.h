// Per-window snapshots and their reassembly.
//
// The windowed engine (core/incremental.h) rotates self-contained per-trace
// deltas: every member of a window's TraceShard either sums associatively
// (tallies, interval series, capture quality, semantic metrics) or carries
// its own keys for exact reassembly (connections by Connection::open_seq,
// events referencing the window's own connection copies).  That makes a
// WindowShard expressible in the unmodified .esnap format (format v3 adds
// open_seq to the connection encoding) — a window checkpoint IS an ordinary
// snapshot file, written by the same crash-safe writer the shard processes
// use, and readable by the same hardened reader.
//
// merge_window_shards() is the inverse of rotation: folding the window
// deltas of a run — in window order — back into one TraceShard per trace
// that is byte-identical to what a one-shot batch run would have produced,
// which is the invariant the daemon's checkpoints are trusted on
// (tests/daemon_test.cc pins it at 1 and 4 threads).  Connection deltas
// upsert by open_seq (a later window's copy of the same connection is its
// cumulative state — last writer wins); events remap onto the reassembled
// deque and append in window order, reproducing the serial emission order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "snapshot/format.h"
#include "synth/dataset_spec.h"

namespace entrace::snapshot {

// Canonical checkpoint file name for a rotated window: "window-00000042.esnap".
std::string window_file_name(std::uint64_t index);

// Write one rotated window as an ordinary .esnap snapshot (crash-safe
// tmp+rename, end marker, per-section CRCs).  Shards are encoded in
// trace-index order, so the file round-trips through read_snapshot.
// Returns the bytes written (the retention tier records it).
std::uint64_t write_window_snapshot(const std::string& path, const SnapshotMeta& meta,
                                    const WindowShard& window);

// Read a window checkpoint back into a WindowShard (shards in trace-index
// order; index/start/end are not part of the .esnap format — the caller
// supplies window order, e.g. from sorted file names).
WindowShard read_window_snapshot(const std::string& path);

// Fold window deltas (in window order) back into one TraceShard per trace,
// byte-identical to a one-shot batch run over the same packets.  Consumes
// the windows (events move out, connections copy into fresh tables built
// with config.flow).
std::vector<TraceShard> merge_window_shards(std::vector<WindowShard>&& windows,
                                            const AnalyzerConfig& config);

// Read the given window checkpoints (in window order — oldest first), fold
// them via merge_window_shards, and render the full paper report over the
// result.  Sketch files (snapshot/retention.h) are ordinary window
// snapshots, so handing RetentionManager::report_paths() here folds the
// daemon's *entire* retained history — tier-2 and tier-1 sketches plus the
// tier-0 windows — and, because the fold is associative, reproduces the
// one-shot batch report byte-identically when the paths cover the full run.
// Throws SnapshotError / std::runtime_error when a checkpoint is unreadable
// (e.g. it aged out between listing and reading).
std::string render_windowed_report(const std::vector<std::string>& window_paths,
                                   const DatasetSpec& spec, const AnalyzerConfig& config);

}  // namespace entrace::snapshot
