#include "snapshot/format.h"

#include <array>

namespace entrace::snapshot {

const char* to_string(SectionType type) {
  switch (type) {
    case SectionType::kDatasetMeta: return "dataset-meta";
    case SectionType::kTraceHeader: return "trace-header";
    case SectionType::kIpProtoCounts: return "ip-proto-counts";
    case SectionType::kHostSets: return "host-sets";
    case SectionType::kScannerState: return "scanner-state";
    case SectionType::kDynamicEndpoints: return "dynamic-endpoints";
    case SectionType::kConnections: return "connections";
    case SectionType::kAppEvents: return "app-events";
    case SectionType::kTraceLoad: return "trace-load";
    case SectionType::kCaptureQuality: return "capture-quality";
    case SectionType::kTraceMetrics: return "trace-metrics";
    case SectionType::kEnd: return "end";
  }
  return "unknown";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace entrace::snapshot
