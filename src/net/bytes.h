// Bounds-checked big-endian byte readers/writers.
//
// All wire formats in this project (Ethernet, IPv4, TCP, DNS, SMB, SunRPC,
// pcap records...) are serialized through these helpers rather than by
// casting packed structs, which keeps the code endian-portable and free of
// alignment UB.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace entrace {

// Byte-order reversal (std::byteswap is C++23; the project targets C++20).
inline std::uint16_t bswap16(std::uint16_t v) { return __builtin_bswap16(v); }
inline std::uint32_t bswap32(std::uint32_t v) { return __builtin_bswap32(v); }
inline std::uint64_t bswap64(std::uint64_t v) { return __builtin_bswap64(v); }

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16be(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32be(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64be(std::uint64_t v) {
    u32be(static_cast<std::uint32_t>(v >> 32));
    u32be(static_cast<std::uint32_t>(v));
  }
  // Little-endian variants (pcap file format, SMB, DCE-RPC and NCP use LE).
  void u16le(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32le(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  void bytes(std::string_view s) {
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }

  std::size_t size() const { return out_.size(); }
  // Patch a previously written big-endian u16 (e.g. a length field).
  void patch_u16be(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  void patch_u32le(std::size_t offset, std::uint32_t v) {
    out_[offset] = static_cast<std::uint8_t>(v);
    out_[offset + 1] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 2] = static_cast<std::uint8_t>(v >> 16);
    out_[offset + 3] = static_cast<std::uint8_t>(v >> 24);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

// Reader that never throws: failed reads return false / 0 and set a sticky
// truncated flag, which decoding code checks once at the end.  This models
// how a trace analyzer must treat snaplen-truncated packets.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return !truncated_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8() { return read_int<1>(); }
  std::uint16_t u16be() { return static_cast<std::uint16_t>(read_int<2>()); }
  std::uint32_t u32be() { return static_cast<std::uint32_t>(read_int<4>()); }
  std::uint64_t u64be() {
    const std::uint64_t hi = u32be();
    return (hi << 32) | u32be();
  }
  std::uint16_t u16le() {
    if (!check(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                            static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  std::uint32_t u32le() {
    if (!check(4)) return 0;
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!check(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string string(std::size_t n) {
    auto b = bytes(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  void skip(std::size_t n) { check(n) ? void(pos_ += n) : void(); }
  std::span<const std::uint8_t> rest() {
    auto out = data_.subspan(pos_);
    pos_ = data_.size();
    return out;
  }

 private:
  template <std::size_t N>
  std::uint64_t read_int() {
    if (!check(N)) return 0;
    std::uint64_t v;
    if constexpr (N == 1) {
      v = data_[pos_];
    } else if constexpr (N == 2) {
      std::uint16_t raw;
      std::memcpy(&raw, data_.data() + pos_, 2);
      if constexpr (std::endian::native == std::endian::little) raw = bswap16(raw);
      v = raw;
    } else if constexpr (N == 4) {
      std::uint32_t raw;
      std::memcpy(&raw, data_.data() + pos_, 4);
      if constexpr (std::endian::native == std::endian::little) raw = bswap32(raw);
      v = raw;
    } else {
      v = 0;
      for (std::size_t i = 0; i < N; ++i) v = (v << 8) | data_[pos_ + i];
    }
    pos_ += N;
    return v;
  }
  bool check(std::size_t n) {
    if (data_.size() - pos_ < n) {
      truncated_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool truncated_ = false;
};

}  // namespace entrace
