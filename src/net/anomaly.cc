#include "net/anomaly.h"

namespace entrace {

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kPcapShortRecordHeader: return "pcap-short-record-header";
    case AnomalyKind::kPcapTruncatedRecord: return "pcap-truncated-record";
    case AnomalyKind::kPcapOversizedRecord: return "pcap-oversized-record";
    case AnomalyKind::kCaptureEmpty: return "capture-empty";
    case AnomalyKind::kEthTruncated: return "eth-truncated";
    case AnomalyKind::kIpHeaderTruncated: return "ip-header-truncated";
    case AnomalyKind::kIpBadVersion: return "ip-bad-version";
    case AnomalyKind::kIpBadHeaderLen: return "ip-bad-header-len";
    case AnomalyKind::kIpBadTotalLen: return "ip-bad-total-len";
    case AnomalyKind::kIpChecksumBad: return "ip-checksum-bad";
    case AnomalyKind::kTcpHeaderTruncated: return "tcp-header-truncated";
    case AnomalyKind::kTcpBadDataOffset: return "tcp-bad-data-offset";
    case AnomalyKind::kTcpChecksumBad: return "tcp-checksum-bad";
    case AnomalyKind::kUdpHeaderTruncated: return "udp-header-truncated";
    case AnomalyKind::kUdpBadLength: return "udp-bad-length";
    case AnomalyKind::kUdpChecksumBad: return "udp-checksum-bad";
    case AnomalyKind::kIcmpTruncated: return "icmp-truncated";
    case AnomalyKind::kIcmpChecksumBad: return "icmp-checksum-bad";
    case AnomalyKind::kSnapTruncated: return "snap-truncated";
    case AnomalyKind::kPortZero: return "port-zero";
    case AnomalyKind::kTcpTupleReuse: return "tcp-tuple-reuse";
    case AnomalyKind::kAppParseError: return "app-parse-error";
    case AnomalyKind::kCount: break;
  }
  return "unknown";
}

std::map<std::string, std::uint64_t> AnomalyCounts::as_map() const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t i = 0; i < kAnomalyKindCount; ++i) {
    if (counts_[i] != 0) out[to_string(static_cast<AnomalyKind>(i))] = counts_[i];
  }
  return out;
}

}  // namespace entrace
