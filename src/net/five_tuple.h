// Flow keys: the (src, dst, sport, dport, proto) five-tuple, plus the
// canonical (direction-independent) form used to index the flow table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/ip_address.h"

namespace entrace {

struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  // Direction-independent key: orders (addr, port) pairs so A->B and B->A
  // map to the same flow.
  FiveTuple canonical() const;
  // True if this tuple is already in canonical order.
  bool is_canonical_order() const;
  FiveTuple reversed() const;

  std::string to_string() const;

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

}  // namespace entrace

template <>
struct std::hash<entrace::FiveTuple> {
  std::size_t operator()(const entrace::FiveTuple& t) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.src.value());
    mix(t.dst.value());
    mix((static_cast<std::uint64_t>(t.src_port) << 32) | t.dst_port);
    mix(t.proto);
    return static_cast<std::size_t>(h);
  }
};
