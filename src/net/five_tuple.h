// Flow keys: the (src, dst, sport, dport, proto) five-tuple, plus the
// canonical (direction-independent) form used to index the flow table.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/ip_address.h"

namespace entrace {

// SplitMix64 finalizer: a full-avalanche 64-bit mixer.  Shared by
// std::hash<FiveTuple> and the flow table's open-addressing map so both
// index structures see the same (strong) bit diffusion; the old FNV-1a
// fold left the low bits of near-sequential address/port patterns
// clustered, which is exactly what a power-of-two-masked table probes on.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

struct FiveTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  // Direction-independent key: orders (addr, port) pairs so A->B and B->A
  // map to the same flow.
  FiveTuple canonical() const;
  // True if this tuple is already in canonical order.
  bool is_canonical_order() const;
  FiveTuple reversed() const;

  std::string to_string() const;

  // Injective 16-byte packing of the tuple: `lo` carries the addresses,
  // `hi` the ports and protocol in disjoint bit ranges.  The flow table's
  // open-addressing map keys on the packed *canonical* tuple; std::hash
  // packs the tuple as-is (canonicalization is the caller's business).
  std::uint64_t packed_lo() const {
    return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
  }
  std::uint64_t packed_hi() const {
    return (static_cast<std::uint64_t>(src_port) << 24) |
           (static_cast<std::uint64_t>(dst_port) << 8) | proto;
  }

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;
};

// The one hash both FiveTuple index structures use.
inline std::uint64_t hash_packed_tuple(std::uint64_t lo, std::uint64_t hi) {
  return mix64(lo ^ mix64(hi ^ 0x9E3779B97F4A7C15ULL));
}

}  // namespace entrace

template <>
struct std::hash<entrace::FiveTuple> {
  std::size_t operator()(const entrace::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(entrace::hash_packed_tuple(t.packed_lo(), t.packed_hi()));
  }
};
