// Structured anomaly taxonomy for malformed capture input.
//
// Real captures (the paper's LBNL traces included) are full of measurement
// artifacts: snaplen-truncated packets, checksum failures, garbled headers,
// short pcap records.  Instead of silently dropping such input, every layer
// of the pipeline — PcapReader, decode_packet(), the stream parsers — reports
// what it saw into an AnomalyCounts, so a dataset analysis can account for
// every packet: packets_seen == packets_ok + packets_dropped, with the
// anomaly kinds explaining the drops and flags.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace entrace {

enum class AnomalyKind : std::uint8_t {
  // pcap file layer (counted by PcapReader in recoverable mode).
  kPcapShortRecordHeader,  // trailing bytes too short for a 16-byte record header
  kPcapTruncatedRecord,    // record body cut off by EOF (partial bytes salvaged)
  kPcapOversizedRecord,    // caplen exceeds the sanity cap; reader stops

  // Link layer.
  kCaptureEmpty,   // record with zero captured bytes
  kEthTruncated,   // fewer than 14 captured bytes

  // Network layer (IPv4).
  kIpHeaderTruncated,  // capture ends inside the IP header (or its options)
  kIpBadVersion,       // version nibble != 4 on an 0x0800 frame
  kIpBadHeaderLen,     // IHL < 20 bytes
  kIpBadTotalLen,      // total_length shorter than the IP header itself
  kIpChecksumBad,      // header checksum verification failed

  // Transport layer.
  kTcpHeaderTruncated,  // capture ends inside the TCP header/options
  kTcpBadDataOffset,    // data offset < 20 bytes
  kTcpChecksumBad,
  kUdpHeaderTruncated,
  kUdpBadLength,  // UDP length field shorter than the 8-byte header
  kUdpChecksumBad,
  kIcmpTruncated,
  kIcmpChecksumBad,

  // Informational flags on otherwise-decodable packets.
  kSnapTruncated,   // cap_len < wire_len (snaplen clipping)
  kPortZero,        // TCP/UDP with source or destination port 0
  kTcpTupleReuse,   // pure SYN with a new ISN on a live 5-tuple (port reuse)

  // Application layer: a stream parser bailed or resynced on garbage bytes.
  kAppParseError,

  kCount
};

inline constexpr std::size_t kAnomalyKindCount = static_cast<std::size_t>(AnomalyKind::kCount);

// Short stable identifier, e.g. "ip-checksum-bad" (used in reports/tests).
const char* to_string(AnomalyKind kind);

// Flat per-kind counters; mergeable across per-trace shards.
class AnomalyCounts {
 public:
  std::uint64_t& operator[](AnomalyKind k) { return counts_[static_cast<std::size_t>(k)]; }
  std::uint64_t operator[](AnomalyKind k) const { return counts_[static_cast<std::size_t>(k)]; }

  void add(AnomalyKind k, std::uint64_t n = 1) { counts_[static_cast<std::size_t>(k)] += n; }

  void merge(const AnomalyCounts& other) {
    for (std::size_t i = 0; i < kAnomalyKindCount; ++i) counts_[i] += other.counts_[i];
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto c : counts_) sum += c;
    return sum;
  }
  bool any() const { return total() != 0; }

  // Sparse view for reports and test diffs: only non-zero kinds.
  std::map<std::string, std::uint64_t> as_map() const;

  friend bool operator==(const AnomalyCounts& a, const AnomalyCounts& b) {
    return a.counts_ == b.counts_;
  }

 private:
  std::array<std::uint64_t, kAnomalyKindCount> counts_{};
};

// Per-trace (and merged per-dataset) capture accounting.  The invariant the
// corruption tests assert: packets_seen == packets_ok + packets_dropped.
// "ok" packets may still carry informational anomalies (snap truncation,
// partial L3/L4 decode); "dropped" packets were excluded from analysis
// because not even their addressing could be trusted (empty capture,
// truncated Ethernet header, failed IP/TCP/UDP/ICMP checksum).
struct CaptureQuality {
  std::uint64_t packets_seen = 0;
  std::uint64_t packets_ok = 0;
  std::uint64_t packets_dropped = 0;
  AnomalyCounts anomalies;

  void merge(const CaptureQuality& other) {
    packets_seen += other.packets_seen;
    packets_ok += other.packets_ok;
    packets_dropped += other.packets_dropped;
    anomalies.merge(other.anomalies);
  }

  bool accounted() const { return packets_seen == packets_ok + packets_dropped; }

  friend bool operator==(const CaptureQuality& a, const CaptureQuality& b) {
    return a.packets_seen == b.packets_seen && a.packets_ok == b.packets_ok &&
           a.packets_dropped == b.packets_dropped && a.anomalies == b.anomalies;
  }
};

}  // namespace entrace
