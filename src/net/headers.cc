#include "net/headers.h"

#include "net/checksum.h"

namespace entrace {

void EthernetHeader::encode(ByteWriter& w) const {
  w.bytes(std::span<const std::uint8_t>(dst.bytes()));
  w.bytes(std::span<const std::uint8_t>(src.bytes()));
  w.u16be(ethertype);
}

std::optional<EthernetHeader> EthernetHeader::decode(ByteReader& r) {
  EthernetHeader h;
  auto d = r.bytes(6);
  auto s = r.bytes(6);
  h.ethertype = r.u16be();
  if (!r.ok()) return std::nullopt;
  std::array<std::uint8_t, 6> buf;
  std::copy(d.begin(), d.end(), buf.begin());
  h.dst = MacAddress(buf);
  std::copy(s.begin(), s.end(), buf.begin());
  h.src = MacAddress(buf);
  return h;
}

void ArpHeader::encode(ByteWriter& w) const {
  w.u16be(1);       // htype: Ethernet
  w.u16be(0x0800);  // ptype: IPv4
  w.u8(6);          // hlen
  w.u8(4);          // plen
  w.u16be(opcode);
  w.bytes(std::span<const std::uint8_t>(sender_mac.bytes()));
  w.u32be(sender_ip.value());
  w.bytes(std::span<const std::uint8_t>(target_mac.bytes()));
  w.u32be(target_ip.value());
}

std::optional<ArpHeader> ArpHeader::decode(ByteReader& r) {
  if (r.u16be() != 1 || r.u16be() != 0x0800) return std::nullopt;
  if (r.u8() != 6 || r.u8() != 4) return std::nullopt;
  ArpHeader h;
  h.opcode = r.u16be();
  std::array<std::uint8_t, 6> buf;
  auto sm = r.bytes(6);
  h.sender_ip = Ipv4Address(r.u32be());
  auto tm = r.bytes(6);
  h.target_ip = Ipv4Address(r.u32be());
  if (!r.ok()) return std::nullopt;
  std::copy(sm.begin(), sm.end(), buf.begin());
  h.sender_mac = MacAddress(buf);
  std::copy(tm.begin(), tm.end(), buf.begin());
  h.target_mac = MacAddress(buf);
  return h;
}

void IpxHeader::encode(ByteWriter& w) const {
  w.u16be(0xFFFF);  // checksum: always 0xFFFF in IPX
  w.u16be(length);
  w.u8(0);  // transport control
  w.u8(packet_type);
  w.u32be(dst_net);
  w.bytes(std::span<const std::uint8_t>(dst_node.bytes()));
  w.u16be(dst_socket);
  w.u32be(src_net);
  w.bytes(std::span<const std::uint8_t>(src_node.bytes()));
  w.u16be(src_socket);
}

std::optional<IpxHeader> IpxHeader::decode(ByteReader& r) {
  if (r.u16be() != 0xFFFF) return std::nullopt;
  IpxHeader h;
  h.length = r.u16be();
  r.u8();  // transport control
  h.packet_type = r.u8();
  std::array<std::uint8_t, 6> buf;
  h.dst_net = r.u32be();
  auto dn = r.bytes(6);
  h.dst_socket = r.u16be();
  h.src_net = r.u32be();
  auto sn = r.bytes(6);
  h.src_socket = r.u16be();
  if (!r.ok()) return std::nullopt;
  std::copy(dn.begin(), dn.end(), buf.begin());
  h.dst_node = MacAddress(buf);
  std::copy(sn.begin(), sn.end(), buf.begin());
  h.src_node = MacAddress(buf);
  return h;
}

void Ipv4Header::encode(ByteWriter& w) const {
  std::vector<std::uint8_t> hdr;
  hdr.reserve(kMinSize);
  ByteWriter hw(hdr);
  hw.u8(0x45);  // version 4, IHL 5
  hw.u8(tos);
  hw.u16be(total_length);
  hw.u16be(identification);
  hw.u16be(0);  // flags/fragment: DF not modeled
  hw.u8(ttl);
  hw.u8(protocol);
  hw.u16be(0);  // checksum placeholder
  hw.u32be(src.value());
  hw.u32be(dst.value());
  const std::uint16_t csum = internet_checksum(hdr);
  hdr[10] = static_cast<std::uint8_t>(csum >> 8);
  hdr[11] = static_cast<std::uint8_t>(csum);
  w.bytes(hdr);
}

std::optional<Ipv4Header> Ipv4Header::decode(ByteReader& r) {
  const std::uint8_t vi = r.u8();
  if (!r.ok() || (vi >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(vi & 0x0F) * 4;
  if (ihl < kMinSize) return std::nullopt;
  Ipv4Header h;
  h.tos = r.u8();
  h.total_length = r.u16be();
  h.identification = r.u16be();
  r.u16be();  // flags/fragment
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.checksum = r.u16be();
  h.src = Ipv4Address(r.u32be());
  h.dst = Ipv4Address(r.u32be());
  if (ihl > kMinSize) r.skip(ihl - kMinSize);  // options
  if (!r.ok()) return std::nullopt;
  return h;
}

void TcpHeader::encode(ByteWriter& w) const {
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u32be(seq);
  w.u32be(ack);
  w.u8(5 << 4);  // data offset 5 words, no options
  w.u8(flags);
  w.u16be(window);
  w.u16be(checksum);
  w.u16be(0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16be();
  h.dst_port = r.u16be();
  h.seq = r.u32be();
  h.ack = r.u32be();
  const std::uint8_t off = r.u8();
  h.flags = r.u8();
  h.window = r.u16be();
  h.checksum = r.u16be();
  r.u16be();  // urgent
  const std::size_t data_off = static_cast<std::size_t>(off >> 4) * 4;
  if (data_off < kMinSize) return std::nullopt;
  if (data_off > kMinSize) r.skip(data_off - kMinSize);  // options
  if (!r.ok()) return std::nullopt;
  return h;
}

void UdpHeader::encode(ByteWriter& w) const {
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u16be(length);
  w.u16be(checksum);
}

std::optional<UdpHeader> UdpHeader::decode(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16be();
  h.dst_port = r.u16be();
  h.length = r.u16be();
  h.checksum = r.u16be();
  if (!r.ok()) return std::nullopt;
  return h;
}

void IcmpHeader::encode(ByteWriter& w) const {
  w.u8(type);
  w.u8(code);
  w.u16be(checksum);
  w.u16be(identifier);
  w.u16be(sequence);
}

std::optional<IcmpHeader> IcmpHeader::decode(ByteReader& r) {
  IcmpHeader h;
  h.type = r.u8();
  h.code = r.u8();
  h.checksum = r.u16be();
  h.identifier = r.u16be();
  h.sequence = r.u16be();
  if (!r.ok()) return std::nullopt;
  return h;
}

}  // namespace entrace
