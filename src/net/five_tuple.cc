#include "net/five_tuple.h"

namespace entrace {

bool FiveTuple::is_canonical_order() const {
  if (src.value() != dst.value()) return src.value() < dst.value();
  return src_port <= dst_port;
}

FiveTuple FiveTuple::canonical() const { return is_canonical_order() ? *this : reversed(); }

FiveTuple FiveTuple::reversed() const { return {dst, src, dst_port, src_port, proto}; }

std::string FiveTuple::to_string() const {
  return src.to_string() + ":" + std::to_string(src_port) + " -> " + dst.to_string() + ":" +
         std::to_string(dst_port) + " proto=" + std::to_string(proto);
}

}  // namespace entrace
