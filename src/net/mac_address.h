// 48-bit Ethernet MAC addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace entrace {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> bytes) : bytes_(bytes) {}

  // Deterministic locally-administered MAC derived from a host id; the
  // trace generator gives every modeled host a stable MAC.
  static MacAddress from_host_id(std::uint32_t host_id);
  static constexpr MacAddress broadcast() {
    return MacAddress({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  constexpr const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  bool is_broadcast() const;
  bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }
  std::string to_string() const;

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace entrace
