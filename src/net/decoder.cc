#include "net/decoder.h"

#include "net/checksum.h"

namespace entrace {
namespace {

// Verify the transport checksum of a fully captured IPv4 segment.
// `l4` spans the transport header + payload as claimed by the IP/UDP length
// fields; the caller guarantees those bytes were captured.
bool l4_checksum_ok(const Ipv4Header& ip, std::span<const std::uint8_t> l4) {
  std::uint32_t sum = pseudo_header_sum(ip.src.value(), ip.dst.value(), ip.protocol,
                                        static_cast<std::uint16_t>(l4.size()));
  return checksum_finish(checksum_partial(l4, sum)) == 0;
}

}  // namespace

std::optional<DecodedPacket> decode_packet(const RawPacket& pkt, AnomalyCounts* anomalies) {
  const auto note = [anomalies](AnomalyKind k) {
    if (anomalies) anomalies->add(k);
  };

  if (pkt.data.empty()) {
    note(AnomalyKind::kCaptureEmpty);
    return std::nullopt;
  }

  ByteReader r(pkt.data);
  auto eth = EthernetHeader::decode(r);
  if (!eth) {
    note(AnomalyKind::kEthTruncated);
    return std::nullopt;
  }

  DecodedPacket d;
  d.ts = pkt.ts;
  d.wire_len = pkt.wire_len;
  d.cap_len = static_cast<std::uint32_t>(pkt.data.size());
  d.eth_src = eth->src;
  d.eth_dst = eth->dst;
  d.ethertype = eth->ethertype;
  if (d.cap_len < d.wire_len) {
    d.snap_truncated = true;
    note(AnomalyKind::kSnapTruncated);
  }

  switch (eth->ethertype) {
    case ethertype::kArp:
      d.l3 = L3Kind::kArp;
      return d;
    case ethertype::kIpx:
      d.l3 = L3Kind::kIpx;
      return d;
    case ethertype::kIpv4:
      break;
    default:
      d.l3 = L3Kind::kOther;
      return d;
  }

  // Classify IPv4 header problems precisely before decoding: truncation
  // (capture ends inside the header) vs. malformed fields.  These packets
  // keep l3 == kOther, matching the pre-taxonomy tallies.
  const std::span<const std::uint8_t> ip_bytes(pkt.data.data() + EthernetHeader::kSize,
                                               pkt.data.size() - EthernetHeader::kSize);
  if (ip_bytes.empty()) {
    note(AnomalyKind::kIpHeaderTruncated);
    d.l3 = L3Kind::kOther;
    return d;
  }
  if ((ip_bytes[0] >> 4) != 4) {
    note(AnomalyKind::kIpBadVersion);
    d.l3 = L3Kind::kOther;
    return d;
  }
  const std::size_t ihl = static_cast<std::size_t>(ip_bytes[0] & 0x0F) * 4;
  if (ihl < Ipv4Header::kMinSize) {
    note(AnomalyKind::kIpBadHeaderLen);
    d.l3 = L3Kind::kOther;
    return d;
  }
  if (ip_bytes.size() < ihl) {
    note(AnomalyKind::kIpHeaderTruncated);
    d.l3 = L3Kind::kOther;
    return d;
  }

  auto ip = Ipv4Header::decode(r);
  if (!ip) {  // unreachable after the checks above, but stay defensive
    note(AnomalyKind::kIpHeaderTruncated);
    d.l3 = L3Kind::kOther;
    return d;
  }
  d.l3 = L3Kind::kIpv4;
  d.src = ip->src;
  d.dst = ip->dst;
  d.ip_proto = ip->protocol;
  d.ttl = ip->ttl;
  d.ip_total_len = ip->total_length;

  // The full header was captured, so its checksum is verifiable.
  if (internet_checksum(ip_bytes.first(ihl)) != 0) {
    d.ip_checksum_bad = true;
    note(AnomalyKind::kIpChecksumBad);
  }
  if (ip->total_length < ihl) note(AnomalyKind::kIpBadTotalLen);

  // Wire-truth payload length from the IP header, independent of snaplen.
  const std::size_t ip_header_len = r.position() - EthernetHeader::kSize;
  const std::uint32_t ip_payload_wire =
      ip->total_length > ip_header_len
          ? static_cast<std::uint32_t>(ip->total_length - ip_header_len)
          : 0;

  // Transport checksums are verified only when the whole segment claimed by
  // the IP total length was captured; a corrupt total_length just shrinks or
  // voids the verifiable window (never reads out of bounds).
  const std::size_t l4_wire_len = ip->total_length >= ihl ? ip->total_length - ihl : 0;
  const bool l4_fully_captured = l4_wire_len > 0 && ip_bytes.size() >= ihl + l4_wire_len;
  const std::span<const std::uint8_t> l4_bytes =
      l4_fully_captured ? ip_bytes.subspan(ihl, l4_wire_len) : std::span<const std::uint8_t>{};

  switch (ip->protocol) {
    case ipproto::kTcp: {
      if (r.remaining() < TcpHeader::kMinSize) {
        note(AnomalyKind::kTcpHeaderTruncated);
        return d;
      }
      auto tcp = TcpHeader::decode(r);
      if (!tcp) {
        // 20 bytes were available, so decode only fails on the data offset:
        // either malformed (< 20) or options running past the capture.
        const std::uint8_t off = pkt.data[EthernetHeader::kSize + ihl + 12];
        if (static_cast<std::size_t>(off >> 4) * 4 < TcpHeader::kMinSize) {
          note(AnomalyKind::kTcpBadDataOffset);
        } else {
          note(AnomalyKind::kTcpHeaderTruncated);
        }
        return d;
      }
      d.l4_ok = true;
      d.src_port = tcp->src_port;
      d.dst_port = tcp->dst_port;
      d.tcp_flags = tcp->flags;
      d.tcp_seq = tcp->seq;
      d.tcp_ack = tcp->ack;
      d.payload_wire_len =
          ip_payload_wire >= TcpHeader::kMinSize
              ? ip_payload_wire - static_cast<std::uint32_t>(TcpHeader::kMinSize)
              : 0;
      d.payload = r.rest();
      if (l4_fully_captured && l4_wire_len >= TcpHeader::kMinSize &&
          !l4_checksum_ok(*ip, l4_bytes)) {
        d.l4_checksum_bad = true;
        note(AnomalyKind::kTcpChecksumBad);
      }
      break;
    }
    case ipproto::kUdp: {
      auto udp = UdpHeader::decode(r);
      if (!udp) {
        note(AnomalyKind::kUdpHeaderTruncated);
        return d;
      }
      d.l4_ok = true;
      d.src_port = udp->src_port;
      d.dst_port = udp->dst_port;
      if (udp->length < UdpHeader::kSize) note(AnomalyKind::kUdpBadLength);
      d.payload_wire_len =
          udp->length >= UdpHeader::kSize
              ? static_cast<std::uint32_t>(udp->length - UdpHeader::kSize)
              : 0;
      d.payload = r.rest();
      // RFC 768: checksum zero means "not computed by the sender".
      if (udp->checksum != 0 && udp->length >= UdpHeader::kSize &&
          ip_bytes.size() >= ihl + udp->length) {
        const auto datagram = ip_bytes.subspan(ihl, udp->length);
        std::uint32_t sum = pseudo_header_sum(ip->src.value(), ip->dst.value(), ipproto::kUdp,
                                              udp->length);
        if (checksum_finish(checksum_partial(datagram, sum)) != 0) {
          d.l4_checksum_bad = true;
          note(AnomalyKind::kUdpChecksumBad);
        }
      }
      break;
    }
    case ipproto::kIcmp: {
      auto icmp = IcmpHeader::decode(r);
      if (!icmp) {
        note(AnomalyKind::kIcmpTruncated);
        return d;
      }
      d.l4_ok = true;
      d.icmp_type = icmp->type;
      d.icmp_code = icmp->code;
      d.icmp_id = icmp->identifier;
      d.icmp_seq = icmp->sequence;
      d.payload_wire_len =
          ip_payload_wire >= IcmpHeader::kSize
              ? ip_payload_wire - static_cast<std::uint32_t>(IcmpHeader::kSize)
              : 0;
      d.payload = r.rest();
      // ICMP checksums cover only the ICMP message, no pseudo-header.
      if (l4_fully_captured && l4_wire_len >= IcmpHeader::kSize &&
          internet_checksum(l4_bytes) != 0) {
        d.l4_checksum_bad = true;
        note(AnomalyKind::kIcmpChecksumBad);
      }
      break;
    }
    default:
      d.payload_wire_len = ip_payload_wire;
      d.payload = r.rest();
      break;
  }

  if (d.l4_ok && (d.ip_proto == ipproto::kTcp || d.ip_proto == ipproto::kUdp) &&
      (d.src_port == 0 || d.dst_port == 0)) {
    note(AnomalyKind::kPortZero);
  }

  // Clamp captured payload to the wire payload (Ethernet minimum-frame
  // padding shows up as trailing bytes beyond the IP total length).
  if (d.payload.size() > d.payload_wire_len) d.payload = d.payload.first(d.payload_wire_len);
  return d;
}

}  // namespace entrace
