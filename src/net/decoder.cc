#include "net/decoder.h"

namespace entrace {

std::optional<DecodedPacket> decode_packet(const RawPacket& pkt) {
  ByteReader r(pkt.data);
  auto eth = EthernetHeader::decode(r);
  if (!eth) return std::nullopt;

  DecodedPacket d;
  d.ts = pkt.ts;
  d.wire_len = pkt.wire_len;
  d.cap_len = static_cast<std::uint32_t>(pkt.data.size());
  d.eth_src = eth->src;
  d.eth_dst = eth->dst;
  d.ethertype = eth->ethertype;

  switch (eth->ethertype) {
    case ethertype::kArp:
      d.l3 = L3Kind::kArp;
      return d;
    case ethertype::kIpx:
      d.l3 = L3Kind::kIpx;
      return d;
    case ethertype::kIpv4:
      break;
    default:
      d.l3 = L3Kind::kOther;
      return d;
  }

  auto ip = Ipv4Header::decode(r);
  if (!ip) {
    d.l3 = L3Kind::kOther;
    return d;
  }
  d.l3 = L3Kind::kIpv4;
  d.src = ip->src;
  d.dst = ip->dst;
  d.ip_proto = ip->protocol;
  d.ttl = ip->ttl;
  d.ip_total_len = ip->total_length;

  // Wire-truth payload length from the IP header, independent of snaplen.
  const std::size_t ip_header_len = r.position() - EthernetHeader::kSize;
  const std::uint32_t ip_payload_wire =
      ip->total_length > ip_header_len
          ? static_cast<std::uint32_t>(ip->total_length - ip_header_len)
          : 0;

  switch (ip->protocol) {
    case ipproto::kTcp: {
      auto tcp = TcpHeader::decode(r);
      if (!tcp) return d;
      d.l4_ok = true;
      d.src_port = tcp->src_port;
      d.dst_port = tcp->dst_port;
      d.tcp_flags = tcp->flags;
      d.tcp_seq = tcp->seq;
      d.tcp_ack = tcp->ack;
      d.payload_wire_len =
          ip_payload_wire >= TcpHeader::kMinSize
              ? ip_payload_wire - static_cast<std::uint32_t>(TcpHeader::kMinSize)
              : 0;
      d.payload = r.rest();
      break;
    }
    case ipproto::kUdp: {
      auto udp = UdpHeader::decode(r);
      if (!udp) return d;
      d.l4_ok = true;
      d.src_port = udp->src_port;
      d.dst_port = udp->dst_port;
      d.payload_wire_len =
          udp->length >= UdpHeader::kSize
              ? static_cast<std::uint32_t>(udp->length - UdpHeader::kSize)
              : 0;
      d.payload = r.rest();
      break;
    }
    case ipproto::kIcmp: {
      auto icmp = IcmpHeader::decode(r);
      if (!icmp) return d;
      d.l4_ok = true;
      d.icmp_type = icmp->type;
      d.icmp_code = icmp->code;
      d.icmp_id = icmp->identifier;
      d.icmp_seq = icmp->sequence;
      d.payload_wire_len =
          ip_payload_wire >= IcmpHeader::kSize
              ? ip_payload_wire - static_cast<std::uint32_t>(IcmpHeader::kSize)
              : 0;
      d.payload = r.rest();
      break;
    }
    default:
      d.payload_wire_len = ip_payload_wire;
      d.payload = r.rest();
      break;
  }

  // Clamp captured payload to the wire payload (Ethernet minimum-frame
  // padding shows up as trailing bytes beyond the IP total length).
  if (d.payload.size() > d.payload_wire_len) d.payload = d.payload.first(d.payload_wire_len);
  return d;
}

}  // namespace entrace
