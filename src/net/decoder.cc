#include "net/decoder.h"

#include <array>
#include <cstring>

#include "net/checksum.h"

namespace entrace {
namespace {

// Verify the transport checksum of a fully captured IPv4 segment.
// `l4` spans the transport header + payload as claimed by the IP/UDP length
// fields; the caller guarantees those bytes were captured.
bool l4_checksum_ok(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint8_t protocol,
                    std::span<const std::uint8_t> l4) {
  std::uint32_t sum =
      pseudo_header_sum(src_ip, dst_ip, protocol, static_cast<std::uint16_t>(l4.size()));
  return checksum_finish(checksum_partial(l4, sum)) == 0;
}

// Unchecked big-endian loads for the in-place header parse below; the
// caller has already verified the bytes are captured.
inline std::uint16_t be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
inline std::uint32_t be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

}  // namespace

bool decode_packet_into(std::span<const std::uint8_t> data, double ts, std::uint32_t wire_len,
                        DecodedPacket& d, AnomalyCounts* anomalies) {
  const auto note = [anomalies](AnomalyKind k) {
    if (anomalies) anomalies->add(k);
  };

  if (data.empty()) {
    note(AnomalyKind::kCaptureEmpty);
    return false;
  }
  if (data.size() < EthernetHeader::kSize) {
    note(AnomalyKind::kEthTruncated);
    return false;
  }

  d = DecodedPacket{};
  d.ts = ts;
  d.wire_len = wire_len;
  d.cap_len = static_cast<std::uint32_t>(data.size());
  // Ethernet header parsed in place: the optional<EthernetHeader> path
  // copied both MACs twice per packet on the hottest line of the decoder.
  std::array<std::uint8_t, 6> mac;
  std::memcpy(mac.data(), data.data(), 6);
  d.eth_dst = MacAddress(mac);
  std::memcpy(mac.data(), data.data() + 6, 6);
  d.eth_src = MacAddress(mac);
  d.ethertype = static_cast<std::uint16_t>((data[12] << 8) | data[13]);
  if (d.cap_len < d.wire_len) {
    d.snap_truncated = true;
    note(AnomalyKind::kSnapTruncated);
  }

  switch (d.ethertype) {
    case ethertype::kArp:
      d.l3 = L3Kind::kArp;
      return true;
    case ethertype::kIpx:
      d.l3 = L3Kind::kIpx;
      return true;
    case ethertype::kIpv4:
      break;
    default:
      d.l3 = L3Kind::kOther;
      return true;
  }

  // Classify IPv4 header problems precisely before decoding: truncation
  // (capture ends inside the header) vs. malformed fields.  These packets
  // keep l3 == kOther, matching the pre-taxonomy tallies.
  const std::span<const std::uint8_t> ip_bytes(data.data() + EthernetHeader::kSize,
                                               data.size() - EthernetHeader::kSize);
  if (ip_bytes.empty()) {
    note(AnomalyKind::kIpHeaderTruncated);
    d.l3 = L3Kind::kOther;
    return true;
  }
  if ((ip_bytes[0] >> 4) != 4) {
    note(AnomalyKind::kIpBadVersion);
    d.l3 = L3Kind::kOther;
    return true;
  }
  const std::size_t ihl = static_cast<std::size_t>(ip_bytes[0] & 0x0F) * 4;
  if (ihl < Ipv4Header::kMinSize) {
    note(AnomalyKind::kIpBadHeaderLen);
    d.l3 = L3Kind::kOther;
    return true;
  }
  if (ip_bytes.size() < ihl) {
    note(AnomalyKind::kIpHeaderTruncated);
    d.l3 = L3Kind::kOther;
    return true;
  }

  // The pre-checks above guarantee the fixed header plus options are
  // captured, so the IPv4 fields are read in place — the per-field bounds
  // checks a ByteReader would make cannot fire on this path.
  const std::uint8_t* ipb = ip_bytes.data();
  const std::uint16_t total_length = be16(ipb + 2);
  const std::uint8_t protocol = ipb[9];
  const std::uint32_t src_ip = be32(ipb + 12);
  const std::uint32_t dst_ip = be32(ipb + 16);
  d.l3 = L3Kind::kIpv4;
  d.src = Ipv4Address(src_ip);
  d.dst = Ipv4Address(dst_ip);
  d.ip_proto = protocol;
  d.ttl = ipb[8];
  d.ip_total_len = total_length;

  // The full header was captured, so its checksum is verifiable.
  if (internet_checksum(ip_bytes.first(ihl)) != 0) {
    d.ip_checksum_bad = true;
    note(AnomalyKind::kIpChecksumBad);
  }
  if (total_length < ihl) note(AnomalyKind::kIpBadTotalLen);

  // Wire-truth payload length from the IP header, independent of snaplen.
  const std::uint32_t ip_payload_wire =
      total_length > ihl ? static_cast<std::uint32_t>(total_length - ihl) : 0;

  // Captured transport bytes (header + payload as far as the snaplen goes).
  const std::span<const std::uint8_t> l4_capt = ip_bytes.subspan(ihl);

  // Transport checksums are verified only when the whole segment claimed by
  // the IP total length was captured; a corrupt total_length just shrinks or
  // voids the verifiable window (never reads out of bounds).
  const std::size_t l4_wire_len = total_length >= ihl ? total_length - ihl : 0;
  const bool l4_fully_captured = l4_wire_len > 0 && l4_capt.size() >= l4_wire_len;
  const std::span<const std::uint8_t> l4_bytes =
      l4_fully_captured ? l4_capt.first(l4_wire_len) : std::span<const std::uint8_t>{};

  switch (protocol) {
    case ipproto::kTcp: {
      if (l4_capt.size() < TcpHeader::kMinSize) {
        note(AnomalyKind::kTcpHeaderTruncated);
        return true;
      }
      const std::uint8_t* t = l4_capt.data();
      const std::size_t data_off = static_cast<std::size_t>(t[12] >> 4) * 4;
      if (data_off < TcpHeader::kMinSize) {
        note(AnomalyKind::kTcpBadDataOffset);
        return true;
      }
      if (l4_capt.size() < data_off) {  // options run past the capture
        note(AnomalyKind::kTcpHeaderTruncated);
        return true;
      }
      d.l4_ok = true;
      d.src_port = be16(t);
      d.dst_port = be16(t + 2);
      d.tcp_flags = t[13];
      d.tcp_seq = be32(t + 4);
      d.tcp_ack = be32(t + 8);
      d.payload_wire_len =
          ip_payload_wire >= TcpHeader::kMinSize
              ? ip_payload_wire - static_cast<std::uint32_t>(TcpHeader::kMinSize)
              : 0;
      d.payload = l4_capt.subspan(data_off);
      if (l4_fully_captured && l4_wire_len >= TcpHeader::kMinSize &&
          !l4_checksum_ok(src_ip, dst_ip, protocol, l4_bytes)) {
        d.l4_checksum_bad = true;
        note(AnomalyKind::kTcpChecksumBad);
      }
      break;
    }
    case ipproto::kUdp: {
      if (l4_capt.size() < UdpHeader::kSize) {
        note(AnomalyKind::kUdpHeaderTruncated);
        return true;
      }
      const std::uint8_t* u = l4_capt.data();
      const std::uint16_t udp_length = be16(u + 4);
      const std::uint16_t udp_checksum = be16(u + 6);
      d.l4_ok = true;
      d.src_port = be16(u);
      d.dst_port = be16(u + 2);
      if (udp_length < UdpHeader::kSize) note(AnomalyKind::kUdpBadLength);
      d.payload_wire_len =
          udp_length >= UdpHeader::kSize
              ? static_cast<std::uint32_t>(udp_length - UdpHeader::kSize)
              : 0;
      d.payload = l4_capt.subspan(UdpHeader::kSize);
      // RFC 768: checksum zero means "not computed by the sender".
      if (udp_checksum != 0 && udp_length >= UdpHeader::kSize &&
          l4_capt.size() >= udp_length) {
        const auto datagram = l4_capt.first(udp_length);
        std::uint32_t sum = pseudo_header_sum(src_ip, dst_ip, ipproto::kUdp, udp_length);
        if (checksum_finish(checksum_partial(datagram, sum)) != 0) {
          d.l4_checksum_bad = true;
          note(AnomalyKind::kUdpChecksumBad);
        }
      }
      break;
    }
    case ipproto::kIcmp: {
      if (l4_capt.size() < IcmpHeader::kSize) {
        note(AnomalyKind::kIcmpTruncated);
        return true;
      }
      const std::uint8_t* c = l4_capt.data();
      d.l4_ok = true;
      d.icmp_type = c[0];
      d.icmp_code = c[1];
      d.icmp_id = be16(c + 4);
      d.icmp_seq = be16(c + 6);
      d.payload_wire_len =
          ip_payload_wire >= IcmpHeader::kSize
              ? ip_payload_wire - static_cast<std::uint32_t>(IcmpHeader::kSize)
              : 0;
      d.payload = l4_capt.subspan(IcmpHeader::kSize);
      // ICMP checksums cover only the ICMP message, no pseudo-header.
      if (l4_fully_captured && l4_wire_len >= IcmpHeader::kSize &&
          internet_checksum(l4_bytes) != 0) {
        d.l4_checksum_bad = true;
        note(AnomalyKind::kIcmpChecksumBad);
      }
      break;
    }
    default:
      d.payload_wire_len = ip_payload_wire;
      d.payload = l4_capt;
      break;
  }

  if (d.l4_ok && (d.ip_proto == ipproto::kTcp || d.ip_proto == ipproto::kUdp) &&
      (d.src_port == 0 || d.dst_port == 0)) {
    note(AnomalyKind::kPortZero);
  }

  // Clamp captured payload to the wire payload (Ethernet minimum-frame
  // padding shows up as trailing bytes beyond the IP total length).
  if (d.payload.size() > d.payload_wire_len) d.payload = d.payload.first(d.payload_wire_len);
  return true;
}

std::optional<DecodedPacket> decode_packet(const RawPacket& pkt, AnomalyCounts* anomalies) {
  std::optional<DecodedPacket> out(std::in_place);
  if (!decode_packet_into(pkt.data, pkt.ts, pkt.wire_len, *out, anomalies)) out.reset();
  return out;
}

}  // namespace entrace
