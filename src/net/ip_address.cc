#include "net/ip_address.h"

#include <cstdio>

#include "util/strings.h"

namespace entrace {

Ipv4Address Ipv4Address::parse(const std::string& text) {
  Ipv4Address out;
  try_parse(text, out);
  return out;
}

bool Ipv4Address::try_parse(const std::string& text, Ipv4Address& out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char extra = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4) return false;
  if (a > 255 || b > 255 || c > 255 || d > 255) return false;
  out = Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                    static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
  return true;
}

std::string Ipv4Address::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xFF, (value_ >> 16) & 0xFF,
                (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

Subnet Subnet::parse(const std::string& cidr) {
  const auto slash = cidr.find('/');
  if (slash == std::string::npos) return Subnet(Ipv4Address::parse(cidr), 32);
  const Ipv4Address base = Ipv4Address::parse(cidr.substr(0, slash));
  const int len = std::atoi(cidr.c_str() + slash + 1);
  return Subnet(base, len);
}

std::string Subnet::to_string() const {
  return Ipv4Address(base_).to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace entrace
