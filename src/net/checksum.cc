#include "net/checksum.h"

namespace entrace {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_partial(data));
}

std::uint32_t pseudo_header_sum(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint8_t protocol,
                                std::uint16_t l4_len) {
  std::uint32_t sum = 0;
  sum += src_ip >> 16;
  sum += src_ip & 0xFFFF;
  sum += dst_ip >> 16;
  sum += dst_ip & 0xFFFF;
  sum += protocol;
  sum += l4_len;
  return sum;
}

}  // namespace entrace
