#include "net/checksum.h"

#include <bit>
#include <cstring>

#include "net/bytes.h"

namespace entrace {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t sum) {
  // One's-complement addition is commutative and associative over 16-bit
  // words, so the words can be accumulated in any grouping as long as the
  // final fold reduces modulo 0xFFFF.  Better still, the sum is byte-order
  // independent (RFC 1071 §2(B)): mod 0xFFFF, bswap16(x) == 256*x, so a sum
  // accumulated over native little-endian words equals the wire-order sum
  // after one byte swap of the folded result.  The hot loop exploits both:
  // four independent lanes each consume 8 native-endian bytes per iteration
  // (no per-word bswap, and the lanes break the accumulator dependency
  // chain), splitting each 64-bit load into two 32-bit halves whose sums
  // fold back mod 0xFFFF because 2^16 == 2^32 == 1 there.  Lane overflow
  // needs 2^31 iterations — far beyond any frame.  This matters because the
  // analyzer verifies the transport checksum of every fully captured
  // segment (decode_packet) and the generator computes one for every
  // emitted frame (fix_l4_checksum).
  std::uint64_t acc = sum;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if (n >= 32) {
    std::uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    do {
      std::uint64_t v0, v1, v2, v3;
      std::memcpy(&v0, p, 8);
      std::memcpy(&v1, p + 8, 8);
      std::memcpy(&v2, p + 16, 8);
      std::memcpy(&v3, p + 24, 8);
      a0 += (v0 & 0xFFFFFFFFu) + (v0 >> 32);
      a1 += (v1 & 0xFFFFFFFFu) + (v1 >> 32);
      a2 += (v2 & 0xFFFFFFFFu) + (v2 >> 32);
      a3 += (v3 & 0xFFFFFFFFu) + (v3 >> 32);
      p += 32;
      n -= 32;
    } while (n >= 32);
    std::uint64_t native = (a0 + a1) + (a2 + a3);
    while (native >> 16) native = (native & 0xFFFF) + (native >> 16);
    if constexpr (std::endian::native == std::endian::little) {
      native = bswap16(static_cast<std::uint16_t>(native));
    }
    acc += native;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    if constexpr (std::endian::native == std::endian::little) v = bswap64(v);
    acc += (v >> 48) + ((v >> 32) & 0xFFFF) + ((v >> 16) & 0xFFFF) + (v & 0xFFFF);
    p += 8;
    n -= 8;
  }
  while (n >= 2) {
    acc += (static_cast<std::uint32_t>(p[0]) << 8) | p[1];
    p += 2;
    n -= 2;
  }
  if (n != 0) acc += static_cast<std::uint32_t>(p[0]) << 8;
  // Fold back into 32 bits; congruent mod 0xFFFF with the plain word sum,
  // so checksum_finish yields the identical 16-bit result.
  acc = (acc & 0xFFFFFFFF) + (acc >> 32);
  acc = (acc & 0xFFFFFFFF) + (acc >> 32);
  return static_cast<std::uint32_t>(acc);
}

std::uint16_t checksum_finish(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_partial(data));
}

std::uint32_t pseudo_header_sum(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint8_t protocol,
                                std::uint16_t l4_len) {
  std::uint32_t sum = 0;
  sum += src_ip >> 16;
  sum += src_ip & 0xFFFF;
  sum += dst_ip >> 16;
  sum += dst_ip & 0xFFFF;
  sum += protocol;
  sum += l4_len;
  return sum;
}

}  // namespace entrace
