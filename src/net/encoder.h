// Frame construction for the synthetic trace generator: builds complete,
// decodable Ethernet frames with correct lengths and IP checksums.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace entrace {

struct FrameEndpoints {
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
};

// TCP segment with payload; seq/ack are absolute.
std::vector<std::uint8_t> make_tcp_frame(const FrameEndpoints& ep, std::uint16_t src_port,
                                         std::uint16_t dst_port, std::uint32_t seq,
                                         std::uint32_t ack, std::uint8_t flags,
                                         std::span<const std::uint8_t> payload,
                                         std::uint8_t ttl = 64);

std::vector<std::uint8_t> make_udp_frame(const FrameEndpoints& ep, std::uint16_t src_port,
                                         std::uint16_t dst_port,
                                         std::span<const std::uint8_t> payload,
                                         std::uint8_t ttl = 64);

std::vector<std::uint8_t> make_icmp_frame(const FrameEndpoints& ep, std::uint8_t type,
                                          std::uint8_t code, std::uint16_t id, std::uint16_t seq,
                                          std::size_t payload_len, std::uint8_t ttl = 64);

// Other IP protocols (IGMP, ESP, GRE, PIM, 224...) — payload is opaque.
std::vector<std::uint8_t> make_ip_frame(const FrameEndpoints& ep, std::uint8_t protocol,
                                        std::size_t payload_len, std::uint8_t ttl = 64);

std::vector<std::uint8_t> make_arp_frame(const MacAddress& src_mac, std::uint16_t opcode,
                                         Ipv4Address sender_ip, Ipv4Address target_ip);

std::vector<std::uint8_t> make_ipx_frame(const MacAddress& src_node, const MacAddress& dst_node,
                                         std::uint8_t packet_type, std::uint16_t src_socket,
                                         std::uint16_t dst_socket, std::size_t payload_len);

// A filler payload of the given size (repeating pattern; compressible, but
// nothing in the analysis depends on payload entropy).
std::vector<std::uint8_t> filler_payload(std::size_t len);

// Same bytes as filler_payload, served as a view of a shared immutable
// pattern buffer — no allocation or fill per call.  The pattern is a pure
// function of position, so every filler payload is a prefix of one fixed
// sequence.  Views up to 64 KiB alias a process-lifetime buffer and never
// invalidate; a larger request (none today) falls back to a thread-local
// scratch vector, invalidating any previous oversized view on that thread.
std::span<const std::uint8_t> filler_span(std::size_t len);

// Recompute the TCP or UDP checksum of a complete Ethernet+IPv4 frame in
// place (pseudo-header per RFC 793/768).  No-op for non-TCP/UDP frames or
// frames too short to carry the transport header.  Used by the frame
// builders above and by the fault injector when it rewrites header fields
// but wants the checksum to stay valid.
void fix_l4_checksum(std::vector<std::uint8_t>& frame);

}  // namespace entrace
