// Wire-format protocol constants and header encode/decode for the link,
// network, and transport layers seen in the LBNL traces: Ethernet, ARP, IPX,
// IPv4, TCP, UDP, ICMP, plus the rare transports the paper lists (IGMP,
// ESP, GRE, PIM, protocol 224).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/bytes.h"
#include "net/ip_address.h"
#include "net/mac_address.h"

namespace entrace {

// ---- EtherTypes -----------------------------------------------------------
namespace ethertype {
inline constexpr std::uint16_t kIpv4 = 0x0800;
inline constexpr std::uint16_t kArp = 0x0806;
inline constexpr std::uint16_t kIpx = 0x8137;
inline constexpr std::uint16_t kAppleTalk = 0x809B;
inline constexpr std::uint16_t kDecnet = 0x6003;
}  // namespace ethertype

// ---- IP protocol numbers ---------------------------------------------------
namespace ipproto {
inline constexpr std::uint8_t kIcmp = 1;
inline constexpr std::uint8_t kIgmp = 2;
inline constexpr std::uint8_t kTcp = 6;
inline constexpr std::uint8_t kUdp = 17;
inline constexpr std::uint8_t kGre = 47;
inline constexpr std::uint8_t kEsp = 50;
inline constexpr std::uint8_t kPim = 103;
inline constexpr std::uint8_t kProto224 = 224;  // unidentified in the paper
}  // namespace ipproto

// ---- TCP flags --------------------------------------------------------------
namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflag

// ---- Header structs ---------------------------------------------------------

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  MacAddress dst;
  MacAddress src;
  std::uint16_t ethertype = 0;

  void encode(ByteWriter& w) const;
  static std::optional<EthernetHeader> decode(ByteReader& r);
};

struct ArpHeader {
  static constexpr std::uint16_t kRequest = 1;
  static constexpr std::uint16_t kReply = 2;

  std::uint16_t opcode = kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  void encode(ByteWriter& w) const;
  static std::optional<ArpHeader> decode(ByteReader& r);
};

// Novell IPX over Ethernet II framing (30-byte header).  The paper's traces
// see substantial broadcast IPX (NCP/SAP environments).
struct IpxHeader {
  static constexpr std::size_t kSize = 30;
  std::uint16_t length = kSize;  // includes header
  std::uint8_t packet_type = 0;  // 0=unknown, 4=PEP/SAP, 17=NCP
  std::uint32_t dst_net = 0;
  MacAddress dst_node;
  std::uint16_t dst_socket = 0;
  std::uint32_t src_net = 0;
  MacAddress src_node;
  std::uint16_t src_socket = 0;

  void encode(ByteWriter& w) const;
  static std::optional<IpxHeader> decode(ByteReader& r);
};

struct Ipv4Header {
  static constexpr std::size_t kMinSize = 20;
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // filled by encode
  Ipv4Address src;
  Ipv4Address dst;

  // Encodes with a correct header checksum; total_length must be set.
  void encode(ByteWriter& w) const;
  static std::optional<Ipv4Header> decode(ByteReader& r);
};

struct TcpHeader {
  static constexpr std::size_t kMinSize = 20;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;

  void encode(ByteWriter& w) const;
  static std::optional<TcpHeader> decode(ByteReader& r);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  void encode(ByteWriter& w) const;
  static std::optional<UdpHeader> decode(ByteReader& r);
};

struct IcmpHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kDestUnreachable = 3;
  static constexpr std::uint8_t kEchoRequest = 8;

  std::uint8_t type = kEchoRequest;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  void encode(ByteWriter& w) const;
  static std::optional<IcmpHeader> decode(ByteReader& r);
};

}  // namespace entrace
