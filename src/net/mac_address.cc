#include "net/mac_address.h"

#include <cstdio>

namespace entrace {

MacAddress MacAddress::from_host_id(std::uint32_t host_id) {
  // 0x02 => locally administered, unicast.
  return MacAddress({0x02, 0x1B, static_cast<std::uint8_t>(host_id >> 24),
                     static_cast<std::uint8_t>(host_id >> 16),
                     static_cast<std::uint8_t>(host_id >> 8),
                     static_cast<std::uint8_t>(host_id)});
}

bool MacAddress::is_broadcast() const {
  for (auto b : bytes_)
    if (b != 0xFF) return false;
  return true;
}

std::string MacAddress::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace entrace
