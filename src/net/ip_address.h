// IPv4 addresses and subnets.
//
// Addresses are stored in host byte order; serialization to/from the wire is
// the job of net/headers.h.  Subnet is a prefix (address + length) used both
// by the enterprise model (per-subnet taps) and the locality analysis
// (enterprise vs WAN classification).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace entrace {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  // Parse dotted-quad; returns the unspecified address on failure (use
  // try_parse when failure must be detected).
  static Ipv4Address parse(const std::string& text);
  static bool try_parse(const std::string& text, Ipv4Address& out);

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  constexpr bool is_multicast() const { return (value_ >> 28) == 0xE; }  // 224.0.0.0/4
  constexpr bool is_broadcast() const { return value_ == 0xFFFFFFFFu; }
  constexpr bool is_unspecified() const { return value_ == 0; }

  friend constexpr auto operator<=>(Ipv4Address a, Ipv4Address b) = default;

 private:
  std::uint32_t value_ = 0;
};

class Subnet {
 public:
  constexpr Subnet() = default;
  constexpr Subnet(Ipv4Address base, int prefix_len)
      : base_(base.value() & mask_for(prefix_len)), prefix_len_(prefix_len) {}

  static Subnet parse(const std::string& cidr);  // "a.b.c.d/len"

  constexpr bool contains(Ipv4Address addr) const {
    return (addr.value() & mask_for(prefix_len_)) == base_;
  }
  constexpr Ipv4Address base() const { return Ipv4Address(base_); }
  constexpr int prefix_len() const { return prefix_len_; }
  // Host address at the given offset within the subnet.
  constexpr Ipv4Address host(std::uint32_t offset) const { return Ipv4Address(base_ + offset); }
  std::string to_string() const;

  friend constexpr auto operator<=>(const Subnet&, const Subnet&) = default;

 private:
  static constexpr std::uint32_t mask_for(int len) {
    return len <= 0 ? 0 : (len >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - len)) - 1));
  }
  std::uint32_t base_ = 0;
  int prefix_len_ = 0;
};

}  // namespace entrace

template <>
struct std::hash<entrace::Ipv4Address> {
  std::size_t operator()(entrace::Ipv4Address a) const noexcept {
    // Fibonacci hashing of the 32-bit value.
    return static_cast<std::size_t>(a.value()) * 0x9E3779B97F4A7C15ULL >> 16;
  }
};
