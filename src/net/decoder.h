// Packet decoding: raw captured bytes -> a flat DecodedPacket view with
// link/network/transport metadata and a span over the captured payload.
//
// Decoding is tolerant of snaplen truncation: a packet whose transport
// header was captured but whose payload was snapped still yields correct
// byte accounting via payload_wire_len (derived from the IP total length),
// mirroring how the paper analyzes the 68-byte-snaplen datasets D1/D2.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/anomaly.h"
#include "net/five_tuple.h"
#include "net/headers.h"
#include "net/packet.h"

namespace entrace {

enum class L3Kind : std::uint8_t { kIpv4, kArp, kIpx, kOther };

struct DecodedPacket {
  double ts = 0.0;
  std::uint32_t wire_len = 0;
  std::uint32_t cap_len = 0;

  MacAddress eth_src;
  MacAddress eth_dst;
  std::uint16_t ethertype = 0;
  L3Kind l3 = L3Kind::kOther;

  // IPv4 fields (valid when l3 == kIpv4).
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t ip_proto = 0;
  std::uint8_t ttl = 0;
  std::uint16_t ip_total_len = 0;

  // Transport fields (valid when l4_ok).
  bool l4_ok = false;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;
  std::uint32_t tcp_seq = 0;
  std::uint32_t tcp_ack = 0;
  std::uint8_t icmp_type = 0;
  std::uint8_t icmp_code = 0;
  std::uint16_t icmp_id = 0;
  std::uint16_t icmp_seq = 0;

  // Captured transport payload (may be shorter than payload_wire_len under
  // snaplen truncation).
  std::span<const std::uint8_t> payload;
  std::uint32_t payload_wire_len = 0;

  // Anomaly flags.  snap_truncated marks snaplen clipping (informational:
  // the packet is still analyzable via wire-length accounting).  The
  // checksum flags mark packets whose header/segment bytes were fully
  // captured but failed verification — their content cannot be trusted, and
  // the analyzer drops them from traffic accounting (Bro behaves the same
  // way on the paper's traces).
  bool snap_truncated = false;
  bool ip_checksum_bad = false;
  bool l4_checksum_bad = false;

  bool checksum_bad() const { return ip_checksum_bad || l4_checksum_bad; }

  bool is_tcp() const { return l3 == L3Kind::kIpv4 && ip_proto == ipproto::kTcp; }
  bool is_udp() const { return l3 == L3Kind::kIpv4 && ip_proto == ipproto::kUdp; }
  bool is_icmp() const { return l3 == L3Kind::kIpv4 && ip_proto == ipproto::kIcmp; }

  FiveTuple tuple() const { return {src, dst, src_port, dst_port, ip_proto}; }
};

// Decode an Ethernet frame.  Returns nullopt only if even the Ethernet
// header is truncated (or the capture is empty); unknown ethertypes decode
// to l3 == kOther.  The returned payload span aliases `pkt.data` — the
// RawPacket must outlive the DecodedPacket.
//
// When `anomalies` is non-null, every early-out and every anomaly flag is
// classified into it: a nullopt return always reports kCaptureEmpty or
// kEthTruncated; a partial L3/L4 decode reports which layer failed and why
// (truncation vs. malformed field); checksum verification failures report
// k{Ip,Tcp,Udp,Icmp}ChecksumBad.  Checksums are only verified when the
// covered bytes were fully captured — a snaplen-clipped segment is never
// misreported as checksum-bad.
std::optional<DecodedPacket> decode_packet(const RawPacket& pkt, AnomalyCounts* anomalies);

// Copy-free variant for the batched hot path: decodes into a caller-owned
// DecodedPacket (e.g. a slot in a per-batch array) and returns false where
// decode_packet would return nullopt.  Identical classification semantics —
// decode_packet is a thin wrapper over this.
bool decode_packet_into(std::span<const std::uint8_t> data, double ts, std::uint32_t wire_len,
                        DecodedPacket& d, AnomalyCounts* anomalies);

inline std::optional<DecodedPacket> decode_packet(const RawPacket& pkt) {
  return decode_packet(pkt, nullptr);
}

}  // namespace entrace
