// Raw captured packets, as produced by the pcap reader or the synthetic
// generator's tap.
#pragma once

#include <cstdint>
#include <vector>

namespace entrace {

struct RawPacket {
  double ts = 0.0;            // seconds since trace epoch
  std::uint32_t wire_len = 0;  // original length on the wire
  std::vector<std::uint8_t> data;  // captured bytes (<= wire_len when snapped)
};

}  // namespace entrace
