#include "net/encoder.h"

#include "net/checksum.h"

namespace entrace {
namespace {

void append_ipv4(std::vector<std::uint8_t>& frame, const FrameEndpoints& ep,
                 std::uint8_t protocol, std::size_t l4_len, std::uint8_t ttl) {
  ByteWriter w(frame);
  Ipv4Header ip;
  ip.src = ep.src_ip;
  ip.dst = ep.dst_ip;
  ip.protocol = protocol;
  ip.ttl = ttl;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kMinSize + l4_len);
  ip.encode(w);
}

void append_ethernet(std::vector<std::uint8_t>& frame, const MacAddress& src,
                     const MacAddress& dst, std::uint16_t ethertype) {
  ByteWriter w(frame);
  EthernetHeader eth{dst, src, ethertype};
  eth.encode(w);
}

}  // namespace

std::vector<std::uint8_t> make_tcp_frame(const FrameEndpoints& ep, std::uint16_t src_port,
                                         std::uint16_t dst_port, std::uint32_t seq,
                                         std::uint32_t ack, std::uint8_t flags,
                                         std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  std::vector<std::uint8_t> frame;
  frame.reserve(EthernetHeader::kSize + Ipv4Header::kMinSize + TcpHeader::kMinSize +
                payload.size());
  append_ethernet(frame, ep.src_mac, ep.dst_mac, ethertype::kIpv4);
  append_ipv4(frame, ep, ipproto::kTcp, TcpHeader::kMinSize + payload.size(), ttl);
  ByteWriter w(frame);
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  tcp.encode(w);
  w.bytes(payload);
  fix_l4_checksum(frame);
  return frame;
}

std::vector<std::uint8_t> make_udp_frame(const FrameEndpoints& ep, std::uint16_t src_port,
                                         std::uint16_t dst_port,
                                         std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  std::vector<std::uint8_t> frame;
  frame.reserve(EthernetHeader::kSize + Ipv4Header::kMinSize + UdpHeader::kSize + payload.size());
  append_ethernet(frame, ep.src_mac, ep.dst_mac, ethertype::kIpv4);
  append_ipv4(frame, ep, ipproto::kUdp, UdpHeader::kSize + payload.size(), ttl);
  ByteWriter w(frame);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload.size());
  udp.encode(w);
  w.bytes(payload);
  fix_l4_checksum(frame);
  return frame;
}

std::vector<std::uint8_t> make_icmp_frame(const FrameEndpoints& ep, std::uint8_t type,
                                          std::uint8_t code, std::uint16_t id, std::uint16_t seq,
                                          std::size_t payload_len, std::uint8_t ttl) {
  std::vector<std::uint8_t> frame;
  append_ethernet(frame, ep.src_mac, ep.dst_mac, ethertype::kIpv4);
  append_ipv4(frame, ep, ipproto::kIcmp, IcmpHeader::kSize + payload_len, ttl);
  const std::size_t icmp_start = frame.size();
  ByteWriter w(frame);
  IcmpHeader icmp;
  icmp.type = type;
  icmp.code = code;
  icmp.identifier = id;
  icmp.sequence = seq;
  icmp.encode(w);
  w.bytes(filler_span(payload_len));
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(frame.data() + icmp_start, frame.size() - icmp_start));
  frame[icmp_start + 2] = static_cast<std::uint8_t>(csum >> 8);
  frame[icmp_start + 3] = static_cast<std::uint8_t>(csum);
  return frame;
}

std::vector<std::uint8_t> make_ip_frame(const FrameEndpoints& ep, std::uint8_t protocol,
                                        std::size_t payload_len, std::uint8_t ttl) {
  std::vector<std::uint8_t> frame;
  append_ethernet(frame, ep.src_mac, ep.dst_mac, ethertype::kIpv4);
  append_ipv4(frame, ep, protocol, payload_len, ttl);
  const auto filler = filler_payload(payload_len);
  ByteWriter w(frame);
  w.bytes(filler);
  return frame;
}

std::vector<std::uint8_t> make_arp_frame(const MacAddress& src_mac, std::uint16_t opcode,
                                         Ipv4Address sender_ip, Ipv4Address target_ip) {
  std::vector<std::uint8_t> frame;
  const MacAddress dst =
      opcode == ArpHeader::kRequest ? MacAddress::broadcast() : MacAddress::from_host_id(0);
  append_ethernet(frame, src_mac, dst, ethertype::kArp);
  ByteWriter w(frame);
  ArpHeader arp;
  arp.opcode = opcode;
  arp.sender_mac = src_mac;
  arp.sender_ip = sender_ip;
  arp.target_ip = target_ip;
  arp.encode(w);
  return frame;
}

std::vector<std::uint8_t> make_ipx_frame(const MacAddress& src_node, const MacAddress& dst_node,
                                         std::uint8_t packet_type, std::uint16_t src_socket,
                                         std::uint16_t dst_socket, std::size_t payload_len) {
  std::vector<std::uint8_t> frame;
  append_ethernet(frame, src_node, dst_node, ethertype::kIpx);
  ByteWriter w(frame);
  IpxHeader ipx;
  ipx.length = static_cast<std::uint16_t>(IpxHeader::kSize + payload_len);
  ipx.packet_type = packet_type;
  ipx.src_node = src_node;
  ipx.dst_node = dst_node;
  ipx.src_socket = src_socket;
  ipx.dst_socket = dst_socket;
  ipx.encode(w);
  w.bytes(filler_span(payload_len));
  return frame;
}

namespace {

std::vector<std::uint8_t> build_filler_pattern(std::size_t len) {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) out[i] = static_cast<std::uint8_t>(0x20 + (i % 0x5F));
  return out;
}

}  // namespace

std::span<const std::uint8_t> filler_span(std::size_t len) {
  // 64 KiB covers every generator request (the TCP builders chunk transfers
  // at 64 KiB); the shared buffer is immutable after first use, so views
  // handed out earlier stay valid for the life of the process.
  static constexpr std::size_t kShared = 64 * 1024;
  static const std::vector<std::uint8_t> shared = build_filler_pattern(kShared);
  if (len <= kShared) return std::span<const std::uint8_t>(shared.data(), len);
  thread_local std::vector<std::uint8_t> oversized;
  if (oversized.size() < len) oversized = build_filler_pattern(len);
  return std::span<const std::uint8_t>(oversized.data(), len);
}

std::vector<std::uint8_t> filler_payload(std::size_t len) {
  const auto view = filler_span(len);
  return std::vector<std::uint8_t>(view.begin(), view.end());
}

void fix_l4_checksum(std::vector<std::uint8_t>& frame) {
  constexpr std::size_t kEth = EthernetHeader::kSize;
  if (frame.size() < kEth + Ipv4Header::kMinSize) return;
  if ((frame[12] != 0x08) || (frame[13] != 0x00)) return;  // not IPv4
  if ((frame[kEth] >> 4) != 4) return;
  const std::size_t ihl = static_cast<std::size_t>(frame[kEth] & 0x0F) * 4;
  if (ihl < Ipv4Header::kMinSize || frame.size() < kEth + ihl) return;
  const std::uint16_t total_len =
      static_cast<std::uint16_t>(frame[kEth + 2]) << 8 | frame[kEth + 3];
  if (total_len < ihl || frame.size() < kEth + total_len) return;
  const std::uint16_t l4_len = static_cast<std::uint16_t>(total_len - ihl);
  const std::uint8_t proto = frame[kEth + 9];
  const std::size_t l4_start = kEth + ihl;

  std::size_t csum_off;
  if (proto == ipproto::kTcp && l4_len >= TcpHeader::kMinSize) {
    csum_off = l4_start + 16;
  } else if (proto == ipproto::kUdp && l4_len >= UdpHeader::kSize) {
    csum_off = l4_start + 6;
  } else {
    return;
  }

  frame[csum_off] = 0;
  frame[csum_off + 1] = 0;
  const std::uint32_t src = static_cast<std::uint32_t>(frame[kEth + 12]) << 24 |
                            static_cast<std::uint32_t>(frame[kEth + 13]) << 16 |
                            static_cast<std::uint32_t>(frame[kEth + 14]) << 8 | frame[kEth + 15];
  const std::uint32_t dst = static_cast<std::uint32_t>(frame[kEth + 16]) << 24 |
                            static_cast<std::uint32_t>(frame[kEth + 17]) << 16 |
                            static_cast<std::uint32_t>(frame[kEth + 18]) << 8 | frame[kEth + 19];
  std::uint32_t sum = pseudo_header_sum(src, dst, proto, l4_len);
  sum = checksum_partial(std::span<const std::uint8_t>(frame.data() + l4_start, l4_len), sum);
  std::uint16_t csum = checksum_finish(sum);
  // RFC 768: a computed UDP checksum of zero is transmitted as all ones.
  if (proto == ipproto::kUdp && csum == 0) csum = 0xFFFF;
  frame[csum_off] = static_cast<std::uint8_t>(csum >> 8);
  frame[csum_off + 1] = static_cast<std::uint8_t>(csum);
}

}  // namespace entrace
