// RFC 1071 Internet checksum, used by the IPv4/TCP/UDP/ICMP encoders and
// verified by the decoder tests.
#pragma once

#include <cstdint>
#include <span>

namespace entrace {

// One's-complement sum folded to 16 bits (not yet complemented).
std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t sum = 0);

// Final internet checksum of a buffer.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

// Finish a partial sum into the complemented checksum.
std::uint16_t checksum_finish(std::uint32_t sum);

// Partial sum of the TCP/UDP pseudo-header (src, dst, zero, protocol,
// transport length), to be continued over the transport segment bytes.
std::uint32_t pseudo_header_sum(std::uint32_t src_ip, std::uint32_t dst_ip, std::uint8_t protocol,
                                std::uint16_t l4_len);

}  // namespace entrace
