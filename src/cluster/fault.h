// Deterministic network-fault injection for the cluster layer, mirroring
// orchestrate/fault.h one hop further out: the supervisor injects process
// faults (crash/hang/truncate/corrupt), the coordinator injects network
// faults (refuse/disconnect/corrupt-frame/hang) — same seeded per-(job,
// attempt) draw, so a given seed produces the same fault schedule on every
// run regardless of worker count or dispatch order, and any schedule in
// which every range eventually succeeds must yield a byte-identical report.
//
// Faults are drawn centrally by the coordinator (never by workers rolling
// their own dice): refuse is executed coordinator-side by dialing a port
// that is known dead, the other three ride to the worker inside the JOB
// message's injected_fault byte and are acted out there — drop the
// connection mid-stream, flip a bit in an outgoing frame, or go silent
// until the coordinator's heartbeat deadline fires.
#pragma once

#include <climits>
#include <cstdint>
#include <string>

#include "orchestrate/fault.h"

namespace entrace::cluster {

// What the harness injects into a cluster job attempt.  Values are wire
// bytes (JobMsg::injected_fault); kNetFaultCount bounds validation.
enum class NetInjectedFault : std::uint8_t {
  kNoInject = 0,
  kRefuseInject,       // coordinator dials a dead port instead of the worker
  kDisconnectInject,   // worker closes the connection mid-snapshot-stream
  kCorruptFrameInject, // worker flips one bit in an outgoing SNAPSHOT frame
  kHangInject,         // worker goes silent; coordinator's deadline fires
  kNetFaultCount
};

const char* to_string(NetInjectedFault fault);

// The WorkerFault the coordinator is expected to classify each injected
// fault as (tests assert the per-fault counters line up with the draws).
orchestrate::WorkerFault expected_fault(NetInjectedFault injected);

struct NetFaultInjection {
  // Independent per-attempt probabilities, evaluated in this order; the
  // first that fires wins.
  double refuse = 0.0;
  double disconnect = 0.0;
  double corrupt = 0.0;
  double hang = 0.0;
  std::uint64_t seed = 1;
  // Inject only into the first `attempt_limit` attempts of each job; the
  // default never stops injecting.
  int attempt_limit = INT32_MAX;

  bool any() const { return refuse > 0 || disconnect > 0 || corrupt > 0 || hang > 0; }

  // The fault (or none) for attempt `attempt` (1-based) of job `job` —
  // a pure function of (seed, job, attempt).
  NetInjectedFault draw(std::uint64_t job, int attempt) const;
};

// Parse "refuse=0.1,disconnect=0.1,corrupt=0.05,hang=0.05" (any subset,
// each probability in [0, 1]).  False with *error set on unknown keys or
// out-of-range values; probabilities not named stay 0.
bool parse_net_inject_spec(const std::string& spec, NetFaultInjection& out, std::string* error);

}  // namespace entrace::cluster
