#include "cluster/worker.h"

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/fault.h"
#include "cluster/protocol.h"
#include "core/analyzer.h"
#include "snapshot/writer.h"
#include "synth/model.h"
#include "synth/synth_source.h"

namespace entrace::cluster {

namespace {

// How long a hang-injected connection stays silent waiting for the
// coordinator to give up; a real deadline fires well before this, the cap
// only guards against a coordinator that never does.
constexpr int kHangCapMs = 60'000;

// Encode the job's .esnap byte stream: the entrace_shard analysis loop with
// SnapshotWriter pointed at memory instead of a file.  Throws on any job
// the worker cannot honor; the caller turns that into an ERROR frame.
std::string encode_job_snapshot(const JobMsg& job) {
  const EnterpriseModel model;
  const DatasetSpec spec = dataset_by_name(job.dataset, job.scale);
  const SyntheticTraceSourceSet sources(spec, model);
  if (sources.size() != job.trace_count) {
    throw std::runtime_error("job names " + std::to_string(job.trace_count) + " traces for " +
                             spec.name + " but the dataset has " + std::to_string(sources.size()));
  }
  if (job.lo >= job.hi || job.hi > sources.size()) {
    throw std::runtime_error("trace range [" + std::to_string(job.lo) + ", " +
                             std::to_string(job.hi) + ") is invalid for " +
                             std::to_string(sources.size()) + " traces");
  }

  AnalyzerConfig config = default_config_for_model(model.site());
  config.threads = job.threads;
  std::vector<TraceShard> shards =
      analyze_trace_shards(sources, config, job.lo, job.hi, nullptr);

  std::ostringstream out(std::ios::binary);
  const snapshot::SnapshotMeta meta{spec.name, job.scale, job.trace_count};
  snapshot::SnapshotWriter writer(out, meta);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    writer.add_shard(job.lo + static_cast<std::uint32_t>(i), shards[i]);
  }
  writer.close();
  return std::move(out).str();
}

}  // namespace

WorkerServer::WorkerServer(const WorkerConfig& config) : config_(config) {
  std::string error;
  listen_ = util::tcp_listen(config.port, &port_, &error);
  if (!listen_.valid()) throw std::runtime_error("worker: " + error);
}

void WorkerServer::serve() {
  while (!stopping_.load(std::memory_order_acquire)) serve_one(100);
}

bool WorkerServer::serve_one(int timeout_ms) {
  if (util::poll_in(listen_.get(), timeout_ms) != 1) return false;
  util::ScopedFd fd(::accept(listen_.get(), nullptr, nullptr));
  if (!fd.valid()) return false;
  handle_connection(fd.get());
  return true;
}

void WorkerServer::handle_connection(int fd) {
  HelloMsg hello;
  hello.worker_name = config_.name;
  const std::vector<std::uint8_t> hello_frame = hello.encode();
  if (!util::send_all(fd, hello_frame.data(), hello_frame.size())) return;

  // Serve JOB frames until the peer closes.  A coordinator that dislikes
  // anything about us just hangs up; there is no goodbye message.
  FrameDecoder decoder;
  char buf[4096];
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = decoder.next();
    } catch (const ProtocolError& e) {
      if (config_.verbose) std::fprintf(stderr, "[%s] %s\n", config_.name.c_str(), e.what());
      return;  // a peer speaking garbage gets the connection dropped
    }
    if (!frame.has_value()) {
      // Idle between jobs is fine, but a peer that vanished should not pin
      // this worker forever: poll, then read.
      if (util::poll_in(fd, 1000) < 0) return;
      const long n = util::recv_some(fd, buf, sizeof(buf));
      if (n == 0) return;  // orderly close: the coordinator is done with us
      if (n < 0) return;
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (frame->type != MsgType::kJob) {
      if (config_.verbose) {
        std::fprintf(stderr, "[%s] unexpected %s frame, dropping connection\n",
                     config_.name.c_str(), to_string(frame->type));
      }
      return;
    }
    JobMsg job;
    try {
      job = JobMsg::decode(*frame);
    } catch (const ProtocolError& e) {
      if (config_.verbose) std::fprintf(stderr, "[%s] %s\n", config_.name.c_str(), e.what());
      return;
    }
    if (!handle_job(fd, job)) return;
  }
}

bool WorkerServer::handle_job(int fd, const JobMsg& job) {
  const auto injected = static_cast<NetInjectedFault>(
      job.injected_fault < static_cast<std::uint8_t>(NetInjectedFault::kNetFaultCount)
          ? job.injected_fault
          : 0);
  if (config_.verbose) {
    std::fprintf(stderr, "[%s] job %llu attempt %u: %s[%u, %u) threads=%u inject=%s\n",
                 config_.name.c_str(), static_cast<unsigned long long>(job.job_id), job.attempt,
                 job.dataset.c_str(), job.lo, job.hi, job.threads, to_string(injected));
  }

  if (injected == NetInjectedFault::kHangInject) {
    // Go silent: no heartbeats, no data.  Wait for the coordinator's
    // deadline to close the connection so the next accept finds a healthy
    // worker, with a cap in case it never does.
    char buf[256];
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(kHangCapMs)) {
      if (util::poll_in(fd, 100) != 1) continue;
      const long n = util::recv_some(fd, buf, sizeof(buf));
      if (n <= 0) break;  // peer gave up on us — hang complete
    }
    return false;
  }

  // Analysis on its own thread; this thread owns the socket and keeps the
  // heartbeat cadence, so a long analysis never reads as a dead worker.
  std::string bytes;
  std::string failure;
  std::atomic<bool> done{false};
  std::thread analysis([&] {
    try {
      bytes = encode_job_snapshot(job);
    } catch (const std::exception& e) {
      failure = e.what();
    }
    done.store(true, std::memory_order_release);
  });

  const int interval_ms =
      job.heartbeat_interval_ms == 0 ? 100 : static_cast<int>(job.heartbeat_interval_ms);
  HeartbeatMsg heartbeat;
  heartbeat.job_id = job.job_id;
  const std::vector<std::uint8_t> heartbeat_frame = heartbeat.encode();
  bool peer_alive = true;
  auto last_beat = std::chrono::steady_clock::now();
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto now = std::chrono::steady_clock::now();
    if (now - last_beat >= std::chrono::milliseconds(interval_ms)) {
      last_beat = now;
      if (peer_alive && !util::send_all(fd, heartbeat_frame.data(), heartbeat_frame.size())) {
        peer_alive = false;  // keep going: the analysis thread must be joined
      }
    }
  }
  analysis.join();
  if (!peer_alive) return false;

  if (!failure.empty()) {
    ErrorMsg err;
    err.job_id = job.job_id;
    err.message = failure;
    const std::vector<std::uint8_t> err_frame = err.encode();
    util::send_all(fd, err_frame.data(), err_frame.size());
    return true;  // the job failed; the worker is fine
  }

  // Stream the snapshot in chunks.  Disconnect-inject closes the
  // connection about halfway through; corrupt-inject flips one payload bit
  // of the first chunk's frame (the receiver's CRC check must catch it).
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::size_t total = bytes.size();
  const std::size_t chunks = (total + kSnapshotChunkSize - 1) / kSnapshotChunkSize;
  const std::size_t disconnect_after =
      injected == NetInjectedFault::kDisconnectInject ? (chunks > 1 ? chunks / 2 : 0) : chunks + 1;
  for (std::size_t c = 0; c < chunks; ++c) {
    if (c >= disconnect_after) return false;  // mid-stream hangup, injected
    SnapshotChunkMsg chunk;
    chunk.job_id = job.job_id;
    chunk.offset = static_cast<std::uint64_t>(c * kSnapshotChunkSize);
    const std::size_t len = std::min(kSnapshotChunkSize, total - c * kSnapshotChunkSize);
    chunk.bytes.assign(data + chunk.offset, data + chunk.offset + len);
    std::vector<std::uint8_t> chunk_frame = chunk.encode();
    if (c == 0 && injected == NetInjectedFault::kCorruptFrameInject) {
      // Flip a bit inside the frame's payload region, past the header, so
      // the damage is a CRC mismatch rather than bad framing.
      chunk_frame[kFrameHeaderSize + (chunk_frame.size() / 2) % len] ^= 0x10;
    }
    if (!util::send_all(fd, chunk_frame.data(), chunk_frame.size())) return false;
  }

  DoneMsg done_msg;
  done_msg.job_id = job.job_id;
  done_msg.total_bytes = total;
  done_msg.snapshot_crc = snapshot::crc32({data, total});
  const std::vector<std::uint8_t> done_frame = done_msg.encode();
  if (!util::send_all(fd, done_frame.data(), done_frame.size())) return false;
  if (config_.verbose) {
    std::fprintf(stderr, "[%s] job %llu done: %zu bytes in %zu chunks\n", config_.name.c_str(),
                 static_cast<unsigned long long>(job.job_id), total, chunks);
  }
  return true;
}

}  // namespace entrace::cluster
