#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "cluster/protocol.h"
#include "obs/stage_timer.h"
#include "snapshot/reader.h"
#include "synth/model.h"
#include "synth/synth_source.h"
#include "util/net_io.h"
#include "util/strings.h"

namespace entrace::cluster {

namespace {

using orchestrate::JobState;
using orchestrate::WorkerFault;

// Idle tick of a dispatch thread with no eligible job: short enough that
// backoff expiries are picked up promptly, long enough to stay cheap on a
// small box.
constexpr auto kIdleTick = std::chrono::milliseconds(5);
// recv chunk granularity; also the poll cap so stop conditions and
// deadlines are rechecked at least this often.
constexpr int kPollCapMs = 100;

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
  std::string label;  // "host:port" for logs
};

struct Job {
  std::size_t index = 0;
  std::size_t lo = 0, hi = 0;
  JobState state = JobState::kPending;
  int launches = 0;
  double eligible_at = 0.0;
  std::vector<WorkerFault> faults;
};

// Per-attempt transfer tallies, accumulated lock-free during the attempt
// and folded into the shared obs counters at settle time (obs::Counter is
// not atomic, so all metric writes happen under the coordinator mutex).
struct AttemptStats {
  std::uint64_t bytes_rx = 0;
  std::uint64_t frames = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t chunks = 0;
  bool connected = false;
};

// Handles into the cluster telemetry (all timing class: they describe the
// run, never the dataset, so clustered reports stay byte-stable).
struct Metrics {
  obs::Counter* attempts = nullptr;
  obs::Counter* reconnects = nullptr;
  obs::Counter* connects = nullptr;
  obs::Counter* bytes_rx = nullptr;
  obs::Counter* frames_rx = nullptr;
  obs::Counter* heartbeats_rx = nullptr;
  obs::Counter* chunks_rx = nullptr;
  obs::Counter* jobs_done = nullptr;
  obs::Counter* jobs_failed = nullptr;
  obs::Gauge* backoff_seconds = nullptr;
  std::array<obs::Counter*, orchestrate::kWorkerFaultCount> faults{};

  explicit Metrics(obs::Registry* reg) {
    if (reg == nullptr) return;
    using obs::MetricClass;
    attempts = reg->counter("cluster.attempts", MetricClass::kTiming,
                            "job dispatches across all endpoints");
    reconnects = reg->counter("cluster.reconnects", MetricClass::kTiming,
                              "redispatches after a classified fault");
    connects = reg->counter("cluster.connects", MetricClass::kTiming,
                            "TCP connections established to workers");
    bytes_rx = reg->counter("cluster.bytes.rx", MetricClass::kTiming,
                            "bytes received from workers");
    frames_rx = reg->counter("cluster.frames.rx", MetricClass::kTiming,
                             "protocol frames received from workers");
    heartbeats_rx = reg->counter("cluster.heartbeats.rx", MetricClass::kTiming,
                                 "heartbeat frames received from workers");
    chunks_rx = reg->counter("cluster.chunks.rx", MetricClass::kTiming,
                             "snapshot chunks received from workers");
    jobs_done = reg->counter("cluster.jobs.done", MetricClass::kTiming,
                             "jobs that delivered a validated snapshot");
    jobs_failed = reg->counter("cluster.jobs.failed", MetricClass::kTiming,
                               "jobs that exhausted their attempt budget");
    backoff_seconds = reg->gauge("cluster.backoff.seconds", MetricClass::kTiming,
                                 "total backoff delay scheduled before redispatches");
    for (std::size_t f = 1; f < orchestrate::kWorkerFaultCount; ++f) {
      std::string name =
          std::string("cluster.fault.") + to_string(static_cast<WorkerFault>(f));
      std::replace(name.begin(), name.end(), '-', '_');
      faults[f] = reg->counter(name, MetricClass::kTiming,
                               "attempts that ended in this worker fault");
    }
  }
};

class Coordinator {
 public:
  Coordinator(const ClusterConfig& config, util::Clock& clock)
      : config_(config), clock_(clock), metrics_(config.metrics) {}

  orchestrate::OrchestrateResult run() {
    const double start = clock_.now();
    prepare();

    std::vector<std::thread> dispatchers;
    dispatchers.reserve(endpoints_.size());
    for (const Endpoint& endpoint : endpoints_) {
      dispatchers.emplace_back([this, &endpoint] { dispatch_loop(endpoint); });
    }
    for (std::thread& t : dispatchers) t.join();

    orchestrate::OrchestrateResult result = finish();
    if (config_.metrics != nullptr) {
      obs::record_stage(config_.metrics, "cluster", clock_.now() - start, jobs_.size());
    }
    return result;
  }

 private:
  void log(const char* fmt, ...) const __attribute__((format(printf, 2, 3))) {
    if (!config_.verbose) return;
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[cluster] ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
  }

  void prepare() {
    if (config_.endpoints.empty()) {
      throw std::runtime_error("cluster: no worker endpoints configured");
    }
    for (const std::string& spec : config_.endpoints) {
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
        throw std::runtime_error("cluster: endpoint '" + spec + "' is not host:port");
      }
      char* end = nullptr;
      const long port = std::strtol(spec.c_str() + colon + 1, &end, 10);
      if (*end != '\0' || port < 1 || port > 65535) {
        throw std::runtime_error("cluster: endpoint '" + spec + "' has a bad port");
      }
      endpoints_.push_back(
          Endpoint{spec.substr(0, colon), static_cast<std::uint16_t>(port), spec});
    }

    spec_ = dataset_by_name(config_.dataset, config_.scale);
    const EnterpriseModel model;
    trace_count_ = SyntheticTraceSourceSet(spec_, model).size();
    if (trace_count_ == 0) {
      throw std::runtime_error("cluster: dataset " + config_.dataset + " has no traces");
    }
    meta_ = snapshot::SnapshotMeta{spec_.name, config_.scale,
                                   static_cast<std::uint32_t>(trace_count_)};

    std::size_t m = config_.jobs == 0 ? endpoints_.size() : config_.jobs;
    m = std::min(std::max<std::size_t>(1, m), trace_count_);
    jobs_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      jobs_[i].index = i;
      jobs_[i].lo = trace_count_ * i / m;
      jobs_[i].hi = trace_count_ * (i + 1) / m;
    }

    // A port that is bound once and immediately released: connecting to it
    // later gets a real ECONNREFUSED, which is how refuse-injection
    // exercises the genuine dead-endpoint code path.
    if (config_.inject.refuse > 0) {
      std::string error;
      util::ScopedFd probe = util::tcp_listen(0, &dead_port_, &error);
      if (!probe.valid()) throw std::runtime_error("cluster: " + error);
    }
    log("%zu traces of %s in %zu jobs over %zu endpoints (budget %d attempts/job)", trace_count_,
        spec_.name.c_str(), m, endpoints_.size(), config_.retry.max_attempts);
  }

  bool terminal_locked() const {
    return std::all_of(jobs_.begin(), jobs_.end(), [](const Job& job) {
      return job.state == JobState::kDone || job.state == JobState::kFailed;
    });
  }

  Job* pick_eligible_locked() {
    for (Job& job : jobs_) {
      if (job.state == JobState::kPending ||
          (job.state == JobState::kRetrying && clock_.now() >= job.eligible_at)) {
        return &job;
      }
    }
    return nullptr;
  }

  void dispatch_loop(const Endpoint& endpoint) {
    for (;;) {
      std::size_t index = 0;
      int attempt = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (terminal_locked()) return;
        Job* job = pick_eligible_locked();
        if (job == nullptr) {
          // Nothing runnable right now; jobs running elsewhere may still
          // fail back into the queue, so idle rather than exit.
        } else {
          job->state = JobState::kRunning;
          attempt = ++job->launches;
          index = job->index;
          if (metrics_.attempts != nullptr) metrics_.attempts->add();
        }
      }
      if (attempt == 0) {
        std::this_thread::sleep_for(kIdleTick);
        continue;
      }

      std::string detail;
      AttemptStats stats;
      std::map<std::uint32_t, TraceShard> delivered;
      const WorkerFault fault =
          attempt_job(endpoint, jobs_[index], attempt, detail, stats, delivered);
      settle(endpoint, jobs_[index], attempt, fault, detail, stats, std::move(delivered));
    }
  }

  // One network attempt at `job` against `endpoint`: connect, handshake,
  // dispatch, gather, validate.  Pure I/O — no shared state is touched
  // (job.lo/hi/index are immutable after prepare()).
  WorkerFault attempt_job(const Endpoint& endpoint, const Job& job, int attempt,
                          std::string& detail, AttemptStats& stats,
                          std::map<std::uint32_t, TraceShard>& delivered) {
    const NetInjectedFault injected = config_.inject.draw(job.index, attempt);

    std::string host = endpoint.host;
    std::uint16_t port = endpoint.port;
    if (injected == NetInjectedFault::kRefuseInject) {
      host = "127.0.0.1";
      port = dead_port_;
    }
    std::string error;
    util::ScopedFd fd = util::tcp_connect(host, port, config_.connect_timeout, &error);
    if (!fd.valid()) {
      detail = error;
      return WorkerFault::kConnectRefused;
    }
    stats.connected = true;

    FrameDecoder decoder;
    std::vector<std::uint8_t> snapshot_bytes;
    std::optional<DoneMsg> done;
    bool got_hello = false;
    char buf[16384];
    auto last_frame = std::chrono::steady_clock::now();
    const auto deadline =
        std::chrono::milliseconds(static_cast<long>(config_.heartbeat_deadline * 1000.0));

    while (!done.has_value()) {
      // Drain every complete frame before blocking again.
      std::optional<Frame> frame;
      try {
        frame = decoder.next();
      } catch (const ProtocolError& e) {
        detail = e.what();
        return WorkerFault::kCorruptFrame;
      }
      if (frame.has_value()) {
        last_frame = std::chrono::steady_clock::now();
        ++stats.frames;
        try {
          switch (frame->type) {
            case MsgType::kHello: {
              const HelloMsg hello = HelloMsg::decode(*frame);
              if (got_hello) {
                detail = "duplicate HELLO";
                return WorkerFault::kCorruptFrame;
              }
              if (hello.protocol_version != kProtocolVersion) {
                detail = "worker '" + hello.worker_name + "' speaks protocol version " +
                         std::to_string(hello.protocol_version) + ", want " +
                         std::to_string(kProtocolVersion);
                return WorkerFault::kCorruptFrame;
              }
              got_hello = true;
              JobMsg msg;
              msg.job_id = job.index;
              msg.attempt = static_cast<std::uint32_t>(attempt);
              msg.dataset = spec_.name;
              msg.scale = config_.scale;
              msg.trace_count = static_cast<std::uint32_t>(trace_count_);
              msg.lo = static_cast<std::uint32_t>(job.lo);
              msg.hi = static_cast<std::uint32_t>(job.hi);
              msg.threads = static_cast<std::uint32_t>(config_.shard_threads);
              msg.heartbeat_interval_ms =
                  static_cast<std::uint32_t>(config_.heartbeat_interval * 1000.0);
              msg.injected_fault = static_cast<std::uint8_t>(
                  injected == NetInjectedFault::kRefuseInject ? NetInjectedFault::kNoInject
                                                              : injected);
              const std::vector<std::uint8_t> job_frame = msg.encode();
              if (!util::send_all(fd.get(), job_frame.data(), job_frame.size())) {
                detail = "connection lost sending JOB";
                return WorkerFault::kDisconnect;
              }
              break;
            }
            case MsgType::kHeartbeat: {
              HeartbeatMsg::decode(*frame);
              ++stats.heartbeats;
              break;
            }
            case MsgType::kSnapshotChunk: {
              SnapshotChunkMsg chunk = SnapshotChunkMsg::decode(*frame);
              if (chunk.job_id != job.index) {
                detail = "chunk for job " + std::to_string(chunk.job_id) + " on job " +
                         std::to_string(job.index) + "'s connection";
                return WorkerFault::kCorruptFrame;
              }
              if (chunk.offset != snapshot_bytes.size()) {
                detail = "chunk offset " + std::to_string(chunk.offset) +
                         " leaves a gap (have " + std::to_string(snapshot_bytes.size()) +
                         " bytes)";
                return WorkerFault::kCorruptFrame;
              }
              snapshot_bytes.insert(snapshot_bytes.end(), chunk.bytes.begin(),
                                    chunk.bytes.end());
              ++stats.chunks;
              break;
            }
            case MsgType::kDone: {
              done = DoneMsg::decode(*frame);
              break;
            }
            case MsgType::kError: {
              const ErrorMsg err = ErrorMsg::decode(*frame);
              // The worker's analysis died on this job; the taxonomy's
              // closest kin to "the attempt reported its own death".
              detail = "worker error: " + err.message;
              return WorkerFault::kCrash;
            }
            case MsgType::kJob: {
              detail = "unexpected JOB frame from a worker";
              return WorkerFault::kCorruptFrame;
            }
          }
        } catch (const ProtocolError& e) {
          detail = e.what();
          return WorkerFault::kCorruptFrame;
        }
        continue;
      }

      // No complete frame buffered: wait for bytes, bounded by the
      // heartbeat deadline measured from the last *frame* (any frame —
      // heartbeat, chunk, DONE — proves liveness).
      const auto since_frame = std::chrono::steady_clock::now() - last_frame;
      if (since_frame >= deadline) {
        detail = "no frame within the " + std::to_string(config_.heartbeat_deadline) +
                 "s heartbeat deadline";
        return WorkerFault::kHeartbeatTimeout;
      }
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - since_frame);
      const int wait_ms = static_cast<int>(std::min<long>(left.count() + 1, kPollCapMs));
      const int ready = util::poll_in(fd.get(), wait_ms);
      if (ready < 0) {
        detail = "poll failed on the worker connection";
        return WorkerFault::kDisconnect;
      }
      if (ready == 0) continue;
      const long n = util::recv_some(fd.get(), buf, sizeof(buf));
      if (n == 0) {
        detail = got_hello ? "worker closed the connection before DONE"
                           : "worker closed the connection before HELLO";
        return WorkerFault::kDisconnect;
      }
      if (n < 0) {
        detail = "connection error while receiving";
        return WorkerFault::kDisconnect;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
      stats.bytes_rx += static_cast<std::uint64_t>(n);
    }

    // Transfer complete: the bytes now have to earn trust, exactly like a
    // shard file delivered by a subprocess.
    if (done->total_bytes != snapshot_bytes.size()) {
      detail = "DONE declares " + std::to_string(done->total_bytes) + " bytes, received " +
               std::to_string(snapshot_bytes.size());
      return WorkerFault::kTruncatedSnapshot;
    }
    if (done->snapshot_crc != snapshot::crc32(snapshot_bytes)) {
      detail = "whole-stream CRC mismatch";
      return WorkerFault::kSnapshotRejected;
    }
    snapshot::Snapshot snap;
    try {
      snap = snapshot::decode_snapshot(snapshot_bytes);
    } catch (const snapshot::SnapshotError& e) {
      detail = e.what();
      return orchestrate::classify_snapshot_error(e);
    }
    const std::string mismatch = snapshot::describe_range_mismatch(snap, meta_, job.lo, job.hi);
    if (!mismatch.empty()) {
      detail = mismatch;
      return WorkerFault::kWrongTraceRange;
    }
    for (snapshot::SnapshotShard& shard : snap.shards) {
      delivered[shard.trace_index] = std::move(shard.shard);
    }
    return WorkerFault::kNone;
  }

  void settle(const Endpoint& endpoint, Job& job, int attempt, WorkerFault fault,
              const std::string& detail, const AttemptStats& stats,
              std::map<std::uint32_t, TraceShard>&& delivered) {
    std::lock_guard<std::mutex> lock(mu_);
    if (metrics_.connects != nullptr && stats.connected) metrics_.connects->add();
    if (metrics_.bytes_rx != nullptr) metrics_.bytes_rx->add(stats.bytes_rx);
    if (metrics_.frames_rx != nullptr) metrics_.frames_rx->add(stats.frames);
    if (metrics_.heartbeats_rx != nullptr) metrics_.heartbeats_rx->add(stats.heartbeats);
    if (metrics_.chunks_rx != nullptr) metrics_.chunks_rx->add(stats.chunks);

    if (fault == WorkerFault::kNone) {
      for (auto& [index, shard] : delivered) shards_[index] = std::move(shard);
      job.state = JobState::kDone;
      if (metrics_.jobs_done != nullptr) metrics_.jobs_done->add();
      log("job %zu done on %s (attempt %d): traces [%zu, %zu)", job.index,
          endpoint.label.c_str(), attempt, job.lo, job.hi);
      return;
    }

    job.faults.push_back(fault);
    fault_counts_[fault] += 1;
    if (metrics_.faults[static_cast<std::size_t>(fault)] != nullptr) {
      metrics_.faults[static_cast<std::size_t>(fault)]->add();
    }
    if (config_.retry.should_retry(attempt)) {
      const double backoff = config_.retry.backoff_seconds(job.index, attempt);
      job.state = JobState::kRetrying;
      job.eligible_at = clock_.now() + backoff;
      if (metrics_.reconnects != nullptr) metrics_.reconnects->add();
      if (metrics_.backoff_seconds != nullptr) metrics_.backoff_seconds->add(backoff);
      log("job %zu attempt %d on %s: %s (%s); redispatch in %.3fs", job.index, attempt,
          endpoint.label.c_str(), to_string(fault), detail.c_str(), backoff);
    } else {
      job.state = JobState::kFailed;
      if (metrics_.jobs_failed != nullptr) metrics_.jobs_failed->add();
      log("job %zu FAILED after %d attempts: %s (%s); traces [%zu, %zu) will be missing",
          job.index, attempt, to_string(fault), detail.c_str(), job.lo, job.hi);
    }
  }

  orchestrate::OrchestrateResult finish() {
    orchestrate::OrchestrateResult result;
    result.spec = spec_;
    result.fault_counts = fault_counts_;
    std::vector<std::uint32_t> present;
    present.reserve(shards_.size());
    for (const auto& [index, shard] : shards_) present.push_back(index);
    result.manifest = orchestrate::manifest_for(meta_, present);
    result.complete = result.manifest.complete();

    for (const Job& job : jobs_) {
      orchestrate::JobOutcome outcome;
      outcome.index = job.index;
      outcome.lo = job.lo;
      outcome.hi = job.hi;
      outcome.state = job.state;
      outcome.attempts = job.launches;
      outcome.faults = job.faults;
      result.attempts += static_cast<std::uint64_t>(job.launches);
      result.retries += static_cast<std::uint64_t>(std::max(0, job.launches - 1));
      result.jobs.push_back(std::move(outcome));
    }

    // The deterministic fold, in trace-index order (std::map iteration) —
    // the exact path the supervisor and entrace_merge share, which is what
    // makes the clustered report byte-identical to a direct run.
    const EnterpriseModel model;
    std::vector<TraceShard> shards;
    shards.reserve(shards_.size());
    for (auto& [index, shard] : shards_) shards.push_back(std::move(shard));
    result.shards_folded = shards.size();
    result.analysis =
        fold_shards(spec_.name, std::move(shards), default_config_for_model(model.site()));
    shards_.clear();
    return result;
  }

  const ClusterConfig& config_;
  util::Clock& clock_;
  Metrics metrics_;
  DatasetSpec spec_;
  snapshot::SnapshotMeta meta_;
  std::size_t trace_count_ = 0;
  std::vector<Endpoint> endpoints_;
  std::uint16_t dead_port_ = 1;  // refuse-inject target; rebound in prepare()

  std::mutex mu_;  // guards jobs_ states, shards_, fault_counts_, metrics
  std::vector<Job> jobs_;
  std::map<std::uint32_t, TraceShard> shards_;
  orchestrate::WorkerFaultCounts fault_counts_;
};

}  // namespace

bool parse_endpoints(const std::string& spec, std::vector<std::string>& out, std::string* error) {
  out.clear();
  for (const std::string_view part : split(spec, ',')) {
    if (part.empty()) continue;
    const std::size_t colon = part.rfind(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= part.size()) {
      if (error != nullptr) *error = "endpoint '" + std::string(part) + "' is not host:port";
      return false;
    }
    char* end = nullptr;
    const std::string port_text(part.substr(colon + 1));
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (*end != '\0' || port < 1 || port > 65535) {
      if (error != nullptr) *error = "endpoint '" + std::string(part) + "' has a bad port";
      return false;
    }
    out.emplace_back(part);
  }
  if (out.empty()) {
    if (error != nullptr) *error = "no endpoints in '" + spec + "'";
    return false;
  }
  return true;
}

orchestrate::OrchestrateResult run_cluster(const ClusterConfig& config) {
  util::SystemClock system_clock;
  util::Clock& clock = config.clock != nullptr ? *config.clock : system_clock;
  return Coordinator(config, clock).run();
}

}  // namespace entrace::cluster
