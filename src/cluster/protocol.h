// The cluster wire protocol: length-prefixed, CRC-framed messages between
// the coordinator (coordinator.h) and workers (worker.h).
//
// Everything that crosses the TCP boundary is a frame:
//
//   frame := magic[4] type:u32 length:u32 payload[length] crc32:u32
//
// with the same little-endian byte discipline and CRC-32 (IEEE/zlib) as the
// .esnap format — the payload codec IS snapshot::ByteWriter/ByteReader, so
// the cluster layer inherits the snapshot layer's untrusted-input posture:
// bad magic, oversized lengths, CRC mismatches, unknown message types, and
// payload over/underruns are all rejected with a ProtocolError naming the
// absolute stream offset, never undefined behavior.  A peer is untrusted
// exactly like a snapshot file is untrusted; a corrupt frame is a
// WorkerFault (kCorruptFrame), not a crash.
//
// The message vocabulary (direction annotated):
//
//   HELLO      worker -> coordinator   version handshake on connect
//   JOB        coordinator -> worker   dataset spec + [lo, hi) trace range
//   HEARTBEAT  worker -> coordinator   liveness while analysis runs
//   SNAPSHOT   worker -> coordinator   one chunk of the .esnap byte stream
//   DONE       worker -> coordinator   total byte count + whole-stream CRC
//   ERROR      worker -> coordinator   job failed; human-readable reason
//
// FrameDecoder is deliberately incremental: feed() accepts bytes in
// whatever fragments the kernel delivers (byte-at-a-time in tests) and
// next() yields complete verified frames; "not enough bytes yet" is a
// nullopt, never an error — only structural damage throws.  TCP guarantees
// ordering, so a decoder per connection is all the reassembly needed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "snapshot/format.h"

namespace entrace::cluster {

inline constexpr std::size_t kFrameMagicSize = 4;
inline constexpr char kFrameMagic[kFrameMagicSize] = {'E', 'N', 'T', 'C'};
// magic + type + length.
inline constexpr std::size_t kFrameHeaderSize = kFrameMagicSize + 4 + 4;
inline constexpr std::size_t kFrameTrailerSize = 4;
// Frames are bounded so a hostile length field cannot make the receiver
// allocate unbounded memory; snapshot bytes above this travel as multiple
// SNAPSHOT chunks.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;
// How the worker slices the .esnap stream (well under kMaxFramePayload so
// the chunk header fits too).
inline constexpr std::size_t kSnapshotChunkSize = 128u * 1024;
// Bumped on any frame or message layout change; HELLO carries it and the
// coordinator rejects mismatches (no silent cross-version parsing).
inline constexpr std::uint32_t kProtocolVersion = 1;

enum class MsgType : std::uint32_t {
  kHello = 1,
  kJob = 2,
  kHeartbeat = 3,
  kSnapshotChunk = 4,
  kDone = 5,
  kError = 6,
};

const char* to_string(MsgType type);

// Structural damage in the byte stream (bad magic, CRC mismatch, unknown
// type, payload layout disagreement).  `offset` is the absolute stream
// offset — bytes since the connection's first byte — where it was detected.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::size_t offset, const std::string& message)
      : std::runtime_error("protocol error at stream offset " + std::to_string(offset) + ": " +
                           message),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

// A complete, CRC-verified frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

// Encode one frame (header + payload + CRC trailer), ready for send_all.
std::vector<std::uint8_t> encode_frame(MsgType type, std::span<const std::uint8_t> payload);

// Incremental frame reassembly over an ordered byte stream.
class FrameDecoder {
 public:
  // Append bytes as they arrive; any fragmentation is fine.
  void feed(const void* data, std::size_t len);

  // The next complete frame, or nullopt if more bytes are needed.  Throws
  // ProtocolError on structural damage; the decoder is unusable afterwards
  // (the caller drops the connection — there is no resynchronization).
  std::optional<Frame> next();

  // Bytes fed but not yet consumed as complete frames.
  std::size_t buffered() const { return buf_.size() - head_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;      // consumed prefix of buf_
  std::size_t consumed_ = 0;  // absolute stream offset of buf_[head_]
};

// ---- messages ---------------------------------------------------------------
//
// Each message is a struct with encode() -> complete frame bytes and a
// static decode(frame) that throws ProtocolError when the frame is not that
// message or its payload does not decode exactly.

struct HelloMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::string worker_name;

  std::vector<std::uint8_t> encode() const;
  static HelloMsg decode(const Frame& frame);
};

struct JobMsg {
  std::uint64_t job_id = 0;
  std::uint32_t attempt = 1;         // 1-based, for fault-draw reproducibility
  std::string dataset;               // dataset_by_name key
  double scale = 0.0;                // bit-exact via f64
  std::uint32_t trace_count = 0;     // traces in the FULL dataset
  std::uint32_t lo = 0;              // trace range [lo, hi)
  std::uint32_t hi = 0;
  std::uint32_t threads = 1;         // analysis threads on the worker
  std::uint32_t heartbeat_interval_ms = 0;
  std::uint8_t injected_fault = 0;   // cluster::NetInjectedFault, drawn centrally

  std::vector<std::uint8_t> encode() const;
  static JobMsg decode(const Frame& frame);
};

struct HeartbeatMsg {
  std::uint64_t job_id = 0;

  std::vector<std::uint8_t> encode() const;
  static HeartbeatMsg decode(const Frame& frame);
};

struct SnapshotChunkMsg {
  std::uint64_t job_id = 0;
  std::uint64_t offset = 0;  // byte offset of this chunk in the .esnap stream
  std::vector<std::uint8_t> bytes;

  std::vector<std::uint8_t> encode() const;
  static SnapshotChunkMsg decode(const Frame& frame);
};

struct DoneMsg {
  std::uint64_t job_id = 0;
  std::uint64_t total_bytes = 0;   // whole .esnap stream length
  std::uint32_t snapshot_crc = 0;  // crc32 over the whole stream

  std::vector<std::uint8_t> encode() const;
  static DoneMsg decode(const Frame& frame);
};

struct ErrorMsg {
  std::uint64_t job_id = 0;
  std::string message;

  std::vector<std::uint8_t> encode() const;
  static ErrorMsg decode(const Frame& frame);
};

}  // namespace entrace::cluster
