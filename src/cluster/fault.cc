#include "cluster/fault.h"

#include <cstdlib>
#include <string_view>

#include "util/rng.h"
#include "util/strings.h"

namespace entrace::cluster {

const char* to_string(NetInjectedFault fault) {
  switch (fault) {
    case NetInjectedFault::kNoInject:
      return "none";
    case NetInjectedFault::kRefuseInject:
      return "refuse";
    case NetInjectedFault::kDisconnectInject:
      return "disconnect";
    case NetInjectedFault::kCorruptFrameInject:
      return "corrupt-frame";
    case NetInjectedFault::kHangInject:
      return "hang";
    case NetInjectedFault::kNetFaultCount:
      break;
  }
  return "?";
}

orchestrate::WorkerFault expected_fault(NetInjectedFault injected) {
  switch (injected) {
    case NetInjectedFault::kRefuseInject:
      return orchestrate::WorkerFault::kConnectRefused;
    case NetInjectedFault::kDisconnectInject:
      return orchestrate::WorkerFault::kDisconnect;
    case NetInjectedFault::kCorruptFrameInject:
      return orchestrate::WorkerFault::kCorruptFrame;
    case NetInjectedFault::kHangInject:
      return orchestrate::WorkerFault::kHeartbeatTimeout;
    case NetInjectedFault::kNoInject:
    case NetInjectedFault::kNetFaultCount:
      break;
  }
  return orchestrate::WorkerFault::kNone;
}

NetInjectedFault NetFaultInjection::draw(std::uint64_t job, int attempt) const {
  if (!any() || attempt > attempt_limit) return NetInjectedFault::kNoInject;
  // Same fork-per-(job, attempt) idiom as orchestrate::FaultInjection: the
  // schedule is independent of dispatch order and endpoint count.
  Rng rng = Rng(seed).fork(job).fork(static_cast<std::uint64_t>(attempt));
  if (rng.bernoulli(refuse)) return NetInjectedFault::kRefuseInject;
  if (rng.bernoulli(disconnect)) return NetInjectedFault::kDisconnectInject;
  if (rng.bernoulli(corrupt)) return NetInjectedFault::kCorruptFrameInject;
  if (rng.bernoulli(hang)) return NetInjectedFault::kHangInject;
  return NetInjectedFault::kNoInject;
}

bool parse_net_inject_spec(const std::string& spec, NetFaultInjection& out, std::string* error) {
  for (const std::string_view part : split(spec, ',')) {
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "--net-inject entry '" + std::string(part) + "' is not key=probability";
      }
      return false;
    }
    const std::string key(part.substr(0, eq));
    const std::string value(part.substr(eq + 1));
    char* end = nullptr;
    const double p = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
      if (error != nullptr) {
        *error = "--net-inject " + key + "=" + value + " is not a probability in [0, 1]";
      }
      return false;
    }
    if (key == "refuse") {
      out.refuse = p;
    } else if (key == "disconnect") {
      out.disconnect = p;
    } else if (key == "corrupt") {
      out.corrupt = p;
    } else if (key == "hang") {
      out.hang = p;
    } else {
      if (error != nullptr) {
        *error = "--net-inject key '" + key + "' unknown (want refuse|disconnect|corrupt|hang)";
      }
      return false;
    }
  }
  return true;
}

}  // namespace entrace::cluster
