#include "cluster/protocol.h"

#include <cstring>

namespace entrace::cluster {

namespace {

using snapshot::ByteReader;
using snapshot::ByteWriter;
using snapshot::crc32;

std::uint32_t read_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

bool known_type(std::uint32_t raw) {
  return raw >= static_cast<std::uint32_t>(MsgType::kHello) &&
         raw <= static_cast<std::uint32_t>(MsgType::kError);
}

// Payload decode shares snapshot::ByteReader, whose underrun/overrun errors
// are SnapshotErrors with payload-relative offsets; remap them onto the
// protocol's error type so callers classify frame damage uniformly.
template <typename Fn>
auto decode_payload(const Frame& frame, MsgType want, Fn fn) {
  if (frame.type != want) {
    throw ProtocolError(0, std::string("expected ") + to_string(want) + " frame, got " +
                               to_string(frame.type));
  }
  ByteReader reader(frame.payload, 0);
  try {
    auto msg = fn(reader);
    reader.expect_end(to_string(want));
    return msg;
  } catch (const snapshot::SnapshotError& e) {
    throw ProtocolError(e.offset(), std::string(to_string(want)) + " payload: " + e.what());
  }
}

}  // namespace

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "HELLO";
    case MsgType::kJob:
      return "JOB";
    case MsgType::kHeartbeat:
      return "HEARTBEAT";
    case MsgType::kSnapshotChunk:
      return "SNAPSHOT";
    case MsgType::kDone:
      return "DONE";
    case MsgType::kError:
      return "ERROR";
  }
  return "?";
}

std::vector<std::uint8_t> encode_frame(MsgType type, std::span<const std::uint8_t> payload) {
  ByteWriter w;
  for (char c : kFrameMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(static_cast<std::uint32_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  std::vector<std::uint8_t> out = w.bytes();
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  return out;
}

void FrameDecoder::feed(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

std::optional<Frame> FrameDecoder::next() {
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* p = buf_.data() + head_;
  if (std::memcmp(p, kFrameMagic, kFrameMagicSize) != 0) {
    throw ProtocolError(consumed_, "bad frame magic");
  }
  const std::uint32_t raw_type = read_le32(p + kFrameMagicSize);
  const std::uint32_t length = read_le32(p + kFrameMagicSize + 4);
  if (!known_type(raw_type)) {
    throw ProtocolError(consumed_ + kFrameMagicSize,
                        "unknown frame type " + std::to_string(raw_type));
  }
  if (length > kMaxFramePayload) {
    throw ProtocolError(consumed_ + kFrameMagicSize + 4,
                        "frame payload length " + std::to_string(length) + " exceeds cap " +
                            std::to_string(kMaxFramePayload));
  }
  const std::size_t total = kFrameHeaderSize + length + kFrameTrailerSize;
  if (buffered() < total) return std::nullopt;

  const std::span<const std::uint8_t> payload(p + kFrameHeaderSize, length);
  const std::uint32_t want_crc = read_le32(p + kFrameHeaderSize + length);
  if (snapshot::crc32(payload) != want_crc) {
    throw ProtocolError(consumed_ + kFrameHeaderSize + length,
                        std::string("frame CRC mismatch on ") +
                            to_string(static_cast<MsgType>(raw_type)) + " payload");
  }

  Frame frame;
  frame.type = static_cast<MsgType>(raw_type);
  frame.payload.assign(payload.begin(), payload.end());
  head_ += total;
  consumed_ += total;
  // Compact once the consumed prefix dominates, so long snapshot streams
  // do not accrete the whole transfer in memory.
  if (head_ > (64u << 10) && head_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return frame;
}

// ---- messages ---------------------------------------------------------------

std::vector<std::uint8_t> HelloMsg::encode() const {
  ByteWriter w;
  w.u32(protocol_version);
  w.str(worker_name);
  return encode_frame(MsgType::kHello, w.bytes());
}

HelloMsg HelloMsg::decode(const Frame& frame) {
  return decode_payload(frame, MsgType::kHello, [](ByteReader& r) {
    HelloMsg msg;
    msg.protocol_version = r.u32();
    msg.worker_name = r.str();
    return msg;
  });
}

std::vector<std::uint8_t> JobMsg::encode() const {
  ByteWriter w;
  w.u64(job_id);
  w.u32(attempt);
  w.str(dataset);
  w.f64(scale);
  w.u32(trace_count);
  w.u32(lo);
  w.u32(hi);
  w.u32(threads);
  w.u32(heartbeat_interval_ms);
  w.u8(injected_fault);
  return encode_frame(MsgType::kJob, w.bytes());
}

JobMsg JobMsg::decode(const Frame& frame) {
  return decode_payload(frame, MsgType::kJob, [](ByteReader& r) {
    JobMsg msg;
    msg.job_id = r.u64();
    msg.attempt = r.u32();
    msg.dataset = r.str();
    msg.scale = r.f64();
    msg.trace_count = r.u32();
    msg.lo = r.u32();
    msg.hi = r.u32();
    msg.threads = r.u32();
    msg.heartbeat_interval_ms = r.u32();
    msg.injected_fault = r.u8();
    return msg;
  });
}

std::vector<std::uint8_t> HeartbeatMsg::encode() const {
  ByteWriter w;
  w.u64(job_id);
  return encode_frame(MsgType::kHeartbeat, w.bytes());
}

HeartbeatMsg HeartbeatMsg::decode(const Frame& frame) {
  return decode_payload(frame, MsgType::kHeartbeat, [](ByteReader& r) {
    HeartbeatMsg msg;
    msg.job_id = r.u64();
    return msg;
  });
}

std::vector<std::uint8_t> SnapshotChunkMsg::encode() const {
  ByteWriter w;
  w.u64(job_id);
  w.u64(offset);
  w.u32(static_cast<std::uint32_t>(bytes.size()));
  std::vector<std::uint8_t> payload = w.bytes();
  payload.insert(payload.end(), bytes.begin(), bytes.end());
  return encode_frame(MsgType::kSnapshotChunk, payload);
}

SnapshotChunkMsg SnapshotChunkMsg::decode(const Frame& frame) {
  // Bypasses the decode_payload helper: the trailing chunk bytes are taken
  // in bulk (not field-by-field), so the remainder check is done by hand.
  if (frame.type != MsgType::kSnapshotChunk) {
    throw ProtocolError(0, std::string("expected SNAPSHOT frame, got ") + to_string(frame.type));
  }
  SnapshotChunkMsg msg;
  std::uint32_t n = 0;
  ByteReader r(frame.payload, 0);
  try {
    msg.job_id = r.u64();
    msg.offset = r.u64();
    n = r.u32();
  } catch (const snapshot::SnapshotError& e) {
    throw ProtocolError(e.offset(), std::string("SNAPSHOT payload: ") + e.what());
  }
  if (n != r.remaining()) {
    throw ProtocolError(r.offset(), "chunk byte count " + std::to_string(n) +
                                        " disagrees with payload remainder " +
                                        std::to_string(r.remaining()));
  }
  msg.bytes.assign(frame.payload.end() - static_cast<std::ptrdiff_t>(n), frame.payload.end());
  return msg;
}

std::vector<std::uint8_t> DoneMsg::encode() const {
  ByteWriter w;
  w.u64(job_id);
  w.u64(total_bytes);
  w.u32(snapshot_crc);
  return encode_frame(MsgType::kDone, w.bytes());
}

DoneMsg DoneMsg::decode(const Frame& frame) {
  return decode_payload(frame, MsgType::kDone, [](ByteReader& r) {
    DoneMsg msg;
    msg.job_id = r.u64();
    msg.total_bytes = r.u64();
    msg.snapshot_crc = r.u32();
    return msg;
  });
}

std::vector<std::uint8_t> ErrorMsg::encode() const {
  ByteWriter w;
  w.u64(job_id);
  w.str(message);
  return encode_frame(MsgType::kError, w.bytes());
}

ErrorMsg ErrorMsg::decode(const Frame& frame) {
  return decode_payload(frame, MsgType::kError, [](ByteReader& r) {
    ErrorMsg msg;
    msg.job_id = r.u64();
    msg.message = r.str();
    return msg;
  });
}

}  // namespace entrace::cluster
