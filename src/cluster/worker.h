// WorkerServer: the worker side of the cluster protocol (protocol.h).
//
// A worker is a TCP server that sells one service: "analyze traces
// [lo, hi) of a dataset and stream back the .esnap bytes".  Per
// connection it speaks the coordinator's dialect:
//
//   accept -> send HELLO -> { recv JOB -> heartbeat while analyzing
//                              -> stream SNAPSHOT chunks -> send DONE }*
//   ... until the peer closes (or a fault injection ends the connection).
//
// The analysis runs on its own thread while the connection thread keeps
// sending HEARTBEAT frames on the JOB's requested interval, so liveness
// signaling is independent of how long the analysis takes — a loaded
// worker is slow, not dead, and the coordinator can tell the difference.
//
// The .esnap bytes are encoded in memory (SnapshotWriter's stream-sink
// mode) and chunked at kSnapshotChunkSize; DONE carries the total length
// and whole-stream CRC as the transfer's commit point, playing the role
// the atomic tmp+rename plays for on-disk snapshots.  A job the worker
// cannot run (unknown dataset, range outside the trace count) answers
// with an ERROR frame — the worker survives and serves the next job.
//
// JOB.injected_fault (cluster/fault.h, drawn centrally by the
// coordinator) makes the worker act out its own failures: drop the
// connection mid-stream, flip a bit in an outgoing frame, or go silent
// until the coordinator's heartbeat deadline gives up on us.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/net_io.h"

namespace entrace::cluster {

struct JobMsg;

struct WorkerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned; port() reports the result
  std::string name = "worker";
  // Per-event progress lines on stderr.
  bool verbose = false;
};

class WorkerServer {
 public:
  // Binds and listens on 127.0.0.1 immediately (so port() is valid before
  // serve()); throws std::runtime_error when the port cannot be bound.
  explicit WorkerServer(const WorkerConfig& config);

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  std::uint16_t port() const { return port_; }

  // Accept loop, one connection at a time, until stop().  stop() may be
  // called from another thread or a signal handler; serve() notices within
  // one 100 ms poll tick.
  void serve();

  // Accept and fully serve at most one connection; false when none arrived
  // within `timeout_ms`.  Tests and --once use this.
  bool serve_one(int timeout_ms);

  void stop() { stopping_.store(true, std::memory_order_release); }
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

 private:
  void handle_connection(int fd);
  // Run one JOB on `fd`; false when the connection should close (peer gone
  // or a fault injection ended it).
  bool handle_job(int fd, const JobMsg& job);

  WorkerConfig config_;
  util::ScopedFd listen_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
};

}  // namespace entrace::cluster
