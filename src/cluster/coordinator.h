// Coordinator: the dispatch side of the cluster protocol — host-level
// sharding with the same contract the process-level supervisor
// (orchestrate/supervisor.h) established.
//
// The dataset's traces are partitioned into M jobs exactly as the
// supervisor partitions them (lo = n*i/M, hi = n*(i+1)/M), and one
// dispatch thread per endpoint pulls eligible jobs from a shared queue:
//
//   pending ──dispatch──> running ──validated snapshot──> done
//      ^                     │
//      │                     ├─ connect-refused / disconnect / corrupt
//      │                     │  frame / heartbeat timeout / rejected or
//      │                     │  truncated snapshot / wrong range / ERROR
//      │                     v
//      └──backoff────── retrying ──budget exhausted──> failed
//
// A failed attempt's range goes back in the queue and is picked up by
// whichever endpoint frees up first — reassignment away from a dead or
// hung worker falls out of the queue discipline.  Liveness is judged by
// the heartbeat deadline: ANY frame from the worker (heartbeat, chunk,
// DONE) refreshes it, so a worker mid-transfer is never "hung".
//
// Snapshots are validated and decoded incrementally as each DONE arrives
// (no barrier on all N workers); the terminal fold runs in trace-index
// order over the accumulated shards — the exact fold_shards path the
// supervisor and entrace_merge share — so for any endpoint count, fault
// schedule, and arrival order in which every range eventually succeeds,
// render_report(run_cluster(...)) is byte-identical to a direct
// single-process run.  Exhausted budgets degrade to the CoverageManifest
// + PARTIAL banner, never a crash or a torn fold.
//
// A worker's bytes are never trusted: DONE means nothing until the
// whole-stream CRC matches, the snapshot decodes (untrusted-input
// reader), and describe_range_mismatch confirms the exact slice.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/fault.h"
#include "obs/metrics.h"
#include "orchestrate/supervisor.h"
#include "util/retry.h"

namespace entrace::cluster {

struct ClusterConfig {
  std::string dataset = "D0";
  double scale = 0.01;
  // Worker endpoints, "host:port".  At least one is required.
  std::vector<std::string> endpoints;
  // Trace-range partitions.  0 = one job per endpoint.  Clamped to the
  // trace count (a job always covers at least one trace).
  std::size_t jobs = 0;
  // --threads requested from each worker's analysis.
  std::size_t shard_threads = 1;
  // Per-job attempt budget + backoff schedule (seeded, deterministic).
  util::RetryPolicy retry;
  // Seconds to establish a connection before the attempt counts as
  // connect-refused.
  double connect_timeout = 2.0;
  // Heartbeat cadence requested from workers, and how long the coordinator
  // waits without receiving ANY frame before declaring the worker hung.
  double heartbeat_interval = 0.1;
  double heartbeat_deadline = 5.0;
  // Deterministic network-fault harness (off by default).
  NetFaultInjection inject;
  // nullptr = a real monotonic clock (used for backoff scheduling; the
  // heartbeat deadline always runs on real time because it judges a real
  // network peer).
  util::Clock* clock = nullptr;
  // cluster.* telemetry (timing class).  Optional.
  obs::Registry* metrics = nullptr;
  // Per-event progress lines on stderr.
  bool verbose = false;
};

// Split "host:port,host:port,..." into an endpoint list.  False with
// *error set when an entry has no port or the port does not parse.
bool parse_endpoints(const std::string& spec, std::vector<std::string>& out, std::string* error);

// Run the cluster dispatch loop to completion.  Throws std::runtime_error
// only for configuration errors (no endpoints, empty dataset); network and
// worker failures never throw — they end in the manifest.  The result type
// is the supervisor's, so orchestrate::render_report renders it with the
// identical complete/PARTIAL semantics.
orchestrate::OrchestrateResult run_cluster(const ClusterConfig& config);

}  // namespace entrace::cluster
