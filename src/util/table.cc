#include "util/table.h"

#include <algorithm>

namespace entrace {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void TextTable::add_rule() { rows_.emplace_back(); }

std::string TextTable::render() const {
  // Compute column widths across header and all rows.
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += "| ";
      line += cell;
      line.append(widths[i] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  auto rule = [&widths]() {
    std::string line;
    for (std::size_t w : widths) {
      line += "+";
      line.append(w + 2, '-');
    }
    line += "+\n";
    return line;
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += render_row(header_);
    out += rule();
  }
  for (const auto& r : rows_) {
    if (r.empty()) {
      out += rule();
    } else {
      out += render_row(r);
    }
  }
  out += rule();
  return out;
}

}  // namespace entrace
