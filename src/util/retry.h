// Retry scheduling for supervised workers: a seeded-jitter exponential
// backoff policy against the util/clock.h abstraction, which makes
// supervision code testable without sleeping.
//
// The policy is a pure function of (seed, job, attempt): the delay before
// retrying job J after its A-th failed attempt is the same on every run and
// on every machine, which keeps orchestrated runs reproducible — a property
// the rest of the pipeline (dataset generation, fault injection, shard
// folds) already guarantees, and which the supervisor's determinism
// contract depends on.  Jitter is still real jitter *across jobs*: each
// (job, attempt) pair draws from its own forked Rng stream, so a fleet of
// failed workers does not retry in lockstep.
#pragma once

#include <cstdint>

#include "util/clock.h"

namespace entrace::util {

// Exponential backoff with bounded multiplicative jitter and a per-job
// attempt budget.  `max_attempts` counts every launch of the job including
// the first, so max_attempts = 1 means "no retries".
struct RetryPolicy {
  int max_attempts = 3;
  double base_delay = 0.05;  // seconds before the first retry (pre-jitter)
  double multiplier = 2.0;   // growth per additional failed attempt
  double max_delay = 5.0;    // pre-jitter ceiling
  double jitter = 0.5;       // delay *= uniform[1 - jitter/2, 1 + jitter/2)
  std::uint64_t seed = 0x5eed;

  // True when a job that has failed `failed_attempts` times may launch again.
  bool should_retry(int failed_attempts) const { return failed_attempts < max_attempts; }

  // Seconds to wait before retrying `job` after its `failed_attempts`-th
  // consecutive failure (failed_attempts >= 1).  Deterministic per
  // (seed, job, failed_attempts); never negative.
  double backoff_seconds(std::uint64_t job, int failed_attempts) const;
};

}  // namespace entrace::util
