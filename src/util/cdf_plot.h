// Text rendering of empirical CDFs — the reproduction of the paper's
// figures.  Each figure bench prints one CdfPlot with one line per series
// (e.g. "ent:D0", "wan:D3"), sampling the CDF at log- or linear-spaced
// x positions, exactly the axes the paper uses.
#pragma once

#include <string>
#include <vector>

#include "util/stats.h"

namespace entrace {

struct CdfSeries {
  std::string label;
  const EmpiricalCdf* cdf = nullptr;
};

class CdfPlot {
 public:
  CdfPlot(std::string title, std::string x_label, bool log_x);

  void add_series(std::string label, const EmpiricalCdf& cdf);

  // Render a table of CDF values at sampled x positions plus a summary
  // (N, median, p90) per series.
  std::string render(int num_points = 9) const;

  // Render an ASCII-art plot (rows = fraction, cols = x position).
  std::string render_ascii(int width = 64, int height = 16) const;

 private:
  std::vector<double> x_positions(int num_points) const;

  std::string title_;
  std::string x_label_;
  bool log_x_;
  std::vector<CdfSeries> series_;
};

}  // namespace entrace
