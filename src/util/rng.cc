#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace entrace {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t stream_id) {
  // Mix the stream id into a fresh seed drawn from this generator so that
  // forked streams are decorrelated but deterministic.
  std::uint64_t base = next_u64();
  std::uint64_t x = base ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Rng(splitmix64(x));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next_u64();  // full 64-bit range
  // Rejection-free multiply-shift; bias is negligible for our ranges but we
  // use Lemire's method to keep it exact for small ranges.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto lo128 = static_cast<std::uint64_t>(m);
  if (lo128 < range) {
    const std::uint64_t threshold = -range % range;
    while (lo128 < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      lo128 = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double lo, double hi) {
  // Inverse-CDF sampling of a bounded Pareto.
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::normal(double mu, double sigma) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * r * std::cos(2.0 * std::numbers::pi * u2);
}

namespace {

// Cached harmonic CDF for Rng::zipf.  The sampled rank is a pure function
// of (u, n, s), so memoizing the table across calls cannot change any draw;
// cdf[i] reproduces the exact accumulation order of the original linear
// walk (term/norm added one rank at a time), keeping results bit-identical.
// Thread-local because trace generation runs concurrently on producer
// threads and analysis workers; the handful of (n, s) pairs the generators
// use build once per thread.
struct ZipfCdfCache {
  std::size_t n = 0;
  double s = 0.0;
  std::vector<double> cdf;
};

}  // namespace

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n <= 1) return 0;
  // One uniform draw per call, exactly like the original implementation.
  const double u = uniform();
  thread_local std::vector<ZipfCdfCache> cache;
  const ZipfCdfCache* table = nullptr;
  for (const ZipfCdfCache& e : cache) {
    if (e.n == n && e.s == s) {
      table = &e;
      break;
    }
  }
  if (table == nullptr) {
    if (cache.size() >= 16) cache.clear();  // generators use only a few shapes
    ZipfCdfCache e;
    e.n = n;
    e.s = s;
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      norm += 1.0 / std::pow(static_cast<double>(i + 1), s);
    }
    e.cdf.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s) / norm;
      e.cdf[i] = acc;
    }
    cache.push_back(std::move(e));
    table = &cache.back();
  }
  // First rank with u < cdf[rank] — the first-hit condition of the walk.
  const auto it = std::upper_bound(table->cdf.begin(), table->cdf.end(), u);
  if (it == table->cdf.end()) return n - 1;
  return static_cast<std::size_t>(it - table->cdf.begin());
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0.0;
  if (total <= 0.0) return weights.empty() ? 0 : weights.size() - 1;
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0.0;
    if (u < w) return i;
    u -= w;
  }
  return weights.size() - 1;
}

std::size_t Rng::weighted(std::initializer_list<double> weights) {
  return weighted(std::span<const double>(weights.begin(), weights.size()));
}

std::size_t Rng::index(std::size_t n) { return static_cast<std::size_t>(uniform_int(0, n - 1)); }

ZipfDist::ZipfDist(std::size_t n, double s) {
  cdf_.reserve(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_.push_back(acc);
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfDist::sample(Rng& rng) const {
  if (cdf_.empty()) return 0;
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace entrace
