#include "util/clock.h"

#include <chrono>
#include <thread>

namespace entrace::util {

double SystemClock::now() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::sleep(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace entrace::util
