#include "util/net_io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace entrace::util {

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool send_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

long recv_some(int fd, void* buf, std::size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

int poll_in(int fd, int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready >= 0) return ready > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - clock::now()).count();
    if (left <= 0) return 0;
    timeout_ms = static_cast<int>(left);
  }
}

ScopedFd tcp_listen(std::uint16_t port, std::uint16_t* bound_port, std::string* error,
                    int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = std::string("socket() failed: ") + std::strerror(errno);
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "bind 127.0.0.1:" + std::to_string(port) + " failed: " + std::strerror(errno);
    }
    return {};
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error != nullptr) *error = std::string("listen() failed: ") + std::strerror(errno);
    return {};
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    ::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len);
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

ScopedFd tcp_connect(const std::string& host, std::uint16_t port, double timeout_seconds,
                     std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string literal = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, literal.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "cannot parse host '" + host + "' as an IPv4 address";
    return {};
  }

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = std::string("socket() failed: ") + std::strerror(errno);
    return {};
  }
  // Nonblocking connect + poll: a dead or unroutable endpoint costs
  // `timeout_seconds`, never an uninterruptible kernel default.
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);

  const int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(errno);
    }
    return {};
  }
  if (rc != 0) {
    pollfd pfd{fd.get(), POLLOUT, 0};
    int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
    if (timeout_ms < 1) timeout_ms = 1;
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) {
      if (error != nullptr) {
        *error = "connect " + host + ":" + std::to_string(port) + ": timed out after " +
                 std::to_string(timeout_seconds) + "s";
      }
      return {};
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      if (error != nullptr) {
        *error = "connect " + host + ":" + std::to_string(port) + ": " + std::strerror(soerr);
      }
      return {};
    }
  }
  ::fcntl(fd.get(), F_SETFL, flags);
  return fd;
}

}  // namespace entrace::util
