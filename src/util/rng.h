// Deterministic pseudo-random number generation and the heavy-tailed
// distributions used throughout the synthetic trace generator.
//
// Determinism matters for this project: every dataset (D0..D4) is generated
// from a fixed seed so that tests and benchmark tables are exactly
// reproducible across runs and machines.  We therefore implement our own
// small generator (splitmix64 seeded xoshiro256**) instead of relying on
// std::mt19937 + std::distributions, whose results are not guaranteed to be
// identical across standard library implementations.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace entrace {

// xoshiro256** 1.0 — fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derive an independent child generator; used to give each subnet /
  // session its own stream so adding traffic to one application does not
  // perturb another.
  Rng fork(std::uint64_t stream_id);

  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  bool bernoulli(double p);

  // Exponential with the given mean (NOT rate).  mean must be > 0.
  double exponential(double mean);

  // Bounded Pareto on [lo, hi] with shape alpha.  Classic model for
  // heavy-tailed flow/object sizes (Barford & Crovella).
  double pareto(double alpha, double lo, double hi);

  // Log-normal given the mean and sigma of the underlying normal.
  double lognormal(double mu, double sigma);

  // Standard normal via Box-Muller.
  double normal(double mu, double sigma);

  // Zipf-like rank selection: returns rank in [0, n) with P(r) ~ 1/(r+1)^s.
  // Used for server/object popularity.
  std::size_t zipf(std::size_t n, double s);

  // Pick an index according to the given non-negative weights.
  // Returns weights.size() - 1 if all weights are zero.
  std::size_t weighted(std::span<const double> weights);
  std::size_t weighted(std::initializer_list<double> weights);

  // Pick a uniformly random element index of a container of size n (n > 0).
  std::size_t index(std::size_t n);

 private:
  std::uint64_t s_[4];
};

// Zipf sampler with a precomputed CDF — O(log n) per sample.  Prefer this
// over Rng::zipf (which recomputes the normalization) in hot loops such as
// server-popularity selection in the trace generator.
class ZipfDist {
 public:
  ZipfDist(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace entrace
