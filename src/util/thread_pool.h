// A small fixed-size worker pool for trace-level parallelism.
//
// The paper's datasets are sets of independently captured per-subnet
// traces, so the analysis pipeline shards naturally: one job per trace,
// private per-shard state, deterministic fold on the caller's thread.
// ThreadPool is the scheduling half of that pattern.
//
// Sizing: an explicit count, or env_thread_count() which honours the
// ENTRACE_THREADS environment variable and falls back to
// hardware_concurrency.  A pool of 0 or 1 threads spawns no workers at
// all and runs every task inline on the submitting thread — the serial
// path and the parallel path are the same code, which is what makes the
// ENTRACE_THREADS=1 vs =N determinism guarantee testable.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace entrace {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of threads that execute tasks (1 in inline mode).
  std::size_t thread_count() const { return workers_.empty() ? 1 : workers_.size(); }

  // Scheduling telemetry, updated under the pool mutex (uncontended in
  // inline mode).  Plain data — the analyzer copies it into its `pool.*`
  // timing metrics, keeping util free of any obs dependency.
  struct Stats {
    std::uint64_t tasks = 0;          // tasks completed
    std::size_t max_queue_depth = 0;  // high-water mark of queued tasks
    double busy_seconds = 0.0;        // summed task execution wall-clock
    double max_task_seconds = 0.0;    // slowest single task
  };
  Stats stats() const;

  // Schedule fn and return a future for its result.  Exceptions thrown by
  // fn surface from future::get().  In inline mode the task runs before
  // submit() returns.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      (*task)();
      record_task(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
      stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    }
    cv_.notify_one();
    return future;
  }

  // Run fn(0) .. fn(n-1) across the pool and wait for all of them.  If any
  // invocation throws, every task still runs to completion and then the
  // exception from the lowest index is rethrown (deterministic regardless
  // of scheduling).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  // ENTRACE_THREADS if set to a positive integer, else
  // std::thread::hardware_concurrency (at least 1).
  static std::size_t env_thread_count();

 private:
  void worker_loop();
  void record_task(double seconds);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace entrace
