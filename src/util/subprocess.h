// Minimal subprocess supervision: fork/exec a child, poll or wait for its
// exit status, and kill it when a wall-clock deadline expires.
//
// This is the process-level analogue of ThreadPool: the orchestration layer
// (src/orchestrate) dispatches entrace_shard workers through it and needs
// exactly three things a popen()-style API does not give — non-blocking
// status polls so one supervisor thread can multiplex N children, the
// distinction between "exited with code" and "died on signal" (a crashed
// worker and a deadline kill are different faults), and a kill that cannot
// leak a zombie.  stdout/stderr are inherited; workers talk to the
// supervisor through files (.esnap snapshots), not pipes.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace entrace::util {

// How a child ended.  Exactly one of exited/signaled is true once the
// process has been reaped.
struct ExitStatus {
  bool exited = false;    // normal termination
  int exit_code = -1;     // valid when exited
  bool signaled = false;  // killed by a signal
  int term_signal = 0;    // valid when signaled

  bool success() const { return exited && exit_code == 0; }
};

class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();  // kills and reaps a still-running child (no zombies)

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  // fork + execv of argv (argv[0] is the binary path).  Throws
  // std::runtime_error when fork itself fails; an exec failure in the child
  // surfaces as exit code 127 (the shell convention), not an exception.
  static Subprocess spawn(const std::vector<std::string>& argv);

  // Non-blocking reap: the child's status if it has exited, std::nullopt
  // while it is still running.  Idempotent after the child is reaped.
  std::optional<ExitStatus> poll();

  // Blocking reap.
  ExitStatus wait();

  // Poll until the child exits or `seconds` of wall clock elapse
  // (std::nullopt on timeout; the child keeps running).
  std::optional<ExitStatus> wait_for(double seconds);

  // SIGKILL + blocking reap.  Safe to call on an already-exited child (the
  // original exit status is returned).
  ExitStatus kill_and_wait();

  bool running();
  int pid() const { return pid_; }

 private:
  int pid_ = -1;
  std::optional<ExitStatus> status_;
};

}  // namespace entrace::util
