// ASCII table rendering for benchmark / report output.
//
// Every bench binary reproduces one of the paper's tables; TextTable renders
// them aligned with a header rule so the output can be diffed against
// EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace entrace {

class TextTable {
 public:
  explicit TextTable(std::string title = "");

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  // Horizontal separator row.
  void add_rule();

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  // Empty vector encodes a rule.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace entrace
