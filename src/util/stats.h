// Streaming and empirical statistics used by every analysis module.
//
// The paper reports two kinds of statistical summaries: scalar aggregates
// (counts, fractions, medians) and empirical CDFs (the bulk of its figures).
// OnlineStats gives O(1)-memory scalar aggregates; EmpiricalCdf stores the
// samples and answers quantile / fraction-below queries, and can be rendered
// as a text figure by cdf_plot.h.
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace entrace {

// Welford online mean/variance plus min/max.  No samples retained.
//
// Variance convention: *population* variance (divisor n, not n-1).  The
// pipeline measures complete traces, not samples drawn from a larger
// population, so the biased-sample correction would be wrong here; this
// matches the merge() formula (Chan et al.), which combines population
// moments exactly.  Edge cases: n=0 and n=1 both report variance 0.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance (see class comment)
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  // Merge another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Retains samples; sorts lazily on first query.
//
// Thread safety: add()/add_n() require exclusive access (like any mutable
// container), but all const accessors are safe to call concurrently — the
// lazy sort uses double-checked locking (atomic `sorted_` flag + internal
// mutex), so many reader threads querying the same frozen CDF never race.
// Previously ensure_sorted() mutated `samples_` unguarded from const
// methods, a genuine data race under concurrent report rendering; the TSan
// regression lives in tests/telemetry_test.cc.
//
// Quantile convention (pinned by tests/util_test.cc):
//   - empty CDF        -> quantile/min/max/mean all return 0.0
//   - one sample       -> every quantile returns that sample
//   - q outside [0,1]  -> clamped
//   - otherwise        -> linear interpolation between adjacent order
//                         statistics at rank q*(n-1) (type-7 / NumPy
//                         default), so quantile(0) == min, quantile(1) == max.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  EmpiricalCdf(const EmpiricalCdf& other);
  EmpiricalCdf(EmpiricalCdf&& other) noexcept;
  EmpiricalCdf& operator=(const EmpiricalCdf& other);
  EmpiricalCdf& operator=(EmpiricalCdf&& other) noexcept;

  void add(double x);
  void add_n(double x, std::size_t n);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Quantile in [0, 1]; q=0.5 is the median.  Returns 0 for empty CDFs.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  double min() const;
  double max() const;
  double mean() const;

  // Fraction of samples <= x.
  double fraction_below(double x) const;

  // Evaluate the CDF at the given x positions (for plotting/comparison).
  std::vector<double> evaluate(std::span<const double> xs) const;

  // Access to the sorted samples.
  const std::vector<double>& sorted() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable std::atomic<bool> sorted_{false};
  mutable std::mutex sort_mu_;
};

// Counter keyed by string — used for "breakdown" tables (command mixes,
// content types, request types ...).  Tracks both an event count and a
// byte-volume per key, since nearly every paper table reports both.
class BreakdownCounter {
 public:
  void add(const std::string& key, std::uint64_t count = 1, std::uint64_t bytes = 0);

  std::uint64_t count(const std::string& key) const;
  std::uint64_t bytes(const std::string& key) const;
  std::uint64_t total_count() const { return total_count_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

  double count_fraction(const std::string& key) const;
  double bytes_fraction(const std::string& key) const;

  // Keys sorted by descending count.
  std::vector<std::string> keys_by_count() const;

  const std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> entries_;
  std::uint64_t total_count_ = 0;
  std::uint64_t total_bytes_ = 0;
};

// Fixed-width time-series binning: accumulates a value (e.g. bits) into
// interval bins; used by the §6 utilization analysis at 1 s / 10 s / 60 s.
class IntervalSeries {
 public:
  explicit IntervalSeries(double bin_width);

  // Copy/move must not carry the hot-bin cache across: the cached slot
  // points into *this* object's map nodes (stable under insert, but a
  // copied map owns different nodes).
  IntervalSeries(const IntervalSeries& other)
      : bin_width_(other.bin_width_),
        first_bin_(other.first_bin_),
        last_bin_(other.last_bin_),
        bins_(other.bins_) {}
  IntervalSeries(IntervalSeries&& other) noexcept
      : bin_width_(other.bin_width_),
        first_bin_(other.first_bin_),
        last_bin_(other.last_bin_),
        bins_(std::move(other.bins_)) {
    other.invalidate_cache();
  }
  IntervalSeries& operator=(const IntervalSeries& other) {
    bin_width_ = other.bin_width_;
    first_bin_ = other.first_bin_;
    last_bin_ = other.last_bin_;
    bins_ = other.bins_;
    invalidate_cache();
    return *this;
  }
  IntervalSeries& operator=(IntervalSeries&& other) noexcept {
    bin_width_ = other.bin_width_;
    first_bin_ = other.first_bin_;
    last_bin_ = other.last_bin_;
    bins_ = std::move(other.bins_);
    invalidate_cache();
    other.invalidate_cache();
    return *this;
  }

  // Hot path inlined: repeated adds to the same bin (the common case — the
  // per-packet utilization series advances through bins monotonically) cost
  // one divide, one floor and one pointer add, no map lookup.
  void add(double t, double value) {
    const auto bin = static_cast<std::int64_t>(std::floor(t / bin_width_));
    if (cached_slot_ != nullptr && cached_bin_ == bin) {
      *cached_slot_ += value;
      return;
    }
    add_new_bin(bin, value);
  }

  // Fold another series of the same bin width into this one (bins sum;
  // the covered range is the union of both ranges).
  void merge(const IntervalSeries& other);

  double bin_width() const { return bin_width_; }
  // Values of all bins between the first and last seen timestamps,
  // including empty (zero) bins.
  std::vector<double> values() const;
  bool empty() const { return bins_.empty(); }

  // Snapshot support (src/snapshot): the raw sparse bins, and exact
  // reconstruction from them.  first/last follow from the key range —
  // add() and merge() keep them at the min/max populated bin.
  const std::map<std::int64_t, double>& bins() const { return bins_; }
  void restore_bins(std::map<std::int64_t, double> bins) {
    bins_ = std::move(bins);
    invalidate_cache();
    if (!bins_.empty()) {
      first_bin_ = bins_.begin()->first;
      last_bin_ = bins_.rbegin()->first;
    }
  }

 private:
  void invalidate_cache() { cached_slot_ = nullptr; }
  // Cold path of add(): first touch of a bin (range update + map insert).
  void add_new_bin(std::int64_t bin, double value);

  double bin_width_;
  std::int64_t first_bin_ = 0;
  std::int64_t last_bin_ = 0;
  std::map<std::int64_t, double> bins_;
  // Hot-bin cache: traffic timestamps are near-monotone, so consecutive
  // add() calls overwhelmingly hit the same bin.  Map nodes are
  // pointer-stable under insert, so the slot stays valid until the map
  // itself is replaced (copy/move/restore reset it).
  std::int64_t cached_bin_ = 0;
  double* cached_slot_ = nullptr;
};

}  // namespace entrace
