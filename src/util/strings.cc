#include "util/strings.h"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace entrace {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with_icase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  char buf[48];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string format_pct(double fraction) {
  const double pct = fraction * 100.0;
  char buf[32];
  if (pct != 0.0 && std::fabs(pct) < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f%%", pct);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f%%", pct);
  }
  return buf;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace entrace
