#include "util/cdf_plot.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"
#include "util/table.h"

namespace entrace {

CdfPlot::CdfPlot(std::string title, std::string x_label, bool log_x)
    : title_(std::move(title)), x_label_(std::move(x_label)), log_x_(log_x) {}

void CdfPlot::add_series(std::string label, const EmpiricalCdf& cdf) {
  series_.push_back({std::move(label), &cdf});
}

std::vector<double> CdfPlot::x_positions(int num_points) const {
  double lo = 0.0, hi = 1.0;
  bool first = true;
  for (const auto& s : series_) {
    if (s.cdf->empty()) continue;
    if (first) {
      lo = s.cdf->min();
      hi = s.cdf->max();
      first = false;
    } else {
      lo = std::min(lo, s.cdf->min());
      hi = std::max(hi, s.cdf->max());
    }
  }
  std::vector<double> xs;
  if (first || num_points <= 1) return xs;
  if (log_x_) {
    lo = std::max(lo, 1e-6);
    hi = std::max(hi, lo * 1.0001);
    const double llo = std::log10(lo), lhi = std::log10(hi);
    for (int i = 0; i < num_points; ++i) {
      xs.push_back(std::pow(10.0, llo + (lhi - llo) * i / (num_points - 1)));
    }
  } else {
    for (int i = 0; i < num_points; ++i) {
      xs.push_back(lo + (hi - lo) * i / (num_points - 1));
    }
  }
  return xs;
}

std::string CdfPlot::render(int num_points) const {
  const std::vector<double> xs = x_positions(num_points);
  TextTable table(title_ + "  (x = " + x_label_ + ")");
  std::vector<std::string> header = {"series", "N", "median", "p90"};
  for (double x : xs) {
    header.push_back(x >= 1000 || (x > 0 && x < 0.01) ? format_double(x, 0)
                                                      : format_double(x, 2));
  }
  table.set_header(std::move(header));
  for (const auto& s : series_) {
    std::vector<std::string> row = {s.label, std::to_string(s.cdf->count()),
                                    format_double(s.cdf->median(), 3),
                                    format_double(s.cdf->quantile(0.9), 3)};
    for (double x : xs) row.push_back(format_double(s.cdf->fraction_below(x), 2));
    table.add_row(std::move(row));
  }
  return table.render();
}

std::string CdfPlot::render_ascii(int width, int height) const {
  const std::vector<double> xs = x_positions(width);
  if (xs.empty()) return title_ + ": (no data)\n";
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  static constexpr char kMarks[] = "*o+x#@%&";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const auto& s = series_[si];
    if (s.cdf->empty()) continue;
    const char mark = kMarks[si % (sizeof(kMarks) - 1)];
    for (int col = 0; col < width; ++col) {
      const double f = s.cdf->fraction_below(xs[static_cast<std::size_t>(col)]);
      int row = static_cast<int>(std::round((1.0 - f) * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }
  std::string out = title_ + "\n";
  for (int r = 0; r < height; ++r) {
    const double frac = 1.0 - static_cast<double>(r) / (height - 1);
    out += format_double(frac, 2) + " |" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += "      +" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  out += "       " + x_label_ + (log_x_ ? " (log scale " : " (") +
         format_double(xs.front(), 2) + " .. " + format_double(xs.back(), 2) + ")\n";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out += "       ";
    out += kMarks[si % (sizeof(kMarks) - 1)];
    out += " = " + series_[si].label + " (N=" + std::to_string(series_[si].cdf->count()) + ")\n";
  }
  return out;
}

}  // namespace entrace
