// Shared command-line/environment parsing for the bench scaffolding, the
// examples, and the snapshot tools — one place for the "[D0..D4] [scale]"
// positional convention and the ENTRACE_* numeric knobs that used to be
// re-implemented per binary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace entrace::cli {

// ENTRACE_SCALE, falling back to `fallback` when unset or non-positive.
double env_scale(double fallback = 0.02);
// Positive integer/double environment knobs (ENTRACE_BENCH_REPS, ...).
int env_int(const char* name, int fallback);
double env_double(const char* name, double fallback);

// True for the five paper dataset names D0..D4 (case-sensitive, as
// dataset_by_name expects them).
bool is_dataset_name(const std::string& s);
// Strict positive-double parse ("0.01"); false on garbage or <= 0.
bool parse_scale(const std::string& s, double& out);
// Strict non-negative integer parse ("42"); false on a sign, garbage,
// trailing characters, or overflow.  The flag-hardening parser: unlike
// std::atoi it cannot turn "--retain -1" into SIZE_MAX or "--retain x"
// into 0.
bool parse_uint(const std::string& s, std::uint64_t& out);
// Strict non-negative double parse ("0", "1.5"); false on garbage or < 0.
bool parse_nonneg_double(const std::string& s, double& out);
// "lo:hi" half-open index range; false unless lo < hi parse cleanly.
bool parse_index_range(const std::string& s, std::size_t& lo, std::size_t& hi);

// The positional "[D0..D4] [scale]" dataset selection: consume up to two
// leading positionals from `args` (either may be omitted; order is name
// then scale).  Returns the number of positionals consumed, or -1 with
// *error set when a positional parses as neither.
struct DatasetArgs {
  std::string name = "D3";
  double scale = 0.02;
};
int parse_dataset_args(std::span<const char* const> args, DatasetArgs& out, std::string* error);

}  // namespace entrace::cli
