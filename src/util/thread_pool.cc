#include "util/thread_pool.h"

#include <cstdlib>

namespace entrace {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();  // packaged_task: exceptions are captured into the future
    record_task(std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
  }
}

void ThreadPool::record_task(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.tasks;
  stats_.busy_seconds += seconds;
  stats_.max_task_seconds = std::max(stats_.max_task_seconds, seconds);
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  // Wait for everything first so no task still references fn (or captured
  // state) when we unwind, then rethrow from the lowest failing index.
  for (auto& f : futures) f.wait();
  for (auto& f : futures) f.get();
}

std::size_t ThreadPool::env_thread_count() {
  if (const char* s = std::getenv("ENTRACE_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end != s && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace entrace
