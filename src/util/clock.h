// Clock abstraction shared by everything that schedules against wall time:
// retry/backoff supervision (util/retry.h), paced trace replay
// (pcap/replay.h) and the entrace_daemon event loop.
//
// Code that takes a Clock& is testable without sleeping: FakeClock::sleep
// advances a counter instantly, so pacing and timeout schedules can be
// unit-tested in microseconds while production code runs against the
// steady-clock-backed SystemClock.
#pragma once

namespace entrace::util {

// Monotonic seconds + sleep, virtual so tests can substitute a fake that
// advances instantly.  `now()` has an arbitrary epoch; only differences
// are meaningful.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() = 0;
  virtual void sleep(double seconds) = 0;
};

// std::chrono::steady_clock-backed implementation used outside tests.
class SystemClock final : public Clock {
 public:
  double now() override;
  void sleep(double seconds) override;
};

// Test clock: now() is a plain counter and sleep() advances it without
// blocking, so retry/backoff and replay-pacing schedules can be unit-tested
// in microseconds.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(double start = 0.0) : now_(start) {}
  double now() override { return now_; }
  void sleep(double seconds) override {
    if (seconds > 0) now_ += seconds;
  }
  void advance(double seconds) { now_ += seconds; }

 private:
  double now_;
};

}  // namespace entrace::util
