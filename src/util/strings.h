// Small string helpers shared by parsers and report formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace entrace {

std::vector<std::string_view> split(std::string_view s, char delim);

// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

bool starts_with_icase(std::string_view s, std::string_view prefix);

// "13.12 GB", "64.7M", "443 B" — human-readable magnitudes as the paper
// prints them.
std::string format_bytes(std::uint64_t bytes);
std::string format_count(std::uint64_t n);

// "66%", "0.2%" — fraction rendered as the paper's percentage style.
std::string format_pct(double fraction);

// Fixed-precision double.
std::string format_double(double v, int precision);

}  // namespace entrace
