#include "util/retry.h"

#include "util/rng.h"

namespace entrace::util {

double RetryPolicy::backoff_seconds(std::uint64_t job, int failed_attempts) const {
  if (failed_attempts < 1) failed_attempts = 1;
  double delay = base_delay;
  for (int i = 1; i < failed_attempts && delay < max_delay; ++i) delay *= multiplier;
  if (delay > max_delay) delay = max_delay;
  if (jitter > 0) {
    // One Rng stream per (job, attempt): forked streams are independent, so
    // the jitter a job draws never depends on how many other jobs retried.
    Rng rng = Rng(seed).fork(job).fork(static_cast<std::uint64_t>(failed_attempts));
    delay *= rng.uniform(1.0 - jitter / 2.0, 1.0 + jitter / 2.0);
  }
  return delay > 0 ? delay : 0.0;
}

}  // namespace entrace::util
