#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace entrace {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  // Population variance (divisor n); see the convention note in stats.h.
  if (n_ == 0) return 0.0;
  const double v = m2_ / static_cast<double>(n_);
  // Floating-point cancellation can leave m2_ a hair below zero.
  return v > 0.0 ? v : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

EmpiricalCdf::EmpiricalCdf(const EmpiricalCdf& other) {
  std::lock_guard<std::mutex> lk(other.sort_mu_);
  samples_ = other.samples_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

EmpiricalCdf::EmpiricalCdf(EmpiricalCdf&& other) noexcept {
  std::lock_guard<std::mutex> lk(other.sort_mu_);
  samples_ = std::move(other.samples_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

EmpiricalCdf& EmpiricalCdf::operator=(const EmpiricalCdf& other) {
  if (this == &other) return *this;
  std::scoped_lock lk(sort_mu_, other.sort_mu_);
  samples_ = other.samples_;
  sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

EmpiricalCdf& EmpiricalCdf::operator=(EmpiricalCdf&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lk(sort_mu_, other.sort_mu_);
  samples_ = std::move(other.samples_);
  sorted_.store(other.sorted_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_.store(false, std::memory_order_relaxed);
}

void EmpiricalCdf::add_n(double x, std::size_t n) {
  samples_.insert(samples_.end(), n, x);
  sorted_.store(false, std::memory_order_relaxed);
}

// Double-checked lazy sort: concurrent const readers are common once report
// code fans out across datasets, so the sort must happen exactly once and
// later readers must observe the sorted vector (release/acquire pairing).
void EmpiricalCdf::ensure_sorted() const {
  if (sorted_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(sort_mu_);
  if (sorted_.load(std::memory_order_relaxed)) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_.store(true, std::memory_order_release);
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank with linear interpolation between adjacent order statistics.
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double EmpiricalCdf::fraction_below(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

std::vector<double> EmpiricalCdf::evaluate(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(fraction_below(x));
  return out;
}

const std::vector<double>& EmpiricalCdf::sorted() const {
  ensure_sorted();
  return samples_;
}

void BreakdownCounter::add(const std::string& key, std::uint64_t count, std::uint64_t bytes) {
  auto& e = entries_[key];
  e.first += count;
  e.second += bytes;
  total_count_ += count;
  total_bytes_ += bytes;
}

std::uint64_t BreakdownCounter::count(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.first;
}

std::uint64_t BreakdownCounter::bytes(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.second;
}

double BreakdownCounter::count_fraction(const std::string& key) const {
  return total_count_ == 0 ? 0.0
                           : static_cast<double>(count(key)) / static_cast<double>(total_count_);
}

double BreakdownCounter::bytes_fraction(const std::string& key) const {
  return total_bytes_ == 0 ? 0.0
                           : static_cast<double>(bytes(key)) / static_cast<double>(total_bytes_);
}

std::vector<std::string> BreakdownCounter::keys_by_count() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [k, v] : entries_) keys.push_back(k);
  std::sort(keys.begin(), keys.end(), [this](const std::string& a, const std::string& b) {
    const auto ca = count(a), cb = count(b);
    if (ca != cb) return ca > cb;
    return a < b;
  });
  return keys;
}

IntervalSeries::IntervalSeries(double bin_width) : bin_width_(bin_width) {}

void IntervalSeries::add_new_bin(std::int64_t bin, double value) {
  if (bins_.empty()) {
    first_bin_ = last_bin_ = bin;
  } else {
    first_bin_ = std::min(first_bin_, bin);
    last_bin_ = std::max(last_bin_, bin);
  }
  cached_bin_ = bin;
  cached_slot_ = &bins_[bin];
  *cached_slot_ += value;
}

void IntervalSeries::merge(const IntervalSeries& other) {
  if (other.bins_.empty()) return;
  if (bins_.empty()) {
    first_bin_ = other.first_bin_;
    last_bin_ = other.last_bin_;
  } else {
    first_bin_ = std::min(first_bin_, other.first_bin_);
    last_bin_ = std::max(last_bin_, other.last_bin_);
  }
  for (const auto& [bin, value] : other.bins_) bins_[bin] += value;
}

std::vector<double> IntervalSeries::values() const {
  std::vector<double> out;
  if (bins_.empty()) return out;
  out.reserve(static_cast<std::size_t>(last_bin_ - first_bin_ + 1));
  for (std::int64_t b = first_bin_; b <= last_bin_; ++b) {
    auto it = bins_.find(b);
    out.push_back(it == bins_.end() ? 0.0 : it->second);
  }
  return out;
}

}  // namespace entrace
