#include "util/cli.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace entrace::cli {

double env_scale(double fallback) { return env_double("ENTRACE_SCALE", fallback); }

int env_int(const char* name, int fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  const int v = std::atoi(s);
  return v > 0 ? v : fallback;
}

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr) return fallback;
  const double v = std::atof(s);
  return v > 0 ? v : fallback;
}

bool is_dataset_name(const std::string& s) {
  return s.size() == 2 && s[0] == 'D' && s[1] >= '0' && s[1] <= '4';
}

bool parse_scale(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || v <= 0) return false;
  out = v;
  return true;
}

bool parse_uint(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] < '0' || s[0] > '9') return false;  // no signs, no spaces
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_nonneg_double(const std::string& s, double& out) {
  if (s.empty() || s[0] == '-' || s[0] == '+' || s[0] == ' ') return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || v < 0 || v != v) return false;
  out = v;
  return true;
}

bool parse_index_range(const std::string& s, std::size_t& lo, std::size_t& hi) {
  const std::size_t colon = s.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) return false;
  char* end = nullptr;
  const unsigned long long a = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + colon) return false;
  const unsigned long long b = std::strtoull(s.c_str() + colon + 1, &end, 10);
  if (end != s.c_str() + s.size() || a >= b) return false;
  lo = static_cast<std::size_t>(a);
  hi = static_cast<std::size_t>(b);
  return true;
}

int parse_dataset_args(std::span<const char* const> args, DatasetArgs& out, std::string* error) {
  int consumed = 0;
  bool saw_name = false, saw_scale = false;
  for (const char* arg : args) {
    const std::string s = arg;
    if (!saw_name && is_dataset_name(s)) {
      out.name = s;
      saw_name = true;
      ++consumed;
      continue;
    }
    double scale = 0.0;
    if (!saw_scale && parse_scale(s, scale)) {
      out.scale = scale;
      saw_scale = true;
      ++consumed;
      continue;
    }
    if (consumed < 2) {
      if (error != nullptr) {
        *error = "'" + s + "' is neither a dataset name (D0..D4) nor a positive scale";
      }
      return -1;
    }
    break;
  }
  return consumed;
}

}  // namespace entrace::cli
