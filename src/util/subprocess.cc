#include "util/subprocess.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace entrace::util {

namespace {

ExitStatus from_wait_status(int wstatus) {
  ExitStatus s;
  if (WIFEXITED(wstatus)) {
    s.exited = true;
    s.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    s.signaled = true;
    s.term_signal = WTERMSIG(wstatus);
  }
  return s;
}

}  // namespace

Subprocess::~Subprocess() {
  if (pid_ > 0 && !status_.has_value()) kill_and_wait();
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), status_(std::move(other.status_)) {
  other.pid_ = -1;
  other.status_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !status_.has_value()) kill_and_wait();
    pid_ = other.pid_;
    status_ = std::move(other.status_);
    other.pid_ = -1;
    other.status_.reset();
  }
  return *this;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) throw std::runtime_error("subprocess: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("subprocess: fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: exec immediately (nothing else is async-signal-safe to do when
    // the parent holds threads).  On exec failure report 127 like a shell.
    execv(cargv[0], cargv.data());
    _exit(127);
  }
  Subprocess p;
  p.pid_ = pid;
  return p;
}

std::optional<ExitStatus> Subprocess::poll() {
  if (status_.has_value()) return status_;
  if (pid_ <= 0) return std::nullopt;
  int wstatus = 0;
  const pid_t r = waitpid(pid_, &wstatus, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    // ECHILD etc.: the child is gone but unreapable; report it as a crash
    // rather than leaving the caller spinning.
    ExitStatus s;
    s.signaled = true;
    s.term_signal = SIGKILL;
    status_ = s;
    return status_;
  }
  status_ = from_wait_status(wstatus);
  return status_;
}

ExitStatus Subprocess::wait() {
  if (status_.has_value()) return *status_;
  int wstatus = 0;
  while (waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
  status_ = from_wait_status(wstatus);
  return *status_;
}

std::optional<ExitStatus> Subprocess::wait_for(double seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (true) {
    if (auto s = poll(); s.has_value()) return s;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

ExitStatus Subprocess::kill_and_wait() {
  if (status_.has_value()) return *status_;
  if (pid_ > 0) ::kill(pid_, SIGKILL);
  return wait();
}

bool Subprocess::running() { return pid_ > 0 && !poll().has_value(); }

}  // namespace entrace::util
