// Low-level socket I/O shared by every TCP surface in the tree (the obs
// HTTP endpoint and the cluster coordinator/worker protocol).
//
// The kernel gives send()/recv() three sharp edges that every caller used
// to re-handle ad hoc: short writes (send() may take fewer bytes than
// asked), EINTR (any blocking call can be interrupted by a signal and must
// be retried, not treated as failure), and SIGPIPE (writing to a
// half-closed socket kills the process unless suppressed).  These helpers
// fold all three into boring return values so protocol code above them can
// reason in whole messages:
//
//   send_all   loops until every byte is accepted, MSG_NOSIGNAL, EINTR-
//              retried; false only on a real error or peer close.
//   recv_some  one read, EINTR-retried: >0 bytes, 0 orderly close, -1 error.
//   poll_in    readability wait with a millisecond timeout, EINTR-retried.
//
// Connection establishment helpers keep the same spirit: tcp_listen binds
// and listens on loopback (port 0 = kernel-assigned; the returned port is
// how tests avoid collisions), tcp_connect does a bounded-time connect via
// the nonblocking + poll idiom so a dead host costs a timeout, not a hang.
// ScopedFd is the RAII guard that makes every early return leak-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace entrace::util {

// Move-only owner of a file descriptor; closes on destruction.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Write all `len` bytes: partial writes are continued, EINTR retried,
// SIGPIPE suppressed (MSG_NOSIGNAL).  False when the peer closed or a hard
// error ended the stream early.
bool send_all(int fd, const void* data, std::size_t len);

// One recv, retried on EINTR: >0 = bytes read, 0 = orderly peer close,
// -1 = error (errno preserved).
long recv_some(int fd, void* buf, std::size_t len);

// Wait up to `timeout_ms` for fd to become readable (or to error/hang up,
// which also reads as "ready" so the caller's recv can observe it).
// 1 = ready, 0 = timeout, -1 = poll error.  EINTR is retried with the
// remaining budget.
int poll_in(int fd, int timeout_ms);

// Bind + listen on 127.0.0.1:port (0 = ephemeral).  On success returns the
// listening fd and stores the actual port in *bound_port; on failure
// returns an invalid fd and describes why in *error.
ScopedFd tcp_listen(std::uint16_t port, std::uint16_t* bound_port, std::string* error,
                    int backlog = 16);

// Bounded-time connect to host:port (host is a dotted IPv4 literal or
// "localhost").  Returns an invalid fd with *error set on resolution
// failure, refusal, or timeout; ECONNREFUSED is reported verbatim in
// *error so callers can classify it.
ScopedFd tcp_connect(const std::string& host, std::uint16_t port, double timeout_seconds,
                     std::string* error);

}  // namespace entrace::util
