// Bump-pointer arena for per-shard scratch objects (application parsers and
// their bookkeeping).  The analyzer creates one parser per identified
// connection — a heap new/delete pair per connection on the hot path.  An
// arena turns that into a pointer bump; the whole region is released when
// the shard's dispatcher is torn down at trace end.
//
// The arena does NOT run destructors: owners of non-trivially-destructible
// objects must invoke them explicitly (the dispatcher does, at on_close or
// at its own destruction) before the arena goes away.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace entrace {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t size, std::size_t align) {
    std::size_t p = (pos_ + align - 1) & ~(align - 1);
    if (p + size > cap_) {
      grow(size + align);
      p = (pos_ + align - 1) & ~(align - 1);
    }
    pos_ = p + size;
    return cur_ + p;
  }

  // Construct a T in the arena.  The caller owns the lifetime: call the
  // destructor explicitly if T needs one; the memory itself is reclaimed
  // only when the arena is destroyed or reset.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  // Release every block.  No destructors run (see class comment).
  void reset() {
    blocks_.clear();
    cur_ = nullptr;
    pos_ = 0;
    cap_ = 0;
  }

  std::size_t bytes_allocated() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size;
  };

  void grow(std::size_t need) {
    std::size_t size = blocks_.empty() ? kFirstBlock : blocks_.back().size * 2;
    while (size < need) size *= 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    cur_ = blocks_.back().data.get();
    pos_ = 0;
    cap_ = size;
  }

  static constexpr std::size_t kFirstBlock = 64 * 1024;

  std::vector<Block> blocks_;
  std::byte* cur_ = nullptr;
  std::size_t pos_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace entrace
