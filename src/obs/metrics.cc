#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace entrace::obs {

const char* to_string(MetricClass c) {
  switch (c) {
    case MetricClass::kSemantic:
      return "semantic";
    case MetricClass::kTiming:
      return "timing";
  }
  return "?";
}

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("Histogram bounds must be ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) { observe_n(x, 1); }

void Histogram::observe_n(double x, std::uint64_t n) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += n;
  count_ += n;
  sum_ += x * static_cast<double>(n);
}

void Histogram::restore(std::vector<std::uint64_t> buckets, std::uint64_t count, double sum) {
  if (buckets.size() != bounds_.size() + 1) {
    throw std::logic_error("Histogram::restore: bucket count does not match bounds");
  }
  buckets_ = std::move(buckets);
  count_ = count;
  sum_ = sum;
}

void Histogram::merge(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::logic_error("Histogram::merge: bucket bounds differ");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

Metric& Registry::find_or_create(std::string_view name, MetricClass cls, MetricKind kind,
                                 std::string_view help) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    it = metrics_.emplace(std::string(name), Metric{}).first;
    Metric& m = it->second;
    m.name = it->first;
    m.cls = cls;
    m.kind = kind;
    m.help = help;
    return m;
  }
  Metric& m = it->second;
  if (m.kind != kind) {
    throw std::logic_error("metric '" + m.name + "' re-registered as a different kind");
  }
  if (m.cls != cls) {
    throw std::logic_error("metric '" + m.name + "' re-registered as a different class");
  }
  if (m.help.empty() && !help.empty()) m.help = help;
  return m;
}

Counter* Registry::counter(std::string_view name, MetricClass cls, std::string_view help) {
  return &find_or_create(name, cls, MetricKind::kCounter, help).counter;
}

Gauge* Registry::gauge(std::string_view name, MetricClass cls, std::string_view help) {
  return &find_or_create(name, cls, MetricKind::kGauge, help).gauge;
}

Histogram* Registry::histogram(std::string_view name, MetricClass cls, std::vector<double> bounds,
                               std::string_view help) {
  Metric& m = find_or_create(name, cls, MetricKind::kHistogram, help);
  if (!m.histogram) {
    m.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else if (m.histogram->bounds() != bounds) {
    throw std::logic_error("metric '" + m.name + "' re-registered with different bounds");
  }
  return m.histogram.get();
}

const Metric* Registry::find(std::string_view name) const {
  const auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

std::vector<const Metric*> Registry::metrics() const {
  std::vector<const Metric*> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) out.push_back(&m);
  return out;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, theirs] : other.metrics_) {
    switch (theirs.kind) {
      case MetricKind::kCounter:
        find_or_create(name, theirs.cls, theirs.kind, theirs.help).counter.merge(theirs.counter);
        break;
      case MetricKind::kGauge:
        find_or_create(name, theirs.cls, theirs.kind, theirs.help).gauge.merge(theirs.gauge);
        break;
      case MetricKind::kHistogram: {
        Metric& mine = find_or_create(name, theirs.cls, theirs.kind, theirs.help);
        if (!mine.histogram) {
          mine.histogram = std::make_unique<Histogram>(theirs.histogram->bounds());
        }
        mine.histogram->merge(*theirs.histogram);
        break;
      }
    }
  }
}

}  // namespace entrace::obs
