#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace entrace::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    default:
      return "Internal Server Error";
  }
}

// Best-effort full write; a client that hangs up mid-response is its own
// problem (SIGPIPE is suppressed via MSG_NOSIGNAL).
void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, Handler handler) : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("http: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("http: bind 127.0.0.1:") + std::to_string(port) +
                             " failed: " + std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::start() {
  if (started_) return;
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

void HttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms stop-poll granularity
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // One read is enough for the requests we serve (short GET lines); keep
  // reading until the header terminator or 8 KiB, whichever first.
  std::string req;
  char buf[2048];
  while (req.size() < 8192 && req.find("\r\n\r\n") == std::string::npos &&
         req.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse resp;
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || req.compare(0, sp1, "GET") != 0) {
    resp = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    const std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
    try {
      resp = handler_(path);
    } catch (const std::exception& e) {
      resp = HttpResponse{500, "text/plain; charset=utf-8", std::string(e.what()) + "\n"};
    }
  }

  std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " + status_text(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += resp.body;
  send_all(fd, out);
}

}  // namespace entrace::obs
