#include "obs/http_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>

#include "util/net_io.h"

namespace entrace::obs {

namespace {

// Hard cap on what a client may send before we answer 400 and hang up: a
// request line plus headers for the endpoints served here fits in a few
// hundred bytes, so anything approaching the cap is garbage or abuse.
constexpr std::size_t kMaxRequestBytes = 8192;
// A connected client that never finishes its request line is cut off after
// this long so it cannot wedge the single accept thread.
constexpr int kRequestReadTimeoutMs = 2000;
// With a worker pool, at most this many accepted connections may wait for
// a handler; beyond it the accept loop sheds load by closing.
constexpr std::size_t kMaxQueuedConnections = 64;

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

HttpServer::HttpServer(std::uint16_t port, Handler handler, std::size_t workers)
    : handler_(std::move(handler)), workers_(workers) {
  std::string error;
  util::ScopedFd fd = util::tcp_listen(port, &port_, &error);
  if (!fd.valid()) throw std::runtime_error("http: " + error);
  listen_fd_ = fd.release();
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::start() {
  if (started_) return;
  started_ = true;
  stopping_.store(false, std::memory_order_release);
  for (std::size_t i = 0; i < workers_; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  queue_cv_.notify_all();
  for (std::thread& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  // Connections still queued were never answered; close them so the peers
  // see a hangup instead of a leak.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (const int fd : queue_) ::close(fd);
  queue_.clear();
  started_ = false;
}

void HttpServer::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms stop-poll granularity
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (workers_ == 0) {
      handle_connection(fd);
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() >= kMaxQueuedConnections) {
        ::close(fd);  // shed load; the client sees a hangup and retries
        continue;
      }
      queue_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(100), [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = queue_.front();
      queue_.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the request-line terminator, the size cap, the read
  // timeout, or a mid-request hangup — whichever comes first.  All of the
  // abnormal endings fall through to the 400 path below; none of them may
  // take the accept loop down (malformed-request tests pin this).
  std::string req;
  char buf[2048];
  bool overlong = false;
  while (req.find("\r\n\r\n") == std::string::npos && req.find('\n') == std::string::npos) {
    if (req.size() >= kMaxRequestBytes) {
      overlong = true;
      break;
    }
    if (util::poll_in(fd, kRequestReadTimeoutMs) != 1) break;
    const long n = util::recv_some(fd, buf, sizeof(buf));
    if (n <= 0) break;  // peer closed mid-request or hard error
    req.append(buf, static_cast<std::size_t>(n));
  }
  if (req.empty()) return;  // connect-and-close probe: nothing to answer

  HttpResponse resp;
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : req.find(' ', sp1 + 1);
  if (overlong || sp1 == std::string::npos || sp2 == std::string::npos ||
      req.compare(0, sp1, "GET") != 0) {
    resp = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
    // Dispatch on the bare path: "GET /healthz?probe=1" must reach the
    // /healthz handler, not 404.  (Fragments never legitimately appear in
    // a request target, but a client that sends one gets the same mercy.)
    const std::size_t cut = path.find_first_of("?#");
    if (cut != std::string::npos) path.resize(cut);
    try {
      resp = handler_(path);
    } catch (const std::exception& e) {
      resp = HttpResponse{500, "text/plain; charset=utf-8", std::string(e.what()) + "\n"};
    }
  }

  std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " + status_text(resp.status) +
                    "\r\nContent-Type: " + resp.content_type +
                    "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += resp.body;
  // Partial writes and EINTR are handled inside; a client that hangs up
  // mid-response is its own problem.
  util::send_all(fd, out.data(), out.size());
}

}  // namespace entrace::obs
