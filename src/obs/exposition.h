// Exposition formats for the metrics registry.
//
// Three renderers, one source of truth:
//   render_table       human-readable TextTable (semantic metrics only by
//                      default) — appended to enterprise_report output.
//   render_json        machine-readable JSON object keyed by metric name.
//   render_prometheus  Prometheus text format v0.0.4 (names sanitized,
//                      histogram buckets exposed cumulatively with le=).
//
// write_metrics_file dispatches on the path extension: ".json" gets JSON,
// anything else the Prometheus text form.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace entrace::obs {

// `title` becomes the TextTable caption.  When `include_timing` is false
// (the report default) timing-class metrics are omitted so the rendered
// report stays byte-identical across thread counts and shard partitions.
std::string render_table(const Registry& reg, const std::string& title,
                         bool include_timing = false);

std::string render_json(const Registry& reg, bool include_timing = true);

std::string render_prometheus(const Registry& reg, bool include_timing = true);

// Writes JSON if `path` ends in ".json", Prometheus text otherwise.
// Throws std::runtime_error when the file cannot be written.
void write_metrics_file(const Registry& reg, const std::string& path,
                        bool include_timing = true);

}  // namespace entrace::obs
