// Runtime telemetry: a low-overhead metrics registry for the pipeline's
// own behavior.
//
// The paper's methodology is measurement; this module turns the same lens
// on the pipeline itself.  Every layer records what it did — packets pulled
// from sources, decoder verdicts, flow-table churn, application events,
// snapshot I/O, thread-pool scheduling — into named metrics so a run can be
// monitored (human table appended to the report, machine-readable JSON /
// Prometheus text via --metrics-out) and regressions in the pipeline's own
// accounting become visible.
//
// Two metric classes, kept strictly apart:
//
//   kSemantic  facts about the *dataset* (packet counts, connection churn,
//              anomaly tallies).  Deterministic by contract: the same input
//              yields byte-identical values at 1 or N threads and for any
//              shard partition (asserted by tests/telemetry_test.cc).  Only
//              these appear in report output and in .esnap snapshots.
//   kTiming    facts about the *run* (stage wall-clock, thread-pool queue
//              depth, snapshot encode/decode bytes).  Inherently process-
//              and scheduling-dependent; excluded from determinism
//              assertions and from report/snapshot output.
//
// Concurrency model mirrors the analyzer's TraceShard pattern: a Registry
// is single-threaded and lock-free; each per-trace job owns one, and shards
// fold deterministically via merge() (counters and histogram buckets sum,
// gauges sum).  There is no global registry and no atomics on the hot path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace entrace::obs {

enum class MetricClass : std::uint8_t { kSemantic, kTiming };
enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricClass c);
const char* to_string(MetricKind k);

// Monotonic event count.  merge() sums.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

// Point-in-time or accumulated scalar (seconds, bytes, depths).  Gauges
// fold by summation, so across shards a gauge reads as a total; record
// per-run values once per process if a sum is not meaningful.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }
  void merge(const Gauge& other) { value_ += other.value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
// one implicit overflow bucket collects everything above the last bound.
// Bucket counts are non-cumulative (the Prometheus renderer accumulates).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);
  void observe_n(double x, std::uint64_t n);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  // Requires identical bounds (throws std::logic_error otherwise).
  void merge(const Histogram& other);

  // Snapshot support: replace contents with decoded values.  `buckets`
  // must have bounds().size()+1 entries (throws std::logic_error).
  void restore(std::vector<std::uint64_t> buckets, std::uint64_t count, double sum);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// One named metric.  Exactly one of the three value members is active,
// selected by `kind`.
struct Metric {
  std::string name;
  MetricClass cls = MetricClass::kSemantic;
  MetricKind kind = MetricKind::kCounter;
  std::string help;

  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;  // only for kHistogram
};

// Name-keyed collection of metrics.  Registration is idempotent: asking
// for an existing name returns the same handle (and throws std::logic_error
// on a kind or class mismatch — one name, one meaning).  Handles stay valid
// for the registry's lifetime (std::map nodes are stable), so hot code
// registers once and increments through the raw pointer.
//
// Not thread-safe by design — one registry per shard/thread, folded with
// merge() like every other per-trace result.
class Registry {
 public:
  Registry() = default;
  Registry(Registry&&) = default;
  Registry& operator=(Registry&&) = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(std::string_view name, MetricClass cls, std::string_view help = "");
  Gauge* gauge(std::string_view name, MetricClass cls, std::string_view help = "");
  Histogram* histogram(std::string_view name, MetricClass cls, std::vector<double> bounds,
                       std::string_view help = "");

  // nullptr when the name is unregistered.
  const Metric* find(std::string_view name) const;

  // All metrics in name order (deterministic exposition order).
  std::vector<const Metric*> metrics() const;

  bool empty() const { return metrics_.empty(); }
  std::size_t size() const { return metrics_.size(); }

  // Fold another registry in: same-name metrics combine (counters and
  // histogram buckets sum, gauges sum); names only present in `other` are
  // created.  Deterministic for any merge order, which is what makes the
  // shard fold reproducible.
  void merge(const Registry& other);

 private:
  Metric& find_or_create(std::string_view name, MetricClass cls, MetricKind kind,
                         std::string_view help);

  std::map<std::string, Metric, std::less<>> metrics_;
};

}  // namespace entrace::obs
