// RAII self-profiling scopes for pipeline stages.
//
// A StageScope measures one stage execution (trace job, fold, report,
// snapshot encode/decode) with std::chrono::steady_clock and records three
// timing-class metrics on destruction:
//
//   stage.<name>.seconds  accumulated wall-clock (gauge, summed)
//   stage.<name>.runs     number of executions (counter)
//   stage.<name>.items    work units processed, set via add_items()
//                         (counter; packets for trace jobs, shards for
//                         folds) — seconds+items together give items/sec.
//
// All three are MetricClass::kTiming: wall-clock is scheduling-dependent
// and must never leak into report or snapshot output.  Construct with a
// null registry to disable the scope entirely (zero work, used when
// AnalyzerConfig::collect_metrics is off).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace entrace::obs {

// Record one stage execution directly (what StageScope does on
// destruction) — for call sites where RAII ordering is awkward, e.g. when
// the registry lives inside the function's return value.  No-op when `reg`
// is null.
void record_stage(Registry* reg, const std::string& stage_name, double seconds,
                  std::uint64_t items = 0);

class StageScope {
 public:
  // `reg` may be null: the scope then records nothing.
  StageScope(Registry* reg, std::string stage_name);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  void add_items(std::uint64_t n) { items_ += n; }

  // Seconds elapsed so far (works before destruction; 0 when disabled).
  double elapsed_seconds() const;

 private:
  Registry* reg_;
  std::string name_;
  std::uint64_t items_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace entrace::obs
