#include "obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/table.h"

namespace entrace::obs {
namespace {

// Shortest round-trippable formatting for doubles so JSON output is stable
// and exact.  %.17g round-trips any double; trim to %g when lossless.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted names map '.' and
// any other invalid byte to '_'.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) out.insert(0, 1, '_');
  return out;
}

std::string prom_bound(double b) {
  if (std::isinf(b)) return "+Inf";
  return fmt_double(b);
}

std::string summarize_value(const Metric& m) {
  switch (m.kind) {
    case MetricKind::kCounter: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, m.counter.value());
      return buf;
    }
    case MetricKind::kGauge:
      return fmt_double(m.gauge.value());
    case MetricKind::kHistogram: {
      char buf[96];
      const std::uint64_t n = m.histogram->count();
      const double mean = n == 0 ? 0.0 : m.histogram->sum() / static_cast<double>(n);
      std::snprintf(buf, sizeof(buf), "n=%" PRIu64 " mean=%.4g", n, mean);
      return buf;
    }
  }
  return "?";
}

}  // namespace

std::string render_table(const Registry& reg, const std::string& title, bool include_timing) {
  TextTable t(title);
  t.set_header({"metric", "kind", "value"});
  for (const Metric* m : reg.metrics()) {
    if (!include_timing && m->cls == MetricClass::kTiming) continue;
    t.add_row({m->name, to_string(m->kind), summarize_value(*m)});
  }
  return t.render();
}

std::string render_json(const Registry& reg, bool include_timing) {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const Metric* m : reg.metrics()) {
    if (!include_timing && m->cls == MetricClass::kTiming) continue;
    if (!first) os << ",\n";
    first = false;
    os << "  \"" << json_escape(m->name) << "\": {\"class\": \"" << to_string(m->cls)
       << "\", \"kind\": \"" << to_string(m->kind) << "\", ";
    switch (m->kind) {
      case MetricKind::kCounter:
        os << "\"value\": " << m->counter.value();
        break;
      case MetricKind::kGauge:
        os << "\"value\": " << fmt_double(m->gauge.value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *m->histogram;
        os << "\"count\": " << h.count() << ", \"sum\": " << fmt_double(h.sum())
           << ", \"bounds\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          if (i) os << ", ";
          os << fmt_double(h.bounds()[i]);
        }
        os << "], \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
          if (i) os << ", ";
          os << h.buckets()[i];
        }
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << "\n}\n";
  return os.str();
}

std::string render_prometheus(const Registry& reg, bool include_timing) {
  std::ostringstream os;
  for (const Metric* m : reg.metrics()) {
    if (!include_timing && m->cls == MetricClass::kTiming) continue;
    const std::string name = prom_name(m->name);
    if (!m->help.empty()) os << "# HELP " << name << " " << m->help << "\n";
    os << "# TYPE " << name << " "
       << (m->kind == MetricKind::kGauge ? "gauge"
                                         : (m->kind == MetricKind::kCounter ? "counter"
                                                                            : "histogram"))
       << "\n";
    const std::string cls_label = std::string("class=\"") + to_string(m->cls) + "\"";
    switch (m->kind) {
      case MetricKind::kCounter:
        os << name << "{" << cls_label << "} " << m->counter.value() << "\n";
        break;
      case MetricKind::kGauge:
        os << name << "{" << cls_label << "} " << fmt_double(m->gauge.value()) << "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *m->histogram;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
          cum += h.buckets()[i];
          const double bound =
              i < h.bounds().size() ? h.bounds()[i] : std::numeric_limits<double>::infinity();
          os << name << "_bucket{" << cls_label << ",le=\"" << prom_bound(bound) << "\"} " << cum
             << "\n";
        }
        os << name << "_sum{" << cls_label << "} " << fmt_double(h.sum()) << "\n";
        os << name << "_count{" << cls_label << "} " << h.count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

void write_metrics_file(const Registry& reg, const std::string& path, bool include_timing) {
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  // Write-then-rename so a killed process never leaves a half-written file
  // under the destination name (same crash-safety contract as
  // snapshot::SnapshotWriter; scrapers and the orchestration supervisor
  // read these paths).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open metrics output file: " + tmp);
    out << (json ? render_json(reg, include_timing) : render_prometheus(reg, include_timing));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw std::runtime_error("failed writing metrics output file: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " onto metrics output file " + path);
  }
}

}  // namespace entrace::obs
