#include "obs/stage_timer.h"

namespace entrace::obs {

void record_stage(Registry* reg, const std::string& stage_name, double seconds,
                  std::uint64_t items) {
  if (reg == nullptr) return;
  const std::string base = "stage." + stage_name;
  reg->gauge(base + ".seconds", MetricClass::kTiming, "accumulated stage wall-clock")
      ->add(seconds);
  reg->counter(base + ".runs", MetricClass::kTiming, "stage executions")->add(1);
  if (items != 0) {
    reg->counter(base + ".items", MetricClass::kTiming, "work units processed")->add(items);
  }
}

StageScope::StageScope(Registry* reg, std::string stage_name)
    : reg_(reg), name_(std::move(stage_name)) {
  if (reg_ != nullptr) start_ = std::chrono::steady_clock::now();
}

double StageScope::elapsed_seconds() const {
  if (reg_ == nullptr) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

StageScope::~StageScope() {
  if (reg_ == nullptr) return;
  record_stage(reg_, name_, elapsed_seconds(), items_);
}

}  // namespace entrace::obs
