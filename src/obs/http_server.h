// Minimal embedded HTTP/1.0 server for daemon observability.
//
// Serves GET requests; each connection is read, answered, and closed
// (Connection: close), so there is no keep-alive state and no request
// pipelining to manage.  The request target is stripped of its ?query and
// #fragment before dispatch, so handlers match on the bare path —
// `GET /healthz?probe=1` reaches the "/healthz" handler, as probes expect.
// Handlers snapshot shared state under their own lock and return a
// complete body; nothing here retains a request between calls.  Scope is
// deliberately tiny (one scrape endpoint set, trusted network): no TLS, no
// chunked encoding, no request bodies.  This mirrors what in-process
// metric endpoints in collectors ship — enough for
// `curl http://host:port/metrics` and a Prometheus scrape loop.
//
// Concurrency: by default (workers == 0) connections are handled inline on
// the single accept thread — fine when every handler is fast.  A handler
// set that mixes slow endpoints with liveness probes (the daemon's
// multi-second /report fold next to /healthz) passes workers >= 2: accepted
// connections are queued to a small worker pool, so a probe is answered
// while a slow render is still in flight instead of starving behind it.
// Handlers must then be safe to run concurrently with themselves.
//
// Lifecycle: the constructor binds + listens (throwing on failure, e.g.
// port in use), start() launches the accept loop (and workers), and
// stop()/destructor join them.  Port 0 binds an ephemeral port; port()
// reports the actual one, which is how tests run servers concurrently
// without port collisions.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace entrace::obs {

struct HttpResponse {
  int status = 200;  // 200, 404, 500
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  // Called with the request path, query/fragment already stripped (e.g.
  // "/metrics").  Runs on the accept thread (workers == 0) or on a worker
  // thread, possibly concurrently with other requests (workers >= 2).
  using Handler = std::function<HttpResponse(const std::string& path)>;

  // Binds 127.0.0.1:port and listens; throws std::runtime_error on failure.
  // `workers` 0 serves inline on the accept thread; >= 1 dispatches each
  // accepted connection to a pool of that many handler threads.
  HttpServer(std::uint16_t port, Handler handler, std::size_t workers = 0);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void start();
  void stop();

  // The bound port (resolves 0 to the kernel-assigned ephemeral port).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void worker_loop();
  void handle_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Handler handler_;
  std::size_t workers_;
  std::thread thread_;
  std::vector<std::thread> pool_;
  // Accepted fds awaiting a worker.  Bounded: past kMaxQueuedConnections
  // the accept loop closes new connections instead of queueing them, so a
  // stalled handler cannot accumulate fds without limit.
  std::deque<int> queue_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  // Written by stop(), polled by the accept loop between 100 ms waits.
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace entrace::obs
