// Minimal embedded HTTP/1.0 server for daemon observability.
//
// Serves GET requests from a single background thread; each connection is
// read, answered, and closed (Connection: close), so there is no keep-alive
// state and no request pipelining to manage.  The handler runs on the
// server thread — implementations snapshot shared state under their own
// lock and return a complete body; nothing here retains a request between
// calls.  Scope is deliberately tiny (one scrape endpoint set, trusted
// network): no TLS, no chunked encoding, no request bodies.  This mirrors
// what in-process metric endpoints in collectors ship — enough for
// `curl http://host:port/metrics` and a Prometheus scrape loop.
//
// Lifecycle: the constructor binds + listens (throwing on failure, e.g.
// port in use), start() launches the accept loop, and stop()/destructor
// join it.  Port 0 binds an ephemeral port; port() reports the actual one,
// which is how tests run servers concurrently without port collisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace entrace::obs {

struct HttpResponse {
  int status = 200;  // 200, 404, 500
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  // Called on the server thread with the request path (e.g. "/metrics").
  using Handler = std::function<HttpResponse(const std::string& path)>;

  // Binds 127.0.0.1:port and listens; throws std::runtime_error on failure.
  HttpServer(std::uint16_t port, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void start();
  void stop();

  // The bound port (resolves 0 to the kernel-assigned ephemeral port).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();
  void handle_connection(int fd);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Handler handler_;
  std::thread thread_;
  // Written by stop(), polled by the accept loop between 100 ms waits.
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace entrace::obs
