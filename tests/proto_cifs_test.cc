// Tests for CIFS/SMB parsing, FID-based pipe tracking, and DCE/RPC.
#include <gtest/gtest.h>

#include "proto/cifs.h"
#include "net/encoder.h"
#include "proto/dcerpc.h"

namespace entrace {
namespace {

class CifsTest : public ::testing::Test {
 protected:
  void client(const std::vector<std::uint8_t>& msg) {
    parser.on_data(conn, Direction::kOrigToResp, ts_ += 0.001, msg);
  }
  void server(const std::vector<std::uint8_t>& msg) {
    parser.on_data(conn, Direction::kRespToOrig, ts_ += 0.001, msg);
  }
  std::size_t count(CifsCategory cat, bool requests_only = true) const {
    std::size_t n = 0;
    for (const auto& c : events.cifs) {
      if (c.category != cat) continue;
      if (requests_only && c.dir != Direction::kOrigToResp) continue;
      ++n;
    }
    return n;
  }

  Connection conn;
  AppEvents events;
  CifsParser parser{events, /*netbios_framing=*/false};
  double ts_ = 0.0;
};

TEST_F(CifsTest, BasicCommandsClassified) {
  client(smb_simple(smbcmd::kNegotiate, 1, false, 60));
  server(smb_simple(smbcmd::kNegotiate, 1, true, 80));
  client(smb_simple(smbcmd::kSessionSetup, 2, false, 140));
  server(smb_simple(smbcmd::kSessionSetup, 2, true, 40));
  client(smb_simple(smbcmd::kTreeConnect, 3, false, 48));
  server(smb_simple(smbcmd::kTreeConnect, 3, true, 20));
  EXPECT_EQ(count(CifsCategory::kSmbBasic), 3u);
  EXPECT_EQ(events.cifs.size(), 6u);  // responses recorded too
}

TEST_F(CifsTest, FileReadWriteIsFileSharing) {
  client(smb_ntcreate_request(1, "\\docs\\a.doc"));
  server(smb_ntcreate_response(1, 0x4001));
  client(smb_read_request(2, 0x4001, 8192));
  server(smb_read_response(2, 0x4001, filler_payload(8192)));
  client(smb_write_request(3, 0x4001, filler_payload(4096)));
  server(smb_write_response(3, 0x4001));
  EXPECT_EQ(count(CifsCategory::kSmbBasic), 1u);  // the NT Create
  EXPECT_EQ(count(CifsCategory::kFileSharing), 2u);
  EXPECT_TRUE(events.dcerpc.empty());
}

TEST_F(CifsTest, PipeTrafficIsRpcAndYieldsDceEvents) {
  client(smb_ntcreate_request(1, "\\spoolss"));
  server(smb_ntcreate_response(1, 0x7007));
  client(smb_write_request(2, 0x7007, encode_dce_bind(1, dce_uuid(DceIface::kSpoolss))));
  server(smb_write_response(2, 0x7007));
  client(smb_read_request(3, 0x7007, 4280));
  server(smb_read_response(3, 0x7007, encode_dce_bind_ack(1)));
  client(smb_write_request(4, 0x7007,
                           encode_dce_request(2, spoolss_op::kWritePrinter, 3000)));
  server(smb_write_response(4, 0x7007));
  client(smb_read_request(5, 0x7007, 4280));
  server(smb_read_response(5, 0x7007, encode_dce_response(2, 32)));

  EXPECT_GE(count(CifsCategory::kRpcPipe), 2u);
  ASSERT_GE(events.dcerpc.size(), 2u);
  const auto& req =
      *std::find_if(events.dcerpc.begin(), events.dcerpc.end(),
                    [](const DceRpcCall& c) { return c.is_request; });
  EXPECT_EQ(req.iface, DceIface::kSpoolss);
  EXPECT_EQ(req.opnum, spoolss_op::kWritePrinter);
  EXPECT_TRUE(req.over_pipe);
}

TEST_F(CifsTest, LanmanTransClassified) {
  client(smb_trans(1, false, "\\PIPE\\LANMAN", 60));
  server(smb_trans(1, true, "\\PIPE\\LANMAN", 900));
  EXPECT_EQ(count(CifsCategory::kLanman), 1u);
}

TEST_F(CifsTest, MessagesSplitAcrossSegments) {
  const auto msg = smb_simple(smbcmd::kNegotiate, 1, false, 100);
  const std::size_t half = msg.size() / 2;
  parser.on_data(conn, Direction::kOrigToResp, 0.0,
                 std::span<const std::uint8_t>(msg.data(), half));
  EXPECT_TRUE(events.cifs.empty());
  parser.on_data(conn, Direction::kOrigToResp, 0.001,
                 std::span<const std::uint8_t>(msg.data() + half, msg.size() - half));
  EXPECT_EQ(events.cifs.size(), 1u);
}

TEST_F(CifsTest, NbssHandshakeEventsEmitted) {
  CifsParser nb(events, /*netbios_framing=*/true);
  nb.on_data(conn, Direction::kOrigToResp, 0.0, nbss_session_request("SRV", "CLI"));
  nb.on_data(conn, Direction::kRespToOrig, 0.001, nbss_session_response(true));
  ASSERT_EQ(events.nbss.size(), 2u);
  EXPECT_EQ(events.nbss[0].type, NbssEventType::kRequest);
  EXPECT_EQ(events.nbss[1].type, NbssEventType::kPositiveResponse);

  nb.on_data(conn, Direction::kRespToOrig, 0.002, nbss_session_response(false));
  EXPECT_EQ(events.nbss.back().type, NbssEventType::kNegativeResponse);
}

TEST(PipeNames, KnownPipesMapToIfaces) {
  EXPECT_EQ(pipe_iface("\\spoolss"), DceIface::kSpoolss);
  EXPECT_EQ(pipe_iface("\\NETLOGON"), DceIface::kNetLogon);
  EXPECT_EQ(pipe_iface("\\lsarpc"), DceIface::kLsaRpc);
  EXPECT_FALSE(pipe_iface("\\docs\\file.txt").has_value());
}

TEST(DceRpc, PduRoundTrips) {
  {
    const auto wire = encode_dce_bind(77, dce_uuid(DceIface::kNetLogon));
    const auto pdu = decode_dce_pdu(wire);
    ASSERT_TRUE(pdu.has_value());
    EXPECT_EQ(pdu->ptype, dce_ptype::kBind);
    EXPECT_EQ(pdu->call_id, 77u);
    ASSERT_TRUE(pdu->bind_uuid.has_value());
    EXPECT_EQ(dce_iface_from_uuid(*pdu->bind_uuid), DceIface::kNetLogon);
  }
  {
    const auto wire = encode_dce_request(5, 19, 256);
    const auto pdu = decode_dce_pdu(wire);
    ASSERT_TRUE(pdu.has_value());
    EXPECT_EQ(pdu->ptype, dce_ptype::kRequest);
    EXPECT_EQ(pdu->opnum, 19);
    EXPECT_EQ(pdu->stub.size(), 256u);
    EXPECT_EQ(pdu->frag_len, wire.size());
  }
  {
    const auto wire = encode_dce_response(5, 64);
    const auto pdu = decode_dce_pdu(wire);
    ASSERT_TRUE(pdu.has_value());
    EXPECT_EQ(pdu->ptype, dce_ptype::kResponse);
    EXPECT_EQ(pdu->stub.size(), 64u);
  }
}

TEST(DceRpc, StreamReassemblesFragmentedPdus) {
  std::vector<std::uint8_t> stream;
  auto append = [&stream](const std::vector<std::uint8_t>& v) {
    stream.insert(stream.end(), v.begin(), v.end());
  };
  append(encode_dce_bind(1, dce_uuid(DceIface::kSamr)));
  append(encode_dce_request(2, 7, 100));
  append(encode_dce_request(3, 8, 50));

  DceRpcStream reasm;
  std::vector<DcePdu> pdus;
  // Feed 7 bytes at a time.
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, stream.size() - off);
    reasm.feed(std::span<const std::uint8_t>(stream.data() + off, n), pdus);
  }
  ASSERT_EQ(pdus.size(), 3u);
  EXPECT_EQ(pdus[0].ptype, dce_ptype::kBind);
  EXPECT_EQ(pdus[1].opnum, 7);
  EXPECT_EQ(pdus[2].opnum, 8);
}

TEST(DceRpc, EpmStubRoundTripAndSessionMapping) {
  const auto stub = encode_epm_map_stub(dce_uuid(DceIface::kSpoolss),
                                        Ipv4Address(128, 3, 15, 2), 1234);
  DceUuid uuid;
  Ipv4Address server;
  std::uint16_t port = 0;
  ASSERT_TRUE(decode_epm_map_stub(stub, uuid, server, port));
  EXPECT_EQ(dce_iface_from_uuid(uuid), DceIface::kSpoolss);
  EXPECT_EQ(server, Ipv4Address(128, 3, 15, 2));
  EXPECT_EQ(port, 1234);

  // Run the full EPM exchange through a parser.
  Connection conn;
  std::vector<DceRpcCall> calls;
  std::vector<EpmMapping> mappings;
  DceRpcParser parser(calls, mappings);
  parser.on_data(conn, Direction::kOrigToResp, 0.0, encode_dce_bind(1, dce_uuid(DceIface::kEpm)));
  parser.on_data(conn, Direction::kRespToOrig, 0.001, encode_dce_bind_ack(1));
  parser.on_data(conn, Direction::kOrigToResp, 0.002, encode_dce_request_stub(2, 3, stub));
  parser.on_data(conn, Direction::kRespToOrig, 0.003, encode_dce_response_stub(2, stub));
  ASSERT_EQ(mappings.size(), 1u);
  EXPECT_EQ(mappings[0].port, 1234);
  EXPECT_EQ(mappings[0].iface, DceIface::kSpoolss);
  // Response inherits the request's opnum via call-id matching.
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[1].opnum, 3);
  EXPECT_FALSE(calls[1].is_request);
}

TEST(DceRpc, MalformedStreamResyncs) {
  DceRpcStream reasm;
  std::vector<DcePdu> pdus;
  std::vector<std::uint8_t> garbage(10, 0xFF);
  const auto good = encode_dce_request(1, 2, 30);
  garbage.insert(garbage.end(), good.begin(), good.end());
  reasm.feed(garbage, pdus);
  // The garbage is skipped byte-by-byte; the valid PDU is still found.
  ASSERT_EQ(pdus.size(), 1u);
  EXPECT_EQ(pdus[0].opnum, 2);
}

}  // namespace
}  // namespace entrace
