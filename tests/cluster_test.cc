// Cluster suite (CTest label "cluster", also run under sanitizers via
// `ctest --preset cluster-asan` / `ctest --preset cluster-tsan`).
//
// Pins the contracts the cluster layer (src/cluster) is trusted on:
//
//   codec      every message round-trips through FrameDecoder regardless of
//              how the byte stream is fragmented (byte-at-a-time, odd chunk
//              sizes), and structural damage — bad magic, unknown type,
//              hostile length, flipped payload bit — is a ProtocolError at a
//              named offset, never undefined behavior.  A seeded byte-flip
//              fuzz asserts no single-byte corruption ever yields the
//              original frame sequence silently.
//
//   dispatch   run_cluster over loopback workers produces a report
//              byte-identical to a direct single-process run: clean, per
//              injected network-fault kind (refuse / disconnect / corrupt
//              frame / hang), and under a mixed fault schedule — while an
//              exhausted retry budget degrades to the CoverageManifest +
//              PARTIAL banner, never a crash or a torn fold.
//
//   http       the observability server survives hostile clients: oversized
//              request lines answer 400, empty connections and mid-request
//              hangups are shrugged off, and an honest request still works
//              afterwards.
//
//   /report    render_windowed_report over the daemon's retained window
//              checkpoints equals the one-shot batch report.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/fault.h"
#include "cluster/protocol.h"
#include "cluster/worker.h"
#include "core/analyzer.h"
#include "core/incremental.h"
#include "core/report.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "pcap/replay.h"
#include "snapshot/reader.h"
#include "snapshot/window.h"
#include "snapshot/writer.h"
#include "synth/generator.h"
#include "synth/synth_source.h"
#include "util/net_io.h"
#include "util/subprocess.h"

namespace entrace {
namespace {

namespace fs = std::filesystem;
using cluster::Frame;
using cluster::FrameDecoder;
using cluster::MsgType;
using cluster::NetInjectedFault;
using cluster::ProtocolError;

// ---- codec: fragmentation invariance ----------------------------------------

cluster::JobMsg sample_job() {
  cluster::JobMsg job;
  job.job_id = 42;
  job.attempt = 3;
  job.dataset = "D0";
  job.scale = 0.004;
  job.trace_count = 22;
  job.lo = 7;
  job.hi = 11;
  job.threads = 2;
  job.heartbeat_interval_ms = 100;
  job.injected_fault = static_cast<std::uint8_t>(NetInjectedFault::kDisconnectInject);
  return job;
}

// Feed `bytes` to a decoder in pieces of `chunk` bytes, collecting every
// complete frame.
std::vector<Frame> decode_in_chunks(const std::vector<std::uint8_t>& bytes, std::size_t chunk) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (std::size_t i = 0; i < bytes.size(); i += chunk) {
    decoder.feed(bytes.data() + i, std::min(chunk, bytes.size() - i));
    while (auto f = decoder.next()) frames.push_back(std::move(*f));
  }
  EXPECT_EQ(decoder.buffered(), 0u);
  return frames;
}

TEST(ClusterCodecTest, EveryMessageRoundTripsByteAtATime) {
  cluster::HelloMsg hello;
  hello.worker_name = "w0";
  cluster::HeartbeatMsg beat;
  beat.job_id = 42;
  cluster::SnapshotChunkMsg chunk;
  chunk.job_id = 42;
  chunk.offset = 128 * 1024;
  for (int i = 0; i < 1000; ++i) chunk.bytes.push_back(static_cast<std::uint8_t>(i * 7));
  cluster::DoneMsg done;
  done.job_id = 42;
  done.total_bytes = 999;
  done.snapshot_crc = 0xdeadbeef;
  cluster::ErrorMsg err;
  err.job_id = 42;
  err.message = "unknown dataset \"D9\"";

  std::vector<std::uint8_t> stream;
  for (const auto& frame_bytes : {hello.encode(), sample_job().encode(), beat.encode(),
                                  chunk.encode(), done.encode(), err.encode()}) {
    stream.insert(stream.end(), frame_bytes.begin(), frame_bytes.end());
  }

  const std::vector<Frame> frames = decode_in_chunks(stream, 1);
  ASSERT_EQ(frames.size(), 6u);

  EXPECT_EQ(cluster::HelloMsg::decode(frames[0]).worker_name, "w0");
  EXPECT_EQ(cluster::HelloMsg::decode(frames[0]).protocol_version, cluster::kProtocolVersion);
  const cluster::JobMsg job = cluster::JobMsg::decode(frames[1]);
  EXPECT_EQ(job.job_id, 42u);
  EXPECT_EQ(job.attempt, 3u);
  EXPECT_EQ(job.dataset, "D0");
  EXPECT_EQ(job.scale, 0.004);
  EXPECT_EQ(job.trace_count, 22u);
  EXPECT_EQ(job.lo, 7u);
  EXPECT_EQ(job.hi, 11u);
  EXPECT_EQ(job.threads, 2u);
  EXPECT_EQ(job.heartbeat_interval_ms, 100u);
  EXPECT_EQ(job.injected_fault, static_cast<std::uint8_t>(NetInjectedFault::kDisconnectInject));
  EXPECT_EQ(cluster::HeartbeatMsg::decode(frames[2]).job_id, 42u);
  const cluster::SnapshotChunkMsg rt = cluster::SnapshotChunkMsg::decode(frames[3]);
  EXPECT_EQ(rt.offset, chunk.offset);
  EXPECT_EQ(rt.bytes, chunk.bytes);
  EXPECT_EQ(cluster::DoneMsg::decode(frames[4]).snapshot_crc, 0xdeadbeefu);
  EXPECT_EQ(cluster::ErrorMsg::decode(frames[5]).message, err.message);
}

TEST(ClusterCodecTest, FragmentationDoesNotChangeTheFrameSequence) {
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 8; ++i) {
    cluster::SnapshotChunkMsg chunk;
    chunk.job_id = static_cast<std::uint64_t>(i);
    chunk.offset = static_cast<std::uint64_t>(i) * 100;
    for (int j = 0; j < 50 + i * 37; ++j) chunk.bytes.push_back(static_cast<std::uint8_t>(i + j));
    const auto bytes = chunk.encode();
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  const std::vector<Frame> reference = decode_in_chunks(stream, stream.size());
  ASSERT_EQ(reference.size(), 8u);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                                  std::size_t{13}, std::size_t{101}}) {
    SCOPED_TRACE("chunk=" + std::to_string(chunk));
    const std::vector<Frame> frames = decode_in_chunks(stream, chunk);
    ASSERT_EQ(frames.size(), reference.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(frames[i].type, reference[i].type);
      EXPECT_EQ(frames[i].payload, reference[i].payload);
    }
  }
}

TEST(ClusterCodecTest, IncompleteFrameIsNullopt) {
  const auto bytes = sample_job().encode();
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.feed(bytes.data() + i, 1);
    EXPECT_FALSE(decoder.next().has_value()) << "frame complete after " << (i + 1) << " of "
                                             << bytes.size() << " bytes";
  }
  decoder.feed(bytes.data() + bytes.size() - 1, 1);
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(ClusterCodecTest, StructuralDamageIsAProtocolErrorAtAnOffset) {
  const auto good = sample_job().encode();

  {  // bad magic
    auto bytes = good;
    bytes[0] ^= 0xff;
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_THROW(d.next(), ProtocolError);
  }
  {  // unknown message type
    auto bytes = good;
    bytes[cluster::kFrameMagicSize] = 0x77;
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_THROW(d.next(), ProtocolError);
  }
  {  // hostile length: claims more than kMaxFramePayload
    auto bytes = good;
    bytes[cluster::kFrameMagicSize + 4 + 3] = 0xff;  // top byte of length:u32
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_THROW(d.next(), ProtocolError);
  }
  {  // flipped payload bit: the CRC trailer catches it
    auto bytes = good;
    bytes[cluster::kFrameHeaderSize + 5] ^= 0x01;
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    EXPECT_THROW(d.next(), ProtocolError);
  }
  {  // the error names where in the stream the damage sits
    auto bytes = good;
    bytes[cluster::kFrameHeaderSize] ^= 0x01;
    FrameDecoder d;
    d.feed(bytes.data(), bytes.size());
    try {
      d.next();
      FAIL() << "corrupt frame decoded";
    } catch (const ProtocolError& e) {
      EXPECT_LE(e.offset(), bytes.size());
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
  }
}

// Seeded single-byte-flip fuzz over a multi-frame stream: no flip may crash
// the decoder, and none may reproduce the original frame sequence without
// either a ProtocolError or an observable difference (changed frame, or a
// starved decoder when the length field grew).
TEST(ClusterCodecTest, ByteFlipFuzzNeverPassesSilently) {
  std::vector<std::uint8_t> stream;
  std::vector<Frame> reference;
  {
    cluster::HelloMsg hello;
    hello.worker_name = "fuzz";
    cluster::HeartbeatMsg beat;
    beat.job_id = 7;
    cluster::DoneMsg done;
    done.job_id = 7;
    done.total_bytes = 123;
    done.snapshot_crc = 456;
    for (const auto& b : {hello.encode(), sample_job().encode(), beat.encode(), done.encode()}) {
      stream.insert(stream.end(), b.begin(), b.end());
    }
    reference = decode_in_chunks(stream, stream.size());
    ASSERT_EQ(reference.size(), 4u);
  }

  // xorshift64: the same cheap deterministic draw the fault harness uses.
  std::uint64_t rng = 0x5eedu;
  const auto next_u64 = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int round = 0; round < 500; ++round) {
    auto bytes = stream;
    const std::size_t pos = static_cast<std::size_t>(next_u64() % bytes.size());
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (next_u64() % 8));
    bytes[pos] ^= mask;

    FrameDecoder decoder;
    std::vector<Frame> frames;
    bool threw = false;
    try {
      decoder.feed(bytes.data(), bytes.size());
      while (auto f = decoder.next()) frames.push_back(std::move(*f));
    } catch (const ProtocolError&) {
      threw = true;
    }
    if (threw) continue;  // damage detected structurally: the desired outcome
    const bool identical =
        frames.size() == reference.size() &&
        std::equal(frames.begin(), frames.end(), reference.begin(), [](const Frame& a,
                                                                       const Frame& b) {
          return a.type == b.type && a.payload == b.payload;
        });
    EXPECT_FALSE(identical) << "flip of bit " << int(mask) << " at byte " << pos
                            << " went completely unnoticed";
  }
}

// The coordinator's receive path in miniature: a real .esnap image sliced
// into SNAPSHOT chunks at odd sizes, carried through the frame codec one
// byte at a time, reassembled, and decoded by the untrusted-input snapshot
// reader.  Any slicing must hand decode_snapshot the identical image.
TEST(ClusterCodecTest, SnapshotSurvivesArbitraryChunkSlicing) {
  std::ostringstream out(std::ios::binary);
  snapshot::SnapshotWriter writer(out, {"D0", 0.004, 22});
  writer.add_shard(3, TraceShard{});
  writer.add_shard(9, TraceShard{});
  writer.close();
  const std::string image = std::move(out).str();
  ASSERT_GT(image.size(), 64u);

  for (const std::size_t slice : {std::size_t{1}, std::size_t{37}, std::size_t{1000},
                                  image.size()}) {
    SCOPED_TRACE("slice=" + std::to_string(slice));
    std::vector<std::uint8_t> stream;
    for (std::size_t off = 0; off < image.size(); off += slice) {
      cluster::SnapshotChunkMsg chunk;
      chunk.job_id = 1;
      chunk.offset = off;
      const std::size_t len = std::min(slice, image.size() - off);
      chunk.bytes.assign(image.begin() + static_cast<long>(off),
                         image.begin() + static_cast<long>(off + len));
      const auto bytes = chunk.encode();
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }

    std::vector<std::uint8_t> assembled;
    for (const Frame& f : decode_in_chunks(stream, 1)) {
      const auto chunk = cluster::SnapshotChunkMsg::decode(f);
      ASSERT_EQ(chunk.offset, assembled.size()) << "chunks must arrive contiguously";
      assembled.insert(assembled.end(), chunk.bytes.begin(), chunk.bytes.end());
    }
    ASSERT_EQ(assembled.size(), image.size());
    EXPECT_EQ(std::memcmp(assembled.data(), image.data(), image.size()), 0);

    const snapshot::Snapshot snap = snapshot::decode_snapshot(assembled);
    ASSERT_EQ(snap.shards.size(), 2u);
    EXPECT_EQ(snap.shards[0].trace_index, 3u);
    EXPECT_EQ(snap.shards[1].trace_index, 9u);
  }
}

// ---- fault harness + endpoint parsing ---------------------------------------

TEST(NetFaultInjectionTest, ParsesSpecStrings) {
  cluster::NetFaultInjection inject;
  std::string error;
  EXPECT_TRUE(cluster::parse_net_inject_spec("refuse=0.1,disconnect=0.2,corrupt=0.05,hang=0.01",
                                             inject, &error));
  EXPECT_EQ(inject.refuse, 0.1);
  EXPECT_EQ(inject.disconnect, 0.2);
  EXPECT_EQ(inject.corrupt, 0.05);
  EXPECT_EQ(inject.hang, 0.01);
  EXPECT_TRUE(inject.any());

  cluster::NetFaultInjection bad;
  EXPECT_FALSE(cluster::parse_net_inject_spec("explode=0.5", bad, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(cluster::parse_net_inject_spec("refuse=1.5", bad, &error));
  EXPECT_FALSE(cluster::parse_net_inject_spec("refuse", bad, &error));
  EXPECT_FALSE(bad.any());
}

TEST(NetFaultInjectionTest, DrawIsSeededPerJobAttemptAndBounded) {
  cluster::NetFaultInjection f;
  f.refuse = 1.0;
  EXPECT_EQ(f.draw(0, 1), NetInjectedFault::kRefuseInject);
  EXPECT_EQ(f.draw(9, 4), NetInjectedFault::kRefuseInject);

  f.attempt_limit = 1;  // only the first attempt of each job faults
  EXPECT_EQ(f.draw(0, 1), NetInjectedFault::kRefuseInject);
  EXPECT_EQ(f.draw(0, 2), NetInjectedFault::kNoInject);

  cluster::NetFaultInjection mixed;
  mixed.refuse = mixed.disconnect = mixed.corrupt = mixed.hang = 0.25;
  mixed.seed = 42;
  for (std::uint64_t job = 0; job < 16; ++job) {
    EXPECT_EQ(mixed.draw(job, 1), mixed.draw(job, 1)) << "job " << job;
    EXPECT_EQ(mixed.draw(job, 2), mixed.draw(job, 2)) << "job " << job;
  }
}

TEST(NetFaultInjectionTest, ExpectedFaultMapsIntoTheWorkerTaxonomy) {
  using orchestrate::WorkerFault;
  EXPECT_EQ(cluster::expected_fault(NetInjectedFault::kNoInject), WorkerFault::kNone);
  EXPECT_EQ(cluster::expected_fault(NetInjectedFault::kRefuseInject),
            WorkerFault::kConnectRefused);
  EXPECT_EQ(cluster::expected_fault(NetInjectedFault::kDisconnectInject),
            WorkerFault::kDisconnect);
  EXPECT_EQ(cluster::expected_fault(NetInjectedFault::kCorruptFrameInject),
            WorkerFault::kCorruptFrame);
  EXPECT_EQ(cluster::expected_fault(NetInjectedFault::kHangInject),
            WorkerFault::kHeartbeatTimeout);
}

TEST(ClusterConfigTest, ParsesEndpointLists) {
  std::vector<std::string> endpoints;
  std::string error;
  EXPECT_TRUE(cluster::parse_endpoints("127.0.0.1:7461,10.0.0.6:80", endpoints, &error));
  ASSERT_EQ(endpoints.size(), 2u);
  EXPECT_EQ(endpoints[0], "127.0.0.1:7461");
  EXPECT_EQ(endpoints[1], "10.0.0.6:80");

  EXPECT_FALSE(cluster::parse_endpoints("127.0.0.1", endpoints, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(cluster::parse_endpoints("127.0.0.1:notaport", endpoints, &error));
  EXPECT_FALSE(cluster::parse_endpoints("", endpoints, &error));
}

// ---- cluster dispatch over loopback workers ---------------------------------

// In-process worker fleet: each WorkerServer owns a real loopback socket and
// runs serve() on its own thread, so sanitizers see both sides of every
// connection.  The separate WorkerBinaryServesACoordinator test covers the
// actual entrace_worker executable.
class WorkerFleet {
 public:
  explicit WorkerFleet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      cluster::WorkerConfig config;
      config.name = "w" + std::to_string(i);
      servers_.push_back(std::make_unique<cluster::WorkerServer>(config));
      endpoints_.push_back("127.0.0.1:" + std::to_string(servers_.back()->port()));
    }
    for (auto& server : servers_) {
      threads_.emplace_back([&server] { server->serve(); });
    }
  }

  ~WorkerFleet() {
    for (auto& server : servers_) server->stop();
    for (auto& thread : threads_) thread.join();
  }

  const std::vector<std::string>& endpoints() const { return endpoints_; }

 private:
  std::vector<std::unique_ptr<cluster::WorkerServer>> servers_;
  std::vector<std::string> endpoints_;
  std::vector<std::thread> threads_;
};

class ClusterTest : public ::testing::Test {
 protected:
  static const EnterpriseModel& model() {
    static const EnterpriseModel m;
    return m;
  }
  // Small scales, exactly as the orchestrate suite: byte-identity tests
  // analyze the dataset once directly and once per attempt, and hang tests
  // pay the heartbeat deadline per injected hang.
  static constexpr double kScale = 0.004;
  static constexpr double kFaultScale = 0.002;
  static constexpr double kHangDeadline = 2.0;

  static std::size_t trace_count(double scale) {
    return SyntheticTraceSourceSet(dataset_by_name("D0", scale), model()).size();
  }

  static std::string direct_report_at(double scale) {
    const DatasetSpec spec = dataset_by_name("D0", scale);
    const SyntheticTraceSourceSet sources(spec, model());
    const AnalyzerConfig config = default_config_for_model(model().site());
    std::vector<TraceShard> shards = analyze_trace_shards(sources, config, 0, sources.size());
    DatasetAnalysis analysis = fold_shards(spec.name, std::move(shards), config);
    const report::ReportInput input{&spec, &analysis};
    return report::full_report({&input, 1});
  }
  static const std::string& direct_report() {
    static const std::string text = direct_report_at(kScale);
    return text;
  }
  static const std::string& direct_fault_report() {
    static const std::string text = direct_report_at(kFaultScale);
    return text;
  }

  static cluster::ClusterConfig base_config(const WorkerFleet& fleet, double scale = kScale) {
    cluster::ClusterConfig config;
    config.dataset = "D0";
    config.scale = scale;
    config.endpoints = fleet.endpoints();
    config.heartbeat_interval = 0.05;
    config.heartbeat_deadline = 10.0;  // generous: only hang tests shorten it
    return config;
  }
};

TEST_F(ClusterTest, CleanRunMatchesDirectReport) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    WorkerFleet fleet(workers);
    const cluster::ClusterConfig config = base_config(fleet);
    const orchestrate::OrchestrateResult result = cluster::run_cluster(config);
    EXPECT_TRUE(result.complete);
    EXPECT_TRUE(result.manifest.missing.empty());
    EXPECT_EQ(result.attempts, workers);  // jobs default to one per endpoint
    EXPECT_EQ(orchestrate::render_report(result), direct_report());
  }
}

TEST_F(ClusterTest, EveryNetworkFaultKindIsRecoveredByRetry) {
  struct Case {
    const char* name;
    void (*arm)(cluster::NetFaultInjection&);
    orchestrate::WorkerFault expected;
  };
  const Case cases[] = {
      {"refuse", [](cluster::NetFaultInjection& f) { f.refuse = 1.0; },
       orchestrate::WorkerFault::kConnectRefused},
      {"disconnect", [](cluster::NetFaultInjection& f) { f.disconnect = 1.0; },
       orchestrate::WorkerFault::kDisconnect},
      {"corrupt", [](cluster::NetFaultInjection& f) { f.corrupt = 1.0; },
       orchestrate::WorkerFault::kCorruptFrame},
      {"hang", [](cluster::NetFaultInjection& f) { f.hang = 1.0; },
       orchestrate::WorkerFault::kHeartbeatTimeout},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    WorkerFleet fleet(2);
    cluster::ClusterConfig config = base_config(fleet, kFaultScale);
    c.arm(config.inject);
    config.inject.attempt_limit = 1;  // fault every first attempt, then heal
    config.heartbeat_deadline = kHangDeadline;
    config.retry.max_attempts = 3;
    config.retry.base_delay = 0.01;
    config.retry.max_delay = 0.05;

    obs::Registry metrics;
    config.metrics = &metrics;
    const orchestrate::OrchestrateResult result = cluster::run_cluster(config);

    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.fault_counts[c.expected], 2u) << "one injected fault per job";
    EXPECT_EQ(result.retries, 2u);
    EXPECT_EQ(orchestrate::render_report(result), direct_fault_report());

    std::string metric_name = std::string("cluster.fault.") + orchestrate::to_string(c.expected);
    std::replace(metric_name.begin(), metric_name.end(), '-', '_');
    const obs::Metric* counter = metrics.find(metric_name);
    ASSERT_NE(counter, nullptr) << metric_name;
    EXPECT_EQ(counter->counter.value(), 2u);
  }
}

TEST_F(ClusterTest, MixedFaultScheduleIsByteIdenticalAcrossWorkerCounts) {
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    WorkerFleet fleet(workers);
    cluster::ClusterConfig config = base_config(fleet, kFaultScale);
    config.jobs = 4;
    config.inject.refuse = config.inject.disconnect = config.inject.corrupt = 0.2;
    config.inject.hang = 0.1;  // hangs pay the deadline; keep them rarer
    config.inject.seed = 3;
    config.heartbeat_deadline = kHangDeadline;
    config.retry.max_attempts = 8;
    config.retry.base_delay = 0.01;
    config.retry.max_delay = 0.05;

    const orchestrate::OrchestrateResult result = cluster::run_cluster(config);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(orchestrate::render_report(result), direct_fault_report())
        << workers << " workers, " << result.retries << " retries, "
        << result.fault_counts.total_faults() << " faults";
  }
}

TEST_F(ClusterTest, ExhaustedBudgetDegradesToAccurateManifest) {
  WorkerFleet fleet(2);
  cluster::ClusterConfig config = base_config(fleet, kFaultScale);
  config.inject.refuse = 1.0;  // every attempt of every job refused, forever
  config.retry.max_attempts = 2;
  config.retry.base_delay = 0.01;
  config.retry.max_delay = 0.02;

  const orchestrate::OrchestrateResult result = cluster::run_cluster(config);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.manifest.missing.size(), trace_count(kFaultScale));
  EXPECT_EQ(result.attempts, 4u);  // 2 jobs x max_attempts
  EXPECT_EQ(result.fault_counts[orchestrate::WorkerFault::kConnectRefused], 4u);

  const std::string report = orchestrate::render_report(result);
  EXPECT_NE(report.find("PARTIAL RESULTS"), std::string::npos);
  EXPECT_NE(report.find("Coverage manifest"), std::string::npos);
}

TEST_F(ClusterTest, WorkerBinaryServesACoordinator) {
  const fs::path port_file = fs::temp_directory_path() / "entrace_cluster_test_w0.port";
  fs::remove(port_file);
  util::Subprocess worker = util::Subprocess::spawn(
      {ENTRACE_WORKER_BIN, "--port-file", port_file.string(), "--name", "wbin"});

  std::uint16_t port = 0;
  for (int i = 0; i < 1000 && port == 0; ++i) {  // rename makes the file appear complete
    if (fs::exists(port_file)) {
      std::ifstream in(port_file);
      unsigned p = 0;
      in >> p;
      port = static_cast<std::uint16_t>(p);
      break;
    }
    ASSERT_TRUE(worker.running()) << "worker binary exited before publishing its port";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(port, 0u) << "worker never published a port";

  cluster::ClusterConfig config;
  config.dataset = "D0";
  config.scale = kFaultScale;
  config.endpoints = {"127.0.0.1:" + std::to_string(port)};
  const orchestrate::OrchestrateResult result = cluster::run_cluster(config);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(orchestrate::render_report(result), direct_fault_report());

  worker.kill_and_wait();
  fs::remove(port_file);
}

// ---- http server robustness -------------------------------------------------

class HttpRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<obs::HttpServer>(
        0, [](const std::string& path) -> obs::HttpResponse {
          if (path == "/ok") return {200, "text/plain; charset=utf-8", "fine\n"};
          return {404, "text/plain; charset=utf-8", "nope\n"};
        });
    server_->start();
  }
  void TearDown() override { server_->stop(); }

  util::ScopedFd connect() {
    std::string error;
    util::ScopedFd fd = util::tcp_connect("127.0.0.1", server_->port(), 2.0, &error);
    EXPECT_TRUE(fd.valid()) << error;
    return fd;
  }

  // Send `request` and read until the server closes; empty on no response.
  std::string roundtrip(const std::string& request) {
    util::ScopedFd fd = connect();
    if (!fd.valid()) return {};
    EXPECT_TRUE(util::send_all(fd.get(), request.data(), request.size()));
    ::shutdown(fd.get(), SHUT_WR);
    std::string response;
    char buf[4096];
    while (util::poll_in(fd.get(), 3000) == 1) {
      const long n = util::recv_some(fd.get(), buf, sizeof(buf));
      if (n <= 0) break;
      response.append(buf, static_cast<std::size_t>(n));
    }
    return response;
  }

  std::unique_ptr<obs::HttpServer> server_;
};

TEST_F(HttpRobustnessTest, OversizedRequestLineAnswers400) {
  const std::string request = "GET /" + std::string(20000, 'a') + " HTTP/1.0\r\n\r\n";
  const std::string response = roundtrip(request);
  EXPECT_NE(response.find("400"), std::string::npos) << response.substr(0, 80);
  // The server survives and serves the next honest client.
  EXPECT_NE(roundtrip("GET /ok HTTP/1.0\r\n\r\n").find("200"), std::string::npos);
}

// The query-string 404 regression: "GET /ok?probe=1" must dispatch to the
// /ok handler (the target is stripped of ?query/#fragment before matching),
// while a genuinely unknown path keeps 404ing with or without a query.
TEST_F(HttpRobustnessTest, QueryStringsAndFragmentsAreStrippedBeforeDispatch) {
  EXPECT_NE(roundtrip("GET /ok?probe=1 HTTP/1.0\r\n\r\n").find("200"), std::string::npos);
  EXPECT_NE(roundtrip("GET /ok?a=1&b=2 HTTP/1.0\r\n\r\n").find("fine"), std::string::npos);
  EXPECT_NE(roundtrip("GET /ok#frag HTTP/1.0\r\n\r\n").find("200"), std::string::npos);
  EXPECT_NE(roundtrip("GET /ok? HTTP/1.0\r\n\r\n").find("200"), std::string::npos);
  EXPECT_NE(roundtrip("GET /nope?probe=1 HTTP/1.0\r\n\r\n").find("404"), std::string::npos);
}

TEST_F(HttpRobustnessTest, EmptyAndHalfRequestsAreShruggedOff) {
  {  // connect-and-close probe (a port scanner, a load balancer health check)
    util::ScopedFd fd = connect();
    ASSERT_TRUE(fd.valid());
  }
  {  // client hangs up mid-request-line
    util::ScopedFd fd = connect();
    ASSERT_TRUE(fd.valid());
    const char partial[] = "GET /ok HT";
    EXPECT_TRUE(util::send_all(fd.get(), partial, sizeof(partial) - 1));
  }
  EXPECT_NE(roundtrip("GET /ok HTTP/1.0\r\n\r\n").find("200"), std::string::npos);
}

// ---- daemon /report: windowed fold == batch report --------------------------

TEST(WindowedReportTest, RenderWindowedReportMatchesBatchRun) {
  const EnterpriseModel model;
  DatasetSpec spec = dataset_d3(0.004);
  spec.monitored_subnets = {4, 15, 20};
  const TraceSet traces = generate_dataset(spec, model);
  const AnalyzerConfig config = default_config_for_model(model.site());
  const std::string batch = [&] {
    DatasetAnalysis analysis = analyze_dataset(traces, config);
    const report::ReportInput input{&spec, &analysis};
    return report::full_report({&input, 1});
  }();

  // A windowed replay checkpointing every rotation, exactly as the daemon
  // does (exact mode: /report equality requires no eviction).
  MergedPacketStream stream = merged_stream(traces);
  std::vector<TraceMeta> metas;
  for (std::size_t i = 0; i < stream.source_count(); ++i) {
    metas.push_back(stream.source(i).meta());
  }
  double lo = 1e300, hi = -1e300;
  for (const TraceMeta& m : metas) {
    lo = std::min(lo, m.start_ts);
    hi = std::max(hi, m.start_ts + m.duration);
  }
  IncrementalOptions opts;
  opts.window_seconds = (hi - lo) / 7.3;
  IncrementalAnalyzer analyzer(std::move(metas), config, opts);

  const fs::path dir = fs::temp_directory_path() / "entrace_cluster_report_windows";
  fs::create_directories(dir);
  const snapshot::SnapshotMeta meta{spec.name, 0.004,
                                    static_cast<std::uint32_t>(stream.source_count())};
  std::vector<std::string> paths;
  const auto checkpoint = [&](const WindowShard& w) {
    const std::string path = (dir / snapshot::window_file_name(paths.size())).string();
    ASSERT_GT(snapshot::write_window_snapshot(path, meta, w), 0u);
    paths.push_back(path);
  };

  std::vector<PacketView> views(256);
  for (;;) {
    const std::size_t got = stream.next_batch(views.data(), views.size());
    if (got == 0) break;
    analyzer.feed(views.data(), got);
    while (analyzer.window_complete()) checkpoint(analyzer.rotate());
  }
  checkpoint(analyzer.finish(&stream));
  ASSERT_GE(paths.size(), 2u);

  EXPECT_EQ(snapshot::render_windowed_report(paths, spec, config), batch);
  EXPECT_THROW(snapshot::render_windowed_report({(dir / "window-gone.esnap").string()}, spec,
                                                config),
               std::exception);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace entrace
