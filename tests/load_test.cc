// Tests for the §6 load analysis (Figures 9-10).
#include <gtest/gtest.h>

#include "analysis/load.h"

namespace entrace {
namespace {

TEST(Load, PeakDropsWithWiderTimescale) {
  TraceLoadRaw raw;
  raw.trace_name = "t";
  // One 1-second burst of 50 Mb inside an otherwise quiet minute.
  raw.add_packet(10.2, 6250000);  // 50 Mbit in one packet-equivalent
  for (int i = 0; i < 60; ++i) raw.add_packet(i + 0.5, 125);  // 1 kbit/s background
  LoadAnalysis load = LoadAnalysis::compute({raw}, /*min_packets=*/1);
  ASSERT_EQ(load.peak_1s.count(), 1u);
  const double p1 = load.peak_1s.max();
  const double p10 = load.peak_10s.max();
  const double p60 = load.peak_60s.max();
  EXPECT_GT(p1, 45.0);
  EXPECT_LT(p10, p1);
  EXPECT_LT(p60, p10);
}

TEST(Load, TypicalUtilizationOrdersBelowPeak) {
  TraceLoadRaw raw;
  raw.trace_name = "t";
  for (int i = 0; i < 600; ++i) raw.add_packet(i * 0.1, 1250);  // ~100 kbps steady
  raw.add_packet(30.0, 12500000);                               // one 100 Mb spike
  LoadAnalysis load = LoadAnalysis::compute({raw}, 1);
  EXPECT_GT(load.max_1s.max() / load.median_1s.max(), 50.0);
}

TEST(Load, RetransmissionRates) {
  TraceLoadRaw a;
  a.trace_name = "clean";
  a.ent_tcp_pkts = 10000;
  a.ent_retx = 50;  // 0.5%
  a.wan_tcp_pkts = 5000;
  a.wan_retx = 100;  // 2%
  a.add_packet(0.0, 100);
  TraceLoadRaw b;
  b.trace_name = "lossy";
  b.ent_tcp_pkts = 10000;
  b.ent_retx = 500;  // 5% — the Veritas trace
  b.wan_tcp_pkts = 100;  // below min_packets: skipped
  b.wan_retx = 10;
  b.add_packet(0.0, 100);

  LoadAnalysis load = LoadAnalysis::compute({a, b}, 1000);
  ASSERT_EQ(load.retx_ent.count(), 2u);
  EXPECT_NEAR(load.retx_ent.min(), 0.005, 1e-9);
  EXPECT_NEAR(load.retx_ent.max(), 0.05, 1e-9);
  ASSERT_EQ(load.retx_wan.count(), 1u);  // the tiny trace was skipped
  EXPECT_NEAR(load.retx_wan.max(), 0.02, 1e-9);
  EXPECT_EQ(load.retx_wan_by_trace[1], -1.0);
}

TEST(Load, KeepalivesTracked) {
  TraceLoadRaw a;
  a.trace_name = "ka";
  a.keepalive_excluded = 42;
  a.add_packet(0.0, 100);
  LoadAnalysis load = LoadAnalysis::compute({a}, 1);
  EXPECT_EQ(load.keepalives_excluded, 42u);
}

TEST(Load, EmptyTraceIsSafe) {
  TraceLoadRaw empty;
  empty.trace_name = "empty";
  LoadAnalysis load = LoadAnalysis::compute({empty}, 1);
  EXPECT_EQ(load.peak_1s.count(), 0u);
  EXPECT_EQ(load.retx_ent.count(), 0u);
}

}  // namespace
}  // namespace entrace
