// Windowed/continuous-operation suite (CTest label "daemon", also run under
// sanitizers via `ctest --preset daemon-asan` / `ctest --preset daemon-tsan`).
//
// Pins the contract the daemon is trusted on (core/incremental.h): a
// windowed replay — IncrementalAnalyzer fed from a merged time-ordered
// stream, rotating WindowShards at boundaries — merges back per trace
// (snapshot/window.h) and folds to a DatasetAnalysis byte-identical to the
// one-shot batch run, at 1 and 4 threads, directly and through the .esnap
// checkpoint round-trip.  Also covered: FakeClock-paced replay (schedule
// arithmetic and analysis transparency), end-of-stream drain accounting
// (flow.drained), retention tiering, the embedded HTTP server, a SIGTERM
// drain of the real entrace_daemon binary, and a bounded-memory soak over
// >= 50 rotated windows with eviction + reclaim + retention.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "core/incremental.h"
#include "core/report.h"
#include "obs/http_server.h"
#include "pcap/packet_source.h"
#include "pcap/replay.h"
#include "snapshot/format.h"
#include "snapshot/retention.h"
#include "snapshot/window.h"
#include "synth/generator.h"
#include "util/clock.h"
#include "util/subprocess.h"

namespace entrace {
namespace {

namespace fs = std::filesystem;
namespace snap = entrace::snapshot;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kUnderSanitizer = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kUnderSanitizer = true;
#else
constexpr bool kUnderSanitizer = false;
#endif
#else
constexpr bool kUnderSanitizer = false;
#endif

std::size_t resident_bytes() {
  std::ifstream f("/proc/self/statm");
  std::size_t pages_total = 0, pages_resident = 0;
  f >> pages_total >> pages_resident;
  return pages_resident * static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
}

class DaemonTest : public ::testing::Test {
 protected:
  static const EnterpriseModel& model() {
    static const EnterpriseModel m;
    return m;
  }
  static DatasetSpec small_spec() {
    DatasetSpec spec = dataset_d3(0.004);
    spec.monitored_subnets = {4, 15, 20};
    return spec;
  }
  static const TraceSet& materialized() {
    static const TraceSet traces = generate_dataset(small_spec(), model());
    return traces;
  }
  static AnalyzerConfig config(std::size_t threads, std::size_t batch_size) {
    AnalyzerConfig c = default_config_for_model(model().site());
    c.threads = threads;
    c.batch_size = batch_size;
    return c;
  }
  static std::string report_of(const DatasetAnalysis& analysis) {
    const DatasetSpec s = small_spec();
    const report::ReportInput input{&s, &analysis};
    const std::vector<report::ReportInput> inputs{input};
    return report::full_report(inputs);
  }
  // The equivalence reference: one-shot batch run over the same packets.
  static const std::string& batch_report() {
    static const std::string r =
        report_of(analyze_dataset(materialized(), config(1, 256)));
    return r;
  }
  // Wall span of the merged timeline (window widths derive from it so the
  // window counts below stay stable if the dataset layout shifts).
  static double merged_span() {
    const MergedPacketStream stream = merged_stream(materialized());
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = 0; i < stream.source_count(); ++i) {
      const TraceMeta& m = stream.source(i).meta();
      lo = std::min(lo, m.start_ts);
      hi = std::max(hi, m.start_ts + m.duration);
    }
    return hi - lo;
  }

  struct WindowedRun {
    std::string report;
    std::uint64_t windows = 0;    // rotated (including the final partial one)
    std::uint64_t drained = 0;
    std::uint64_t evicted = 0;
  };

  // Drive a full windowed replay in exact-equality mode (evict/reclaim off),
  // optionally paced through a FakeClock and/or round-tripped through .esnap
  // window checkpoints, then merge + fold back to one DatasetAnalysis.
  static WindowedRun windowed_run(std::size_t threads, double window_seconds,
                                  bool via_disk, bool paced) {
    MergedPacketStream stream = merged_stream(materialized());
    std::vector<TraceMeta> metas;
    metas.reserve(stream.source_count());
    for (std::size_t i = 0; i < stream.source_count(); ++i) {
      metas.push_back(stream.source(i).meta());
    }
    const AnalyzerConfig cfg = config(threads, 256);
    IncrementalOptions opts;
    opts.window_seconds = window_seconds;
    IncrementalAnalyzer analyzer(std::move(metas), cfg, opts);

    util::FakeClock clock;
    PacedReplaySource replay(stream, clock, paced ? 100.0 : 0.0);

    std::vector<PacketView> views(256);
    std::vector<WindowShard> windows;
    for (;;) {
      const std::size_t got = replay.next_batch(views.data(), views.size());
      if (got == 0) break;
      analyzer.feed(views.data(), got);
      while (analyzer.window_complete()) windows.push_back(analyzer.rotate());
    }
    windows.push_back(analyzer.finish(&stream));

    WindowedRun run;
    run.windows = analyzer.windows_rotated();
    run.drained = analyzer.drained_total();
    run.evicted = analyzer.evicted_total();

    if (via_disk) {
      const fs::path dir = fs::temp_directory_path() /
                           ("entrace_daemon_rt_" + std::to_string(threads));
      fs::create_directories(dir);
      const snap::SnapshotMeta meta{small_spec().name, 0.004,
                                    static_cast<std::uint32_t>(stream.source_count())};
      std::vector<WindowShard> reread;
      reread.reserve(windows.size());
      for (std::size_t i = 0; i < windows.size(); ++i) {
        const std::string path = (dir / snap::window_file_name(i)).string();
        const std::uint64_t bytes = snap::write_window_snapshot(path, meta, windows[i]);
        EXPECT_GT(bytes, 0u);
        reread.push_back(snap::read_window_snapshot(path));
      }
      windows = std::move(reread);
      fs::remove_all(dir);
    }

    std::vector<TraceShard> shards = snap::merge_window_shards(std::move(windows), cfg);
    run.report = report_of(fold_shards(small_spec().name, std::move(shards), cfg));
    return run;
  }
};

// ---- windowed replay == one-shot batch --------------------------------------

TEST_F(DaemonTest, WindowedReplayFoldsToBatchReport) {
  const double span = merged_span();
  ASSERT_GT(span, 0.0);
  // Two window widths that divide nothing evenly: rotations land mid-flow,
  // mid-trace, and inside idle gaps.
  for (const double window : {span / 7.3, span / 23.0}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("window=" + std::to_string(window) +
                   " threads=" + std::to_string(threads));
      const WindowedRun run = windowed_run(threads, window, false, false);
      EXPECT_GE(run.windows, 2u);
      EXPECT_EQ(run.evicted, 0u);  // exact mode: no time-driven eviction
      EXPECT_EQ(run.report, batch_report());
    }
  }
}

TEST_F(DaemonTest, WindowCheckpointRoundTripFoldsToBatchReport) {
  const double span = merged_span();
  const WindowedRun run = windowed_run(4, span / 11.0, true, false);
  EXPECT_GE(run.windows, 2u);
  EXPECT_EQ(run.report, batch_report());
}

// ---- end-of-stream drain accounting -----------------------------------------

// drain_all() classifies every still-open flow when the stream ends; the
// count surfaces as the flow.drained semantic counter and must agree between
// the batch path and the windowed path (both drain exactly once, at finish).
TEST_F(DaemonTest, DrainClassifiesOpenFlowsAtEndOfStream) {
  const DatasetAnalysis batch = analyze_dataset(materialized(), config(1, 256));
  const obs::Metric* drained = batch.metrics.find("flow.drained");
  ASSERT_NE(drained, nullptr);
  EXPECT_GT(drained->counter.value(), 0u);

  const obs::Metric* evicted = batch.metrics.find("flow.evicted");
  ASSERT_NE(evicted, nullptr);
  EXPECT_EQ(evicted->counter.value(), 0u);  // batch never time-evicts

  const WindowedRun windowed = windowed_run(1, merged_span() / 7.3, false, false);
  EXPECT_EQ(windowed.drained, drained->counter.value());
}

// ---- paced replay -----------------------------------------------------------

// The pacing schedule under a FakeClock: the first batch anchors capture
// time to wall time, and every later batch is released at (ts - base) /
// speedup — so total virtual sleep equals the capture span after the anchor,
// scaled.  FakeClock advances only through sleep(), which makes the
// arithmetic exactly checkable.
TEST_F(DaemonTest, PacedReplayFakeClockSchedule) {
  constexpr double kSpeedup = 100.0;
  MergedPacketStream stream = merged_stream(materialized());
  util::FakeClock clock(1000.0);
  PacedReplaySource paced(stream, clock, kSpeedup);

  std::vector<PacketView> views(256);
  double anchor_ts = 0.0;
  double last_ts = 0.0;
  bool first_batch = true;
  std::uint64_t packets = 0;
  for (;;) {
    const std::size_t got = paced.next_batch(views.data(), views.size());
    if (got == 0) break;
    if (first_batch) {
      // pace_to anchors on the first batch's tail timestamp.
      anchor_ts = views[got - 1].ts;
      first_batch = false;
    }
    last_ts = views[got - 1].ts;
    packets += got;
  }
  ASSERT_GT(packets, 0u);
  const double expected_wall = (last_ts - anchor_ts) / kSpeedup;
  EXPECT_GT(expected_wall, 0.0);
  EXPECT_NEAR(paced.slept_seconds(), expected_wall, 1e-6);
  EXPECT_NEAR(clock.now() - 1000.0, expected_wall, 1e-6);
}

TEST_F(DaemonTest, PacedReplayPassThroughWhenSpeedupDisabled) {
  MergedPacketStream stream = merged_stream(materialized());
  util::FakeClock clock;
  PacedReplaySource paced(stream, clock, 0.0);
  std::vector<PacketView> views(256);
  while (paced.next_batch(views.data(), views.size()) != 0) {
  }
  EXPECT_EQ(paced.slept_seconds(), 0.0);
  EXPECT_EQ(clock.now(), 0.0);
}

// Pacing is transparent to analysis: a windowed replay through a paced
// source folds to the same report as the unpaced batch run.
TEST_F(DaemonTest, PacedWindowedReplayFoldsToBatchReport) {
  const WindowedRun run = windowed_run(2, merged_span() / 7.3, false, true);
  EXPECT_EQ(run.report, batch_report());
}

// ---- retention tiering ------------------------------------------------------

TEST_F(DaemonTest, RetentionAgesWindowsBeyondKeepFull) {
  const fs::path dir = fs::temp_directory_path() / "entrace_daemon_retention";
  fs::remove_all(dir);
  fs::create_directories(dir);
  snap::RetentionManager retention(dir.string(), 2);

  for (std::uint64_t i = 0; i < 5; ++i) {
    const std::string path = (dir / snap::window_file_name(i)).string();
    std::ofstream(path) << "stand-in esnap payload";
    snap::WindowSummary s;
    s.index = i;
    s.start_ts = 60.0 * static_cast<double>(i);
    s.end_ts = s.start_ts + 60.0;
    s.packets = 100 + i;
    s.snapshot_bytes = 23;
    const snap::AgeResult aged = retention.add_window(s, path);
    EXPECT_TRUE(aged.ok());
    EXPECT_EQ(aged.aged, i < 2 ? 0u : 1u);
  }
  EXPECT_EQ(retention.tier0_count(), 2u);
  EXPECT_EQ(retention.summarized_count(), 3u);

  // Tier 0 on disk: exactly the two newest .esnap files survive.
  std::vector<std::string> esnaps;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".esnap") esnaps.push_back(e.path().filename().string());
  }
  std::sort(esnaps.begin(), esnaps.end());
  EXPECT_EQ(esnaps, (std::vector<std::string>{snap::window_file_name(3),
                                              snap::window_file_name(4)}));

  // Tier 1: one self-contained JSON line per aged window, in age order.
  std::ifstream summary(retention.summary_path());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(summary, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"window\":0"), std::string::npos);
  EXPECT_NE(lines[2].find("\"window\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"packets\":100"), std::string::npos);
  fs::remove_all(dir);
}

// ---- embedded HTTP server ---------------------------------------------------

TEST_F(DaemonTest, HttpServerServesHandlerResponses) {
  obs::HttpServer server(0, [](const std::string& path) {
    obs::HttpResponse resp;
    if (path == "/missing") {
      resp.status = 404;
      resp.body = "not found\n";
    } else {
      resp.content_type = "text/plain; version=0.0.4";
      resp.body = "echo " + path + "\n";
    }
    return resp;
  });
  server.start();
  ASSERT_GT(server.port(), 0);

  const auto fetch = [&](const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
    std::string out;
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  };

  const std::string ok = fetch("/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(ok.find("echo /metrics"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length:"), std::string::npos);
  const std::string missing = fetch("/missing");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  // Query strings and fragments are stripped before dispatch: a scraper's
  // "GET /metrics?format=prometheus" must reach the /metrics handler, not
  // fall through to 404 because no handler matches the decorated target.
  for (const std::string decorated :
       {"/metrics?format=prometheus", "/metrics?a=1&b=2", "/metrics#frag", "/metrics?x=1#frag"}) {
    SCOPED_TRACE(decorated);
    const std::string resp = fetch(decorated);
    EXPECT_NE(resp.find("HTTP/1.0 200"), std::string::npos);
    EXPECT_NE(resp.find("echo /metrics\n"), std::string::npos);  // bare path, no query
  }
  // A decorated unknown path still 404s — stripping does not rewrite.
  const std::string decorated_missing = fetch("/missing?probe=1");
  EXPECT_NE(decorated_missing.find("HTTP/1.0 404"), std::string::npos);
  server.stop();
}

// The /healthz starvation regression: with a worker pool (the daemon passes
// workers = 2), a liveness probe must be answered while a slow handler (the
// daemon's multi-second /report fold) is still in flight, instead of
// queueing behind it on the single accept thread.
TEST_F(DaemonTest, HttpServerAnswersHealthzDuringSlowHandler) {
  std::mutex mu;
  std::condition_variable cv;
  bool slow_started = false;
  bool release_slow = false;

  obs::HttpServer server(
      0,
      [&](const std::string& path) {
        if (path == "/slow") {
          std::unique_lock<std::mutex> lock(mu);
          slow_started = true;
          cv.notify_all();
          // Parks this worker until the probe below has been answered (or a
          // 10 s safety valve so a regression fails instead of hanging).
          cv.wait_for(lock, std::chrono::seconds(10), [&] { return release_slow; });
          return obs::HttpResponse{200, "text/plain; charset=utf-8", "slow done\n"};
        }
        return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
      },
      /*workers=*/2);
  server.start();
  ASSERT_GT(server.port(), 0);

  const auto fetch = [&](const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
    std::string out;
    char buf[1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  };

  std::thread slow_client([&] {
    const std::string resp = fetch("/slow");
    EXPECT_NE(resp.find("slow done"), std::string::npos);
  });
  {
    // Only probe once the slow handler is demonstrably occupying a worker.
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10), [&] { return slow_started; }));
  }
  const std::string health = fetch("/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);
  {
    std::lock_guard<std::mutex> lock(mu);
    release_slow = true;
  }
  cv.notify_all();
  slow_client.join();
  server.stop();
}

// ---- the real daemon binary: SIGTERM drain ----------------------------------

// Start entrace_daemon mid-replay (speedup keeps it streaming for minutes),
// send SIGTERM, and require a clean exit that flushed the open window: at
// least one readable window checkpoint must be on disk afterwards.
TEST_F(DaemonTest, DaemonBinarySigtermDrainWritesCheckpoint) {
  const fs::path dir = fs::temp_directory_path() / "entrace_daemon_sigterm";
  fs::remove_all(dir);
  fs::create_directories(dir);

  util::Subprocess child = util::Subprocess::spawn(
      {ENTRACE_DAEMON_BIN, "D3", "0.002", "--out", dir.string(), "--window", "60",
       "--speedup", "30", "--retain", "4", "--threads", "2"});

  // Wait until the daemon has demonstrably ingested (first checkpoint on
  // disk) so the SIGTERM lands mid-stream, then ask for a graceful drain.
  const auto has_checkpoint = [&] {
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".esnap") return true;
    }
    return false;
  };
  std::optional<util::ExitStatus> status;
  for (int i = 0; i < 600; ++i) {
    status = child.poll();
    if (status.has_value() || has_checkpoint()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!status.has_value()) {
    ::kill(child.pid(), SIGTERM);
    status = child.wait_for(120.0);
  }
  ASSERT_TRUE(status.has_value()) << "daemon did not exit after SIGTERM";
  EXPECT_TRUE(status->success())
      << "exited=" << status->exited << " code=" << status->exit_code
      << " signaled=" << status->signaled << " sig=" << status->term_signal;

  std::size_t checkpoints = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() != ".esnap") continue;
    ++checkpoints;
    const WindowShard w = snap::read_window_snapshot(e.path().string());
    EXPECT_FALSE(w.shards.empty()) << e.path();
  }
  EXPECT_GE(checkpoints, 1u) << "drain did not flush the open window";
  fs::remove_all(dir);
}

// ---- the real daemon binary: /report vs aging race --------------------------

// The fold-unlink race: /report used to snapshot the tier path list, then
// read the files with no lock held — a rotation on the analysis thread could
// fold those windows into a sketch and delete them mid-read, turning almost
// every mid-run /report into a 500.  Aging and rendering now serialize on
// the render lock (and the path list is re-read under it), so a live daemon
// must answer 200 (or 404 before the first checkpoint) for every poll while
// windows rotate and sketches fold underneath.
TEST_F(DaemonTest, DaemonBinaryReportNeverFailsWhileSketchesFold) {
  const fs::path dir = fs::temp_directory_path() / "entrace_daemon_report_race";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::uint16_t port = static_cast<std::uint16_t>(18000 + ::getpid() % 2000);

  // window 30 @ speedup 30 rotates ~1/s; retain 1 + sketch-every 2 makes
  // nearly every rotation age a window and every other rotation fold (and
  // delete) sketch inputs while we hammer /report.
  util::Subprocess child = util::Subprocess::spawn(
      {ENTRACE_DAEMON_BIN, "D3", "0.002", "--out", dir.string(), "--window", "30",
       "--speedup", "30", "--retain", "1", "--sketch-every", "2",
       "--http-port", std::to_string(port)});

  const auto fetch = [&](const std::string& path) -> std::string {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return {};
    }
    const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
    if (::send(fd, req.data(), req.size(), 0) != static_cast<ssize_t>(req.size())) {
      ::close(fd);
      return {};
    }
    std::string out;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  };

  // Wait for the HTTP server to come up.
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    up = !fetch("/healthz").empty();
    if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  ASSERT_TRUE(up) << "daemon never served /healthz on port " << port;

  std::size_t ok_reports = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(8);
  while (std::chrono::steady_clock::now() < deadline) {
    if (child.poll().has_value()) break;  // replay ended early; stop polling
    const std::string resp = fetch("/report");
    if (resp.empty()) continue;  // daemon exiting between poll and connect
    ASSERT_EQ(resp.find("HTTP/1.0 5"), std::string::npos)
        << "mid-run /report failed:\n" << resp.substr(0, 200);
    if (resp.find("HTTP/1.0 200") != std::string::npos) ++ok_reports;
  }
  EXPECT_GE(ok_reports, 1u) << "no successful /report during the run";

  // Prove the polls overlapped real aging: a sketch must have been folded.
  // (With sketch-every 2 a pair of tier-1 sketches compacts straight into a
  // tier-2 file, dropping the tier-1 count back to 0 — either tier counts.)
  const std::string status_json = fetch("/status.json");
  if (!status_json.empty()) {
    EXPECT_TRUE(status_json.find("\"tier1_sketches\":0,\"tier2_sketches\":0,") ==
                std::string::npos)
        << "run too short to fold a sketch — widen the poll window\n" << status_json;
  }

  ::kill(child.pid(), SIGTERM);
  const std::optional<util::ExitStatus> status = child.wait_for(120.0);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->success());
  fs::remove_all(dir);
}

// ---- the real daemon binary: strict flag parsing ----------------------------

// The std::atoi regression: "--retain -1" used to wrap to SIZE_MAX and
// "--retain x" silently became 0.  Every numeric flag now goes through the
// strict util::cli parsers, garbage is a usage error (exit 2) before any
// replay starts, and the degenerate tier combinations are rejected.
TEST_F(DaemonTest, DaemonBinaryRejectsGarbageNumericFlags) {
  const fs::path dir = fs::temp_directory_path() / "entrace_daemon_badflags";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const std::vector<std::vector<std::string>> bad_invocations = {
      {"--retain", "-1"},          // sign must not wrap to SIZE_MAX
      {"--retain", "x"},           // garbage must not read as 0
      {"--retain", "4x"},          // trailing garbage rejected too
      {"--threads", "-2"},
      {"--window", "abc"},
      {"--sketch-every", "1"},     // 0 (off) or >= 2; a 1-wide fold is a no-op
      {"--retain", "0", "--sketch-every", "0"},  // would retain no history at all
  };
  for (const std::vector<std::string>& extra : bad_invocations) {
    std::vector<std::string> argv = {ENTRACE_DAEMON_BIN, "D3", "0.002", "--out", dir.string(),
                                     "--max-windows", "1"};
    std::string label;
    for (const std::string& a : extra) {
      argv.push_back(a);
      label += a + " ";
    }
    SCOPED_TRACE(label);
    util::Subprocess child = util::Subprocess::spawn(argv);
    const std::optional<util::ExitStatus> status = child.wait_for(30.0);
    ASSERT_TRUE(status.has_value());
    EXPECT_TRUE(status->exited);
    EXPECT_EQ(status->exit_code, 2);  // usage error, not a silent run
  }
  // No invocation above may have gotten far enough to checkpoint anything.
  EXPECT_TRUE(fs::is_empty(dir));
  fs::remove_all(dir);
}

// ---- bounded-memory soak ----------------------------------------------------

// Continuous-operation invariant: with eviction + slot reclaim + retention
// tiering, >= 50 rotated windows leave RSS flat (sampled after warm-up) and
// disk bounded at keep_full checkpoints plus one summary line per aged
// window.  The RSS bound is skipped under sanitizers (quarantine and shadow
// memory grow resident size by design).
TEST_F(DaemonTest, SoakEvictReclaimRetentionStaysBounded) {
  MergedPacketStream stream = merged_stream(materialized());
  std::vector<TraceMeta> metas;
  for (std::size_t i = 0; i < stream.source_count(); ++i) {
    metas.push_back(stream.source(i).meta());
  }
  const AnalyzerConfig cfg = config(2, 256);
  IncrementalOptions opts;
  opts.window_seconds = merged_span() / 64.0;
  opts.evict = true;
  opts.reclaim = true;
  IncrementalAnalyzer analyzer(std::move(metas), cfg, opts);

  const fs::path dir = fs::temp_directory_path() / "entrace_daemon_soak";
  fs::remove_all(dir);
  fs::create_directories(dir);
  snap::RetentionManager retention(dir.string(), 3);
  const snap::SnapshotMeta meta{small_spec().name, 0.004,
                                static_cast<std::uint32_t>(stream.source_count())};

  const auto checkpoint = [&](WindowShard&& w) {
    const std::string path = (dir / snap::window_file_name(w.index)).string();
    snap::WindowSummary s;
    s.index = w.index;
    s.start_ts = w.start_ts;
    s.end_ts = w.end_ts;
    for (const TraceShard& shard : w.shards) s.packets += shard.total_packets;
    s.snapshot_bytes = snap::write_window_snapshot(path, meta, w);
    retention.add_window(s, path);
  };

  std::size_t warmed_rss = 0;
  std::vector<PacketView> views(256);
  for (;;) {
    const std::size_t got = stream.next_batch(views.data(), views.size());
    if (got == 0) break;
    analyzer.feed(views.data(), got);
    while (analyzer.window_complete()) {
      checkpoint(analyzer.rotate());
      if (analyzer.windows_rotated() == 10) warmed_rss = resident_bytes();
    }
  }
  checkpoint(analyzer.finish(&stream));

  EXPECT_GE(analyzer.windows_rotated(), 50u);
  EXPECT_GT(analyzer.evicted_total(), 0u);
  EXPECT_GT(analyzer.drained_total(), 0u);

  // Disk is bounded: keep_full checkpoints on disk, everything older is one
  // summary line.
  EXPECT_LE(retention.tier0_count(), 3u);
  std::size_t esnaps = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".esnap") ++esnaps;
  }
  EXPECT_EQ(esnaps, retention.tier0_count());
  std::ifstream summary(retention.summary_path());
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(summary, line)) ++lines;
  EXPECT_EQ(lines, retention.summarized_count());
  // windows_rotated() includes the final partial window finish() harvested.
  EXPECT_EQ(retention.tier0_count() + retention.summarized_count(), analyzer.windows_rotated());

  // RSS flat after warm-up: the whole point of evict + reclaim + tiering.
  if (!kUnderSanitizer && warmed_rss != 0) {
    const std::size_t final_rss = resident_bytes();
    EXPECT_LT(final_rss, warmed_rss + warmed_rss / 2 + (64u << 20))
        << "RSS grew from " << warmed_rss << " to " << final_rss;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace entrace
