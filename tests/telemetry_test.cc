// Telemetry suite (CTest label "telemetry", also run sanitized via
// `ctest --preset telemetry-asan` and `ctest --preset telemetry-tsan`).
//
// Pins the obs contract:
//   1. Registry semantics: idempotent registration, one-name-one-meaning,
//      deterministic merge (counters/buckets sum, gauges sum).
//   2. Exposition: table/JSON/Prometheus render stably; timing-class
//      metrics never leak into semantic-only views.
//   3. Determinism: every semantic metric is byte-identical across thread
//      counts AND across a shard→snapshot→decode→merge round trip — the
//      same contract the report itself honours.
//   4. EmpiricalCdf concurrency regression: concurrent const reads of a
//      shared CDF are race-free (run under TSan via telemetry-tsan).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "synth/synth_source.h"
#include "util/stats.h"

namespace entrace {
namespace {

using obs::MetricClass;
using obs::MetricKind;
using obs::Registry;

// ---- registry semantics -----------------------------------------------------

TEST(Registry, CounterHandleIsStableAndIdempotent) {
  Registry reg;
  obs::Counter* c = reg.counter("a.count", MetricClass::kSemantic, "help text");
  c->add(3);
  // Re-registration returns the same handle and keeps the first help text.
  EXPECT_EQ(reg.counter("a.count", MetricClass::kSemantic), c);
  c->add();
  EXPECT_EQ(c->value(), 4u);
  const obs::Metric* m = reg.find("a.count");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->help, "help text");
  EXPECT_EQ(m->kind, MetricKind::kCounter);
}

TEST(Registry, KindAndClassMismatchThrow) {
  Registry reg;
  reg.counter("x", MetricClass::kSemantic);
  EXPECT_THROW(reg.gauge("x", MetricClass::kSemantic), std::logic_error);
  EXPECT_THROW(reg.counter("x", MetricClass::kTiming), std::logic_error);
  reg.histogram("h", MetricClass::kSemantic, {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", MetricClass::kSemantic, {1.0, 3.0}), std::logic_error);
}

TEST(Registry, MetricsAreNameOrdered) {
  Registry reg;
  reg.counter("zeta", MetricClass::kSemantic);
  reg.counter("alpha", MetricClass::kSemantic);
  reg.gauge("mid", MetricClass::kTiming);
  const auto all = reg.metrics();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "alpha");
  EXPECT_EQ(all[1]->name, "mid");
  EXPECT_EQ(all[2]->name, "zeta");
}

TEST(Registry, MergeSumsAndCreates) {
  Registry a, b;
  a.counter("c", MetricClass::kSemantic)->add(2);
  b.counter("c", MetricClass::kSemantic)->add(5);
  b.gauge("g", MetricClass::kTiming)->set(1.5);
  b.histogram("h", MetricClass::kSemantic, {10.0})->observe(3.0);
  a.merge(b);
  EXPECT_EQ(a.find("c")->counter.value(), 7u);
  EXPECT_DOUBLE_EQ(a.find("g")->gauge.value(), 1.5);
  ASSERT_NE(a.find("h"), nullptr);
  EXPECT_EQ(a.find("h")->histogram->count(), 1u);
  // Merge order does not matter for the folded values.
  Registry c;
  c.counter("c", MetricClass::kSemantic)->add(5);
  Registry d;
  d.counter("c", MetricClass::kSemantic)->add(2);
  c.merge(d);
  EXPECT_EQ(c.find("c")->counter.value(), a.find("c")->counter.value());
}

// ---- histogram --------------------------------------------------------------

TEST(Histogram, BucketPlacementAndOverflow) {
  obs::Histogram h({10.0, 20.0});
  h.observe(5.0);    // <= 10
  h.observe(10.0);   // inclusive upper bound -> first bucket
  h.observe(15.0);   // <= 20
  h.observe(100.0);  // overflow
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 130.0);
}

TEST(Histogram, MergeRequiresSameBounds) {
  obs::Histogram a({1.0, 2.0}), b({1.0, 2.0}), c({1.0, 3.0});
  a.observe(0.5);
  b.observe_n(1.5, 4);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.buckets()[1], 4u);
  EXPECT_THROW(a.merge(c), std::logic_error);
}

TEST(Histogram, UnsortedBoundsRejected) {
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::logic_error);
}

TEST(Histogram, RestoreValidatesBucketCount) {
  obs::Histogram h({1.0});
  EXPECT_THROW(h.restore({1, 2, 3}, 6, 1.0), std::logic_error);
  h.restore({1, 2}, 3, 4.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.5);
}

// ---- exposition -------------------------------------------------------------

TEST(Exposition, TableOmitsTimingByDefault) {
  Registry reg;
  reg.counter("sem.count", MetricClass::kSemantic, "a semantic fact")->add(7);
  reg.gauge("time.secs", MetricClass::kTiming)->set(1.0);
  const std::string table = obs::render_table(reg, "Telemetry");
  EXPECT_NE(table.find("sem.count"), std::string::npos);
  EXPECT_NE(table.find("7"), std::string::npos);
  EXPECT_EQ(table.find("time.secs"), std::string::npos);
  const std::string with_timing = obs::render_table(reg, "Telemetry", /*include_timing=*/true);
  EXPECT_NE(with_timing.find("time.secs"), std::string::npos);
}

TEST(Exposition, JsonRendersAllKindsStably) {
  Registry reg;
  reg.counter("c", MetricClass::kSemantic)->add(3);
  reg.gauge("g", MetricClass::kTiming)->set(0.25);
  reg.histogram("h", MetricClass::kSemantic, {1.0, 2.0})->observe(1.5);
  const std::string json = obs::render_json(reg);
  EXPECT_NE(json.find("\"c\": {\"class\": \"semantic\", \"kind\": \"counter\", \"value\": 3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"g\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  // Two renders of the same registry are identical.
  EXPECT_EQ(json, obs::render_json(reg));
  // Semantic-only view drops the gauge.
  const std::string sem = obs::render_json(reg, /*include_timing=*/false);
  EXPECT_EQ(sem.find("\"g\""), std::string::npos);
}

TEST(Exposition, PrometheusSanitizesNamesAndAccumulatesBuckets) {
  Registry reg;
  reg.counter("decode.packets_ok", MetricClass::kSemantic, "decoded ok")->add(12);
  obs::Histogram* h = reg.histogram("source.bytes", MetricClass::kSemantic, {10.0, 20.0});
  h->observe(5.0);
  h->observe(15.0);
  h->observe(100.0);
  const std::string prom = obs::render_prometheus(reg);
  EXPECT_NE(prom.find("decode_packets_ok{class=\"semantic\"} 12"), std::string::npos);
  // Cumulative buckets: le="20" includes the le="10" observations.
  EXPECT_NE(prom.find("source_bytes_bucket{class=\"semantic\",le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("source_bytes_bucket{class=\"semantic\",le=\"20\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("source_bytes_bucket{class=\"semantic\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("source_bytes_count{class=\"semantic\"} 3"), std::string::npos);
}

TEST(Exposition, WriteMetricsFileDispatchesOnExtension) {
  Registry reg;
  reg.counter("c", MetricClass::kSemantic, "a counter")->add(1);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string json_path = (dir / "entrace_metrics_test.json").string();
  const std::string prom_path = (dir / "entrace_metrics_test.prom").string();
  obs::write_metrics_file(reg, json_path);
  obs::write_metrics_file(reg, prom_path);
  std::ifstream jf(json_path), pf(prom_path);
  const std::string json((std::istreambuf_iterator<char>(jf)), {});
  const std::string prom((std::istreambuf_iterator<char>(pf)), {});
  std::filesystem::remove(json_path);
  std::filesystem::remove(prom_path);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(prom.rfind("# HELP", 0), 0u);
  EXPECT_THROW(obs::write_metrics_file(reg, "/nonexistent-dir/x.json"), std::runtime_error);
}

// ---- stage scopes -----------------------------------------------------------

TEST(StageScope, RecordsTimingTriple) {
  Registry reg;
  {
    obs::StageScope scope(&reg, "demo");
    scope.add_items(42);
    EXPECT_GE(scope.elapsed_seconds(), 0.0);
  }
  const obs::Metric* secs = reg.find("stage.demo.seconds");
  const obs::Metric* runs = reg.find("stage.demo.runs");
  const obs::Metric* items = reg.find("stage.demo.items");
  ASSERT_NE(secs, nullptr);
  ASSERT_NE(runs, nullptr);
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(secs->cls, MetricClass::kTiming);
  EXPECT_GE(secs->gauge.value(), 0.0);
  EXPECT_EQ(runs->counter.value(), 1u);
  EXPECT_EQ(items->counter.value(), 42u);
}

TEST(StageScope, NullRegistryIsNoOp) {
  obs::StageScope scope(nullptr, "demo");
  scope.add_items(5);
  EXPECT_DOUBLE_EQ(scope.elapsed_seconds(), 0.0);
  obs::record_stage(nullptr, "demo", 1.0, 1);  // must not crash
}

// ---- EmpiricalCdf concurrency regression ------------------------------------

// Before the fix, ensure_sorted() mutated `values_` from a const accessor
// with a plain bool guard: two threads calling quantile() concurrently on a
// shared CDF raced on the sort.  Run under TSan (telemetry-tsan preset)
// this test fails on the old code and is clean on the new one.
TEST(EmpiricalCdfConcurrency, ConcurrentConstReadsAreRaceFree) {
  EmpiricalCdf cdf;
  for (int i = 1000; i >= 1; --i) cdf.add(i);  // reverse order: sort has work
  const EmpiricalCdf& shared = cdf;
  std::vector<std::thread> threads;
  std::vector<double> medians(8, 0.0);
  threads.reserve(medians.size());
  for (std::size_t t = 0; t < medians.size(); ++t) {
    threads.emplace_back([&shared, &medians, t] {
      double acc = 0.0;
      for (int i = 0; i < 50; ++i) {
        acc = shared.quantile(0.5);
        (void)shared.fraction_below(250.0);
      }
      medians[t] = acc;
    });
  }
  for (auto& th : threads) th.join();
  for (double m : medians) EXPECT_DOUBLE_EQ(m, 500.5);
}

TEST(EmpiricalCdfConcurrency, CopyWhileReadingIsRaceFree) {
  EmpiricalCdf cdf;
  for (int i = 100; i >= 1; --i) cdf.add(i);
  const EmpiricalCdf& shared = cdf;
  std::thread reader([&shared] {
    for (int i = 0; i < 100; ++i) (void)shared.median();
  });
  for (int i = 0; i < 100; ++i) {
    EmpiricalCdf copy(shared);
    EXPECT_EQ(copy.count(), 100u);
  }
  reader.join();
}

// ---- end-to-end determinism -------------------------------------------------

class TelemetryDeterminism : public ::testing::Test {
 protected:
  static const EnterpriseModel& model() {
    static const EnterpriseModel m;
    return m;
  }
  static DatasetSpec spec() { return dataset_by_name("D0", 0.004); }
  static const SyntheticTraceSourceSet& sources() {
    static const SyntheticTraceSourceSet s(spec(), model());
    return s;
  }
  static AnalyzerConfig config(std::size_t threads) {
    AnalyzerConfig c = default_config_for_model(model().site());
    c.threads = threads;
    return c;
  }
  // The determinism contract is over semantic metrics only.
  static std::string semantic_json(const Registry& reg) {
    return obs::render_json(reg, /*include_timing=*/false);
  }
};

TEST_F(TelemetryDeterminism, SemanticMetricsIdenticalAcrossThreadCounts) {
  const DatasetAnalysis one = analyze_dataset(sources(), config(1));
  const DatasetAnalysis four = analyze_dataset(sources(), config(4));
  const std::string json1 = semantic_json(one.metrics);
  ASSERT_FALSE(json1.empty());
  EXPECT_NE(json1.find("decode.packets_seen"), std::string::npos);
  EXPECT_EQ(json1, semantic_json(four.metrics));
}

TEST_F(TelemetryDeterminism, SemanticMetricsSurviveSnapshotRoundTrip) {
  // Direct run vs shard→write→decode→merge across two snapshot files with
  // an uneven split: the folded semantic metrics must be byte-identical.
  const DatasetAnalysis direct = analyze_dataset(sources(), config(1));

  const std::size_t n = sources().size();
  ASSERT_GE(n, 2u);
  const std::size_t split = n / 3 + 1;
  const snapshot::SnapshotMeta meta{spec().name, 0.004, static_cast<std::uint32_t>(n)};
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path_a = (dir / "entrace_telemetry_a.esnap").string();
  const std::string path_b = (dir / "entrace_telemetry_b.esnap").string();
  {
    std::vector<TraceShard> shards = analyze_trace_shards(sources(), config(2), 0, split);
    snapshot::SnapshotWriter writer(path_a, meta);
    for (std::size_t i = 0; i < shards.size(); ++i) {
      writer.add_shard(static_cast<std::uint32_t>(i), shards[i]);
    }
    writer.close();
  }
  {
    std::vector<TraceShard> shards = analyze_trace_shards(sources(), config(2), split, n);
    snapshot::SnapshotWriter writer(path_b, meta);
    for (std::size_t i = 0; i < shards.size(); ++i) {
      writer.add_shard(static_cast<std::uint32_t>(split + i), shards[i]);
    }
    writer.close();
  }

  std::vector<TraceShard> decoded;
  for (const std::string& p : {path_a, path_b}) {
    snapshot::Snapshot snap = snapshot::read_snapshot(p);
    for (auto& s : snap.shards) decoded.push_back(std::move(s.shard));
  }
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
  const DatasetAnalysis merged = fold_shards(spec().name, std::move(decoded), config(1));

  const std::string json_direct = semantic_json(direct.metrics);
  ASSERT_FALSE(json_direct.empty());
  EXPECT_EQ(json_direct, semantic_json(merged.metrics));
}

TEST_F(TelemetryDeterminism, CollectMetricsOffYieldsEmptyRegistry) {
  AnalyzerConfig c = config(1);
  c.collect_metrics = false;
  const DatasetAnalysis off = analyze_dataset(sources(), c);
  EXPECT_TRUE(off.metrics.empty());
  // And the analysis itself is unchanged: quality accounting matches a
  // metrics-on run (metrics observe, never influence).
  const DatasetAnalysis on = analyze_dataset(sources(), config(1));
  EXPECT_EQ(off.quality.packets_seen, on.quality.packets_seen);
  EXPECT_EQ(off.load_raw.size(), on.load_raw.size());
}

}  // namespace
}  // namespace entrace
